(* Chaos harness for the durable serve daemon: drive a seeded request
   trace against a journaled daemon, SIGKILL it at random points —
   including mid-journal-write through the "journal.append" failpoint —
   restart it, let recovery replay, and diff every subsequent reply
   against an uninterrupted reference daemon.  Replies must be
   byte-identical (modulo the wall-clock timing field) or the run fails.

   The kill model makes the harness's own re-sends provably safe:
   external kills land between requests (the daemon is idle, everything
   acknowledged is journaled), and mid-request kills go through the
   failpoint, which tears the journal record so the in-flight request is
   provably unapplied.  A kill in the general unsafe window — after a
   mutation's journal append but before its reply — is exactly why
   Client refuses to auto-resend legalize/eco (request_resend_safe);
   the harness never needs that window because it re-sends only
   requests its kill plan proves unapplied.

   Usage: chaos.exe [--seed N] [--kills K] [--ecos N] [--scale S]
                    [--workdir DIR]                                   *)

module Protocol = Tdf_io.Protocol
module Delta = Tdf_io.Delta
module Client = Tdf_server.Client
module Prng = Tdf_util.Prng

let failf fmt = Printf.ksprintf (fun m -> prerr_endline ("CHAOS: " ^ m); exit 1) fmt

(* ---- process plumbing (mirrors bench/main.ml) ------------------------ *)

let legalize_exe () =
  let near = Filename.dirname (Filename.dirname Sys.executable_name) in
  let candidates =
    [
      Filename.concat near "bin/legalize.exe";
      "_build/default/bin/legalize.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> failwith "chaos: cannot locate bin/legalize.exe"

let spawn_daemon exe ~sock ~log ?journal ?arm () =
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let args =
    [ "serve"; "--socket"; sock ]
    @ (match journal with Some dir -> [ "--journal"; dir ] | None -> [])
    @ match arm with Some spec -> [ "--arm-failpoint"; spec ] | None -> []
  in
  let pid =
    Unix.create_process exe (Array.of_list (exe :: args)) dev_null logfd logfd
  in
  Unix.close logfd;
  Unix.close dev_null;
  pid

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s

let connect_with_retry sock =
  let rec go tries =
    match Client.connect sock with
    | c -> c
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      go (tries - 1)
  in
  go 200

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let clean_dir dir =
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  mkdir_p dir

(* ---- trace generation ------------------------------------------------ *)

(* Same gate-sizing ECO shape the serve benchmark uses: [k] distinct
   cells jump into a window around their current legal position. *)
let eco_delta ~rng ~design ~(prev : Tdf_netlist.Placement.t) ~k =
  let n = Tdf_netlist.Design.n_cells design in
  let outline = (Tdf_netlist.Design.die design 0).Tdf_netlist.Die.outline in
  let window = 40 in
  let jitter extent p =
    max 0 (min (extent - 1) (p - window + Prng.int rng ((2 * window) + 1)))
  in
  let seen = Array.make n false in
  let ops = ref [] in
  let made = ref 0 in
  while !made < k do
    let c = Prng.int rng n in
    if not seen.(c) then begin
      seen.(c) <- true;
      incr made;
      ops :=
        Delta.Move
          {
            cell = c;
            x = jitter outline.Tdf_geometry.Rect.w prev.Tdf_netlist.Placement.x.(c);
            y = jitter outline.Tdf_geometry.Rect.h prev.Tdf_netlist.Placement.y.(c);
            die = prev.Tdf_netlist.Placement.die.(c);
          }
        :: !ops
    end
  done;
  List.rev !ops

let is_mutating = function
  | Protocol.Load_design _ | Protocol.Legalize _ | Protocol.Eco _ -> true
  | Protocol.Get_placement _ | Protocol.Stats | Protocol.Ping
  | Protocol.Shutdown ->
    false

(* Timing differs run to run by construction; everything else must not. *)
let normalize (resp : Protocol.response) =
  match resp with
  | Ok (Protocol.Legalized r) -> Ok (Protocol.Legalized { r with wall_s = 0. })
  | Ok (Protocol.Eco_applied r) ->
    Ok (Protocol.Eco_applied { r with wall_s = 0. })
  | r -> r

let reply_string resp = Protocol.response_to_string (normalize resp)

type kill = External | TornAppend

let () =
  let seed = ref 7 in
  let kills = ref 5 in
  let ecos = ref 30 in
  let scale = ref 0.02 in
  let workdir = ref "out/chaos" in
  Arg.parse
    [
      ("--seed", Arg.Set_int seed, "N  PRNG seed for trace and kill plan");
      ("--kills", Arg.Set_int kills, "K  kill/recover cycles (default 5)");
      ("--ecos", Arg.Set_int ecos, "N  ECO requests in the trace (default 30)");
      ("--scale", Arg.Set_float scale, "S  benchmark case scale (default 0.02)");
      ("--workdir", Arg.Set_string workdir, "DIR  scratch directory");
    ]
    (fun a -> failf "unexpected argument %S" a)
    "chaos.exe: seeded SIGKILL/recovery loop against the serve daemon";
  if !ecos < !kills + 1 then failf "--ecos must exceed --kills";
  let exe = legalize_exe () in
  mkdir_p !workdir;
  let file name = Filename.concat !workdir name in
  let journal_dir = file "journal" in
  clean_dir journal_dir;
  let chaos_log = file "chaos_daemon.log" in
  let ref_log = file "ref_daemon.log" in
  List.iter (fun f -> if Sys.file_exists f then Sys.remove f)
    [ chaos_log; ref_log ];
  let rng = Prng.create !seed in
  Printf.printf "chaos: seed %d, %d ecos, %d kills, scale %g\n%!" !seed !ecos
    !kills !scale;

  (* Fixture: a generated case plus its legal sign-off placement. *)
  let design =
    Tdf_benchgen.Gen.generate_by_name ~scale:!scale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let prev =
    (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement
  in
  if not (Tdf_metrics.Legality.is_legal design prev) then
    failf "fixture placement is not legal";
  Tdf_io.Text.save_design (file "d0.design") design;
  Tdf_io.Text.save_placement (file "p0.place") design prev;

  (* Deterministic trace: load, one full legalize, the eco stream, and a
     final placement readback.  Every eco carries its placement so each
     reply is byte-comparable. *)
  let session = "chaos" in
  let k = max 2 (Tdf_netlist.Design.n_cells design / 300) in
  let requests =
    Array.of_list
      (Protocol.Load_design
         {
           session;
           design = Protocol.Path (file "d0.design");
           placement = Some (Protocol.Path (file "p0.place"));
           (* Tiled sessions must replay byte-stably too: tiling is a
              wall-clock knob, so recovery digests cannot drift. *)
           tiles = Some 2;
         }
      :: Protocol.Legalize
           {
             session;
             budget_ms = None;
             jobs = None;
             tiles = None;
             want_placement = true;
           }
      :: List.init !ecos (fun _ ->
             Protocol.Eco
               {
                 session;
                 delta = Protocol.Text (Delta.to_string (eco_delta ~rng ~design ~prev ~k));
                 radius = None;
                 max_widenings = None;
                 budget_ms = None;
                 jobs = None;
                 tiles = None;
                 want_placement = true;
               })
      @ [ Protocol.Get_placement { session } ])
  in
  let n_requests = Array.length requests in

  (* Kill plan: [kills] distinct eco positions, each external or
     torn-append; at least one of each kind when the budget allows. *)
  let eco_lo = 2 and eco_hi = n_requests - 2 in
  let positions = Array.init (eco_hi - eco_lo + 1) (fun i -> eco_lo + i) in
  Prng.shuffle rng positions;
  let plan = Hashtbl.create 8 in
  for i = 0 to !kills - 1 do
    let kind =
      if i = 0 then TornAppend
      else if i = 1 then External
      else if Prng.bool rng then TornAppend
      else External
    in
    Hashtbl.replace plan positions.(i) kind
  done;

  (* Reference: one uninterrupted, unjournaled daemon. *)
  let ref_sock = file "ref.sock" in
  let ref_pid = spawn_daemon exe ~sock:ref_sock ~log:ref_log () in
  let refc = connect_with_retry ref_sock in
  let reference =
    Array.map
      (fun req ->
        let resp = Client.call refc req in
        (match resp with
        | Error e -> failf "reference daemon errored: %s: %s" e.Protocol.code e.Protocol.detail
        | Ok _ -> ());
        reply_string resp)
      requests
  in
  ignore (Client.call refc Protocol.Shutdown);
  Client.close refc;
  let code = wait_exit ref_pid in
  if code <> 0 then failf "reference daemon exited with %d" code;

  (* Chaos run.  When (re)starting the daemon before request [i0], look
     ahead for the next kill point: a torn-append kill is armed NOW, via
     --arm-failpoint journal.append:1:AFTER where AFTER counts the
     journal appends (= mutating requests) the daemon will serve first —
     the failpoint then tears exactly the target request's record. *)
  let chaos_sock = file "chaos.sock" in
  let next_kill from =
    let rec go j = if j >= n_requests then None
      else match Hashtbl.find_opt plan j with
        | Some kind -> Some (j, kind)
        | None -> go (j + 1)
    in
    go from
  in
  let appends_between i0 j =
    let c = ref 0 in
    for i = i0 to j - 1 do
      if is_mutating requests.(i) then incr c
    done;
    !c
  in
  let start_daemon i0 =
    let arm =
      match next_kill i0 with
      | Some (j, TornAppend) ->
        Some (Printf.sprintf "journal.append:1:%d" (appends_between i0 j))
      | _ -> None
    in
    let pid =
      spawn_daemon exe ~sock:chaos_sock ~log:chaos_log ~journal:journal_dir
        ?arm ()
    in
    (pid, connect_with_retry chaos_sock)
  in
  let pid = ref 0 and client = ref (Obj.magic 0 : Client.t) in
  let torn_kills = ref 0 and external_kills = ref 0 in
  (let p, c = start_daemon 0 in
   pid := p;
   client := c);
  let mismatches = ref 0 in
  let check i resp =
    let got = reply_string resp in
    if got <> reference.(i) then begin
      incr mismatches;
      Printf.eprintf "CHAOS: reply %d diverged after recovery\n  ref: %s\n  got: %s\n"
        i
        (String.sub reference.(i) 0 (min 200 (String.length reference.(i))))
        (String.sub got 0 (min 200 (String.length got)))
    end
  in
  for i = 0 to n_requests - 1 do
    (match Hashtbl.find_opt plan i with
    | Some External ->
      (* Daemon is idle between requests: SIGKILL and restart; the
         journal suffix replays everything acknowledged so far. *)
      Hashtbl.remove plan i;
      incr external_kills;
      Printf.printf "chaos: external SIGKILL before request %d\n%!" i;
      Unix.kill !pid Sys.sigkill;
      ignore (wait_exit !pid);
      Client.close !client;
      let p, c = start_daemon i in
      pid := p;
      client := c
    | Some TornAppend | None -> ());
    match Client.call !client requests.(i) with
    | resp ->
      (match Hashtbl.find_opt plan i with
      | Some TornAppend ->
        failf "request %d should have died on the armed journal.append tear" i
      | _ -> ());
      check i resp
    | exception Failure _ ->
      (match Hashtbl.find_opt plan i with
      | Some TornAppend -> ()
      | _ -> failf "daemon died unexpectedly at request %d" i);
      (* The armed failpoint wrote half of request [i]'s record, fsynced
         and SIGKILLed the daemon mid-append.  The record fails its CRC,
         recovery truncates it, so the request is unapplied: re-sending
         it is safe, and its reply must still match the reference. *)
      Hashtbl.remove plan i;
      incr torn_kills;
      Printf.printf "chaos: daemon tore journal append of request %d (SIGKILL mid-write)\n%!" i;
      let code = wait_exit !pid in
      (* [wait_exit] folds OCaml signal numbers, so SIGKILL is
         [128 + Sys.sigkill], not the POSIX 137. *)
      if code <> 128 + Sys.sigkill then
        failf "torn-append daemon exited with %d, expected SIGKILL" code;
      Client.close !client;
      let p, c = start_daemon i in
      pid := p;
      client := c;
      check i (Client.call !client requests.(i))
  done;
  ignore (Client.call !client Protocol.Shutdown);
  Client.close !client;
  let code = wait_exit !pid in
  if code <> 0 then failf "chaos daemon exited with %d after shutdown" code;

  (* Evidence check: at least one restart banner must report a nonzero
     torn-byte truncation — proof the mid-append kill really tore the
     wal and recovery healed it. *)
  let log = read_file chaos_log in
  let saw_torn_truncation =
    String.split_on_char '\n' log
    |> List.exists (fun line ->
           match
             Scanf.sscanf_opt line
               "tdflow serve: recovered %d sessions (%d records replayed, %d \
                torn bytes truncated"
               (fun _ _ torn -> torn)
           with
           | Some torn -> torn > 0
           | None -> false)
  in
  if !torn_kills > 0 && not saw_torn_truncation then
    failf "no recovery banner reported torn bytes despite %d torn kills" !torn_kills;
  if !mismatches > 0 then failf "%d replies diverged from the reference" !mismatches;
  Printf.printf
    "chaos: OK — %d requests, %d kills (%d torn-append, %d external), all \
     replies byte-identical across %d recoveries\n"
    n_requests (!torn_kills + !external_kills) !torn_kills !external_kills
    (!torn_kills + !external_kills)
