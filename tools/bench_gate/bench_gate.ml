(* CLI wrapper over [Tdf_gate.Gate]:

     bench_gate --baseline ci/baselines/BENCH_solver.json \
                --current out/BENCH_solver.json [--max-regression 1.25] \
                [--inject-slowdown F]

   Exit 0 when every check passes, 1 on a regression or drift, 2 on
   usage/parse errors.  --inject-slowdown multiplies the current
   wall-clock numbers before comparing: CI uses it to prove the gate
   actually fails on a slowdown. *)

let usage () =
  prerr_endline
    "usage: bench_gate --baseline FILE --current FILE\n\
    \                  [--max-regression F] [--inject-slowdown F]";
  exit 2

let () =
  let baseline = ref None in
  let current = ref None in
  let max_regression = ref None in
  let inject = ref None in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      baseline := Some v;
      parse rest
    | "--current" :: v :: rest ->
      current := Some v;
      parse rest
    | "--max-regression" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 1.0 -> max_regression := Some f
      | _ ->
        Printf.eprintf "bench_gate: bad --max-regression %S (need >= 1)\n" v;
        exit 2);
      parse rest
    | "--inject-slowdown" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f > 0.0 -> inject := Some f
      | _ ->
        Printf.eprintf "bench_gate: bad --inject-slowdown %S (need > 0)\n" v;
        exit 2);
      parse rest
    | arg :: _ ->
      Printf.eprintf "bench_gate: unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!baseline, !current) with
  | Some baseline, Some current -> (
    match
      Tdf_gate.Gate.compare_files ?max_regression:!max_regression
        ?inject_slowdown:!inject ~baseline ~current ()
    with
    | Error msg ->
      Printf.eprintf "bench_gate: %s\n" msg;
      exit 2
    | Ok v ->
      print_string (Tdf_gate.Gate.render v);
      exit (if v.Tdf_gate.Gate.passed then 0 else 1))
  | _ -> usage ()
