module Json = Tdf_telemetry.Json

type kind = Time | Exact | Bound | Floor

type check = {
  metric : string;
  kind : kind;
  baseline : float;
  current : float;
  ok : bool;
}

type verdict = {
  checks : check list;
  skipped : string list;
  passed : bool;
}

exception Malformed of string

let fail fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let float_field name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some v -> v
  | None -> fail "missing numeric field %S" name

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some v -> v
  | None -> fail "missing string field %S" name

let bool_field name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> fail "missing boolean field %S" name

let list_field name j =
  match Option.bind (Json.member name j) Json.to_list with
  | Some v -> v
  | None -> fail "missing list field %S" name

(* Index a case list by a key field so baseline and current match by name,
   not position. *)
let index ~key cases = List.map (fun c -> (str_field key c, c)) cases

let keyed_int ~key cases =
  List.map
    (fun c ->
      match Option.bind (Json.member key c) Json.to_int with
      | Some v -> (string_of_int v, c)
      | None -> fail "missing numeric field %S" key)
    cases

(* One comparable metric of one case: where to read it and how to judge. *)
type probe = { p_name : string; p_kind : kind; p_read : Json.t -> float }

let solver_probes =
  [
    { p_name = "flow"; p_kind = Exact; p_read = float_field "flow" };
    { p_name = "cost"; p_kind = Exact; p_read = float_field "cost" };
    { p_name = "solve_s"; p_kind = Time; p_read = float_field "solve_s" };
    {
      p_name = "repeat_reuse_s";
      p_kind = Time;
      p_read = float_field "repeat_reuse_s";
    };
    (* The bench asserts every engine variant reproduces the default run's
       (flow, cost) before emitting this bit, so Exact here re-pins the
       cross-variant agreement in CI. *)
    {
      p_name = "variants_agree";
      p_kind = Exact;
      p_read = (fun j -> if bool_field "variants_agree" j then 1. else 0.);
    };
    { p_name = "ssp_solve_s"; p_kind = Time; p_read = float_field "ssp_solve_s" };
    {
      p_name = "radix_solve_s";
      p_kind = Time;
      p_read = float_field "radix_solve_s";
    };
    {
      p_name = "blocking_solve_s";
      p_kind = Time;
      p_read = float_field "blocking_solve_s";
    };
  ]

let serve_probes =
  [
    {
      p_name = "legal";
      p_kind = Exact;
      p_read = (fun j -> if bool_field "legal" j then 1. else 0.);
    };
    {
      p_name = "byte_identical";
      p_kind = Exact;
      p_read = (fun j -> if bool_field "byte_identical" j then 1. else 0.);
    };
    { p_name = "warm_p50_ms"; p_kind = Time;
      p_read = (fun j -> float_field "warm_p50_ms" j /. 1000.) };
    { p_name = "warm_p99_ms"; p_kind = Time;
      p_read = (fun j -> float_field "warm_p99_ms" j /. 1000.) };
    { p_name = "speedup_p50"; p_kind = Floor;
      p_read = float_field "speedup_p50" };
    { p_name = "cache_hit_rate"; p_kind = Floor;
      p_read = float_field "cache_hit_rate" };
    {
      p_name = "journal_byte_identical";
      p_kind = Exact;
      p_read = (fun j -> if bool_field "journal_byte_identical" j then 1. else 0.);
    };
    (* A ratio of two latencies measured in the same run: immune to host
       speed (and to --inject-slowdown), so a plain Bound, not Time.  The
       baseline pins the tolerated write-ahead-journal overhead. *)
    { p_name = "journal_overhead_p50"; p_kind = Bound;
      p_read = float_field "journal_overhead_p50" };
  ]

let eco_probes =
  [
    {
      p_name = "legal";
      p_kind = Exact;
      p_read = (fun j -> if bool_field "legal" j then 1. else 0.);
    };
    {
      p_name = "fallbacks";
      p_kind = Bound;
      p_read = float_field "fallbacks";
    };
    { p_name = "eco_s"; p_kind = Time; p_read = float_field "eco_s" };
  ]

let judge ~max_regression ~inject_slowdown ~prefix probes base cur =
  List.map
    (fun p ->
      let b = p.p_read base in
      let c = p.p_read cur in
      let c = if p.p_kind = Time then c *. inject_slowdown else c in
      let ok =
        match p.p_kind with
        | Exact -> b = c
        | Bound -> c <= b
        | Floor ->
          (* The baseline records a pinned minimum (e.g. a required
             speedup), not a measurement: current must stay above it. *)
          c >= b
        | Time ->
          (* A sub-resolution baseline cannot anchor a ratio: hold the
             current value to the same absolute floor instead. *)
          let floor_s = 1e-4 in
          if b < floor_s then c <= floor_s *. max_regression
          else c <= b *. max_regression
      in
      {
        metric = prefix ^ "/" ^ p.p_name;
        kind = p.p_kind;
        baseline = b;
        current = c;
        ok;
      })
    probes

let pair_up ~section base_cases cur_cases =
  let skipped = ref [] in
  let pairs =
    List.filter_map
      (fun (name, b) ->
        match List.assoc_opt name cur_cases with
        | Some c -> Some (name, b, c)
        | None ->
          skipped := (section ^ "/" ^ name ^ " (baseline only)") :: !skipped;
          None)
      base_cases
  in
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name base_cases) then
        skipped := (section ^ "/" ^ name ^ " (current only)") :: !skipped)
    cur_cases;
  (pairs, List.rev !skipped)

let compare_json ?(max_regression = 1.25) ?(inject_slowdown = 1.0) ~baseline
    ~current () =
  try
    let shape j =
      if Json.member "cases" j <> None then `Solver
      else if Json.member "serve_runs" j <> None then `Serve
      (* BENCH_parallel.json also carries a "runs" list, so this test
         must come before the eco fallback. *)
      else if Json.member "recommended_domain_count" j <> None then `Parallel
      else if Json.member "runs" j <> None then `Eco
      else
        fail
          "unrecognized benchmark file (no \"cases\", \"runs\" or \
           \"serve_runs\" field)"
    in
    let sb = shape baseline and sc = shape current in
    if sb <> sc then fail "baseline and current are different benchmark kinds";
    match sb with
    | `Parallel ->
      (* Two keyed sweeps (jobs and tiles) plus the top-level determinism
         bit; each run contributes one wall-clock check. *)
      let wall =
        [ { p_name = "wall_s"; p_kind = Time; p_read = float_field "wall_s" } ]
      in
      let sweep ~section ~key ~list_name =
        let idx j = keyed_int ~key (list_field list_name j) in
        pair_up ~section (idx baseline) (idx current)
      in
      let jp, s1 = sweep ~section:"parallel/jobs" ~key:"jobs" ~list_name:"runs" in
      let tp, s2 =
        sweep ~section:"parallel/tiles" ~key:"tiles" ~list_name:"tile_runs"
      in
      if jp = [] && tp = [] then
        fail "no overlapping cases between baseline and current";
      let det =
        [
          {
            p_name = "deterministic";
            p_kind = Exact;
            p_read = (fun j -> if bool_field "deterministic" j then 1. else 0.);
          };
        ]
      in
      let checks =
        judge ~max_regression ~inject_slowdown ~prefix:"parallel" det baseline
          current
        @ List.concat_map
            (fun (name, b, c) ->
              judge ~max_regression ~inject_slowdown
                ~prefix:("parallel/jobs=" ^ name)
                wall b c)
            jp
        @ List.concat_map
            (fun (name, b, c) ->
              judge ~max_regression ~inject_slowdown
                ~prefix:("parallel/tiles=" ^ name)
                wall b c)
            tp
      in
      Ok
        {
          checks;
          skipped = s1 @ s2;
          passed = List.for_all (fun c -> c.ok) checks;
        }
    | (`Solver | `Eco | `Serve) as sb ->
      let section, key, probes, list_name =
        match sb with
        | `Solver -> ("solver", `Str "name", solver_probes, "cases")
        | `Eco -> ("eco", `Int "delta_cells", eco_probes, "runs")
        | `Serve -> ("serve", `Str "name", serve_probes, "serve_runs")
      in
      let index_of j =
        let cases = list_field list_name j in
        match key with
        | `Str k -> index ~key:k cases
        | `Int k -> keyed_int ~key:k cases
      in
      let pairs, skipped =
        pair_up ~section (index_of baseline) (index_of current)
      in
      if pairs = [] then fail "no overlapping cases between baseline and current";
      let checks =
        List.concat_map
          (fun (name, b, c) ->
            judge ~max_regression ~inject_slowdown
              ~prefix:(section ^ "/" ^ name)
              probes b c)
          pairs
      in
      Ok { checks; skipped; passed = List.for_all (fun c -> c.ok) checks }
  with Malformed msg -> Error msg

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Json.of_string s with
  | Ok j -> Ok j
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let compare_files ?max_regression ?inject_slowdown ~baseline ~current () =
  match (load baseline, load current) with
  | Error e, _ | _, Error e -> Error e
  | Ok b, Ok c ->
    compare_json ?max_regression ?inject_slowdown ~baseline:b ~current:c ()

let kind_name = function
  | Time -> "time"
  | Exact -> "exact"
  | Bound -> "bound"
  | Floor -> "floor"

let render v =
  let buf = Buffer.create 512 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "%-40s %-6s %12s %12s  %s\n" "metric" "kind" "baseline" "current" "ok";
  List.iter
    (fun c ->
      out "%-40s %-6s %12.6g %12.6g  %s\n" c.metric (kind_name c.kind)
        c.baseline c.current
        (if c.ok then "ok" else "FAIL"))
    v.checks;
  List.iter (fun s -> out "skipped: %s\n" s) v.skipped;
  out "%s\n" (if v.passed then "GATE PASS" else "GATE FAIL");
  Buffer.contents buf
