(** Benchmark regression gate: compare a freshly generated BENCH_*.json
    against a checked-in baseline and fail on wall-clock regressions or
    numeric drift.

    Four file shapes are understood (detected from the content):

    - {b solver} ([BENCH_solver.json]): per case, [flow]/[cost] must match
      the baseline {e exactly} — drift means the solver's arithmetic
      changed — and the [solve_s]/[repeat_reuse_s] wall-clocks may grow by
      at most the regression factor;
    - {b eco} ([BENCH_eco.json]): per delta size, the result must be
      [legal] with no more [fallbacks] than the baseline, and [eco_s] may
      grow by at most the regression factor;
    - {b serve} ([BENCH_serve.json]): the warm-daemon replay must be
      [legal] and [byte_identical] to the one-shot CLI chain, its
      [warm_p50_ms]/[warm_p99_ms] latencies may grow by at most the
      regression factor, [speedup_p50]/[cache_hit_rate] must stay
      {e above} the floors pinned in the baseline file, and the journaled
      rerun must be [journal_byte_identical] with a
      [journal_overhead_p50] latency ratio at most the bound pinned in
      the baseline (a within-run ratio, so host speed and
      [inject_slowdown] cancel out);
    - {b parallel} ([BENCH_parallel.json], recognized by its
      [recommended_domain_count] field — it also carries a [runs] list, so
      the test precedes the eco fallback): the grid must stay
      [deterministic] across every jobs {e and} tiles setting, and each
      sweep entry's [wall_s] (keyed by [jobs] / [tiles]) may grow by at
      most the regression factor.

    Cases present in only one of the files are reported but not fatal
    (benchmarks gain cases over time); a baseline/current pair with {e no}
    overlapping cases fails, since the gate would otherwise pass vacuously.

    Wall-clock checks compare ratios, so they tolerate machines of
    different absolute speed only via the regression factor — CI passes a
    generous factor for cross-machine runs and a strict one for
    same-machine A/B comparisons. *)

type kind =
  | Time  (** current ≤ limit × baseline *)
  | Exact  (** current = baseline *)
  | Bound  (** current ≤ baseline *)
  | Floor  (** current ≥ baseline (the baseline pins a required minimum) *)

type check = {
  metric : string;  (** e.g. ["solver/small/flow"] *)
  kind : kind;
  baseline : float;
  current : float;
  ok : bool;
}

type verdict = {
  checks : check list;
  skipped : string list;  (** cases without a counterpart *)
  passed : bool;
}

val compare_json :
  ?max_regression:float ->
  ?inject_slowdown:float ->
  baseline:Tdf_telemetry.Json.t ->
  current:Tdf_telemetry.Json.t ->
  unit ->
  (verdict, string) result
(** [max_regression] defaults to 1.25 (a >25% wall-clock growth fails).
    [inject_slowdown] multiplies the current wall-clock numbers before
    comparing — the self-test hook proving the gate can fail. *)

val compare_files :
  ?max_regression:float ->
  ?inject_slowdown:float ->
  baseline:string ->
  current:string ->
  unit ->
  (verdict, string) result
(** {!compare_json} over two files on disk. *)

val render : verdict -> string
(** Human-readable table, one line per check, PASS/FAIL summary last. *)
