(* Heterogeneous technology integration (the ICCAD "h" cases): the two
   dies use different row heights and per-die cell widths, so moving a
   cell across the D2D bond changes its footprint (§III-F).

     dune exec examples/hetero_stack.exe *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell
module Flow3d = Tdf_legalizer.Flow3d

let () =
  (* ICCAD 2022 case3h: top die 92-unit rows, bottom die 115-unit rows. *)
  let design = Gen.generate_by_name ~scale:0.1 Spec.Iccad2022 "case3h" in
  Printf.printf "hetero_stack: %s (%d cells)\n" design.Design.name
    (Design.n_cells design);
  Printf.printf "  row heights: top %d, bottom %d\n"
    (Design.die design 1).Tdf_netlist.Die.row_height
    (Design.die design 0).Tdf_netlist.Die.row_height;
  Printf.printf "  avg widths:  top %.1f, bottom %.1f\n"
    (Design.avg_cell_width design 1)
    (Design.avg_cell_width design 0);

  let result = Flow3d.legalize design in
  let p = result.Flow3d.placement in
  let s = Tdf_metrics.Displacement.summary design p in
  Printf.printf "  legal: %b  avg %.3f rows  max %.2f rows\n"
    (Tdf_metrics.Legality.is_legal design p)
    s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm;

  (* Show width changes for cells that crossed the bond. *)
  let nd = Design.n_dies design in
  let crossed = ref [] in
  for c = 0 to Design.n_cells design - 1 do
    let cell = Design.cell design c in
    let init = Cell.nearest_die cell ~n_dies:nd in
    if p.Tdf_netlist.Placement.die.(c) <> init then crossed := c :: !crossed
  done;
  Printf.printf "  %d cells crossed the D2D bond; first few width changes:\n"
    (List.length !crossed);
  List.iteri
    (fun i c ->
      if i < 5 then begin
        let cell = Design.cell design c in
        let init = Cell.nearest_die cell ~n_dies:nd in
        let now = p.Tdf_netlist.Placement.die.(c) in
        Printf.printf "    cell %6d: die %d -> %d, width %d -> %d\n" c init now
          (Cell.width_on cell init) (Cell.width_on cell now)
      end)
    !crossed;

  (* Per-die utilization stays under each die's cap after the moves. *)
  let bw = Flow3d.flow_bin_width design ~factor:10. in
  let g = Tdf_grid.Grid.build design ~bin_width:bw in
  for c = 0 to Design.n_cells design - 1 do
    Tdf_grid.Grid.place_cell_exn g ~cell:c ~die:p.Tdf_netlist.Placement.die.(c)
      ~x:p.Tdf_netlist.Placement.x.(c) ~y:p.Tdf_netlist.Placement.y.(c)
  done;
  Printf.printf "  final utilization: bottom %.1f%%, top %.1f%%\n"
    (100. *. Tdf_grid.Grid.die_utilization g 0)
    (100. *. Tdf_grid.Grid.die_utilization g 1)
