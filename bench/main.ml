(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§IV) on the synthetic ICCAD-style suites, and runs
   one Bechamel micro-benchmark per table/figure on fixed small cases.

   Environment knobs:
     TDFLOW_SCALE  case scale for the reproduction run (default 0.05)
     TDFLOW_SKIP_MICRO  set to skip the Bechamel micro-benchmarks *)

open Bechamel

let scale =
  match Sys.getenv_opt "TDFLOW_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.05)
  | None -> 0.05

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table / figure         *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let micro_scale = 0.02 in
  let d2022 =
    Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale Tdf_benchgen.Spec.Iccad2022
      "case3"
  in
  let d2023 =
    Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let legal =
    (Tdf_legalizer.Flow3d.legalize d2023).Tdf_legalizer.Flow3d.placement
  in
  Test.make_grouped ~name:"tdflow"
    [
      Test.make ~name:"table2/generate_case"
        (Staged.stage (fun () ->
             ignore
               (Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale
                  Tdf_benchgen.Spec.Iccad2022 "case2")));
      Test.make ~name:"table3/flow3d_iccad2022"
        (Staged.stage (fun () -> ignore (Tdf_legalizer.Flow3d.legalize d2022)));
      Test.make ~name:"table4/flow3d_iccad2023"
        (Staged.stage (fun () -> ignore (Tdf_legalizer.Flow3d.legalize d2023)));
      Test.make ~name:"table5/flow3d_no_d2d"
        (Staged.stage (fun () ->
             ignore
               (Tdf_legalizer.Flow3d.legalize ~cfg:Tdf_legalizer.Config.no_d2d
                  d2023)));
      Test.make ~name:"fig7/hpwl_increase"
        (Staged.stage (fun () ->
             ignore (Tdf_metrics.Hpwl.increase_pct d2023 legal)));
      Test.make ~name:"fig8/svg_render"
        (Staged.stage (fun () ->
             ignore (Tdf_io.Svg.render_die d2023 legal ~die:1 ())));
      Test.make ~name:"ablations/refine_pass"
        (Staged.stage (fun () ->
             let p = Tdf_netlist.Placement.copy legal in
             ignore (Tdf_refine.Refine.run ~iterations:1 d2023 p)));
      Test.make ~name:"bonding/terminal_mcmf"
        (Staged.stage (fun () ->
             let grid =
               Tdf_bonding.Terminal.make_grid d2023 ~size:2 ~spacing:2
             in
             ignore (Tdf_bonding.Terminal.assign d2023 legal grid)));
    ]

let run_micro () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "Bechamel micro-benchmarks (monotonic clock per run):\n";
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-28s %12.1f ns/run (%8.3f ms)\n" name ns (ns /. 1e6))
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Full reproduction: Tables II-V, Fig. 7, Fig. 8                      *)
(* ------------------------------------------------------------------ *)

let () =
  Printf.printf "== 3D-Flow reproduction run (scale %.3g) ==\n\n" scale;
  if Sys.getenv_opt "TDFLOW_SKIP_MICRO" = None then run_micro ();
  (* Aggregating telemetry sink over the reproduction run proper (the
     micro-benchmarks above stay uninstrumented so their timings are not
     perturbed); flushed to BENCH_telemetry.json at the end so the perf
     trajectory is machine-readable. *)
  let telemetry = Tdf_telemetry.Aggregate.create () in
  Tdf_telemetry.install (Tdf_telemetry.Aggregate.sink telemetry);
  print_string (Tdf_experiments.Tables.table2 ~scale ());
  print_newline ();
  let r2022 = Tdf_experiments.Runner.run_suite ~scale Tdf_benchgen.Spec.Iccad2022 in
  print_string
    (Tdf_experiments.Tables.comparison
       ~title:
         "TABLE III — legalization comparison, ICCAD 2022 suite (normalized \
          displacement)"
       r2022);
  print_newline ();
  let r2023 = Tdf_experiments.Runner.run_suite ~scale Tdf_benchgen.Spec.Iccad2023 in
  print_string
    (Tdf_experiments.Tables.comparison
       ~title:
         "TABLE IV — legalization comparison, ICCAD 2023 suite (normalized \
          displacement)"
       r2023);
  print_newline ();
  let ablation =
    Tdf_experiments.Runner.run_suite
      ~methods:[ Tdf_experiments.Runner.Ours_no_d2d; Tdf_experiments.Runner.Ours ]
      ~scale Tdf_benchgen.Spec.Iccad2023
  in
  print_string (Tdf_experiments.Tables.ablation ablation);
  print_newline ();
  print_string
    (Tdf_experiments.Figures.fig7
       ~title:"FIG 7(a) — HPWL increase (%), ICCAD 2022 suite" r2022);
  print_string
    (Tdf_experiments.Figures.fig7
       ~title:"FIG 7(b) — HPWL increase (%), ICCAD 2023 suite" r2023);
  let csv = Tdf_experiments.Figures.fig7_csv (r2022 @ r2023) in
  let oc = open_out "fig7_hpwl.csv" in
  output_string oc csv;
  close_out oc;
  Printf.printf "\nFig. 7 data written to fig7_hpwl.csv\n";
  let no_d2d_svg, ours_svg = Tdf_experiments.Figures.fig8 ~scale () in
  Printf.printf "Fig. 8 visualizations written to %s and %s\n" no_d2d_svg ours_svg;
  if Sys.getenv_opt "TDFLOW_SKIP_ABLATIONS" = None then begin
    print_newline ();
    print_endline "== design-choice ablations (ICCAD 2023 case3) ==";
    let design =
      Tdf_benchgen.Gen.generate_by_name ~scale:(Float.min scale 0.05)
        Tdf_benchgen.Spec.Iccad2023 "case3"
    in
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: branch-and-bound slack alpha (§III-B)"
         (Tdf_experiments.Ablations.sweep_alpha design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: bin width w_v (§III-F)"
         (Tdf_experiments.Ablations.sweep_bin_width design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: D2D edge pricing (Eq. 7 + base cost)"
         (Tdf_experiments.Ablations.sweep_d2d_cost design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: cycle-canceling post-optimization rounds (§III-E)"
         (Tdf_experiments.Ablations.sweep_post_opt design))
  end;
  (* One bonding-terminal assignment exercises the MCMF substrate so its
     counters (augmentations, Dijkstra pops, relaxations) appear in the
     telemetry dump alongside the legalizer phases. *)
  let d_bond =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.02 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let legal_bond =
    (Tdf_legalizer.Flow3d.legalize d_bond).Tdf_legalizer.Flow3d.placement
  in
  let tgrid = Tdf_bonding.Terminal.make_grid d_bond ~size:2 ~spacing:2 in
  ignore (Tdf_bonding.Terminal.assign d_bond legal_bond tgrid);
  let json =
    Tdf_telemetry.Json.Obj
      [
        ("scale", Tdf_telemetry.Json.Float scale);
        ("generated_by", Tdf_telemetry.Json.String "bench/main.ml");
        ("telemetry", Tdf_telemetry.Aggregate.to_json telemetry);
      ]
  in
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (Tdf_telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Telemetry (per-phase wall times, counters) written to \
                 BENCH_telemetry.json\n"
