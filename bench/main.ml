(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (§IV) on the synthetic ICCAD-style suites, and runs
   one Bechamel micro-benchmark per table/figure on fixed small cases.

   Environment knobs:
     TDFLOW_SCALE  case scale for the reproduction run (default 0.05)
     TDFLOW_OUT_DIR  directory for generated artifacts (default "out")
     TDFLOW_SKIP_MICRO  set to skip the Bechamel micro-benchmarks
     TDFLOW_SOLVER_ONLY  run only the MCMF solver microbenchmark and exit
     TDFLOW_SOLVER  default MCMF engine (ssp | radix | blocking); the
                    solver bench also times every variant explicitly
     TDFLOW_GOLDEN  path to pinned (flow, cost) values for the solver
                    small case; exit non-zero on mismatch (CI smoke)
     TDFLOW_PARALLEL_ONLY  run only the parallel-scaling benchmark and exit
     TDFLOW_SKIP_PARALLEL  set to skip the parallel-scaling benchmark
     TDFLOW_PAR_JOBS  space-separated domain counts to sweep (default "1 2 4 8")
     TDFLOW_PAR_SCALE  case scale for the parallel sweep (default 0.05)
     TDFLOW_ECO_ONLY  run only the incremental-ECO benchmark and exit
     TDFLOW_SKIP_ECO  set to skip the incremental-ECO benchmark
     TDFLOW_ECO_SCALE  case scale for the ECO benchmark (default 0.05)
     TDFLOW_SERVE_ONLY  run only the serve-daemon benchmark and exit
     TDFLOW_SKIP_SERVE  set to skip the serve-daemon benchmark
     TDFLOW_SERVE_SCALE  case scale for the serve benchmark (default 0.05)
     TDFLOW_SERVE_ECOS  warm ECO requests to stream (default 120)
     TDFLOW_SERVE_COLD  cold one-shot CLI invocations to chain (default 20) *)

open Bechamel

let scale =
  match Sys.getenv_opt "TDFLOW_SCALE" with
  | Some s -> (try float_of_string s with _ -> 0.05)
  | None -> 0.05

(* Generated artifacts (BENCH_*.json, fig7 CSV, fig8 SVGs) land under one
   directory instead of littering the repo root; CI uploads it wholesale. *)
let out_dir =
  let dir = Option.value (Sys.getenv_opt "TDFLOW_OUT_DIR") ~default:"out" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let out_path name = Filename.concat out_dir name

(* ------------------------------------------------------------------ *)
(* MCMF solver microbenchmark: Builder/Csr/Workspace core              *)
(* ------------------------------------------------------------------ *)

module Mcmf = Tdf_flow.Mcmf
module Prng = Tdf_util.Prng
module Json = Tdf_telemetry.Json

(* Transportation network shaped like a legalization bin graph: source ->
   supply bins -> windowed demand bins -> sink.  Same generator as the
   differential tests in [test/test_flow.ml], so the pinned golden values
   cover a graph family the test suite already cross-checks against the
   seed solver. *)
let transportation_edges ~supplies ~demands ~window ~seed add_edge =
  let rng = Prng.create seed in
  let ns = supplies and ndem = demands in
  let source = 0 and sink = ns + ndem + 1 in
  let sup = Array.init ns (fun _ -> 1 + Prng.int rng 8) in
  let dem = Array.init ndem (fun _ -> 1 + Prng.int rng 8) in
  for i = 0 to ns - 1 do
    add_edge ~src:source ~dst:(1 + i) ~cap:sup.(i) ~cost:0
  done;
  for j = 0 to ndem - 1 do
    add_edge ~src:(1 + ns + j) ~dst:sink ~cap:dem.(j) ~cost:0
  done;
  for i = 0 to ns - 1 do
    let center = i * ndem / ns in
    for dj = -window to window do
      let j = center + dj in
      if j >= 0 && j < ndem then
        add_edge ~src:(1 + i) ~dst:(1 + ns + j)
          ~cap:(min sup.(i) dem.(j))
          ~cost:(abs dj + Prng.int rng 3)
    done
  done;
  (source, sink)

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let solve_csr_exn g ~ws ~source ~sink =
  match Mcmf.solve_csr g ~ws ~source ~sink () with
  | Ok s -> (s.Mcmf.flow, s.Mcmf.cost)
  | Error e -> failwith (Mcmf.error_to_string e)

type solver_case = {
  sc_name : string;
  sc_vertices : int;
  sc_edges : int;
  sc_flow : int;
  sc_cost : int;
  sc_build_s : float;
  sc_solve_s : float;
  sc_iters : int;
  sc_repeat_reuse_s : float;
  sc_repeat_rebuild_s : float;
  sc_minor_words_solve : float;
  sc_augmentations : int;
  sc_variant_solve_s : (string * float) list;
      (* one timed solve per engine variant, keyed "<name>_solve_s" *)
}

let run_solver_case ~name ~supplies ~demands ~window ~iters =
  let n = supplies + demands + 2 in
  let build () =
    let b = Mcmf.Builder.create n in
    let source, sink =
      transportation_edges ~supplies ~demands ~window ~seed:42
        (fun ~src ~dst ~cap ~cost ->
          ignore (Mcmf.Builder.add_edge b ~src ~dst ~cap ~cost))
    in
    (Mcmf.Csr.of_builder b, source, sink)
  in
  let (g, source, sink), build_s = timed build in
  let ws = Mcmf.Workspace.create () in
  (* Fresh solve, uninstrumented, so the minor-words delta measures the
     solver alone (an aggregating sink would bill its own allocation). *)
  let mw0 = Gc.minor_words () in
  let (flow, cost), solve_s =
    timed (fun () -> solve_csr_exn g ~ws ~source ~sink)
  in
  let minor_words = Gc.minor_words () -. mw0 in
  (* One instrumented re-solve to count augmentations. *)
  let agg = Tdf_telemetry.Aggregate.create () in
  let snk = Tdf_telemetry.Aggregate.sink agg in
  Tdf_telemetry.install snk;
  Mcmf.Csr.reset_caps g;
  let flow', cost' = solve_csr_exn g ~ws ~source ~sink in
  Tdf_telemetry.remove snk;
  assert (flow' = flow && cost' = cost);
  let augmentations =
    Tdf_telemetry.Aggregate.counter_total agg "mcmf.augmentations"
  in
  (* One timed solve per engine variant.  Max flow is unique and so is the
     min cost at max flow, so every variant must reproduce the default
     run's (flow, cost) exactly — the bench doubles as a differential
     check on the exact graph it times. *)
  let variant_solve v =
    Mcmf.Csr.reset_caps g;
    let (f, c), dt =
      timed (fun () ->
          match Mcmf.solve_csr g ~ws ~source ~sink ~variant:v () with
          | Ok s -> (s.Mcmf.flow, s.Mcmf.cost)
          | Error e -> failwith (Mcmf.error_to_string e))
    in
    if f <> flow || c <> cost then begin
      Printf.eprintf
        "VARIANT MISMATCH: %s under %s solved (flow=%d, cost=%d); default \
         solved (flow=%d, cost=%d)\n"
        name (Mcmf.variant_name v) f c flow cost;
      exit 1
    end;
    (Mcmf.variant_name v ^ "_solve_s", dt)
  in
  let variant_solve_s =
    List.map variant_solve [ Mcmf.Ssp; Mcmf.Radix; Mcmf.Blocking ]
  in
  (* Repeated solves in the hot-loop shape: reset capacities, reuse the
     frozen graph and scratch ... *)
  let (), repeat_reuse_s =
    timed (fun () ->
        for _ = 1 to iters do
          Mcmf.Csr.reset_caps g;
          ignore (solve_csr_exn g ~ws ~source ~sink)
        done)
  in
  (* ... versus rebuilding graph and scratch from scratch every time. *)
  let (), repeat_rebuild_s =
    timed (fun () ->
        for _ = 1 to iters do
          let g, source, sink = build () in
          let ws = Mcmf.Workspace.create () in
          ignore (solve_csr_exn g ~ws ~source ~sink)
        done)
  in
  Printf.printf
    "  %-6s n=%5d m=%6d flow=%5d cost=%6d build=%.4fs solve=%.4fs \
     repeat(%d): reuse=%.4fs rebuild=%.4fs minor_words=%.0f augs=%d\n%!"
    name n (Mcmf.Csr.n_edges g) flow cost build_s solve_s iters repeat_reuse_s
    repeat_rebuild_s minor_words augmentations;
  Printf.printf "  %-6s variants:%s\n%!" ""
    (String.concat ""
       (List.map (fun (k, dt) -> Printf.sprintf " %s=%.4f" k dt)
          variant_solve_s));
  {
    sc_name = name;
    sc_vertices = n;
    sc_edges = Mcmf.Csr.n_edges g;
    sc_flow = flow;
    sc_cost = cost;
    sc_build_s = build_s;
    sc_solve_s = solve_s;
    sc_iters = iters;
    sc_repeat_reuse_s = repeat_reuse_s;
    sc_repeat_rebuild_s = repeat_rebuild_s;
    sc_minor_words_solve = minor_words;
    sc_augmentations = augmentations;
    sc_variant_solve_s = variant_solve_s;
  }

let solver_case_json r =
  Json.Obj
    ([
      ("name", Json.String r.sc_name);
      ("n_vertices", Json.Int r.sc_vertices);
      ("n_edges", Json.Int r.sc_edges);
      ("flow", Json.Int r.sc_flow);
      ("cost", Json.Int r.sc_cost);
      ("build_s", Json.Float r.sc_build_s);
      ("solve_s", Json.Float r.sc_solve_s);
      ("repeat_iters", Json.Int r.sc_iters);
      ("repeat_reuse_s", Json.Float r.sc_repeat_reuse_s);
      ("repeat_rebuild_s", Json.Float r.sc_repeat_rebuild_s);
      ("minor_words_solve", Json.Float r.sc_minor_words_solve);
      ("augmentations", Json.Int r.sc_augmentations);
      ( "minor_words_per_aug",
        Json.Float
          (if r.sc_augmentations = 0 then 0.
           else r.sc_minor_words_solve /. float_of_int r.sc_augmentations) );
      (* Per-variant timings follow; flow/cost agreement across variants
         is asserted in [run_solver_case] (the bench aborts on mismatch). *)
      ("variants_agree", Json.Bool true);
    ]
    @ List.map (fun (k, dt) -> (k, Json.Float dt)) r.sc_variant_solve_s)

(* Golden file format: '#' comments plus "flow <int>" / "cost <int>"
   lines pinning the small case.  A mismatch means the solver's arithmetic
   changed, which the differential tests should have caught first. *)
let check_golden path results =
  let exp_flow = ref None and exp_cost = ref None in
  let ic = open_in path in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if line <> "" && line.[0] <> '#' then
         match
           String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
         with
         | [ "flow"; v ] -> exp_flow := Some (int_of_string v)
         | [ "cost"; v ] -> exp_cost := Some (int_of_string v)
         | _ -> ()
     done
   with End_of_file -> close_in ic);
  match
    (!exp_flow, !exp_cost, List.find_opt (fun r -> r.sc_name = "small") results)
  with
  | Some f, Some c, Some r ->
    if r.sc_flow = f && r.sc_cost = c then
      Printf.printf "Golden check OK: small case (flow=%d, cost=%d) matches %s\n"
        f c path
    else begin
      Printf.eprintf
        "GOLDEN MISMATCH: small case solved (flow=%d, cost=%d) but %s pins \
         (flow=%d, cost=%d)\n"
        r.sc_flow r.sc_cost path f c;
      exit 1
    end
  | _ ->
    Printf.eprintf "GOLDEN: could not parse flow/cost from %s\n" path;
    exit 1

let run_solver_bench () =
  Printf.printf "== MCMF solver microbenchmark (CSR core) ==\n";
  (* The large (n=5002) case runs by default: it is the one whose
     asymptotics the radix/blocking engines change, and the checked-in
     ci/baselines/BENCH_solver.json pins it.  The historical
     TDFLOW_SOLVER_LARGE opt-in gate is gone. *)
  let cases =
    [
      ("small", 24, 24, 4, 200);
      ("medium", 400, 400, 8, 20);
      ("large", 2500, 2500, 12, 5);
    ]
  in
  let results =
    List.map
      (fun (name, supplies, demands, window, iters) ->
        run_solver_case ~name ~supplies ~demands ~window ~iters)
      cases
  in
  let json =
    Json.Obj
      [
        ("generated_by", Json.String "bench/main.ml");
        ( "default_variant",
          Json.String (Mcmf.variant_name (Mcmf.default_variant ())) );
        ("cases", Json.List (List.map solver_case_json results));
      ]
  in
  let path = out_path "BENCH_solver.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Solver microbenchmark written to %s\n" path;
  (match Sys.getenv_opt "TDFLOW_GOLDEN" with
  | Some path -> check_golden path results
  | None -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel scaling: the experiments grid across domain counts         *)
(* ------------------------------------------------------------------ *)

(* One suite reproduction per domain count, timed end-to-end.  The grid
   output is required to be bit-identical at every count (the pool's
   determinism contract), so besides the timings this doubles as a
   cross-check: the rendered comparison table — with the nondeterministic
   runtime column zeroed — must match the jobs=1 reference exactly. *)
let run_parallel_bench () =
  let jobs_list =
    match Sys.getenv_opt "TDFLOW_PAR_JOBS" with
    | Some s ->
      String.split_on_char ' ' s
      |> List.filter_map int_of_string_opt
      |> List.filter (fun j -> j >= 1)
    | None -> [ 1; 2; 4; 8 ]
  in
  let jobs_list = if jobs_list = [] then [ 1 ] else jobs_list in
  let pscale =
    match Sys.getenv_opt "TDFLOW_PAR_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.05)
    | None -> 0.05
  in
  Printf.printf "== parallel scaling (experiments grid, scale %.3g) ==\n"
    pscale;
  Printf.printf "  host: recommended_domain_count=%d\n"
    (Domain.recommended_domain_count ());
  let strip results =
    (* runtime_s is wall-clock noise; everything else must be invariant *)
    let rows =
      List.map (fun (r : Tdf_experiments.Runner.case_result) ->
          { r with
            Tdf_experiments.Runner.rows =
              List.map
                (fun row -> { row with Tdf_experiments.Runner.runtime_s = 0. })
                r.Tdf_experiments.Runner.rows })
        results
    in
    Tdf_experiments.Tables.comparison ~title:"parallel-check" rows
  in
  let run_at jobs =
    Tdf_par.set_jobs jobs;
    let results, dt =
      timed (fun () ->
          Tdf_experiments.Runner.run_suite ~scale:pscale
            Tdf_benchgen.Spec.Iccad2023)
    in
    (jobs, dt, strip results)
  in
  let runs = List.map run_at jobs_list in
  Tdf_par.set_jobs 1;
  let _, base_dt, base_table =
    match runs with r :: _ -> r | [] -> assert false
  in
  let deterministic =
    List.for_all (fun (_, _, table) -> table = base_table) runs
  in
  List.iter
    (fun (jobs, dt, _) ->
      Printf.printf "  jobs=%d  %.3fs  speedup %.2fx\n%!" jobs dt
        (base_dt /. dt))
    runs;
  Printf.printf "  deterministic across job counts: %b\n" deterministic;
  (* Tiled flow sweep: one from-scratch legalization per tile count on a
     mid-size case, every placement byte-compared against the untiled
     run.  Tiling is required to never change the result; the timings
     record the honest (possibly <1x) speedup, and the reconcile/conflict
     counters say how much speculation actually landed. *)
  let tile_list = [ 1; 2; 4; 9 ] in
  let tile_design =
    Tdf_benchgen.Gen.generate_by_name ~scale:pscale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  Printf.printf "  tiled flow (iccad2023 case2, scale %.3g):\n" pscale;
  Tdf_par.set_jobs 4;
  let tile_runs =
    List.map
      (fun tiles ->
        Tdf_legalizer.Tile.reset_counters ();
        let result, dt =
          timed (fun () -> Tdf_legalizer.Flow3d.run_tiled ~tiles tile_design)
        in
        let txt =
          match result with
          | Ok r ->
            Tdf_io.Text.placement_to_string tile_design
              r.Tdf_legalizer.Flow3d.placement
          | Error e ->
            Printf.eprintf "TILED RUN FAILED (tiles=%d): %s\n" tiles
              (Tdf_legalizer.Flow3d.error_to_string e);
            exit 1
        in
        let c = Tdf_legalizer.Tile.counters () in
        (tiles, dt, txt, c))
      tile_list
  in
  Tdf_par.set_jobs 1;
  let tile_base_dt, tile_base_txt =
    match tile_runs with
    | (_, dt, txt, _) :: _ -> (dt, txt)
    | [] -> assert false
  in
  let tile_deterministic =
    List.for_all (fun (_, _, txt, _) -> txt = tile_base_txt) tile_runs
  in
  List.iter
    (fun (tiles, dt, _, (c : Tdf_legalizer.Tile.counters)) ->
      Printf.printf
        "    tiles=%d  %.3fs  speedup %.2fx  reconciled %d  conflicts %d  \
         live %d\n\
         %!"
        tiles dt (tile_base_dt /. dt) c.Tdf_legalizer.Tile.reconciled
        c.Tdf_legalizer.Tile.conflicts c.Tdf_legalizer.Tile.live)
    tile_runs;
  Printf.printf "  deterministic across tile counts: %b\n" tile_deterministic;
  let json =
    Json.Obj
      [
        ("generated_by", Json.String "bench/main.ml");
        ("scale", Json.Float pscale);
        ("recommended_domain_count", Json.Int (Domain.recommended_domain_count ()));
        ("deterministic", Json.Bool (deterministic && tile_deterministic));
        ( "runs",
          Json.List
            (List.map
               (fun (jobs, dt, _) ->
                 Json.Obj
                   [
                     ("jobs", Json.Int jobs);
                     ("wall_s", Json.Float dt);
                     ("speedup", Json.Float (base_dt /. dt));
                   ])
               runs) );
        ( "tile_runs",
          Json.List
            (List.map
               (fun (tiles, dt, _, (c : Tdf_legalizer.Tile.counters)) ->
                 Json.Obj
                   [
                     ("tiles", Json.Int tiles);
                     ("wall_s", Json.Float dt);
                     ("speedup", Json.Float (tile_base_dt /. dt));
                     ("reconciled", Json.Int c.Tdf_legalizer.Tile.reconciled);
                     ("conflicts", Json.Int c.Tdf_legalizer.Tile.conflicts);
                     ("live", Json.Int c.Tdf_legalizer.Tile.live);
                   ])
               tile_runs) );
      ]
  in
  let path = out_path "BENCH_parallel.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Parallel scaling written to %s\n" path;
  if not deterministic then begin
    Printf.eprintf
      "PARALLEL MISMATCH: grid output differs across domain counts\n";
    exit 1
  end;
  if not tile_deterministic then begin
    Printf.eprintf
      "TILE MISMATCH: tiled placement differs from the untiled run\n";
    exit 1
  end;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Incremental ECO: local re-legalization vs from-scratch latency      *)
(* ------------------------------------------------------------------ *)

module Eco = Tdf_incremental.Eco
module Delta = Tdf_io.Delta

(* The gate-sizing ECO shape of examples/eco_incremental.ml as a delta:
   [k] distinct cells jump into a window around their legal position. *)
let eco_delta ~rng ~design ~(prev : Tdf_netlist.Placement.t) ~k =
  let n = Tdf_netlist.Design.n_cells design in
  let outline = (Tdf_netlist.Design.die design 0).Tdf_netlist.Die.outline in
  let window = 40 in
  let jitter extent p =
    max 0 (min (extent - 1) (p - window + Prng.int rng ((2 * window) + 1)))
  in
  let seen = Array.make n false in
  let ops = ref [] in
  let made = ref 0 in
  while !made < k do
    let c = Prng.int rng n in
    if not seen.(c) then begin
      seen.(c) <- true;
      incr made;
      ops :=
        Delta.Move
          {
            cell = c;
            x = jitter outline.Tdf_geometry.Rect.w prev.Tdf_netlist.Placement.x.(c);
            y = jitter outline.Tdf_geometry.Rect.h prev.Tdf_netlist.Placement.y.(c);
            die = prev.Tdf_netlist.Placement.die.(c);
          }
        :: !ops
    end
  done;
  List.rev !ops

let run_eco_bench () =
  let escale =
    match Sys.getenv_opt "TDFLOW_ECO_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.05)
    | None -> 0.05
  in
  Printf.printf
    "== incremental ECO re-legalization (iccad2023 case2, scale %.3g) ==\n"
    escale;
  let design =
    Tdf_benchgen.Gen.generate_by_name ~scale:escale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let n = Tdf_netlist.Design.n_cells design in
  let prev, signoff_s =
    timed (fun () ->
        (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement)
  in
  if not (Tdf_metrics.Legality.is_legal design prev) then begin
    Printf.eprintf "ECO BENCH: signoff placement is not legal\n";
    exit 1
  end;
  Printf.printf "  %d cells, signoff legalization %.3fs\n%!" n signoff_s;
  let fracs = [ 0.002; 0.01; 0.05 ] in
  let repeats = 3 in
  let run_frac frac =
    let k = max 1 (int_of_float (frac *. float_of_int n)) in
    let rng = Prng.of_string (Printf.sprintf "eco-bench-%g" frac) in
    let delta = eco_delta ~rng ~design ~prev ~k in
    (* Incremental repair: same inputs are deterministic, so best-of-N
       only filters scheduler noise. *)
    let result = ref None in
    let eco_s = ref infinity in
    for _ = 1 to repeats do
      let r, dt =
        timed (fun () ->
            match Eco.run design prev delta with
            | Ok r -> r
            | Error e -> failwith (Eco.error_to_string e))
      in
      if dt < !eco_s then eco_s := dt;
      result := Some r
    done;
    let r = Option.get !result in
    let eco_s = !eco_s in
    (* From-scratch reference: full legalization of the same perturbed
       design the incremental engine solved. *)
    let scratch_s = ref infinity in
    let scratch_legal = ref false in
    for _ = 1 to 2 do
      let sr, dt =
        timed (fun () -> Tdf_legalizer.Flow3d.legalize r.Eco.design)
      in
      if dt < !scratch_s then scratch_s := dt;
      scratch_legal :=
        Tdf_metrics.Legality.is_legal r.Eco.design
          sr.Tdf_legalizer.Flow3d.placement
    done;
    let scratch_s = !scratch_s in
    let s = r.Eco.stats in
    let legal = Tdf_metrics.Legality.is_legal r.Eco.design r.Eco.placement in
    let speedup = scratch_s /. eco_s in
    Printf.printf
      "  delta %4d cells (%4.1f%%): eco %.4fs scratch %.4fs speedup %6.1fx \
       dirty %d/%d bins widenings=%d fallbacks=%d %s legal=%b\n%!"
      k
      (100. *. float_of_int k /. float_of_int n)
      eco_s scratch_s speedup s.Eco.dirty_bins s.Eco.total_bins s.Eco.widenings
      s.Eco.fallbacks
      (Eco.path_name s.Eco.path)
      legal;
    if not (legal && !scratch_legal) then begin
      Printf.eprintf "ECO BENCH: illegal result at delta %d\n" k;
      exit 1
    end;
    Json.Obj
      [
        ("delta_cells", Json.Int k);
        ("delta_frac", Json.Float frac);
        ("eco_s", Json.Float eco_s);
        ("scratch_s", Json.Float scratch_s);
        ("speedup", Json.Float speedup);
        ("dirty_bins", Json.Int s.Eco.dirty_bins);
        ("total_bins", Json.Int s.Eco.total_bins);
        ("dirty_segments", Json.Int s.Eco.dirty_segments);
        ("widenings", Json.Int s.Eco.widenings);
        ("fallbacks", Json.Int s.Eco.fallbacks);
        ("path", Json.String (Eco.path_name s.Eco.path));
        ("legal", Json.Bool legal);
      ]
  in
  let runs = List.map run_frac fracs in
  let json =
    Json.Obj
      [
        ("generated_by", Json.String "bench/main.ml");
        ("case", Json.String "iccad2023:case2");
        ("scale", Json.Float escale);
        ("n_cells", Json.Int n);
        ("signoff_s", Json.Float signoff_s);
        ("runs", Json.List runs);
      ]
  in
  let path = out_path "BENCH_eco.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "ECO benchmark written to %s\n" path;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Serve daemon: warm-session ECO streaming vs one-shot CLI processes  *)
(* ------------------------------------------------------------------ *)

module Protocol = Tdf_io.Protocol
module Client = Tdf_server.Client

(* The real installed binary, spawned as a real daemon process: the bench
   measures the full socket round-trip, not an in-process shortcut. *)
let legalize_exe () =
  let near = Filename.dirname (Filename.dirname Sys.executable_name) in
  let candidates =
    [
      Filename.concat near "bin/legalize.exe";
      "_build/default/bin/legalize.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> failwith "serve bench: cannot locate bin/legalize.exe"

let spawn ?(quiet = true) exe args =
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let out = if quiet then dev_null else Unix.stdout in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: args))
      dev_null out Unix.stderr
  in
  Unix.close dev_null;
  pid

let wait_exit pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED c -> c
  | Unix.WSIGNALED s | Unix.WSTOPPED s -> 128 + s

let connect_with_retry sock =
  let rec go tries =
    match Client.connect sock with
    | c -> c
    | exception Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      go (tries - 1)
  in
  go 100

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_serve_bench () =
  let sscale =
    match Sys.getenv_opt "TDFLOW_SERVE_SCALE" with
    | Some s -> (try float_of_string s with _ -> 0.05)
    | None -> 0.05
  in
  let n_ecos =
    match Option.bind (Sys.getenv_opt "TDFLOW_SERVE_ECOS") int_of_string_opt with
    | Some n when n > 0 -> n
    | _ -> 120
  in
  let n_cold =
    match Option.bind (Sys.getenv_opt "TDFLOW_SERVE_COLD") int_of_string_opt with
    | Some n when n > 0 -> min n n_ecos
    | _ -> min 20 n_ecos
  in
  Printf.printf
    "== serve daemon (iccad2023 case2, scale %.3g, %d warm ecos, %d cold) ==\n"
    sscale n_ecos n_cold;
  let exe = legalize_exe () in
  let design =
    Tdf_benchgen.Gen.generate_by_name ~scale:sscale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let n = Tdf_netlist.Design.n_cells design in
  let prev =
    (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement
  in
  if not (Tdf_metrics.Legality.is_legal design prev) then begin
    Printf.eprintf "SERVE BENCH: signoff placement is not legal\n";
    exit 1
  end;
  let work = out_path "serve_bench" in
  if not (Sys.file_exists work) then Sys.mkdir work 0o755;
  let file name = Filename.concat work name in
  Tdf_io.Text.save_design (file "d0.design") design;
  Tdf_io.Text.save_placement (file "p0.place") design prev;
  (* Move-only deltas: cell ids stay stable across the whole chain, so the
     same delta files drive both the warm stream and the cold CLI chain. *)
  let rng = Prng.of_string "serve-bench" in
  let k = max 2 (n / 300) in
  let deltas =
    List.init n_ecos (fun i ->
        let d = eco_delta ~rng ~design ~prev ~k in
        Delta.save (file (Printf.sprintf "delta%d.delta" i)) d;
        d)
  in
  (* Warm path: one daemon process, one session, the whole delta stream
     over a single connection.  A few requests inside the byte-compared
     prefix override --jobs to 2 (and reset to 1 right after) to prove
     byte-identity is jobs-invariant on the server side too; the override
     is not left sticky because pool overhead would drown the latency
     numbers on dirty regions this small. *)
  let sock = file "sock" in
  let reqs =
    Protocol.Load_design
      {
        session = "bench";
        design = Path (file "d0.design");
        placement = Some (Path (file "p0.place"));
        tiles = None;
      }
    :: List.mapi
         (fun i d ->
           Protocol.Eco
             {
               session = "bench";
               delta = Text (Delta.to_string d);
               radius = None;
               max_widenings = None;
               budget_ms = None;
               jobs =
                 (if i mod 40 = 1 then Some 2
                  else if i mod 40 = 2 then Some 1
                  else None);
               (* Like the jobs override above: a few requests run tiled
                  inside the byte-compared prefix to prove replies are
                  tiles-invariant too. *)
               tiles = (if i mod 40 = 3 then Some 4 else None);
               want_placement = i < n_cold;
             })
         deltas
  in
  let run_stream ?(extra = []) label =
    let server_pid = spawn exe ([ "serve"; "--socket"; sock ] @ extra) in
    let client = connect_with_retry sock in
    let summary = Client.Trace.replay client reqs in
    let stats_reply = Client.call client Protocol.Stats in
    ignore (Client.call client Protocol.Shutdown);
    Client.close client;
    let server_exit = wait_exit server_pid in
    if server_exit <> 0 then begin
      Printf.eprintf "SERVE BENCH: %s daemon exited with %d\n" label
        server_exit;
      exit 1
    end;
    (summary, stats_reply)
  in
  let eco_stats (summary : Client.Trace.summary) =
    let ecos =
      List.filter
        (fun (o : Client.Trace.outcome) ->
          match o.request with Protocol.Eco _ -> true | _ -> false)
        summary.Client.Trace.outcomes
    in
    let lat =
      Array.of_list
        (List.map (fun (o : Client.Trace.outcome) -> o.wall_s *. 1000.) ecos)
    in
    let legal = ref true and reused = ref 0 and placements = ref [] in
    List.iter
      (fun (o : Client.Trace.outcome) ->
        match o.response with
        | Ok (Protocol.Eco_applied r) ->
          if not r.legal then legal := false;
          if r.grid_reused then incr reused;
          Option.iter (fun p -> placements := p :: !placements) r.placement
        | Ok _ -> ()
        | Error e ->
          Printf.eprintf "SERVE BENCH: eco error %s: %s\n" e.Protocol.code
            e.Protocol.detail;
          legal := false)
      ecos;
    (ecos, lat, !legal, !reused, List.rev !placements)
  in
  let summary, stats_reply = run_stream "warm" in
  let ecos, warm_lat, warm_legal, reused, warm_placements = eco_stats summary in
  let legal = ref warm_legal in
  let cache_hit_rate = float_of_int reused /. float_of_int (List.length ecos) in
  (* Journaled rerun: the identical trace with durability on at the
     default fsync policy.  The journal must not change a single placement
     byte, and its p50 latency overhead is recorded for the bench gate
     (journal_overhead_p50). *)
  let jdir = file "journal" in
  (* A previous bench run's journal would make startup recover a stale
     session and pollute the recovery counters: start from scratch. *)
  if Sys.file_exists jdir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat jdir f))
      (Sys.readdir jdir);
  let j_summary, j_stats_reply =
    run_stream ~extra:[ "--journal"; jdir ] "journaled"
  in
  let _, journal_lat, j_legal, _, j_placements = eco_stats j_summary in
  if not j_legal then legal := false;
  let journal_identical =
    List.length j_placements = List.length warm_placements
    && List.for_all2 String.equal warm_placements j_placements
  in
  if not journal_identical then
    Printf.eprintf
      "SERVE BENCH: journaled stream produced different placement bytes\n";
  (* Cold baseline: the same first deltas as fresh `legalize eco` process
     invocations, files carried forward (moves shift gp anchors, so each
     step needs the previous step's perturbed design). *)
  let cold_lat = Array.make n_cold 0. in
  let byte_identical = ref true in
  for i = 0 to n_cold - 1 do
    let args =
      [
        "eco";
        "-d"; file (Printf.sprintf "d%d.design" i);
        "-p"; file (Printf.sprintf "p%d.place" i);
        "--delta"; file (Printf.sprintf "delta%d.delta" i);
        "-o"; file (Printf.sprintf "p%d.place" (i + 1));
        "--out-design"; file (Printf.sprintf "d%d.design" (i + 1));
      ]
    in
    let code, dt = timed (fun () -> wait_exit (spawn exe args)) in
    if code <> 0 then begin
      Printf.eprintf "SERVE BENCH: cold eco %d exited with %d\n" i code;
      exit 1
    end;
    cold_lat.(i) <- dt *. 1000.
  done;
  List.iteri
    (fun i warm ->
      let cold = read_file (file (Printf.sprintf "p%d.place" (i + 1))) in
      if warm <> cold then begin
        byte_identical := false;
        Printf.eprintf
          "SERVE BENCH: placement after eco %d differs between the warm \
           session and the cold CLI chain\n"
          i
      end)
    warm_placements;
  let pct = Tdf_util.Stats.percentile in
  let warm_p50 = pct warm_lat 50. and warm_p99 = pct warm_lat 99. in
  let journal_p50 = pct journal_lat 50. in
  let journal_overhead_p50 = journal_p50 /. warm_p50 in
  let cold_p50 = pct cold_lat 50. in
  let speedup_p50 = cold_p50 /. warm_p50 in
  Printf.printf
    "  warm: %d ecos, p50 %.2f ms, p99 %.2f ms, grid reuse %.1f%%\n"
    (List.length ecos) warm_p50 warm_p99 (100. *. cache_hit_rate);
  Printf.printf
    "  journaled: p50 %.2f ms (%.2fx of unjournaled), byte-identical %b\n"
    journal_p50 journal_overhead_p50 journal_identical;
  Printf.printf "  cold: %d process chains, p50 %.2f ms\n" n_cold cold_p50;
  Printf.printf "  speedup p50 %.1fx, legal %b, byte-identical %b\n%!"
    speedup_p50 !legal !byte_identical;
  let stats_of = function
    | Ok (Protocol.Stats_snapshot j) -> j
    | _ -> Json.Null
  in
  let server_stats = stats_of stats_reply in
  let journaled_server_stats = stats_of j_stats_reply in
  let json =
    Json.Obj
      [
        ("generated_by", Json.String "bench/main.ml");
        ("case", Json.String "iccad2023:case2");
        ("scale", Json.Float sscale);
        ("n_cells", Json.Int n);
        ( "serve_runs",
          Json.List
            [
              Json.Obj
                [
                  ("name", Json.String "case2-move-stream");
                  ("ecos", Json.Int (List.length ecos));
                  ("cold_chain", Json.Int n_cold);
                  ("legal", Json.Bool !legal);
                  ("byte_identical", Json.Bool !byte_identical);
                  ("warm_p50_ms", Json.Float warm_p50);
                  ("warm_p99_ms", Json.Float warm_p99);
                  ("cold_p50_ms", Json.Float cold_p50);
                  ("speedup_p50", Json.Float speedup_p50);
                  ("cache_hit_rate", Json.Float cache_hit_rate);
                  ("journal_p50_ms", Json.Float journal_p50);
                  ("journal_overhead_p50", Json.Float journal_overhead_p50);
                  ("journal_byte_identical", Json.Bool journal_identical);
                ];
            ] );
        ("server_stats", server_stats);
        ("journaled_server_stats", journaled_server_stats);
      ]
  in
  let path = out_path "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Serve benchmark written to %s\n" path;
  if not (!legal && !byte_identical && journal_identical) then begin
    Printf.eprintf "SERVE BENCH: correctness check failed\n";
    exit 1
  end;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table / figure         *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let micro_scale = 0.02 in
  let d2022 =
    Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale Tdf_benchgen.Spec.Iccad2022
      "case3"
  in
  let d2023 =
    Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let legal =
    (Tdf_legalizer.Flow3d.legalize d2023).Tdf_legalizer.Flow3d.placement
  in
  Test.make_grouped ~name:"tdflow"
    [
      Test.make ~name:"table2/generate_case"
        (Staged.stage (fun () ->
             ignore
               (Tdf_benchgen.Gen.generate_by_name ~scale:micro_scale
                  Tdf_benchgen.Spec.Iccad2022 "case2")));
      Test.make ~name:"table3/flow3d_iccad2022"
        (Staged.stage (fun () -> ignore (Tdf_legalizer.Flow3d.legalize d2022)));
      Test.make ~name:"table4/flow3d_iccad2023"
        (Staged.stage (fun () -> ignore (Tdf_legalizer.Flow3d.legalize d2023)));
      Test.make ~name:"table5/flow3d_no_d2d"
        (Staged.stage (fun () ->
             ignore
               (Tdf_legalizer.Flow3d.legalize ~cfg:Tdf_legalizer.Config.no_d2d
                  d2023)));
      Test.make ~name:"fig7/hpwl_increase"
        (Staged.stage (fun () ->
             ignore (Tdf_metrics.Hpwl.increase_pct d2023 legal)));
      Test.make ~name:"fig8/svg_render"
        (Staged.stage (fun () ->
             ignore (Tdf_io.Svg.render_die d2023 legal ~die:1 ())));
      Test.make ~name:"ablations/refine_pass"
        (Staged.stage (fun () ->
             let p = Tdf_netlist.Placement.copy legal in
             ignore (Tdf_refine.Refine.run ~iterations:1 d2023 p)));
      Test.make ~name:"bonding/terminal_mcmf"
        (Staged.stage (fun () ->
             let grid =
               Tdf_bonding.Terminal.make_grid d2023 ~size:2 ~spacing:2
             in
             ignore (Tdf_bonding.Terminal.assign d2023 legal grid)));
    ]

let run_micro () =
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false
      ()
  in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "Bechamel micro-benchmarks (monotonic clock per run):\n";
  List.iter
    (fun (name, r) ->
      let ns =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | _ -> nan
      in
      Printf.printf "  %-28s %12.1f ns/run (%8.3f ms)\n" name ns (ns /. 1e6))
    rows;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Full reproduction: Tables II-V, Fig. 7, Fig. 8                      *)
(* ------------------------------------------------------------------ *)

let () =
  if Sys.getenv_opt "TDFLOW_PARALLEL_ONLY" <> None then begin
    run_parallel_bench ();
    exit 0
  end;
  if Sys.getenv_opt "TDFLOW_ECO_ONLY" <> None then begin
    run_eco_bench ();
    exit 0
  end;
  if Sys.getenv_opt "TDFLOW_SERVE_ONLY" <> None then begin
    run_serve_bench ();
    exit 0
  end;
  run_solver_bench ();
  if Sys.getenv_opt "TDFLOW_SOLVER_ONLY" <> None then exit 0;
  if Sys.getenv_opt "TDFLOW_SKIP_PARALLEL" = None then run_parallel_bench ();
  if Sys.getenv_opt "TDFLOW_SKIP_ECO" = None then run_eco_bench ();
  if Sys.getenv_opt "TDFLOW_SKIP_SERVE" = None then run_serve_bench ();
  Printf.printf "== 3D-Flow reproduction run (scale %.3g) ==\n\n" scale;
  if Sys.getenv_opt "TDFLOW_SKIP_MICRO" = None then run_micro ();
  (* Aggregating telemetry sink over the reproduction run proper (the
     micro-benchmarks above stay uninstrumented so their timings are not
     perturbed); flushed to BENCH_telemetry.json at the end so the perf
     trajectory is machine-readable. *)
  let telemetry = Tdf_telemetry.Aggregate.create () in
  Tdf_telemetry.install (Tdf_telemetry.Aggregate.sink telemetry);
  print_string (Tdf_experiments.Tables.table2 ~scale ());
  print_newline ();
  let r2022 = Tdf_experiments.Runner.run_suite ~scale Tdf_benchgen.Spec.Iccad2022 in
  print_string
    (Tdf_experiments.Tables.comparison
       ~title:
         "TABLE III — legalization comparison, ICCAD 2022 suite (normalized \
          displacement)"
       r2022);
  print_newline ();
  let r2023 = Tdf_experiments.Runner.run_suite ~scale Tdf_benchgen.Spec.Iccad2023 in
  print_string
    (Tdf_experiments.Tables.comparison
       ~title:
         "TABLE IV — legalization comparison, ICCAD 2023 suite (normalized \
          displacement)"
       r2023);
  print_newline ();
  let ablation =
    Tdf_experiments.Runner.run_suite
      ~methods:[ Tdf_experiments.Runner.Ours_no_d2d; Tdf_experiments.Runner.Ours ]
      ~scale Tdf_benchgen.Spec.Iccad2023
  in
  print_string (Tdf_experiments.Tables.ablation ablation);
  print_newline ();
  print_string
    (Tdf_experiments.Figures.fig7
       ~title:"FIG 7(a) — HPWL increase (%), ICCAD 2022 suite" r2022);
  print_string
    (Tdf_experiments.Figures.fig7
       ~title:"FIG 7(b) — HPWL increase (%), ICCAD 2023 suite" r2023);
  let csv = Tdf_experiments.Figures.fig7_csv (r2022 @ r2023) in
  let csv_path = out_path "fig7_hpwl.csv" in
  let oc = open_out csv_path in
  output_string oc csv;
  close_out oc;
  Printf.printf "\nFig. 7 data written to %s\n" csv_path;
  let no_d2d_svg, ours_svg =
    Tdf_experiments.Figures.fig8 ~scale ~dir:out_dir ()
  in
  Printf.printf "Fig. 8 visualizations written to %s and %s\n" no_d2d_svg ours_svg;
  if Sys.getenv_opt "TDFLOW_SKIP_ABLATIONS" = None then begin
    print_newline ();
    print_endline "== design-choice ablations (ICCAD 2023 case3) ==";
    let design =
      Tdf_benchgen.Gen.generate_by_name ~scale:(Float.min scale 0.05)
        Tdf_benchgen.Spec.Iccad2023 "case3"
    in
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: branch-and-bound slack alpha (§III-B)"
         (Tdf_experiments.Ablations.sweep_alpha design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: bin width w_v (§III-F)"
         (Tdf_experiments.Ablations.sweep_bin_width design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: D2D edge pricing (Eq. 7 + base cost)"
         (Tdf_experiments.Ablations.sweep_d2d_cost design));
    print_string
      (Tdf_experiments.Ablations.render
         ~title:"Ablation: cycle-canceling post-optimization rounds (§III-E)"
         (Tdf_experiments.Ablations.sweep_post_opt design))
  end;
  (* One bonding-terminal assignment exercises the MCMF substrate so its
     counters (augmentations, Dijkstra pops, relaxations) appear in the
     telemetry dump alongside the legalizer phases. *)
  let d_bond =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.02 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let legal_bond =
    (Tdf_legalizer.Flow3d.legalize d_bond).Tdf_legalizer.Flow3d.placement
  in
  let tgrid = Tdf_bonding.Terminal.make_grid d_bond ~size:2 ~spacing:2 in
  ignore (Tdf_bonding.Terminal.assign d_bond legal_bond tgrid);
  let json =
    Tdf_telemetry.Json.Obj
      [
        ("scale", Tdf_telemetry.Json.Float scale);
        ("generated_by", Tdf_telemetry.Json.String "bench/main.ml");
        ("telemetry", Tdf_telemetry.Aggregate.to_json telemetry);
      ]
  in
  let path = out_path "BENCH_telemetry.json" in
  let oc = open_out path in
  output_string oc (Tdf_telemetry.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "Telemetry (per-phase wall times, counters) written to %s\n"
    path
