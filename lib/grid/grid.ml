module Interval = Tdf_geometry.Interval
module Rect = Tdf_geometry.Rect
module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Placement = Tdf_netlist.Placement

type edge_kind = Horizontal | Vertical | D2d

type edge = { dst : int; kind : edge_kind }

type frag = { cell : int; mutable rho : float }

type bin = {
  id : int;
  die : int;
  row : int;
  seg : int;
  x : int;
  y : int;
  width : int;
  mutable frags : frag list;
  mutable used : float;
}

type segment = {
  sid : int;
  s_die : int;
  s_row : int;
  s_lo : int;
  s_hi : int;
  s_bins : int array;
}

type t = {
  design : Design.t;
  bins : bin array;
  segments : segment array;
  row_segments : int array array array;
  edges : edge array array;
  cell_frags : (int * float) list array;
  cell_seg : int array;
  die_used : float array;
  die_cap : float array;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let segments_of_row design d r =
  let die = Design.die design d in
  let row_y = Die.row_y die r in
  let row_span = Interval.make row_y (row_y + die.Die.row_height) in
  let x_span = Rect.x_span die.Die.outline in
  let holes =
    design.Design.macros
    |> Array.to_list
    |> List.filter_map (fun m ->
           if
             m.Blockage.die = d
             && Interval.overlaps (Rect.y_span m.Blockage.rect) row_span
           then Some (Rect.x_span m.Blockage.rect)
           else None)
  in
  Interval.subtract x_span holes

(* Split a segment of length [len] into near-uniform bins of target width
   [w_v]: the remainder is spread one unit at a time instead of leaving a
   sliver bin at the end. *)
let bin_widths ~len ~bin_width =
  let nbins = max 1 ((len + (bin_width / 2)) / bin_width) in
  let base = len / nbins and rem = len mod nbins in
  Array.init nbins (fun i -> if i < rem then base + 1 else base)

let build design ~bin_width =
  assert (bin_width > 0);
  let nd = Design.n_dies design in
  let bins = ref [] and segments = ref [] in
  let n_bin = ref 0 and n_seg = ref 0 in
  let row_segments =
    Array.init nd (fun d ->
        let die = Design.die design d in
        Array.init (Die.num_rows die) (fun r ->
            let segs = segments_of_row design d r in
            let y = Die.row_y die r in
            let ids =
              List.filter_map
                (fun (iv : Interval.t) ->
                  let len = Interval.length iv in
                  if len <= 0 then None
                  else begin
                    let sid = !n_seg in
                    incr n_seg;
                    let widths = bin_widths ~len ~bin_width in
                    let cursor = ref iv.Interval.lo in
                    let bin_ids =
                      Array.map
                        (fun w ->
                          let id = !n_bin in
                          incr n_bin;
                          bins :=
                            { id; die = d; row = r; seg = sid; x = !cursor; y;
                              width = w; frags = []; used = 0. }
                            :: !bins;
                          cursor := !cursor + w;
                          id)
                        widths
                    in
                    segments :=
                      { sid; s_die = d; s_row = r; s_lo = iv.Interval.lo;
                        s_hi = iv.Interval.hi; s_bins = bin_ids }
                      :: !segments;
                    Some sid
                  end)
                segs
            in
            Array.of_list ids))
  in
  let bins = Array.of_list (List.rev !bins) in
  let segments = Array.of_list (List.rev !segments) in
  Array.iteri (fun i b -> assert (b.id = i)) bins;
  let edges = Array.make (Array.length bins) [] in
  let add_edge src dst kind = edges.(src) <- { dst; kind } :: edges.(src) in
  (* Horizontal edges: consecutive bins of a segment. *)
  Array.iter
    (fun s ->
      let ids = s.s_bins in
      for i = 0 to Array.length ids - 2 do
        add_edge ids.(i) ids.(i + 1) Horizontal;
        add_edge ids.(i + 1) ids.(i) Horizontal
      done)
    segments;
  (* Bins of a row in x order (concatenating its segments). *)
  let row_bins d r =
    row_segments.(d).(r)
    |> Array.to_list
    |> List.concat_map (fun sid -> Array.to_list segments.(sid).s_bins)
    |> Array.of_list
  in
  let x_overlap a b =
    Interval.overlaps
      (Interval.make a.x (a.x + a.width))
      (Interval.make b.x (b.x + b.width))
  in
  (* Connect x-overlapping bins of two sorted bin-id arrays. *)
  let connect_overlapping ids1 ids2 kind =
    let n1 = Array.length ids1 and n2 = Array.length ids2 in
    let j = ref 0 in
    for i = 0 to n1 - 1 do
      let b1 = bins.(ids1.(i)) in
      while !j < n2 && bins.(ids2.(!j)).x + bins.(ids2.(!j)).width <= b1.x do
        incr j
      done;
      let k = ref !j in
      while !k < n2 && bins.(ids2.(!k)).x < b1.x + b1.width do
        let b2 = bins.(ids2.(!k)) in
        if x_overlap b1 b2 then begin
          add_edge b1.id b2.id kind;
          add_edge b2.id b1.id kind
        end;
        incr k
      done
    done
  in
  (* Vertical edges: adjacent rows of a die. *)
  for d = 0 to nd - 1 do
    let nrows = Array.length row_segments.(d) in
    for r = 0 to nrows - 2 do
      connect_overlapping (row_bins d r) (row_bins d (r + 1)) Vertical
    done
  done;
  (* D2D edges: adjacent dies in the stack, rows with planar y-overlap. *)
  for d = 0 to nd - 2 do
    let die_lo = Design.die design d and die_hi = Design.die design (d + 1) in
    let nrows_lo = Array.length row_segments.(d) in
    for r1 = 0 to nrows_lo - 1 do
      let y1 = Die.row_y die_lo r1 in
      let span1 = Interval.make y1 (y1 + die_lo.Die.row_height) in
      let nrows_hi = Array.length row_segments.(d + 1) in
      for r2 = 0 to nrows_hi - 1 do
        let y2 = Die.row_y die_hi r2 in
        let span2 = Interval.make y2 (y2 + die_hi.Die.row_height) in
        if Interval.overlaps span1 span2 then
          connect_overlapping (row_bins d r1) (row_bins (d + 1) r2) D2d
      done
    done
  done;
  let die_cap = Array.make nd 0. in
  Array.iter
    (fun b -> die_cap.(b.die) <- die_cap.(b.die) +. float_of_int b.width)
    bins;
  {
    design;
    bins;
    segments;
    row_segments;
    edges = Array.map Array.of_list edges;
    cell_frags = Array.make (Design.n_cells design) [];
    cell_seg = Array.make (Design.n_cells design) (-1);
    die_used = Array.make nd 0.;
    die_cap;
  }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let n_bins t = Array.length t.bins

let cap b = b.width

let supply b = Float.max 0. (b.used -. float_of_int b.width)

let demand b = Float.max 0. (float_of_int b.width -. b.used)

let total_overflow t = Array.fold_left (fun acc b -> acc +. supply b) 0. t.bins

let overflowed_bins t =
  Array.fold_left (fun acc b -> if supply b > 0. then b :: acc else acc) [] t.bins

let die_utilization t d =
  if t.die_cap.(d) <= 0. then 1.0 else t.die_used.(d) /. t.die_cap.(d)

let est_disp t ~cell b =
  let c = Design.cell t.design cell in
  let w = Cell.width_on c b.die in
  let xmax = max b.x (b.x + b.width - w) in
  let x = max b.x (min xmax c.Cell.gp_x) in
  abs (x - c.Cell.gp_x) + abs (b.y - c.Cell.gp_y)

(* ------------------------------------------------------------------ *)
(* Slot search                                                         *)
(* ------------------------------------------------------------------ *)

let find_slot t ~die ~x ~y ~w =
  let d = Design.die t.design die in
  let nrows = Array.length t.row_segments.(die) in
  if nrows = 0 then None
  else begin
    let r0 = Die.nearest_row d y in
    let best = ref None in
    let consider sid =
      let s = t.segments.(sid) in
      if s.s_hi - s.s_lo >= w then begin
        let cx = max s.s_lo (min (s.s_hi - w) x) in
        let cy = Die.row_y d s.s_row in
        let cost = abs (cx - x) + abs (cy - y) in
        match !best with
        | Some (bcost, _, _) when bcost <= cost -> ()
        | _ -> best := Some (cost, sid, cx)
      end
    in
    let row_dist r = abs (Die.row_y d r - y) in
    (* Expand outward from the nearest row; stop once the row's y distance
       alone exceeds the best complete cost. *)
    let rec expand k =
      let lo = r0 - k and hi = r0 + k in
      let lo_ok = lo >= 0 and hi_ok = hi < nrows && k > 0 in
      if (not lo_ok) && not hi_ok then ()
      else begin
        let min_d =
          min
            (if lo_ok then row_dist lo else max_int)
            (if hi_ok then row_dist hi else max_int)
        in
        let prune = match !best with Some (c, _, _) -> min_d > c | None -> false in
        if not prune then begin
          if lo_ok then Array.iter consider t.row_segments.(die).(lo);
          if hi_ok then Array.iter consider t.row_segments.(die).(hi);
          expand (k + 1)
        end
      end
    in
    expand 0;
    match !best with Some (_, sid, cx) -> Some (sid, cx) | None -> None
  end

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let add_frag t b ~cell ~rho ~w =
  let dw = rho *. float_of_int w in
  (match List.find_opt (fun f -> f.cell = cell) b.frags with
  | Some f -> f.rho <- f.rho +. rho
  | None -> b.frags <- { cell; rho } :: b.frags);
  b.used <- b.used +. dw;
  t.die_used.(b.die) <- t.die_used.(b.die) +. dw;
  t.cell_frags.(cell) <-
    (match List.assoc_opt b.id t.cell_frags.(cell) with
    | Some r ->
      (b.id, r +. rho) :: List.remove_assoc b.id t.cell_frags.(cell)
    | None -> (b.id, rho) :: t.cell_frags.(cell))

let sub_frag t b ~cell ~rho ~w =
  let dw = rho *. float_of_int w in
  (match List.find_opt (fun f -> f.cell = cell) b.frags with
  | Some f ->
    f.rho <- f.rho -. rho;
    if f.rho <= 1e-9 then b.frags <- List.filter (fun g -> g.cell <> cell) b.frags
  | None -> invalid_arg "Grid.sub_frag: cell not in bin");
  b.used <- Float.max 0. (b.used -. dw);
  t.die_used.(b.die) <- Float.max 0. (t.die_used.(b.die) -. dw);
  let remaining =
    match List.assoc_opt b.id t.cell_frags.(cell) with
    | Some r -> r -. rho
    | None -> 0.
  in
  t.cell_frags.(cell) <-
    (if remaining <= 1e-9 then List.remove_assoc b.id t.cell_frags.(cell)
     else (b.id, remaining) :: List.remove_assoc b.id t.cell_frags.(cell))

let distribute_in_segment t ~cell ~sid ~x =
  let s = t.segments.(sid) in
  let c = Design.cell t.design cell in
  let w = Cell.width_on c s.s_die in
  let x = max s.s_lo (min (max s.s_lo (s.s_hi - w)) x) in
  let span = Interval.make x (x + w) in
  let total = ref 0. in
  Array.iter
    (fun bid ->
      let b = t.bins.(bid) in
      let ov = Interval.overlap_length (Interval.make b.x (b.x + b.width)) span in
      if ov > 0 then begin
        let rho = float_of_int ov /. float_of_int w in
        let rho = Float.min rho (1. -. !total) in
        if rho > 0. then begin
          add_frag t b ~cell ~rho ~w;
          total := !total +. rho
        end
      end)
    s.s_bins;
  (* Any residue (cell wider than the segment) lands in the last bin. *)
  if !total < 1. -. 1e-9 then begin
    let last = t.bins.(s.s_bins.(Array.length s.s_bins - 1)) in
    add_frag t last ~cell ~rho:(1. -. !total) ~w
  end;
  t.cell_seg.(cell) <- sid

let widest_segment t die =
  let best = ref None in
  Array.iter
    (fun s ->
      if s.s_die = die then
        match !best with
        | Some b when t.segments.(b).s_hi - t.segments.(b).s_lo >= s.s_hi - s.s_lo ->
          ()
        | _ -> best := Some s.sid)
    t.segments;
  !best

type place_error = { pe_cell : int; pe_die : int }

let place_error_to_string e =
  Printf.sprintf "cell %d: no segment available on any die (requested die %d)"
    e.pe_cell e.pe_die

let place_cell t ~cell ~die ~x ~y =
  assert (t.cell_seg.(cell) = -1);
  let c = Design.cell t.design cell in
  let try_die d =
    let w = Cell.width_on c d in
    find_slot t ~die:d ~x ~y ~w
  in
  let slot =
    match try_die die with
    | Some _ as s -> s
    | None ->
      (* Nothing fits on the requested die: other dies, then the widest
         segment anywhere as a last resort. *)
      let nd = Design.n_dies t.design in
      let rec others d =
        if d >= nd then None
        else if d = die then others (d + 1)
        else match try_die d with Some _ as s -> s | None -> others (d + 1)
      in
      (match others 0 with
      | Some _ as s -> s
      | None ->
        (match widest_segment t die with
        | Some sid -> Some (sid, max t.segments.(sid).s_lo x)
        | None -> None))
  in
  match slot with
  | Some (sid, cx) -> Ok (distribute_in_segment t ~cell ~sid ~x:cx)
  | None -> Error { pe_cell = cell; pe_die = die }

let place_cell_exn t ~cell ~die ~x ~y =
  match place_cell t ~cell ~die ~x ~y with
  | Ok () -> ()
  | Error e -> invalid_arg ("Grid.place_cell: " ^ place_error_to_string e)

let assign_initial t p =
  let n = Design.n_cells t.design in
  let rec go cell =
    if cell >= n then Ok ()
    else
      match
        place_cell t ~cell ~die:p.Placement.die.(cell) ~x:p.Placement.x.(cell)
          ~y:p.Placement.y.(cell)
      with
      | Ok () -> go (cell + 1)
      | Error _ as e -> e
  in
  go 0

let assign_initial_exn t p =
  match assign_initial t p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Grid.assign_initial: " ^ place_error_to_string e)

let reset t =
  Array.iter
    (fun b ->
      b.frags <- [];
      b.used <- 0.)
    t.bins;
  let nc = Array.length t.cell_frags in
  Array.fill t.cell_frags 0 nc [];
  Array.fill t.cell_seg 0 nc (-1);
  Array.fill t.die_used 0 (Array.length t.die_used) 0.;
  Tdf_telemetry.incr "grid.resets"

let reset_to t targets =
  reset t;
  let n = Array.length targets in
  let rec go cell =
    if cell >= n then Ok ()
    else begin
      let x, y, die = targets.(cell) in
      match place_cell t ~cell ~die ~x ~y with
      | Ok () -> go (cell + 1)
      | Error _ as e -> e
    end
  in
  go 0

let remove_cell t ~cell =
  let frags = t.cell_frags.(cell) in
  List.iter
    (fun (bid, rho) ->
      let b = t.bins.(bid) in
      let c = Design.cell t.design cell in
      sub_frag t b ~cell ~rho ~w:(Cell.width_on c b.die))
    frags;
  t.cell_frags.(cell) <- [];
  t.cell_seg.(cell) <- -1

let move_fraction t ~cell ~src ~dst ~rho =
  assert (src.seg = dst.seg);
  let c = Design.cell t.design cell in
  let w = Cell.width_on c src.die in
  let avail =
    match List.find_opt (fun f -> f.cell = cell) src.frags with
    | Some f -> f.rho
    | None -> 0.
  in
  let rho = Float.min rho avail in
  if rho > 0. then begin
    sub_frag t src ~cell ~rho ~w;
    add_frag t dst ~cell ~rho ~w
  end

let move_whole t ~cell ~dst =
  remove_cell t ~cell;
  let c = Design.cell t.design cell in
  add_frag t dst ~cell ~rho:1.0 ~w:(Cell.width_on c dst.die);
  t.cell_seg.(cell) <- dst.seg

let cell_bins t cell = List.map fst t.cell_frags.(cell)

(* Breadth-first ball around the seed bins over the full adjacency
   (horizontal, vertical and D2D edges alike): the flow search moves cells
   along exactly these edges, so a radius-k ball bounds where k relay hops
   can reach.  With [within], the walk never leaves the allowed set — the
   halo query of the tiled legalizer, where a tile's reach is additionally
   confined to an ECO dirty region. *)
let region ?within t ~seeds ~radius =
  let n = Array.length t.bins in
  let allowed bid =
    match within with None -> true | Some m -> m.(bid)
  in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  List.iter
    (fun bid ->
      if bid >= 0 && bid < n && dist.(bid) < 0 && allowed bid then begin
        dist.(bid) <- 0;
        Queue.add bid q
      end)
    seeds;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if dist.(u) < radius then
      Array.iter
        (fun (e : edge) ->
          if dist.(e.dst) < 0 && allowed e.dst then begin
            dist.(e.dst) <- dist.(u) + 1;
            Queue.add e.dst q
          end)
        t.edges.(u)
  done;
  Array.map (fun d -> d >= 0) dist

let dirty_region t ~seeds ~radius = region t ~seeds ~radius

(* Deep copy of the mutable assignment state; the static structure
   (design, segments, adjacency, row index, die capacities) is shared.
   The copy and the original then evolve independently — the speculation
   substrate of the tiled legalizer. *)
let clone t =
  {
    t with
    bins =
      Array.map
        (fun b ->
          {
            b with
            frags = List.map (fun f -> { f with rho = f.rho }) b.frags;
          })
        t.bins;
    cell_frags = Array.copy t.cell_frags;
    cell_seg = Array.copy t.cell_seg;
    die_used = Array.copy t.die_used;
  }

let frag_rho_in t ~cell b =
  match List.assoc_opt b.id t.cell_frags.(cell) with Some r -> r | None -> 0.

let segment_of_cell t cell = t.cell_seg.(cell)

let cells_of_segment t sid =
  let s = t.segments.(sid) in
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun bid ->
      List.iter
        (fun f -> if not (Hashtbl.mem seen f.cell) then Hashtbl.add seen f.cell ())
        t.bins.(bid).frags)
    s.s_bins;
  Hashtbl.fold (fun c () acc -> c :: acc) seen []

(* ------------------------------------------------------------------ *)
(* Invariants (test hook)                                              *)
(* ------------------------------------------------------------------ *)

let check_invariants t =
  let eps = 1e-6 in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  let result = ref (Ok ()) in
  let ncells = Design.n_cells t.design in
  for cell = 0 to ncells - 1 do
    if !result = Ok () then begin
      let frags = t.cell_frags.(cell) in
      let total = List.fold_left (fun acc (_, r) -> acc +. r) 0. frags in
      if frags <> [] && Float.abs (total -. 1.) > eps then
        result := fail "cell %d total rho = %f" cell total;
      if frags = [] && t.cell_seg.(cell) <> -1 then
        result := fail "cell %d has no frags but segment %d" cell t.cell_seg.(cell);
      List.iter
        (fun (bid, _) ->
          if t.bins.(bid).seg <> t.cell_seg.(cell) then
            result :=
              fail "cell %d fragment in segment %d but registered in %d" cell
                t.bins.(bid).seg t.cell_seg.(cell))
        frags
    end
  done;
  Array.iter
    (fun b ->
      if !result = Ok () then begin
        let used =
          List.fold_left
            (fun acc f ->
              let c = Design.cell t.design f.cell in
              acc +. (f.rho *. float_of_int (Cell.width_on c b.die)))
            0. b.frags
        in
        if Float.abs (used -. b.used) > 1e-3 then
          result := fail "bin %d used=%f but frags sum to %f" b.id b.used used
      end)
    t.bins;
  !result
