(** The 3D grid graph G(V, E) of §II-B and the fractional cell-to-bin
    assignment Γ(v).

    Every die is divided into placement rows; macros split rows into
    segments; segments are divided into near-uniform bins of a target width
    [w_v].  Bins are the flow-network vertices.  Edges:

    - {e horizontal}: adjacent bins of the same segment (fractional cell
      moves allowed);
    - {e vertical}: bins of adjacent rows on the same die with x-overlap
      (whole-cell moves);
    - {e D2D}: bins of adjacent dies whose row spans and x spans overlap
      planarly (whole-cell moves, cell width switches to the target die).

    The structure is mutable: the legalizer moves (fractions of) cells
    between bins; [used]/[supply]/[demand] are maintained incrementally. *)

type edge_kind = Horizontal | Vertical | D2d

type edge = { dst : int; kind : edge_kind }

type frag = { cell : int; mutable rho : float }
(** A fractional cell (c_γ, ρ_γ); the fractions of one cell always live in
    bins of a single segment and sum to 1. *)

type bin = {
  id : int;
  die : int;
  row : int;
  seg : int;
  x : int;
  y : int;
  width : int;  (** capacity cap(v) in x units *)
  mutable frags : frag list;
  mutable used : float;  (** Σ ρ_γ·w_{c_γ} over [frags] *)
}

type segment = {
  sid : int;
  s_die : int;
  s_row : int;
  s_lo : int;
  s_hi : int;
  s_bins : int array;  (** bin ids in increasing x *)
}

type t = {
  design : Tdf_netlist.Design.t;
  bins : bin array;
  segments : segment array;
  row_segments : int array array array;  (** die → row → segment ids (x order) *)
  edges : edge array array;  (** bin id → adjacency *)
  cell_frags : (int * float) list array;  (** cell → (bin id, ρ) list *)
  cell_seg : int array;  (** cell → segment id, -1 when unassigned *)
  die_used : float array;  (** per-die Σ used *)
  die_cap : float array;  (** per-die Σ cap *)
}

val segments_of_row :
  Tdf_netlist.Design.t -> int -> int -> Tdf_geometry.Interval.t list
(** [segments_of_row design die row] is the x-extent of each placement
    segment of that row: the die outline minus the macros overlapping the
    row, in increasing x.  Shared with the baseline legalizers. *)

val build : Tdf_netlist.Design.t -> bin_width:int -> t
(** Build the empty grid (no cells assigned) with target bin width
    [bin_width] (the paper uses 10·w̄_c for legalization, 5·w̄_c for
    post-optimization). *)

val n_bins : t -> int

val cap : bin -> int

val supply : bin -> float
(** sup(v) = max(0, used − cap)  (Eq. 1). *)

val demand : bin -> float
(** dem(v) = max(0, cap − used)  (Eq. 2). *)

val total_overflow : t -> float
(** Σ_v sup(v). *)

val overflowed_bins : t -> bin list

val die_utilization : t -> int -> float
(** Current used/capacity ratio of a die. *)

val est_disp : t -> cell:int -> bin -> int
(** D_c(v) of Eq. 4: Manhattan distance from the cell's initial position to
    the nearest legal spot inside bin [v] (x clamped into the bin, y = row
    bottom), using the cell's width on the bin's die. *)

val find_slot : t -> die:int -> x:int -> y:int -> w:int -> (int * int) option
(** [find_slot t ~die ~x ~y ~w] finds the segment on [die] minimizing the
    Manhattan distance from [(x, y)] to a position where a width-[w] cell
    fits; returns [(segment id, clamped x)].  [None] when no segment of the
    die can hold width [w]. *)

type place_error = { pe_cell : int; pe_die : int }
(** A cell that fits in no segment of any die (checked against the
    requested die first). *)

val place_error_to_string : place_error -> string

val place_cell :
  t -> cell:int -> die:int -> x:int -> y:int -> (unit, place_error) result
(** Assign cell to its nearest bins on [die] near [(x, y)]: picks the best
    segment via {!find_slot} (falling back to the widest segment, then to
    other dies, if the cell fits nowhere on [die]) and distributes the cell
    fractionally over the bins its span overlaps.  The cell must currently
    be unassigned.  [Error] when no die has a segment at all — the caller
    (or the robustness layer's fallback chain) decides how to degrade. *)

val place_cell_exn : t -> cell:int -> die:int -> x:int -> y:int -> unit
(** {!place_cell}, raising [Invalid_argument] on error (for call sites
    that have already validated the design). *)

val assign_initial : t -> Tdf_netlist.Placement.t -> (unit, place_error) result
(** Assign every cell from a placement (die from [p.die], position from
    [p.x]/[p.y]), as in Fig. 3(a) / Alg. 2 line 2.  Stops at the first
    unplaceable cell. *)

val assign_initial_exn : t -> Tdf_netlist.Placement.t -> unit
(** {!assign_initial}, raising [Invalid_argument] on error. *)

val reset : t -> unit
(** Remove every cell assignment while keeping the bins, segments and
    adjacency intact, returning the grid to its just-built state.  Bumps
    the ["grid.resets"] telemetry counter.  The graph structure depends
    only on the design and the bin width, so one grid instance can be
    reset and refilled across legalization passes instead of rebuilt. *)

val reset_to :
  t -> (int * int * int) array -> (unit, place_error) result
(** [reset_to t targets] is {!reset} followed by placing each cell [c] at
    [targets.(c) = (x, y, die)] via {!place_cell} — the reuse counterpart
    of building a fresh grid and assigning a target placement.  Stops at
    the first unplaceable cell. *)

val remove_cell : t -> cell:int -> unit
(** Remove all fractions of a cell from the grid. *)

val move_fraction : t -> cell:int -> src:bin -> dst:bin -> rho:float -> unit
(** Move a ρ-fraction of [cell] from [src] to its horizontally adjacent
    [dst] (same segment).  Clips to the available fraction. *)

val move_whole : t -> cell:int -> dst:bin -> unit
(** Move the complete cell (all fractions, §III-B) into [dst]; updates the
    cell's effective width when [dst] is on another die. *)

val cell_bins : t -> int -> int list
(** Ids of the bins currently holding fragments of the cell (empty when
    unassigned). *)

val region :
  ?within:bool array -> t -> seeds:int list -> radius:int -> bool array
(** [region t ~seeds ~radius] marks every bin within [radius] BFS hops of
    a seed bin, walking all edge kinds.  With [within] the walk is
    confined to allowed bins (seeds outside it are dropped) — the
    tile-plus-halo query of the tiled legalizer, where a tile's reach must
    also stay inside an ECO dirty region. *)

val dirty_region : t -> seeds:int list -> radius:int -> bool array
(** [dirty_region t ~seeds ~radius] marks every bin within [radius] BFS
    hops of a seed bin, walking all edge kinds (horizontal, vertical,
    D2D).  Out-of-range seed ids are ignored.  The result indexes by bin
    id and is the movement mask of the incremental (ECO) legalizer: a
    radius-k ball bounds everything k relay hops can touch. *)

val clone : t -> t
(** Deep copy of the mutable assignment state ([frags]/[used] of every
    bin, [cell_frags], [cell_seg], [die_used]); the static structure is
    shared with the original.  Mutations on the clone never touch the
    original — the speculation substrate of the tiled legalizer. *)

val frag_rho_in : t -> cell:int -> bin -> float
(** Fraction of [cell] currently in [bin] (0 when absent). *)

val segment_of_cell : t -> int -> int
(** Segment currently holding the cell's fractions; -1 when unassigned. *)

val cells_of_segment : t -> int -> int list
(** Distinct cells having fractions in the segment. *)

val check_invariants : t -> (unit, string) result
(** Test hook: per-cell Σρ = 1 (or 0 if unassigned), single-segment
    fragments, [used] consistent with [frags], die accounting consistent. *)
