(** JSONL event sink: one JSON object per event, in emission order —
    the append-friendly format for post-processing with jq/python.  The
    parser is the exact inverse of the sink, so logs round-trip. *)

type t

val create : unit -> t

val sink : t -> Core.sink

val contents : t -> string

val save : t -> string -> unit

val event_to_json : Core.event -> Json.t

val event_of_json : Json.t -> (Core.event, string) result

val parse : string -> (Core.event list, string) result
(** Parse a whole JSONL document (blank lines skipped); inverse of
    {!contents}. *)
