let event_to_json : Core.event -> Json.t = function
  | Core.Span { name; depth; start_ns; dur_ns } ->
    Json.Obj
      [
        ("type", Json.String "span");
        ("name", Json.String name);
        ("depth", Json.Int depth);
        ("start_ns", Json.Int (Int64.to_int start_ns));
        ("dur_ns", Json.Int (Int64.to_int dur_ns));
      ]
  | Core.Count { name; value } ->
    Json.Obj
      [
        ("type", Json.String "counter");
        ("name", Json.String name);
        ("value", Json.Int value);
      ]
  | Core.Observe { name; value } ->
    Json.Obj
      [
        ("type", Json.String "observe");
        ("name", Json.String name);
        ("value", Json.Float value);
      ]

let event_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  match (str "type", str "name") with
  | Some "span", Some name -> (
    match (int "depth", int "start_ns", int "dur_ns") with
    | Some depth, Some start_ns, Some dur_ns ->
      Ok
        (Core.Span
           {
             name;
             depth;
             start_ns = Int64.of_int start_ns;
             dur_ns = Int64.of_int dur_ns;
           })
    | _ -> Error "span event missing depth/start_ns/dur_ns")
  | Some "counter", Some name -> (
    match int "value" with
    | Some value -> Ok (Core.Count { name; value })
    | None -> Error "counter event missing value")
  | Some "observe", Some name -> (
    match flt "value" with
    | Some value -> Ok (Core.Observe { name; value })
    | None -> Error "observe event missing value")
  | Some t, _ -> Error (Printf.sprintf "unknown event type %S" t)
  | None, _ -> Error "event without a type field"

type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 4096 }

let sink t : Core.sink =
 fun ev ->
  Buffer.add_string t.buf (Json.to_string (event_to_json ev));
  Buffer.add_char t.buf '\n'

let contents t = Buffer.contents t.buf

let save t path =
  let oc = open_out path in
  Buffer.output_buffer oc t.buf;
  close_out oc

let parse s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
      match Json.of_string l with
      | Error e -> Error (Printf.sprintf "bad JSON line %S: %s" l e)
      | Ok j -> (
        match event_of_json j with
        | Error e -> Error (Printf.sprintf "bad event %S: %s" l e)
        | Ok ev -> loop (ev :: acc) rest))
  in
  loop [] lines
