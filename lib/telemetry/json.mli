(** Minimal dependency-free JSON: just enough for telemetry export
    ({!Jsonl}, {!Trace}, [--metrics-json]) and for tests to parse it
    back.  Ints and floats are kept distinct so counter totals survive a
    round trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping.  NaN and
    infinities — which JSON cannot represent — degrade to [null]. *)

val of_string : string -> (t, string) result
(** Strict parser for the subset above (no comments, no trailing commas).
    [\u] escapes are UTF-8 decoded; surrogate pairs are not combined. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing keys and non-objects. *)

val to_int : t -> int option
(** [Int] directly, or an integral [Float]. *)

val to_float : t -> float option

val to_str : t -> string option

val to_list : t -> t list option
