(* Library root: the core probe API lives directly under
   [Tdf_telemetry]; sinks and serializers are submodules. *)

include Core
module Json = Json
module Aggregate = Aggregate
module Jsonl = Jsonl
module Trace = Trace
