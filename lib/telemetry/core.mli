(** Telemetry core: spans, counters and observations recorded against
    pluggable sinks.

    With no sink installed (the default) every probe is one load and one
    branch — no allocation, no clock read — so instrumented hot paths cost
    nothing in production.  Sinks receive raw {!event}s; aggregation,
    serialization and trace export live in {!Aggregate}, {!Jsonl} and
    {!Trace}.

    The core is domain-safe: probes may fire concurrently from any domain.
    Direct emissions are serialized before reaching the sinks, so a sink is
    only ever called by one domain at a time and plain (hashtable/buffer)
    sinks need no locking of their own.  Parallel code that must stay
    bit-reproducible should instead wrap each task in {!capture} and
    {!replay} the buffers in a deterministic order — the scheme
    [Tdf_par.Pool] applies automatically. *)

type event =
  | Span of { name : string; depth : int; start_ns : int64; dur_ns : int64 }
      (** Emitted when the span {e closes}, so children precede parents
          (post-order); [start_ns]/[dur_ns] reconstruct the hierarchy. *)
  | Count of { name : string; value : int }
  | Observe of { name : string; value : float }

type sink = event -> unit

val null : sink
(** Discards everything.  Installing it turns probes on (events are built
    and dispatched) but has no observable effect — the inertness the test
    suite checks. *)

val enabled : unit -> bool
(** True iff at least one sink is installed. *)

val install : sink -> unit

val remove : sink -> unit
(** Remove a previously installed sink (physical equality). *)

val reset : unit -> unit
(** Remove every sink and reset span depth. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] on the monotonic clock and reports it to
    the sinks, tagged with its nesting depth.  The span is reported even
    if [f] raises; the exception is re-raised. *)

val count : string -> int -> unit
(** Add to a named counter. *)

val incr : string -> unit
(** [incr name] is [count name 1]. *)

val observe : string -> float -> unit
(** Record one sample of a named histogram/distribution. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install the sink for the duration of the callback (removed even on
    exceptions). *)

val capture : (unit -> 'a) -> 'a * event list
(** [capture f] runs [f] with a fresh per-domain buffer installed: every
    event [f] emits (from this domain) is recorded in order instead of
    reaching the sinks.  Returns [f]'s result and the buffered events.
    Span depth restarts at 0 inside the capture.  Nests: an inner capture
    shadows the outer buffer for its extent.  When telemetry is disabled
    the cost is one branch and the event list is empty. *)

val replay : event list -> unit
(** Re-emit previously captured events on the calling domain (into the
    enclosing capture buffer if one is installed, else to the sinks).
    No-op when telemetry is disabled. *)
