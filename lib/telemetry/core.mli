(** Telemetry core: spans, counters and observations recorded against
    pluggable sinks.

    With no sink installed (the default) every probe is one load and one
    branch — no allocation, no clock read — so instrumented hot paths cost
    nothing in production.  Sinks receive raw {!event}s; aggregation,
    serialization and trace export live in {!Aggregate}, {!Jsonl} and
    {!Trace}. *)

type event =
  | Span of { name : string; depth : int; start_ns : int64; dur_ns : int64 }
      (** Emitted when the span {e closes}, so children precede parents
          (post-order); [start_ns]/[dur_ns] reconstruct the hierarchy. *)
  | Count of { name : string; value : int }
  | Observe of { name : string; value : float }

type sink = event -> unit

val null : sink
(** Discards everything.  Installing it turns probes on (events are built
    and dispatched) but has no observable effect — the inertness the test
    suite checks. *)

val enabled : unit -> bool
(** True iff at least one sink is installed. *)

val install : sink -> unit

val remove : sink -> unit
(** Remove a previously installed sink (physical equality). *)

val reset : unit -> unit
(** Remove every sink and reset span depth. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] times [f ()] on the monotonic clock and reports it to
    the sinks, tagged with its nesting depth.  The span is reported even
    if [f] raises; the exception is re-raised. *)

val count : string -> int -> unit
(** Add to a named counter. *)

val incr : string -> unit
(** [incr name] is [count name 1]. *)

val observe : string -> float -> unit
(** Record one sample of a named histogram/distribution. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install the sink for the duration of the callback (removed even on
    exceptions). *)
