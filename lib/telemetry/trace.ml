module Timer = Tdf_util.Timer

(* Chrome trace-event exporter (the JSON-array flavour), loadable in
   Perfetto / chrome://tracing.  Spans become complete ("X") events;
   counters become cumulative counter ("C") tracks; observations become a
   value track.  Counter/observe events carry no timestamp of their own, so
   the sink stamps them on arrival. *)

type entry = { ev : Core.event; at_ns : int64 }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }

let sink t : Core.sink =
 fun ev -> t.entries <- { ev; at_ns = Timer.now_ns () } :: t.entries

let n_events t = List.length t.entries

let to_json t =
  let entries = List.rev t.entries in
  (* Rebase timestamps so the trace starts at ~0 µs regardless of the
     monotonic clock origin. *)
  let base =
    List.fold_left
      (fun acc e ->
        let ts =
          match e.ev with Core.Span { start_ns; _ } -> start_ns | _ -> e.at_ns
        in
        if Int64.compare ts acc < 0 then ts else acc)
      Int64.max_int entries
  in
  let base = if base = Int64.max_int then 0L else base in
  let us ns = Int64.to_float (Int64.sub ns base) /. 1e3 in
  let cum : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let events =
    List.filter_map
      (fun e ->
        match e.ev with
        | Core.Span { name; start_ns; dur_ns; _ } ->
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "tdflow");
                 ("ph", Json.String "X");
                 ("ts", Json.Float (us start_ns));
                 ("dur", Json.Float (Int64.to_float dur_ns /. 1e3));
                 ("pid", Json.Int 1);
                 ("tid", Json.Int 1);
               ])
        | Core.Count { name; value } ->
          let v = (try Hashtbl.find cum name with Not_found -> 0) + value in
          Hashtbl.replace cum name v;
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "tdflow");
                 ("ph", Json.String "C");
                 ("ts", Json.Float (us e.at_ns));
                 ("pid", Json.Int 1);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ])
        | Core.Observe { name; value } ->
          Some
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "tdflow");
                 ("ph", Json.String "C");
                 ("ts", Json.Float (us e.at_ns));
                 ("pid", Json.Int 1);
                 ("args", Json.Obj [ ("value", Json.Float value) ]);
               ]))
      entries
  in
  let meta =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int 1);
        ("args", Json.Obj [ ("name", Json.String "tdflow") ]);
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (meta :: events));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string t = Json.to_string (to_json t)

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc
