module Timer = Tdf_util.Timer

type event =
  | Span of { name : string; depth : int; start_ns : int64; dur_ns : int64 }
  | Count of { name : string; value : int }
  | Observe of { name : string; value : float }

type sink = event -> unit

let null : sink = fun _ -> ()

(* Registry.  [active] mirrors "at least one sink installed" so every
   instrumentation point is a single atomic load + branch when telemetry is
   off — the disabled path allocates nothing and calls nothing.  [active]
   is an Atomic because probes fire from worker domains; sink dispatch is
   serialized by [lock] so the sinks themselves (hashtables, buffers) stay
   plain single-threaded code. *)
let sinks : sink array ref = ref [||]

let active = Atomic.make false

let lock = Mutex.create ()

(* Span nesting depth is per-domain: concurrent spans on different domains
   each get their own well-formed depth chain. *)
let depth_key = Domain.DLS.new_key (fun () -> 0)

(* Per-domain capture buffer.  When installed (see [capture]) events are
   appended locally instead of dispatched, so a parallel task records its
   stream privately; the pool replays the buffers on the submitting domain
   in submission-index order, making the observable event sequence — and
   every JSONL/trace line — independent of domain scheduling. *)
let buffer_key : event list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let enabled () = Atomic.get active

let install s =
  Mutex.lock lock;
  sinks := Array.append !sinks [| s |];
  Atomic.set active true;
  Mutex.unlock lock

let remove s =
  Mutex.lock lock;
  sinks := Array.of_list (List.filter (fun s' -> s' != s) (Array.to_list !sinks));
  if Array.length !sinks = 0 then begin
    Atomic.set active false;
    Domain.DLS.set depth_key 0
  end;
  Mutex.unlock lock

let reset () =
  Mutex.lock lock;
  sinks := [||];
  Atomic.set active false;
  Domain.DLS.set depth_key 0;
  Mutex.unlock lock

let dispatch ev =
  Mutex.lock lock;
  (match
     let ss = !sinks in
     for i = 0 to Array.length ss - 1 do
       ss.(i) ev
     done
   with
  | () -> Mutex.unlock lock
  | exception e ->
    Mutex.unlock lock;
    raise e)

let emit ev =
  match Domain.DLS.get buffer_key with
  | Some buf -> buf := ev :: !buf
  | None -> dispatch ev

let count name value = if Atomic.get active then emit (Count { name; value })

let incr name = if Atomic.get active then emit (Count { name; value = 1 })

let observe name value = if Atomic.get active then emit (Observe { name; value })

let span name f =
  if not (Atomic.get active) then f ()
  else begin
    let d = Domain.DLS.get depth_key in
    Domain.DLS.set depth_key (d + 1);
    let t0 = Timer.now_ns () in
    let finish () =
      let dur = Timer.elapsed_ns t0 in
      Domain.DLS.set depth_key d;
      emit (Span { name; depth = d; start_ns = t0; dur_ns = dur })
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let capture f =
  if not (Atomic.get active) then (f (), [])
  else begin
    let saved_buf = Domain.DLS.get buffer_key in
    let saved_depth = Domain.DLS.get depth_key in
    let buf = ref [] in
    Domain.DLS.set buffer_key (Some buf);
    Domain.DLS.set depth_key 0;
    let restore () =
      Domain.DLS.set buffer_key saved_buf;
      Domain.DLS.set depth_key saved_depth
    in
    match f () with
    | r ->
      restore ();
      (r, List.rev !buf)
    | exception e ->
      restore ();
      raise e
  end

let replay evs = if Atomic.get active then List.iter emit evs

let with_sink s f =
  install s;
  Fun.protect f ~finally:(fun () -> remove s)
