module Timer = Tdf_util.Timer

type event =
  | Span of { name : string; depth : int; start_ns : int64; dur_ns : int64 }
  | Count of { name : string; value : int }
  | Observe of { name : string; value : float }

type sink = event -> unit

let null : sink = fun _ -> ()

(* Registry.  [active] mirrors "at least one sink installed" so every
   instrumentation point is a single load + branch when telemetry is off —
   the disabled path allocates nothing and calls nothing. *)
let sinks : sink array ref = ref [||]

let active = ref false

let cur_depth = ref 0

let enabled () = !active

let install s =
  sinks := Array.append !sinks [| s |];
  active := true

let remove s =
  sinks := Array.of_list (List.filter (fun s' -> s' != s) (Array.to_list !sinks));
  if Array.length !sinks = 0 then begin
    active := false;
    cur_depth := 0
  end

let reset () =
  sinks := [||];
  active := false;
  cur_depth := 0

let emit ev =
  let ss = !sinks in
  for i = 0 to Array.length ss - 1 do
    ss.(i) ev
  done

let count name value = if !active then emit (Count { name; value })

let incr name = if !active then emit (Count { name; value = 1 })

let observe name value = if !active then emit (Observe { name; value })

let span name f =
  if not !active then f ()
  else begin
    let d = !cur_depth in
    cur_depth := d + 1;
    let t0 = Timer.now_ns () in
    let finish () =
      let dur = Timer.elapsed_ns t0 in
      cur_depth := d;
      emit (Span { name; depth = d; start_ns = t0; dur_ns = dur })
    in
    match f () with
    | r ->
      finish ();
      r
    | exception e ->
      finish ();
      raise e
  end

let with_sink s f =
  install s;
  Fun.protect f ~finally:(fun () -> remove s)
