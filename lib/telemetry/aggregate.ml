module Stats = Tdf_util.Stats

(* Growable float series (OCaml 5.1 has no Dynarray). *)
type series = { mutable data : float array; mutable len : int }

let series_create () = { data = Array.make 16 0.; len = 0 }

let series_push s x =
  if s.len = Array.length s.data then begin
    let d = Array.make (2 * s.len) 0. in
    Array.blit s.data 0 d 0 s.len;
    s.data <- d
  end;
  s.data.(s.len) <- x;
  s.len <- s.len + 1

let series_to_array s = Array.sub s.data 0 s.len

type t = {
  spans : (string, series) Hashtbl.t;  (* durations, ns *)
  counters : (string, int ref) Hashtbl.t;
  observations : (string, series) Hashtbl.t;
}

let create () =
  {
    spans = Hashtbl.create 32;
    counters = Hashtbl.create 32;
    observations = Hashtbl.create 16;
  }

let find_series tbl name =
  match Hashtbl.find_opt tbl name with
  | Some s -> s
  | None ->
    let s = series_create () in
    Hashtbl.add tbl name s;
    s

let sink t : Core.sink = function
  | Core.Span { name; dur_ns; _ } ->
    series_push (find_series t.spans name) (Int64.to_float dur_ns)
  | Core.Count { name; value } -> (
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + value
    | None -> Hashtbl.add t.counters name (ref value))
  | Core.Observe { name; value } ->
    series_push (find_series t.observations name) value

(* ---- queries ------------------------------------------------------- *)

let span_count t name =
  match Hashtbl.find_opt t.spans name with Some s -> s.len | None -> 0

let span_total_ms t name =
  match Hashtbl.find_opt t.spans name with
  | Some s -> Array.fold_left ( +. ) 0. (series_to_array s) /. 1e6
  | None -> 0.

let counter_total t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let span_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.spans [])

let counter_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.counters [])

let observation_names t =
  List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.observations [])

(* ---- rendering ----------------------------------------------------- *)

type span_row = {
  count : int;
  total_ms : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let span_row t name =
  let xs = series_to_array (find_series t.spans name) in
  let s = Stats.summarize xs in
  {
    count = s.Stats.count;
    total_ms = s.Stats.total /. 1e6;
    mean_ms = s.Stats.mean /. 1e6;
    p50_ms = Stats.percentile xs 50. /. 1e6;
    p95_ms = Stats.percentile xs 95. /. 1e6;
    p99_ms = Stats.percentile xs 99. /. 1e6;
  }

let render t =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let spans = span_names t in
  if spans <> [] then begin
    out "%-34s %8s %11s %10s %10s %10s %10s\n" "span" "count" "total(ms)"
      "mean(ms)" "p50(ms)" "p95(ms)" "p99(ms)";
    (* heaviest first: that is what a perf reader scans for *)
    let rows = List.map (fun n -> (n, span_row t n)) spans in
    let rows =
      List.sort (fun (_, a) (_, b) -> compare b.total_ms a.total_ms) rows
    in
    List.iter
      (fun (n, r) ->
        out "%-34s %8d %11.2f %10.4f %10.4f %10.4f %10.4f\n" n r.count
          r.total_ms r.mean_ms r.p50_ms r.p95_ms r.p99_ms)
      rows
  end;
  let counters = counter_names t in
  if counters <> [] then begin
    if spans <> [] then out "\n";
    out "%-34s %16s\n" "counter" "total";
    List.iter (fun n -> out "%-34s %16d\n" n (counter_total t n)) counters
  end;
  let obs = observation_names t in
  if obs <> [] then begin
    out "\n%-34s %8s %12s %12s %12s %12s\n" "histogram" "count" "mean" "p50"
      "p95" "p99";
    List.iter
      (fun n ->
        let xs = series_to_array (find_series t.observations n) in
        let s = Stats.summarize xs in
        out "%-34s %8d %12.4f %12.4f %12.4f %12.4f\n" n s.Stats.count
          s.Stats.mean
          (Stats.percentile xs 50.)
          (Stats.percentile xs 95.)
          (Stats.percentile xs 99.))
      obs
  end;
  Buffer.contents buf

let to_json t =
  let span_json n =
    let r = span_row t n in
    ( n,
      Json.Obj
        [
          ("count", Json.Int r.count);
          ("total_ms", Json.Float r.total_ms);
          ("mean_ms", Json.Float r.mean_ms);
          ("p50_ms", Json.Float r.p50_ms);
          ("p95_ms", Json.Float r.p95_ms);
          ("p99_ms", Json.Float r.p99_ms);
        ] )
  in
  let obs_json n =
    let xs = series_to_array (find_series t.observations n) in
    let s = Stats.summarize xs in
    ( n,
      Json.Obj
        [
          ("count", Json.Int s.Stats.count);
          ("mean", Json.Float s.Stats.mean);
          ("p50", Json.Float (Stats.percentile xs 50.));
          ("p95", Json.Float (Stats.percentile xs 95.));
          ("p99", Json.Float (Stats.percentile xs 99.));
          ("total", Json.Float s.Stats.total);
        ] )
  in
  Json.Obj
    [
      ("spans", Json.Obj (List.map span_json (span_names t)));
      ( "counters",
        Json.Obj
          (List.map (fun n -> (n, Json.Int (counter_total t n))) (counter_names t))
      );
      ("histograms", Json.Obj (List.map obs_json (observation_names t)));
    ]
