(** In-memory aggregating sink: per-span duration distributions, counter
    totals and observation histograms, rendered as the [--metrics] summary
    table or exported as JSON ([--metrics-json], bench trajectory). *)

type t

val create : unit -> t

val sink : t -> Core.sink

type span_row = {
  count : int;
  total_ms : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

val span_row : t -> string -> span_row
(** Summary of one span's duration distribution (all-zero if unseen). *)

val span_count : t -> string -> int

val span_total_ms : t -> string -> float

val counter_total : t -> string -> int
(** 0 for counters never touched. *)

val span_names : t -> string list
(** Sorted. *)

val counter_names : t -> string list

val observation_names : t -> string list

val render : t -> string
(** Human-readable summary: spans heaviest-first with count/total/mean and
    p50/p95/p99, then counter totals, then observation histograms. *)

val to_json : t -> Json.t
(** [{"spans": {...}, "counters": {...}, "histograms": {...}}]. *)
