type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ----------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_buf buf x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" x)
  else if Float.is_nan x || Float.abs x = infinity then
    (* JSON has no NaN/inf; null is the least-surprising degradation *)
    Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" x)

let rec to_buf buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> float_to_buf buf x
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buf buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buf buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buf buf v;
  Buffer.contents buf

(* ---- parsing ------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let cp =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          (* UTF-8 encode the code point (no surrogate-pair handling; the
             emitter only produces \u for control characters). *)
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail "bad escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some x -> Float x
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ----------------------------------------------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_int = function Int i -> Some i | Float x when Float.is_integer x -> Some (int_of_float x) | _ -> None

let to_float = function Float x -> Some x | Int i -> Some (float_of_int i) | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List xs -> Some xs | _ -> None
