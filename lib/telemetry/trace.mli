(** Chrome trace-event exporter: collects events and renders the JSON
    object format ([{"traceEvents": [...]}]) that Perfetto and
    [chrome://tracing] open directly.  Spans are complete ("X") events on
    one pid/tid; counters render as cumulative counter ("C") tracks. *)

type t

val create : unit -> t

val sink : t -> Core.sink

val n_events : t -> int

val to_json : t -> Json.t

val to_string : t -> string

val save : t -> string -> unit
