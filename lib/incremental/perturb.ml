module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Blockage = Tdf_netlist.Blockage
module Placement = Tdf_netlist.Placement
module Rect = Tdf_geometry.Rect
module Delta = Tdf_io.Delta

type t = {
  design : Design.t;
  base : Placement.t;
  seeds : int list;
  old_of_new : int array;
  new_of_old : int array;
  structural : bool;
}

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let apply design prev delta =
  try
    let nd = Design.n_dies design in
    let n = Design.n_cells design in
    let check_cell c = if c < 0 || c >= n then fail "delta: cell %d out of range" c in
    let check_die d = if d < 0 || d >= nd then fail "delta: die %d out of range" d in
    let check_widths ws =
      if Array.length ws <> nd then
        fail "delta: %d widths given but the design has %d dies"
          (Array.length ws) nd
    in
    (* One op per existing cell, applied in a single pass over the ops. *)
    let claimed = Array.make n false in
    let claim c =
      check_cell c;
      if claimed.(c) then fail "delta: cell %d targeted by more than one op" c;
      claimed.(c) <- true
    in
    let moved = Hashtbl.create 16 in
    let resized = Hashtbl.create 16 in
    let removed = Array.make n false in
    let added = ref [] in
    let new_macros = ref [] in
    List.iter
      (fun (op : Delta.op) ->
        match op with
        | Delta.Move { cell; x; y; die } ->
          claim cell;
          check_die die;
          Hashtbl.replace moved cell (x, y, die)
        | Delta.Resize { cell; widths } ->
          claim cell;
          check_widths widths;
          Hashtbl.replace resized cell widths
        | Delta.Remove { cell } ->
          claim cell;
          removed.(cell) <- true
        | Delta.Add { name; x; y; die; widths } ->
          check_die die;
          check_widths widths;
          added := (name, x, y, die, widths) :: !added
        | Delta.Add_macro { name; die; x; y; w; h } ->
          check_die die;
          if w <= 0 || h <= 0 then fail "delta: macro %s has empty extent" name;
          new_macros := (name, die, Rect.make ~x ~y ~w ~h) :: !new_macros)
      delta;
    let added = List.rev !added and new_macros = List.rev !new_macros in
    (* Renumbered cell array: survivors in original order, added cells
       appended.  Moved cells get a fresh global-placement anchor. *)
    let n' = n - Array.fold_left (fun a r -> if r then a + 1 else a) 0 removed in
    let n' = n' + List.length added in
    let new_of_old = Array.make n (-1) in
    let old_of_new = Array.make n' (-1) in
    let cells = ref [] in
    let k = ref 0 in
    for c = 0 to n - 1 do
      if not removed.(c) then begin
        let id = !k in
        incr k;
        new_of_old.(c) <- id;
        old_of_new.(id) <- c;
        let old = Design.cell design c in
        let widths =
          match Hashtbl.find_opt resized c with
          | Some ws -> ws
          | None -> old.Cell.widths
        in
        let gp_x, gp_y, gp_z =
          match Hashtbl.find_opt moved c with
          | Some (x, y, die) -> (x, y, float_of_int die)
          | None -> (old.Cell.gp_x, old.Cell.gp_y, old.Cell.gp_z)
        in
        cells :=
          Cell.make ~id ~name:old.Cell.name ~weight:old.Cell.weight ~widths
            ~gp_x ~gp_y ~gp_z ()
          :: !cells
      end
    done;
    List.iter
      (fun (name, x, y, die, widths) ->
        let id = !k in
        incr k;
        cells :=
          Cell.make ~id ~name ~widths ~gp_x:x ~gp_y:y ~gp_z:(float_of_int die) ()
          :: !cells)
      added;
    let cells = Array.of_list (List.rev !cells) in
    (* Nets: remap pins through the renumbering, dropping removed pins and
       nets left with fewer than one pin. *)
    let nets =
      design.Design.nets
      |> Array.to_list
      |> List.filter_map (fun (net : Net.t) ->
             let pins =
               Array.to_list net.Net.pins
               |> List.filter_map (fun p ->
                      if new_of_old.(p) >= 0 then Some new_of_old.(p) else None)
             in
             match pins with [] -> None | pins -> Some (net.Net.name, pins))
      |> List.mapi (fun id (name, pins) ->
             Net.make ~id ~name ~pins:(Array.of_list pins) ())
      |> Array.of_list
    in
    let n_old_macros = Array.length design.Design.macros in
    let macros =
      Array.append design.Design.macros
        (Array.of_list
           (List.mapi
              (fun i (name, die, rect) ->
                Blockage.make ~id:(n_old_macros + i) ~name ~die ~rect ())
              new_macros))
    in
    let design' =
      Design.make ~name:design.Design.name ~dies:design.Design.dies ~cells
        ~macros ~nets ()
    in
    (match Design.validate design' with
    | Ok () -> ()
    | Error (e :: _) -> fail "delta: perturbed design invalid: %s" e
    | Error [] -> ());
    (* Base placement: previous legal coordinates, targets for the
       perturbed cells. *)
    let base =
      {
        Placement.x = Array.make n' 0;
        Placement.y = Array.make n' 0;
        Placement.die = Array.make n' 0;
      }
    in
    for id = 0 to n' - 1 do
      match old_of_new.(id) with
      | -1 ->
        let c = cells.(id) in
        base.Placement.x.(id) <- c.Cell.gp_x;
        base.Placement.y.(id) <- c.Cell.gp_y;
        base.Placement.die.(id) <- Cell.nearest_die c ~n_dies:nd
      | old -> (
        match Hashtbl.find_opt moved old with
        | Some (x, y, die) ->
          base.Placement.x.(id) <- x;
          base.Placement.y.(id) <- y;
          base.Placement.die.(id) <- die
        | None ->
          base.Placement.x.(id) <- prev.Placement.x.(old);
          base.Placement.y.(id) <- prev.Placement.y.(old);
          base.Placement.die.(id) <- prev.Placement.die.(old))
    done;
    (* Seeds: every perturbed cell, plus survivors a new macro landed on
       (they must vacate the blocked area even though no op names them). *)
    let seed = Array.make n' false in
    Hashtbl.iter (fun c _ -> if new_of_old.(c) >= 0 then seed.(new_of_old.(c)) <- true) moved;
    Hashtbl.iter (fun c _ -> if new_of_old.(c) >= 0 then seed.(new_of_old.(c)) <- true) resized;
    for id = n' - List.length added to n' - 1 do
      seed.(id) <- true
    done;
    if new_macros <> [] then
      for id = 0 to n' - 1 do
        if not seed.(id) then begin
          let r = Placement.cell_rect design' base id in
          if
            List.exists
              (fun (_, die, rect) ->
                die = base.Placement.die.(id) && Rect.overlaps rect r)
              new_macros
          then seed.(id) <- true
        end
      done;
    let seeds = ref [] in
    for id = n' - 1 downto 0 do
      if seed.(id) then seeds := id :: !seeds
    done;
    Ok
      {
        design = design';
        base;
        seeds = !seeds;
        old_of_new;
        new_of_old;
        structural = new_macros <> [];
      }
  with
  | Invalid msg -> Error msg
  | Invalid_argument msg -> Error ("delta: " ^ msg)
