(** The incremental (ECO) re-legalization engine.

    Given a legal placement and a small {!Tdf_io.Delta}, re-legalize only
    a {e dirty region} of the grid instead of running 3D-Flow from
    scratch:

    + {!Perturb.apply} the delta, producing the perturbed design and a
      base placement that keeps every unperturbed cell at its previous
      legal position;
    + assign the base placement into the grid and BFS-expand a dirty bin
      set from the perturbed cells ({!Tdf_grid.Grid.dirty_region});
    + precheck feasibility with a min-cost max-flow over the dirty
      subgraph (supply must be routable to demand without leaving the
      region);
    + run the masked flow pass ({!Tdf_legalizer.Flow3d.local_pass}) and
      Abacus only the dirty segments — everything outside the region is
      frozen byte-for-byte;
    + on an infeasible, incomplete or illegal local solve, {e widen} the
      dirty radius and retry; after [max_widenings] escalations, fall
      back to a full re-legalization through the resilient pipeline
      ({!Tdf_robust.Pipeline.run} seeded with the base placement).

    The grid is built once per [run] and re-filled across widening
    attempts with {!Tdf_grid.Grid.reset_to}; the MCMF precheck reuses one
    {!Tdf_flow.Mcmf.Workspace} across attempts.

    Telemetry counters: ["eco.dirty_bins"] (per attempt),
    ["eco.widenings"], ["eco.fallbacks"]; the whole run is wrapped in an
    ["eco.run"] span. *)

type cfg = {
  flow : Tdf_legalizer.Config.t;  (** legalizer knobs for the local pass *)
  initial_radius : int;  (** BFS radius of the first attempt (default 4) *)
  max_widenings : int;  (** escalations before full fallback (default 3) *)
  widen_factor : int;  (** radius multiplier per escalation (default 2) *)
  fallback : bool;
      (** allow the full-rerun fallback; with [false] a failed local
          solve is an error (default [true]) *)
  budget_ms : int option;  (** wall-clock budget per local attempt *)
  tiles : int option;
      (** shard the masked flow pass into this many speculative tiles
          ({!Tdf_legalizer.Flow3d.tiled_local_pass}); [None] defers to
          the process-wide {!Tdf_legalizer.Tile.tiles} knob.  Results are
          byte-identical at any value — regions too small to shard run
          the plain pass. *)
}

val default_cfg : cfg

type path =
  | Local of { radius : int }
      (** the masked solve succeeded at this radius *)
  | Full of Tdf_robust.Pipeline.path
      (** escalated to a full re-legalization *)

val path_name : path -> string

type stats = {
  dirty_bins : int;  (** dirty-region size of the winning attempt *)
  dirty_segments : int;  (** segments re-placed by the winning attempt *)
  total_bins : int;  (** grid size, for dirty-fraction reporting *)
  widenings : int;  (** escalations taken before success *)
  fallbacks : int;  (** 0, or 1 when the full fallback ran *)
  path : path;
}

type result_t = {
  design : Tdf_netlist.Design.t;  (** the perturbed design *)
  placement : Tdf_netlist.Placement.t;  (** legal for [design] *)
  perturb : Perturb.t;  (** id maps for relating old and new cell ids *)
  stats : stats;
}

type error =
  | Invalid_delta of string  (** the delta does not apply to the design *)
  | Unplaceable of Tdf_grid.Grid.place_error
      (** a cell of the perturbed design fits nowhere *)
  | Local_failed of string
      (** local attempts exhausted and [fallback] is disabled *)
  | Fallback_failed of string
      (** even the full resilient pipeline produced no legal placement *)

val error_to_string : error -> string

val run :
  ?cfg:cfg ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  Tdf_io.Delta.t ->
  (result_t, error) result
(** [run design prev delta] re-legalizes [prev] (assumed legal for
    [design]; an illegal [prev] degrades gracefully into widenings and
    ultimately the full fallback) after applying [delta].  Deterministic:
    the same inputs produce the same placement at any [--jobs] level,
    like the from-scratch legalizer. *)

(** A warm session for a {e stream} of ECO deltas against one design: the
    bin grid and the MCMF workspace stay resident between requests, so
    repeated small deltas skip the dominant rebuild costs.  The grid is
    reused whenever the perturbed design is structurally compatible (no
    macro added, same cell count, same derived bin width) and rebuilt
    transparently otherwise; either way every [eco] call produces results
    {b byte-identical} to a one-shot {!run} on the same (design, placement,
    delta) triple — reuse is a wall-clock optimization only, which the
    server test suite enforces.

    Telemetry: ["eco.grid_reuses"] / ["eco.grid_builds"] count the cache
    behavior on top of the counters {!run} already emits. *)
module Session : sig
  type t

  val create :
    ?cfg:cfg ->
    ?tiles:int ->
    Tdf_netlist.Design.t ->
    Tdf_netlist.Placement.t ->
    t
  (** [create design placement] caches [design] with a (presumed legal)
      [placement]; the placement is copied, never aliased.  [?tiles]
      overrides [cfg.tiles] for every [eco] of this session (the serve
      daemon threads each session's requested tiling through here). *)

  val design : t -> Tdf_netlist.Design.t
  (** The current (possibly perturbed) design of the session. *)

  val placement : t -> Tdf_netlist.Placement.t
  (** The current placement; legal whenever the last [eco] succeeded. *)

  val tiles : t -> int option
  (** The session's tile override ([None] = process-wide knob). *)

  val set_placement :
    t -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> unit
  (** Replace the session state (e.g. after a fresh full legalization).
      Keeps the warm grid when [design] is physically the same value. *)

  val eco : ?cfg:cfg -> t -> Tdf_io.Delta.t -> (result_t, error) result
  (** Apply one delta against the session state.  On [Ok] the session
      advances to the perturbed design and new placement; on [Error] it
      is left exactly as before (poisoned deltas cannot corrupt it). *)

  val ecos : t -> int
  (** Successful [eco] calls so far. *)

  val grid_reuses : t -> int
  (** How many of those reused the warm grid instead of rebuilding. *)

  val grid_reused_last : t -> bool
  (** Whether the most recent run (successful or not) reused the grid. *)

  val state_digest : t -> string
  (** Cheap fingerprint (CRC-32 over the cell count and the x/y/die
      coordinate arrays, as 8 hex digits) of the session's current
      placement.  The serving layer journals it with every mutating
      request and asserts that crash-recovery replay reproduces it —
      any divergence is surfaced as a typed startup error rather than
      silently serving drifted state. *)
end
