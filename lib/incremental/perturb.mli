(** Applying an ECO delta to a (design, legal placement) pair.

    The output is a fresh perturbed design plus the {e base} placement the
    incremental engine starts from: unperturbed cells keep their previous
    legal coordinates byte-for-byte, moved/added cells sit at their target
    positions (usually overlapping — that is the overflow {!Eco} resolves).

    Cell removal keeps ids dense: cells after a removed one shift down,
    and the [new_of_old] / [old_of_new] maps record the renumbering.  A
    moved cell's global-placement anchor ([gp_x]/[gp_y]/[gp_z]) is updated
    to the target, so displacement — for the incremental engine and for a
    from-scratch run on the perturbed design alike — is measured against
    the ECO's intent, not the stale original position. *)

type t = {
  design : Tdf_netlist.Design.t;  (** the perturbed design *)
  base : Tdf_netlist.Placement.t;
      (** previous coordinates carried over; targets for moved/added cells *)
  seeds : int list;
      (** perturbed cells (new ids): moved, resized, added, and cells a new
          macro landed on — the dirty-region BFS roots *)
  old_of_new : int array;  (** new id → old id; -1 for added cells *)
  new_of_old : int array;  (** old id → new id; -1 for removed cells *)
  structural : bool;
      (** the grid graph differs from the original design's (macros were
          added), so a cached grid cannot be reused across the delta *)
}

val apply :
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  Tdf_io.Delta.t ->
  (t, string) result
(** Validates as it goes: cell ids in range, at most one op per cell,
    width vectors matching the die count, dies in range, and the perturbed
    design still passing {!Tdf_netlist.Design.validate} (e.g. a new macro
    may not overlap an existing one). *)
