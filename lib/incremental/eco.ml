module Budget = Tdf_util.Budget
module Grid = Tdf_grid.Grid
module Mcmf = Tdf_flow.Mcmf
module Config = Tdf_legalizer.Config
module Flow3d = Tdf_legalizer.Flow3d
module Placement = Tdf_netlist.Placement
module Legality = Tdf_metrics.Legality
module Pipeline = Tdf_robust.Pipeline

type cfg = {
  flow : Config.t;
  initial_radius : int;
  max_widenings : int;
  widen_factor : int;
  fallback : bool;
  budget_ms : int option;
  tiles : int option;
}

let default_cfg =
  {
    flow = Config.default;
    initial_radius = 4;
    max_widenings = 3;
    widen_factor = 2;
    fallback = true;
    budget_ms = None;
    tiles = None;
  }

type path = Local of { radius : int } | Full of Pipeline.path

let path_name = function
  | Local { radius } -> Printf.sprintf "local(r=%d)" radius
  | Full p -> "full-" ^ Pipeline.path_name p

type stats = {
  dirty_bins : int;
  dirty_segments : int;
  total_bins : int;
  widenings : int;
  fallbacks : int;
  path : path;
}

type result_t = {
  design : Tdf_netlist.Design.t;
  placement : Placement.t;
  perturb : Perturb.t;
  stats : stats;
}

type error =
  | Invalid_delta of string
  | Unplaceable of Grid.place_error
  | Local_failed of string
  | Fallback_failed of string

let error_to_string = function
  | Invalid_delta msg -> "invalid delta: " ^ msg
  | Unplaceable pe -> Grid.place_error_to_string pe
  | Local_failed msg -> "local re-legalization failed: " ^ msg
  | Fallback_failed msg -> "full-rerun fallback failed: " ^ msg

let eps = 1e-6

(* Min-cost max-flow feasibility precheck over the dirty subgraph: every
   unit of supply inside the region must be routable to demand without
   leaving it.  Caps are conservative (supply rounded up, demand rounded
   down), so a pass is no guarantee — but a fail means the masked flow
   pass cannot succeed either, and we widen without burning a search. *)
let precheck ~ws ~(flow_cfg : Config.t) grid mask =
  let n = Grid.n_bins grid in
  (* Remap dirty bins to contiguous vertices; source = n_dirty,
     sink = n_dirty + 1. *)
  let vertex = Array.make n (-1) in
  let n_dirty = ref 0 in
  for b = 0 to n - 1 do
    if mask.(b) then begin
      vertex.(b) <- !n_dirty;
      incr n_dirty
    end
  done;
  let n_dirty = !n_dirty in
  let b = Mcmf.Builder.create (n_dirty + 2) in
  let source = n_dirty and sink = n_dirty + 1 in
  let required = ref 0 in
  let capacity = ref 0 in
  Array.iter
    (fun (bin : Grid.bin) ->
      if mask.(bin.Grid.id) then begin
        let v = vertex.(bin.Grid.id) in
        let sup = int_of_float (Float.ceil (Grid.supply bin -. eps)) in
        let dem = int_of_float (Float.floor (Grid.demand bin +. eps)) in
        if sup > 0 then begin
          required := !required + sup;
          ignore (Mcmf.Builder.add_edge b ~src:source ~dst:v ~cap:sup ~cost:0)
        end
        else if dem > 0 then begin
          capacity := !capacity + dem;
          ignore (Mcmf.Builder.add_edge b ~src:v ~dst:sink ~cap:dem ~cost:0)
        end
      end)
    grid.Grid.bins;
  if !required = 0 then true
  else if !capacity < !required then false
  else begin
    let big = !required in
    Array.iteri
      (fun src adj ->
        if mask.(src) then
          Array.iter
            (fun (e : Grid.edge) ->
              if
                mask.(e.Grid.dst)
                && (flow_cfg.Config.d2d_edges || e.Grid.kind <> Grid.D2d)
              then
                ignore
                  (Mcmf.Builder.add_edge b ~src:vertex.(src)
                     ~dst:vertex.(e.Grid.dst) ~cap:big ~cost:1))
            adj)
      grid.Grid.edges;
    let csr = Mcmf.Csr.of_builder b in
    match Mcmf.solve_csr csr ~ws ~source ~sink () with
    | Ok sol -> sol.Mcmf.flow >= !required
    | Error _ -> false
  end

let dirty_segment_mask grid mask =
  let only = Array.make (Array.length grid.Grid.segments) false in
  Array.iter
    (fun (bin : Grid.bin) -> if mask.(bin.Grid.id) then only.(bin.Grid.seg) <- true)
    grid.Grid.bins;
  only

(* Warm-session scratch shared across a stream of [run_cached] calls: the
   bin grid (rebound to each perturbed design when structurally
   compatible) and the MCMF workspace.  One-shot [run] uses a throwaway
   cache, so the cached path and the cold path execute identical code. *)
type cache = {
  mutable grid : (Grid.t * int) option;  (** grid + the bin width it was built at *)
  ws : Mcmf.Workspace.t;
  mutable reused_last : bool;  (** the last run reused the cached grid *)
}

let fresh_cache () =
  { grid = None; ws = Mcmf.Workspace.create (); reused_last = false }

(* A cached grid is reusable for a new perturbed design exactly when the
   rebuilt grid would be structurally identical: same dies and macros
   (deltas only ever add macros, which [Perturb] flags as [structural]),
   same cell count (the grid's per-cell state arrays are sized by it) and
   same derived bin width (it feeds segment partitioning).  Cell widths
   and gp anchors are read through [grid.design] at solve time, so
   rebinding the record to the new design is enough — no array rebuild. *)
let grid_for ~cache ~(p : Perturb.t) design bin_width =
  match cache.grid with
  | Some (g, bw)
    when bw = bin_width
         && (not p.Perturb.structural)
         && Tdf_netlist.Design.n_cells g.Grid.design
            = Tdf_netlist.Design.n_cells design ->
    Tdf_telemetry.incr "eco.grid_reuses";
    cache.reused_last <- true;
    let g = { g with Grid.design } in
    cache.grid <- Some (g, bin_width);
    g
  | _ ->
    Tdf_telemetry.incr "eco.grid_builds";
    cache.reused_last <- false;
    let g = Grid.build design ~bin_width in
    cache.grid <- Some (g, bin_width);
    g

let run_cached ?(cfg = default_cfg) ~cache design prev delta =
  Tdf_telemetry.span "eco.run" @@ fun () ->
  match Perturb.apply design prev delta with
  | Error msg -> Error (Invalid_delta msg)
  | Ok p ->
    let design = p.Perturb.design and base = p.Perturb.base in
    let bin_width =
      Flow3d.flow_bin_width design ~factor:cfg.flow.Config.bin_width_factor
    in
    let grid = grid_for ~cache ~p design bin_width in
    let n_cells = Placement.n_cells base in
    let targets =
      Array.init n_cells (fun c ->
          (base.Placement.x.(c), base.Placement.y.(c), base.Placement.die.(c)))
    in
    let ws = cache.ws in
    let widenings = ref 0 in
    let rec attempt radius tries =
      if tries > cfg.max_widenings then fallback ()
      else begin
        match Grid.reset_to grid targets with
        | Error pe -> Error (Unplaceable pe)
        | Ok () ->
          (* Seed from wherever the grid put the perturbed cells (the
             placement fallback chain may have nudged them off-target)
             plus any overflowed bin — on a legal previous placement the
             latter is a subset of the former, but an imperfect [prev]
             still converges this way. *)
          let seeds =
            List.concat_map (Grid.cell_bins grid) p.Perturb.seeds
            @ List.map
                (fun (b : Grid.bin) -> b.Grid.id)
                (Grid.overflowed_bins grid)
          in
          let mask = Grid.dirty_region grid ~seeds ~radius in
          let dirty = Array.fold_left (fun a m -> if m then a + 1 else a) 0 mask in
          Tdf_telemetry.count "eco.dirty_bins" dirty;
          let widen reason =
            Tdf_telemetry.incr "eco.widenings";
            incr widenings;
            Tdf_telemetry.count "eco.widen_radius" radius;
            ignore reason;
            attempt (radius * cfg.widen_factor) (tries + 1)
          in
          if dirty = Grid.n_bins grid && tries > 0 then
            (* The region already covers the whole grid and still failed:
               more widening cannot help. *)
            fallback ()
          else if not (precheck ~ws ~flow_cfg:cfg.flow grid mask) then
            widen "infeasible"
          else begin
            let budget =
              match cfg.budget_ms with
              | None -> Budget.unlimited
              | Some ms -> Budget.create ~wall_ms:ms ()
            in
            let ps =
              Flow3d.tiled_local_pass ~mask ?tiles:cfg.tiles cfg.flow ~budget
                grid
            in
            if
              ps.Flow3d.pass_failed > 0
              || (not ps.Flow3d.pass_complete)
              || Grid.total_overflow grid > eps
            then widen "residual overflow"
            else begin
              let placement = Placement.copy base in
              let only = dirty_segment_mask grid mask in
              Flow3d.place_segments ~only grid placement;
              if Legality.is_legal design placement then begin
                let dirty_segments =
                  Array.fold_left (fun a m -> if m then a + 1 else a) 0 only
                in
                Ok
                  {
                    design;
                    placement;
                    perturb = p;
                    stats =
                      {
                        dirty_bins = dirty;
                        dirty_segments;
                        total_bins = Grid.n_bins grid;
                        widenings = !widenings;
                        fallbacks = 0;
                        path = Local { radius };
                      };
                  }
              end
              else widen "illegal after placement"
            end
          end
      end
    and fallback () =
      if not cfg.fallback then
        Error
          (Local_failed
             (Printf.sprintf "no legal local solve within %d widenings"
                cfg.max_widenings))
      else begin
        Tdf_telemetry.incr "eco.fallbacks";
        let opts =
          { Pipeline.default_options with Pipeline.budget_ms = cfg.budget_ms }
        in
        match Pipeline.run ~opts ~cfg:cfg.flow ~start:base design with
        | Error e -> Error (Fallback_failed (Tdf_robust.Error.to_string e))
        | Ok r ->
          if not r.Pipeline.legal then
            Error
              (Fallback_failed
                 (Printf.sprintf "pipeline returned an illegal placement (%s)"
                    (Pipeline.path_name r.Pipeline.path)))
          else
            Ok
              {
                design;
                placement = r.Pipeline.placement;
                perturb = p;
                stats =
                  {
                    dirty_bins = Grid.n_bins grid;
                    dirty_segments = Array.length grid.Grid.segments;
                    total_bins = Grid.n_bins grid;
                    widenings = !widenings;
                    fallbacks = 1;
                    path = Full r.Pipeline.path;
                  };
              }
      end
    in
    attempt (max 1 cfg.initial_radius) 0

let run ?cfg design prev delta =
  run_cached ?cfg ~cache:(fresh_cache ()) design prev delta

module Session = struct
  type t = {
    mutable design : Tdf_netlist.Design.t;
    mutable placement : Placement.t;
    cache : cache;
    cfg : cfg;
    mutable ecos : int;
    mutable grid_reuses : int;
  }

  let create ?(cfg = default_cfg) ?tiles design placement =
    let cfg =
      match tiles with
      | None -> cfg
      | Some _ -> { cfg with tiles }
    in
    {
      design;
      placement = Placement.copy placement;
      cache = fresh_cache ();
      cfg;
      ecos = 0;
      grid_reuses = 0;
    }

  let design t = t.design

  let placement t = t.placement

  let tiles t = t.cfg.tiles

  let ecos t = t.ecos

  let grid_reuses t = t.grid_reuses

  let set_placement t design placement =
    (* A different design invalidates the cached grid (cell arrays may be
       sized differently); re-legalizing the same design keeps it warm. *)
    if not (t.design == design) then begin
      t.design <- design;
      t.cache.grid <- None
    end;
    t.placement <- Placement.copy placement

  let eco ?cfg t delta =
    let cfg =
      match cfg with
      | Some c -> c
      | None -> t.cfg
    in
    match run_cached ~cfg ~cache:t.cache t.design t.placement delta with
    | Error _ as e -> e
    | Ok r ->
      t.design <- r.design;
      t.placement <- Placement.copy r.placement;
      t.ecos <- t.ecos + 1;
      if t.cache.reused_last then t.grid_reuses <- t.grid_reuses + 1;
      Ok r

  let grid_reused_last t = t.cache.reused_last

  let state_digest t =
    let module Crc32 = Tdf_util.Crc32 in
    let p = t.placement in
    let buf = Bytes.create 8 in
    let put st v =
      Bytes.set_int64_le buf 0 (Int64.of_int v);
      Crc32.update_bytes st buf
    in
    let fold = Array.fold_left put in
    let st = put Crc32.empty (Placement.n_cells p) in
    let st = fold st p.Placement.x in
    let st = fold st p.Placement.y in
    let st = fold st p.Placement.die in
    Crc32.to_hex (Crc32.value st)
end
