(** Reader/writer for an ICCAD-2022-contest-style input dialect.

    The ICCAD 2022/2023 "3D placement with D2D vertical connections"
    contests distribute cases in a keyword format (Technologies / LibCells
    / DieSize / Rows / Terminal / Instances / Nets).  This module
    implements a faithful dialect of that grammar so contest-shaped data
    can be imported, plus two documented extensions needed for a
    *legalization* flow (the contest format describes a placement problem
    and carries no initial positions):

    - [Place <inst> <x> <y> <z>] — the true-3D global placement the
      legalizer starts from (cells without a [Place] default to the die
      center, z = 0.5);
    - [FixedInst <inst> <libCell> <Top|Bottom> <x> <y>] — pre-placed
      macros, treated as blockages (the ICCAD-2023 extension).

    Grammar accepted (one record per line, [#] comments):
    {v
    NumTechnologies <n>
    Tech <techName> <libCellCount>
    LibCell <name> <sizeX> <sizeY>
    DieSize <lowerX> <lowerY> <upperX> <upperY>
    TopDieMaxUtil <percent>           BottomDieMaxUtil <percent>
    TopDieRows <x> <y> <len> <height> <count>
    BottomDieRows <x> <y> <len> <height> <count>
    TopDieTech <techName>             BottomDieTech <techName>
    TerminalSize <sizeX> <sizeY>      TerminalSpacing <spacing>
    NumInstances <n>
    Inst <instName> <libCellName>
    NumNets <n>
    Net <netName> <numPins>
    Pin <instName>/<libPinName>
    Place <instName> <x> <y> <z>
    FixedInst <instName> <libCellName> <Top|Bottom> <x> <y>
    v} *)

type terminal_spec = { t_size : int; t_spacing : int }

val read : string -> (Tdf_netlist.Design.t * terminal_spec option, string) result
(** Parse contest text into a design (bottom die = index 0, top = 1).
    Library-cell heights must match their die's row height. *)

val write :
  ?terminal:terminal_spec -> Format.formatter -> Tdf_netlist.Design.t -> unit
(** Emit a two-die design in the dialect (including [Place] records and
    [FixedInst] for macros).  Requires exactly two dies. *)

val to_string : ?terminal:terminal_spec -> Tdf_netlist.Design.t -> string

val load : string -> (Tdf_netlist.Design.t * terminal_spec option, string) result
(** Read from a file path. *)

val save : ?terminal:terminal_spec -> string -> Tdf_netlist.Design.t -> unit

val read_exn : string -> Tdf_netlist.Design.t * terminal_spec option
(** Raising variant of {!read}: [Failure] with the parser's
    ["line %d: ..."] diagnostic.  Prefer {!read} in anything
    user-facing; this is for tests and scripts that want to die loudly. *)

val load_exn : string -> Tdf_netlist.Design.t * terminal_spec option
(** Raising variant of {!load}; the [Failure] message is prefixed with
    the file path ([<path>: line <n>: ...]). *)
