(** Length-prefixed framing for the [tdflow serve] wire protocol.

    A frame is an ASCII decimal byte length, a newline, the payload (by
    convention one JSON document), and a trailing newline:

    {v
    <len>\n<payload>\n
    v}

    The trailing newline keeps streams greppable and [nc]-friendly but is
    {e not} counted in [len].  Framing is transport-agnostic: this module
    only turns byte chunks into payloads and back, so it can be unit-tested
    without sockets and reused over any stream.

    Decoding is incremental: feed whatever bytes arrived, pop as many
    complete frames as they contain.  Malformed input (a non-numeric
    length prefix, a length above the configured cap, a missing
    terminator) is a {e permanent} decode error — framing is lost and the
    connection must be dropped, which is how the server treats it. *)

type error =
  | Oversized of { len : int; limit : int }
      (** The advertised length exceeds the decoder's cap; refused before
          any allocation. *)
  | Bad_prefix of string
      (** The bytes before the first newline are not a decimal length. *)
  | Bad_terminator
      (** The byte after the payload is not ['\n']. *)

val error_to_string : error -> string

val encode : string -> string
(** [encode payload] is the complete frame for [payload]. *)

val write : Buffer.t -> string -> unit
(** Append [encode payload] to a buffer without the intermediate string. *)

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] caps the accepted payload length (default 16 MiB).  The
    cap bounds memory a malicious or corrupt peer can make the decoder
    hold. *)

val feed : decoder -> ?off:int -> ?len:int -> string -> unit
(** Append a chunk of received bytes ([off]/[len] default to the whole
    string).  Raises [Invalid_argument] on a poisoned decoder (one that
    already returned an error). *)

val next : decoder -> (string option, error) result
(** Pop the next complete payload; [Ok None] when more bytes are needed.
    After an [Error _] the decoder is poisoned: every further [next]
    returns the same error. *)

val buffered : decoder -> int
(** Bytes currently held (fed but not yet returned as payloads). *)
