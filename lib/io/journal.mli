(** Write-ahead journal and session snapshots for the serving layer.

    The [tdflow serve] daemon appends one record per session-mutating
    request before replying; on restart it restores the latest valid
    snapshot per session and replays the journal suffix, so a crash,
    OOM-kill or deploy restart loses at most the requests that never got
    a reply (see DESIGN.md §9 for the recovery state machine).

    {2 On-disk format}

    One journal directory holds a single write-ahead log [wal.log] plus
    one snapshot file per session.  Both use the same checksummed record
    framing:

    {v
    record   := len:u32be  crc:u32be  payload(len bytes)
    wal rec  := lsn:u64be  user-bytes            (as record payload)
    snapshot := lsn:u64be  slen:u16be  session(slen)  blob  (one record per file)
    v}

    [crc] is {!Tdf_util.Crc32} over the payload.  Log sequence numbers
    (lsn) are assigned by {!append}, strictly increasing for the life of
    the directory (they survive {!compact}: snapshots pin the high-water
    mark).  Payload {e content} is the caller's; this module only frames,
    checksums and orders it.

    {2 Torn tails}

    A crash mid-append leaves a torn record at the end of [wal.log].
    {!open_} scans from the start and stops at the first record that is
    incomplete or fails its checksum: everything before it is returned,
    the tail from that offset on is truncated away and reported in
    [recovery.truncated_bytes].  Truncation is the contract, not an
    error — the lost suffix corresponds to requests that were never
    acknowledged.

    {2 Fault injection}

    The ["journal.append"] failpoint ({!Tdf_util.Failpoint}) simulates a
    crash mid-write: when armed, {!append} writes only a prefix of the
    record and SIGKILLs the process — the torn-tail case the chaos
    harness ([tools/chaos]) exercises end-to-end. *)

type fsync_policy =
  | Always  (** fsync after every append: no acknowledged record is lost *)
  | Every of int
      (** fsync once per [n] appends: bounded loss window, amortized cost *)
  | Never  (** leave flushing to the OS: fastest, weakest *)

val default_fsync : fsync_policy
(** [Every 8] — the measured-overhead default the serve benchmark gates. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Parses ["always"], ["never"], ["every:N"] (N >= 1). *)

val fsync_policy_to_string : fsync_policy -> string

type cfg = {
  dir : string;  (** journal directory, created if missing *)
  fsync : fsync_policy;
  max_record : int;
      (** per-record payload cap in bytes for wal appends (default
          64 MiB) — bounds both {!append} and the allocation a garbage
          length field could demand during the wal scan.  Snapshot files
          are exempt: each holds exactly one record and is bounded by
          its own length, so a session whose snapshot blob outgrows
          [max_record] still recovers. *)
}

val default_cfg : dir:string -> cfg

type snapshot = {
  snap_session : string;
  snap_lsn : int;  (** journal position the blob covers *)
  blob : string;
}

type recovery = {
  records : (int * string) list;
      (** surviving [(lsn, payload)] pairs of the wal, in append order *)
  snapshots : snapshot list;  (** readable snapshots, sorted by session *)
  truncated_bytes : int;  (** torn-tail bytes removed from the wal *)
  dropped_snapshots : int;  (** unreadable snapshot files ignored *)
}

type stats = {
  appends : int;
  appended_bytes : int;
  fsyncs : int;
  snapshots_written : int;
  compactions : int;
}

type t

val open_ : cfg -> (t * recovery, string) result
(** Open (creating the directory and an empty wal if needed), scan and
    torn-tail-truncate the wal, load snapshots, and position for
    appending.  Leftover [*.tmp] files from an interrupted snapshot write
    are deleted.  [Error] only on real I/O failures (permissions, not a
    directory, ...) — corruption is handled, not fatal. *)

val append : t -> string -> int
(** Append one record, returning its lsn.  Durability per the fsync
    policy.  Raises [Unix.Unix_error] on I/O failure. *)

val sync : t -> unit
(** Force an fsync now regardless of policy. *)

val last_lsn : t -> int
(** Highest lsn ever assigned in this directory (0 before any append). *)

val save_snapshot : t -> session:string -> string -> unit
(** Atomically (write-tmp, fsync, rename) persist [blob] as the session's
    snapshot at the current {!last_lsn}.  Replaces any previous snapshot
    of the same session. *)

val delete_snapshot : t -> session:string -> unit
(** Remove the session's snapshot file, if any (an evicted or dead
    session must not resurrect through a stale snapshot after
    {!compact}). *)

val snapshot_sessions : t -> string list
(** Sessions that currently have a snapshot file on disk. *)

val compact : t -> unit
(** Truncate the wal to empty.  Only safe after {!save_snapshot} has run
    for every live session (the server drives this); lsn numbering
    continues monotonically. *)

val stats : t -> stats

val close : t -> unit
(** Final fsync and close.  Idempotent. *)
