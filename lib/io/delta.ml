(* ECO delta text format; see the interface for the grammar.  The
   tokenizer mirrors [Text]'s: '#' comments, blank lines ignored, fields
   split on spaces/tabs. *)

type op =
  | Move of { cell : int; x : int; y : int; die : int }
  | Resize of { cell : int; widths : int array }
  | Add of { name : string; x : int; y : int; die : int; widths : int array }
  | Remove of { cell : int }
  | Add_macro of { name : string; die : int; x : int; y : int; w : int; h : int }

type t = op list

exception Parse of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse s)) fmt

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (i, line) ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         let words =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         in
         if words = [] then None else Some (i, words))

let int_of ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected integer, got %S" line s

let widths_of ~line ws =
  let a = Array.of_list (List.map (int_of ~line) ws) in
  Array.iter (fun w -> if w <= 0 then fail "line %d: width must be positive" line) a;
  a

let read text =
  try
    Ok
      (List.map
         (fun (line, words) ->
           match words with
           | [ "move"; c; x; y; d ] ->
             Move
               { cell = int_of ~line c; x = int_of ~line x; y = int_of ~line y;
                 die = int_of ~line d }
           | "resize" :: c :: ws when ws <> [] ->
             Resize { cell = int_of ~line c; widths = widths_of ~line ws }
           | "add" :: name :: x :: y :: d :: ws when ws <> [] ->
             Add
               { name; x = int_of ~line x; y = int_of ~line y;
                 die = int_of ~line d; widths = widths_of ~line ws }
           | [ "remove"; c ] -> Remove { cell = int_of ~line c }
           | [ "macro"; name; d; x; y; w; h ] ->
             Add_macro
               { name; die = int_of ~line d; x = int_of ~line x;
                 y = int_of ~line y; w = int_of ~line w; h = int_of ~line h }
           | kw :: _ -> fail "line %d: unrecognized delta op %S" line kw
           | [] -> assert false)
         (tokenize text))
  with Parse msg -> Error msg

let to_string ops =
  let buf = Buffer.create 256 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun op ->
      (match op with
      | Move { cell; x; y; die } -> out "move %d %d %d %d" cell x y die
      | Resize { cell; widths } ->
        out "resize %d" cell;
        Array.iter (fun w -> out " %d" w) widths
      | Add { name; x; y; die; widths } ->
        out "add %s %d %d %d" name x y die;
        Array.iter (fun w -> out " %d" w) widths
      | Remove { cell } -> out "remove %d" cell
      | Add_macro { name; die; x; y; w; h } ->
        out "macro %s %d %d %d %d %d" name die x y w h);
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = read (read_file path)

let save path ops =
  let oc = open_out path in
  output_string oc (to_string ops);
  close_out oc

let read_exn text =
  match read text with
  | Ok v -> v
  | Error msg -> failwith ("Delta.read: " ^ msg)

let load_exn path =
  match load path with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
