(* Format grammar (one record per line, whitespace separated):

     design <name>
     die <index> <x> <y> <w> <h> <row_height> <site_width> <max_util>
     cell <id> <name> <gp_x> <gp_y> <gp_z> <w_die0> <w_die1> ...
     cellw <id> <name> <gp_x> <gp_y> <gp_z> <weight> <w_die0> <w_die1> ...
     macro <id> <name> <die> <x> <y> <w> <h>
     net <id> <name> <pin0> <pin1> ...
     place <cell> <x> <y> <die>           (placement files only)

   `#` starts a comment; empty lines are ignored.  Names must not contain
   whitespace (the generator's names never do). *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

let write_design fmt (d : Design.t) =
  Format.fprintf fmt "design %s@." d.Design.name;
  Array.iter
    (fun (die : Die.t) ->
      let o = die.Die.outline in
      Format.fprintf fmt "die %d %d %d %d %d %d %d %.6f@." die.Die.index o.Rect.x
        o.Rect.y o.Rect.w o.Rect.h die.Die.row_height die.Die.site_width
        die.Die.max_util)
    d.Design.dies;
  Array.iter
    (fun (c : Cell.t) ->
      if c.Cell.weight = 1.0 then
        Format.fprintf fmt "cell %d %s %d %d %.6f" c.Cell.id c.Cell.name
          c.Cell.gp_x c.Cell.gp_y c.Cell.gp_z
      else
        Format.fprintf fmt "cellw %d %s %d %d %.6f %.6f" c.Cell.id c.Cell.name
          c.Cell.gp_x c.Cell.gp_y c.Cell.gp_z c.Cell.weight;
      Array.iter (fun w -> Format.fprintf fmt " %d" w) c.Cell.widths;
      Format.fprintf fmt "@.")
    d.Design.cells;
  Array.iter
    (fun (m : Blockage.t) ->
      let r = m.Blockage.rect in
      Format.fprintf fmt "macro %d %s %d %d %d %d %d@." m.Blockage.id
        m.Blockage.name m.Blockage.die r.Rect.x r.Rect.y r.Rect.w r.Rect.h)
    d.Design.macros;
  Array.iter
    (fun (n : Net.t) ->
      Format.fprintf fmt "net %d %s" n.Net.id n.Net.name;
      Array.iter (fun p -> Format.fprintf fmt " %d" p) n.Net.pins;
      Format.fprintf fmt "@.")
    d.Design.nets

let design_to_string d = Format.asprintf "%a" write_design d

exception Parse of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse s)) fmt

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (i, line) ->
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         let words =
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun w -> w <> "")
         in
         if words = [] then None else Some (i, words))

let int_of ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected integer, got %S" line s

let float_of ~line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected number, got %S" line s

let read_design text =
  try
    let name = ref "unnamed" in
    let dies = ref [] and cells = ref [] and macros = ref [] and nets = ref [] in
    List.iter
      (fun (line, words) ->
        match words with
        | "design" :: n :: _ -> name := n
        | [ "die"; i; x; y; w; h; rh; sw; mu ] ->
          let outline =
            Rect.make ~x:(int_of ~line x) ~y:(int_of ~line y) ~w:(int_of ~line w)
              ~h:(int_of ~line h)
          in
          dies :=
            Die.make ~index:(int_of ~line i) ~outline
              ~row_height:(int_of ~line rh) ~site_width:(int_of ~line sw)
              ~max_util:(float_of ~line mu) ()
            :: !dies
        | "cell" :: id :: cname :: x :: y :: z :: ws when ws <> [] ->
          let widths = Array.of_list (List.map (int_of ~line) ws) in
          cells :=
            Cell.make ~id:(int_of ~line id) ~name:cname ~widths
              ~gp_x:(int_of ~line x) ~gp_y:(int_of ~line y)
              ~gp_z:(float_of ~line z) ()
            :: !cells
        | "cellw" :: id :: cname :: x :: y :: z :: wt :: ws when ws <> [] ->
          let widths = Array.of_list (List.map (int_of ~line) ws) in
          cells :=
            Cell.make ~id:(int_of ~line id) ~name:cname
              ~weight:(float_of ~line wt) ~widths ~gp_x:(int_of ~line x)
              ~gp_y:(int_of ~line y) ~gp_z:(float_of ~line z) ()
            :: !cells
        | [ "macro"; id; mname; die; x; y; w; h ] ->
          let rect =
            Rect.make ~x:(int_of ~line x) ~y:(int_of ~line y) ~w:(int_of ~line w)
              ~h:(int_of ~line h)
          in
          macros :=
            Blockage.make ~id:(int_of ~line id) ~name:mname
              ~die:(int_of ~line die) ~rect ()
            :: !macros
        | "net" :: id :: nname :: ps when ps <> [] ->
          let pins = Array.of_list (List.map (int_of ~line) ps) in
          nets := Net.make ~id:(int_of ~line id) ~name:nname ~pins () :: !nets
        | kw :: _ -> fail "line %d: unrecognized record %S" line kw
        | [] -> ())
      (tokenize text);
    let sort_by f l = List.sort (fun a b -> compare (f a) (f b)) l in
    let design =
      Design.make ~name:!name
        ~dies:(Array.of_list (sort_by (fun d -> d.Die.index) !dies))
        ~cells:(Array.of_list (sort_by (fun c -> c.Cell.id) !cells))
        ~macros:(Array.of_list (sort_by (fun m -> m.Blockage.id) !macros))
        ~nets:(Array.of_list (sort_by (fun n -> n.Net.id) !nets))
        ()
    in
    match Design.validate design with
    | Ok () -> Ok design
    | Error (e :: _) -> Error e
    | Error [] -> Ok design
  with
  | Parse msg -> Error msg
  | Assert_failure _ -> Error "invalid field value (assertion)"

let write_placement fmt design (p : Placement.t) =
  ignore design;
  for c = 0 to Placement.n_cells p - 1 do
    Format.fprintf fmt "place %d %d %d %d@." c p.Placement.x.(c) p.Placement.y.(c)
      p.Placement.die.(c)
  done

let placement_to_string design p = Format.asprintf "%a" (fun fmt -> write_placement fmt design) p

let read_placement design text =
  try
    let p = Placement.initial design in
    List.iter
      (fun (line, words) ->
        match words with
        | [ "place"; c; x; y; d ] ->
          let c = int_of ~line c in
          if c < 0 || c >= Placement.n_cells p then
            fail "line %d: cell %d out of range" line c;
          p.Placement.x.(c) <- int_of ~line x;
          p.Placement.y.(c) <- int_of ~line y;
          p.Placement.die.(c) <- int_of ~line d
        | kw :: _ -> fail "line %d: unrecognized record %S" line kw
        | [] -> ())
      (tokenize text);
    Ok p
  with Parse msg -> Error msg

let with_out path f =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  (try f fmt with e -> close_out oc; raise e);
  Format.pp_print_flush fmt ();
  close_out oc

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let save_design path d = with_out path (fun fmt -> write_design fmt d)

let load_design path = read_design (read_file path)

let save_placement path design p = with_out path (fun fmt -> write_placement fmt design p)

let load_placement path design = read_placement design (read_file path)

let read_design_exn text =
  match read_design text with
  | Ok v -> v
  | Error msg -> failwith ("Text.read_design: " ^ msg)

let load_design_exn path =
  match load_design path with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

let read_placement_exn design text =
  match read_placement design text with
  | Ok v -> v
  | Error msg -> failwith ("Text.read_placement: " ^ msg)

let load_placement_exn path design =
  match load_placement path design with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
