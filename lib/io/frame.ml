type error =
  | Oversized of { len : int; limit : int }
  | Bad_prefix of string
  | Bad_terminator

let error_to_string = function
  | Oversized { len; limit } ->
    Printf.sprintf "frame length %d exceeds limit %d" len limit
  | Bad_prefix s -> Printf.sprintf "malformed length prefix %S" s
  | Bad_terminator -> "frame payload not terminated by newline"

let encode payload =
  let b = Buffer.create (String.length payload + 16) in
  Buffer.add_string b (string_of_int (String.length payload));
  Buffer.add_char b '\n';
  Buffer.add_string b payload;
  Buffer.add_char b '\n';
  Buffer.contents b

let write buf payload =
  Buffer.add_string buf (string_of_int (String.length payload));
  Buffer.add_char buf '\n';
  Buffer.add_string buf payload;
  Buffer.add_char buf '\n'

(* The decoder keeps one flat buffer of unconsumed bytes and a scan
   position.  Consumed prefixes are compacted away lazily (only when the
   dead prefix outgrows the live tail) so feeding many small chunks stays
   linear. *)
type decoder = {
  max_frame : int;
  buf : Buffer.t;
  mutable pos : int;  (** start of the un-parsed region within [buf] *)
  mutable poisoned : error option;
}

let default_max_frame = 16 * 1024 * 1024

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Buffer.create 256; pos = 0; poisoned = None }

let feed d ?(off = 0) ?len s =
  (match d.poisoned with
  | Some e -> invalid_arg ("Frame.feed: poisoned decoder: " ^ error_to_string e)
  | None -> ());
  let len = Option.value len ~default:(String.length s - off) in
  Buffer.add_substring d.buf s off len

let buffered d = Buffer.length d.buf - d.pos

let compact d =
  if d.pos > 4096 && d.pos * 2 > Buffer.length d.buf then begin
    let tail = Buffer.sub d.buf d.pos (Buffer.length d.buf - d.pos) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf tail;
    d.pos <- 0
  end

let poison d e =
  d.poisoned <- Some e;
  Error e

(* A length prefix is 1-10 decimal digits; anything longer than the
   digits of [max_int] cannot be a sane length and is rejected even
   before its newline arrives, so a stream of garbage fails fast instead
   of buffering forever. *)
let max_prefix_digits = 19

let next d =
  match d.poisoned with
  | Some e -> Error e
  | None ->
    let len_total = Buffer.length d.buf in
    let rec find_nl i =
      if i >= len_total then None
      else if Buffer.nth d.buf i = '\n' then Some i
      else find_nl (i + 1)
    in
    (match find_nl d.pos with
    | None ->
      if len_total - d.pos > max_prefix_digits then
        poison d
          (Bad_prefix (Buffer.sub d.buf d.pos (min 32 (len_total - d.pos))))
      else Ok None
    | Some nl ->
      let prefix = Buffer.sub d.buf d.pos (nl - d.pos) in
      (match int_of_string_opt prefix with
      | None -> poison d (Bad_prefix prefix)
      | Some len when len < 0 -> poison d (Bad_prefix prefix)
      | Some len when len > d.max_frame ->
        poison d (Oversized { len; limit = d.max_frame })
      | Some len ->
        (* payload + trailing '\n' must be fully buffered *)
        if len_total - nl - 1 < len + 1 then Ok None
        else if Buffer.nth d.buf (nl + 1 + len) <> '\n' then
          poison d Bad_terminator
        else begin
          let payload = Buffer.sub d.buf (nl + 1) len in
          d.pos <- nl + 1 + len + 1;
          compact d;
          Ok (Some payload)
        end))
