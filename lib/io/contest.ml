module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design

type terminal_spec = { t_size : int; t_spacing : int }

exception Parse of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse s)) fmt

let int_of ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected integer, got %S" line s

let float_of ~line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected number, got %S" line s

type raw_inst = { ri_name : string; ri_lib : string }

type parse_state = {
  mutable techs : (string, (string, int * int) Hashtbl.t) Hashtbl.t;
  mutable cur_tech : (string, int * int) Hashtbl.t option;
  mutable die_size : (int * int * int * int) option;
  mutable top_util : float;
  mutable bottom_util : float;
  mutable top_rows : (int * int * int * int * int) option;
  mutable bottom_rows : (int * int * int * int * int) option;
  mutable top_tech : string option;
  mutable bottom_tech : string option;
  mutable term_size : int option;
  mutable term_spacing : int option;
  mutable insts : raw_inst list;  (* reversed *)
  mutable nets : (string * string list) list;  (* reversed; pins reversed *)
  mutable cur_net : (string * int * string list) option;
  mutable places : (string, int * int * float) Hashtbl.t;
  mutable fixed : (string * string * int * int * int) list;  (* reversed *)
}

let fresh_state () =
  {
    techs = Hashtbl.create 4;
    cur_tech = None;
    die_size = None;
    top_util = 100.;
    bottom_util = 100.;
    top_rows = None;
    bottom_rows = None;
    top_tech = None;
    bottom_tech = None;
    term_size = None;
    term_spacing = None;
    insts = [];
    nets = [];
    cur_net = None;
    places = Hashtbl.create 64;
    fixed = [];
  }

let flush_net st =
  match st.cur_net with
  | Some (name, expected, pins) ->
    if List.length pins <> expected then
      fail "net %s: expected %d pins, found %d" name expected (List.length pins);
    st.nets <- (name, List.rev pins) :: st.nets;
    st.cur_net <- None
  | None -> ()

let die_of_word ~line = function
  | "Top" | "top" -> 1
  | "Bottom" | "bottom" -> 0
  | w -> fail "line %d: expected Top or Bottom, got %S" line w

let handle st line words =
  match words with
  | [ "NumTechnologies"; _ ] | [ "NumInstances"; _ ] | [ "NumNets"; _ ] -> ()
  | [ "Tech"; name; _count ] ->
    let tbl = Hashtbl.create 16 in
    Hashtbl.replace st.techs name tbl;
    st.cur_tech <- Some tbl
  | [ "LibCell"; name; sx; sy ] ->
    (match st.cur_tech with
    | Some tbl -> Hashtbl.replace tbl name (int_of ~line sx, int_of ~line sy)
    | None -> fail "line %d: LibCell outside a Tech section" line)
  | [ "DieSize"; lx; ly; ux; uy ] ->
    st.die_size <-
      Some (int_of ~line lx, int_of ~line ly, int_of ~line ux, int_of ~line uy)
  | [ "TopDieMaxUtil"; p ] -> st.top_util <- float_of ~line p
  | [ "BottomDieMaxUtil"; p ] -> st.bottom_util <- float_of ~line p
  | [ "TopDieRows"; x; y; len; h; n ] ->
    st.top_rows <-
      Some (int_of ~line x, int_of ~line y, int_of ~line len, int_of ~line h, int_of ~line n)
  | [ "BottomDieRows"; x; y; len; h; n ] ->
    st.bottom_rows <-
      Some (int_of ~line x, int_of ~line y, int_of ~line len, int_of ~line h, int_of ~line n)
  | [ "TopDieTech"; t ] -> st.top_tech <- Some t
  | [ "BottomDieTech"; t ] -> st.bottom_tech <- Some t
  | [ "TerminalSize"; sx; _sy ] -> st.term_size <- Some (int_of ~line sx)
  | [ "TerminalSpacing"; s ] -> st.term_spacing <- Some (int_of ~line s)
  | [ "Inst"; name; lib ] -> st.insts <- { ri_name = name; ri_lib = lib } :: st.insts
  | [ "Net"; name; npins ] ->
    flush_net st;
    st.cur_net <- Some (name, int_of ~line npins, [])
  | [ "Pin"; pin ] ->
    (match st.cur_net with
    | Some (name, expected, pins) ->
      let inst =
        match String.index_opt pin '/' with
        | Some i -> String.sub pin 0 i
        | None -> pin
      in
      st.cur_net <- Some (name, expected, inst :: pins)
    | None -> fail "line %d: Pin outside a Net section" line)
  | [ "Place"; inst; x; y; z ] ->
    Hashtbl.replace st.places inst (int_of ~line x, int_of ~line y, float_of ~line z)
  | [ "FixedInst"; name; lib; die; x; y ] ->
    st.fixed <-
      (name, lib, die_of_word ~line die, int_of ~line x, int_of ~line y) :: st.fixed
  | kw :: _ -> fail "line %d: unrecognized record %S" line kw
  | [] -> ()

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, l))
  |> List.filter_map (fun (i, l) ->
         let l =
           match String.index_opt l '#' with
           | Some j -> String.sub l 0 j
           | None -> l
         in
         let ws =
           String.split_on_char ' ' l
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (( <> ) "")
         in
         if ws = [] then None else Some (i, ws))

let build st =
  let lx, ly, ux, uy =
    match st.die_size with Some d -> d | None -> fail "missing DieSize"
  in
  let outline = Rect.make ~x:lx ~y:ly ~w:(ux - lx) ~h:(uy - ly) in
  let row_height which = function
    | Some (_, _, _, h, _) -> h
    | None -> fail "missing %sDieRows" which
  in
  let h_bottom = row_height "Bottom" st.bottom_rows in
  let h_top = row_height "Top" st.top_rows in
  let tech_of which = function
    | Some t ->
      (try Hashtbl.find st.techs t
       with Not_found -> fail "unknown tech %s for the %s die" t which)
    | None -> fail "missing %sDieTech" which
  in
  let bottom_lib = tech_of "bottom" st.bottom_tech in
  let top_lib = tech_of "top" st.top_tech in
  let dies =
    [|
      Die.make ~index:0 ~outline ~row_height:h_bottom
        ~max_util:(Float.min 1.0 (st.bottom_util /. 100.)) ();
      Die.make ~index:1 ~outline ~row_height:h_top
        ~max_util:(Float.min 1.0 (st.top_util /. 100.)) ();
    |]
  in
  let lib_dims which tbl lib h_r =
    match Hashtbl.find_opt tbl lib with
    | Some (w, h) ->
      if h <> h_r then
        fail "libcell %s height %d does not match the %s die row height %d" lib h
          which h_r;
      w
    | None -> fail "libcell %s not in the %s die tech" lib which
  in
  let insts = Array.of_list (List.rev st.insts) in
  let name_to_id = Hashtbl.create (Array.length insts) in
  let cells =
    Array.mapi
      (fun id inst ->
        Hashtbl.replace name_to_id inst.ri_name id;
        let w0 = lib_dims "bottom" bottom_lib inst.ri_lib h_bottom in
        let w1 = lib_dims "top" top_lib inst.ri_lib h_top in
        let gp_x, gp_y, gp_z =
          match Hashtbl.find_opt st.places inst.ri_name with
          | Some pos -> pos
          | None -> (lx + ((ux - lx) / 2), ly + ((uy - ly) / 2), 0.5)
        in
        Cell.make ~id ~name:inst.ri_name ~widths:[| w0; w1 |] ~gp_x ~gp_y ~gp_z ())
      insts
  in
  let macros =
    List.rev st.fixed
    |> List.mapi (fun id (name, lib, die, x, y) ->
           let tbl = if die = 0 then bottom_lib else top_lib in
           match Hashtbl.find_opt tbl lib with
           | Some (w, h) ->
             Blockage.make ~id ~name ~die ~rect:(Rect.make ~x ~y ~w ~h) ()
           | None -> fail "fixed inst %s: libcell %s not in its die tech" name lib)
    |> Array.of_list
  in
  let nets =
    List.rev st.nets
    |> List.mapi (fun id (name, pins) ->
           let pins =
             pins
             |> List.map (fun inst ->
                    match Hashtbl.find_opt name_to_id inst with
                    | Some i -> i
                    | None -> fail "net %s references unknown instance %s" name inst)
             |> Array.of_list
           in
           Net.make ~id ~name ~pins ())
    |> Array.of_list
  in
  let design = Design.make ~name:"contest" ~dies ~cells ~macros ~nets () in
  let terminal =
    match (st.term_size, st.term_spacing) with
    | Some t_size, Some t_spacing -> Some { t_size; t_spacing }
    | Some t_size, None -> Some { t_size; t_spacing = 0 }
    | None, _ -> None
  in
  (design, terminal)

let read text =
  try
    let st = fresh_state () in
    List.iter (fun (line, words) -> handle st line words) (tokenize text);
    flush_net st;
    let design, terminal = build st in
    match Design.validate design with
    | Ok () -> Ok (design, terminal)
    | Error (e :: _) -> Error e
    | Error [] -> Ok (design, terminal)
  with
  | Parse msg -> Error msg
  | Assert_failure _ -> Error "invalid field value (assertion)"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let write ?terminal fmt (d : Design.t) =
  if Design.n_dies d <> 2 then
    invalid_arg "Contest.write: the contest dialect describes two-die designs";
  let bottom = Design.die d 0 and top = Design.die d 1 in
  (* one libcell per distinct (w0, w1) pair, named C<w0>_<w1> *)
  let pairs = Hashtbl.create 64 in
  Array.iter
    (fun (c : Cell.t) ->
      Hashtbl.replace pairs (c.Cell.widths.(0), c.Cell.widths.(1)) ())
    d.Design.cells;
  let pair_list = Hashtbl.fold (fun k () acc -> k :: acc) pairs [] |> List.sort compare in
  let lib_name (w0, w1) = Printf.sprintf "C%d_%d" w0 w1 in
  let macro_name i = Printf.sprintf "MacroLib%d" i in
  Format.fprintf fmt "NumTechnologies 2@.";
  let emit_tech name die_idx h_r =
    let n_lib = List.length pair_list + Array.length d.Design.macros in
    Format.fprintf fmt "Tech %s %d@." name n_lib;
    List.iter
      (fun (w0, w1) ->
        let w = if die_idx = 0 then w0 else w1 in
        Format.fprintf fmt "LibCell %s %d %d@." (lib_name (w0, w1)) w h_r)
      pair_list;
    Array.iteri
      (fun i (m : Blockage.t) ->
        Format.fprintf fmt "LibCell %s %d %d@." (macro_name i) m.Blockage.rect.Rect.w
          m.Blockage.rect.Rect.h)
      d.Design.macros
  in
  emit_tech "BottomTech" 0 bottom.Die.row_height;
  emit_tech "TopTech" 1 top.Die.row_height;
  let o = bottom.Die.outline in
  Format.fprintf fmt "DieSize %d %d %d %d@." o.Rect.x o.Rect.y (o.Rect.x + o.Rect.w)
    (o.Rect.y + o.Rect.h);
  Format.fprintf fmt "TopDieMaxUtil %.0f@." (top.Die.max_util *. 100.);
  Format.fprintf fmt "BottomDieMaxUtil %.0f@." (bottom.Die.max_util *. 100.);
  Format.fprintf fmt "BottomDieRows %d %d %d %d %d@." o.Rect.x o.Rect.y o.Rect.w
    bottom.Die.row_height (Die.num_rows bottom);
  Format.fprintf fmt "TopDieRows %d %d %d %d %d@." o.Rect.x o.Rect.y o.Rect.w
    top.Die.row_height (Die.num_rows top);
  Format.fprintf fmt "BottomDieTech BottomTech@.";
  Format.fprintf fmt "TopDieTech TopTech@.";
  (match terminal with
  | Some t ->
    Format.fprintf fmt "TerminalSize %d %d@." t.t_size t.t_size;
    Format.fprintf fmt "TerminalSpacing %d@." t.t_spacing
  | None -> ());
  Format.fprintf fmt "NumInstances %d@." (Design.n_cells d);
  Array.iter
    (fun (c : Cell.t) ->
      Format.fprintf fmt "Inst %s %s@." c.Cell.name
        (lib_name (c.Cell.widths.(0), c.Cell.widths.(1))))
    d.Design.cells;
  Format.fprintf fmt "NumNets %d@." (Array.length d.Design.nets);
  Array.iter
    (fun (n : Net.t) ->
      Format.fprintf fmt "Net %s %d@." n.Net.name (Array.length n.Net.pins);
      Array.iteri
        (fun i pin ->
          Format.fprintf fmt "Pin %s/P%d@." (Design.cell d pin).Cell.name i)
        n.Net.pins)
    d.Design.nets;
  Array.iter
    (fun (c : Cell.t) ->
      Format.fprintf fmt "Place %s %d %d %.6f@." c.Cell.name c.Cell.gp_x c.Cell.gp_y
        c.Cell.gp_z)
    d.Design.cells;
  Array.iteri
    (fun i (m : Blockage.t) ->
      Format.fprintf fmt "FixedInst %s %s %s %d %d@." m.Blockage.name (macro_name i)
        (if m.Blockage.die = 1 then "Top" else "Bottom")
        m.Blockage.rect.Rect.x m.Blockage.rect.Rect.y)
    d.Design.macros

let to_string ?terminal d = Format.asprintf "%a" (fun fmt -> write ?terminal fmt) d

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  read s

let save ?terminal path d =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  write ?terminal fmt d;
  Format.pp_print_flush fmt ();
  close_out oc

let read_exn text =
  match read text with Ok v -> v | Error msg -> failwith ("Contest.read: " ^ msg)

let load_exn path =
  match load path with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
