module Crc32 = Tdf_util.Crc32
module Failpoint = Tdf_util.Failpoint

type fsync_policy = Always | Every of int | Never

let default_fsync = Every 8

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s when String.length s > 6 && String.sub s 0 6 = "every:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some n when n >= 1 -> Ok (Every n)
    | _ -> Error (Printf.sprintf "bad fsync policy %S (need every:N, N >= 1)" s)
  )
  | s ->
    Error
      (Printf.sprintf "bad fsync policy %S (expected always, never or every:N)"
         s)

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Every n -> Printf.sprintf "every:%d" n

type cfg = { dir : string; fsync : fsync_policy; max_record : int }

let default_cfg ~dir = { dir; fsync = default_fsync; max_record = 64 * 1024 * 1024 }

type snapshot = { snap_session : string; snap_lsn : int; blob : string }

type recovery = {
  records : (int * string) list;
  snapshots : snapshot list;
  truncated_bytes : int;
  dropped_snapshots : int;
}

type stats = {
  appends : int;
  appended_bytes : int;
  fsyncs : int;
  snapshots_written : int;
  compactions : int;
}

type t = {
  cfg : cfg;
  fd : Unix.file_descr;  (** wal.log, positioned at its end *)
  mutable lsn : int;
  mutable unsynced : int;  (** appends since the last fsync *)
  mutable snap_sessions : string list;
  mutable closed : bool;
  (* stats *)
  mutable appends : int;
  mutable appended_bytes : int;
  mutable fsyncs : int;
  mutable snapshots_written : int;
  mutable compactions : int;
}

(* ---- framing --------------------------------------------------------- *)

let header_len = 8

let put_u32_be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32_be s off =
  (Char.code (Bytes.get s off) lsl 24)
  lor (Char.code (Bytes.get s (off + 1)) lsl 16)
  lor (Char.code (Bytes.get s (off + 2)) lsl 8)
  lor Char.code (Bytes.get s (off + 3))

let put_u64_be b off v =
  put_u32_be b off ((v lsr 32) land 0xFFFFFFFF);
  put_u32_be b (off + 4) (v land 0xFFFFFFFF)

let get_u64_be s off = (get_u32_be s off lsl 32) lor get_u32_be s (off + 4)

(* One framed record: len | crc | payload. *)
let frame payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  put_u32_be b 0 n;
  put_u32_be b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b header_len n;
  b

(* Scan framed records out of [data]; returns the payloads in order and
   the offset of the first incomplete/corrupt record (= length when the
   whole buffer parses). *)
let scan ~max_record data =
  let total = Bytes.length data in
  let out = ref [] in
  let pos = ref 0 in
  let ok = ref true in
  while !ok && !pos + header_len <= total do
    let len = get_u32_be data !pos in
    if len < 0 || len > max_record || !pos + header_len + len > total then
      ok := false
    else
      let crc = get_u32_be data (!pos + 4) in
      let payload = Bytes.sub_string data (!pos + header_len) len in
      if Crc32.string payload <> crc then ok := false
      else begin
        out := payload :: !out;
        pos := !pos + header_len + len
      end
  done;
  (List.rev !out, !pos)

(* ---- low-level IO ---------------------------------------------------- *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let write_all fd b off len =
  let off = ref off and left = ref len in
  while !left > 0 do
    let n = restart_on_eintr (fun () -> Unix.write fd b !off !left) in
    off := !off + n;
    left := !left - n
  done

let read_whole fd =
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let n = restart_on_eintr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) in
    if n > 0 then begin
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    end
  in
  go ();
  Buffer.to_bytes buf

(* ---- paths ----------------------------------------------------------- *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  if String.length h mod 2 <> 0 then None
  else
    try
      Some
        (String.init
           (String.length h / 2)
           (fun i -> Char.chr (int_of_string ("0x" ^ String.sub h (2 * i) 2))))
    with _ -> None

let wal_path cfg = Filename.concat cfg.dir "wal.log"

let snap_path cfg session =
  Filename.concat cfg.dir ("snap-" ^ hex_of_string session ^ ".snap")

(* ---- snapshots ------------------------------------------------------- *)

let encode_snapshot ~session ~lsn blob =
  let slen = String.length session in
  let b = Bytes.create (8 + 2 + slen + String.length blob) in
  put_u64_be b 0 lsn;
  Bytes.set b 8 (Char.chr ((slen lsr 8) land 0xff));
  Bytes.set b 9 (Char.chr (slen land 0xff));
  Bytes.blit_string session 0 b 10 slen;
  Bytes.blit_string blob 0 b (10 + slen) (String.length blob);
  Bytes.to_string b

let decode_snapshot payload =
  let n = String.length payload in
  if n < 10 then None
  else
    let b = Bytes.of_string payload in
    let lsn = get_u64_be b 0 in
    let slen = (Char.code payload.[8] lsl 8) lor Char.code payload.[9] in
    if lsn < 0 || 10 + slen > n then None
    else
      Some
        {
          snap_session = String.sub payload 10 slen;
          snap_lsn = lsn;
          blob = String.sub payload (10 + slen) (n - 10 - slen);
        }

(* A snapshot file holds exactly one record and is read whole, so its
   own length bounds the scan — [cfg.max_record] is a wal-append cap and
   must NOT apply here, or a session whose blob outgrew it would
   snapshot successfully and then be silently dropped on recovery. *)
let load_snapshot path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error _ -> None
  | raw -> (
    match scan ~max_record:(String.length raw) (Bytes.of_string raw) with
    | [ payload ], good when good = String.length raw -> decode_snapshot payload
    | _ -> None)

(* ---- open / recovery ------------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ cfg =
  try
    mkdir_p cfg.dir;
    if not (Sys.is_directory cfg.dir) then
      failwith (cfg.dir ^ " exists and is not a directory");
    (* Leftover tmp files are interrupted snapshot writes: never valid. *)
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".tmp" then
          try Sys.remove (Filename.concat cfg.dir f) with Sys_error _ -> ())
      (Sys.readdir cfg.dir);
    let fd =
      Unix.openfile (wal_path cfg) [ Unix.O_RDWR; Unix.O_CREAT ] 0o644
    in
    let data = read_whole fd in
    let payloads, good = scan ~max_record:cfg.max_record data in
    let truncated = Bytes.length data - good in
    if truncated > 0 then begin
      Unix.ftruncate fd good;
      Tdf_telemetry.incr "journal.truncated_tails"
    end;
    ignore (Unix.lseek fd good Unix.SEEK_SET);
    (* wal payload = lsn:u64be ++ user bytes; a record too short for its
       lsn is treated like a checksum failure would have been at scan
       time — it cannot happen through [append], so drop it and anything
       after it.  (Belt and braces: [scan] already checksummed.) *)
    let records =
      let rec go acc = function
        | [] -> List.rev acc
        | p :: rest when String.length p >= 8 ->
          let b = Bytes.of_string p in
          go ((get_u64_be b 0, String.sub p 8 (String.length p - 8)) :: acc) rest
        | _ :: _ -> List.rev acc
      in
      go [] payloads
    in
    let dropped = ref 0 in
    let snaps = ref [] in
    Array.iter
      (fun f ->
        if
          String.length f > 10
          && String.sub f 0 5 = "snap-"
          && Filename.check_suffix f ".snap"
        then begin
          let hex = String.sub f 5 (String.length f - 10) in
          match
            (string_of_hex hex, load_snapshot (Filename.concat cfg.dir f))
          with
          | Some session, Some snap when session = snap.snap_session ->
            snaps := snap :: !snaps
          | _ -> incr dropped
        end)
      (Sys.readdir cfg.dir);
    let snapshots =
      List.sort (fun a b -> compare a.snap_session b.snap_session) !snaps
    in
    let last_lsn =
      List.fold_left
        (fun a s -> max a s.snap_lsn)
        (List.fold_left (fun a (l, _) -> max a l) 0 records)
        snapshots
    in
    let t =
      {
        cfg;
        fd;
        lsn = last_lsn;
        unsynced = 0;
        snap_sessions = List.map (fun s -> s.snap_session) snapshots;
        closed = false;
        appends = 0;
        appended_bytes = 0;
        fsyncs = 0;
        snapshots_written = 0;
        compactions = 0;
      }
    in
    Ok
      ( t,
        {
          records;
          snapshots;
          truncated_bytes = truncated;
          dropped_snapshots = !dropped;
        } )
  with
  | Unix.Unix_error (e, fn, arg) ->
    Error
      (Printf.sprintf "journal %s: %s: %s%s" cfg.dir fn (Unix.error_message e)
         (if arg = "" then "" else " (" ^ arg ^ ")"))
  | Sys_error msg | Failure msg -> Error (Printf.sprintf "journal: %s" msg)

(* ---- appending ------------------------------------------------------- *)

let do_fsync t =
  restart_on_eintr (fun () -> Unix.fsync t.fd);
  t.unsynced <- 0;
  t.fsyncs <- t.fsyncs + 1

let sync t = if not t.closed then do_fsync t

let append t payload =
  if t.closed then invalid_arg "Journal.append: closed journal";
  if String.length payload > t.cfg.max_record - 8 then
    invalid_arg
      (Printf.sprintf "Journal.append: %d-byte record exceeds max_record %d"
         (String.length payload) t.cfg.max_record);
  let lsn = t.lsn + 1 in
  let body = Bytes.create (8 + String.length payload) in
  put_u64_be body 0 lsn;
  Bytes.blit_string payload 0 body 8 (String.length payload);
  let record = frame (Bytes.to_string body) in
  if Failpoint.fire "journal.append" then begin
    (* Chaos hook: die mid-write, leaving a torn record on disk — the
       exact crash [open_]'s torn-tail truncation exists for. *)
    let torn = max 1 (Bytes.length record / 2) in
    write_all t.fd record 0 torn;
    (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    Unix.kill (Unix.getpid ()) Sys.sigkill
  end;
  write_all t.fd record 0 (Bytes.length record);
  t.lsn <- lsn;
  t.appends <- t.appends + 1;
  t.appended_bytes <- t.appended_bytes + Bytes.length record;
  t.unsynced <- t.unsynced + 1;
  Tdf_telemetry.incr "journal.appends";
  (match t.cfg.fsync with
  | Always -> do_fsync t
  | Every n -> if t.unsynced >= n then do_fsync t
  | Never -> ());
  lsn

let last_lsn t = t.lsn

(* ---- snapshots / compaction ------------------------------------------ *)

let save_snapshot t ~session blob =
  if t.closed then invalid_arg "Journal.save_snapshot: closed journal";
  let payload = encode_snapshot ~session ~lsn:t.lsn blob in
  let record = frame payload in
  let final = snap_path t.cfg session in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd record 0 (Bytes.length record);
      restart_on_eintr (fun () -> Unix.fsync fd));
  Unix.rename tmp final;
  if not (List.mem session t.snap_sessions) then
    t.snap_sessions <- session :: t.snap_sessions;
  t.snapshots_written <- t.snapshots_written + 1;
  Tdf_telemetry.incr "journal.snapshots"

let delete_snapshot t ~session =
  (try Sys.remove (snap_path t.cfg session) with Sys_error _ -> ());
  t.snap_sessions <- List.filter (fun s -> s <> session) t.snap_sessions

let snapshot_sessions t = List.sort compare t.snap_sessions

let compact t =
  if t.closed then invalid_arg "Journal.compact: closed journal";
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  do_fsync t;
  t.compactions <- t.compactions + 1;
  Tdf_telemetry.incr "journal.compactions"

let stats t =
  {
    appends = t.appends;
    appended_bytes = t.appended_bytes;
    fsyncs = t.fsyncs;
    snapshots_written = t.snapshots_written;
    compactions = t.compactions;
  }

let close t =
  if not t.closed then begin
    (try do_fsync t with Unix.Unix_error _ -> ());
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    t.closed <- true
  end
