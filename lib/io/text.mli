(** Plain-text serialization of designs and placements.

    A simple line-oriented format (one record per line, `#` comments) so
    generated benchmarks and legalization results can be saved, diffed and
    reloaded; see the format grammar in the implementation header.  Round-
    tripping is exact. *)

val write_design : Format.formatter -> Tdf_netlist.Design.t -> unit

val design_to_string : Tdf_netlist.Design.t -> string

val read_design : string -> (Tdf_netlist.Design.t, string) result
(** Parse a design from the textual form; [Error msg] on malformed input. *)

val write_placement :
  Format.formatter -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> unit

val placement_to_string :
  Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> string

val read_placement :
  Tdf_netlist.Design.t -> string -> (Tdf_netlist.Placement.t, string) result

val save_design : string -> Tdf_netlist.Design.t -> unit
(** Write to a file path. *)

val load_design : string -> (Tdf_netlist.Design.t, string) result

val save_placement :
  string -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> unit

val load_placement :
  string -> Tdf_netlist.Design.t -> (Tdf_netlist.Placement.t, string) result

val read_design_exn : string -> Tdf_netlist.Design.t
(** Raising variant of {!read_design} ([Failure] with the parser's
    ["line %d: ..."] diagnostic). *)

val load_design_exn : string -> Tdf_netlist.Design.t
(** Raising variant of {!load_design}; the [Failure] message is prefixed
    with the file path. *)

val read_placement_exn :
  Tdf_netlist.Design.t -> string -> Tdf_netlist.Placement.t
(** Raising variant of {!read_placement}. *)

val load_placement_exn :
  string -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t
(** Raising variant of {!load_placement}; prefixed with the file path. *)
