module Json = Tdf_telemetry.Json

type source = Path of string | Text of string

type request =
  | Load_design of {
      session : string;
      design : source;
      placement : source option;
      tiles : int option;
    }
  | Legalize of {
      session : string;
      budget_ms : int option;
      jobs : int option;
      tiles : int option;
      want_placement : bool;
    }
  | Eco of {
      session : string;
      delta : source;
      radius : int option;
      max_widenings : int option;
      budget_ms : int option;
      jobs : int option;
      tiles : int option;
      want_placement : bool;
    }
  | Get_placement of { session : string }
  | Stats
  | Ping
  | Shutdown

let request_kind = function
  | Load_design _ -> "load-design"
  | Legalize _ -> "legalize"
  | Eco _ -> "eco"
  | Get_placement _ -> "get-placement"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

(* Reads carry no state and [Load_design] is a full-state put (applying
   it twice equals applying it once), so a blind re-send cannot change
   the outcome.  [Legalize] and [Eco] advance session state from
   wherever it currently is — and the server journals and applies them
   before replying — so a lost reply leaves their effect unknown and a
   re-send could apply them twice. *)
let request_resend_safe = function
  | Load_design _ | Get_placement _ | Stats | Ping | Shutdown -> true
  | Legalize _ | Eco _ -> false

type err = { code : string; detail : string }

type reply =
  | Loaded of { session : string; n_cells : int; n_nets : int; legal : bool }
  | Legalized of {
      session : string;
      legal : bool;
      path : string;
      wall_s : float;
      placement : string option;
    }
  | Eco_applied of {
      session : string;
      legal : bool;
      path : string;
      dirty_bins : int;
      total_bins : int;
      widenings : int;
      fallbacks : int;
      grid_reused : bool;
      wall_s : float;
      placement : string option;
    }
  | Placement_text of { session : string; placement : string }
  | Stats_snapshot of Json.t
  | Pong
  | Shutting_down

type response = (reply, err) result

let error ~code detail = Error { code; detail }

(* ---- encoding ------------------------------------------------------ *)

let opt name f = function None -> [] | Some v -> [ (name, f v) ]

let source_fields ~path_key ~text_key = function
  | Path p -> [ (path_key, Json.String p) ]
  | Text t -> [ (text_key, Json.String t) ]

let request_to_json = function
  | Load_design { session; design; placement; tiles } ->
    Json.Obj
      ([
         ("req", Json.String "load-design"); ("session", Json.String session);
       ]
      @ source_fields ~path_key:"design_path" ~text_key:"design_text" design
      @ Option.fold ~none:[]
          ~some:
            (source_fields ~path_key:"placement_path"
               ~text_key:"placement_text")
          placement
      @ opt "tiles" (fun v -> Json.Int v) tiles)
  | Legalize { session; budget_ms; jobs; tiles; want_placement } ->
    Json.Obj
      ([ ("req", Json.String "legalize"); ("session", Json.String session) ]
      @ opt "budget_ms" (fun v -> Json.Int v) budget_ms
      @ opt "jobs" (fun v -> Json.Int v) jobs
      @ opt "tiles" (fun v -> Json.Int v) tiles
      @ if want_placement then [ ("placement", Json.Bool true) ] else [])
  | Eco
      {
        session;
        delta;
        radius;
        max_widenings;
        budget_ms;
        jobs;
        tiles;
        want_placement;
      } ->
    Json.Obj
      ([ ("req", Json.String "eco"); ("session", Json.String session) ]
      @ source_fields ~path_key:"delta_path" ~text_key:"delta" delta
      @ opt "radius" (fun v -> Json.Int v) radius
      @ opt "max_widenings" (fun v -> Json.Int v) max_widenings
      @ opt "budget_ms" (fun v -> Json.Int v) budget_ms
      @ opt "jobs" (fun v -> Json.Int v) jobs
      @ opt "tiles" (fun v -> Json.Int v) tiles
      @ if want_placement then [ ("placement", Json.Bool true) ] else [])
  | Get_placement { session } ->
    Json.Obj
      [ ("req", Json.String "get-placement"); ("session", Json.String session) ]
  | Stats -> Json.Obj [ ("req", Json.String "stats") ]
  | Ping -> Json.Obj [ ("req", Json.String "ping") ]
  | Shutdown -> Json.Obj [ ("req", Json.String "shutdown") ]

(* ---- request decoding ---------------------------------------------- *)

exception Bad of err

let bad code fmt =
  Format.kasprintf (fun detail -> raise (Bad { code; detail })) fmt

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> bad "bad-request" "missing string field %S" name

let opt_int name j =
  match Json.member name j with
  | None -> None
  | Some v -> (
    match Json.to_int v with
    | Some n -> Some n
    | None -> bad "bad-request" "field %S must be an integer" name)

let opt_bool name j =
  match Json.member name j with
  | None | Some Json.Null -> false
  | Some (Json.Bool b) -> b
  | Some _ -> bad "bad-request" "field %S must be a boolean" name

let opt_source ~path_key ~text_key j =
  match (Json.member path_key j, Json.member text_key j) with
  | Some _, Some _ ->
    bad "bad-request" "fields %S and %S are mutually exclusive" path_key
      text_key
  | Some v, None -> (
    match Json.to_str v with
    | Some p -> Some (Path p)
    | None -> bad "bad-request" "field %S must be a string" path_key)
  | None, Some v -> (
    match Json.to_str v with
    | Some t -> Some (Text t)
    | None -> bad "bad-request" "field %S must be a string" text_key)
  | None, None -> None

let req_source ~path_key ~text_key j =
  match opt_source ~path_key ~text_key j with
  | Some s -> s
  | None -> bad "bad-request" "need field %S or %S" path_key text_key

let request_of_json j =
  try
    match j with
    | Json.Obj _ -> (
      let session () = str_field "session" j in
      match str_field "req" j with
      | "load-design" ->
        Ok
          (Load_design
             {
               session = session ();
               design =
                 req_source ~path_key:"design_path" ~text_key:"design_text" j;
               placement =
                 opt_source ~path_key:"placement_path"
                   ~text_key:"placement_text" j;
               tiles = opt_int "tiles" j;
             })
      | "legalize" ->
        Ok
          (Legalize
             {
               session = session ();
               budget_ms = opt_int "budget_ms" j;
               jobs = opt_int "jobs" j;
               tiles = opt_int "tiles" j;
               want_placement = opt_bool "placement" j;
             })
      | "eco" ->
        Ok
          (Eco
             {
               session = session ();
               delta = req_source ~path_key:"delta_path" ~text_key:"delta" j;
               radius = opt_int "radius" j;
               max_widenings = opt_int "max_widenings" j;
               budget_ms = opt_int "budget_ms" j;
               jobs = opt_int "jobs" j;
               tiles = opt_int "tiles" j;
               want_placement = opt_bool "placement" j;
             })
      | "get-placement" -> Ok (Get_placement { session = session () })
      | "stats" -> Ok Stats
      | "ping" -> Ok Ping
      | "shutdown" -> Ok Shutdown
      | kind -> Error { code = "unknown-request"; detail = kind })
    | _ -> Error { code = "bad-request"; detail = "request must be an object" }
  with Bad e -> Error e

let request_of_string s =
  match Json.of_string s with
  | Error e -> Error { code = "bad-json"; detail = e }
  | Ok j -> request_of_json j

let request_to_string r = Json.to_string (request_to_json r)

(* ---- response encoding --------------------------------------------- *)

let response_to_json = function
  | Error { code; detail } ->
    Json.Obj
      [
        ("ok", Json.Bool false);
        ( "error",
          Json.Obj
            [ ("code", Json.String code); ("detail", Json.String detail) ] );
      ]
  | Ok reply ->
    let fields =
      match reply with
      | Loaded { session; n_cells; n_nets; legal } ->
        [
          ("reply", Json.String "loaded");
          ("session", Json.String session);
          ("n_cells", Json.Int n_cells);
          ("n_nets", Json.Int n_nets);
          ("legal", Json.Bool legal);
        ]
      | Legalized { session; legal; path; wall_s; placement } ->
        [
          ("reply", Json.String "legalized");
          ("session", Json.String session);
          ("legal", Json.Bool legal);
          ("path", Json.String path);
          ("wall_s", Json.Float wall_s);
        ]
        @ opt "placement" (fun p -> Json.String p) placement
      | Eco_applied
          {
            session;
            legal;
            path;
            dirty_bins;
            total_bins;
            widenings;
            fallbacks;
            grid_reused;
            wall_s;
            placement;
          } ->
        [
          ("reply", Json.String "eco");
          ("session", Json.String session);
          ("legal", Json.Bool legal);
          ("path", Json.String path);
          ("dirty_bins", Json.Int dirty_bins);
          ("total_bins", Json.Int total_bins);
          ("widenings", Json.Int widenings);
          ("fallbacks", Json.Int fallbacks);
          ("grid_reused", Json.Bool grid_reused);
          ("wall_s", Json.Float wall_s);
        ]
        @ opt "placement" (fun p -> Json.String p) placement
      | Placement_text { session; placement } ->
        [
          ("reply", Json.String "placement");
          ("session", Json.String session);
          ("placement", Json.String placement);
        ]
      | Stats_snapshot j -> [ ("reply", Json.String "stats"); ("stats", j) ]
      | Pong -> [ ("reply", Json.String "pong") ]
      | Shutting_down -> [ ("reply", Json.String "shutting-down") ]
    in
    Json.Obj (("ok", Json.Bool true) :: fields)

(* ---- response decoding --------------------------------------------- *)

exception Shape of string

let shape fmt = Format.kasprintf (fun s -> raise (Shape s)) fmt

let rstr name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> shape "response missing string field %S" name

let rint name j =
  match Option.bind (Json.member name j) Json.to_int with
  | Some n -> n
  | None -> shape "response missing integer field %S" name

let rbool name j =
  match Json.member name j with
  | Some (Json.Bool b) -> b
  | _ -> shape "response missing boolean field %S" name

let rfloat name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> f
  | None -> shape "response missing numeric field %S" name

let ostr name j = Option.bind (Json.member name j) Json.to_str

let response_of_json j =
  try
    match Json.member "ok" j with
    | Some (Json.Bool false) ->
      let e =
        match Json.member "error" j with
        | Some e -> e
        | None -> shape "error response without \"error\" object"
      in
      Ok (Error { code = rstr "code" e; detail = rstr "detail" e })
    | Some (Json.Bool true) ->
      let reply =
        match rstr "reply" j with
        | "loaded" ->
          Loaded
            {
              session = rstr "session" j;
              n_cells = rint "n_cells" j;
              n_nets = rint "n_nets" j;
              legal = rbool "legal" j;
            }
        | "legalized" ->
          Legalized
            {
              session = rstr "session" j;
              legal = rbool "legal" j;
              path = rstr "path" j;
              wall_s = rfloat "wall_s" j;
              placement = ostr "placement" j;
            }
        | "eco" ->
          Eco_applied
            {
              session = rstr "session" j;
              legal = rbool "legal" j;
              path = rstr "path" j;
              dirty_bins = rint "dirty_bins" j;
              total_bins = rint "total_bins" j;
              widenings = rint "widenings" j;
              fallbacks = rint "fallbacks" j;
              grid_reused = rbool "grid_reused" j;
              wall_s = rfloat "wall_s" j;
              placement = ostr "placement" j;
            }
        | "placement" ->
          Placement_text
            { session = rstr "session" j; placement = rstr "placement" j }
        | "stats" ->
          Stats_snapshot
            (match Json.member "stats" j with
            | Some s -> s
            | None -> shape "stats response without \"stats\" field")
        | "pong" -> Pong
        | "shutting-down" -> Shutting_down
        | kind -> shape "unknown reply kind %S" kind
      in
      Ok (Ok reply)
    | _ -> Error "response is not an object with an \"ok\" boolean"
  with Shape msg -> Error msg

let response_of_string s =
  match Json.of_string s with
  | Error e -> Error ("response is not JSON: " ^ e)
  | Ok j -> response_of_json j

let response_to_string r = Json.to_string (response_to_json r)
