(** Typed requests and responses of the [tdflow serve] protocol, with
    their JSON encoding.

    One frame ({!Frame}) carries one JSON document.  Requests are objects
    dispatched on a ["req"] field; responses are objects with an ["ok"]
    boolean and either the reply fields or an ["error"] object carrying a
    stable machine-readable [code] plus a human-readable [detail].

    Request grammar (fields marked [?] optional):

    {v
    {"req":"load-design","session":S,
     "design_path":P | "design_text":T,
     "placement_path":P? | "placement_text":T?,"tiles":N?}
    {"req":"legalize","session":S,"budget_ms":N?,"jobs":N?,"tiles":N?,
     "placement":B?}
    {"req":"eco","session":S,"delta":T | "delta_path":P,
     "radius":N?,"max_widenings":N?,"budget_ms":N?,"jobs":N?,"tiles":N?,
     "placement":B?}
    {"req":"get-placement","session":S}
    {"req":"stats"}
    {"req":"ping"}
    {"req":"shutdown"}
    v}

    Placements travel as the exact text of {!Text.placement_to_string}, so
    a server response is byte-comparable with what the one-shot CLI writes
    to disk — the frozen-cell guarantee of the incremental engine survives
    the wire. *)

type source =
  | Path of string  (** server-side file path *)
  | Text of string  (** inline document *)

type request =
  | Load_design of {
      session : string;
      design : source;
      placement : source option;
      tiles : int option;
          (** session-wide tile count for every flow pass; omitted =
              the server's process-wide knob *)
    }
  | Legalize of {
      session : string;
      budget_ms : int option;
      jobs : int option;
      tiles : int option;  (** per-request override of the session tiling *)
      want_placement : bool;
    }
  | Eco of {
      session : string;
      delta : source;
      radius : int option;
      max_widenings : int option;
      budget_ms : int option;
      jobs : int option;
      tiles : int option;  (** per-request override of the session tiling *)
      want_placement : bool;
    }
  | Get_placement of { session : string }
  | Stats
  | Ping
  | Shutdown

val request_kind : request -> string
(** The ["req"] tag, for logging and telemetry labels. *)

val request_resend_safe : request -> bool
(** Whether a client may blindly re-send this request after its
    connection died with the reply unread.  Reads ([Get_placement],
    [Stats], [Ping]) carry no state, [Shutdown] is idempotent, and
    [Load_design] is a full-state put — applying it twice equals once.
    [Legalize] and [Eco] are [false]: the server journals and applies
    them {e before} replying, so a lost reply means the mutation may
    already be durable and a re-send could apply it a second time. *)

type err = { code : string; detail : string }
(** Stable codes include: ["bad-json"], ["bad-request"],
    ["unknown-request"], ["unknown-session"], ["parse-error"],
    ["invalid-delta"], ["eco-failed"], ["legalize-failed"],
    ["freeze-drift"], ["not-legal"], ["injected"], ["internal"],
    ["overloaded"] (request shed before execution by the server's
    pending-queue bound; safe to retry after a backoff). *)

type reply =
  | Loaded of { session : string; n_cells : int; n_nets : int; legal : bool }
  | Legalized of {
      session : string;
      legal : bool;
      path : string;  (** pipeline path that produced the placement *)
      wall_s : float;
      placement : string option;
    }
  | Eco_applied of {
      session : string;
      legal : bool;
      path : string;  (** [Eco.path_name] of the winning attempt *)
      dirty_bins : int;
      total_bins : int;
      widenings : int;
      fallbacks : int;
      grid_reused : bool;  (** warm grid was reused (cache-hot request) *)
      wall_s : float;
      placement : string option;
    }
  | Placement_text of { session : string; placement : string }
  | Stats_snapshot of Tdf_telemetry.Json.t
  | Pong
  | Shutting_down

type response = (reply, err) result

val error : code:string -> string -> response

val request_to_json : request -> Tdf_telemetry.Json.t

val request_of_json : Tdf_telemetry.Json.t -> (request, err) result

val request_of_string : string -> (request, err) result
(** Parse one frame payload; JSON syntax errors map to ["bad-json"],
    shape errors to ["bad-request"], unknown ["req"] tags to
    ["unknown-request"]. *)

val request_to_string : request -> string

val response_to_json : response -> Tdf_telemetry.Json.t

val response_of_json : Tdf_telemetry.Json.t -> (response, string) result
(** [Error _] when the document is not a response shape at all (client
    side; a malformed server is not recoverable). *)

val response_of_string : string -> (response, string) result

val response_to_string : response -> string
