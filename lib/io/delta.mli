(** Text format for engineering-change-order (ECO) deltas: the small
    perturbations [Tdf_incremental.Eco] re-legalizes against a previously
    legal placement.

    Grammar (one op per line, whitespace separated, [#] comments):

    {v
    move <cell> <x> <y> <die>          reposition an existing cell
    resize <cell> <w0> [w1 ...]        new per-die widths (one per die)
    add <name> <x> <y> <die> <w0> [w1 ...]   new cell (id assigned densely)
    remove <cell>                      drop a cell (later ids shift down)
    macro <name> <die> <x> <y> <w> <h> new fixed blockage
    v}

    Cell ids refer to the {e original} design; id remapping after removals
    is the perturbation layer's job ({!Tdf_incremental.Perturb}). *)

type op =
  | Move of { cell : int; x : int; y : int; die : int }
  | Resize of { cell : int; widths : int array }
  | Add of { name : string; x : int; y : int; die : int; widths : int array }
  | Remove of { cell : int }
  | Add_macro of { name : string; die : int; x : int; y : int; w : int; h : int }

type t = op list
(** Ops apply in file order; at most one op may target a given cell
    (enforced by the perturbation layer, not the parser). *)

val read : string -> (t, string) result
(** Parse delta text.  Errors carry ["line N: ..."] diagnostics like the
    other parsers in this library. *)

val to_string : t -> string
(** Render back to the text format ({!read} of the result round-trips). *)

val load : string -> (t, string) result
(** Read a delta file from disk. *)

val save : string -> t -> unit

val read_exn : string -> t

val load_exn : string -> t
