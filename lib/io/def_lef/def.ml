(* DEF-lite reader/writer and the design-model converters; grammar and
   conventions in def.mli.  The reader is a recursive descent over Lex's
   token stream; the writer emits one canonical byte-stable rendering,
   which is what makes `export ∘ import ∘ export` an identity. *)

open Lex
module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

type status = Placed | Fixed | Unplaced

type component = {
  c_name : string;
  c_macro : string;
  c_status : status;
  c_x : int;
  c_y : int;
  c_orient : string;
}

type pin = {
  p_name : string;
  p_net : string;
  p_dir : string;
  p_use : string;
  p_status : status;
  p_x : int;
  p_y : int;
  p_orient : string;
}

type pin_ref = Comp of string * string | External of string

type net = { n_name : string; n_pins : pin_ref list }

type row = {
  r_name : string;
  r_site : string;
  r_x : int;
  r_y : int;
  r_orient : string;
  r_count : int;
  r_step : int;
}

type t = {
  design : string;
  units : int;
  diearea : Rect.t;
  rows : row list;
  components : component list;
  pins : pin list;
  nets : net list;
  blockages : Rect.t list;
  die : int option;
  n_dies : int option;
  max_util : float option;
  gp : (string * (int * int * float * float)) list;
}

(* ---- reader -------------------------------------------------------- *)

(* ( <x> <y> ) *)
let parse_point cur =
  expect cur "(";
  let x = next cur "point" in
  let y = next cur "point" in
  expect cur ")";
  (int_of ~line:x.line x.word, int_of ~line:y.line y.word)

(* PLACED/FIXED ( x y ) <orient>, or UNPLACED. *)
let parse_status cur t =
  match t.word with
  | "PLACED" | "FIXED" ->
    let x, y = parse_point cur in
    let o = next cur "orientation" in
    ((if t.word = "FIXED" then Fixed else Placed), x, y, o.word)
  | "UNPLACED" -> (Unplaced, 0, 0, "N")
  | w -> fail "line %d: expected PLACED, FIXED or UNPLACED, got %S" t.line w

let check_count ~line what declared found =
  if declared <> found then
    fail "line %d: %s declared %d entries, found %d" line what declared found

let parse_components cur ~line n =
  let comps = ref [] in
  let rec loop () =
    let t = next cur "COMPONENTS" in
    match t.word with
    | "END" -> expect cur "COMPONENTS"
    | "-" ->
      let name = (next cur "component name").word in
      let mac = (next cur "component macro").word in
      let t2 = next cur "component" in
      let status, x, y, orient =
        match t2.word with
        | ";" -> (Unplaced, 0, 0, "N")
        | "+" ->
          let r = parse_status cur (next cur "placement status") in
          expect cur ";";
          r
        | w ->
          fail "line %d: expected + or ; in component %s, got %S" t2.line name
            w
      in
      comps :=
        {
          c_name = name;
          c_macro = mac;
          c_status = status;
          c_x = x;
          c_y = y;
          c_orient = orient;
        }
        :: !comps;
      loop ()
    | w -> fail "line %d: expected - or END COMPONENTS, got %S" t.line w
  in
  loop ();
  let comps = List.rev !comps in
  check_count ~line "COMPONENTS" n (List.length comps);
  comps

let parse_pins cur ~line n =
  let pins = ref [] in
  let rec entry p =
    let t = next cur "PINS" in
    match t.word with
    | ";" -> p
    | "+" -> (
      let k = next cur "pin option" in
      match k.word with
      | "NET" -> entry { p with p_net = (next cur "NET").word }
      | "DIRECTION" -> entry { p with p_dir = (next cur "DIRECTION").word }
      | "USE" -> entry { p with p_use = (next cur "USE").word }
      | "PLACED" | "FIXED" ->
        let x, y = parse_point cur in
        let o = next cur "orientation" in
        entry
          {
            p with
            p_status = (if k.word = "FIXED" then Fixed else Placed);
            p_x = x;
            p_y = y;
            p_orient = o.word;
          }
      | "LAYER" ->
        (* + LAYER <name> ( x y ) ( x y ): not modeled; skip the group. *)
        let rec skip () =
          match peek cur with
          | Some t when t.word <> "+" && t.word <> ";" ->
            ignore (next cur "LAYER");
            skip ()
          | Some _ -> ()
          | None -> fail "unexpected end of file (in PINS)"
        in
        skip ();
        entry p
      | w -> fail "line %d: unrecognized pin option %S" k.line w)
    | w -> fail "line %d: expected + or ; in pin %s, got %S" t.line p.p_name w
  in
  let rec loop () =
    let t = next cur "PINS" in
    match t.word with
    | "END" -> expect cur "PINS"
    | "-" ->
      let name = (next cur "pin name").word in
      pins :=
        entry
          {
            p_name = name;
            p_net = "";
            p_dir = "";
            p_use = "";
            p_status = Unplaced;
            p_x = 0;
            p_y = 0;
            p_orient = "N";
          }
        :: !pins;
      loop ()
    | w -> fail "line %d: expected - or END PINS, got %S" t.line w
  in
  loop ();
  let pins = List.rev !pins in
  check_count ~line "PINS" n (List.length pins);
  pins

let parse_nets cur ~line n =
  let nets = ref [] in
  let rec pins_of acc =
    let t = next cur "NETS" in
    match t.word with
    | ";" -> List.rev acc
    | "(" ->
      let a = next cur "net pin" in
      let r =
        if a.word = "PIN" then External (next cur "net pin").word
        else Comp (a.word, (next cur "net pin").word)
      in
      expect cur ")";
      pins_of (r :: acc)
    | w -> fail "line %d: expected ( or ; in net, got %S" t.line w
  in
  let rec loop () =
    let t = next cur "NETS" in
    match t.word with
    | "END" -> expect cur "NETS"
    | "-" ->
      let name = (next cur "net name").word in
      nets := { n_name = name; n_pins = pins_of [] } :: !nets;
      loop ()
    | w -> fail "line %d: expected - or END NETS, got %S" t.line w
  in
  loop ();
  let nets = List.rev !nets in
  check_count ~line "NETS" n (List.length nets);
  nets

let parse_blockages cur ~line n =
  let rects = ref [] and entries = ref 0 in
  let rec rects_of () =
    let t = next cur "BLOCKAGES" in
    match t.word with
    | ";" -> ()
    | "RECT" ->
      let x1, y1 = parse_point cur in
      let x2, y2 = parse_point cur in
      if x2 <= x1 || y2 <= y1 then
        fail "line %d: blockage RECT is not a positive box" t.line;
      rects := Rect.make ~x:x1 ~y:y1 ~w:(x2 - x1) ~h:(y2 - y1) :: !rects;
      rects_of ()
    | w -> fail "line %d: expected RECT or ; in blockage, got %S" t.line w
  in
  let rec loop () =
    let t = next cur "BLOCKAGES" in
    match t.word with
    | "END" -> expect cur "BLOCKAGES"
    | "-" ->
      expect cur "PLACEMENT";
      incr entries;
      rects_of ();
      loop ()
    | w -> fail "line %d: expected - or END BLOCKAGES, got %S" t.line w
  in
  loop ();
  check_count ~line "BLOCKAGES" n !entries;
  List.rev !rects

let parse cur exts =
  let design = ref None
  and units = ref None
  and diearea = ref None
  and rows = ref []
  and comps = ref None
  and pins = ref None
  and nets = ref None
  and blocks = ref None in
  let section what stored parse_fn t =
    let nt = next cur what in
    let n = int_of ~line:nt.line nt.word in
    expect cur ";";
    if !stored <> None then fail "line %d: duplicate %s section" t.line what;
    stored := Some (parse_fn cur ~line:t.line n)
  in
  let rec loop () =
    let t = next cur "design" in
    match t.word with
    | "VERSION" | "DIVIDERCHAR" | "BUSBITCHARS" ->
      skip_statement cur;
      loop ()
    | "DESIGN" ->
      let n = next cur "DESIGN" in
      expect cur ";";
      if !design <> None then fail "line %d: duplicate DESIGN" t.line;
      design := Some n.word;
      loop ()
    | "UNITS" ->
      expect cur "DISTANCE";
      expect cur "MICRONS";
      let u = next cur "UNITS" in
      expect cur ";";
      units := Some (int_of ~line:u.line u.word);
      loop ()
    | "DIEAREA" ->
      let x1, y1 = parse_point cur in
      let x2, y2 = parse_point cur in
      expect cur ";";
      if x2 <= x1 || y2 <= y1 then
        fail "line %d: DIEAREA is not a positive two-point box" t.line;
      diearea := Some (Rect.make ~x:x1 ~y:y1 ~w:(x2 - x1) ~h:(y2 - y1));
      loop ()
    | "ROW" ->
      let name = (next cur "ROW name").word in
      let site = (next cur "ROW site").word in
      let xt = next cur "ROW" in
      let yt = next cur "ROW" in
      let orient = (next cur "ROW orientation").word in
      expect cur "DO";
      let ct = next cur "ROW count" in
      expect cur "BY";
      let bt = next cur "ROW" in
      if int_of ~line:bt.line bt.word <> 1 then
        fail "line %d: ROW %s: only DO <n> BY 1 rows are in the subset"
          t.line name;
      let step =
        match peek cur with
        | Some { word = "STEP"; _ } ->
          ignore (next cur "STEP");
          let sx = next cur "STEP" in
          let _sy = next cur "STEP" in
          int_of ~line:sx.line sx.word
        | _ -> 0
      in
      expect cur ";";
      rows :=
        {
          r_name = name;
          r_site = site;
          r_x = int_of ~line:xt.line xt.word;
          r_y = int_of ~line:yt.line yt.word;
          r_orient = orient;
          r_count = int_of ~line:ct.line ct.word;
          r_step = step;
        }
        :: !rows;
      loop ()
    | "COMPONENTS" ->
      section "COMPONENTS" comps parse_components t;
      loop ()
    | "PINS" ->
      section "PINS" pins parse_pins t;
      loop ()
    | "NETS" ->
      section "NETS" nets parse_nets t;
      loop ()
    | "BLOCKAGES" ->
      section "BLOCKAGES" blocks parse_blockages t;
      loop ()
    | "END" ->
      expect cur "DESIGN";
      (match peek cur with
      | Some t -> fail "line %d: trailing tokens after END DESIGN" t.line
      | None -> ())
    | w ->
      fail
        "line %d: unrecognized design statement %S (outside the DEF-lite \
         subset; see lib/io/def_lef/def.mli)"
        t.line w
  in
  loop ();
  let die = ref None
  and n_dies = ref None
  and max_util = ref None
  and gp = ref [] in
  List.iter
    (fun (line, ws) ->
      match ws with
      | [ "tdflow.die"; i; "of"; n ] ->
        die := Some (int_of ~line i);
        n_dies := Some (int_of ~line n)
      | "tdflow.die" :: _ ->
        fail "line %d: tdflow.die wants '# tdflow.die <i> of <n>'" line
      | [ "tdflow.max_util"; u ] -> max_util := Some (float_of ~line u)
      | "tdflow.max_util" :: _ ->
        fail "line %d: tdflow.max_util wants one number" line
      | [ "tdflow.gp"; name; x; y; z ] ->
        gp :=
          (name, (int_of ~line x, int_of ~line y, float_of ~line z, 1.0))
          :: !gp
      | [ "tdflow.gp"; name; x; y; z; w ] ->
        gp :=
          ( name,
            (int_of ~line x, int_of ~line y, float_of ~line z,
             float_of ~line w) )
          :: !gp
      | "tdflow.gp" :: _ ->
        fail "line %d: tdflow.gp wants '<comp> <x> <y> <z> [<weight>]'" line
      | kw :: _ -> fail "line %d: unknown extension comment %S" line kw
      | [] -> ())
    exts;
  {
    design =
      (match !design with
      | Some d -> d
      | None -> fail "missing DESIGN statement");
    units = Option.value !units ~default:1000;
    diearea =
      (match !diearea with
      | Some a -> a
      | None -> fail "missing DIEAREA statement");
    rows = List.rev !rows;
    components = Option.value !comps ~default:[];
    pins = Option.value !pins ~default:[];
    nets = Option.value !nets ~default:[];
    blockages = Option.value !blocks ~default:[];
    die = !die;
    n_dies = !n_dies;
    max_util = !max_util;
    gp = List.rev !gp;
  }

let read text =
  try
    let toks, exts = lex text in
    Ok (parse (cursor toks) exts)
  with Parse msg -> Error msg

(* ---- writer -------------------------------------------------------- *)

let write fmt (d : t) =
  Format.fprintf fmt "VERSION 5.8 ;@.";
  (match (d.die, d.n_dies) with
  | Some i, Some n -> Format.fprintf fmt "# tdflow.die %d of %d@." i n
  | _ -> ());
  Option.iter
    (fun u -> Format.fprintf fmt "# tdflow.max_util %.6f@." u)
    d.max_util;
  Format.fprintf fmt "DESIGN %s ;@." d.design;
  Format.fprintf fmt "UNITS DISTANCE MICRONS %d ;@." d.units;
  let a = d.diearea in
  Format.fprintf fmt "DIEAREA ( %d %d ) ( %d %d ) ;@." a.Rect.x a.Rect.y
    (a.Rect.x + a.Rect.w) (a.Rect.y + a.Rect.h);
  List.iter
    (fun r ->
      if r.r_step > 0 then
        Format.fprintf fmt "ROW %s %s %d %d %s DO %d BY 1 STEP %d 0 ;@."
          r.r_name r.r_site r.r_x r.r_y r.r_orient r.r_count r.r_step
      else
        Format.fprintf fmt "ROW %s %s %d %d %s DO %d BY 1 ;@." r.r_name
          r.r_site r.r_x r.r_y r.r_orient r.r_count)
    d.rows;
  Format.fprintf fmt "COMPONENTS %d ;@." (List.length d.components);
  List.iter
    (fun c ->
      match c.c_status with
      | Placed ->
        Format.fprintf fmt "  - %s %s + PLACED ( %d %d ) %s ;@." c.c_name
          c.c_macro c.c_x c.c_y c.c_orient
      | Fixed ->
        Format.fprintf fmt "  - %s %s + FIXED ( %d %d ) %s ;@." c.c_name
          c.c_macro c.c_x c.c_y c.c_orient
      | Unplaced ->
        Format.fprintf fmt "  - %s %s + UNPLACED ;@." c.c_name c.c_macro)
    d.components;
  Format.fprintf fmt "END COMPONENTS@.";
  List.iter
    (fun (name, (x, y, z, w)) ->
      if w = 1.0 then Format.fprintf fmt "# tdflow.gp %s %d %d %.6f@." name x y z
      else Format.fprintf fmt "# tdflow.gp %s %d %d %.6f %.6f@." name x y z w)
    d.gp;
  if d.pins <> [] then begin
    Format.fprintf fmt "PINS %d ;@." (List.length d.pins);
    List.iter
      (fun p ->
        Format.fprintf fmt "  - %s" p.p_name;
        if p.p_net <> "" then Format.fprintf fmt " + NET %s" p.p_net;
        if p.p_dir <> "" then Format.fprintf fmt " + DIRECTION %s" p.p_dir;
        if p.p_use <> "" then Format.fprintf fmt " + USE %s" p.p_use;
        (match p.p_status with
        | Placed ->
          Format.fprintf fmt " + PLACED ( %d %d ) %s" p.p_x p.p_y p.p_orient
        | Fixed ->
          Format.fprintf fmt " + FIXED ( %d %d ) %s" p.p_x p.p_y p.p_orient
        | Unplaced -> ());
        Format.fprintf fmt " ;@.")
      d.pins;
    Format.fprintf fmt "END PINS@."
  end;
  if d.nets <> [] then begin
    Format.fprintf fmt "NETS %d ;@." (List.length d.nets);
    List.iter
      (fun n ->
        Format.fprintf fmt "  - %s" n.n_name;
        List.iter
          (function
            | Comp (c, p) -> Format.fprintf fmt " ( %s %s )" c p
            | External p -> Format.fprintf fmt " ( PIN %s )" p)
          n.n_pins;
        Format.fprintf fmt " ;@.")
      d.nets;
    Format.fprintf fmt "END NETS@."
  end;
  if d.blockages <> [] then begin
    Format.fprintf fmt "BLOCKAGES %d ;@." (List.length d.blockages);
    List.iter
      (fun (r : Rect.t) ->
        Format.fprintf fmt "  - PLACEMENT RECT ( %d %d ) ( %d %d ) ;@."
          r.Rect.x r.Rect.y (r.Rect.x + r.Rect.w) (r.Rect.y + r.Rect.h))
      d.blockages;
    Format.fprintf fmt "END BLOCKAGES@."
  end;
  Format.fprintf fmt "END DESIGN@."

let to_string t = Format.asprintf "%a" write t

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = read (read_file path)

let save path t =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  (try write fmt t
   with e ->
     close_out oc;
     raise e);
  Format.pp_print_flush fmt ();
  close_out oc

let read_exn text =
  match read text with Ok v -> v | Error msg -> failwith ("Def.read: " ^ msg)

let load_exn path =
  match load path with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)

(* ---- DEF/LEF -> design --------------------------------------------- *)

let to_design ~lef defs =
  try
    if defs = [] then fail "no DEF files to import";
    let n = List.length defs in
    (* Die pairing: tdflow.die tags (all files or none), else list order. *)
    let tagged = List.length (List.filter (fun d -> d.die <> None) defs) in
    let indexed =
      if tagged = 0 then List.mapi (fun i d -> (i, d)) defs
      else if tagged = n then List.map (fun d -> (Option.get d.die, d)) defs
      else fail "a tdflow.die tag is present in some DEF files but not all"
    in
    let seen = Array.make n false in
    List.iter
      (fun (i, d) ->
        if i < 0 || i >= n then
          fail "%s: tdflow.die %d out of range for %d DEF files" d.design i n;
        if seen.(i) then fail "two DEF files claim die %d" i;
        seen.(i) <- true;
        match d.n_dies with
        | Some m when m <> n ->
          fail "%s: tdflow.die says %d dies but %d DEF files were given"
            d.design m n
        | _ -> ())
      indexed;
    let indexed = List.sort (fun (a, _) (b, _) -> compare a b) indexed in
    let d0 = snd (List.hd indexed) in
    List.iter
      (fun (_, d) ->
        if d.units <> d0.units then
          fail "DEF files disagree on UNITS (%d vs %d)" d0.units d.units;
        if d.design <> d0.design then
          fail "DEF files disagree on DESIGN (%s vs %s)" d0.design d.design)
      (List.tl indexed);
    let dies =
      indexed
      |> List.map (fun (i, d) ->
             let site =
               match d.rows with
               | [] ->
                 fail "die %d: no ROW statement; cannot derive row geometry"
                   i
               | r0 :: rest ->
                 List.iter
                   (fun r ->
                     if r.r_site <> r0.r_site then
                       fail "die %d: rows reference different sites (%s vs %s)"
                         i r0.r_site r.r_site)
                   rest;
                 (match Lef.find_site lef r0.r_site with
                 | Some s -> s
                 | None -> fail "die %d: site %s is not in the LEF" i r0.r_site)
             in
             List.iter
               (fun r ->
                 if r.r_step > 0 && r.r_step <> site.Lef.s_w then
                   fail "die %d: ROW %s STEP %d does not match site %s width %d"
                     i r.r_name r.r_step site.Lef.s_name site.Lef.s_w)
               d.rows;
             let max_util = Option.value d.max_util ~default:1.0 in
             if not (max_util > 0. && max_util <= 1.0) then
               fail "die %d: max_util %g outside (0, 1]" i max_util;
             Die.make ~index:i ~outline:d.diearea ~row_height:site.Lef.s_h
               ~site_width:site.Lef.s_w ~max_util ())
      |> Array.of_list
    in
    let gp_of = Hashtbl.create 256 in
    List.iter
      (fun (_, d) ->
        List.iter
          (fun (name, g) ->
            if Hashtbl.mem gp_of name then
              fail "duplicate tdflow.gp for component %S" name;
            Hashtbl.replace gp_of name g)
          d.gp)
      indexed;
    (* Components: PLACED/UNPLACED become cells (ids in die-then-file
       order), FIXED become blockages; the PLACEMENT blockage rects of
       every file follow the fixed components. *)
    let cells = ref [] and blocks = ref [] in
    let name_to_id = Hashtbl.create 256 in
    let next_cell = ref 0 in
    List.iter
      (fun (i, d) ->
        let die = dies.(i) in
        let o = die.Die.outline in
        List.iter
          (fun c ->
            if Hashtbl.mem name_to_id c.c_name then
              fail "component %S appears more than once across the DEF files"
                c.c_name;
            let m =
              match Lef.find_macro lef c.c_macro with
              | Some m -> m
              | None ->
                fail "component %s: macro %s is not in the LEF" c.c_name
                  c.c_macro
            in
            match c.c_status with
            | Fixed ->
              (* pre-placed macros are blockages for the legalizer (§II-B) *)
              Hashtbl.replace name_to_id c.c_name (-1);
              blocks :=
                ( i,
                  c.c_name,
                  Rect.make ~x:c.c_x ~y:c.c_y ~w:m.Lef.m_w ~h:m.Lef.m_h )
                :: !blocks
            | Placed | Unplaced ->
              if m.Lef.m_class = "BLOCK" then
                fail "component %s: BLOCK macro %s must be FIXED" c.c_name
                  c.c_macro;
              let widths =
                match m.Lef.m_widths with
                | Some ws ->
                  if Array.length ws <> n then
                    fail "macro %s: tdflow.widths has %d entries for %d dies"
                      c.c_macro (Array.length ws) n;
                  Array.copy ws
                | None ->
                  if m.Lef.m_h <> die.Die.row_height then
                    fail
                      "component %s: macro %s height %d does not match die \
                       %d row height %d"
                      c.c_name c.c_macro m.Lef.m_h i die.Die.row_height;
                  Array.make n m.Lef.m_w
              in
              let gp = Hashtbl.find_opt gp_of c.c_name in
              let cx, cy =
                match (c.c_status, gp) with
                | Placed, _ -> (c.c_x, c.c_y)
                | Unplaced, Some (gx, gy, _, _) -> (gx, gy)
                | Unplaced, None ->
                  (o.Rect.x + (o.Rect.w / 2), o.Rect.y + (o.Rect.h / 2))
                | Fixed, _ -> assert false
              in
              let gp_x, gp_y, gp_z, weight =
                match gp with
                | Some g -> g
                | None -> (cx, cy, float_of_int i, 1.0)
              in
              let id = !next_cell in
              incr next_cell;
              Hashtbl.replace name_to_id c.c_name id;
              cells :=
                (id, c.c_name, widths, gp_x, gp_y, gp_z, weight, cx, cy, i)
                :: !cells)
          d.components)
      indexed;
    Hashtbl.iter
      (fun name _ ->
        match Hashtbl.find_opt name_to_id name with
        | Some id when id >= 0 -> ()
        | Some _ -> fail "tdflow.gp names fixed component %S" name
        | None -> fail "tdflow.gp names unknown component %S" name)
      gp_of;
    List.iter
      (fun (i, d) ->
        List.iteri
          (fun j r -> blocks := (i, Printf.sprintf "blk_d%d_%d" i j, r) :: !blocks)
          d.blockages)
      indexed;
    let macros =
      List.rev !blocks
      |> List.mapi (fun id (die, name, rect) ->
             Blockage.make ~id ~name ~die ~rect ())
      |> Array.of_list
    in
    (* Nets merge across files by name (first appearance fixes the id);
       connections to external pins or fixed macros carry no movable
       cell and are dropped, as are nets left with no pin at all. *)
    let net_tbl = Hashtbl.create 64 and net_order = ref [] in
    List.iter
      (fun (_, d) ->
        List.iter
          (fun nt ->
            let resolved =
              List.filter_map
                (function
                  | Comp (comp, _) -> (
                    match Hashtbl.find_opt name_to_id comp with
                    | Some id when id >= 0 -> Some id
                    | Some _ -> None
                    | None ->
                      fail "net %s references unknown component %s" nt.n_name
                        comp)
                  | External _ -> None)
                nt.n_pins
            in
            match Hashtbl.find_opt net_tbl nt.n_name with
            | Some prev -> Hashtbl.replace net_tbl nt.n_name (prev @ resolved)
            | None ->
              net_order := nt.n_name :: !net_order;
              Hashtbl.replace net_tbl nt.n_name resolved)
          d.nets)
      indexed;
    let nets =
      List.rev !net_order
      |> List.filter_map (fun name ->
             match Hashtbl.find net_tbl name with
             | [] -> None
             | pins -> Some (name, Array.of_list pins))
      |> List.mapi (fun id (name, pins) -> Net.make ~id ~name ~pins ())
      |> Array.of_list
    in
    let cells_l = List.rev !cells in
    let cells_a =
      cells_l
      |> List.map (fun (id, name, widths, gx, gy, gz, wt, _, _, _) ->
             Cell.make ~id ~name ~weight:wt ~widths ~gp_x:gx ~gp_y:gy ~gp_z:gz
               ())
      |> Array.of_list
    in
    let design =
      Design.make ~name:d0.design ~dies ~cells:cells_a ~macros ~nets ()
    in
    let nc = Array.length cells_a in
    let px = Array.make nc 0 and py = Array.make nc 0 and pd = Array.make nc 0 in
    List.iter
      (fun (id, _, _, _, _, _, _, cx, cy, die) ->
        px.(id) <- cx;
        py.(id) <- cy;
        pd.(id) <- die)
      cells_l;
    let placement = { Placement.x = px; y = py; die = pd } in
    match Design.validate design with
    | Ok () -> Ok (design, placement)
    | Error (e :: _) -> Error e
    | Error [] -> Ok (design, placement)
  with
  | Parse msg -> Error msg
  | Assert_failure _ -> Error "invalid field value (assertion)"

(* ---- design -> DEF/LEF --------------------------------------------- *)

let lib_name widths =
  "C" ^ String.concat "_" (List.map string_of_int (Array.to_list widths))

let block_name w h = Printf.sprintf "B%d_%d" w h

let site_name i = Printf.sprintf "tdf_site_d%d" i

let of_design ?placement (d : Design.t) =
  let n = Design.n_dies d in
  if n = 0 then invalid_arg "Def.of_design: design has no dies";
  let pl =
    match placement with Some p -> p | None -> Placement.initial d
  in
  if Placement.n_cells pl <> Design.n_cells d then
    invalid_arg "Def.of_design: placement size does not match the design";
  (* DEF components are name-keyed; duplicates cannot round-trip.  The
     duplicate-cell-name preflight (Tdf_robust.Validate) flags and
     repairs this before export. *)
  let seen = Hashtbl.create (Design.n_cells d) in
  Array.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem seen c.Cell.name then
        invalid_arg
          (Printf.sprintf "Def.of_design: duplicate cell name %S" c.Cell.name);
      Hashtbl.replace seen c.Cell.name ())
    d.Design.cells;
  let sites =
    List.init n (fun i ->
        let die = Design.die d i in
        {
          Lef.s_name = site_name i;
          s_class = "CORE";
          s_w = die.Die.site_width;
          s_h = die.Die.row_height;
        })
  in
  let vec_tbl = Hashtbl.create 64 in
  Array.iter
    (fun (c : Cell.t) -> Hashtbl.replace vec_tbl (Array.to_list c.Cell.widths) ())
    d.Design.cells;
  let vecs =
    Hashtbl.fold (fun k () acc -> k :: acc) vec_tbl [] |> List.sort compare
  in
  let h0 = (Design.die d 0).Die.row_height in
  let core_macros =
    List.map
      (fun ws ->
        let arr = Array.of_list ws in
        {
          Lef.m_name = lib_name arr;
          m_class = "CORE";
          m_w = arr.(0);
          m_h = h0;
          m_widths = Some arr;
        })
      vecs
  in
  let dim_tbl = Hashtbl.create 16 in
  Array.iter
    (fun (m : Blockage.t) ->
      Hashtbl.replace dim_tbl (m.Blockage.rect.Rect.w, m.Blockage.rect.Rect.h) ())
    d.Design.macros;
  let dims =
    Hashtbl.fold (fun k () acc -> k :: acc) dim_tbl [] |> List.sort compare
  in
  let block_macros =
    List.map
      (fun (w, h) ->
        {
          Lef.m_name = block_name w h;
          m_class = "BLOCK";
          m_w = w;
          m_h = h;
          m_widths = None;
        })
      dims
  in
  let lef = { Lef.sites; macros = core_macros @ block_macros } in
  let defs =
    List.init n (fun i ->
        let die = Design.die d i in
        let o = die.Die.outline in
        let rows =
          List.init (Die.num_rows die) (fun r ->
              {
                r_name = Printf.sprintf "row_d%d_%d" i r;
                r_site = site_name i;
                r_x = o.Rect.x;
                r_y = Die.row_y die r;
                r_orient = "N";
                r_count = o.Rect.w / die.Die.site_width;
                r_step = die.Die.site_width;
              })
        in
        let comps = ref [] and gp = ref [] in
        Array.iter
          (fun (c : Cell.t) ->
            if pl.Placement.die.(c.Cell.id) = i then begin
              comps :=
                {
                  c_name = c.Cell.name;
                  c_macro = lib_name c.Cell.widths;
                  c_status = Placed;
                  c_x = pl.Placement.x.(c.Cell.id);
                  c_y = pl.Placement.y.(c.Cell.id);
                  c_orient = "N";
                }
                :: !comps;
              gp :=
                (c.Cell.name, (c.Cell.gp_x, c.Cell.gp_y, c.Cell.gp_z, c.Cell.weight))
                :: !gp
            end)
          d.Design.cells;
        Array.iter
          (fun (m : Blockage.t) ->
            if m.Blockage.die = i then
              comps :=
                {
                  c_name = m.Blockage.name;
                  c_macro =
                    block_name m.Blockage.rect.Rect.w m.Blockage.rect.Rect.h;
                  c_status = Fixed;
                  c_x = m.Blockage.rect.Rect.x;
                  c_y = m.Blockage.rect.Rect.y;
                  c_orient = "N";
                }
                :: !comps)
          d.Design.macros;
        let nets =
          if i = 0 then
            Array.to_list d.Design.nets
            |> List.map (fun (nt : Net.t) ->
                   {
                     n_name = nt.Net.name;
                     n_pins =
                       Array.to_list nt.Net.pins
                       |> List.mapi (fun k p ->
                              Comp
                                ( (Design.cell d p).Cell.name,
                                  Printf.sprintf "P%d" k ));
                   })
          else []
        in
        {
          design = d.Design.name;
          units = 1000;
          diearea = o;
          rows;
          components = List.rev !comps;
          pins = [];
          nets;
          blockages = [];
          die = Some i;
          n_dies = Some n;
          max_util = Some die.Die.max_util;
          gp = List.rev !gp;
        })
  in
  (lef, defs)
