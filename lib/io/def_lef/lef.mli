(** LEF-lite: the library half of the DEF/LEF interchange
    ({!Def} is the design half).

    A pragmatic reader/writer for the LEF subset a legalization flow
    needs — placement sites and macro footprints — so designs exchanged
    as DEF against a LEF library (the OpenLane/OpenROAD open-flow
    contract) can be imported.  Grammar accepted:

    {v
    VERSION <v> ;                      (skipped)
    NAMESCASESENSITIVE <w> ;           (skipped)
    BUSBITCHARS <s> ;  DIVIDERCHAR <s> ;  MANUFACTURINGGRID <g> ;  (skipped)
    UNITS ... END UNITS                (skipped)
    PROPERTYDEFINITIONS ... END PROPERTYDEFINITIONS   (skipped)
    SITE <name>
      CLASS <class> ;  SIZE <w> BY <h> ;  SYMMETRY ... ;
    END <name>
    MACRO <name>
      CLASS <class> ;  SIZE <w> BY <h> ;
      ORIGIN ... ;  FOREIGN ... ;  SYMMETRY ... ;  SITE ... ;
      PIN <p> ... END <p>              (skipped)
      OBS ... END                      (skipped)
    END <name>
    END LIBRARY
    v}

    [#] starts a comment.  One extension comment is understood:
    [# tdflow.widths <macro> <w0> <w1> ...] gives a macro a distinct
    width per die (heterogeneous stacks); without it a macro is its
    SIZE x wide on every die.  SIZE values are integers in the same
    database units the paired DEF uses.

    Parse errors are typed ([Error "line %d: ..."]), never exceptions —
    the PR 2 error discipline shared by every reader in [lib/io]. *)

type site = {
  s_name : string;
  s_class : string;  (** e.g. ["CORE"] *)
  s_w : int;  (** SIZE x: the site width of dies placed on this site *)
  s_h : int;  (** SIZE y: the row height of dies placed on this site *)
}

type macro = {
  m_name : string;
  m_class : string;  (** ["CORE"] for cells, ["BLOCK"] for fixed macros *)
  m_w : int;  (** SIZE x *)
  m_h : int;  (** SIZE y *)
  m_widths : int array option;
      (** per-die widths from [# tdflow.widths]; [None] in a foreign LEF
          (the macro is then [m_w] wide on every die) *)
}

type t = { sites : site list; macros : macro list }

val read : string -> (t, string) result
(** Parse LEF-lite text; [Error "line %d: ..."] on malformed input. *)

val write : Format.formatter -> t -> unit
(** Canonical form: sites then macros, each as
    [SITE/MACRO name / CLASS / SIZE / END name], a [tdflow.widths]
    comment inside every macro that carries one.  Deterministic: equal
    values render byte-identically. *)

val to_string : t -> string

val load : string -> (t, string) result

val save : string -> t -> unit

val find_site : t -> string -> site option

val find_macro : t -> string -> macro option

val read_exn : string -> t
(** Raising variant of {!read} ([Failure] with the parser diagnostic). *)

val load_exn : string -> t
(** Raising variant of {!load}; the message is prefixed with the path. *)
