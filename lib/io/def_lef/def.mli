(** DEF-lite: the design half of the DEF/LEF interchange
    ({!Lef} is the library half).

    Reader/writer for the DEF subset real flows exchange between stages
    (the DATC RDF / OpenROAD open-flow contract), plus lossless
    converters to and from the internal design model so an imported
    open design runs through the whole pipeline — legalize, ECO, serve —
    and exports back out.  Grammar accepted:

    {v
    VERSION <v> ;  DIVIDERCHAR <s> ;  BUSBITCHARS <s> ;   (skipped)
    DESIGN <name> ;
    UNITS DISTANCE MICRONS <dbu> ;
    DIEAREA ( <x1> <y1> ) ( <x2> <y2> ) ;
    ROW <name> <site> <x> <y> <orient> DO <nx> BY 1 [STEP <sx> <sy>] ;
    COMPONENTS <n> ;
      - <comp> <macro> [+ PLACED ( <x> <y> ) <orient>
                        |+ FIXED ( <x> <y> ) <orient>
                        |+ UNPLACED] ;
    END COMPONENTS
    PINS <n> ;
      - <pin> + NET <net> [+ DIRECTION <dir>] [+ USE <use>]
        [+ PLACED|FIXED ( <x> <y> ) <orient>] [+ LAYER ...] ;
    END PINS
    NETS <n> ;
      - <net> ( <comp> <pin> | PIN <extpin> )* ;
    END NETS
    BLOCKAGES <n> ;
      - PLACEMENT RECT ( <x1> <y1> ) ( <x2> <y2> ) ;
    END BLOCKAGES
    END DESIGN
    v}

    A stacked design is a {e pair} (generally an n-tuple) of DEF files
    against one LEF, one file per die — how 3D flows split a design
    today.  Three extension comments keep the pairing and the data DEF
    cannot express, all ignored by ordinary DEF tools:

    - [# tdflow.die <i> of <n>] — which die this file describes (files
      otherwise pair in argument order);
    - [# tdflow.max_util <u>] — the die's utilization cap (§III-F);
    - [# tdflow.gp <comp> <x> <y> <z> [<weight>]] — the cell's
      global-placement seed, continuous die coordinate and optional
      movement weight; without it the placed position seeds the cell
      and [z] defaults to the file's die index.

    Subset limits (documented, typed errors otherwise): DIEAREA must be
    a two-point box, rows must all reference one LEF site per file,
    orientations other than [N] are parsed but not modeled, external
    PINS are parsed and re-emitted but carry no cells, and SPECIALNETS /
    TRACKS / VIAS / GCELLGRID are not in the subset. *)

type status = Placed | Fixed | Unplaced

type component = {
  c_name : string;
  c_macro : string;
  c_status : status;
  c_x : int;
  c_y : int;  (** meaningless when [Unplaced] *)
  c_orient : string;
}

type pin = {
  p_name : string;
  p_net : string;
  p_dir : string;  (** [""] when the DEF carries no DIRECTION *)
  p_use : string;  (** [""] when the DEF carries no USE *)
  p_status : status;
  p_x : int;
  p_y : int;
  p_orient : string;
}

(** One connection of a net: a component pin, or an external (top-level)
    pin from the PINS section. *)
type pin_ref = Comp of string * string | External of string

type net = { n_name : string; n_pins : pin_ref list }

type row = {
  r_name : string;
  r_site : string;
  r_x : int;
  r_y : int;
  r_orient : string;
  r_count : int;
  r_step : int;  (** 0 when the ROW carries no STEP *)
}

type t = {
  design : string;
  units : int;  (** UNITS DISTANCE MICRONS *)
  diearea : Tdf_geometry.Rect.t;
  rows : row list;
  components : component list;
  pins : pin list;
  nets : net list;
  blockages : Tdf_geometry.Rect.t list;  (** PLACEMENT blockages *)
  die : int option;  (** [# tdflow.die] index *)
  n_dies : int option;  (** the [of <n>] half of [# tdflow.die] *)
  max_util : float option;  (** [# tdflow.max_util] *)
  gp : (string * (int * int * float * float)) list;
      (** [# tdflow.gp]: name → (gp_x, gp_y, gp_z, weight) *)
}

val read : string -> (t, string) result
(** Parse one DEF file; [Error "line %d: ..."] on malformed input. *)

val write : Format.formatter -> t -> unit
(** Canonical form (deterministic: equal values render byte-identically):
    header comments, DESIGN/UNITS/DIEAREA, rows, COMPONENTS, the
    [tdflow.gp] block, then PINS / NETS / BLOCKAGES — each section
    emitted only when non-empty. *)

val to_string : t -> string

val load : string -> (t, string) result

val save : string -> t -> unit

val read_exn : string -> t

val load_exn : string -> t

(** {1 Converters}

    [to_design] and [of_design] are inverses on the canonical form:
    [of_design (to_design (of_design d p)) = of_design d p] byte-for-byte
    once rendered, which is the [export ∘ import ∘ export] determinism
    invariant CI enforces. *)

val to_design :
  lef:Lef.t ->
  t list ->
  (Tdf_netlist.Design.t * Tdf_netlist.Placement.t, string) result
(** Assemble one design from a die-ordered list of DEF files and their
    LEF.  Dies come from [tdflow.die] tags when present (all files or
    none), list order otherwise; cells take their widths from
    [tdflow.widths] or the macro SIZE; [FIXED] components and PLACEMENT
    blockages become macro blockages; nets merge across files by name;
    external-pin connections are dropped.  The returned placement holds
    every component's placed position on its die (unplaced components
    sit at their gp seed).  Typed errors for duplicate component names,
    unknown macros/sites, row-height mismatches and inconsistent
    pairing; the result is [Design.validate]d like every other reader. *)

val of_design :
  ?placement:Tdf_netlist.Placement.t ->
  Tdf_netlist.Design.t ->
  Lef.t * t list
(** Render a design (and a placement; default {!Tdf_netlist.Placement.initial})
    as one canonical LEF plus one DEF per die: sites [tdf_site_d<i>],
    cell macros [C<w0>_<w1>...] (one per distinct width vector, with
    [tdflow.widths]), blockage macros [B<w>_<h>] as [FIXED] components,
    nets in the die-0 file only.  Raises [Invalid_argument] on duplicate
    cell names (DEF components are name-keyed; see
    [Tdf_robust.Validate]'s [duplicate-cell-name] check and repair). *)
