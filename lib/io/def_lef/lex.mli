(** Shared tokenizer and parse-cursor for the DEF/LEF-lite readers.

    DEF and LEF are token-oriented, not line-oriented: statements end at
    [;], coordinates are wrapped in [( ... )], and both may spill across
    lines.  This lexer splits the input into whitespace-separated words
    (treating [(], [)] and [;] as self-delimiting tokens even when glued
    to a neighbor), tags every token with its 1-based source line for the
    ["line %d: ..."] diagnostics the rest of [lib/io] uses, and separates
    out the [# tdflow.*] extension comments that carry the data plain
    DEF/LEF cannot express (per-die widths, global-placement seeds, die
    pairing).  Ordinary [#] comments are dropped, so a real tool's DEF
    passes through untouched. *)

exception Parse of string
(** Internal to {!Lef.read} / {!Def.read}; both catch it and return
    [Error] with the carried diagnostic. *)

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Parse} with a formatted diagnostic. *)

type tok = { line : int; word : string }

val lex : string -> tok list * (int * string list) list
(** [lex text] is [(tokens, extensions)]: the token stream, plus one
    [(line, words)] entry per comment whose first word starts with
    ["tdflow."] (the ["#"] itself stripped, words split like tokens). *)

(** A mutable read position over the token stream. *)
type cursor

val cursor : tok list -> cursor

val peek : cursor -> tok option
(** [None] at end of input. *)

val next : cursor -> string -> tok
(** Consume one token; fails with ["unexpected end of file (in <what>)"]
    when exhausted. *)

val expect : cursor -> string -> unit
(** Consume one token and require it to equal the given word. *)

val skip_statement : cursor -> unit
(** Consume tokens up to and including the next [;] (for statements the
    subset recognizes but does not interpret). *)

val int_of : line:int -> string -> int
val float_of : line:int -> string -> float
