(* LEF-lite reader/writer; see the grammar in lef.mli.  The reader is a
   recursive descent over Lex's token stream: strict about the subset it
   claims (unknown keywords are typed errors, not silent skips) but
   tolerant of the statements real libraries carry around the footprint
   data (PIN/OBS blocks, SYMMETRY, UNITS...), which it skips by
   structure. *)

open Lex

type site = { s_name : string; s_class : string; s_w : int; s_h : int }

type macro = {
  m_name : string;
  m_class : string;
  m_w : int;
  m_h : int;
  m_widths : int array option;
}

type t = { sites : site list; macros : macro list }

(* SIZE <w> BY <h> ; *)
let parse_size cur =
  let w = next cur "SIZE" in
  expect cur "BY";
  let h = next cur "SIZE" in
  expect cur ";";
  (int_of ~line:w.line w.word, int_of ~line:h.line h.word)

(* Body shared by SITE and MACRO up to END <name>; returns (class, size).
   [skip_blocks] enables the MACRO-only nested PIN/OBS constructs. *)
let parse_body cur ~what ~name ~skip_blocks =
  let cls = ref "" and size = ref None in
  let rec loop () =
    let t = next cur what in
    match t.word with
    | "END" ->
      let e = next cur "END" in
      if e.word <> name then
        fail "line %d: END %s does not close %s %s" e.line e.word what name
    | "CLASS" ->
      let c = next cur "CLASS" in
      expect cur ";";
      cls := c.word;
      loop ()
    | "SIZE" ->
      size := Some (parse_size cur);
      loop ()
    | "SYMMETRY" | "ORIGIN" | "FOREIGN" | "SITE" ->
      skip_statement cur;
      loop ()
    | "PIN" when skip_blocks ->
      (* PIN <p> ... END <p> *)
      let p = next cur "PIN" in
      let rec skip_pin () =
        let t = next cur "PIN block" in
        if t.word = "END" then begin
          let e = next cur "END" in
          if e.word <> p.word then skip_pin ()
        end
        else skip_pin ()
      in
      skip_pin ();
      loop ()
    | "OBS" when skip_blocks ->
      let rec skip_obs () =
        let t = next cur "OBS block" in
        if t.word <> "END" then skip_obs ()
      in
      skip_obs ();
      loop ()
    | w -> fail "line %d: unrecognized %s statement %S" t.line what w
  in
  loop ();
  match !size with
  | Some (w, h) -> (!cls, w, h)
  | None -> fail "%s %s: missing SIZE" what name

let parse cur exts =
  let sites = ref [] and macros = ref [] in
  let widths_of = Hashtbl.create 8 in
  List.iter
    (fun (line, ws) ->
      match ws with
      | "tdflow.widths" :: name :: (_ :: _ as rest) ->
        Hashtbl.replace widths_of name
          (Array.of_list (List.map (int_of ~line) rest))
      | "tdflow.widths" :: _ ->
        fail "line %d: tdflow.widths needs a macro name and widths" line
      | kw :: _ -> fail "line %d: unknown extension comment %S" line kw
      | [] -> ())
    exts;
  let rec loop () =
    let t = next cur "library" in
    match t.word with
    | "END" ->
      expect cur "LIBRARY";
      (match peek cur with
      | Some t -> fail "line %d: trailing tokens after END LIBRARY" t.line
      | None -> ())
    | "VERSION" | "NAMESCASESENSITIVE" | "BUSBITCHARS" | "DIVIDERCHAR"
    | "MANUFACTURINGGRID" ->
      skip_statement cur;
      loop ()
    | "UNITS" ->
      let rec skip () =
        let t = next cur "UNITS block" in
        if t.word = "END" then expect cur "UNITS" else skip ()
      in
      skip ();
      loop ()
    | "PROPERTYDEFINITIONS" ->
      let rec skip () =
        let t = next cur "PROPERTYDEFINITIONS block" in
        if t.word = "END" then expect cur "PROPERTYDEFINITIONS" else skip ()
      in
      skip ();
      loop ()
    | "SITE" ->
      let name = (next cur "SITE").word in
      let s_class, s_w, s_h =
        parse_body cur ~what:"SITE" ~name ~skip_blocks:false
      in
      if s_w <= 0 || s_h <= 0 then
        fail "line %d: SITE %s has a non-positive SIZE" t.line name;
      sites := { s_name = name; s_class; s_w; s_h } :: !sites;
      loop ()
    | "MACRO" ->
      let name = (next cur "MACRO").word in
      let m_class, m_w, m_h =
        parse_body cur ~what:"MACRO" ~name ~skip_blocks:true
      in
      if m_w <= 0 || m_h <= 0 then
        fail "line %d: MACRO %s has a non-positive SIZE" t.line name;
      macros :=
        {
          m_name = name;
          m_class;
          m_w;
          m_h;
          m_widths = Hashtbl.find_opt widths_of name;
        }
        :: !macros;
      loop ()
    | w -> fail "line %d: unrecognized library statement %S" t.line w
  in
  loop ();
  (* A widths comment naming an absent macro is a typo worth catching. *)
  Hashtbl.iter
    (fun name _ ->
      if not (List.exists (fun m -> m.m_name = name) !macros) then
        fail "tdflow.widths names unknown macro %S" name)
    widths_of;
  List.iter
    (fun m ->
      match m.m_widths with
      | Some ws when Array.exists (fun w -> w <= 0) ws ->
        fail "macro %s: tdflow.widths must be positive" m.m_name
      | _ -> ())
    !macros;
  { sites = List.rev !sites; macros = List.rev !macros }

let read text =
  try
    let toks, exts = lex text in
    Ok (parse (cursor toks) exts)
  with Parse msg -> Error msg

let write fmt (t : t) =
  Format.fprintf fmt "VERSION 5.8 ;@.";
  List.iter
    (fun s ->
      Format.fprintf fmt "SITE %s@." s.s_name;
      Format.fprintf fmt "  CLASS %s ;@." s.s_class;
      Format.fprintf fmt "  SIZE %d BY %d ;@." s.s_w s.s_h;
      Format.fprintf fmt "END %s@." s.s_name)
    t.sites;
  List.iter
    (fun m ->
      Format.fprintf fmt "MACRO %s@." m.m_name;
      Format.fprintf fmt "  CLASS %s ;@." m.m_class;
      Format.fprintf fmt "  SIZE %d BY %d ;@." m.m_w m.m_h;
      (match m.m_widths with
      | Some ws ->
        Format.fprintf fmt "  # tdflow.widths %s" m.m_name;
        Array.iter (fun w -> Format.fprintf fmt " %d" w) ws;
        Format.fprintf fmt "@."
      | None -> ());
      Format.fprintf fmt "END %s@." m.m_name)
    t.macros;
  Format.fprintf fmt "END LIBRARY@."

let to_string t = Format.asprintf "%a" write t

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path = read (read_file path)

let save path t =
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  (try write fmt t
   with e ->
     close_out oc;
     raise e);
  Format.pp_print_flush fmt ();
  close_out oc

let find_site t name = List.find_opt (fun s -> s.s_name = name) t.sites

let find_macro t name = List.find_opt (fun m -> m.m_name = name) t.macros

let read_exn text =
  match read text with Ok v -> v | Error msg -> failwith ("Lef.read: " ^ msg)

let load_exn path =
  match load path with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
