exception Parse of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse s)) fmt

type tok = { line : int; word : string }

(* Make `(`, `)` and `;` self-delimiting so `(24 32)` lexes like
   `( 24 32 )`; fold tabs and carriage returns into plain spaces. *)
let expand line =
  let b = Buffer.create (String.length line + 8) in
  String.iter
    (fun c ->
      match c with
      | '(' | ')' | ';' ->
        Buffer.add_char b ' ';
        Buffer.add_char b c;
        Buffer.add_char b ' '
      | '\t' | '\r' -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c)
    line;
  Buffer.contents b

let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let is_ext w =
  String.length w >= 7 && String.sub w 0 7 = "tdflow."

let lex text =
  let toks = ref [] and exts = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let code, comment =
        match String.index_opt line '#' with
        | Some j ->
          ( String.sub line 0 j,
            String.sub line (j + 1) (String.length line - j - 1) )
        | None -> (line, "")
      in
      (match words (expand comment) with
      | kw :: _ as ws when is_ext kw -> exts := (lineno, ws) :: !exts
      | _ -> ());
      List.iter
        (fun w -> toks := { line = lineno; word = w } :: !toks)
        (words (expand code)))
    (String.split_on_char '\n' text);
  (List.rev !toks, List.rev !exts)

type cursor = { toks : tok array; mutable pos : int }

let cursor toks = { toks = Array.of_list toks; pos = 0 }

let peek cur =
  if cur.pos < Array.length cur.toks then Some cur.toks.(cur.pos) else None

let next cur what =
  match peek cur with
  | Some t ->
    cur.pos <- cur.pos + 1;
    t
  | None -> fail "unexpected end of file (in %s)" what

let expect cur w =
  let t = next cur (Printf.sprintf "%S" w) in
  if t.word <> w then fail "line %d: expected %S, got %S" t.line w t.word

let rec skip_statement cur =
  let t = next cur "statement" in
  if t.word <> ";" then skip_statement cur

let int_of ~line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected integer, got %S" line s

let float_of ~line s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> fail "line %d: expected number, got %S" line s
