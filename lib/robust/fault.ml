module Failpoint = Tdf_util.Failpoint
module Prng = Tdf_util.Prng
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design

let reset () = Failpoint.reset ()

let force_failure ?(times = 1) site = Failpoint.arm ~times site

let force_timeout ?(times = 1) site = Failpoint.arm ~times (site ^ ".timeout")

let fired = Failpoint.fired

type corruption =
  | Nan_gp_z of int
  | Out_of_window of int
  | Degenerate_net of int

let corruption_to_string = function
  | Nan_gp_z c -> Printf.sprintf "cell %d: gp_z set to NaN" c
  | Out_of_window c ->
    Printf.sprintf "cell %d: gp position thrown outside the die window" c
  | Degenerate_net n -> Printf.sprintf "net %d: pins reduced to one" n

let corrupt ~seed ?(n_faults = 3) (d : Design.t) =
  if Design.n_cells d = 0 then invalid_arg "Fault.corrupt: design has no cells";
  let rng = Prng.create seed in
  let cells = Array.copy d.Design.cells in
  let nets = Array.copy d.Design.nets in
  let applied = ref [] in
  let remake (c : Cell.t) ?(gp_x = c.Cell.gp_x) ?(gp_y = c.Cell.gp_y)
      ?(gp_z = c.Cell.gp_z) () =
    Cell.make ~id:c.Cell.id ~name:c.Cell.name ~weight:c.Cell.weight
      ~widths:c.Cell.widths ~gp_x ~gp_y ~gp_z ()
  in
  for _ = 1 to n_faults do
    let kind = if Array.length nets = 0 then Prng.int rng 2 else Prng.int rng 3 in
    match kind with
    | 0 ->
      let i = Prng.int rng (Array.length cells) in
      cells.(i) <- remake cells.(i) ~gp_z:Float.nan ();
      applied := Nan_gp_z i :: !applied
    | 1 ->
      let i = Prng.int rng (Array.length cells) in
      let far = 1_000_000_000 in
      cells.(i) <-
        remake cells.(i) ~gp_x:(-far) ~gp_y:(far * 2) ();
      applied := Out_of_window i :: !applied
    | _ ->
      let i = Prng.int rng (Array.length nets) in
      let n = nets.(i) in
      nets.(i) <-
        Net.make ~id:n.Net.id ~name:n.Net.name
          ~pins:[| n.Net.pins.(0) |] ();
      applied := Degenerate_net i :: !applied
  done;
  let d' =
    Design.make ~name:(d.Design.name ^ "+faults") ~dies:d.Design.dies ~cells
      ~macros:d.Design.macros ~nets ()
  in
  (d', List.rev !applied)
