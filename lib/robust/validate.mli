(** Preflight validation of a design, with an auto-repair mode.

    [design] returns a typed list of diagnostics instead of letting a
    malformed input die on a bare [assert] deep inside the grid builder or
    the flow solver.  Checks cover the failure classes seen in practice:

    - dies with no complete row, or whose rows are entirely covered by
      macros (zero placement capacity);
    - cells wider than every row segment of a die (and the fatal case:
      wider than every segment of {e every} die — unplaceable);
    - macros escaping their die outline, or overlapping each other;
    - degenerate nets (fewer than two distinct pins) and nets referencing
      out-of-range cells;
    - non-finite or out-of-window global-placement coordinates (NaN
      [gp_z], [gp_z] outside [0, n_dies - 1], [gp_x]/[gp_y] outside the
      die window);
    - duplicate cell names ([duplicate-cell-name], Warning): legal
      internally (ids key everything) but the name-keyed DEF interchange
      ([Tdf_def_lef]) cannot round-trip them.

    [repair] applies the conservative fix for every recoverable issue —
    clamp (positions, z, oversized widths), rename (duplicate cell
    names), or drop (degenerate nets, escaping macros) — and reports
    what it did.  Unrecoverable issues
    (e.g. every die has zero capacity) remain fatal after repair. *)

type severity = Warning | Fatal

type issue = {
  severity : severity;
  code : string;  (** stable slug, e.g. ["nan-gp-z"], ["unplaceable-cell"] *)
  subject : string;  (** entity, e.g. ["cell 12"], ["die 0"], ["net n3"] *)
  message : string;
}

val issue_to_string : issue -> string

val design : Tdf_netlist.Design.t -> issue list
(** All diagnostics, fatal first.  An empty list means the design is safe
    to hand to any legalizer in the repo. *)

val fatal : issue list -> issue list
(** The subset that must block a run (every [Fatal]). *)

val repair : Tdf_netlist.Design.t -> Tdf_netlist.Design.t * string list
(** [repair d] is a copy of [d] with every recoverable issue fixed, plus
    one description per applied repair.  Idempotent: repairing a clean
    design returns it unchanged with []. *)
