(** Fault injection for exercising the resilient pipeline.

    Two kinds of faults:

    - {e forced solver failures} — arm a named {!Tdf_util.Failpoint} site
      so the next solver call errors out ([force_failure]) or exhausts its
      budget ([force_timeout]).  Sites currently honored by the solvers:
      ["mcmf.solve"], ["mcmf.timeout"], ["flow3d.flow_pass"],
      ["flow3d.timeout"].
    - {e input corruption} — [corrupt] derives a broken copy of a design
      (NaN [gp_z], positions flung outside the die window, degenerate
      nets) from a seeded {!Tdf_util.Prng} stream, for preflight tests.

    Everything is deterministic; nothing here touches global randomness.
    Call [reset] between test cases. *)

val reset : unit -> unit
(** Disarm every failpoint and clear fire counts. *)

val force_failure : ?times:int -> string -> unit
(** [force_failure site] arms [site] so its next [times] (default 1)
    executions fail with a typed error. *)

val force_timeout : ?times:int -> string -> unit
(** [force_timeout site] arms the ["<site>.timeout"] failpoint so the
    solver's budget reads as exhausted at that site, yielding a
    best-effort partial result rather than an error. *)

val fired : string -> int
(** How many injected faults actually triggered at [site]. *)

type corruption =
  | Nan_gp_z of int  (** cell id whose [gp_z] became NaN *)
  | Out_of_window of int  (** cell id thrown far outside the die window *)
  | Degenerate_net of int  (** net id reduced to a single pin *)

val corruption_to_string : corruption -> string

val corrupt :
  seed:int ->
  ?n_faults:int ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Design.t * corruption list
(** [corrupt ~seed d] is a copy of [d] with [n_faults] (default 3)
    seeded corruptions applied, plus the list of what was broken.
    Requires a design with at least one cell. *)
