module Budget = Tdf_util.Budget
module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config
module Tetris = Tdf_baselines.Tetris
module Legality = Tdf_metrics.Legality

type path = Primary | Relaxed | Tetris_fallback

let path_name = function
  | Primary -> "primary"
  | Relaxed -> "relaxed-retry"
  | Tetris_fallback -> "tetris-fallback"

type options = {
  strict : bool;
  repair : bool;
  budget_ms : int option;
  fallback : bool;
}

let default_options =
  { strict = false; repair = false; budget_ms = None; fallback = true }

type report = {
  placement : Tdf_netlist.Placement.t;
  design : Tdf_netlist.Design.t;
  path : path;
  legal : bool;
  attempts : int;
  issues : Validate.issue list;
  repairs : string list;
  stats : Flow3d.stats option;
}

(* The retry configuration: coarser bins shrink the grid graph (fewer,
   larger supply bins are easier to resolve), more per-bin retries, and no
   post-optimization — favor finishing over polish. *)
let relax (cfg : Config.t) =
  {
    cfg with
    Config.bin_width_factor = cfg.Config.bin_width_factor *. 2.;
    max_retries = cfg.Config.max_retries * 2;
    post_opt = false;
  }

let preflight opts design =
  let issues = Validate.design design in
  let design, repairs, issues =
    if opts.repair && issues <> [] then begin
      let repaired, repairs = Validate.repair design in
      (repaired, repairs, Validate.design repaired)
    end
    else (design, [], issues)
  in
  let blocking =
    if opts.strict then issues else Validate.fatal issues
  in
  List.iter
    (fun (i : Validate.issue) ->
      if i.Validate.severity = Validate.Fatal then
        Tdf_telemetry.incr "validate.errors")
    issues;
  match blocking with
  | [] -> Ok (design, issues, repairs)
  | worst :: _ ->
    Error
      (Error.make Error.Preflight ~code:worst.Validate.code
         (Printf.sprintf "%s: %s%s" worst.Validate.subject
            worst.Validate.message
            (match List.length blocking with
            | 1 -> ""
            | n -> Printf.sprintf " (+%d more)" (n - 1))))

type attempt =
  | Legal of Tdf_netlist.Placement.t * Flow3d.stats option
  | Best_effort of Tdf_netlist.Placement.t * Flow3d.stats option
  | Failed of Error.t

let flow_attempt ?start ~budget_ms cfg design =
  let budget =
    match budget_ms with
    | None -> Budget.unlimited
    | Some ms -> Budget.create ~wall_ms:ms ()
  in
  match Flow3d.run ~cfg ~budget ?start design with
  | Error e -> Failed (Error.of_flow3d e)
  | Ok r ->
    if Legality.is_legal design r.Flow3d.placement then
      Legal (r.Flow3d.placement, Some r.Flow3d.stats)
    else Best_effort (r.Flow3d.placement, Some r.Flow3d.stats)

let run ?(opts = default_options) ?(cfg = Config.default) ?start design =
  Tdf_telemetry.span "robust.pipeline" @@ fun () ->
  match preflight opts design with
  | Error e -> Error e
  | Ok (design, issues, repairs) ->
    let finish path attempts = function
      | Legal (placement, stats) ->
        Ok
          { placement; design; path; legal = true; attempts; issues; repairs;
            stats }
      | Best_effort (placement, stats) ->
        Ok
          { placement; design; path; legal = false; attempts; issues; repairs;
            stats }
      | Failed e -> Error e
    in
    let primary = flow_attempt ?start ~budget_ms:opts.budget_ms cfg design in
    match primary with
    | Legal _ -> finish Primary 1 primary
    | (Best_effort _ | Failed _) when not opts.fallback ->
      finish Primary 1 primary
    | Best_effort _ | Failed _ ->
      Tdf_telemetry.incr "robust.retries";
      let retry =
        flow_attempt ?start ~budget_ms:opts.budget_ms (relax cfg) design
      in
      match retry with
      | Legal _ -> finish Relaxed 2 retry
      | Best_effort _ | Failed _ ->
        Tdf_telemetry.incr "robust.fallbacks";
        let placement =
          Tdf_telemetry.span "robust.tetris_fallback" @@ fun () ->
          Tetris.legalize design
        in
        if Legality.is_legal design placement then
          finish Tetris_fallback 3 (Legal (placement, None))
        else begin
          (* Even Tetris could not produce a legal result: fall back to the
             best effort we have, preferring the flow attempts (they at
             least minimize displacement). *)
          match (primary, retry) with
          | _, Best_effort _ -> finish Relaxed 3 retry
          | Best_effort _, _ -> finish Primary 3 primary
          | _ -> finish Tetris_fallback 3 (Best_effort (placement, None))
        end
