type phase =
  | Preflight
  | Grid_build
  | Flow
  | Place_row
  | Post_opt
  | Mcmf
  | Terminal
  | Parse

let phase_name = function
  | Preflight -> "preflight"
  | Grid_build -> "grid-build"
  | Flow -> "flow"
  | Place_row -> "place-row"
  | Post_opt -> "post-opt"
  | Mcmf -> "mcmf"
  | Terminal -> "terminal"
  | Parse -> "parse"

type t = {
  phase : phase;
  code : string;
  cell : int option;
  die : int option;
  net : int option;
  detail : string;
}

let make ?cell ?die ?net phase ~code detail =
  { phase; code; cell; die; net; detail }

let to_string e =
  let ctx =
    List.filter_map
      (fun (label, v) -> Option.map (Printf.sprintf "%s %d" label) v)
      [ ("cell", e.cell); ("die", e.die); ("net", e.net) ]
  in
  Printf.sprintf "%s/%s: %s%s" (phase_name e.phase) e.code e.detail
    (match ctx with [] -> "" | l -> " (" ^ String.concat ", " l ^ ")")

let of_mcmf (err : Tdf_flow.Mcmf.error) =
  match err with
  | Tdf_flow.Mcmf.Negative_cycle _ ->
    make Mcmf ~code:"negative-cycle" (Tdf_flow.Mcmf.error_to_string err)

let of_flow3d (err : Tdf_legalizer.Flow3d.error) =
  match err with
  | Tdf_legalizer.Flow3d.No_segment { cell; die } ->
    make Flow ~cell ~die ~code:"no-segment"
      "cell fits in no row segment of any die"
  | Tdf_legalizer.Flow3d.Injected { site } ->
    make Flow ~code:"injected" (Printf.sprintf "forced failure at %s" site)

let of_grid (err : Tdf_grid.Grid.place_error) =
  make Grid_build ~cell:err.Tdf_grid.Grid.pe_cell ~die:err.Tdf_grid.Grid.pe_die
    ~code:"no-segment"
    (Tdf_grid.Grid.place_error_to_string err)
