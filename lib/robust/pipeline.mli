(** The resilient legalization pipeline: preflight → 3D-Flow → retry with
    a relaxed configuration → Tetris baseline fallback.

    [run] never raises and, unless fallback is disabled and every stage
    fails, always produces a placement:

    + {b Preflight} — {!Validate.design}; fatal issues abort (or, with
      [repair] set, are auto-repaired first and only abort if still fatal
      afterwards).  With [strict] set, warnings abort too.
    + {b Primary} — {!Tdf_legalizer.Flow3d.run} under the wall-clock
      budget, with the caller's configuration.
    + {b Retry} — on error, an illegal result, or an exhausted budget:
      one more Flow3d run with a relaxed configuration (double-width
      bins, more per-bin retries, no post-optimization) and a fresh
      budget.  Counted in ["robust.retries"].
    + {b Fallback} — if the retry also fails: the Tetris greedy baseline,
      which cannot fail on a preflight-clean design.  Counted in
      ["robust.fallbacks"].

    Legality is re-checked with {!Tdf_metrics.Legality} after {e every}
    stage; the first legal result wins.  If no stage produced a legal
    placement, the best-effort placement of the latest stage that
    produced one is returned with [legal = false].  The report records
    which path produced the result. *)

type path =
  | Primary  (** first Flow3d run succeeded *)
  | Relaxed  (** the relaxed-configuration retry succeeded *)
  | Tetris_fallback  (** degraded to the greedy baseline *)

val path_name : path -> string

type options = {
  strict : bool;  (** treat preflight warnings as fatal *)
  repair : bool;  (** auto-repair recoverable preflight issues *)
  budget_ms : int option;  (** wall-clock budget per legalization attempt *)
  fallback : bool;  (** allow retry + Tetris degradation (default on) *)
}

val default_options : options
(** [{ strict = false; repair = false; budget_ms = None; fallback = true }] *)

type report = {
  placement : Tdf_netlist.Placement.t;
  design : Tdf_netlist.Design.t;
      (** the design actually legalized (repaired copy when [repair]
          applied fixes; otherwise the input) *)
  path : path;
  legal : bool;
  attempts : int;  (** legalization attempts made (1–3) *)
  issues : Validate.issue list;  (** preflight diagnostics *)
  repairs : string list;  (** repairs applied (empty unless [repair]) *)
  stats : Tdf_legalizer.Flow3d.stats option;
      (** stats of the winning Flow3d run; [None] for the Tetris path *)
}

val run :
  ?opts:options ->
  ?cfg:Tdf_legalizer.Config.t ->
  ?start:Tdf_netlist.Placement.t ->
  Tdf_netlist.Design.t ->
  (report, Error.t) result
(** [start] seeds the Flow3d attempts with an arbitrary placement instead
    of the design's global placement (the incremental engine's full-rerun
    fallback passes its ECO base placement here); the Tetris fallback
    always starts from scratch.  Telemetry: increments ["validate.errors"]
    per fatal preflight issue, ["robust.retries"] per relaxed retry,
    ["robust.fallbacks"] per Tetris degradation. *)
