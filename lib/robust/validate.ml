module Rect = Tdf_geometry.Rect
module Interval = Tdf_geometry.Interval
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Blockage = Tdf_netlist.Blockage
module Design = Tdf_netlist.Design

type severity = Warning | Fatal

type issue = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
}

let issue_to_string i =
  Printf.sprintf "%s: [%s] %s: %s"
    (match i.severity with Warning -> "warning" | Fatal -> "error")
    i.code i.subject i.message

let fatal issues = List.filter (fun i -> i.severity = Fatal) issues

(* Widest free segment of a die across all rows (0 when the die has no
   usable placement area at all). *)
let max_segment_width design d =
  let die = Design.die design d in
  let best = ref 0 in
  for r = 0 to Die.num_rows die - 1 do
    List.iter
      (fun (iv : Interval.t) -> best := max !best (Interval.length iv))
      (Tdf_grid.Grid.segments_of_row design d r)
  done;
  !best

(* Bounding window of every die outline: the legal universe for gp_x/gp_y. *)
let window design =
  Array.fold_left
    (fun (acc : Rect.t option) (die : Die.t) ->
      let o = die.Die.outline in
      match acc with
      | None -> Some o
      | Some w ->
        let x = min w.Rect.x o.Rect.x and y = min w.Rect.y o.Rect.y in
        let xh = max (w.Rect.x + w.Rect.w) (o.Rect.x + o.Rect.w) in
        let yh = max (w.Rect.y + w.Rect.h) (o.Rect.y + o.Rect.h) in
        Some (Rect.make ~x ~y ~w:(xh - x) ~h:(yh - y)))
    None design.Design.dies

let distinct_pins (n : Net.t) =
  let seen = Hashtbl.create 8 in
  Array.iter (fun p -> Hashtbl.replace seen p ()) n.Net.pins;
  Hashtbl.length seen

let design (d : Design.t) =
  let issues = ref [] in
  let add severity code subject fmt =
    Format.kasprintf
      (fun message -> issues := { severity; code; subject; message } :: !issues)
      fmt
  in
  let nd = Design.n_dies d in
  let max_seg = Array.init nd (fun i -> max_segment_width d i) in
  (* Dies: rows and capacity. *)
  Array.iteri
    (fun i (die : Die.t) ->
      let subject = Printf.sprintf "die %d" i in
      if Die.num_rows die = 0 then
        add Fatal "no-rows" subject
          "outline height %d holds no complete row of height %d"
          die.Die.outline.Rect.h die.Die.row_height
      else if max_seg.(i) = 0 then
        add
          (if Array.exists (fun w -> w > 0) max_seg then Warning else Fatal)
          "zero-capacity-die" subject
          "every row is fully covered by macros; no cell can be placed here")
    d.Design.dies;
  if nd > 0 && Array.for_all (fun w -> w = 0) max_seg then
    add Fatal "zero-capacity-design" "design"
      "no die has any free row segment; the design cannot host a single cell";
  (* Macros. *)
  Array.iter
    (fun (m : Blockage.t) ->
      let subject = Printf.sprintf "macro %s" m.Blockage.name in
      if m.Blockage.die < 0 || m.Blockage.die >= nd then
        add Fatal "macro-bad-die" subject "placed on invalid die %d"
          m.Blockage.die
      else begin
        let outline = (Design.die d m.Blockage.die).Die.outline in
        if not (Rect.contains_rect outline m.Blockage.rect) then
          add Fatal "macro-outside" subject "escapes the outline of die %d"
            m.Blockage.die
      end)
    d.Design.macros;
  Array.iter
    (fun (m1 : Blockage.t) ->
      Array.iter
        (fun (m2 : Blockage.t) ->
          if
            m1.Blockage.id < m2.Blockage.id
            && m1.Blockage.die = m2.Blockage.die
            && Rect.overlaps m1.Blockage.rect m2.Blockage.rect
          then
            add Fatal "macro-overlap"
              (Printf.sprintf "macro %s" m1.Blockage.name)
              "overlaps macro %s on die %d" m2.Blockage.name m1.Blockage.die)
        d.Design.macros)
    d.Design.macros;
  (* Cells: widths vs segments, gp coordinates. *)
  let win = window d in
  Array.iter
    (fun (c : Cell.t) ->
      let subject = Printf.sprintf "cell %d" c.Cell.id in
      if Array.length c.Cell.widths <> nd then
        add Fatal "width-arity" subject "%d widths for %d dies"
          (Array.length c.Cell.widths) nd
      else begin
        let fits_somewhere =
          Array.exists
            (fun dd -> max_seg.(dd) > 0 && Cell.width_on c dd <= max_seg.(dd))
            (Array.init nd (fun i -> i))
        in
        if not fits_somewhere then
          add Fatal "unplaceable-cell" subject
            "wider than every row segment of every die (widths %s)"
            (String.concat "/"
               (Array.to_list (Array.map string_of_int c.Cell.widths)))
        else begin
          let home = Cell.nearest_die c ~n_dies:nd in
          if Cell.width_on c home > max_seg.(home) then
            add Warning "wide-cell" subject
              "width %d exceeds the widest segment (%d) of its nearest die %d"
              (Cell.width_on c home) max_seg.(home) home
        end
      end;
      let z_hi = float_of_int (max 0 (nd - 1)) in
      if Float.is_nan c.Cell.gp_z then
        add Fatal "nan-gp-z" subject "gp_z is NaN; the cell has no home die"
      else if c.Cell.gp_z < 0. || c.Cell.gp_z > z_hi then
        add Warning "gp-z-window" subject "gp_z %.3f outside [0, %g]"
          c.Cell.gp_z z_hi;
      (match win with
      | Some w ->
        if
          c.Cell.gp_x < w.Rect.x
          || c.Cell.gp_x > w.Rect.x + w.Rect.w
          || c.Cell.gp_y < w.Rect.y
          || c.Cell.gp_y > w.Rect.y + w.Rect.h
        then
          add Warning "gp-out-of-window" subject
            "gp position (%d, %d) outside the die window" c.Cell.gp_x
            c.Cell.gp_y
      | None -> ()))
    d.Design.cells;
  (* Duplicate cell names: harmless internally (ids key everything) but
     the name-keyed DEF interchange cannot round-trip them. *)
  let names = Hashtbl.create (max 16 (Design.n_cells d)) in
  Array.iter
    (fun (c : Cell.t) ->
      match Hashtbl.find_opt names c.Cell.name with
      | Some first ->
        add Warning "duplicate-cell-name"
          (Printf.sprintf "cell %d" c.Cell.id)
          "name %S is already used by cell %d; DEF export would conflate them"
          c.Cell.name first
      | None -> Hashtbl.replace names c.Cell.name c.Cell.id)
    d.Design.cells;
  (* Nets. *)
  Array.iter
    (fun (n : Net.t) ->
      let subject = Printf.sprintf "net %s" n.Net.name in
      let bad_pin =
        Array.exists (fun p -> p < 0 || p >= Design.n_cells d) n.Net.pins
      in
      if bad_pin then
        add Fatal "net-bad-pin" subject "references a cell outside the design"
      else if distinct_pins n < 2 then
        add Warning "degenerate-net" subject
          "%d distinct pin(s); contributes nothing to wirelength"
          (distinct_pins n))
    d.Design.nets;
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Fatal -> 0 | Warning -> 1)
        (match b.severity with Fatal -> 0 | Warning -> 1))
    (List.rev !issues)

let clamp v lo hi = max lo (min hi v)

let repair (d : Design.t) =
  let repairs = ref [] in
  let note fmt = Format.kasprintf (fun s -> repairs := s :: !repairs) fmt in
  let nd = Design.n_dies d in
  (* Drop macros that escape their die (or sit on a bad die); keep the
     overlap pair's first macro.  Dropping is conservative: the area they
     claimed becomes free space. *)
  let macros =
    d.Design.macros |> Array.to_list
    |> List.filter (fun (m : Blockage.t) ->
           let ok =
             m.Blockage.die >= 0 && m.Blockage.die < nd
             && Rect.contains_rect
                  (Design.die d m.Blockage.die).Die.outline m.Blockage.rect
           in
           if not ok then
             note "dropped macro %s (outside its die)" m.Blockage.name;
           ok)
  in
  let macros =
    let kept = ref [] in
    List.iter
      (fun (m : Blockage.t) ->
        let clashes =
          List.exists
            (fun (k : Blockage.t) ->
              k.Blockage.die = m.Blockage.die
              && Rect.overlaps k.Blockage.rect m.Blockage.rect)
            !kept
        in
        if clashes then
          note "dropped macro %s (overlaps an earlier macro)" m.Blockage.name
        else kept := m :: !kept)
      macros;
    Array.of_list (List.rev !kept)
  in
  let d_nomacro =
    Design.make ~name:d.Design.name ~dies:d.Design.dies ~cells:d.Design.cells
      ~macros ~nets:d.Design.nets ()
  in
  let max_seg = Array.init nd (fun i -> max_segment_width d_nomacro i) in
  let win = window d in
  (* Cells: clamp NaN/out-of-range z, out-of-window positions, oversized
     widths. *)
  let cells =
    Array.map
      (fun (c : Cell.t) ->
        let z_hi = float_of_int (max 0 (nd - 1)) in
        let gp_z =
          if Float.is_nan c.Cell.gp_z then begin
            note "cell %d: gp_z NaN reset to the stack midpoint" c.Cell.id;
            z_hi /. 2.
          end
          else if c.Cell.gp_z < 0. || c.Cell.gp_z > z_hi then begin
            note "cell %d: gp_z %.3f clamped into [0, %g]" c.Cell.id
              c.Cell.gp_z z_hi;
            clamp c.Cell.gp_z 0. z_hi
          end
          else c.Cell.gp_z
        in
        let gp_x, gp_y =
          match win with
          | Some w ->
            let x = clamp c.Cell.gp_x w.Rect.x (w.Rect.x + w.Rect.w) in
            let y = clamp c.Cell.gp_y w.Rect.y (w.Rect.y + w.Rect.h) in
            if x <> c.Cell.gp_x || y <> c.Cell.gp_y then
              note "cell %d: gp position (%d, %d) clamped to (%d, %d)"
                c.Cell.id c.Cell.gp_x c.Cell.gp_y x y;
            (x, y)
          | None -> (c.Cell.gp_x, c.Cell.gp_y)
        in
        let widths =
          if
            Array.length c.Cell.widths = nd
            && not
                 (Array.exists
                    (fun dd ->
                      max_seg.(dd) > 0 && Cell.width_on c dd <= max_seg.(dd))
                    (Array.init nd (fun i -> i)))
          then begin
            let widths =
              Array.mapi
                (fun dd w ->
                  if max_seg.(dd) > 0 then min w max_seg.(dd) else w)
                c.Cell.widths
            in
            note "cell %d: widths clamped to the widest segment per die"
              c.Cell.id;
            widths
          end
          else c.Cell.widths
        in
        if
          gp_z == c.Cell.gp_z && gp_x = c.Cell.gp_x && gp_y = c.Cell.gp_y
          && widths == c.Cell.widths
        then c
        else
          Cell.make ~id:c.Cell.id ~name:c.Cell.name ~weight:c.Cell.weight
            ~widths ~gp_x ~gp_y ~gp_z ())
      d.Design.cells
  in
  (* Rename duplicate cell names: the DEF interchange keys components by
     name, so later holders get a fresh "<name>_dup<id>" while the first
     keeps the original. *)
  let names = Hashtbl.create (max 16 (Array.length cells)) in
  let cells =
    Array.map
      (fun (c : Cell.t) ->
        if Hashtbl.mem names c.Cell.name then begin
          let rec pick k =
            let cand = Printf.sprintf "%s_dup%d" c.Cell.name k in
            if Hashtbl.mem names cand then pick (k + 1) else cand
          in
          let fresh = pick c.Cell.id in
          note "cell %d: renamed duplicate name %S to %S" c.Cell.id
            c.Cell.name fresh;
          Hashtbl.replace names fresh c.Cell.id;
          Cell.make ~id:c.Cell.id ~name:fresh ~weight:c.Cell.weight
            ~widths:c.Cell.widths ~gp_x:c.Cell.gp_x ~gp_y:c.Cell.gp_y
            ~gp_z:c.Cell.gp_z ()
        end
        else begin
          Hashtbl.replace names c.Cell.name c.Cell.id;
          c
        end)
      cells
  in
  (* Nets: drop degenerate and dangling ones, renumbering densely (net ids
     index the nets array throughout the repo). *)
  let n_cells = Array.length cells in
  let kept_nets =
    d.Design.nets |> Array.to_list
    |> List.filter (fun (n : Net.t) ->
           let bad =
             Array.exists (fun p -> p < 0 || p >= n_cells) n.Net.pins
             || distinct_pins n < 2
           in
           if bad then note "dropped net %s (degenerate or dangling)" n.Net.name;
           not bad)
  in
  let nets =
    kept_nets
    |> List.mapi (fun id (n : Net.t) ->
           if n.Net.id = id then n
           else Net.make ~id ~name:n.Net.name ~pins:n.Net.pins ())
    |> Array.of_list
  in
  let repaired =
    if !repairs = [] then d
    else Design.make ~name:d.Design.name ~dies:d.Design.dies ~cells ~macros ~nets ()
  in
  (repaired, List.rev !repairs)
