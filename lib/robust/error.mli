(** Structured errors of the resilient legalization pipeline.

    Every fatal condition that used to escape as a bare
    [assert]/[invalid_arg]/[failwith] deep inside the stack is reported as
    a value of this one type: which phase failed, which entity (cell, die,
    bin, net) was involved, and a human-readable detail string.  The
    pipeline logs these, the CLI prints them as one-line diagnostics, and
    the fallback chain dispatches on them — nothing crashes mid-flow. *)

type phase =
  | Preflight  (** design validation before any solver runs *)
  | Grid_build  (** bin-grid construction / initial assignment *)
  | Flow  (** the 3D-Flow supply-resolution phase *)
  | Place_row  (** per-segment Abacus PlaceRow *)
  | Post_opt  (** cycle-canceling post-optimization *)
  | Mcmf  (** the generic min-cost-flow substrate *)
  | Terminal  (** bonding-terminal assignment *)
  | Parse  (** input file parsing *)

val phase_name : phase -> string

type t = {
  phase : phase;
  code : string;  (** stable machine-readable slug, e.g. ["negative-cycle"] *)
  cell : int option;
  die : int option;
  net : int option;
  detail : string;
}

val make :
  ?cell:int -> ?die:int -> ?net:int -> phase -> code:string -> string -> t

val to_string : t -> string
(** One line: ["<phase>/<code>: <detail> (cell 12, die 0)"]. *)

val of_mcmf : Tdf_flow.Mcmf.error -> t

val of_flow3d : Tdf_legalizer.Flow3d.error -> t

val of_grid : Tdf_grid.Grid.place_error -> t
