let find_row (r : Runner.case_result) m =
  List.find (fun (row : Runner.row) -> row.Runner.method_ = m) r.Runner.rows

let methods_of results =
  match results with
  | [] -> []
  | r :: _ -> List.map (fun (row : Runner.row) -> row.Runner.method_) r.Runner.rows

let normalized_row results =
  let methods = methods_of results in
  let ratios metric m =
    results
    |> List.map (fun r ->
           let ours = find_row r Runner.Ours and it = find_row r m in
           let a = metric it and b = metric ours in
           if b <= 0. then 1. else a /. b)
    |> Array.of_list
  in
  List.map
    (fun m ->
      ( m,
        Tdf_util.Stats.geomean (ratios (fun (r : Runner.row) -> r.Runner.avg_disp) m),
        Tdf_util.Stats.geomean (ratios (fun (r : Runner.row) -> r.Runner.max_disp) m),
        Tdf_util.Stats.geomean (ratios (fun (r : Runner.row) -> Float.max 1e-4 r.Runner.runtime_s) m) ))
    methods

let table2 ?(scale = 1.0) () =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "TABLE II — benchmark statistics (generation targets%s)\n"
    (if scale < 1.0 then Printf.sprintf "; generated at scale %.3g" scale else "");
  out "%-12s %-9s %8s %7s %8s %5s %5s %10s\n" "suite" "case" "#Cells" "#Macros"
    "#Nets" "hr+" "hr-" "gen#Cells";
  List.iter
    (fun (s : Tdf_benchgen.Spec.t) ->
      let gen = Tdf_benchgen.Spec.scaled s ~scale in
      out "%-12s %-9s %8d %7d %8d %5d %5d %10d\n"
        (Tdf_benchgen.Spec.suite_name s.Tdf_benchgen.Spec.suite)
        s.Tdf_benchgen.Spec.case s.Tdf_benchgen.Spec.n_cells
        s.Tdf_benchgen.Spec.n_macros s.Tdf_benchgen.Spec.n_nets
        s.Tdf_benchgen.Spec.hr_top s.Tdf_benchgen.Spec.hr_bottom
        gen.Tdf_benchgen.Spec.n_cells)
    (Tdf_benchgen.Spec.iccad2022 @ Tdf_benchgen.Spec.iccad2023);
  Buffer.contents buf

let comparison ~title results =
  let methods = methods_of results in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "%s\n" title;
  out "%-9s" "case";
  List.iter
    (fun m -> out " | %-24s" (Runner.method_name m))
    methods;
  out "\n%-9s" "";
  List.iter (fun _ -> out " | %8s %8s %6s" "Avg.D" "Max.D" "RT(s)") methods;
  out "\n";
  List.iter
    (fun (r : Runner.case_result) ->
      out "%-9s" r.Runner.case;
      List.iter
        (fun m ->
          let row = find_row r m in
          out " | %8.3f %8.2f %6.2f%s%s" row.Runner.avg_disp row.Runner.max_disp
            row.Runner.runtime_s
            (if row.Runner.legal then "" else "!")
            (if row.Runner.via_fallback then "^" else ""))
        methods;
      out "\n")
    results;
  out "%-9s" "Average";
  List.iter
    (fun (_, a, mx, rt) -> out " | %8.3f %8.2f %6.2f" a mx rt)
    (normalized_row results);
  out
    "\n(Average row: geometric-mean ratio vs Ours; '!' marks an illegal \
     result; '^' a fallback-produced one)\n";
  Buffer.contents buf

let ablation results =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "TABLE V — ablation on die-to-die cell movement (ICCAD 2023)\n";
  out "%-9s | %8s %8s | %8s %8s %7s\n" "case" "w/o.Avg" "w/o.Max" "Avg.D" "Max.D" "#Move";
  List.iter
    (fun (r : Runner.case_result) ->
      let ours = find_row r Runner.Ours in
      let nod2d = find_row r Runner.Ours_no_d2d in
      out "%-9s | %8.3f %8.2f | %8.3f %8.2f %7d\n" r.Runner.case
        nod2d.Runner.avg_disp nod2d.Runner.max_disp ours.Runner.avg_disp
        ours.Runner.max_disp ours.Runner.d2d_moves)
    results;
  let ratios metric =
    results
    |> List.map (fun r ->
           let ours = metric (find_row r Runner.Ours) in
           let nod2d = metric (find_row r Runner.Ours_no_d2d) in
           if ours <= 0. then 1. else nod2d /. ours)
    |> Array.of_list |> Tdf_util.Stats.geomean
  in
  out "%-9s | %8.3f %8.2f | %8.3f %8.2f\n" "Average"
    (ratios (fun (r : Runner.row) -> r.Runner.avg_disp))
    (ratios (fun (r : Runner.row) -> r.Runner.max_disp))
    1.0 1.0;
  Buffer.contents buf
