(** Runs the paper's four legalizers (plus the D2D ablation) on generated
    benchmark cases and collects the metrics reported in §IV. *)

type method_ = Tetris | Abacus | Bonn | Ours | Ours_no_d2d

val method_name : method_ -> string

val all_methods : method_ list
(** The Table III/IV column order: Tetris, Abacus, Bonn, Ours. *)

type row = {
  method_ : method_;
  avg_disp : float;  (** normalized average displacement *)
  max_disp : float;  (** normalized maximum displacement *)
  runtime_s : float;
  hpwl_incr_pct : float;
  d2d_moves : int;  (** cells on a different die than initially (0 for 2D) *)
  legal : bool;
  via_fallback : bool;
      (** the placement came from the resilience chain (relaxed retry or
          Tetris degradation), not the primary run; tagged ["^"] in the
          emitted tables.  Always [false] for the baselines. *)
}

type case_result = {
  case : string;
  n_cells : int;
  rows : row list;
}

val legalize_with : method_ -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t
(** Run one legalizer (no metrics). *)

val run_case :
  ?methods:method_ list -> case:string -> Tdf_netlist.Design.t -> case_result
(** Measure each method on a design.  Runtime is the legalization call
    only (generation excluded — the C++ baseline's RT includes file IO;
    EXPERIMENTS.md discusses the comparison). *)

val run_suite :
  ?methods:method_ list ->
  ?scale:float ->
  Tdf_benchgen.Spec.suite ->
  case_result list
(** Generate every case of a suite at [scale] (default 0.05) and measure. *)
