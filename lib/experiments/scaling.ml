module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config

type point = {
  sc_scale : float;
  sc_cells : int;
  sc_bins : int;
  tetris_s : float;
  abacus_s : float;
  bonn_s : float;
  bonn_pops_per_aug : float;
  ours_s : float;
  ours_pops_per_aug : float;
}

let run ?(scales = [ 0.02; 0.05; 0.1; 0.2 ]) suite case =
  List.map
    (fun scale ->
      Tdf_telemetry.span "scaling.point" @@ fun () ->
      let design = Tdf_benchgen.Gen.generate_by_name ~scale suite case in
      let bins =
        Tdf_grid.Grid.n_bins
          (Tdf_grid.Grid.build design
             ~bin_width:(Flow3d.flow_bin_width design ~factor:10.))
      in
      let _, tetris_s = Tdf_util.Timer.time (fun () -> Tdf_baselines.Tetris.legalize design) in
      let _, abacus_s = Tdf_util.Timer.time (fun () -> Tdf_baselines.Abacus.legalize design) in
      let bonn, bonn_s =
        Tdf_util.Timer.time (fun () ->
            Flow3d.legalize ~cfg:Config.bonn_emulation design)
      in
      let ours, ours_s = Tdf_util.Timer.time (fun () -> Flow3d.legalize design) in
      (* search effort per augmentation: the fair comparison between the
         whole-graph Dijkstra and the (1+α)-bounded search *)
      let per_aug (r : Flow3d.result) =
        float_of_int r.Flow3d.stats.Flow3d.expansions
        /. float_of_int (max 1 r.Flow3d.stats.Flow3d.augmentations)
      in
      {
        sc_scale = scale;
        sc_cells = Tdf_netlist.Design.n_cells design;
        sc_bins = bins;
        tetris_s;
        abacus_s;
        bonn_s;
        bonn_pops_per_aug = per_aug bonn;
        ours_s;
        ours_pops_per_aug = per_aug ours;
      })
    scales

let render points =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "Scaling study: runtime and search effort vs case size\n";
  out "%7s %8s %7s | %7s %7s | %8s %12s | %8s %12s\n" "scale" "cells" "bins"
    "tetris" "abacus" "bonn(s)" "pops/aug" "ours(s)" "pops/aug";
  List.iter
    (fun p ->
      out "%7.3f %8d %7d | %7.2f %7.2f | %8.2f %12.0f | %8.2f %12.0f\n"
        p.sc_scale p.sc_cells p.sc_bins p.tetris_s p.abacus_s p.bonn_s
        p.bonn_pops_per_aug p.ours_s p.ours_pops_per_aug)
    points;
  out
    "(In this shared-engine reproduction both searches stay local: the relay \
     constraint\n (a bin can only pass on what it holds or absorbs) bounds \
     reachability, so the\n whole-graph Dijkstra blow-up the paper reports \
     for BonnPlaceLegal at full contest\n sizes does not materialize at \
     laptop scale — see EXPERIMENTS.md.)\n";
  Buffer.contents buf
