module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config

type method_ = Tetris | Abacus | Bonn | Ours | Ours_no_d2d

let method_name = function
  | Tetris -> "Tetris"
  | Abacus -> "Abacus"
  | Bonn -> "BonnPL"
  | Ours -> "Ours"
  | Ours_no_d2d -> "w/o D2D"

let all_methods = [ Tetris; Abacus; Bonn; Ours ]

type row = {
  method_ : method_;
  avg_disp : float;
  max_disp : float;
  runtime_s : float;
  hpwl_incr_pct : float;
  d2d_moves : int;
  legal : bool;
  via_fallback : bool;
}

type case_result = {
  case : string;
  n_cells : int;
  rows : row list;
}

let count_d2d design (p : Placement.t) =
  let nd = Design.n_dies design in
  let count = ref 0 in
  for c = 0 to Placement.n_cells p - 1 do
    let cell = Design.cell design c in
    if p.Placement.die.(c) <> Tdf_netlist.Cell.nearest_die cell ~n_dies:nd then
      incr count
  done;
  !count

(* [Ours] runs through the resilient pipeline: a failed or illegal flow run
   degrades (relaxed retry, then Tetris) instead of aborting the whole
   suite; the returned flag records whether a fallback path produced the
   placement. *)
let legalize_tracked m design =
  match m with
  | Tetris -> (Tdf_baselines.Tetris.legalize design, false)
  | Abacus -> (Tdf_baselines.Abacus.legalize design, false)
  | Bonn -> (Tdf_baselines.Bonn.legalize design, false)
  | Ours -> (
    match Tdf_robust.Pipeline.run design with
    | Ok r ->
      ( r.Tdf_robust.Pipeline.placement,
        r.Tdf_robust.Pipeline.path <> Tdf_robust.Pipeline.Primary )
    | Error e -> invalid_arg (Tdf_robust.Error.to_string e))
  | Ours_no_d2d ->
    (Flow3d.legalize ~cfg:Config.no_d2d design).Flow3d.placement, false

let legalize_with m design = fst (legalize_tracked m design)

let measure m design =
  let name = method_name m in
  let (p, via_fallback), runtime_s =
    Tdf_util.Timer.time (fun () ->
        Tdf_telemetry.span ("runner." ^ name) (fun () ->
            legalize_tracked m design))
  in
  Tdf_telemetry.observe ("runner.runtime_s." ^ name) runtime_s;
  let s = Tdf_metrics.Displacement.summary design p in
  {
    method_ = m;
    avg_disp = s.Tdf_metrics.Displacement.avg_norm;
    max_disp = s.Tdf_metrics.Displacement.max_norm;
    runtime_s;
    hpwl_incr_pct = Tdf_metrics.Hpwl.increase_pct design p;
    d2d_moves = count_d2d design p;
    legal = Tdf_metrics.Legality.is_legal design p;
    via_fallback;
  }

let run_case ?(methods = all_methods) ~case design =
  {
    case;
    n_cells = Design.n_cells design;
    rows = List.map (fun m -> measure m design) methods;
  }

let run_suite ?(methods = all_methods) ?(scale = 0.05) suite =
  let specs =
    match suite with
    | Tdf_benchgen.Spec.Iccad2022 -> Tdf_benchgen.Spec.iccad2022
    | Tdf_benchgen.Spec.Iccad2023 -> Tdf_benchgen.Spec.iccad2023
  in
  List.map
    (fun spec ->
      let design = Tdf_benchgen.Gen.generate ~scale spec in
      run_case ~methods ~case:spec.Tdf_benchgen.Spec.case design)
    specs
