module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config

type method_ = Tetris | Abacus | Bonn | Ours | Ours_no_d2d

let method_name = function
  | Tetris -> "Tetris"
  | Abacus -> "Abacus"
  | Bonn -> "BonnPL"
  | Ours -> "Ours"
  | Ours_no_d2d -> "w/o D2D"

let all_methods = [ Tetris; Abacus; Bonn; Ours ]

type row = {
  method_ : method_;
  avg_disp : float;
  max_disp : float;
  runtime_s : float;
  hpwl_incr_pct : float;
  d2d_moves : int;
  legal : bool;
  via_fallback : bool;
}

type case_result = {
  case : string;
  n_cells : int;
  rows : row list;
}

let count_d2d design (p : Placement.t) =
  let nd = Design.n_dies design in
  let count = ref 0 in
  for c = 0 to Placement.n_cells p - 1 do
    let cell = Design.cell design c in
    if p.Placement.die.(c) <> Tdf_netlist.Cell.nearest_die cell ~n_dies:nd then
      incr count
  done;
  !count

(* [Ours] runs through the resilient pipeline: a failed or illegal flow run
   degrades (relaxed retry, then Tetris) instead of aborting the whole
   suite; the returned flag records whether a fallback path produced the
   placement. *)
let legalize_tracked m design =
  match m with
  | Tetris -> (Tdf_baselines.Tetris.legalize design, false)
  | Abacus -> (Tdf_baselines.Abacus.legalize design, false)
  | Bonn -> (Tdf_baselines.Bonn.legalize design, false)
  | Ours -> (
    match Tdf_robust.Pipeline.run design with
    | Ok r ->
      ( r.Tdf_robust.Pipeline.placement,
        r.Tdf_robust.Pipeline.path <> Tdf_robust.Pipeline.Primary )
    | Error e -> invalid_arg (Tdf_robust.Error.to_string e))
  | Ours_no_d2d ->
    (Flow3d.legalize ~cfg:Config.no_d2d design).Flow3d.placement, false

let legalize_with m design = fst (legalize_tracked m design)

let measure m design =
  let name = method_name m in
  let (p, via_fallback), runtime_s =
    Tdf_util.Timer.time (fun () ->
        Tdf_telemetry.span ("runner." ^ name) (fun () ->
            legalize_tracked m design))
  in
  Tdf_telemetry.observe ("runner.runtime_s." ^ name) runtime_s;
  let s = Tdf_metrics.Displacement.summary design p in
  {
    method_ = m;
    avg_disp = s.Tdf_metrics.Displacement.avg_norm;
    max_disp = s.Tdf_metrics.Displacement.max_norm;
    runtime_s;
    hpwl_incr_pct = Tdf_metrics.Hpwl.increase_pct design p;
    d2d_moves = count_d2d design p;
    legal = Tdf_metrics.Legality.is_legal design p;
    via_fallback;
  }

(* The methods of a case are independent measurements on a read-only
   design, so they fan out over the domain pool; rows come back in
   [methods] order regardless of scheduling. *)
let run_case ?(methods = all_methods) ~case design =
  let rows =
    Tdf_par.map_array (fun m -> measure m design) (Array.of_list methods)
  in
  { case; n_cells = Design.n_cells design; rows = Array.to_list rows }

(* The whole case × method grid is embarrassingly parallel: generation is
   seeded per case ([Prng.of_string "suite/case"]), so cases generate
   independently, and each (case, method) measurement reads one generated
   design.  Both stages fan out over the pool; results are reassembled in
   spec × method order, so the suite output is identical at every --jobs
   setting. *)
let run_suite ?(methods = all_methods) ?(scale = 0.05) suite =
  let specs =
    match suite with
    | Tdf_benchgen.Spec.Iccad2022 -> Tdf_benchgen.Spec.iccad2022
    | Tdf_benchgen.Spec.Iccad2023 -> Tdf_benchgen.Spec.iccad2023
  in
  let specs_a = Array.of_list specs in
  let designs =
    Tdf_par.map_array (fun spec -> Tdf_benchgen.Gen.generate ~scale spec) specs_a
  in
  let methods_a = Array.of_list methods in
  let nm = Array.length methods_a in
  let grid =
    Array.init
      (Array.length specs_a * nm)
      (fun i -> (i / nm, methods_a.(i mod nm)))
  in
  let measured =
    Tdf_par.map_array (fun (ci, m) -> measure m designs.(ci)) grid
  in
  List.mapi
    (fun ci (spec : Tdf_benchgen.Spec.t) ->
      {
        case = spec.Tdf_benchgen.Spec.case;
        n_cells = Design.n_cells designs.(ci);
        rows = List.init nm (fun mi -> measured.((ci * nm) + mi));
      })
    specs
