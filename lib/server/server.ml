module Frame = Tdf_io.Frame
module Protocol = Tdf_io.Protocol
module Text = Tdf_io.Text
module Contest = Tdf_io.Contest
module Delta = Tdf_io.Delta
module Journal = Tdf_io.Journal
module Json = Tdf_telemetry.Json
module Eco = Tdf_incremental.Eco
module Tile = Tdf_legalizer.Tile
module Pipeline = Tdf_robust.Pipeline
module Placement = Tdf_netlist.Placement
module Design = Tdf_netlist.Design
module Legality = Tdf_metrics.Legality
module Failpoint = Tdf_util.Failpoint
module Timer = Tdf_util.Timer
module Stats = Tdf_util.Stats

type cfg = {
  socket_path : string;
  max_sessions : int;
  max_frame : int;
  default_budget_ms : int option;
  eco : Eco.cfg;
  journal : Journal.cfg option;
  snapshot_every : int;
  max_pending : int;
  max_conn_queue : int;
  idle_timeout_s : float;
  deadline_ms : int option;
}

let default_cfg ~socket_path =
  {
    socket_path;
    max_sessions = 8;
    max_frame = 16 * 1024 * 1024;
    default_budget_ms = None;
    eco = Eco.default_cfg;
    journal = None;
    snapshot_every = 64;
    max_pending = 64;
    max_conn_queue = 256;
    idle_timeout_s = 0.;
    deadline_ms = None;
  }

type recovery_error =
  | Journal_unusable of { detail : string }
  | Snapshot_invalid of { session : string; detail : string }
  | Replay_failed of {
      lsn : int;
      session : string;
      code : string;
      detail : string;
    }
  | Digest_drift of {
      lsn : int;
      session : string;
      expected : string;
      got : string;
    }

exception Recovery_error of recovery_error

let recovery_error_to_string = function
  | Journal_unusable { detail } -> "journal unusable: " ^ detail
  | Snapshot_invalid { session; detail } ->
    Printf.sprintf "snapshot of session %S is invalid: %s" session detail
  | Replay_failed { lsn; session; code; detail } ->
    Printf.sprintf "replay of journal record %d (session %S) failed [%s]: %s"
      lsn session code detail
  | Digest_drift { lsn; session; expected; got } ->
    Printf.sprintf
      "placement digest drift at journal record %d (session %S): journaled \
       %s, replay produced %s"
      lsn session expected got

type recovery_stats = {
  recovered_sessions : int;
  replayed_records : int;
  truncated_bytes : int;
  dropped_snapshots : int;
}

type session = {
  id : string;
  sess : Eco.Session.t;
  mutable last_used : int;
  mutable requests : int;
}

(* Growable latency sample store; percentiles are computed on demand. *)
module Samples = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 256 0.; n = 0 }

  let add t v =
    if t.n = Array.length t.a then begin
      let a = Array.make (2 * t.n) 0. in
      Array.blit t.a 0 a 0 t.n;
      t.a <- a
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n
end

(* A queued frame, or a marker for one that was shed at enqueue time.
   Shed markers stay in the per-connection queue so replies keep arriving
   in request order — the client can correlate them positionally. *)
type work = Exec of string | Shed

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  pending : work Queue.t;
  mutable alive : bool;
  mutable last_active_ns : int64;
}

type t = {
  cfg : cfg;
  listen_fd : Unix.file_descr option;  (** [None] for socketless (test) use *)
  mutable conns : conn list;
  sessions : (string, session) Hashtbl.t;
  mutable tick : int;
  started_ns : int64;
  mutable journal : Journal.t option;
  mutable replaying : bool;  (** recovery replay: suppress re-journaling *)
  mutable records_since_snapshot : int;
  mutable pending_count : int;  (** queued [Exec] frames across all conns *)
  mutable recovery : recovery_stats option;
  (* stats *)
  mutable requests : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable shed : int;
  mutable reaped : int;
  mutable max_queue : int;
  req_kinds : (string, int ref) Hashtbl.t;
  latencies_ms : Samples.t;
  mutable stop : bool;
}

let stopping t = t.stop

let live_sessions t = Hashtbl.length t.sessions

let drop_sessions t =
  let n = Hashtbl.length t.sessions in
  Hashtbl.reset t.sessions;
  n

let recovery t = t.recovery

(* ---- journaling ------------------------------------------------------ *)

let session_blob s =
  let design = Eco.Session.design s.sess in
  Json.to_string
    (Json.Obj
       ([
          ("design", Json.String (Text.design_to_string design));
          ( "placement",
            Json.String
              (Text.placement_to_string design (Eco.Session.placement s.sess))
          );
          ("digest", Json.String (Eco.Session.state_digest s.sess));
        ]
       @
       match Eco.Session.tiles s.sess with
       | Some k -> [ ("tiles", Json.Int k) ]
       | None -> []))

(* Snapshot every live session, then truncate the wal: from here on a
   recovery starts at the snapshots and replays nothing older.  Snapshots
   of sessions no longer live are removed first — once the wal is empty
   they are the whole truth, and a stale one would resurrect its
   session. *)
let snapshot_all t j =
  List.iter
    (fun id ->
      if not (Hashtbl.mem t.sessions id) then
        Journal.delete_snapshot j ~session:id)
    (Journal.snapshot_sessions j);
  Hashtbl.iter
    (fun _ s -> Journal.save_snapshot j ~session:s.id (session_blob s))
    t.sessions;
  Journal.compact j;
  t.records_since_snapshot <- 0

let journal_append t fields =
  match t.journal with
  | Some j when not t.replaying ->
    ignore (Journal.append j (Json.to_string (Json.Obj fields)));
    t.records_since_snapshot <- t.records_since_snapshot + 1;
    if t.records_since_snapshot >= max 1 t.cfg.snapshot_every then
      snapshot_all t j
  | _ -> ()

(* A wall-clock budget is the one thing command-replay cannot promise to
   reproduce: the clip point is timing-dependent, so replaying the
   record could land on a different placement and brick every restart
   with Digest_drift.  Snapshotting the session immediately after
   journaling a budget-capped mutation parks its result durably —
   recovery restores the snapshot and skips the record (lsn <= snapshot
   lsn), so the record is only ever command-replayed in the sliver of a
   crash between the append and this snapshot, where its reply cannot
   have been sent. *)
let snapshot_budget_capped t s =
  match t.journal with
  | Some j when not t.replaying ->
    Journal.save_snapshot j ~session:s.id (session_blob s)
  | _ -> ()

let opt_int name = function
  | None -> []
  | Some v -> [ (name, Json.Int v) ]

(* ---- session cache -------------------------------------------------- *)

let touch t s =
  t.tick <- t.tick + 1;
  s.last_used <- t.tick

let find_session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s ->
    t.hits <- t.hits + 1;
    Tdf_telemetry.incr "serve.cache.hit";
    touch t s;
    s.requests <- s.requests + 1;
    Some s
  | None ->
    t.misses <- t.misses + 1;
    Tdf_telemetry.incr "serve.cache.miss";
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with
        | Some best when best.last_used <= s.last_used -> acc
        | _ -> Some s)
      t.sessions None
  in
  match victim with
  | Some s ->
    Hashtbl.remove t.sessions s.id;
    t.evictions <- t.evictions + 1;
    Tdf_telemetry.incr "serve.cache.evict";
    (* The eviction itself is journaled (and the stale snapshot removed)
       so recovery reproduces the exact live set, never a superset. *)
    journal_append t
      [ ("op", Json.String "evict"); ("session", Json.String s.id) ];
    (match t.journal with
    | Some j when not t.replaying -> Journal.delete_snapshot j ~session:s.id
    | _ -> ())
  | None -> ()

let insert_session t id sess =
  (* Replacing an existing id is an update, not an eviction. *)
  if not (Hashtbl.mem t.sessions id) then
    while Hashtbl.length t.sessions >= max 1 t.cfg.max_sessions do
      evict_lru t
    done;
  let s = { id; sess; last_used = 0; requests = 1 } in
  Hashtbl.replace t.sessions id s;
  touch t s;
  s

(* ---- request execution ---------------------------------------------- *)

exception Reply_error of Protocol.err

let fail code fmt =
  Format.kasprintf
    (fun detail -> raise (Reply_error { Protocol.code; detail }))
    fmt

(* Rewrite "line N: ..." parser diagnostics into file:line: form when the
   source was a file, like the CLI does. *)
let parse_diagnostic src msg =
  match src with
  | Protocol.Text _ -> msg
  | Protocol.Path path ->
    if String.length msg > 5 && String.sub msg 0 5 = "line " then
      Printf.sprintf "%s:%s" path
        (String.sub msg 5 (String.length msg - 5))
    else Printf.sprintf "%s: %s" path msg

let read_source src =
  match src with
  | Protocol.Text t -> t
  | Protocol.Path path -> (
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> fail "parse-error" "%s" msg)

(* The design dialect is sniffed from the first keyword, mirroring the
   CLI's loader, so a session can be fed either native or contest text. *)
let parse_design src =
  let text = read_source src in
  let is_contest =
    let rec first_keyword i =
      if i >= String.length text then ""
      else
        let j =
          match String.index_from_opt text i '\n' with
          | Some j -> j
          | None -> String.length text
        in
        let line = String.trim (String.sub text i (j - i)) in
        if line = "" || line.[0] = '#' then first_keyword (j + 1)
        else
          match String.index_opt line ' ' with
          | Some k -> String.sub line 0 k
          | None -> line
    in
    List.mem (first_keyword 0) [ "NumTechnologies"; "Tech"; "DieSize" ]
  in
  let result =
    if is_contest then Result.map fst (Contest.read text)
    else Text.read_design text
  in
  match result with
  | Ok d -> d
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let parse_placement design src =
  match Text.read_placement design (read_source src) with
  | Ok p -> p
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let parse_delta src =
  match Delta.read (read_source src) with
  | Ok d -> d
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let required_session t id =
  match find_session t id with
  | Some s -> s
  | None -> fail "unknown-session" "no session %S (use load-design first)" id

(* Float-bearing records (gp anchors, weights, utilization) must encode
   canonically: re-parsing the canonical text and re-encoding has to
   reproduce it byte-for-byte, or a placement/design would drift through
   repeated protocol round-trips. *)
let assert_design_roundtrip d =
  let canon = Text.design_to_string d in
  match Text.read_design canon with
  | Error e -> fail "freeze-drift" "canonical design text does not re-parse: %s" e
  | Ok d' ->
    if Text.design_to_string d' <> canon then
      fail "freeze-drift" "design text changed across encode/decode round-trip"

let assert_placement_roundtrip design p =
  let canon = Text.placement_to_string design p in
  (match Text.read_placement design canon with
  | Error e ->
    fail "freeze-drift" "canonical placement text does not re-parse: %s" e
  | Ok p' ->
    if Text.placement_to_string design p' <> canon then
      fail "freeze-drift" "placement text changed across encode/decode round-trip");
  canon

let set_jobs_opt = function Some j -> Tdf_par.set_jobs j | None -> ()

let set_tiles_opt = function Some k -> Tile.set_tiles k | None -> ()

(* The deadline caps every budget, including explicit per-request ones:
   with [deadline_ms] set no request can hold the single-threaded event
   loop hostage longer than the cap (budget exhaustion degrades into a
   best-effort result or a typed error, never a hang — Tdf_util.Budget
   semantics). *)
let effective_budget t requested =
  let base =
    match requested with Some _ -> requested | None -> t.cfg.default_budget_ms
  in
  match (base, t.cfg.deadline_ms) with
  | Some b, Some d -> Some (min b d)
  | None, Some d -> Some d
  | b, None -> b

let eco_cfg_of t ~radius ~max_widenings ~budget_ms =
  let base = t.cfg.eco in
  {
    base with
    Eco.initial_radius =
      Option.value radius ~default:base.Eco.initial_radius;
    Eco.max_widenings =
      Option.value max_widenings ~default:base.Eco.max_widenings;
    Eco.budget_ms = effective_budget t budget_ms;
  }

let rec handle_req t (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Ping -> Ok Protocol.Pong
  | Protocol.Stats -> Ok (Protocol.Stats_snapshot (stats_json_impl t))
  | Protocol.Shutdown ->
    t.stop <- true;
    Ok Protocol.Shutting_down
  | Protocol.Load_design { session; design; placement; tiles } ->
    let d = parse_design design in
    assert_design_roundtrip d;
    let p =
      match placement with
      | Some src -> parse_placement d src
      | None -> Placement.initial d
    in
    let sess = Eco.Session.create ~cfg:t.cfg.eco ?tiles d p in
    let s = insert_session t session sess in
    (* Journaled as canonical native text whatever dialect arrived: replay
       has one parser and the digest pins the decoded state. *)
    journal_append t
      ([
         ("op", Json.String "load");
         ("session", Json.String session);
         ("design", Json.String (Text.design_to_string d));
         ("placement", Json.String (Text.placement_to_string d p));
       ]
      @ opt_int "tiles" tiles
      @ [ ("digest", Json.String (Eco.Session.state_digest s.sess)) ]);
    Ok
      (Protocol.Loaded
         {
           session;
           n_cells = Design.n_cells d;
           n_nets = Array.length d.Design.nets;
           legal = Legality.is_legal d p;
         })
  | Protocol.Legalize { session; budget_ms; jobs; tiles; want_placement } ->
    let s = required_session t session in
    set_jobs_opt jobs;
    (* Request override beats the session's tiling beats the process
       knob; tiling never changes the placement, only wall clock. *)
    let tiles =
      match tiles with Some _ -> tiles | None -> Eco.Session.tiles s.sess
    in
    set_tiles_opt tiles;
    let design = Eco.Session.design s.sess in
    let budget = effective_budget t budget_ms in
    let opts = { Pipeline.default_options with Pipeline.budget_ms = budget } in
    let result, wall_s =
      Timer.time (fun () ->
          Pipeline.run ~opts ~cfg:t.cfg.eco.Eco.flow
            ~start:(Eco.Session.placement s.sess) design)
    in
    (match result with
    | Error e -> fail "legalize-failed" "%s" (Tdf_robust.Error.to_string e)
    | Ok r ->
      Eco.Session.set_placement s.sess r.Pipeline.design r.Pipeline.placement;
      (* Journal before the round-trip assertion below: the session state
         has already advanced, and the journal must mirror it even when
         the reply degrades to a freeze-drift error. *)
      journal_append t
        ([
           ("op", Json.String "legalize");
           ("session", Json.String session);
         ]
        @ opt_int "budget_ms" budget @ opt_int "jobs" jobs
        @ opt_int "tiles" tiles
        @ [ ("digest", Json.String (Eco.Session.state_digest s.sess)) ]);
      if budget <> None then snapshot_budget_capped t s;
      let placement =
        if want_placement then
          Some (assert_placement_roundtrip r.Pipeline.design r.Pipeline.placement)
        else None
      in
      Ok
        (Protocol.Legalized
           {
             session;
             legal = r.Pipeline.legal;
             path = Pipeline.path_name r.Pipeline.path;
             wall_s;
             placement;
           }))
  | Protocol.Eco
      {
        session;
        delta;
        radius;
        max_widenings;
        budget_ms;
        jobs;
        tiles;
        want_placement;
      } ->
    let s = required_session t session in
    set_jobs_opt jobs;
    let delta = parse_delta delta in
    let tiles =
      match tiles with Some _ -> tiles | None -> Eco.Session.tiles s.sess
    in
    let cfg =
      { (eco_cfg_of t ~radius ~max_widenings ~budget_ms) with Eco.tiles }
    in
    (* Snapshot so a post-hoc consistency failure can roll the warm
       session back to its pre-request state.  Only needed when the reply
       carries placement text (the round-trip assertion can reject). *)
    let snapshot =
      if want_placement then
        Some
          ( Eco.Session.design s.sess,
            Placement.copy (Eco.Session.placement s.sess) )
      else None
    in
    let result, wall_s =
      Timer.time (fun () -> Eco.Session.eco ~cfg s.sess delta)
    in
    (match result with
    | Error (Eco.Invalid_delta msg) -> fail "invalid-delta" "%s" msg
    | Error e -> fail "eco-failed" "%s" (Eco.error_to_string e)
    | Ok r ->
      (* The wire placement must survive encode→decode→re-encode exactly,
         or the frozen-cell guarantee would silently rot in transit.  The
         assertion rides only on placement-carrying replies — it is the
         same text we are about to send. *)
      let placement_txt =
        match snapshot with
        | None -> None
        | Some (prev_design, prev_placement) -> (
          try Some (assert_placement_roundtrip r.Eco.design r.Eco.placement)
          with Reply_error _ as e ->
            Eco.Session.set_placement s.sess prev_design prev_placement;
            raise e)
      in
      (* After the assertion: a rolled-back request left no state to
         journal.  The record carries the *effective* knobs (deadline cap
         applied), so replay re-runs exactly what ran. *)
      journal_append t
        ([
           ("op", Json.String "eco");
           ("session", Json.String session);
           ("delta", Json.String (Delta.to_string delta));
           ("radius", Json.Int cfg.Eco.initial_radius);
           ("max_widenings", Json.Int cfg.Eco.max_widenings);
         ]
        @ opt_int "budget_ms" cfg.Eco.budget_ms
        @ opt_int "jobs" jobs @ opt_int "tiles" tiles
        @ [ ("digest", Json.String (Eco.Session.state_digest s.sess)) ]);
      if cfg.Eco.budget_ms <> None then snapshot_budget_capped t s;
      let st = r.Eco.stats in
      Ok
        (Protocol.Eco_applied
           {
             session;
             (* [Ok] implies legality: both the local path and the full
                fallback verify before returning (see eco.ml). *)
             legal = true;
             path = Eco.path_name st.Eco.path;
             dirty_bins = st.Eco.dirty_bins;
             total_bins = st.Eco.total_bins;
             widenings = st.Eco.widenings;
             fallbacks = st.Eco.fallbacks;
             grid_reused = Eco.Session.grid_reused_last s.sess;
             wall_s;
             placement = placement_txt;
           }))
  | Protocol.Get_placement { session } ->
    let s = required_session t session in
    Ok
      (Protocol.Placement_text
         {
           session;
           placement =
             Text.placement_to_string
               (Eco.Session.design s.sess)
               (Eco.Session.placement s.sess);
         })

and stats_json_impl t =
  let lat = Samples.to_array t.latencies_ms in
  let pct p = Stats.percentile lat p in
  let kinds =
    Hashtbl.fold (fun k n acc -> (k, Json.Int !n) :: acc) t.req_kinds []
    |> List.sort compare
  in
  Json.Obj
    [
      ("uptime_s", Json.Float (Timer.ns_to_s (Timer.elapsed_ns t.started_ns)));
      ("requests", Json.Int t.requests);
      ("errors", Json.Int t.errors);
      ("by_kind", Json.Obj kinds);
      ("sessions", Json.Int (Hashtbl.length t.sessions));
      ( "tile",
        let c = Tile.counters () in
        Json.Obj
          [
            ("tiles", Json.Int (Tile.tiles ()));
            ("passes", Json.Int c.Tile.passes);
            ("reconciled", Json.Int c.Tile.reconciled);
            ("conflicts", Json.Int c.Tile.conflicts);
            ("live", Json.Int c.Tile.live);
          ] );
      ( "session_tiles",
        Json.Obj
          (Hashtbl.fold
             (fun id s acc ->
               ( id,
                 match Eco.Session.tiles s.sess with
                 | Some k -> Json.Int k
                 | None -> Json.Null )
               :: acc)
             t.sessions []
          |> List.sort compare) );
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int t.hits);
            ("misses", Json.Int t.misses);
            ("evictions", Json.Int t.evictions);
          ] );
      ("max_queue_depth", Json.Int t.max_queue);
      ("shed", Json.Int t.shed);
      ("reaped_connections", Json.Int t.reaped);
      ( "journal",
        match t.journal with
        | None -> Json.Obj [ ("enabled", Json.Bool false) ]
        | Some j ->
          let js = Journal.stats j in
          let rs =
            Option.value t.recovery
              ~default:
                {
                  recovered_sessions = 0;
                  replayed_records = 0;
                  truncated_bytes = 0;
                  dropped_snapshots = 0;
                }
          in
          Json.Obj
            [
              ("enabled", Json.Bool true);
              ("appends", Json.Int js.Journal.appends);
              ("appended_bytes", Json.Int js.Journal.appended_bytes);
              ("fsyncs", Json.Int js.Journal.fsyncs);
              ("snapshots_written", Json.Int js.Journal.snapshots_written);
              ("compactions", Json.Int js.Journal.compactions);
              ("last_lsn", Json.Int (Journal.last_lsn j));
              ("recovered_sessions", Json.Int rs.recovered_sessions);
              ("replayed_records", Json.Int rs.replayed_records);
              ("truncated_tail_bytes", Json.Int rs.truncated_bytes);
              ("dropped_snapshots", Json.Int rs.dropped_snapshots);
            ] );
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Int (Array.length lat));
            ("mean", Json.Float (Stats.mean lat));
            ("p50", Json.Float (pct 50.));
            ("p90", Json.Float (pct 90.));
            ("p99", Json.Float (pct 99.));
            ("max", Json.Float (Stats.max_value lat));
          ] );
    ]

let stats_json = stats_json_impl

(* Every request runs in its own fault domain: exceptions (including the
   armed "serve.request" failpoint) become typed error replies and the
   server keeps serving. *)
let handle t req =
  t.requests <- t.requests + 1;
  Tdf_telemetry.incr "serve.requests";
  let kind = Protocol.request_kind req in
  (match Hashtbl.find_opt t.req_kinds kind with
  | Some n -> incr n
  | None -> Hashtbl.replace t.req_kinds kind (ref 1));
  let response, wall_s =
    Timer.time (fun () ->
        try
          if Failpoint.fire "serve.request" then
            Protocol.error ~code:"injected"
              "fault injection killed this request (serve.request)"
          else handle_req t req
        with
        | Reply_error e -> Error e
        | Stack_overflow ->
          Protocol.error ~code:"internal" "stack overflow during request"
        | exn -> Protocol.error ~code:"internal" (Printexc.to_string exn))
  in
  let ms = wall_s *. 1000. in
  Samples.add t.latencies_ms ms;
  Tdf_telemetry.observe "serve.request_ms" ms;
  (match response with
  | Error _ ->
    t.errors <- t.errors + 1;
    Tdf_telemetry.incr "serve.errors"
  | Ok _ -> ());
  response

(* ---- recovery -------------------------------------------------------- *)

let json_str name doc = Option.bind (Json.member name doc) Json.to_str

let json_int name doc = Option.bind (Json.member name doc) Json.to_int

let parse_blob blob =
  match Json.of_string blob with
  | Error e -> Error ("snapshot blob is not JSON: " ^ e)
  | Ok doc -> (
    match
      (json_str "design" doc, json_str "placement" doc, json_str "digest" doc)
    with
    | Some d, Some p, Some dg -> Ok (d, p, dg, json_int "tiles" doc)
    | _ -> Error "snapshot blob is missing design/placement/digest")

(* Rebuild the session table from the journal: latest valid snapshot per
   session, then command-replay of the wal suffix through the very same
   Eco.Session machinery live requests use.  The engines are deterministic
   (byte-identical at any --jobs), so replay must land on the journaled
   digests — any drift is a typed startup error, not a silent divergence.
   The one documented exception: budget-capped requests replay with the
   recorded effective budget, and a wall-clock budget that clipped the
   original run differently from the replay shows up as Digest_drift. *)
let recover t j (r : Journal.recovery) =
  t.replaying <- true;
  Fun.protect
    ~finally:(fun () -> t.replaying <- false)
    (fun () ->
      let state : (string, Eco.Session.t * int) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iter
        (fun (s : Journal.snapshot) ->
          let invalid detail =
            raise
              (Recovery_error
                 (Snapshot_invalid { session = s.Journal.snap_session; detail }))
          in
          match parse_blob s.Journal.blob with
          | Error e -> invalid e
          | Ok (dtxt, ptxt, digest, tiles) ->
            let design =
              match Text.read_design dtxt with
              | Ok d -> d
              | Error e -> invalid ("design: " ^ e)
            in
            let placement =
              match Text.read_placement design ptxt with
              | Ok p -> p
              | Error e -> invalid ("placement: " ^ e)
            in
            let sess =
              Eco.Session.create ~cfg:t.cfg.eco ?tiles design placement
            in
            let got = Eco.Session.state_digest sess in
            if got <> digest then
              raise
                (Recovery_error
                   (Digest_drift
                      {
                        lsn = s.Journal.snap_lsn;
                        session = s.Journal.snap_session;
                        expected = digest;
                        got;
                      }));
            Hashtbl.replace state s.Journal.snap_session
              (sess, s.Journal.snap_lsn))
        r.Journal.snapshots;
      let replayed = ref 0 in
      (* Replies are written right after each request executes, so any
         record with a successor in the wal had its reply sent.  Only
         the final record can be un-acknowledged — which is the one
         place a timing-dependent budget clip may be forgiven. *)
      let last_wal_lsn =
        List.fold_left (fun a (l, _) -> max a l) 0 r.Journal.records
      in
      List.iter
        (fun (lsn, payload) ->
          let doc =
            match Json.of_string payload with
            | Ok doc -> doc
            | Error e ->
              raise
                (Recovery_error
                   (Replay_failed
                      {
                        lsn;
                        session = "";
                        code = "bad-record";
                        detail = "record is not JSON: " ^ e;
                      }))
          in
          let op = Option.value (json_str "op" doc) ~default:"" in
          let session = Option.value (json_str "session" doc) ~default:"" in
          let failr code detail =
            raise (Recovery_error (Replay_failed { lsn; session; code; detail }))
          in
          let check_digest ~budget sess =
            match json_str "digest" doc with
            | None -> ()
            | Some expected ->
              let got = Eco.Session.state_digest sess in
              if got <> expected then
                if budget <> None && lsn = last_wal_lsn then
                  (* A wall-clock budget clipped the replay differently
                     from the original run.  On the final wal record no
                     later state depends on it and (budget-capped
                     mutations snapshot right after their append) its
                     reply almost surely never left the daemon: keep the
                     deterministic replayed state and count it, rather
                     than brick every subsequent restart. *)
                  Tdf_telemetry.incr "serve.recovery.tolerated_drift"
                else
                  raise
                    (Recovery_error
                       (Digest_drift { lsn; session; expected; got }))
          in
          (* Anything at or below the session's snapshot lsn is already
             reflected in the snapshot — skipping it makes a crash between
             save_snapshot and compact harmless. *)
          let skip =
            match Hashtbl.find_opt state session with
            | Some (_, high) -> lsn <= high
            | None -> false
          in
          if not skip then begin
            incr replayed;
            match op with
            | "load" ->
              let need name =
                match json_str name doc with
                | Some v -> v
                | None -> failr "bad-record" ("load record missing " ^ name)
              in
              let design =
                match Text.read_design (need "design") with
                | Ok d -> d
                | Error e -> failr "parse-error" ("design: " ^ e)
              in
              let placement =
                match Text.read_placement design (need "placement") with
                | Ok p -> p
                | Error e -> failr "parse-error" ("placement: " ^ e)
              in
              let sess =
                Eco.Session.create ~cfg:t.cfg.eco
                  ?tiles:(json_int "tiles" doc)
                  design placement
              in
              check_digest ~budget:None sess;
              Hashtbl.replace state session (sess, lsn)
            | "eco" ->
              let sess =
                match Hashtbl.find_opt state session with
                | Some (s, _) -> s
                | None ->
                  failr "unknown-session" "eco record for a session never loaded"
              in
              let delta =
                match json_str "delta" doc with
                | None -> failr "bad-record" "eco record missing delta"
                | Some txt -> (
                  match Delta.read txt with
                  | Ok d -> d
                  | Error e -> failr "parse-error" ("delta: " ^ e))
              in
              let cfg =
                {
                  t.cfg.eco with
                  Eco.initial_radius =
                    Option.value (json_int "radius" doc)
                      ~default:t.cfg.eco.Eco.initial_radius;
                  Eco.max_widenings =
                    Option.value (json_int "max_widenings" doc)
                      ~default:t.cfg.eco.Eco.max_widenings;
                  Eco.budget_ms = json_int "budget_ms" doc;
                  Eco.tiles = json_int "tiles" doc;
                }
              in
              set_jobs_opt (json_int "jobs" doc);
              (match Eco.Session.eco ~cfg sess delta with
              | Error (Eco.Invalid_delta msg) -> failr "invalid-delta" msg
              | Error e -> failr "eco-failed" (Eco.error_to_string e)
              | Ok _ -> ());
              check_digest ~budget:cfg.Eco.budget_ms sess;
              Hashtbl.replace state session (sess, lsn)
            | "legalize" ->
              let sess =
                match Hashtbl.find_opt state session with
                | Some (s, _) -> s
                | None ->
                  failr "unknown-session"
                    "legalize record for a session never loaded"
              in
              let opts =
                {
                  Pipeline.default_options with
                  Pipeline.budget_ms = json_int "budget_ms" doc;
                }
              in
              set_jobs_opt (json_int "jobs" doc);
              set_tiles_opt (json_int "tiles" doc);
              (match
                 Pipeline.run ~opts ~cfg:t.cfg.eco.Eco.flow
                   ~start:(Eco.Session.placement sess)
                   (Eco.Session.design sess)
               with
              | Error e ->
                failr "legalize-failed" (Tdf_robust.Error.to_string e)
              | Ok pr ->
                Eco.Session.set_placement sess pr.Pipeline.design
                  pr.Pipeline.placement);
              check_digest ~budget:(json_int "budget_ms" doc) sess;
              Hashtbl.replace state session (sess, lsn)
            | "evict" -> Hashtbl.remove state session
            | other -> failr "bad-record" ("unknown journal op " ^ other)
          end)
        r.Journal.records;
      (* Install in last-mutation order so LRU recency approximates the
         pre-crash order (read-only touches are not journaled). *)
      let ordered =
        Hashtbl.fold (fun id (sess, lsn) acc -> (lsn, id, sess) :: acc) state []
        |> List.sort compare
      in
      List.iter (fun (_, id, sess) -> ignore (insert_session t id sess)) ordered;
      t.recovery <-
        Some
          {
            recovered_sessions = List.length ordered;
            replayed_records = !replayed;
            truncated_bytes = r.Journal.truncated_bytes;
            dropped_snapshots = r.Journal.dropped_snapshots;
          };
      if
        ordered <> [] || r.Journal.records <> []
        || r.Journal.truncated_bytes > 0
      then Tdf_telemetry.incr "serve.recoveries";
      (* Re-baseline: fresh snapshots, empty wal.  The next recovery
         starts here instead of re-replaying history. *)
      snapshot_all t j)

let make cfg listen_fd =
  let t =
    {
      cfg;
      listen_fd;
      conns = [];
      sessions = Hashtbl.create 16;
      tick = 0;
      started_ns = Timer.now_ns ();
      journal = None;
      replaying = false;
      records_since_snapshot = 0;
      pending_count = 0;
      recovery = None;
      requests = 0;
      errors = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      shed = 0;
      reaped = 0;
      max_queue = 0;
      req_kinds = Hashtbl.create 8;
      latencies_ms = Samples.create ();
      stop = false;
    }
  in
  (match cfg.journal with
  | None -> ()
  | Some jcfg -> (
    match Journal.open_ jcfg with
    | Error detail -> raise (Recovery_error (Journal_unusable { detail }))
    | Ok (j, r) ->
      t.journal <- Some j;
      recover t j r));
  t

(* A socket file can outlive a SIGKILLed daemon.  Probe it: a successful
   connect means someone is listening (refuse to steal the address); a
   refused connect means the file is stale and safe to unlink.  A
   non-socket file at the path is never deleted. *)
let remove_stale_socket path =
  match (Unix.lstat path).Unix.st_kind with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | Unix.S_SOCK ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path));
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> raise (Unix.Unix_error (Unix.EEXIST, "bind", path))

let create cfg =
  (* A client that vanishes mid-reply turns our write into EPIPE; that
     must close one connection, not SIGPIPE-kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  remove_stale_socket cfg.socket_path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  match make cfg (Some fd) with
  | t -> t
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
    raise e

(* ---- event loop ------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      try ignore (Unix.select [] [ fd ] [] 1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let close_conn t conn =
  conn.alive <- false;
  Queue.iter
    (function
      | Exec _ -> t.pending_count <- t.pending_count - 1
      | Shed -> ())
    conn.pending;
  Queue.clear conn.pending;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_response t conn resp =
  conn.last_active_ns <- Timer.now_ns ();
  try write_all conn.fd (Frame.encode (Protocol.response_to_string resp))
  with Unix.Unix_error _ -> close_conn t conn

let accept_new t fd =
  let rec loop () =
    match Unix.accept fd with
    | client, _ ->
      Unix.set_nonblock client;
      t.conns <-
        {
          fd = client;
          dec = Frame.decoder ~max_frame:t.cfg.max_frame ();
          pending = Queue.create ();
          alive = true;
          last_active_ns = Timer.now_ns ();
        }
        :: t.conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let read_conn t conn =
  let buf = Bytes.create 65536 in
  let rec drain_frames () =
    match Frame.next conn.dec with
    | Ok (Some payload) ->
      if Queue.length conn.pending >= max 1 t.cfg.max_conn_queue then begin
        (* Shed markers keep replies ordered but still cost memory: a
           client that ignores the "overloaded" backpressure and keeps
           streaming would grow its queue without bound — the exact
           overload max_pending exists to prevent.  Past the
           per-connection cap the connection is closed after one typed
           error; whatever it still had queued is dropped with it. *)
        t.errors <- t.errors + 1;
        Tdf_telemetry.incr "serve.errors";
        Tdf_telemetry.incr "serve.conn_overflow";
        send_response t conn
          (Protocol.error ~code:"queue-overflow"
             "per-connection queue limit exceeded while overloaded; \
              connection closed");
        close_conn t conn
      end
      else begin
        (* Overload decision at enqueue time: beyond the global bound
           the frame is dropped and a Shed marker keeps its reply slot,
           so the client still gets an answer (a typed "overloaded") in
           order. *)
        (if t.pending_count >= max 1 t.cfg.max_pending then
           Queue.add Shed conn.pending
         else begin
           t.pending_count <- t.pending_count + 1;
           Queue.add (Exec payload) conn.pending
         end);
        drain_frames ()
      end
    | Ok None -> ()
    | Error e ->
      (* Framing is lost: reply once with a typed error, then drop the
         connection — there is no way to resynchronize the stream. *)
      t.errors <- t.errors + 1;
      Tdf_telemetry.incr "serve.errors";
      send_response t conn
        (Protocol.error ~code:"bad-frame" (Frame.error_to_string e));
      close_conn t conn
  in
  let rec loop () =
    if conn.alive then
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> close_conn t conn
      | n ->
        conn.last_active_ns <- Timer.now_ns ();
        Frame.feed conn.dec (Bytes.sub_string buf 0 n);
        drain_frames ();
        if conn.alive then loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> close_conn t conn
  in
  loop ()

let process_queues ~respect_stop t =
  let depth =
    List.fold_left (fun a c -> a + Queue.length c.pending) 0 t.conns
  in
  if depth > t.max_queue then t.max_queue <- depth;
  if depth > 0 then Tdf_telemetry.observe "serve.queue_depth" (float_of_int depth);
  (* Round-robin one frame per connection per pass, so one chatty client
     cannot starve the others. *)
  let stopped () = respect_stop && t.stop in
  let progressed = ref true in
  while !progressed && not (stopped ()) do
    progressed := false;
    List.iter
      (fun conn ->
        if conn.alive && (not (stopped ())) && not (Queue.is_empty conn.pending)
        then begin
          progressed := true;
          match Queue.take conn.pending with
          | Shed ->
            t.shed <- t.shed + 1;
            Tdf_telemetry.incr "serve.shed";
            send_response t conn
              (Protocol.error ~code:"overloaded"
                 "server overloaded: pending-request queue is full; retry \
                  after a backoff")
          | Exec payload ->
            t.pending_count <- t.pending_count - 1;
            let resp =
              match Protocol.request_of_string payload with
              | Error e ->
                t.requests <- t.requests + 1;
                t.errors <- t.errors + 1;
                Tdf_telemetry.incr "serve.requests";
                Tdf_telemetry.incr "serve.errors";
                Error e
              | Ok req -> handle t req
            in
            send_response t conn resp
        end)
      t.conns
  done

let process_pending t = process_queues ~respect_stop:true t

let reap_idle t =
  if t.cfg.idle_timeout_s > 0. then begin
    let limit_ns = Int64.of_float (t.cfg.idle_timeout_s *. 1e9) in
    List.iter
      (fun conn ->
        if
          conn.alive
          && Queue.is_empty conn.pending
          && Int64.compare (Timer.elapsed_ns conn.last_active_ns) limit_ns > 0
        then begin
          t.reaped <- t.reaped + 1;
          Tdf_telemetry.incr "serve.reaped";
          close_conn t conn
        end)
      t.conns
  end

let step ?(timeout_ms = 200) t =
  if t.stop then false
  else begin
    let fds =
      (match t.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.filter_map (fun c -> if c.alive then Some c.fd else None) t.conns
    in
    let readable, _, _ =
      try Unix.select fds [] [] (float_of_int timeout_ms /. 1000.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (match t.listen_fd with
    | Some fd when List.memq fd readable -> accept_new t fd
    | _ -> ());
    List.iter
      (fun conn ->
        if conn.alive && List.memq conn.fd readable then read_conn t conn)
      t.conns;
    process_pending t;
    reap_idle t;
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    not t.stop
  end

let run t = while step t do () done

let drain t =
  (* Answer everything already queued (even when a shutdown request set
     the stop flag), then persist a final consistent image. *)
  process_queues ~respect_stop:false t;
  match t.journal with
  | Some j ->
    snapshot_all t j;
    Journal.sync j
  | None -> ()

let close t =
  (match t.journal with
  | Some j ->
    snapshot_all t j;
    Journal.close j;
    t.journal <- None
  | None -> ());
  t.stop <- true;
  List.iter (close_conn t) t.conns;
  t.conns <- [];
  (match t.listen_fd with
  | Some fd -> (
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  | None -> ());
  ignore (drop_sessions t)

let crash t =
  (* Abandon without the final snapshot close/drain would write: whatever
     the journal holds is exactly what a SIGKILL would have left. *)
  (match t.journal with
  | Some j ->
    Journal.close j;
    t.journal <- None
  | None -> ());
  t.stop <- true;
  List.iter (close_conn t) t.conns;
  t.conns <- [];
  (match t.listen_fd with
  | Some fd -> (
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  | None -> ());
  ignore (drop_sessions t)
