module Frame = Tdf_io.Frame
module Protocol = Tdf_io.Protocol
module Text = Tdf_io.Text
module Contest = Tdf_io.Contest
module Delta = Tdf_io.Delta
module Json = Tdf_telemetry.Json
module Eco = Tdf_incremental.Eco
module Pipeline = Tdf_robust.Pipeline
module Placement = Tdf_netlist.Placement
module Design = Tdf_netlist.Design
module Legality = Tdf_metrics.Legality
module Failpoint = Tdf_util.Failpoint
module Timer = Tdf_util.Timer
module Stats = Tdf_util.Stats

type cfg = {
  socket_path : string;
  max_sessions : int;
  max_frame : int;
  default_budget_ms : int option;
  eco : Eco.cfg;
}

let default_cfg ~socket_path =
  {
    socket_path;
    max_sessions = 8;
    max_frame = 16 * 1024 * 1024;
    default_budget_ms = None;
    eco = Eco.default_cfg;
  }

type session = {
  id : string;
  sess : Eco.Session.t;
  mutable last_used : int;
  mutable requests : int;
}

(* Growable latency sample store; percentiles are computed on demand. *)
module Samples = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = Array.make 256 0.; n = 0 }

  let add t v =
    if t.n = Array.length t.a then begin
      let a = Array.make (2 * t.n) 0. in
      Array.blit t.a 0 a 0 t.n;
      t.a <- a
    end;
    t.a.(t.n) <- v;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n
end

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  pending : string Queue.t;
  mutable alive : bool;
}

type t = {
  cfg : cfg;
  listen_fd : Unix.file_descr option;  (** [None] for socketless (test) use *)
  mutable conns : conn list;
  sessions : (string, session) Hashtbl.t;
  mutable tick : int;
  started_ns : int64;
  (* stats *)
  mutable requests : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable max_queue : int;
  req_kinds : (string, int ref) Hashtbl.t;
  latencies_ms : Samples.t;
  mutable stop : bool;
}

let make cfg listen_fd =
  {
    cfg;
    listen_fd;
    conns = [];
    sessions = Hashtbl.create 16;
    tick = 0;
    started_ns = Timer.now_ns ();
    requests = 0;
    errors = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    max_queue = 0;
    req_kinds = Hashtbl.create 8;
    latencies_ms = Samples.create ();
    stop = false;
  }

let create cfg =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  (try
     Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
     Unix.listen fd 64;
     Unix.set_nonblock fd
   with e ->
     Unix.close fd;
     raise e);
  make cfg (Some fd)

let stopping t = t.stop

let live_sessions t = Hashtbl.length t.sessions

let drop_sessions t =
  let n = Hashtbl.length t.sessions in
  Hashtbl.reset t.sessions;
  n

(* ---- session cache -------------------------------------------------- *)

let touch t s =
  t.tick <- t.tick + 1;
  s.last_used <- t.tick

let find_session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s ->
    t.hits <- t.hits + 1;
    Tdf_telemetry.incr "serve.cache.hit";
    touch t s;
    s.requests <- s.requests + 1;
    Some s
  | None ->
    t.misses <- t.misses + 1;
    Tdf_telemetry.incr "serve.cache.miss";
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with
        | Some best when best.last_used <= s.last_used -> acc
        | _ -> Some s)
      t.sessions None
  in
  match victim with
  | Some s ->
    Hashtbl.remove t.sessions s.id;
    t.evictions <- t.evictions + 1;
    Tdf_telemetry.incr "serve.cache.evict"
  | None -> ()

let insert_session t id sess =
  (* Replacing an existing id is an update, not an eviction. *)
  if not (Hashtbl.mem t.sessions id) then
    while Hashtbl.length t.sessions >= max 1 t.cfg.max_sessions do
      evict_lru t
    done;
  let s = { id; sess; last_used = 0; requests = 1 } in
  Hashtbl.replace t.sessions id s;
  touch t s;
  s

(* ---- request execution ---------------------------------------------- *)

exception Reply_error of Protocol.err

let fail code fmt =
  Format.kasprintf
    (fun detail -> raise (Reply_error { Protocol.code; detail }))
    fmt

(* Rewrite "line N: ..." parser diagnostics into file:line: form when the
   source was a file, like the CLI does. *)
let parse_diagnostic src msg =
  match src with
  | Protocol.Text _ -> msg
  | Protocol.Path path ->
    if String.length msg > 5 && String.sub msg 0 5 = "line " then
      Printf.sprintf "%s:%s" path
        (String.sub msg 5 (String.length msg - 5))
    else Printf.sprintf "%s: %s" path msg

let read_source src =
  match src with
  | Protocol.Text t -> t
  | Protocol.Path path -> (
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error msg -> fail "parse-error" "%s" msg)

(* The design dialect is sniffed from the first keyword, mirroring the
   CLI's loader, so a session can be fed either native or contest text. *)
let parse_design src =
  let text = read_source src in
  let is_contest =
    let rec first_keyword i =
      if i >= String.length text then ""
      else
        let j =
          match String.index_from_opt text i '\n' with
          | Some j -> j
          | None -> String.length text
        in
        let line = String.trim (String.sub text i (j - i)) in
        if line = "" || line.[0] = '#' then first_keyword (j + 1)
        else
          match String.index_opt line ' ' with
          | Some k -> String.sub line 0 k
          | None -> line
    in
    List.mem (first_keyword 0) [ "NumTechnologies"; "Tech"; "DieSize" ]
  in
  let result =
    if is_contest then Result.map fst (Contest.read text)
    else Text.read_design text
  in
  match result with
  | Ok d -> d
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let parse_placement design src =
  match Text.read_placement design (read_source src) with
  | Ok p -> p
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let parse_delta src =
  match Delta.read (read_source src) with
  | Ok d -> d
  | Error e -> fail "parse-error" "%s" (parse_diagnostic src e)

let required_session t id =
  match find_session t id with
  | Some s -> s
  | None -> fail "unknown-session" "no session %S (use load-design first)" id

(* Float-bearing records (gp anchors, weights, utilization) must encode
   canonically: re-parsing the canonical text and re-encoding has to
   reproduce it byte-for-byte, or a placement/design would drift through
   repeated protocol round-trips. *)
let assert_design_roundtrip d =
  let canon = Text.design_to_string d in
  match Text.read_design canon with
  | Error e -> fail "freeze-drift" "canonical design text does not re-parse: %s" e
  | Ok d' ->
    if Text.design_to_string d' <> canon then
      fail "freeze-drift" "design text changed across encode/decode round-trip"

let assert_placement_roundtrip design p =
  let canon = Text.placement_to_string design p in
  (match Text.read_placement design canon with
  | Error e ->
    fail "freeze-drift" "canonical placement text does not re-parse: %s" e
  | Ok p' ->
    if Text.placement_to_string design p' <> canon then
      fail "freeze-drift" "placement text changed across encode/decode round-trip");
  canon

let set_jobs_opt = function Some j -> Tdf_par.set_jobs j | None -> ()

let eco_cfg_of t ~radius ~max_widenings ~budget_ms =
  let base = t.cfg.eco in
  {
    base with
    Eco.initial_radius =
      Option.value radius ~default:base.Eco.initial_radius;
    Eco.max_widenings =
      Option.value max_widenings ~default:base.Eco.max_widenings;
    Eco.budget_ms =
      (match budget_ms with Some _ -> budget_ms | None -> t.cfg.default_budget_ms);
  }

let rec handle_req t (req : Protocol.request) : Protocol.response =
  match req with
  | Protocol.Ping -> Ok Protocol.Pong
  | Protocol.Stats -> Ok (Protocol.Stats_snapshot (stats_json_impl t))
  | Protocol.Shutdown ->
    t.stop <- true;
    Ok Protocol.Shutting_down
  | Protocol.Load_design { session; design; placement } ->
    let d = parse_design design in
    assert_design_roundtrip d;
    let p =
      match placement with
      | Some src -> parse_placement d src
      | None -> Placement.initial d
    in
    let sess = Eco.Session.create ~cfg:t.cfg.eco d p in
    ignore (insert_session t session sess);
    Ok
      (Protocol.Loaded
         {
           session;
           n_cells = Design.n_cells d;
           n_nets = Array.length d.Design.nets;
           legal = Legality.is_legal d p;
         })
  | Protocol.Legalize { session; budget_ms; jobs; want_placement } ->
    let s = required_session t session in
    set_jobs_opt jobs;
    let design = Eco.Session.design s.sess in
    let opts =
      {
        Pipeline.default_options with
        Pipeline.budget_ms =
          (match budget_ms with
          | Some _ -> budget_ms
          | None -> t.cfg.default_budget_ms);
      }
    in
    let result, wall_s =
      Timer.time (fun () ->
          Pipeline.run ~opts ~cfg:t.cfg.eco.Eco.flow
            ~start:(Eco.Session.placement s.sess) design)
    in
    (match result with
    | Error e -> fail "legalize-failed" "%s" (Tdf_robust.Error.to_string e)
    | Ok r ->
      Eco.Session.set_placement s.sess r.Pipeline.design r.Pipeline.placement;
      let placement =
        if want_placement then
          Some (assert_placement_roundtrip r.Pipeline.design r.Pipeline.placement)
        else None
      in
      Ok
        (Protocol.Legalized
           {
             session;
             legal = r.Pipeline.legal;
             path = Pipeline.path_name r.Pipeline.path;
             wall_s;
             placement;
           }))
  | Protocol.Eco
      { session; delta; radius; max_widenings; budget_ms; jobs; want_placement }
    ->
    let s = required_session t session in
    set_jobs_opt jobs;
    let delta = parse_delta delta in
    let cfg = eco_cfg_of t ~radius ~max_widenings ~budget_ms in
    (* Snapshot so a post-hoc consistency failure can roll the warm
       session back to its pre-request state.  Only needed when the reply
       carries placement text (the round-trip assertion can reject). *)
    let snapshot =
      if want_placement then
        Some
          ( Eco.Session.design s.sess,
            Placement.copy (Eco.Session.placement s.sess) )
      else None
    in
    let result, wall_s =
      Timer.time (fun () -> Eco.Session.eco ~cfg s.sess delta)
    in
    (match result with
    | Error (Eco.Invalid_delta msg) -> fail "invalid-delta" "%s" msg
    | Error e -> fail "eco-failed" "%s" (Eco.error_to_string e)
    | Ok r ->
      (* The wire placement must survive encode→decode→re-encode exactly,
         or the frozen-cell guarantee would silently rot in transit.  The
         assertion rides only on placement-carrying replies — it is the
         same text we are about to send. *)
      let placement_txt =
        match snapshot with
        | None -> None
        | Some (prev_design, prev_placement) -> (
          try Some (assert_placement_roundtrip r.Eco.design r.Eco.placement)
          with Reply_error _ as e ->
            Eco.Session.set_placement s.sess prev_design prev_placement;
            raise e)
      in
      let st = r.Eco.stats in
      Ok
        (Protocol.Eco_applied
           {
             session;
             (* [Ok] implies legality: both the local path and the full
                fallback verify before returning (see eco.ml). *)
             legal = true;
             path = Eco.path_name st.Eco.path;
             dirty_bins = st.Eco.dirty_bins;
             total_bins = st.Eco.total_bins;
             widenings = st.Eco.widenings;
             fallbacks = st.Eco.fallbacks;
             grid_reused = Eco.Session.grid_reused_last s.sess;
             wall_s;
             placement = placement_txt;
           }))
  | Protocol.Get_placement { session } ->
    let s = required_session t session in
    Ok
      (Protocol.Placement_text
         {
           session;
           placement =
             Text.placement_to_string
               (Eco.Session.design s.sess)
               (Eco.Session.placement s.sess);
         })

and stats_json_impl t =
  let lat = Samples.to_array t.latencies_ms in
  let pct p = Stats.percentile lat p in
  let kinds =
    Hashtbl.fold (fun k n acc -> (k, Json.Int !n) :: acc) t.req_kinds []
    |> List.sort compare
  in
  Json.Obj
    [
      ("uptime_s", Json.Float (Timer.ns_to_s (Timer.elapsed_ns t.started_ns)));
      ("requests", Json.Int t.requests);
      ("errors", Json.Int t.errors);
      ("by_kind", Json.Obj kinds);
      ("sessions", Json.Int (Hashtbl.length t.sessions));
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int t.hits);
            ("misses", Json.Int t.misses);
            ("evictions", Json.Int t.evictions);
          ] );
      ("max_queue_depth", Json.Int t.max_queue);
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Int (Array.length lat));
            ("mean", Json.Float (Stats.mean lat));
            ("p50", Json.Float (pct 50.));
            ("p90", Json.Float (pct 90.));
            ("p99", Json.Float (pct 99.));
            ("max", Json.Float (Stats.max_value lat));
          ] );
    ]

let stats_json = stats_json_impl

(* Every request runs in its own fault domain: exceptions (including the
   armed "serve.request" failpoint) become typed error replies and the
   server keeps serving. *)
let handle t req =
  t.requests <- t.requests + 1;
  Tdf_telemetry.incr "serve.requests";
  let kind = Protocol.request_kind req in
  (match Hashtbl.find_opt t.req_kinds kind with
  | Some n -> incr n
  | None -> Hashtbl.replace t.req_kinds kind (ref 1));
  let response, wall_s =
    Timer.time (fun () ->
        try
          if Failpoint.fire "serve.request" then
            Protocol.error ~code:"injected"
              "fault injection killed this request (serve.request)"
          else handle_req t req
        with
        | Reply_error e -> Error e
        | Stack_overflow ->
          Protocol.error ~code:"internal" "stack overflow during request"
        | exn -> Protocol.error ~code:"internal" (Printexc.to_string exn))
  in
  let ms = wall_s *. 1000. in
  Samples.add t.latencies_ms ms;
  Tdf_telemetry.observe "serve.request_ms" ms;
  (match response with
  | Error _ ->
    t.errors <- t.errors + 1;
    Tdf_telemetry.incr "serve.errors"
  | Ok _ -> ());
  response

(* ---- event loop ------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] 1.0)
  done

let close_conn conn =
  conn.alive <- false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_response conn resp =
  try write_all conn.fd (Frame.encode (Protocol.response_to_string resp))
  with Unix.Unix_error _ -> close_conn conn

let accept_new t fd =
  let rec loop () =
    match Unix.accept fd with
    | client, _ ->
      Unix.set_nonblock client;
      t.conns <-
        {
          fd = client;
          dec = Frame.decoder ~max_frame:t.cfg.max_frame ();
          pending = Queue.create ();
          alive = true;
        }
        :: t.conns;
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let read_conn t conn =
  let buf = Bytes.create 65536 in
  let rec drain_frames () =
    match Frame.next conn.dec with
    | Ok (Some payload) ->
      Queue.add payload conn.pending;
      drain_frames ()
    | Ok None -> ()
    | Error e ->
      (* Framing is lost: reply once with a typed error, then drop the
         connection — there is no way to resynchronize the stream. *)
      t.errors <- t.errors + 1;
      Tdf_telemetry.incr "serve.errors";
      send_response conn
        (Protocol.error ~code:"bad-frame" (Frame.error_to_string e));
      close_conn conn
  in
  let rec loop () =
    if conn.alive then
      match Unix.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> close_conn conn
      | n ->
        Frame.feed conn.dec (Bytes.sub_string buf 0 n);
        drain_frames ();
        if conn.alive then loop ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (_, _, _) -> close_conn conn
  in
  loop ()

let process_pending t =
  let depth =
    List.fold_left (fun a c -> a + Queue.length c.pending) 0 t.conns
  in
  if depth > t.max_queue then t.max_queue <- depth;
  if depth > 0 then Tdf_telemetry.observe "serve.queue_depth" (float_of_int depth);
  (* Round-robin one frame per connection per pass, so one chatty client
     cannot starve the others. *)
  let progressed = ref true in
  while !progressed && not t.stop do
    progressed := false;
    List.iter
      (fun conn ->
        if conn.alive && (not t.stop) && not (Queue.is_empty conn.pending)
        then begin
          progressed := true;
          let payload = Queue.take conn.pending in
          let resp =
            match Protocol.request_of_string payload with
            | Error e ->
              t.requests <- t.requests + 1;
              t.errors <- t.errors + 1;
              Tdf_telemetry.incr "serve.requests";
              Tdf_telemetry.incr "serve.errors";
              Error e
            | Ok req -> handle t req
          in
          send_response conn resp
        end)
      t.conns
  done

let step ?(timeout_ms = 200) t =
  if t.stop then false
  else begin
    let fds =
      (match t.listen_fd with Some fd -> [ fd ] | None -> [])
      @ List.filter_map (fun c -> if c.alive then Some c.fd else None) t.conns
    in
    let readable, _, _ =
      try Unix.select fds [] [] (float_of_int timeout_ms /. 1000.)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (match t.listen_fd with
    | Some fd when List.memq fd readable -> accept_new t fd
    | _ -> ());
    List.iter
      (fun conn ->
        if conn.alive && List.memq conn.fd readable then read_conn t conn)
      t.conns;
    process_pending t;
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    not t.stop
  end

let run t = while step t do () done

let close t =
  t.stop <- true;
  List.iter close_conn t.conns;
  t.conns <- [];
  (match t.listen_fd with
  | Some fd -> (
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  | None -> ());
  ignore (drop_sessions t)
