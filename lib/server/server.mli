(** The [tdflow serve] daemon: a persistent legalization service over a
    Unix-domain socket.

    Clients speak the length-prefixed JSON protocol of {!Tdf_io.Frame} /
    {!Tdf_io.Protocol}: load a design into a named {e session}, legalize
    it, then stream ECO deltas against the warm session — the design, bin
    grid and MCMF workspace stay resident ({!Tdf_incremental.Eco.Session}),
    so a small delta costs a masked local solve instead of a from-scratch
    run plus file round-trips.  Sessions are LRU-evicted beyond
    [max_sessions].

    Concurrency model: connections are multiplexed with [select] and
    requests execute {e one at a time} on the accept loop — cross-request
    determinism and session-cache consistency come for free — while each
    request exploits multicore through the {!Tdf_par} pool (the [jobs]
    request field, like the CLI's [--jobs], resizes it).  Every request
    runs inside its own fault domain: an exception, a poisoned design or
    an exhausted budget yields a typed error {e reply} and leaves the
    server and its session cache intact.

    Fault injection: the ["serve.request"] failpoint
    ({!Tdf_util.Failpoint}) makes the next request die mid-execution with
    an ["injected"] error reply — the kill-mid-request case the test
    suite exercises.

    Telemetry (when a sink is installed): counters ["serve.requests"],
    ["serve.errors"], ["serve.cache.hit"/"miss"/"evict"], observations
    ["serve.request_ms"] and ["serve.queue_depth"], plus everything the
    underlying engines already emit.  The same numbers are always
    available in-band through a [stats] request, sink or no sink. *)

type cfg = {
  socket_path : string;
  max_sessions : int;  (** LRU capacity of the session cache (default 8) *)
  max_frame : int;  (** per-frame payload cap in bytes (default 16 MiB) *)
  default_budget_ms : int option;
      (** budget applied when a request carries none (default [None]) *)
  eco : Tdf_incremental.Eco.cfg;  (** base ECO knobs; requests override *)
}

val default_cfg : socket_path:string -> cfg

type t

val create : cfg -> t
(** Bind and listen on [cfg.socket_path] (an existing stale socket file is
    replaced).  Raises [Unix.Unix_error] when the path is unusable. *)

val handle : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response
(** Execute one request directly, bypassing the socket — the unit-test
    entry point, and exactly the function the accept loop calls.  Never
    raises: failures become error responses.  A [Shutdown] request marks
    the server stopping (visible via {!stopping}). *)

val step : ?timeout_ms:int -> t -> bool
(** Run one accept/read/execute/reply round of the event loop, waiting at
    most [timeout_ms] (default 200) for activity.  Returns [false] once a
    shutdown request has been served (the loop should stop). *)

val run : t -> unit
(** {!step} until shutdown. *)

val stopping : t -> bool

val live_sessions : t -> int

val drop_sessions : t -> int
(** Drop every cached session, returning how many were live. *)

val close : t -> unit
(** Close every connection and the listening socket, unlink the socket
    path, and drop all sessions.  Idempotent. *)

val stats_json : t -> Tdf_telemetry.Json.t
(** The same snapshot a [stats] request returns: request/error totals and
    per-kind counts, cache hits/misses/evictions, live session count,
    queue-depth high-water mark, and request-latency percentiles. *)
