(** The [tdflow serve] daemon: a persistent legalization service over a
    Unix-domain socket.

    Clients speak the length-prefixed JSON protocol of {!Tdf_io.Frame} /
    {!Tdf_io.Protocol}: load a design into a named {e session}, legalize
    it, then stream ECO deltas against the warm session — the design, bin
    grid and MCMF workspace stay resident ({!Tdf_incremental.Eco.Session}),
    so a small delta costs a masked local solve instead of a from-scratch
    run plus file round-trips.  Sessions are LRU-evicted beyond
    [max_sessions].

    Concurrency model: connections are multiplexed with [select] and
    requests execute {e one at a time} on the accept loop — cross-request
    determinism and session-cache consistency come for free — while each
    request exploits multicore through the {!Tdf_par} pool (the [jobs]
    request field, like the CLI's [--jobs], resizes it).  Every request
    runs inside its own fault domain: an exception, a poisoned design or
    an exhausted budget yields a typed error {e reply} and leaves the
    server and its session cache intact.

    {2 Durability}

    With [cfg.journal] set, every session-mutating request (load,
    legalize, eco — and the LRU evictions they trigger) is appended to a
    CRC-checksummed write-ahead journal ({!Tdf_io.Journal}) {e before}
    the reply is sent, together with a digest of the resulting placement
    ({!Tdf_incremental.Eco.Session.state_digest}).  Every
    [snapshot_every] records the live sessions are snapshotted and the
    journal compacted.  On startup {!create} restores the latest valid
    snapshots and command-replays the journal suffix through the same
    Eco machinery — the engines are deterministic, so replay must
    reproduce the journaled digests; divergence raises a typed
    {!Recovery_error} instead of silently serving drifted state.  A crash
    loses at most the requests that never got a reply: a torn tail from
    a mid-append crash is truncated (and reported), never fatal.

    Replies are written only {e after} the journal append, so a mutation
    whose reply was lost may nevertheless be durably applied — which is
    why the client ({!Client}) never auto-resends [legalize]/[eco] after
    a dead connection ({!Tdf_io.Protocol.request_resend_safe}).
    Budget-capped mutations are the one thing command-replay cannot
    promise to reproduce (wall-clock clipping), so they are followed by
    an immediate session snapshot and never need replay; if a crash
    lands in the append-to-snapshot sliver, a drift on that {e final}
    wal record is tolerated (counted as
    ["serve.recovery.tolerated_drift"]) instead of bricking every
    restart.

    {2 Overload control}

    [max_pending] bounds the total frames queued for execution across
    all connections; beyond it a frame is shed at enqueue time with a
    typed ["overloaded"] error reply (still delivered in request order,
    so pipelined clients stay correlated).  [max_conn_queue] bounds one
    connection's queue {e including} shed markers — a client that
    ignores the backpressure and keeps streaming gets one typed
    ["queue-overflow"] error and its connection closed, so overload
    bounds memory, not just executable work.  [deadline_ms] caps every
    request budget, explicit or defaulted, so no single request can hold
    the event loop past the cap ({!Tdf_util.Budget} exhaustion degrades
    into a best-effort result, never a hang).  [idle_timeout_s] reaps
    connections with no traffic and nothing queued.  {!drain} answers
    everything queued and writes a final snapshot — the SIGTERM path.

    Fault injection: the ["serve.request"] failpoint
    ({!Tdf_util.Failpoint}) makes the next request die mid-execution with
    an ["injected"] error reply; the ["journal.append"] failpoint (armed
    via [tdflow serve --arm-failpoint]) tears a journal write and
    SIGKILLs the daemon — the chaos harness ([tools/chaos]) drives both.

    Telemetry (when a sink is installed): counters ["serve.requests"],
    ["serve.errors"], ["serve.cache.hit"/"miss"/"evict"], ["serve.shed"],
    ["serve.reaped"], ["serve.conn_overflow"], ["serve.recoveries"],
    ["serve.recovery.tolerated_drift"], ["journal.appends"] /
    ["journal.snapshots"] / ["journal.compactions"] /
    ["journal.truncated_tails"], observations ["serve.request_ms"] and
    ["serve.queue_depth"], plus everything the underlying engines already
    emit.  The same numbers are always available in-band through a
    [stats] request, sink or no sink. *)

type cfg = {
  socket_path : string;
  max_sessions : int;  (** LRU capacity of the session cache (default 8) *)
  max_frame : int;  (** per-frame payload cap in bytes (default 16 MiB) *)
  default_budget_ms : int option;
      (** budget applied when a request carries none (default [None]) *)
  eco : Tdf_incremental.Eco.cfg;  (** base ECO knobs; requests override *)
  journal : Tdf_io.Journal.cfg option;
      (** durability: journal directory and fsync policy (default [None],
          no journaling) *)
  snapshot_every : int;
      (** journal records between automatic snapshot+compact cycles
          (default 64) *)
  max_pending : int;
      (** global bound on frames queued for execution; beyond it requests
          are shed with an ["overloaded"] reply (default 64) *)
  max_conn_queue : int;
      (** per-connection bound on queued frames, shed markers included;
          beyond it the connection gets one typed ["queue-overflow"]
          error and is closed, dropping whatever it had queued
          (default 256) *)
  idle_timeout_s : float;
      (** reap connections idle longer than this; [0.] disables
          (default) *)
  deadline_ms : int option;
      (** hard cap on every request budget, explicit or defaulted
          (default [None]) *)
}

val default_cfg : socket_path:string -> cfg

(** Why a journaled startup could not reach a servable state.  Recovery
    {e tolerates} torn tails and unreadable snapshot files (they are
    truncated / skipped and counted); these errors are reserved for real
    divergence, where continuing would serve wrong state. *)
type recovery_error =
  | Journal_unusable of { detail : string }
      (** the journal directory cannot be opened or created *)
  | Snapshot_invalid of { session : string; detail : string }
      (** a checksum-valid snapshot holds text that no longer parses *)
  | Replay_failed of {
      lsn : int;
      session : string;
      code : string;
      detail : string;
    }  (** a journaled request failed on replay ([code] as per protocol) *)
  | Digest_drift of {
      lsn : int;
      session : string;
      expected : string;
      got : string;
    }
      (** replay produced a placement whose digest differs from the
          journaled one — determinism was violated.  A wall-clock budget
          that clipped the replay differently cannot normally reach
          here: budget-capped mutations snapshot immediately after their
          append (skipping replay), and a budget drift on the final,
          never-acknowledged wal record is tolerated rather than raised
          (see DESIGN.md §9) *)

exception Recovery_error of recovery_error

val recovery_error_to_string : recovery_error -> string

type recovery_stats = {
  recovered_sessions : int;
  replayed_records : int;
  truncated_bytes : int;  (** torn-tail bytes truncated from the wal *)
  dropped_snapshots : int;  (** unreadable snapshot files skipped *)
}

type t

val create : cfg -> t
(** Bind and listen on [cfg.socket_path].  A stale socket file left by a
    dead daemon is probed (connect) and removed; a {e live} daemon on the
    path raises [Unix.Unix_error (EADDRINUSE, _, _)], and a non-socket
    file is never deleted ([EEXIST]).  With [cfg.journal] set, recovery
    runs before the first request is accepted; raises {!Recovery_error}
    when the journaled state cannot be faithfully restored. *)

val recovery : t -> recovery_stats option
(** What recovery did at startup; [None] when journaling is off. *)

val handle : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response
(** Execute one request directly, bypassing the socket — the unit-test
    entry point, and exactly the function the accept loop calls.  Never
    raises: failures become error responses.  A [Shutdown] request marks
    the server stopping (visible via {!stopping}). *)

val step : ?timeout_ms:int -> t -> bool
(** Run one accept/read/execute/reply round of the event loop, waiting at
    most [timeout_ms] (default 200) for activity.  Returns [false] once a
    shutdown request has been served (the loop should stop).  Interrupted
    [select] calls (EINTR, e.g. a signal aimed at the drain path) count
    as quiet rounds, never as failures. *)

val run : t -> unit
(** {!step} until shutdown. *)

val stopping : t -> bool

val live_sessions : t -> int

val drop_sessions : t -> int
(** Drop every cached session, returning how many were live. *)

val drain : t -> unit
(** Graceful-shutdown half: answer every frame already queued (shed
    markers included), then snapshot all sessions, compact and sync the
    journal.  The caller (the SIGTERM handler path in [tdflow serve])
    follows with {!close}. *)

val close : t -> unit
(** Snapshot + compact + close the journal (when enabled), close every
    connection and the listening socket, unlink the socket path, and
    drop all sessions.  Idempotent. *)

val crash : t -> unit
(** Test hook: tear everything down {e without} the final snapshot, so
    the journal directory is left exactly as a SIGKILL would leave it.
    Lets the unit tests exercise recovery in-process. *)

val stats_json : t -> Tdf_telemetry.Json.t
(** The same snapshot a [stats] request returns: request/error totals and
    per-kind counts, cache hits/misses/evictions, live session count,
    queue-depth high-water mark, shed/reaped counts, journal and recovery
    counters, and request-latency percentiles. *)
