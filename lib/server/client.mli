(** Client side of the [tdflow serve] protocol: a blocking
    request/response connection plus a trace replay driver.

    A {e trace} is a JSONL file — one request document per line, exactly
    the wire encoding of {!Tdf_io.Protocol.request_to_string} — so a
    recorded session can be replayed verbatim against a live server
    ([tdflow client --trace]) and its latency distribution summarized for
    the serve benchmark. *)

type t

val connect : ?max_frame:int -> string -> t
(** Connect to the Unix-domain socket at this path.  Raises
    [Unix.Unix_error] when nothing is listening. *)

val close : t -> unit

val call : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response
(** Send one request and block for its reply.  Raises [Failure] when the
    connection drops or the server's reply stream is unintelligible —
    client-side framing loss is not recoverable. *)

val call_timed : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response * float
(** {!call} plus wall-clock seconds spent waiting. *)

(** Trace files and replay. *)
module Trace : sig
  val load : string -> (Tdf_io.Protocol.request list, string) result
  (** Parse a JSONL trace file; blank lines and [#] comments are
      skipped.  The error names the offending line. *)

  val save : string -> Tdf_io.Protocol.request list -> unit

  type outcome = {
    request : Tdf_io.Protocol.request;
    response : Tdf_io.Protocol.response;
    wall_s : float;
  }

  type summary = {
    outcomes : outcome list;  (** in trace order *)
    total_s : float;
    ok : int;
    errors : int;
    p50_ms : float;
    p99_ms : float;
    max_ms : float;
  }

  val replay : t -> Tdf_io.Protocol.request list -> summary
  (** Send each request in order over one connection, timing each reply.
      Error responses are recorded, not raised — a replay measures the
      server, it does not assert on it. *)

  val summary_json : summary -> Tdf_telemetry.Json.t
end
