(** Client side of the [tdflow serve] protocol: a blocking
    request/response connection plus a trace replay driver.

    A {e trace} is a JSONL file — one request document per line, exactly
    the wire encoding of {!Tdf_io.Protocol.request_to_string} — so a
    recorded session can be replayed verbatim against a live server
    ([tdflow client --trace]) and its latency distribution summarized for
    the serve benchmark.

    {2 Resilience}

    With [retries > 0] the client rides through two transient failure
    modes with bounded exponential backoff ([backoff_ms] base, doubling
    per attempt, capped at 64x):

    - {b connect/reconnect failures} — a daemon mid-restart (crash
      recovery, deploy) comes back on the same socket path, so a refused
      connect is retried.  A connection that dies {e mid-call} is
      re-established and the request re-sent only when the request is
      resend-safe ({!Tdf_io.Protocol.request_resend_safe}: reads,
      [ping], [shutdown], and [load-design] as a full-state put).  A
      [legalize] or [eco] whose reply was lost is {e never} re-sent
      automatically: the daemon journals and applies mutations before
      replying, so the request may already be durably applied and a
      blind re-send could apply it twice.  {!call} then raises [Failure]
      with a "state unknown" message — re-read the session (e.g.
      [get-placement]) before deciding to retry.
    - {b ["overloaded"] replies} — the server shed the request before
      executing it; re-sending after a backoff is always safe, mutating
      or not.

    Retries performed are surfaced via {!retries_used} and in the replay
    {!Trace.summary}.  {!connect} sets SIGPIPE to ignore so a daemon
    that vanishes mid-write surfaces as a typed failure, not a killed
    process. *)

type t

val connect : ?max_frame:int -> ?retries:int -> ?backoff_ms:int -> string -> t
(** Connect to the Unix-domain socket at this path, retrying a failed
    connect up to [retries] times (default 0: fail fast) with
    [backoff_ms] (default 50) exponential backoff.  Raises
    [Unix.Unix_error] when the attempts are exhausted. *)

val close : t -> unit

val retries_used : t -> int
(** Total reconnect/retry attempts performed over the connection's
    lifetime (0 when [retries] was never needed or never allowed). *)

val call : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response
(** Send one request and block for its reply, retrying per the
    connection's retry budget.  Raises [Failure] when the budget is
    exhausted, or immediately when the server's reply stream is
    unintelligible — client-side framing loss is not recoverable. *)

val call_timed : t -> Tdf_io.Protocol.request -> Tdf_io.Protocol.response * float
(** {!call} plus wall-clock seconds spent waiting. *)

(** Trace files and replay. *)
module Trace : sig
  val load : string -> (Tdf_io.Protocol.request list, string) result
  (** Parse a JSONL trace file; blank lines and [#] comments are
      skipped.  The error names the offending line. *)

  val save : string -> Tdf_io.Protocol.request list -> unit

  type outcome = {
    request : Tdf_io.Protocol.request;
    response : Tdf_io.Protocol.response;
    wall_s : float;
  }

  type summary = {
    outcomes : outcome list;  (** in trace order *)
    total_s : float;
    ok : int;
    errors : int;
    retries : int;  (** reconnect/overloaded retries spent on this replay *)
    p50_ms : float;
    p99_ms : float;
    max_ms : float;
  }

  val replay : t -> Tdf_io.Protocol.request list -> summary
  (** Send each request in order over one connection, timing each reply.
      Error responses are recorded, not raised — a replay measures the
      server, it does not assert on it. *)

  val summary_json : summary -> Tdf_telemetry.Json.t
end
