module Frame = Tdf_io.Frame
module Protocol = Tdf_io.Protocol
module Json = Tdf_telemetry.Json
module Timer = Tdf_util.Timer
module Stats = Tdf_util.Stats

type t = {
  path : string;
  max_frame : int option;
  retries : int;
  backoff_ms : int;
  mutable fd : Unix.file_descr;
  mutable dec : Frame.decoder;
  buf : Bytes.t;
  mutable retries_used : int;
}

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

(* Exponential backoff, capped at 64x the base so a long retry budget
   does not turn into multi-minute sleeps. *)
let backoff_delay ~backoff_ms attempt = backoff_ms * (1 lsl min attempt 6)

(* Connect, retrying a refused/absent socket up to [retries] times with
   exponential backoff — a daemon mid-restart (crash recovery, deploy)
   comes back on the same path. *)
let connect_fd ~retries ~backoff_ms path =
  let rec go attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception (Unix.Unix_error _ as e) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then raise e;
      sleep_ms (backoff_delay ~backoff_ms attempt);
      go (attempt + 1)
  in
  go 0

let connect ?max_frame ?(retries = 0) ?(backoff_ms = 50) path =
  (* A daemon that dies mid-call turns our next write into EPIPE; that
     must surface as [Conn_lost], not a process-killing SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd = connect_fd ~retries ~backoff_ms path in
  {
    path;
    max_frame;
    retries;
    backoff_ms;
    fd;
    dec = Frame.decoder ?max_frame ();
    buf = Bytes.create 65536;
    retries_used = 0;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let retries_used t = t.retries_used

(* The connection died under us — retryable (unlike framing loss, which
   means the surviving byte stream itself is unintelligible). *)
exception Conn_lost of string

let write_all t s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    match Unix.write t.fd b !off (n - !off) with
    | written -> off := !off + written
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      raise (Conn_lost ("write: " ^ Unix.error_message e))
  done

let rec read_frame t =
  match Frame.next t.dec with
  | Error e -> failwith ("server reply framing lost: " ^ Frame.error_to_string e)
  | Ok (Some payload) -> payload
  | Ok None -> (
    match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
    | 0 -> raise (Conn_lost "server closed the connection mid-reply")
    | n ->
      Frame.feed t.dec (Bytes.sub_string t.buf 0 n);
      read_frame t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame t
    | exception Unix.Unix_error (e, _, _) ->
      raise (Conn_lost ("read: " ^ Unix.error_message e)))

let reconnect t =
  (try Unix.close t.fd with Unix.Unix_error _ -> ());
  t.fd <- connect_fd ~retries:(max 1 t.retries) ~backoff_ms:t.backoff_ms t.path;
  t.dec <- Frame.decoder ?max_frame:t.max_frame ()

let call t req =
  let payload = Frame.encode (Protocol.request_to_string req) in
  let rec attempt n =
    let outcome =
      try
        write_all t payload;
        match Protocol.response_of_string (read_frame t) with
        | Ok resp -> Ok resp
        | Error msg -> failwith ("unintelligible server reply: " ^ msg)
      with Conn_lost msg -> Error msg
    in
    match outcome with
    | Ok (Error { Protocol.code = "overloaded"; _ }) when n < t.retries ->
      (* Shed before execution — re-sending is always safe. *)
      t.retries_used <- t.retries_used + 1;
      sleep_ms (backoff_delay ~backoff_ms:t.backoff_ms n);
      attempt (n + 1)
    | Ok resp -> resp
    | Error msg ->
      if n >= t.retries then failwith msg
      else if not (Protocol.request_resend_safe req) then
        (* The daemon journals and applies a mutation BEFORE it writes
           the reply, so a connection that died with the reply unread
           may have left the request durably applied — recovery will
           replay it, and re-sending would apply it a second time.
           Fail with the state unknown instead of silently diverging. *)
        failwith
          (Printf.sprintf
             "%s; %s not re-sent: the daemon may have applied and \
              journaled it before the reply was lost (state unknown); \
              re-read the session state before retrying"
             msg
             (Protocol.request_kind req))
      else begin
        (* The daemon may be restarting (crash recovery); reconnect and
           re-send — this request is read-only or a full-state put, so a
           duplicate delivery cannot change the outcome. *)
        t.retries_used <- t.retries_used + 1;
        sleep_ms (backoff_delay ~backoff_ms:t.backoff_ms n);
        (match reconnect t with
        | () -> ()
        | exception Unix.Unix_error (e, _, _) ->
          failwith (msg ^ "; reconnect failed: " ^ Unix.error_message e));
        attempt (n + 1)
      end
  in
  attempt 0

let call_timed t req = Timer.time (fun () -> call t req)

module Trace = struct
  let load path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      let lines = String.split_on_char '\n' text in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
          else (
            match Protocol.request_of_string trimmed with
            | Ok req -> go (lineno + 1) (req :: acc) rest
            | Error e ->
              Error
                (Printf.sprintf "%s:%d: %s: %s" path lineno e.Protocol.code
                   e.Protocol.detail))
      in
      go 1 [] lines
    with Sys_error msg -> Error msg

  let save path reqs =
    let oc = open_out_bin path in
    List.iter
      (fun req ->
        output_string oc (Protocol.request_to_string req);
        output_char oc '\n')
      reqs;
    close_out oc

  type outcome = {
    request : Protocol.request;
    response : Protocol.response;
    wall_s : float;
  }

  type summary = {
    outcomes : outcome list;
    total_s : float;
    ok : int;
    errors : int;
    retries : int;
    p50_ms : float;
    p99_ms : float;
    max_ms : float;
  }

  let replay t reqs =
    let retries_before = t.retries_used in
    let outcomes, total_s =
      Timer.time (fun () ->
          List.map
            (fun request ->
              let response, wall_s = call_timed t request in
              { request; response; wall_s })
            reqs)
    in
    let lat =
      Array.of_list (List.map (fun o -> o.wall_s *. 1000.) outcomes)
    in
    let ok, errors =
      List.fold_left
        (fun (ok, err) o ->
          match o.response with Ok _ -> (ok + 1, err) | Error _ -> (ok, err + 1))
        (0, 0) outcomes
    in
    {
      outcomes;
      total_s;
      ok;
      errors;
      retries = t.retries_used - retries_before;
      p50_ms = Stats.percentile lat 50.;
      p99_ms = Stats.percentile lat 99.;
      max_ms = Stats.max_value lat;
    }

  let summary_json s =
    Json.Obj
      [
        ("requests", Json.Int (List.length s.outcomes));
        ("ok", Json.Int s.ok);
        ("errors", Json.Int s.errors);
        ("retries", Json.Int s.retries);
        ("total_s", Json.Float s.total_s);
        ("p50_ms", Json.Float s.p50_ms);
        ("p99_ms", Json.Float s.p99_ms);
        ("max_ms", Json.Float s.max_ms);
      ]
end
