module Frame = Tdf_io.Frame
module Protocol = Tdf_io.Protocol
module Json = Tdf_telemetry.Json
module Timer = Tdf_util.Timer
module Stats = Tdf_util.Stats

type t = { fd : Unix.file_descr; dec : Frame.decoder; buf : Bytes.t }

let connect ?max_frame path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; dec = Frame.decoder ?max_frame (); buf = Bytes.create 65536 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let rec read_frame t =
  match Frame.next t.dec with
  | Error e -> failwith ("server reply framing lost: " ^ Frame.error_to_string e)
  | Ok (Some payload) -> payload
  | Ok None -> (
    match Unix.read t.fd t.buf 0 (Bytes.length t.buf) with
    | 0 -> failwith "server closed the connection mid-reply"
    | n ->
      Frame.feed t.dec (Bytes.sub_string t.buf 0 n);
      read_frame t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_frame t)

let call t req =
  write_all t.fd (Frame.encode (Protocol.request_to_string req));
  match Protocol.response_of_string (read_frame t) with
  | Ok resp -> resp
  | Error msg -> failwith ("unintelligible server reply: " ^ msg)

let call_timed t req = Timer.time (fun () -> call t req)

module Trace = struct
  let load path =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      let lines = String.split_on_char '\n' text in
      let rec go lineno acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest ->
          let trimmed = String.trim line in
          if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
          else (
            match Protocol.request_of_string trimmed with
            | Ok req -> go (lineno + 1) (req :: acc) rest
            | Error e ->
              Error
                (Printf.sprintf "%s:%d: %s: %s" path lineno e.Protocol.code
                   e.Protocol.detail))
      in
      go 1 [] lines
    with Sys_error msg -> Error msg

  let save path reqs =
    let oc = open_out_bin path in
    List.iter
      (fun req ->
        output_string oc (Protocol.request_to_string req);
        output_char oc '\n')
      reqs;
    close_out oc

  type outcome = {
    request : Protocol.request;
    response : Protocol.response;
    wall_s : float;
  }

  type summary = {
    outcomes : outcome list;
    total_s : float;
    ok : int;
    errors : int;
    p50_ms : float;
    p99_ms : float;
    max_ms : float;
  }

  let replay t reqs =
    let outcomes, total_s =
      Timer.time (fun () ->
          List.map
            (fun request ->
              let response, wall_s = call_timed t request in
              { request; response; wall_s })
            reqs)
    in
    let lat =
      Array.of_list (List.map (fun o -> o.wall_s *. 1000.) outcomes)
    in
    let ok, errors =
      List.fold_left
        (fun (ok, err) o ->
          match o.response with Ok _ -> (ok + 1, err) | Error _ -> (ok, err + 1))
        (0, 0) outcomes
    in
    {
      outcomes;
      total_s;
      ok;
      errors;
      p50_ms = Stats.percentile lat 50.;
      p99_ms = Stats.percentile lat 99.;
      max_ms = Stats.max_value lat;
    }

  let summary_json s =
    Json.Obj
      [
        ("requests", Json.Int (List.length s.outcomes));
        ("ok", Json.Int s.ok);
        ("errors", Json.Int s.errors);
        ("total_s", Json.Float s.total_s);
        ("p50_ms", Json.Float s.p50_ms);
        ("p99_ms", Json.Float s.p99_ms);
        ("max_ms", Json.Float s.max_ms);
      ]
end
