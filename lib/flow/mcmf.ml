module Budget = Tdf_util.Budget
module Heap_int = Tdf_util.Heap_int
module Heap_radix = Tdf_util.Heap_radix

type arc = { a_src : int; a_dst : int; a_cap : int; a_cost : int }

type error = Negative_cycle of arc list

type solution = { flow : int; cost : int; complete : bool }

let error_to_string = function
  | Negative_cycle [] -> "negative cycle detected"
  | Negative_cycle arcs ->
    Printf.sprintf "negative cycle detected (%d arcs still relaxing: %s)"
      (List.length arcs)
      (arcs
      |> List.map (fun a ->
             Printf.sprintf "%d->%d cap %d cost %d" a.a_src a.a_dst a.a_cap
               a.a_cost)
      |> String.concat ", ")

(* ------------------------------------------------------------------ *)
(* Edge staging                                                        *)
(* ------------------------------------------------------------------ *)

module Builder = struct
  type t = {
    n : int;
    mutable m : int;
    mutable e_src : int array;
    mutable e_dst : int array;
    mutable e_cap : int array;
    mutable e_cost : int array;
  }

  let create ?(edges_hint = 16) n =
    let cap = max 1 edges_hint in
    {
      n;
      m = 0;
      e_src = Array.make cap 0;
      e_dst = Array.make cap 0;
      e_cap = Array.make cap 0;
      e_cost = Array.make cap 0;
    }

  let n_vertices b = b.n

  let n_edges b = b.m

  let grow b =
    let cap = Array.length b.e_src in
    if b.m = cap then begin
      let ncap = 2 * cap in
      let extend a =
        let na = Array.make ncap 0 in
        Array.blit a 0 na 0 b.m;
        na
      in
      b.e_src <- extend b.e_src;
      b.e_dst <- extend b.e_dst;
      b.e_cap <- extend b.e_cap;
      b.e_cost <- extend b.e_cost
    end

  let add_edge b ~src ~dst ~cap ~cost =
    if cap < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
    if src < 0 || src >= b.n || dst < 0 || dst >= b.n then
      invalid_arg "Mcmf.add_edge: vertex out of range";
    grow b;
    let k = b.m in
    b.e_src.(k) <- src;
    b.e_dst.(k) <- dst;
    b.e_cap.(k) <- cap;
    b.e_cost.(k) <- cost;
    b.m <- k + 1;
    k
end

(* ------------------------------------------------------------------ *)
(* Frozen CSR residual graph                                           *)
(* ------------------------------------------------------------------ *)

module Csr = struct
  type t = {
    n : int;
    m : int;  (* staged forward edges; the residual graph has 2m arcs *)
    head : int array;  (* n+1 bucket offsets *)
    a_dst : int array;
    a_cap : int array;  (* residual capacities: the only mutable state *)
    a_cost : int array;
    a_rev : int array;  (* csr position of the paired reverse arc *)
    fwd_pos : int array;  (* edge handle -> csr position of its forward arc *)
    cap0 : int array;  (* pristine capacities for reset_caps *)
  }

  (* Arc placement order mirrors the staged add_edge order per bucket
     (forward arc first, then the reverse arc — also for self-loops), so
     relaxation and heap tie-breaking order match the pre-CSR solver
     exactly: frozen graphs produce bit-identical (flow, cost). *)
  let of_builder (b : Builder.t) =
    Tdf_telemetry.span "mcmf.csr_freeze" @@ fun () ->
    let n = b.Builder.n and m = b.Builder.m in
    let na = 2 * m in
    let head = Array.make (n + 1) 0 in
    for k = 0 to m - 1 do
      let s = b.Builder.e_src.(k) and d = b.Builder.e_dst.(k) in
      head.(s + 1) <- head.(s + 1) + 1;
      head.(d + 1) <- head.(d + 1) + 1
    done;
    for v = 0 to n - 1 do
      head.(v + 1) <- head.(v + 1) + head.(v)
    done;
    let next = Array.sub head 0 (max 1 n) in
    let a_dst = Array.make (max 1 na) 0
    and a_cap = Array.make (max 1 na) 0
    and a_cost = Array.make (max 1 na) 0
    and a_rev = Array.make (max 1 na) 0 in
    let fwd_pos = Array.make (max 1 m) 0 in
    for k = 0 to m - 1 do
      let s = b.Builder.e_src.(k) and d = b.Builder.e_dst.(k) in
      let pf = next.(s) in
      next.(s) <- pf + 1;
      let pb = next.(d) in
      next.(d) <- pb + 1;
      a_dst.(pf) <- d;
      a_cap.(pf) <- b.Builder.e_cap.(k);
      a_cost.(pf) <- b.Builder.e_cost.(k);
      a_rev.(pf) <- pb;
      a_dst.(pb) <- s;
      a_cap.(pb) <- 0;
      a_cost.(pb) <- -b.Builder.e_cost.(k);
      a_rev.(pb) <- pf;
      fwd_pos.(k) <- pf
    done;
    { n; m; head; a_dst; a_cap; a_cost; a_rev; fwd_pos; cap0 = Array.copy a_cap }

  let n_vertices g = g.n

  let n_edges g = g.m

  let reset_caps g = Array.blit g.cap0 0 g.a_cap 0 (2 * g.m)

  let flow_on g handle =
    if handle < 0 || handle >= g.m then invalid_arg "Mcmf.flow_on: bad handle";
    (* flow = capacity currently on the reverse arc *)
    g.a_cap.(g.a_rev.(g.fwd_pos.(handle)))
end

(* ------------------------------------------------------------------ *)
(* Reusable solver scratch                                             *)
(* ------------------------------------------------------------------ *)

module Workspace = struct
  type t = {
    mutable dist : int array;
    mutable prev_v : int array;
    mutable prev_a : int array;
    mutable potential : int array;
    heap : Heap_int.t;
    rheap : Heap_radix.t;
    (* Blocking-phase scratch: per-vertex arc cursor, DFS path stacks and
       stamp-marked on-path/dead flags.  Stamps grow monotonically across
       the workspace lifetime so reuse needs no O(n) clears. *)
    mutable cur : int array;
    mutable stack_v : int array;
    mutable stack_a : int array;
    mutable onstack : int array;
    mutable dead : int array;
    mutable stamp : int;
    mutable solves : int;
  }

  let create () =
    {
      dist = [||];
      prev_v = [||];
      prev_a = [||];
      potential = [||];
      heap = Heap_int.create ();
      rheap = Heap_radix.create ();
      cur = [||];
      stack_v = [||];
      stack_a = [||];
      onstack = [||];
      dead = [||];
      stamp = 0;
      solves = 0;
    }

  let ensure ws n =
    if Array.length ws.dist < n then begin
      ws.dist <- Array.make n 0;
      ws.prev_v <- Array.make n 0;
      ws.prev_a <- Array.make n 0;
      ws.potential <- Array.make n 0;
      ws.cur <- Array.make n 0;
      ws.stack_v <- Array.make (n + 1) 0;
      ws.stack_a <- Array.make (n + 1) 0;
      ws.onstack <- Array.make n 0;
      ws.dead <- Array.make n 0
    end;
    Heap_int.clear ws.heap;
    Heap_radix.clear ws.rheap
end

(* ------------------------------------------------------------------ *)
(* Solver variants                                                     *)
(* ------------------------------------------------------------------ *)

type variant = Ssp | Radix | Blocking

let variant_name = function
  | Ssp -> "ssp"
  | Radix -> "radix"
  | Blocking -> "blocking"

let variant_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "ssp" -> Some Ssp
  | "radix" -> Some Radix
  | "blocking" -> Some Blocking
  | _ -> None

let env_variant =
  lazy
    (match Sys.getenv_opt "TDFLOW_SOLVER" with
    | None | Some "" -> Blocking
    | Some s -> (
      match variant_of_string s with
      | Some v -> v
      | None ->
        invalid_arg
          (Printf.sprintf "TDFLOW_SOLVER=%S: expected ssp, radix or blocking" s)
      ))

let variant_override = ref None

let set_default_variant v = variant_override := Some v

let default_variant () =
  match !variant_override with Some v -> v | None -> Lazy.force env_variant

(* ------------------------------------------------------------------ *)
(* Successive shortest paths on the CSR graph                          *)
(* ------------------------------------------------------------------ *)

(* Residual arcs that can still relax after Bellman–Ford converged or ran
   out of passes: exactly the arc set witnessing a negative cycle. *)
let relaxable_arcs (g : Csr.t) dist =
  let acc = ref [] in
  for v = 0 to g.Csr.n - 1 do
    if dist.(v) < max_int then
      for p = g.Csr.head.(v) to g.Csr.head.(v + 1) - 1 do
        if g.Csr.a_cap.(p) > 0 && dist.(v) + g.Csr.a_cost.(p) < dist.(g.Csr.a_dst.(p))
        then
          acc :=
            {
              a_src = v;
              a_dst = g.Csr.a_dst.(p);
              a_cap = g.Csr.a_cap.(p);
              a_cost = g.Csr.a_cost.(p);
            }
            :: !acc
      done
  done;
  List.rev !acc

let bellman_ford (g : Csr.t) source dist =
  let n = g.Csr.n in
  Array.fill dist 0 n max_int;
  dist.(source) <- 0;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= n do
    changed := false;
    incr iters;
    for v = 0 to n - 1 do
      if dist.(v) < max_int then
        for p = g.Csr.head.(v) to g.Csr.head.(v + 1) - 1 do
          if
            g.Csr.a_cap.(p) > 0
            && dist.(v) + g.Csr.a_cost.(p) < dist.(g.Csr.a_dst.(p))
          then begin
            dist.(g.Csr.a_dst.(p)) <- dist.(v) + g.Csr.a_cost.(p);
            changed := true
          end
        done
    done
  done;
  Tdf_telemetry.count "mcmf.bellman_ford_passes" !iters;
  if !iters > n then Error (relaxable_arcs g dist) else Ok ()

let solve_csr (g : Csr.t) ~(ws : Workspace.t) ~source ~sink
    ?(max_flow = max_int) ?(budget = Budget.unlimited) ?variant () =
  Tdf_telemetry.span "mcmf.min_cost_flow" @@ fun () ->
  if Tdf_util.Failpoint.fire "mcmf.solve" then Error (Negative_cycle [])
  else begin
    let variant =
      match variant with Some v -> v | None -> default_variant ()
    in
    let n = g.Csr.n in
    Workspace.ensure ws n;
    if ws.Workspace.solves > 0 then Tdf_telemetry.incr "mcmf.ws_reuse";
    ws.Workspace.solves <- ws.Workspace.solves + 1;
    let telemetry = Tdf_telemetry.enabled () in
    let mw0 = if telemetry then Gc.minor_words () else 0. in
    let pops = ref 0
    and relaxations = ref 0
    and augmentations = ref 0
    and arc_scans = ref 0
    and phases = ref 0 in
    let dist = ws.Workspace.dist
    and prev_v = ws.Workspace.prev_v
    and prev_a = ws.Workspace.prev_a
    and potential = ws.Workspace.potential
    and heap = ws.Workspace.heap in
    Array.fill potential 0 n 0;
    let has_negative =
      let rec scan p =
        if p >= 2 * g.Csr.m then false
        else if g.Csr.a_cap.(p) > 0 && g.Csr.a_cost.(p) < 0 then true
        else scan (p + 1)
      in
      scan 0
    in
    let bf_error = ref None in
    if has_negative then begin
      match bellman_ford g source dist with
      | Error arcs -> bf_error := Some (Negative_cycle arcs)
      | Ok () ->
        for v = 0 to n - 1 do
          potential.(v) <- (if dist.(v) = max_int then 0 else dist.(v))
        done
    end;
    match !bf_error with
    | Some e -> Error e
    | None ->
      if Tdf_util.Failpoint.fire "mcmf.timeout" then Budget.exhaust budget;
      let total_flow = ref 0 and total_cost = ref 0 in
      let continue = ref true in
      let complete = ref true in
      (* Dijkstra on reduced costs (exact integer keys), binary heap: the
         classic SSP inner loop, kept bit-for-bit as the reference path. *)
      let dijkstra_binary () =
        incr phases;
        Array.fill dist 0 n max_int;
        dist.(source) <- 0;
        Heap_int.clear heap;
        Heap_int.add heap ~key:0 source;
        let rec run () =
          if not (Heap_int.is_empty heap) then begin
            let d = Heap_int.top_key heap and v = Heap_int.top_value heap in
            Heap_int.remove_top heap;
            incr pops;
            if d <= dist.(v) then
              for p = g.Csr.head.(v) to g.Csr.head.(v + 1) - 1 do
                incr arc_scans;
                if g.Csr.a_cap.(p) > 0 then begin
                  let w = g.Csr.a_dst.(p) in
                  let nd =
                    dist.(v) + g.Csr.a_cost.(p) + potential.(v) - potential.(w)
                  in
                  if nd < dist.(w) then begin
                    incr relaxations;
                    dist.(w) <- nd;
                    prev_v.(w) <- v;
                    prev_a.(w) <- p;
                    Heap_int.add heap ~key:nd w
                  end
                end
              done;
            run ()
          end
        in
        run ()
      in
      (* Same Dijkstra on the monotone radix heap.  Reduced costs of
         residual arcs out of reachable vertices are non-negative (Johnson
         potentials), so pushed keys never fall below the extracted
         minimum; Heap_radix.add raises loudly if that invariant is ever
         broken. *)
      let dijkstra_radix () =
        incr phases;
        Array.fill dist 0 n max_int;
        dist.(source) <- 0;
        let rheap = ws.Workspace.rheap in
        Heap_radix.clear rheap;
        Heap_radix.add rheap ~key:0 source;
        while not (Heap_radix.is_empty rheap) do
          let d = Heap_radix.top_key rheap
          and v = Heap_radix.top_value rheap in
          Heap_radix.remove_top rheap;
          incr pops;
          if d <= dist.(v) then
            for p = g.Csr.head.(v) to g.Csr.head.(v + 1) - 1 do
              incr arc_scans;
              if g.Csr.a_cap.(p) > 0 then begin
                let w = g.Csr.a_dst.(p) in
                let nd =
                  dist.(v) + g.Csr.a_cost.(p) + potential.(v) - potential.(w)
                in
                if nd < dist.(w) then begin
                  incr relaxations;
                  dist.(w) <- nd;
                  prev_v.(w) <- v;
                  prev_a.(w) <- p;
                  Heap_radix.add rheap ~key:nd w
                end
              end
            done
        done
      in
      let lift_potentials () =
        for v = 0 to n - 1 do
          if dist.(v) < max_int then potential.(v) <- potential.(v) + dist.(v)
        done
      in
      (* One augmentation along the Dijkstra parent tree (classic SSP
         step; also the progress guarantee behind the blocking phase). *)
      let augment_parent_tree () =
        let rec bottleneck v acc =
          if v = source then acc
          else bottleneck prev_v.(v) (min acc g.Csr.a_cap.(prev_a.(v)))
        in
        let push = min (bottleneck sink max_int) (max_flow - !total_flow) in
        let rec apply v =
          if v <> source then begin
            let p = prev_a.(v) in
            g.Csr.a_cap.(p) <- g.Csr.a_cap.(p) - push;
            let r = g.Csr.a_rev.(p) in
            g.Csr.a_cap.(r) <- g.Csr.a_cap.(r) + push;
            total_cost := !total_cost + (push * g.Csr.a_cost.(p));
            apply prev_v.(v)
          end
        in
        apply sink;
        incr augmentations;
        Budget.tick budget 1;
        total_flow := !total_flow + push
      in
      (* Blocking phase: after lift_potentials, arcs on some shortest path
         are exactly those with zero reduced cost.  A DFS with per-vertex
         arc cursors pushes flow along such tight paths until the source
         runs out of admissible arcs, so one Dijkstra feeds many
         augmentations.  Every successful push saturates at least one arc
         (or hits max_flow), and dead/cursor marks never resurrect within
         a phase, so the phase terminates.  Each augmenting path has zero
         reduced cost, i.e. it is a shortest path, so the SSP optimality
         invariant — and with it the exact (flow, cost) — is preserved. *)
      let blocking_phase () =
        let cur = ws.Workspace.cur
        and stack_v = ws.Workspace.stack_v
        and stack_a = ws.Workspace.stack_a
        and onstack = ws.Workspace.onstack
        and dead = ws.Workspace.dead in
        ws.Workspace.stamp <- ws.Workspace.stamp + 1;
        let stamp = ws.Workspace.stamp in
        Array.blit g.Csr.head 0 cur 0 n;
        let depth = ref 0 in
        stack_v.(0) <- source;
        onstack.(source) <- stamp;
        let pushes = ref 0 in
        let phase_done = ref false in
        while not !phase_done do
          let u = stack_v.(!depth) in
          if u = sink then begin
            (* Budget check at augmentation granularity, like the SSP
               loop's per-round check. *)
            if Budget.exhausted budget then begin
              complete := false;
              continue := false;
              phase_done := true
            end
            else begin
              let push = ref (max_flow - !total_flow) in
              for i = 1 to !depth do
                let c = g.Csr.a_cap.(stack_a.(i)) in
                if c < !push then push := c
              done;
              let push = !push in
              for i = 1 to !depth do
                let p = stack_a.(i) in
                g.Csr.a_cap.(p) <- g.Csr.a_cap.(p) - push;
                let r = g.Csr.a_rev.(p) in
                g.Csr.a_cap.(r) <- g.Csr.a_cap.(r) + push;
                total_cost := !total_cost + (push * g.Csr.a_cost.(p))
              done;
              total_flow := !total_flow + push;
              incr augmentations;
              incr pushes;
              Budget.tick budget 1;
              if !total_flow >= max_flow then phase_done := true
              else begin
                (* Retreat to the shallowest saturated arc and resume the
                   DFS just past it. *)
                let i = ref 1 in
                while g.Csr.a_cap.(stack_a.(!i)) > 0 do
                  incr i
                done;
                for d = !i to !depth do
                  onstack.(stack_v.(d)) <- 0
                done;
                depth := !i - 1;
                cur.(stack_v.(!depth)) <- stack_a.(!i) + 1
              end
            end
          end
          else begin
            let hi = g.Csr.head.(u + 1) in
              let p = ref cur.(u) in
              let found = ref (-1) in
              while !found < 0 && !p < hi do
                let q = !p in
                incr arc_scans;
                if g.Csr.a_cap.(q) > 0 then begin
                  let w = g.Csr.a_dst.(q) in
                  if
                    onstack.(w) <> stamp
                    && dead.(w) <> stamp
                    && g.Csr.a_cost.(q) + potential.(u) - potential.(w) = 0
                  then found := q
                end;
                if !found < 0 then incr p
              done;
              cur.(u) <- !p;
              if !found >= 0 then begin
                let w = g.Csr.a_dst.(!found) in
                incr depth;
                stack_v.(!depth) <- w;
                stack_a.(!depth) <- !found;
                onstack.(w) <- stamp
              end
            else begin
              dead.(u) <- stamp;
              onstack.(u) <- 0;
              if !depth = 0 then phase_done := true
              else begin
                decr depth;
                cur.(stack_v.(!depth)) <- stack_a.(!depth + 1) + 1
              end
            end
          end
        done;
        !pushes
      in
      while !continue && !total_flow < max_flow do
        if Tdf_util.Failpoint.fire "mcmf.timeout" then Budget.exhaust budget;
        if Budget.exhausted budget then begin
          (* Out of budget: stop augmenting and hand back the partial flow. *)
          complete := false;
          continue := false
        end
        else begin
          (match variant with
          | Ssp -> dijkstra_binary ()
          | Radix | Blocking -> dijkstra_radix ());
          if dist.(sink) = max_int then continue := false
          else begin
            lift_potentials ();
            match variant with
            | Ssp | Radix -> augment_parent_tree ()
            | Blocking ->
              (* The DFS can in principle dead-mark a vertex whose only
                 tight paths to the sink run through the then-current
                 stack; if a phase somehow pushes nothing, fall back to
                 one parent-tree augmentation so progress (and hence
                 termination) is unconditional. *)
              let pushes = blocking_phase () in
              if pushes = 0 && !continue && !total_flow < max_flow then
                augment_parent_tree ()
          end
        end
      done;
      Tdf_telemetry.count "mcmf.augmentations" !augmentations;
      Tdf_telemetry.count "mcmf.dijkstra_pops" !pops;
      Tdf_telemetry.count "mcmf.relaxations" !relaxations;
      Tdf_telemetry.count "mcmf.arc_scans" !arc_scans;
      Tdf_telemetry.count "mcmf.phases" !phases;
      Tdf_telemetry.incr ("mcmf.variant_" ^ variant_name variant);
      if not !complete then Tdf_telemetry.incr "mcmf.budget_stops";
      if telemetry && !augmentations > 0 then
        Tdf_telemetry.observe "mcmf.minor_words_per_aug"
          ((Gc.minor_words () -. mw0) /. float_of_int !augmentations);
      Ok { flow = !total_flow; cost = !total_cost; complete = !complete }
  end

(* ------------------------------------------------------------------ *)
(* Thin staged-graph shim (the historical Mcmf API)                    *)
(* ------------------------------------------------------------------ *)

type t = {
  builder : Builder.t;
  mutable frozen : Csr.t option;
  mutable ws : Workspace.t option;
}

let create n = { builder = Builder.create n; frozen = None; ws = None }

let n_vertices t = Builder.n_vertices t.builder

let add_edge t ~src ~dst ~cap ~cost =
  (* Staging a new edge after a freeze discards the frozen residual state:
     the next solve sees the full graph with pristine capacities. *)
  (match t.frozen with Some _ -> t.frozen <- None | None -> ());
  Builder.add_edge t.builder ~src ~dst ~cap ~cost

let csr t =
  match t.frozen with
  | Some g -> g
  | None ->
    let g = Csr.of_builder t.builder in
    t.frozen <- Some g;
    g

let workspace t =
  match t.ws with
  | Some ws -> ws
  | None ->
    let ws = Workspace.create () in
    t.ws <- Some ws;
    ws

let solve t ~source ~sink ?max_flow ?budget ?variant () =
  solve_csr (csr t) ~ws:(workspace t) ~source ~sink ?max_flow ?budget ?variant
    ()

let min_cost_flow t ~source ~sink ?max_flow () =
  match solve t ~source ~sink ?max_flow () with
  | Ok { flow; cost; _ } -> (flow, cost)
  | Error (Negative_cycle _) -> invalid_arg "Mcmf: negative cycle detected"

let flow_on t handle = Csr.flow_on (csr t) handle
