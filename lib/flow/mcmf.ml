type edge = { dst : int; mutable cap : int; cost : int; rev : int }

type t = {
  n : int;
  adj : edge array ref array;  (* adjacency as growable arrays *)
  mutable sizes : int array;
}

type arc = { a_src : int; a_dst : int; a_cap : int; a_cost : int }

type error = Negative_cycle of arc list

type solution = { flow : int; cost : int; complete : bool }

let error_to_string = function
  | Negative_cycle [] -> "negative cycle detected"
  | Negative_cycle arcs ->
    Printf.sprintf "negative cycle detected (%d arcs still relaxing: %s)"
      (List.length arcs)
      (arcs
      |> List.map (fun a ->
             Printf.sprintf "%d->%d cap %d cost %d" a.a_src a.a_dst a.a_cap
               a.a_cost)
      |> String.concat ", ")

let create n =
  { n; adj = Array.init n (fun _ -> ref [||]); sizes = Array.make n 0 }

let n_vertices t = t.n

let push_edge t v e =
  let arr = t.adj.(v) in
  let sz = t.sizes.(v) in
  if sz = Array.length !arr then begin
    let narr = Array.make (max 4 (2 * sz)) e in
    Array.blit !arr 0 narr 0 sz;
    arr := narr
  end;
  !arr.(sz) <- e;
  t.sizes.(v) <- sz + 1

let add_edge t ~src ~dst ~cap ~cost =
  assert (cap >= 0);
  let fwd_idx = t.sizes.(src) in
  let rev_idx = t.sizes.(dst) + if src = dst then 1 else 0 in
  push_edge t src { dst; cap; cost; rev = rev_idx };
  push_edge t dst { dst = src; cap = 0; cost = -cost; rev = fwd_idx };
  (src * 0x40000000) + fwd_idx

(* An edge handle encodes (vertex, index). *)
let decode_handle h = (h / 0x40000000, h mod 0x40000000)

let edge_at t v i = !(t.adj.(v)).(i)

let flow_on t handle =
  let v, i = decode_handle handle in
  let e = edge_at t v i in
  (* flow = capacity currently on the reverse edge *)
  (edge_at t e.dst e.rev).cap

(* Residual arcs that can still relax after Bellman–Ford converged or ran
   out of passes: exactly the arc set witnessing a negative cycle. *)
let relaxable_arcs t dist =
  let acc = ref [] in
  for v = 0 to t.n - 1 do
    if dist.(v) < max_int then
      for i = 0 to t.sizes.(v) - 1 do
        let e = edge_at t v i in
        if e.cap > 0 && dist.(v) + e.cost < dist.(e.dst) then
          acc := { a_src = v; a_dst = e.dst; a_cap = e.cap; a_cost = e.cost } :: !acc
      done
  done;
  List.rev !acc

let bellman_ford t source dist =
  Array.fill dist 0 t.n max_int;
  dist.(source) <- 0;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= t.n do
    changed := false;
    incr iters;
    for v = 0 to t.n - 1 do
      if dist.(v) < max_int then
        for i = 0 to t.sizes.(v) - 1 do
          let e = edge_at t v i in
          if e.cap > 0 && dist.(v) + e.cost < dist.(e.dst) then begin
            dist.(e.dst) <- dist.(v) + e.cost;
            changed := true
          end
        done
    done
  done;
  Tdf_telemetry.count "mcmf.bellman_ford_passes" !iters;
  if !iters > t.n then Error (relaxable_arcs t dist) else Ok ()

let solve t ~source ~sink ?(max_flow = max_int)
    ?(budget = Tdf_util.Budget.unlimited) () =
  Tdf_telemetry.span "mcmf.min_cost_flow" @@ fun () ->
  if Tdf_util.Failpoint.fire "mcmf.solve" then Error (Negative_cycle [])
  else begin
    let pops = ref 0 and relaxations = ref 0 and augmentations = ref 0 in
    let potential = Array.make t.n 0 in
    let has_negative =
      Array.exists
        (fun (arr : edge array ref) ->
          Array.exists (fun e -> e.cap > 0 && e.cost < 0) !arr)
        t.adj
    in
    let bf_error = ref None in
    if has_negative then begin
      let dist = Array.make t.n max_int in
      (match bellman_ford t source dist with
      | Error arcs -> bf_error := Some (Negative_cycle arcs)
      | Ok () ->
        for v = 0 to t.n - 1 do
          potential.(v) <- (if dist.(v) = max_int then 0 else dist.(v))
        done)
    end;
    match !bf_error with
    | Some e -> Error e
    | None ->
      if Tdf_util.Failpoint.fire "mcmf.timeout" then
        Tdf_util.Budget.exhaust budget;
      let dist = Array.make t.n max_int in
      let prev_v = Array.make t.n (-1) in
      let prev_e = Array.make t.n (-1) in
      let total_flow = ref 0 and total_cost = ref 0 in
      let continue = ref true in
      let complete = ref true in
      while !continue && !total_flow < max_flow do
        if Tdf_util.Failpoint.fire "mcmf.timeout" then
          Tdf_util.Budget.exhaust budget;
        if Tdf_util.Budget.exhausted budget then begin
          (* Out of budget: stop augmenting and hand back the partial flow. *)
          complete := false;
          continue := false
        end
        else begin
          (* Dijkstra on reduced costs. *)
          Array.fill dist 0 t.n max_int;
          dist.(source) <- 0;
          let heap = Tdf_util.Heap.create () in
          Tdf_util.Heap.add heap ~key:0. source;
          let rec run () =
            match Tdf_util.Heap.pop heap with
            | None -> ()
            | Some (d, v) ->
              incr pops;
              let d = int_of_float d in
              if d <= dist.(v) then begin
                for i = 0 to t.sizes.(v) - 1 do
                  let e = edge_at t v i in
                  if e.cap > 0 then begin
                    let nd =
                      dist.(v) + e.cost + potential.(v) - potential.(e.dst)
                    in
                    if nd < dist.(e.dst) then begin
                      incr relaxations;
                      dist.(e.dst) <- nd;
                      prev_v.(e.dst) <- v;
                      prev_e.(e.dst) <- i;
                      Tdf_util.Heap.add heap ~key:(float_of_int nd) e.dst
                    end
                  end
                done
              end;
              run ()
          in
          run ();
          if dist.(sink) = max_int then continue := false
          else begin
            for v = 0 to t.n - 1 do
              if dist.(v) < max_int then potential.(v) <- potential.(v) + dist.(v)
            done;
            (* Bottleneck along the path. *)
            let rec bottleneck v acc =
              if v = source then acc
              else begin
                let e = edge_at t prev_v.(v) prev_e.(v) in
                bottleneck prev_v.(v) (min acc e.cap)
              end
            in
            let push = min (bottleneck sink max_int) (max_flow - !total_flow) in
            let rec apply v =
              if v <> source then begin
                let e = edge_at t prev_v.(v) prev_e.(v) in
                e.cap <- e.cap - push;
                let r = edge_at t v e.rev in
                r.cap <- r.cap + push;
                total_cost := !total_cost + (push * e.cost);
                apply prev_v.(v)
              end
            in
            apply sink;
            incr augmentations;
            Tdf_util.Budget.tick budget 1;
            total_flow := !total_flow + push
          end
        end
      done;
      Tdf_telemetry.count "mcmf.augmentations" !augmentations;
      Tdf_telemetry.count "mcmf.dijkstra_pops" !pops;
      Tdf_telemetry.count "mcmf.relaxations" !relaxations;
      if not !complete then Tdf_telemetry.incr "mcmf.budget_stops";
      Ok { flow = !total_flow; cost = !total_cost; complete = !complete }
  end

let min_cost_flow t ~source ~sink ?max_flow () =
  match solve t ~source ~sink ?max_flow () with
  | Ok { flow; cost; _ } -> (flow, cost)
  | Error (Negative_cycle _) -> invalid_arg "Mcmf: negative cycle detected"
