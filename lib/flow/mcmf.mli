(** Generic minimum-cost maximum-flow on directed graphs.

    Successive shortest paths with Johnson potentials (Dijkstra per
    augmentation); an initial Bellman–Ford pass makes negative edge costs
    admissible.  This is the textbook solver the paper's §III-A refers to:
    with uniform cell widths, legalization reduces exactly to this problem,
    and the library is used by tests and by [examples/uniform_optimal.exe]
    to cross-check 3D-Flow against provably optimal solutions.

    {2 Solver core}

    The numeric core is split into three layers so callers on the hot path
    control allocation:

    - {!Builder} stages edges into flat growable [int array]s;
    - {!Csr} is the frozen compressed-sparse-row residual graph: five
      [int array] fields ([head]/[dst]/[cap]/[cost]/[rev]), the only
      mutable state being the residual capacities (resettable with
      {!Csr.reset_caps} for repeated solves);
    - {!Workspace} holds the per-solve scratch (dist/prev/potential labels
      and the monomorphic int-keyed heap), allocated once and reused
      across {!solve_csr} calls.

    The classic staged-graph API ({!create}/{!add_edge}/{!solve}) is kept
    as a thin shim over these layers: it freezes the builder on first
    solve and caches one workspace per graph.  Arc ordering in the frozen
    graph matches staging order, so the CSR solver returns bit-identical
    [(flow, cost)] to the historical adjacency-list implementation. *)

type arc = { a_src : int; a_dst : int; a_cap : int; a_cost : int }
(** A residual arc, reported in {!error} diagnostics. *)

type error = Negative_cycle of arc list
(** The graph admits a negative-cost residual cycle, so shortest-path
    augmentation is ill-defined.  The payload is the set of residual arcs
    that could still relax after [n] Bellman–Ford passes — every negative
    cycle consists of such arcs, which localizes the offending subgraph
    for the caller (empty when the failure was injected by the
    ["mcmf.solve"] failpoint). *)

val error_to_string : error -> string

type solution = {
  flow : int;
  cost : int;
  complete : bool;
      (** [false] when a budget ran out mid-solve: [flow]/[cost] describe
          the best-effort partial flow pushed so far. *)
}

module Builder : sig
  type t

  val create : ?edges_hint:int -> int -> t
  (** [create n] stages a graph on vertices [0 .. n-1]; [edges_hint]
      pre-sizes the edge arrays. *)

  val n_vertices : t -> int

  val n_edges : t -> int

  val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
  (** Stages a directed edge and returns its handle: the explicit arc id
      [0 .. n_edges-1] in staging order (no vertex/index bit-packing, so
      handles never alias regardless of graph size).  Requires [cap >= 0]
      and in-range endpoints ([Invalid_argument] otherwise).  Self-loops
      and parallel edges are allowed. *)
end

module Csr : sig
  type t
  (** Frozen residual graph in compressed-sparse-row form.  Immutable
      except for the residual capacities, which {!solve_csr} updates and
      {!reset_caps} restores. *)

  val of_builder : Builder.t -> t
  (** Freeze the staged edges.  The builder remains usable (freezing again
      yields an independent graph with pristine capacities). *)

  val n_vertices : t -> int

  val n_edges : t -> int
  (** Staged (forward) edges; the residual graph holds twice as many arcs. *)

  val reset_caps : t -> unit
  (** Restore all residual capacities to their staged values, undoing any
      flow pushed by previous solves — the cheap path to repeated solves
      on one graph. *)

  val flow_on : t -> int -> int
  (** Flow currently routed through an edge handle (as returned by
      {!Builder.add_edge}). *)
end

module Workspace : sig
  type t
  (** Reusable solver scratch: distance/parent/potential labels, the
      Dijkstra heaps (binary and radix) and the blocking-phase DFS
      cursors.  Sized lazily to the largest graph solved with it; sharing
      one workspace across solves (even of different graphs) changes no
      results — only allocation. *)

  val create : unit -> t
end

(** {2 Solver variants}

    Three interchangeable engines behind the same interface, all returning
    the identical [(flow, cost)] optimum (max flow is unique; min cost at
    max flow is unique — only per-arc flow splits may differ between
    variants, so {!flow_on} readings are variant-dependent on ties):

    - [Ssp]: the classic successive-shortest-path loop on the binary
      {!Tdf_util.Heap_int} — the bit-for-bit reference path;
    - [Radix]: the same loop on the monotone {!Tdf_util.Heap_radix},
      exploiting non-negative exact integer reduced costs (O(1) pushes);
    - [Blocking]: radix Dijkstra plus multi-augmentation — after each
      potential update a DFS pushes flow along every zero-reduced-cost
      (i.e. shortest) path it can find, so one SSSP feeds many
      augmentations.  The default: 3D-Flow's shallow grid graphs make
      this the asymptotic win at scale 1.0.

    The process default comes from [TDFLOW_SOLVER=ssp|radix|blocking]
    (unset: [Blocking]) and can be overridden at runtime with
    {!set_default_variant}; a partial (budget-exhausted) solve's
    [flow]/[cost] may legitimately differ between variants since they stop
    at different augmentation boundaries. *)

type variant = Ssp | Radix | Blocking

val variant_name : variant -> string

val variant_of_string : string -> variant option
(** Case-insensitive; [None] on unknown names. *)

val default_variant : unit -> variant
(** The variant used when [?variant] is omitted: the
    {!set_default_variant} override if any, else [TDFLOW_SOLVER], else
    [Blocking]. *)

val set_default_variant : variant -> unit
(** Process-wide override, taking precedence over [TDFLOW_SOLVER]; used by
    cross-variant differential tests to steer call sites that don't thread
    [?variant]. *)

val solve_csr :
  Csr.t ->
  ws:Workspace.t ->
  source:int ->
  sink:int ->
  ?max_flow:int ->
  ?budget:Tdf_util.Budget.t ->
  ?variant:variant ->
  unit ->
  (solution, error) result
(** Core solver: push up to [max_flow] units along successive shortest
    paths on the frozen graph, reusing [ws] for all scratch.  Semantics
    are those of {!solve}; reusing a workspace bumps the ["mcmf.ws_reuse"]
    telemetry counter, and (when telemetry is enabled) minor-heap
    allocation per augmentation is reported as
    ["mcmf.minor_words_per_aug"].  Per-solve work is surfaced through the
    ["mcmf.arc_scans"] (arcs examined by Dijkstra relaxation and the
    blocking DFS) and ["mcmf.phases"] (SSSP rounds) counters, which is how
    the bench measures the asymptotic win of the non-[Ssp] variants. *)

(** {2 Staged-graph shim} *)

type t
(** A staged graph plus its lazily frozen {!Csr.t} and cached
    {!Workspace.t}.  Residual state survives across calls exactly as the
    historical implementation's did: solving twice continues on the
    residual graph, while staging a new edge after a solve starts over
    from pristine capacities. *)

val create : int -> t
(** [create n] makes an empty graph on vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a directed edge and its residual reverse edge; returns the edge's
    arc-id handle for {!flow_on} (see {!Builder.add_edge}).  Requires
    [cap >= 0]. *)

val solve :
  t ->
  source:int ->
  sink:int ->
  ?max_flow:int ->
  ?budget:Tdf_util.Budget.t ->
  ?variant:variant ->
  unit ->
  (solution, error) result
(** [solve t ~source ~sink ()] pushes up to [max_flow] (default: as much
    as possible) units along successive shortest paths.  Each augmentation
    ticks [budget] once; when the budget exhausts, the partial flow
    accumulated so far is returned with [complete = false] instead of
    running to max flow.  Fault-injection sites: ["mcmf.solve"] (forces
    [Error (Negative_cycle [])]) and ["mcmf.timeout"] (exhausts the
    budget). *)

val min_cost_flow :
  t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * int
(** Raising convenience wrapper over {!solve} with no budget: returns
    [(flow, cost)] and raises [Invalid_argument] on a negative cycle (the
    paper's networks have none: negative edges only point back toward
    initial positions). *)

val flow_on : t -> int -> int
(** Flow currently routed through an edge handle. *)
