(** Generic minimum-cost maximum-flow on directed graphs.

    Successive shortest paths with Johnson potentials (Dijkstra per
    augmentation); an initial Bellman–Ford pass makes negative edge costs
    admissible.  This is the textbook solver the paper's §III-A refers to:
    with uniform cell widths, legalization reduces exactly to this problem,
    and the library is used by tests and by [examples/uniform_optimal.exe]
    to cross-check 3D-Flow against provably optimal solutions. *)

type t

type arc = { a_src : int; a_dst : int; a_cap : int; a_cost : int }
(** A residual arc, reported in {!error} diagnostics. *)

type error = Negative_cycle of arc list
(** The graph admits a negative-cost residual cycle, so shortest-path
    augmentation is ill-defined.  The payload is the set of residual arcs
    that could still relax after [n] Bellman–Ford passes — every negative
    cycle consists of such arcs, which localizes the offending subgraph
    for the caller (empty when the failure was injected by the
    ["mcmf.solve"] failpoint). *)

val error_to_string : error -> string

type solution = {
  flow : int;
  cost : int;
  complete : bool;
      (** [false] when a budget ran out mid-solve: [flow]/[cost] describe
          the best-effort partial flow pushed so far. *)
}

val create : int -> t
(** [create n] makes an empty graph on vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a directed edge and its residual reverse edge; returns an edge
    handle for {!flow_on}.  Requires [cap >= 0]. *)

val solve :
  t ->
  source:int ->
  sink:int ->
  ?max_flow:int ->
  ?budget:Tdf_util.Budget.t ->
  unit ->
  (solution, error) result
(** [solve t ~source ~sink ()] pushes up to [max_flow] (default: as much
    as possible) units along successive shortest paths.  Each augmentation
    ticks [budget] once; when the budget exhausts, the partial flow
    accumulated so far is returned with [complete = false] instead of
    running to max flow.  Fault-injection sites: ["mcmf.solve"] (forces
    [Error (Negative_cycle [])]) and ["mcmf.timeout"] (exhausts the
    budget). *)

val min_cost_flow :
  t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * int
(** Raising convenience wrapper over {!solve} with no budget: returns
    [(flow, cost)] and raises [Invalid_argument] on a negative cycle (the
    paper's networks have none: negative edges only point back toward
    initial positions). *)

val flow_on : t -> int -> int
(** Flow currently routed through an edge handle. *)
