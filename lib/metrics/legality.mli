(** Legality audit of a placement: every cell on a valid die, y on a row,
    x on the site grid, footprint inside one row segment (hence inside the
    outline and clear of macros), and no two cells overlapping. *)

type report = {
  n_violations : int;
  messages : string list;  (** first few violations, human-readable *)
  overlap_area : int;  (** total pairwise cell-overlap area *)
}

val check : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> report

val is_legal : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> bool

val brief : report -> string
(** One-line human-readable summary ("legal" or a violation count with the
    first message) — what the resilient pipeline and the CLI log after
    each attempt. *)
