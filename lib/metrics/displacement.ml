module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Placement = Tdf_netlist.Placement

type summary = {
  avg_norm : float;
  max_norm : float;
  avg_raw : float;
  max_raw : int;
  avg_weighted : float;
}

let per_cell design p c =
  let raw = Placement.displacement design p c in
  let h_r = (Design.die design p.Placement.die.(c)).Die.row_height in
  float_of_int raw /. float_of_int h_r

(* Partial accumulators per fixed-size cell chunk, merged in chunk order.
   The partition depends only on the cell count (not the pool size), so
   the float sums associate identically at every --jobs setting; designs
   smaller than one chunk accumulate in the seed's sequential order. *)
type acc = {
  mutable sum_norm : float;
  mutable a_max_norm : float;
  mutable sum_raw : int;
  mutable a_max_raw : int;
  mutable sum_weighted : float;
  mutable sum_weight : float;
}

let chunk = 4096

let summary design p =
  let n = Placement.n_cells p in
  if n = 0 then
    { avg_norm = 0.; max_norm = 0.; avg_raw = 0.; max_raw = 0; avg_weighted = 0. }
  else begin
    let a =
      Tdf_par.reduce_chunked ~chunk ~n
        ~map:(fun lo hi ->
          let a =
            {
              sum_norm = 0.;
              a_max_norm = 0.;
              sum_raw = 0;
              a_max_raw = 0;
              sum_weighted = 0.;
              sum_weight = 0.;
            }
          in
          for c = lo to hi - 1 do
            let raw = Placement.displacement design p c in
            let norm = per_cell design p c in
            let weight = (Design.cell design c).Tdf_netlist.Cell.weight in
            a.sum_norm <- a.sum_norm +. norm;
            if norm > a.a_max_norm then a.a_max_norm <- norm;
            a.sum_raw <- a.sum_raw + raw;
            if raw > a.a_max_raw then a.a_max_raw <- raw;
            a.sum_weighted <- a.sum_weighted +. (weight *. norm);
            a.sum_weight <- a.sum_weight +. weight
          done;
          a)
        ~merge:(fun x y ->
          {
            sum_norm = x.sum_norm +. y.sum_norm;
            a_max_norm = Float.max x.a_max_norm y.a_max_norm;
            sum_raw = x.sum_raw + y.sum_raw;
            a_max_raw = max x.a_max_raw y.a_max_raw;
            sum_weighted = x.sum_weighted +. y.sum_weighted;
            sum_weight = x.sum_weight +. y.sum_weight;
          })
        ~init:
          {
            sum_norm = 0.;
            a_max_norm = 0.;
            sum_raw = 0;
            a_max_raw = 0;
            sum_weighted = 0.;
            sum_weight = 0.;
          }
    in
    {
      avg_norm = a.sum_norm /. float_of_int n;
      max_norm = a.a_max_norm;
      avg_raw = float_of_int a.sum_raw /. float_of_int n;
      max_raw = a.a_max_raw;
      avg_weighted = a.sum_weighted /. a.sum_weight;
    }
  end
