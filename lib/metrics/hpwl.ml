module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Placement = Tdf_netlist.Placement

let net_hpwl centers (net : Net.t) =
  let min_x = ref infinity and max_x = ref neg_infinity in
  let min_y = ref infinity and max_y = ref neg_infinity in
  Array.iter
    (fun pin ->
      let cx, cy = centers pin in
      if cx < !min_x then min_x := cx;
      if cx > !max_x then max_x := cx;
      if cy < !min_y then min_y := cy;
      if cy > !max_y then max_y := cy)
    net.Net.pins;
  !max_x -. !min_x +. (!max_y -. !min_y)

(* Per-net HPWLs are reduced over fixed-size chunks (partial sums merged
   left-to-right in chunk order).  The partition depends only on the net
   count, never on the pool size, so the float total is bit-identical for
   every --jobs setting; a design smaller than one chunk sums in exactly
   the seed's sequential order. *)
let chunk = 4096

let total design centers =
  let nets = design.Design.nets in
  let n = Array.length nets in
  Tdf_par.reduce_chunked ~chunk ~n
    ~map:(fun lo hi ->
      let acc = ref 0. in
      for i = lo to hi - 1 do
        acc := !acc +. net_hpwl centers nets.(i)
      done;
      !acc)
    ~merge:( +. ) ~init:0.

let of_placement design p =
  let centers c =
    let cell = Design.cell design c in
    let d = p.Placement.die.(c) in
    let w = Cell.width_on cell d in
    let h = (Design.die design d).Die.row_height in
    ( float_of_int p.Placement.x.(c) +. (float_of_int w /. 2.),
      float_of_int p.Placement.y.(c) +. (float_of_int h /. 2.) )
  in
  total design centers

let of_global design =
  let nd = Design.n_dies design in
  let centers c =
    let cell = Design.cell design c in
    let d = Cell.nearest_die cell ~n_dies:nd in
    let w = Cell.width_on cell d in
    let h = (Design.die design d).Die.row_height in
    ( float_of_int cell.Cell.gp_x +. (float_of_int w /. 2.),
      float_of_int cell.Cell.gp_y +. (float_of_int h /. 2.) )
  in
  total design centers

let increase_pct design p =
  let g = of_global design in
  if g <= 0. then 0. else 100. *. (of_placement design p -. g) /. g
