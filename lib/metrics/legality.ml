module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Placement = Tdf_netlist.Placement
module Interval = Tdf_geometry.Interval

type report = {
  n_violations : int;
  messages : string list;
  overlap_area : int;
}

let max_messages = 20

let check design p =
  let n = Placement.n_cells p in
  let nd = Design.n_dies design in
  let count = ref 0 and messages = ref [] and overlap = ref 0 in
  let add fmt =
    Format.kasprintf
      (fun s ->
        incr count;
        if List.length !messages < max_messages then messages := s :: !messages)
      fmt
  in
  let seg_cache = Hashtbl.create 256 in
  let segments die row =
    match Hashtbl.find_opt seg_cache (die, row) with
    | Some s -> s
    | None ->
      let s = Tdf_grid.Grid.segments_of_row design die row in
      Hashtbl.add seg_cache (die, row) s;
      s
  in
  (* per-(die,row) buckets for the overlap sweep *)
  let buckets = Hashtbl.create 256 in
  for c = 0 to n - 1 do
    let d = p.Placement.die.(c) in
    if d < 0 || d >= nd then add "cell %d on invalid die %d" c d
    else begin
      let die = Design.die design d in
      let cell = Design.cell design c in
      let w = Cell.width_on cell d in
      let x = p.Placement.x.(c) and y = p.Placement.y.(c) in
      let oy = die.Die.outline.Tdf_geometry.Rect.y in
      let ox = die.Die.outline.Tdf_geometry.Rect.x in
      if (y - oy) mod die.Die.row_height <> 0 then
        add "cell %d y=%d not row-aligned on die %d" c y d
      else begin
        let row = (y - oy) / die.Die.row_height in
        if row < 0 || row >= Die.num_rows die then
          add "cell %d on out-of-range row %d of die %d" c row d
        else begin
          if (x - ox) mod die.Die.site_width <> 0 then
            add "cell %d x=%d off the site grid of die %d" c x d;
          let span = Interval.make x (x + w) in
          let inside =
            List.exists
              (fun (s : Interval.t) -> s.Interval.lo <= x && x + w <= s.Interval.hi)
              (segments d row)
          in
          if not inside then
            add "cell %d footprint %a outside row segments (die %d row %d)" c
              Interval.pp span d row;
          let key = (d, row) in
          let prev = try Hashtbl.find buckets key with Not_found -> [] in
          Hashtbl.replace buckets key ((c, x, w) :: prev)
        end
      end
    end
  done;
  Hashtbl.iter
    (fun (d, row) cells ->
      let sorted = List.sort (fun (_, x1, _) (_, x2, _) -> compare x1 x2) cells in
      let rec sweep = function
        | (c1, x1, w1) :: ((c2, x2, w2) :: _ as rest) ->
          if x1 + w1 > x2 then begin
            let ov = min (x1 + w1) (x2 + w2) - x2 in
            overlap := !overlap + ov;
            add "cells %d and %d overlap by %d on die %d row %d" c1 c2 ov d row
          end;
          sweep rest
        | [ _ ] | [] -> ()
      in
      sweep sorted)
    buckets;
  { n_violations = !count; messages = List.rev !messages; overlap_area = !overlap }

let is_legal design p = (check design p).n_violations = 0

let brief r =
  if r.n_violations = 0 then "legal"
  else
    Printf.sprintf "%d violation%s (overlap area %d)%s" r.n_violations
      (if r.n_violations = 1 then "" else "s")
      r.overlap_area
      (match r.messages with m :: _ -> "; first: " ^ m | [] -> "")
