(** Hybrid-bonding terminal assignment for F2F-stacked designs.

    In the ICCAD 2022/2023 F2F setting (§II-A), every net with pins on
    both dies must be routed through exactly one bonding terminal on the
    face-to-face interface.  Terminals occupy slots of a uniform grid
    (terminal size + spacing, as the contests specify) and no two nets may
    share a slot.

    [assign] picks one slot per cut net minimizing the total added
    wirelength, by solving a restricted assignment problem with the
    {!Tdf_flow.Mcmf} substrate: each net is connected to its k nearest
    free-slot candidates, and leftovers (contended regions) fall back to an
    expanding-ring greedy.  Deterministic. *)

type grid = {
  origin_x : int;  (** x of slot (0,0)'s center *)
  origin_y : int;
  pitch : int;  (** terminal size + spacing *)
  nx : int;  (** slots per row *)
  ny : int;
}

val make_grid :
  Tdf_netlist.Design.t -> size:int -> spacing:int -> grid
(** Slot grid covering the common die outline. *)

val slot_center : grid -> int * int -> int * int
(** Center coordinates of slot [(i, j)]. *)

val cut_nets : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> int list
(** Nets with pins on more than one die, in increasing id. *)

type assignment = {
  terminals : (int * (int * int)) list;
      (** net id → slot (i, j); one entry per cut net *)
  total_cost : int;
      (** Σ over nets of the slot's Manhattan distance to the net's pin
          bounding box (0 when the slot is inside the box) *)
}

type error =
  | Insufficient_slots of { nets : int; slots : int }
      (** More cut nets than the terminal grid has slots: the pigeonhole
          bound fails before any optimization is attempted. *)
  | No_free_slot of { net : int }
      (** The expanding-ring fallback exhausted the grid for this net
          (only reachable when slots are contended to exhaustion). *)

val error_to_string : error -> string

val assign_result :
  ?candidates:int ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  grid ->
  (assignment, error) result
(** [candidates] (default 24) bounds each net's candidate slots in the
    MCMF phase.  Infeasible instances come back as [Error] rather than an
    exception, so the pipeline can degrade (e.g. re-run with a denser
    terminal grid). *)

val assign :
  ?candidates:int ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  grid ->
  assignment
(** Raising wrapper over {!assign_result}: raises [Failure] on error. *)

val check :
  Tdf_netlist.Design.t -> grid -> assignment -> (unit, string) result
(** Every cut net assigned exactly once, slots distinct and on the grid. *)

val hpwl_with_terminals :
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  grid ->
  assignment ->
  float
(** Contest-style wirelength: for an uncut net, the planar HPWL; for a cut
    net, the per-die HPWL of its pins on each die with the terminal added
    to both boxes. *)
