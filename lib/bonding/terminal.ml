module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Mcmf = Tdf_flow.Mcmf

type grid = {
  origin_x : int;
  origin_y : int;
  pitch : int;
  nx : int;
  ny : int;
}

let make_grid design ~size ~spacing =
  assert (size > 0 && spacing >= 0);
  let o = (Design.die design 0).Die.outline in
  let pitch = size + spacing in
  {
    origin_x = o.Rect.x + (size / 2);
    origin_y = o.Rect.y + (size / 2);
    pitch;
    nx = max 1 ((o.Rect.w - size) / pitch + 1);
    ny = max 1 ((o.Rect.h - size) / pitch + 1);
  }

let slot_center g (i, j) = (g.origin_x + (i * g.pitch), g.origin_y + (j * g.pitch))

let pin_center design p c =
  let cell = Design.cell design c in
  let d = p.Placement.die.(c) in
  let w = Cell.width_on cell d in
  let h = (Design.die design d).Die.row_height in
  (p.Placement.x.(c) + (w / 2), p.Placement.y.(c) + (h / 2))

let cut_nets design p =
  Array.to_list design.Design.nets
  |> List.filter_map (fun (n : Net.t) ->
         let dies =
           Array.fold_left
             (fun acc pin ->
               let d = p.Placement.die.(pin) in
               if List.mem d acc then acc else d :: acc)
             [] n.Net.pins
         in
         if List.length dies > 1 then Some n.Net.id else None)

(* Bounding box of a net's pin centers. *)
let net_bbox design p (n : Net.t) =
  let min_x = ref max_int and max_x = ref min_int in
  let min_y = ref max_int and max_y = ref min_int in
  Array.iter
    (fun pin ->
      let x, y = pin_center design p pin in
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y)
    n.Net.pins;
  (!min_x, !min_y, !max_x, !max_y)

(* Distance from a point to a bounding box (0 inside). *)
let bbox_dist (x, y) (min_x, min_y, max_x, max_y) =
  let dx = if x < min_x then min_x - x else if x > max_x then x - max_x else 0 in
  let dy = if y < min_y then min_y - y else if y > max_y then y - max_y else 0 in
  dx + dy

type assignment = {
  terminals : (int * (int * int)) list;
  total_cost : int;
}

type error =
  | Insufficient_slots of { nets : int; slots : int }
  | No_free_slot of { net : int }

let error_to_string = function
  | Insufficient_slots { nets; slots } ->
    Printf.sprintf "Terminal.assign: %d cut nets but only %d slots" nets slots
  | No_free_slot { net } ->
    Printf.sprintf "Terminal.assign: no free slot reachable for net %d" net

exception Assign_error of error

let clamp v lo hi = max lo (min hi v)

(* Slots of the square ring at Chebyshev radius r around (ci, cj), clipped
   to the grid. *)
let ring g (ci, cj) r =
  if r = 0 then
    if ci >= 0 && ci < g.nx && cj >= 0 && cj < g.ny then [ (ci, cj) ] else []
  else begin
    let acc = ref [] in
    let push i j = if i >= 0 && i < g.nx && j >= 0 && j < g.ny then acc := (i, j) :: !acc in
    for i = ci - r to ci + r do
      push i (cj - r);
      push i (cj + r)
    done;
    for j = cj - r + 1 to cj + r - 1 do
      push (ci - r) j;
      push (ci + r) j
    done;
    !acc
  end

let nearest_slot_of_point g (x, y) =
  ( clamp ((x - g.origin_x + (g.pitch / 2)) / g.pitch) 0 (g.nx - 1),
    clamp ((y - g.origin_y + (g.pitch / 2)) / g.pitch) 0 (g.ny - 1) )

(* k nearest candidate slots of a net, by ring expansion around the slot
   closest to the bbox center (cost-sorted). *)
let candidates_of design p g (n : Net.t) k =
  let bbox = net_bbox design p n in
  let min_x, min_y, max_x, max_y = bbox in
  let center = ((min_x + max_x) / 2, (min_y + max_y) / 2) in
  let home = nearest_slot_of_point g center in
  let found = ref [] and count = ref 0 and r = ref 0 in
  (* Enough rings to reach k slots even at a grid corner. *)
  let max_r = g.nx + g.ny in
  while !count < k && !r <= max_r do
    let slots = ring g home !r in
    List.iter
      (fun s ->
        found := (s, bbox_dist (slot_center g s) bbox) :: !found;
        incr count)
      slots;
    incr r
  done;
  List.sort (fun (_, a) (_, b) -> compare a b) !found

let assign_result ?(candidates = 24) design p g =
  try
    let nets =
      cut_nets design p |> List.map (fun id -> design.Design.nets.(id))
    in
    let n_nets = List.length nets in
    if n_nets > g.nx * g.ny then
      raise
        (Assign_error
           (Insufficient_slots { nets = n_nets; slots = g.nx * g.ny }));
  (* Restricted assignment problem on the k-nearest candidates. *)
  let slot_vertex = Hashtbl.create (4 * n_nets) in
  let slot_of_vertex = Hashtbl.create (4 * n_nets) in
  let next_vertex = ref (1 + n_nets) in
  let net_cands =
    List.mapi
      (fun idx (n : Net.t) ->
        let cands = candidates_of design p g n candidates in
        List.iter
          (fun (s, _) ->
            if not (Hashtbl.mem slot_vertex s) then begin
              Hashtbl.add slot_vertex s !next_vertex;
              Hashtbl.add slot_of_vertex !next_vertex s;
              incr next_vertex
            end)
          cands;
        (idx, n, cands))
      nets
  in
  let sink = !next_vertex in
  let mc = Mcmf.create (sink + 1) in
  let edge_handles = Hashtbl.create (4 * n_nets) in
  List.iter
    (fun (idx, _, cands) ->
      ignore (Mcmf.add_edge mc ~src:0 ~dst:(1 + idx) ~cap:1 ~cost:0);
      List.iter
        (fun (s, cost) ->
          let h =
            Mcmf.add_edge mc ~src:(1 + idx) ~dst:(Hashtbl.find slot_vertex s)
              ~cap:1 ~cost
          in
          Hashtbl.add edge_handles (idx, s) h)
        cands)
    net_cands;
  Hashtbl.iter
    (fun _ v -> ignore (Mcmf.add_edge mc ~src:v ~dst:sink ~cap:1 ~cost:0))
    slot_vertex;
  let _flow, _cost = Mcmf.min_cost_flow mc ~source:0 ~sink () in
  let taken = Hashtbl.create (2 * n_nets) in
  let result = ref [] and total = ref 0 in
  let unassigned = ref [] in
  List.iter
    (fun (idx, (n : Net.t), cands) ->
      let chosen =
        List.find_opt
          (fun (s, _) ->
            match Hashtbl.find_opt edge_handles (idx, s) with
            | Some h -> Mcmf.flow_on mc h = 1
            | None -> false)
          cands
      in
      match chosen with
      | Some (s, cost) ->
        Hashtbl.replace taken s ();
        result := (n.Net.id, s) :: !result;
        total := !total + cost
      | None -> unassigned := (n, cands) :: !unassigned)
    net_cands;
  (* Fallback for contended nets: expanding rings to the first free slot. *)
  List.iter
    (fun ((n : Net.t), _) ->
      let bbox = net_bbox design p n in
      let min_x, min_y, max_x, max_y = bbox in
      let home = nearest_slot_of_point g ((min_x + max_x) / 2, (min_y + max_y) / 2) in
      let rec hunt r =
        if r > g.nx + g.ny then
          raise (Assign_error (No_free_slot { net = n.Net.id }))
        else begin
          let free =
            ring g home r
            |> List.filter (fun s -> not (Hashtbl.mem taken s))
            |> List.map (fun s -> (s, bbox_dist (slot_center g s) bbox))
            |> List.sort (fun (_, a) (_, b) -> compare a b)
          in
          match free with
          | (s, cost) :: _ ->
            Hashtbl.replace taken s ();
            result := (n.Net.id, s) :: !result;
            total := !total + cost
          | [] -> hunt (r + 1)
        end
      in
      hunt 0)
    !unassigned;
  Ok
    {
      terminals = List.sort (fun (a, _) (b, _) -> compare a b) !result;
      total_cost = !total;
    }
  with Assign_error e -> Error e

let assign ?candidates design p g =
  match assign_result ?candidates design p g with
  | Ok a -> a
  | Error e -> failwith (error_to_string e)

let check design g a =
  let seen = Hashtbl.create 64 in
  let result = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> result := Error s) fmt in
  List.iter
    (fun (net, (i, j)) ->
      if net < 0 || net >= Array.length design.Design.nets then
        fail "terminal for unknown net %d" net;
      if i < 0 || i >= g.nx || j < 0 || j >= g.ny then
        fail "net %d terminal (%d,%d) off the grid" net i j;
      if Hashtbl.mem seen (i, j) then fail "slot (%d,%d) assigned twice" i j;
      Hashtbl.replace seen (i, j) ())
    a.terminals;
  !result

let hpwl_with_terminals design p g a =
  let term_of = Hashtbl.create 64 in
  List.iter (fun (net, s) -> Hashtbl.replace term_of net s) a.terminals;
  Array.fold_left
    (fun acc (n : Net.t) ->
      match Hashtbl.find_opt term_of n.Net.id with
      | None ->
        let min_x = ref max_int and max_x = ref min_int in
        let min_y = ref max_int and max_y = ref min_int in
        Array.iter
          (fun pin ->
            let x, y = pin_center design p pin in
            min_x := min !min_x x;
            max_x := max !max_x x;
            min_y := min !min_y y;
            max_y := max !max_y y)
          n.Net.pins;
        acc +. float_of_int (!max_x - !min_x + !max_y - !min_y)
      | Some s ->
        (* per-die boxes, each including the terminal *)
        let tx, ty = slot_center g s in
        let boxes = Hashtbl.create 4 in
        Array.iter
          (fun pin ->
            let d = p.Placement.die.(pin) in
            let x, y = pin_center design p pin in
            let entry =
              match Hashtbl.find_opt boxes d with
              | Some (a, b, c, e) -> (min a x, min b y, max c x, max e y)
              | None -> (x, y, x, y)
            in
            Hashtbl.replace boxes d entry)
          n.Net.pins;
        Hashtbl.fold
          (fun _ (min_x, min_y, max_x, max_y) acc ->
            let min_x = min min_x tx and max_x = max max_x tx in
            let min_y = min min_y ty and max_y = max max_y ty in
            acc +. float_of_int (max_x - min_x + max_y - min_y))
          boxes acc)
    0. design.Design.nets
