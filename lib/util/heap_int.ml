type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable size : int;
}

let create ?(capacity = 0) () =
  { keys = Array.make (max 0 capacity) 0;
    vals = Array.make (max 0 capacity) 0;
    size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h =
  let cap = Array.length h.keys in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nk = Array.make ncap 0 and nv = Array.make ncap 0 in
    Array.blit h.keys 0 nk 0 h.size;
    Array.blit h.vals 0 nv 0 h.size;
    h.keys <- nk;
    h.vals <- nv
  end

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if h.keys.(p) > h.keys.(i) then begin
      swap h p i;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.size && h.keys.(l) < h.keys.(i) then l else i in
  let m = if r < h.size && h.keys.(r) < h.keys.(m) then r else m in
  if m <> i then begin
    swap h m i;
    sift_down h m
  end

let add h ~key value =
  grow h;
  h.keys.(h.size) <- key;
  h.vals.(h.size) <- value;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let top_key h =
  if h.size = 0 then invalid_arg "Heap_int.top_key: empty heap";
  h.keys.(0)

let top_value h =
  if h.size = 0 then invalid_arg "Heap_int.top_value: empty heap";
  h.vals.(0)

let remove_top h =
  if h.size = 0 then invalid_arg "Heap_int.remove_top: empty heap";
  h.size <- h.size - 1;
  h.keys.(0) <- h.keys.(h.size);
  h.vals.(0) <- h.vals.(h.size);
  if h.size > 0 then sift_down h 0

let pop h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    remove_top h;
    Some (k, v)
  end

let clear h = h.size <- 0
