(* site -> remaining armed charges *)
let charges : (string, int) Hashtbl.t = Hashtbl.create 8

(* site -> fires to let pass before the armed charges start consuming *)
let delays : (string, int) Hashtbl.t = Hashtbl.create 8

(* site -> consumed charges since reset *)
let consumed : (string, int) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset charges;
  Hashtbl.reset delays;
  Hashtbl.reset consumed

let arm ?(times = 1) ?(after = 0) site =
  if times > 0 then begin
    let cur = Option.value (Hashtbl.find_opt charges site) ~default:0 in
    Hashtbl.replace charges site (cur + times);
    if after > 0 then
      Hashtbl.replace delays site
        (after + Option.value (Hashtbl.find_opt delays site) ~default:0)
  end

let armed site =
  match Hashtbl.find_opt charges site with Some n -> n > 0 | None -> false

let fire site =
  if Hashtbl.length charges = 0 then false
  else
    match Hashtbl.find_opt charges site with
    | Some n when n > 0 -> (
      match Hashtbl.find_opt delays site with
      | Some d when d > 0 ->
        if d = 1 then Hashtbl.remove delays site
        else Hashtbl.replace delays site (d - 1);
        false
      | _ ->
        if n = 1 then Hashtbl.remove charges site
        else Hashtbl.replace charges site (n - 1);
        Hashtbl.replace consumed site
          (1 + Option.value (Hashtbl.find_opt consumed site) ~default:0);
        true)
    | _ -> false

let fired site = Option.value (Hashtbl.find_opt consumed site) ~default:0
