(* site -> remaining armed charges *)
let charges : (string, int) Hashtbl.t = Hashtbl.create 8

(* site -> consumed charges since reset *)
let consumed : (string, int) Hashtbl.t = Hashtbl.create 8

let reset () =
  Hashtbl.reset charges;
  Hashtbl.reset consumed

let arm ?(times = 1) site =
  if times > 0 then
    let cur = Option.value (Hashtbl.find_opt charges site) ~default:0 in
    Hashtbl.replace charges site (cur + times)

let armed site =
  match Hashtbl.find_opt charges site with Some n -> n > 0 | None -> false

let fire site =
  if Hashtbl.length charges = 0 then false
  else
    match Hashtbl.find_opt charges site with
    | Some n when n > 0 ->
      if n = 1 then Hashtbl.remove charges site
      else Hashtbl.replace charges site (n - 1);
      Hashtbl.replace consumed site
        (1 + Option.value (Hashtbl.find_opt consumed site) ~default:0);
      true
    | _ -> false

let fired site = Option.value (Hashtbl.find_opt consumed site) ~default:0
