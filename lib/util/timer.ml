(* Monotonic timestamps.

   OCaml's [Unix] module exposes no [clock_gettime], so CLOCK_MONOTONIC is
   read through the bechamel stubs ([Monotonic_clock.now], a noalloc
   external).  Should the stub report nothing (non-Linux platforms compile
   it to a zero return), we fall back to [Unix.gettimeofday] clamped to be
   non-decreasing — callers may rely on [now_ns] never going backwards. *)

let gettimeofday_ns =
  let last = ref 0L in
  fun () ->
    let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
    if Int64.compare t !last > 0 then last := t;
    !last

let monotonic_available = Monotonic_clock.now () <> 0L

let now_ns () =
  if monotonic_available then Monotonic_clock.now () else gettimeofday_ns ()

let elapsed_ns t0 = Int64.sub (now_ns ()) t0

let ns_to_s ns = Int64.to_float ns /. 1e9

let ns_to_ms ns = Int64.to_float ns /. 1e6

let time f =
  let t0 = now_ns () in
  let r = f () in
  (r, ns_to_s (elapsed_ns t0))
