(** Wall-clock / iteration budgets for the solvers.

    A budget bounds how long an iterative phase (the MCMF augmentation
    loop, the 3D-Flow supply-resolution loop, post-optimization rounds)
    may keep running.  Exhaustion is a {e stop signal}, not an error:
    solvers are expected to return their best-effort partial solution and
    flag it incomplete, so a caller with a deadline always gets {e some}
    placement back instead of a hang.

    Exhaustion latches: once {!exhausted} has returned [true] it keeps
    returning [true], so a solver polling the budget at several nesting
    depths winds down consistently.

    Budgets are domain-safe: one budget may be shared by the workers of a
    parallel phase.  {!tick} and the exhaustion latch are atomic, so any
    worker exhausting the budget (or {!exhaust} called from the
    coordinator) cancels the remaining workers cooperatively at their next
    poll. *)

type t

val unlimited : t
(** Never exhausts.  Probing it costs one branch (no clock read), so it is
    the right default argument for hot solver loops. *)

val create : ?wall_ms:int -> ?max_ops:int -> unit -> t
(** [create ?wall_ms ?max_ops ()] starts the clock now.  [wall_ms] bounds
    elapsed wall-clock milliseconds (monotonic); [max_ops] bounds the
    total recorded by {!tick}.  Omitted limits do not constrain. *)

val is_limited : t -> bool
(** [false] exactly for {!unlimited} and budgets created with no limits. *)

val tick : t -> int -> unit
(** [tick b n] records [n] units of work (augmentations, pops, rounds —
    the solver picks its unit). *)

val exhausted : t -> bool
(** True once the wall clock or the op count has passed its limit (or
    {!exhaust} was called).  Latches. *)

val exhaust : t -> unit
(** Force the budget into the exhausted state (used by fault injection to
    simulate a timeout).  No-op on {!unlimited}: the shared default budget
    can never be poisoned. *)

val remaining_ms : t -> float option
(** Milliseconds left on the wall-clock limit, if one was set (0. once
    exhausted). *)
