(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    The checksum guarding the write-ahead journal records and session
    snapshots of the serving layer ({!Tdf_io.Journal}): cheap enough to
    run on every appended record, strong enough to catch torn writes and
    bit rot on reopen.  Values are full 32-bit checksums carried in an
    OCaml [int] (always non-negative).

    The running-state API streams without intermediate copies:

    {[
      let crc = Crc32.(value (update_string empty s)) in ...
    ]} *)

type state
(** Running (pre-finalization) CRC state. *)

val empty : state
(** State after zero bytes. *)

val update_string : ?off:int -> ?len:int -> state -> string -> state

val update_bytes : ?off:int -> ?len:int -> state -> Bytes.t -> state

val value : state -> int
(** Finalized checksum of everything fed so far, in [\[0, 2^32)].
    Finalization does not consume the state: feeding more bytes after
    reading a value is fine. *)

val string : string -> int
(** One-shot [value (update_string empty s)]. *)

val to_hex : int -> string
(** Fixed-width lowercase 8-digit hex, e.g. ["cbf43926"]. *)
