(* [ops]/[stopped] are Atomics so one budget can be shared by the worker
   domains of a parallel phase: any worker (or the coordinating domain)
   exhausting the budget is promptly visible to every other worker, giving
   cooperative cross-domain cancellation.  The latch stays monotone — once
   stopped, always stopped — so concurrent updates cannot un-exhaust it. *)
type t = {
  deadline_ns : int64 option;  (* absolute monotonic deadline *)
  max_ops : int option;
  ops : int Atomic.t;
  stopped : bool Atomic.t;  (* latched exhaustion *)
  limited : bool;
}

let unlimited =
  {
    deadline_ns = None;
    max_ops = None;
    ops = Atomic.make 0;
    stopped = Atomic.make false;
    limited = false;
  }

let create ?wall_ms ?max_ops () =
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add (Timer.now_ns ()) (Int64.of_int (ms * 1_000_000)))
      wall_ms
  in
  {
    deadline_ns;
    max_ops;
    ops = Atomic.make 0;
    stopped = Atomic.make false;
    limited = wall_ms <> None || max_ops <> None;
  }

let is_limited b = b.limited

let tick b n = if b.limited then ignore (Atomic.fetch_and_add b.ops n)

(* The shared [unlimited] value must never latch: a fault-injected timeout
   reaching a solver that was handed the default budget would otherwise
   poison every later call in the process. *)
let exhaust b = if b != unlimited then Atomic.set b.stopped true

let exhausted b =
  if not b.limited then Atomic.get b.stopped
  else if Atomic.get b.stopped then true
  else begin
    let over_ops =
      match b.max_ops with Some m -> Atomic.get b.ops >= m | None -> false
    in
    let over_clock =
      match b.deadline_ns with
      | Some d -> Int64.compare (Timer.now_ns ()) d >= 0
      | None -> false
    in
    if over_ops || over_clock then Atomic.set b.stopped true;
    Atomic.get b.stopped
  end

let remaining_ms b =
  Option.map
    (fun d ->
      if Atomic.get b.stopped then 0.
      else Float.max 0. (Timer.ns_to_ms (Int64.sub d (Timer.now_ns ()))))
    b.deadline_ns
