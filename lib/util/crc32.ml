type state = int

(* Reflected CRC-32: table.(i) is the CRC of the single byte [i]. *)
let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let empty = 0xFFFFFFFF

let update_sub get state off len =
  let t = Lazy.force table in
  let c = ref state in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (get i)) land 0xff) lxor (!c lsr 8)
  done;
  !c

let update_string ?(off = 0) ?len state s =
  let len = Option.value len ~default:(String.length s - off) in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.update_string";
  update_sub (String.unsafe_get s) state off len

let update_bytes ?(off = 0) ?len state b =
  let len = Option.value len ~default:(Bytes.length b - off) in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.update_bytes";
  update_sub (Bytes.unsafe_get b) state off len

let value state = state lxor 0xFFFFFFFF

let string s = value (update_string empty s)

let to_hex v = Printf.sprintf "%08x" (v land 0xFFFFFFFF)
