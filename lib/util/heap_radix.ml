(* Monotone radix (bucket) heap over int keys.

   Entries are spread over 64 buckets indexed by the position of the
   highest bit in which a key differs from [last], the most recently
   extracted minimum (bucket 0 holds keys equal to [last]).  Pushes are
   O(1); a pop that finds bucket 0 empty locates the smallest nonempty
   bucket, adopts its minimum as the new [last] and redistributes the
   bucket's entries — each entry can only move to a strictly smaller
   bucket, so total redistribution work is O(64) per entry over the heap's
   lifetime.

   Two's-complement note: bucket indices are computed from [key lxor last],
   whose highest set bit is identical whether the operands are read as
   signed or as sign-bit-biased unsigned integers (the bias cancels under
   XOR).  The radix invariant ("entries of one bucket agree with [last] on
   all higher bits") therefore holds for negative keys too, and within any
   single bucket all keys share a sign, so the signed min-scan during
   redistribution is exact.  [last] starts at [min_int], accepting any
   initial key. *)

type bucket = {
  mutable keys : int array;
  mutable vals : int array;
  mutable size : int;
}

type t = { buckets : bucket array; mutable last : int; mutable size : int }

let n_buckets = 64

let create ?(capacity = 0) () =
  let mk _ =
    let cap = max 0 capacity in
    { keys = Array.make cap 0; vals = Array.make cap 0; size = 0 }
  in
  { buckets = Array.init n_buckets mk; last = min_int; size = 0 }

let length h = h.size
let is_empty h = h.size = 0
let last_extracted h = h.last

(* Index of the highest set bit of [x], which must be nonzero; [lsr] keeps
   the scan correct when bit 62 (the sign bit) is set. *)
let msb x =
  let x = ref x and r = ref 0 in
  if !x lsr 32 <> 0 then begin
    r := !r + 32;
    x := !x lsr 32
  end;
  if !x lsr 16 <> 0 then begin
    r := !r + 16;
    x := !x lsr 16
  end;
  if !x lsr 8 <> 0 then begin
    r := !r + 8;
    x := !x lsr 8
  end;
  if !x lsr 4 <> 0 then begin
    r := !r + 4;
    x := !x lsr 4
  end;
  if !x lsr 2 <> 0 then begin
    r := !r + 2;
    x := !x lsr 2
  end;
  if !x lsr 1 <> 0 then r := !r + 1;
  !r

let bucket_index h key =
  let d = key lxor h.last in
  if d = 0 then 0 else 1 + msb d

let push_bucket b ~key value =
  let cap = Array.length b.keys in
  if b.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nk = Array.make ncap 0 and nv = Array.make ncap 0 in
    Array.blit b.keys 0 nk 0 b.size;
    Array.blit b.vals 0 nv 0 b.size;
    b.keys <- nk;
    b.vals <- nv
  end;
  b.keys.(b.size) <- key;
  b.vals.(b.size) <- value;
  b.size <- b.size + 1

let add h ~key value =
  if key < h.last then
    invalid_arg "Heap_radix.add: monotone violation (key below extracted min)";
  push_bucket h.buckets.(bucket_index h key) ~key value;
  h.size <- h.size + 1

let add_clamped h ~key value =
  let clamped = key < h.last in
  let key = if clamped then h.last else key in
  push_bucket h.buckets.(bucket_index h key) ~key value;
  h.size <- h.size + 1;
  clamped

(* Make bucket 0 (keys equal to [last]) nonempty; the heap must not be
   empty.  Adopting the smallest pending key as the new [last] sends every
   minimum entry of the redistributed bucket to bucket 0 and every other
   entry to a strictly smaller bucket than it came from. *)
let pull h =
  if h.buckets.(0).size = 0 then begin
    let i = ref 1 in
    while h.buckets.(!i).size = 0 do
      incr i
    done;
    let b = h.buckets.(!i) in
    let m = ref b.keys.(0) in
    for j = 1 to b.size - 1 do
      if b.keys.(j) < !m then m := b.keys.(j)
    done;
    h.last <- !m;
    let n = b.size in
    b.size <- 0;
    for j = 0 to n - 1 do
      push_bucket h.buckets.(bucket_index h b.keys.(j)) ~key:b.keys.(j)
        b.vals.(j)
    done
  end

let top_key h =
  if h.size = 0 then invalid_arg "Heap_radix.top_key: empty heap";
  pull h;
  let b = h.buckets.(0) in
  b.keys.(b.size - 1)

let top_value h =
  if h.size = 0 then invalid_arg "Heap_radix.top_value: empty heap";
  pull h;
  let b = h.buckets.(0) in
  b.vals.(b.size - 1)

let remove_top h =
  if h.size = 0 then invalid_arg "Heap_radix.remove_top: empty heap";
  pull h;
  let b = h.buckets.(0) in
  b.size <- b.size - 1;
  h.size <- h.size - 1

let pop h =
  if h.size = 0 then None
  else begin
    pull h;
    let b = h.buckets.(0) in
    let k = b.keys.(b.size - 1) and v = b.vals.(b.size - 1) in
    b.size <- b.size - 1;
    h.size <- h.size - 1;
    Some (k, v)
  end

let clear h =
  Array.iter (fun (b : bucket) -> b.size <- 0) h.buckets;
  h.last <- min_int;
  h.size <- 0
