(** Monotonic wall-clock timing for the RT columns of Tables III and IV and
    for the {!Tdf_telemetry} span clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)

val now_ns : unit -> int64
(** Current monotonic timestamp in nanoseconds.  The origin is arbitrary
    (boot time on Linux); only differences are meaningful.  Guaranteed
    non-decreasing even on the [gettimeofday] fallback path. *)

val elapsed_ns : int64 -> int64
(** [elapsed_ns t0] is [now_ns () - t0]. *)

val ns_to_s : int64 -> float
(** Nanoseconds to seconds. *)

val ns_to_ms : int64 -> float
(** Nanoseconds to milliseconds. *)

val monotonic_available : bool
(** Whether the CLOCK_MONOTONIC stub is live (as opposed to the clamped
    [gettimeofday] fallback). *)
