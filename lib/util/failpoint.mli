(** Named fault-injection sites.

    A failpoint is a named place in production code (e.g. ["mcmf.solve"],
    ["flow3d.flow_pass"]) where a test can force a failure or a simulated
    timeout.  Sites are compiled in permanently: an un-armed {!fire} is a
    single hashtable miss on an empty table, so the hooks cost nothing in
    normal operation.

    The user-facing arming API (seeded corruption, standard site names)
    lives in [Tdf_robust.Fault]; this module is only the registry, kept in
    [Tdf_util] so the low-level solvers can consult it without depending
    on the robustness layer. *)

val reset : unit -> unit
(** Disarm every site. *)

val arm : ?times:int -> ?after:int -> string -> unit
(** [arm ?times ?after site] makes calls of {!fire} on [site] return
    [true] [times] times (default 1), after first letting [after]
    (default 0) fires pass un-triggered.  The skip count lets a test or
    the chaos harness aim at e.g. {e the Kth journal append} rather than
    the next one. *)

val armed : string -> bool
(** Whether the site would fire (without consuming a charge). *)

val fire : string -> bool
(** [fire site] consumes one armed charge and returns [true], or returns
    [false] when the site is not armed. *)

val fired : string -> int
(** How many times the site has fired since the last {!reset} (armed
    charges that were consumed). *)
