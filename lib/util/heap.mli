(** Mutable binary min-heap keyed by floats.

    Used as the priority queue of Algorithm 1 (bins ordered by path cost) and
    of Algorithm 2 (supply bins ordered by descending supply — negate the
    key).  Insertion-only discipline: Algorithm 1 marks bins visited on first
    pop, so no decrease-key is needed. *)

type 'a t

val create : unit -> 'a t
(** Fresh empty heap. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> key:float -> 'a -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-key element, or [None] when empty. *)

val pop_exn : 'a t -> float * 'a
(** Like {!pop} but raises [Invalid_argument "Heap.pop_exn: empty heap"]
    when the heap is empty.  Reserve it for call sites that have already
    established non-emptiness (e.g. directly after checking {!is_empty}
    or {!length}); driver loops that legitimately drain the heap should
    match on {!pop} instead, so that emptiness stays a normal control-flow
    case rather than an exception. *)

val peek : 'a t -> (float * 'a) option
(** Minimum-key element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements (keeps allocated storage). *)
