(** Monotone radix (bucket) min-heap with [int] keys and [int] values.

    A drop-in alternative to {!Tdf_util.Heap_int} for callers whose pop
    sequence is monotone non-decreasing — Dijkstra over non-negative exact
    integer reduced costs being the canonical case ([Tdf_flow.Mcmf]).
    Pushes are O(1) and pops cost amortized O(word size) bucket work
    instead of O(log n) sift comparisons, which is what makes the
    scale-1.0 solver rounds cheap: every relaxation is a constant-time
    append, and extraction touches each entry at most 64 times total.

    The monotone contract: {!add} requires [key >= last], where [last] is
    the key of the most recently extracted minimum ([min_int] on a fresh
    or {!clear}ed heap, so any first key is fine).  Violations raise
    [Invalid_argument] — loudly, because a violated radix invariant would
    otherwise return wrong minima silently.  Callers with occasional
    out-of-order pushes (the legalizer's best-first frontier, whose
    micro-unit keys may be negative and regress) use {!add_clamped}, which
    lifts an offending key to [last] and reports the clamp.

    Negative keys are supported; only monotonicity relative to [last]
    matters.  Like [Heap_int], decrease-key is by reinsertion with the
    caller skipping stale entries on pop.  Unlike [Heap_int], the pop
    order of equal keys is unspecified (bucket order, not sift order), so
    callers needing the historical tie order must stay on [Heap_int]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap; [capacity] pre-sizes each bucket's backing arrays. *)

val length : t -> int
val is_empty : t -> bool

val last_extracted : t -> int
(** Current monotone floor: the key of the most recently extracted
    minimum, or [min_int] if nothing was extracted since {!create} /
    {!clear}. *)

val add : t -> key:int -> int -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first).
    Raises [Invalid_argument] if [key < last_extracted h]. *)

val add_clamped : t -> key:int -> int -> bool
(** Like {!add}, but an out-of-order [key] is clamped up to
    [last_extracted h] instead of raising.  Returns [true] iff the key was
    clamped, so callers can surface a telemetry counter for the
    approximation. *)

val top_key : t -> int
(** Key of the minimum entry.  Raises [Invalid_argument] on an empty
    heap — pair with {!is_empty}.  Together with {!top_value} and
    {!remove_top} this forms the zero-allocation pop used by hot loops. *)

val top_value : t -> int
(** Value of the minimum entry; same contract as {!top_key}. *)

val remove_top : t -> unit
(** Drop the minimum entry.  Raises [Invalid_argument] when empty. *)

val pop : t -> (int * int) option
(** Allocating convenience: remove and return [(key, value)], or [None]
    when empty. *)

val clear : t -> unit
(** Remove all elements and reset the monotone floor to [min_int] (keeps
    allocated storage). *)
