(** Monomorphic binary min-heap with [int] keys and [int] values.

    The solver hot paths (Dijkstra on reduced costs in [Tdf_flow.Mcmf],
    the supply queue of Algorithm 2, the best-first search of Algorithm 1)
    key their queues on integers: reduced costs are exact integers, and
    float quantities are scaled to micro-units before queueing.  Storing
    keys and values in two flat [int array]s keeps every entry unboxed —
    no per-entry record, no float boxing, no [float_of_int]/[int_of_float]
    round-trip (which silently loses exactness above 2{^53}).

    Insertion-only discipline (decrease-key by reinsertion): a caller that
    lowers a priority simply re-adds the element and skips the stale entry
    on pop, either with a visited mark or by comparing the popped key to
    the element's current key.  Ties pop in the same order as
    {!Tdf_util.Heap} (identical sift logic), so migrating a caller from
    float keys to exact integer keys preserves its traversal order. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh empty heap; [capacity] pre-sizes the backing arrays. *)

val length : t -> int

val is_empty : t -> bool

val add : t -> key:int -> int -> unit
(** [add h ~key v] inserts [v] with priority [key] (smaller pops first). *)

val top_key : t -> int
(** Key of the minimum entry.  Undefined (raises [Invalid_argument]) on an
    empty heap — pair with {!is_empty}.  Together with {!top_value} and
    {!remove_top} this forms the zero-allocation pop used by hot loops. *)

val top_value : t -> int
(** Value of the minimum entry; same contract as {!top_key}. *)

val remove_top : t -> unit
(** Drop the minimum entry.  Raises [Invalid_argument] when empty. *)

val pop : t -> (int * int) option
(** Allocating convenience: remove and return [(key, value)], or [None]
    when empty.  Prefer {!top_key}/{!top_value}/{!remove_top} in hot
    loops. *)

val clear : t -> unit
(** Remove all elements (keeps allocated storage). *)
