(** Fixed-size [Domain] pool with deterministic fan-out combinators.

    The pool owns [size - 1] worker domains (the submitting domain is the
    remaining worker, so a pool of size [n] computes on [n] domains).
    Work is submitted as [n] indexed tasks; idle domains claim indices
    from a shared atomic counter, and results are always delivered in
    submission-index order, so the output of every combinator is
    bit-identical regardless of how tasks were scheduled across domains.

    Determinism contract:

    - a combinator's output depends only on its inputs, never on the pool
      size or the interleaving — provided tasks touch disjoint mutable
      state (distinct result slots, distinct placement rows, ...);
    - telemetry emitted inside tasks is captured per task and replayed on
      the submitting domain in submission-index order at join, so sinks
      observe one deterministic event stream and are never called
      concurrently;
    - chunked partitions depend only on the explicit [chunk] size and the
      input length, so float reductions associate identically at every
      pool size (including 1).

    A task that raises fails the whole submission: the first failure (in
    claim order) is re-raised on the submitting domain after all tasks
    finished.  Submissions from inside a task run inline on the calling
    domain — nested parallelism degrades to sequential instead of
    deadlocking the pool. *)

type t

val create : int -> t
(** [create n] spawns a pool of [n] domains (clamped to [1, 64]).  A pool
    of size 1 spawns nothing and runs every combinator inline. *)

val size : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Using the pool after
    shutdown runs everything inline on the calling domain. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes the tasks [f 0 .. f (n-1)], distributed over
    the pool's domains, and returns when all have finished.  [f i] must
    write its result to task-private state (e.g. slot [i] of an array). *)

val run_local : t -> local:(unit -> 'l) -> n:int -> ('l -> int -> unit) -> unit
(** {!run} with domain-local scratch: each participating domain lazily
    creates one ['l] with [local] and passes it to every task it executes
    (an Mcmf workspace, a staging buffer, ...).  At most {!size} scratch
    values are created per call.  Tasks must not let the scratch influence
    their observable result — it is reusable {e memory}, not state. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; output order is input order. *)

val parallel_for : t -> ?chunk:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~chunk ~n body] runs [body i] for [0 <= i < n],
    grouping [chunk] consecutive indices per task (default 1).  Within a
    chunk, indices run in increasing order on one domain. *)

val map_chunked : t -> chunk:int -> n:int -> (int -> int -> 'b) -> 'b array
(** [map_chunked t ~chunk ~n f] partitions [0, n) into contiguous chunks
    of [chunk] (the last may be short) and computes [f lo hi] per chunk in
    parallel; returns the per-chunk results in chunk order.  The partition
    depends only on [chunk] and [n] — never on the pool — which is what
    makes chunked float reductions deterministic across [--jobs]. *)

val reduce_chunked :
  t ->
  chunk:int ->
  n:int ->
  map:(int -> int -> 'b) ->
  merge:('b -> 'b -> 'b) ->
  init:'b ->
  'b
(** [reduce_chunked] is {!map_chunked} followed by a left-to-right
    [merge] fold from [init], in chunk order. *)

val in_task : unit -> bool
(** True while the calling domain is executing a pool task (any pool).
    Combinators check it themselves; exposed for tests and for callers
    that want to skip setup work that only pays off when parallel. *)
