(* Library root: deterministic multicore execution for tdflow.

   [Pool] is the mechanism; this module owns the process-wide default pool
   whose size comes from the CLI ([set_jobs], wired to --jobs) or the
   TDFLOW_JOBS environment variable, defaulting to 1 — parallelism is
   strictly opt-in, and every parallel path is bit-identical to the
   sequential one (see pool.mli for the determinism contract). *)

module Pool = Pool

let clamp n = max 1 (min n 64)

let env_jobs () =
  match Sys.getenv_opt "TDFLOW_JOBS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (clamp n)
    | _ -> None)
  | None -> None

let requested : int option ref = ref None

let current : Pool.t option ref = ref None

let at_exit_registered = ref false

let jobs () =
  match !requested with
  | Some n -> n
  | None -> Option.value (env_jobs ()) ~default:1

let shutdown () =
  match !current with
  | Some p ->
    current := None;
    Pool.shutdown p
  | None -> ()

let set_jobs n =
  let n = clamp n in
  requested := Some n;
  match !current with
  | Some p when Pool.size p <> n -> shutdown ()
  | _ -> ()

let get () =
  match !current with
  | Some p -> p
  | None ->
    let p = Pool.create (jobs ()) in
    current := Some p;
    (* Join the workers before the runtime tears down; registered once. *)
    if not !at_exit_registered then begin
      at_exit_registered := true;
      at_exit shutdown
    end;
    p

(* Conveniences on the default pool. *)

let run ~n f = Pool.run (get ()) ~n f

let run_local ~local ~n f = Pool.run_local (get ()) ~local ~n f

let map_array f arr = Pool.map_array (get ()) f arr

let parallel_for ?chunk ~n body = Pool.parallel_for (get ()) ?chunk ~n body

let map_chunked ~chunk ~n f = Pool.map_chunked (get ()) ~chunk ~n f

let reduce_chunked ~chunk ~n ~map ~merge ~init =
  Pool.reduce_chunked (get ()) ~chunk ~n ~map ~merge ~init
