type task_failure = {
  tf_index : int;
  tf_exn : exn;
  tf_bt : Printexc.raw_backtrace;
}

(* One submission.  [next] hands out task indices; [finished] counts tasks
   that completed (successfully or not), so the submitter can wait for the
   last task rather than the last *claimed* index.  The first failure (in
   claim order) wins; later ones are dropped. *)
type job = {
  jn : int;
  jrun : int -> unit;
  jnext : int Atomic.t;
  jfinished : int Atomic.t;
  mutable jfail : task_failure option;  (* guarded by the pool mutex *)
}

type t = {
  psize : int;
  mutex : Mutex.t;
  work : Condition.t;  (* a new job was posted / shutdown *)
  idle : Condition.t;  (* the current job's last task finished *)
  mutable epoch : int;  (* bumped per posted job, guarded by [mutex] *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* True while this domain executes a pool task.  Makes nested submissions
   (a task computing metrics that themselves fan out) run inline instead
   of re-entering the pool and deadlocking against the outer job. *)
let in_task_key = Domain.DLS.new_key (fun () -> false)

let in_task () = Domain.DLS.get in_task_key

(* Slot of the current domain inside its pool: spawned worker [k] uses
   slot [k + 1], the submitting domain slot 0.  Indexes the per-call
   scratch table of [run_local]. *)
let slot_key = Domain.DLS.new_key (fun () -> 0)

let size p = p.psize

let drain pool job =
  let rec go () =
    let i = Atomic.fetch_and_add job.jnext 1 in
    if i < job.jn then begin
      (try job.jrun i
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock pool.mutex;
         if job.jfail = None then
           job.jfail <- Some { tf_index = i; tf_exn = e; tf_bt = bt };
         Mutex.unlock pool.mutex);
      if 1 + Atomic.fetch_and_add job.jfinished 1 = job.jn then begin
        (* Last task overall: wake the submitter (which may or may not be
           waiting yet — it re-checks the count under the mutex). *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.idle;
        Mutex.unlock pool.mutex
      end;
      go ()
    end
  in
  go ()

let worker pool slot =
  Domain.DLS.set in_task_key true;
  Domain.DLS.set slot_key slot;
  let last = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.epoch = !last && not pool.stop do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      last := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> drain pool j | None -> ());
      loop ()
    end
  in
  loop ()

let create n =
  let n = max 1 (min n 64) in
  let pool =
    {
      psize = n;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      epoch = 0;
      job = None;
      stop = false;
      workers = [];
    }
  in
  if n > 1 then
    pool.workers <-
      List.init (n - 1) (fun k -> Domain.spawn (fun () -> worker pool (k + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let ws = pool.workers in
  pool.stop <- true;
  pool.workers <- [];
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join ws

let sequential n task =
  for i = 0 to n - 1 do
    task i
  done

let run pool ~n task =
  if n <= 0 then ()
  else if pool.psize = 1 || n = 1 || pool.stop || in_task () then
    sequential n task
  else begin
    (* Capture each task's telemetry privately and replay in submission
       order after the join: sinks see one deterministic, scheduling-
       independent stream, emitted from the submitting domain only. *)
    let capture = Tdf_telemetry.enabled () in
    let buffers = if capture then Array.make n [] else [||] in
    let wrapped =
      if capture then fun i ->
        let (), evs = Tdf_telemetry.capture (fun () -> task i) in
        buffers.(i) <- evs
      else task
    in
    let job =
      {
        jn = n;
        jrun = wrapped;
        jnext = Atomic.make 0;
        jfinished = Atomic.make 0;
        jfail = None;
      }
    in
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.epoch <- pool.epoch + 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    (* The submitting domain participates as worker slot 0. *)
    Domain.DLS.set in_task_key true;
    Fun.protect
      (fun () -> drain pool job)
      ~finally:(fun () -> Domain.DLS.set in_task_key false);
    Mutex.lock pool.mutex;
    while Atomic.get job.jfinished < job.jn do
      Condition.wait pool.idle pool.mutex
    done;
    pool.job <- None;
    Mutex.unlock pool.mutex;
    if capture then Array.iter Tdf_telemetry.replay buffers;
    match job.jfail with
    | Some f -> Printexc.raise_with_backtrace f.tf_exn f.tf_bt
    | None -> ()
  end

let run_local pool ~local ~n task =
  if n <= 0 then ()
  else if pool.psize = 1 || n = 1 || pool.stop || in_task () then begin
    let l = local () in
    sequential n (task l)
  end
  else begin
    (* One scratch per participating domain, created lazily by the domain
       itself (each slot is only ever touched by its own domain). *)
    let scratches = Array.make pool.psize None in
    run pool ~n (fun i ->
        let slot = Domain.DLS.get slot_key in
        let l =
          match scratches.(slot) with
          | Some l -> l
          | None ->
            let l = local () in
            scratches.(slot) <- Some l;
            l
        in
        task l i)
  end

let map_array pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    run pool ~n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_for pool ?(chunk = 1) ~n body =
  if chunk <= 1 then run pool ~n body
  else begin
    let ntasks = (n + chunk - 1) / chunk in
    run pool ~n:ntasks (fun t ->
        let hi = min n ((t + 1) * chunk) in
        for i = t * chunk to hi - 1 do
          body i
        done)
  end

let map_chunked pool ~chunk ~n f =
  if chunk <= 0 then invalid_arg "Pool.map_chunked: chunk must be positive";
  if n <= 0 then [||]
  else begin
    let ntasks = (n + chunk - 1) / chunk in
    let out = Array.make ntasks None in
    run pool ~n:ntasks (fun t ->
        out.(t) <- Some (f (t * chunk) (min n ((t + 1) * chunk))));
    Array.map (function Some v -> v | None -> assert false) out
  end

let reduce_chunked pool ~chunk ~n ~map ~merge ~init =
  Array.fold_left merge init (map_chunked pool ~chunk ~n map)
