module Flow3d = Tdf_legalizer.Flow3d
module Config = Tdf_legalizer.Config

let legalize_with_stats design =
  let r =
    Tdf_telemetry.span "baseline.bonn" @@ fun () ->
    Flow3d.legalize ~cfg:Config.bonn_emulation design
  in
  (r.Flow3d.placement, r.Flow3d.stats)

let legalize design = fst (legalize_with_stats design)
