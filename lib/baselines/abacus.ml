module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Placement = Tdf_netlist.Placement
module Place_row = Tdf_legalizer.Place_row

type seg_state = {
  mutable cells : (int * int * int) list;  (* (cell, desired x, width), reversed *)
  mutable used : int;
}

let trial_cost design space states ~si ~cell =
  let s = space.Rowspace.segs.(si) in
  let st = states.(si) in
  let c = Design.cell design cell in
  let w = Cell.width_on c s.Rowspace.die in
  if st.used + w > s.Rowspace.hi - s.Rowspace.lo then None
  else begin
    let d = Design.die design s.Rowspace.die in
    let inputs = Array.of_list ((cell, c.Cell.gp_x, w) :: st.cells) in
    let weight c = (Design.cell design c).Cell.weight in
    let placed =
      Place_row.place_segment ~weight ~site:d.Die.site_width
        ~anchor:d.Die.outline.Tdf_geometry.Rect.x ~lo:s.Rowspace.lo
        ~hi:s.Rowspace.hi inputs
    in
    match List.find_opt (fun pl -> pl.Place_row.pl_cell = cell) placed with
    | None -> None
    | Some pl ->
      let cost =
        abs (pl.Place_row.pl_x - c.Cell.gp_x) + abs (s.Rowspace.y - c.Cell.gp_y)
      in
      Some cost
  end

let try_die design space states cell ~die ~best =
  let c = Design.cell design cell in
  let stop ydist =
    match !best with Some (cost, _) -> ydist > cost | None -> false
  in
  Rowspace.iter_rows_outward space ~die ~y:c.Cell.gp_y ~stop (fun si ->
      match trial_cost design space states ~si ~cell with
      | None -> ()
      | Some cost ->
        (match !best with
        | Some (bcost, _) when bcost <= cost -> ()
        | _ -> best := Some (cost, si)))

let legalize design =
  Tdf_telemetry.span "baseline.abacus" @@ fun () ->
  let p = Placement.initial design in
  let space = Rowspace.build design in
  let states =
    Array.map (fun _ -> { cells = []; used = 0 }) space.Rowspace.segs
  in
  let n = Design.n_cells design in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ca = Design.cell design a and cb = Design.cell design b in
      if ca.Cell.gp_x <> cb.Cell.gp_x then compare ca.Cell.gp_x cb.Cell.gp_x
      else compare a b)
    order;
  let nd = Design.n_dies design in
  Array.iter
    (fun cell ->
      let home = p.Placement.die.(cell) in
      let best = ref None in
      try_die design space states cell ~die:home ~best;
      if !best = None then
        for d = 0 to nd - 1 do
          if d <> home && !best = None then try_die design space states cell ~die:d ~best
        done;
      match !best with
      | Some (_, si) ->
        let s = space.Rowspace.segs.(si) in
        let c = Design.cell design cell in
        let w = Cell.width_on c s.Rowspace.die in
        states.(si).cells <- (cell, c.Cell.gp_x, w) :: states.(si).cells;
        states.(si).used <- states.(si).used + w
      | None -> ())
    order;
  (* Final PlaceRow per segment writes the positions.  Segments own
     disjoint cell sets by construction, so they fan out over the domain
     pool; each segment's placement depends only on its own state. *)
  Tdf_par.parallel_for ~n:(Array.length states) (fun si ->
      let st = states.(si) in
      if st.cells <> [] then begin
        let s = space.Rowspace.segs.(si) in
        let d = Design.die design s.Rowspace.die in
        let weight c = (Design.cell design c).Cell.weight in
        let placed =
          Place_row.place_segment ~weight ~site:d.Die.site_width
            ~anchor:d.Die.outline.Tdf_geometry.Rect.x ~lo:s.Rowspace.lo
            ~hi:s.Rowspace.hi
            (Array.of_list st.cells)
        in
        List.iter
          (fun pl ->
            p.Placement.x.(pl.Place_row.pl_cell) <- pl.Place_row.pl_x;
            p.Placement.y.(pl.Place_row.pl_cell) <- s.Rowspace.y;
            p.Placement.die.(pl.Place_row.pl_cell) <- s.Rowspace.die)
          placed
      end);
  p
