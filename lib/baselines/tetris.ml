module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Placement = Tdf_netlist.Placement

(* Tetris-style greedy: cells sorted by x are placed one at a time at the
   nearest free location.  Free space is tracked as sorted disjoint
   intervals per row segment, so space to the left of already-placed cells
   remains usable (unlike a pure frontier, which strands cells on dense
   designs).  Greediness — the source of the large displacements the paper
   reports — is in the sequential commitment, never revisiting a cell. *)

type free_list = { mutable free : (int * int) list (* sorted [lo, hi) *) }

let align_in ~site ~anchor ~lo ~hi x =
  (* Nearest site-aligned position to [x] within [lo, hi]; [None] if the
     aligned range is empty. *)
  if site <= 1 then if lo > hi then None else Some (max lo (min hi x))
  else begin
    let snap_up v =
      let d = v - anchor in
      anchor + if d >= 0 then (d + site - 1) / site * site else -(-d / site * site)
    in
    let snap_down v =
      let d = v - anchor in
      anchor + if d >= 0 then d / site * site else -((-d + site - 1) / site * site)
    in
    let lo' = snap_up lo and hi' = snap_down hi in
    if lo' > hi' then None
    else begin
      let x = max lo' (min hi' x) in
      let down = max lo' (snap_down x) in
      let up = min hi' (down + site) in
      Some (if x - down <= up - x then down else up)
    end
  end

let best_in_free_list fl ~site ~anchor ~w ~gp_x =
  List.fold_left
    (fun best (lo, hi) ->
      if hi - lo < w then best
      else
        match align_in ~site ~anchor ~lo ~hi:(hi - w) gp_x with
        | None -> best
        | Some x ->
          let cost = abs (x - gp_x) in
          (match best with
          | Some (bcost, _) when bcost <= cost -> best
          | _ -> Some (cost, x)))
    None fl.free

let occupy fl ~x ~w =
  let rec go = function
    | [] -> []
    | (lo, hi) :: rest when lo <= x && x + w <= hi ->
      let left = if x > lo then [ (lo, x) ] else [] in
      let right = if x + w < hi then [ (x + w, hi) ] else [] in
      left @ right @ rest
    | iv :: rest -> iv :: go rest
  in
  fl.free <- go fl.free

let try_die space frees design cell ~die ~best =
  let c = Design.cell design cell in
  let w = Cell.width_on c die in
  let d = Design.die design die in
  let anchor = d.Die.outline.Tdf_geometry.Rect.x in
  let stop ydist =
    match !best with Some (cost, _, _) -> ydist > cost | None -> false
  in
  Rowspace.iter_rows_outward space ~die ~y:c.Cell.gp_y ~stop (fun si ->
      let s = space.Rowspace.segs.(si) in
      match
        best_in_free_list frees.(si) ~site:d.Die.site_width ~anchor ~w
          ~gp_x:c.Cell.gp_x
      with
      | None -> ()
      | Some (xcost, x) ->
        let cost = xcost + abs (s.Rowspace.y - c.Cell.gp_y) in
        (match !best with
        | Some (bcost, _, _) when bcost <= cost -> ()
        | _ -> best := Some (cost, si, x)))

let legalize design =
  Tdf_telemetry.span "baseline.tetris" @@ fun () ->
  let p = Placement.initial design in
  let space = Rowspace.build design in
  let frees =
    Array.map (fun s -> { free = [ (s.Rowspace.lo, s.Rowspace.hi) ] }) space.Rowspace.segs
  in
  let n = Design.n_cells design in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let ca = Design.cell design a and cb = Design.cell design b in
      if ca.Cell.gp_x <> cb.Cell.gp_x then compare ca.Cell.gp_x cb.Cell.gp_x
      else compare a b)
    order;
  let nd = Design.n_dies design in
  Array.iter
    (fun cell ->
      let home = p.Placement.die.(cell) in
      let best = ref None in
      try_die space frees design cell ~die:home ~best;
      (* Fall back to other dies only when the home die is completely full. *)
      if !best = None then
        for d = 0 to nd - 1 do
          if d <> home && !best = None then try_die space frees design cell ~die:d ~best
        done;
      match !best with
      | Some (_, si, x) ->
        let s = space.Rowspace.segs.(si) in
        let c = Design.cell design cell in
        let w = Cell.width_on c s.Rowspace.die in
        p.Placement.x.(cell) <- x;
        p.Placement.y.(cell) <- s.Rowspace.y;
        p.Placement.die.(cell) <- s.Rowspace.die;
        occupy frees.(si) ~x ~w
      | None ->
        (* Nowhere to go: leave at the initial position; the legality
           checker will report it (never happens on feasible designs). *)
        ())
    order;
  p
