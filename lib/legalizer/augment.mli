(** Algorithm 1: shortest augmenting path with branch and bound.

    A best-first search over the 3D grid graph rooted at an overflowed bin.
    Each bin is visited at most once (line 7), so the traversal forms an
    n-ary search tree; bins are expanded in increasing path cost (line 5);
    branches costlier than [(1 + α)·cost(p_best)] are pruned (line 13).  A
    bin whose incoming flow fits its demand is a candidate leaf (line 14).

    The per-bin label arrays and the frontier heap are allocated once and
    reused across searches via epoch stamps. *)

module Grid = Tdf_grid.Grid
(** Canonical grid substrate (no local shim module). *)

type node = {
  pn_bin : int;  (** bin id on the path *)
  pn_flow_in : float;  (** flow(v): width moved into this bin *)
  pn_need_out : float;  (** flow(v) − dem(v): width that must leave it *)
}

type path = node list
(** Root (the supply bin) first, candidate leaf last. *)

type state
(** Reusable search labels. *)

val create_state : Grid.t -> state

type probe = {
  mutable pr_bins : int list;  (** bins whose state the search read *)
  mutable pr_utils : (int * float * bool) list;
      (** utilization-cap evaluations ((die, inflow, outcome)) D2D
          selections performed — the only die state a search reads, kept
          re-evaluable against drifted [die_used] totals *)
  mutable pr_blocked : bool;
      (** the mask pruned an expansion the reference mask allowed *)
  pr_ref : bool array option;
}
(** Read-set recorder for speculative (tiled) searches — see {!probe}. *)

val probe : ?ref_mask:bool array -> unit -> probe
(** Fresh recorder.  Passed to {!search} it collects every bin whose
    mutable state the search consulted (plus every die-utilization
    comparison a D2D selection evaluated), and flags [pr_blocked] when
    the search mask pruned an expansion that [ref_mask] (the mask the
    authoritative pass runs under; [None] means unmasked) would have
    allowed — a blocked search may return a different path than the
    authoritative one, so its result must not be used as a
    speculation. *)

val search :
  ?mask:bool array ->
  ?probe:probe ->
  Config.t ->
  Grid.t ->
  state ->
  src:Grid.bin ->
  path option
(** [search cfg grid st ~src] finds the cheapest augmenting path resolving
    the overflow of [src], or [None] when no reachable bin chain can absorb
    it.  [cfg.exhaustive] disables pruning and explores the whole reachable
    graph (vanilla Dijkstra SSP, the BonnPlaceLegal behaviour).

    [mask], when given, freezes every bin [b] with [mask.(b) = false]: the
    search never expands into masked-out bins, so realized paths stay
    inside the allowed region — the localization primitive of the
    incremental (ECO) legalizer.  [src] itself must be allowed. *)

val expansions : state -> int
(** Number of queue pops performed by the last search (profiling hook). *)
