(** Algorithm 1: shortest augmenting path with branch and bound.

    A best-first search over the 3D grid graph rooted at an overflowed bin.
    Each bin is visited at most once (line 7), so the traversal forms an
    n-ary search tree; bins are expanded in increasing path cost (line 5);
    branches costlier than [(1 + α)·cost(p_best)] are pruned (line 13).  A
    bin whose incoming flow fits its demand is a candidate leaf (line 14).

    The per-bin label arrays and the frontier heap are allocated once and
    reused across searches via epoch stamps. *)

module Grid = Tdf_grid.Grid
(** Canonical grid substrate (no local shim module). *)

type node = {
  pn_bin : int;  (** bin id on the path *)
  pn_flow_in : float;  (** flow(v): width moved into this bin *)
  pn_need_out : float;  (** flow(v) − dem(v): width that must leave it *)
}

type path = node list
(** Root (the supply bin) first, candidate leaf last. *)

type state
(** Reusable search labels. *)

val create_state : Grid.t -> state

val search :
  ?mask:bool array -> Config.t -> Grid.t -> state -> src:Grid.bin -> path option
(** [search cfg grid st ~src] finds the cheapest augmenting path resolving
    the overflow of [src], or [None] when no reachable bin chain can absorb
    it.  [cfg.exhaustive] disables pruning and explores the whole reachable
    graph (vanilla Dijkstra SSP, the BonnPlaceLegal behaviour).

    [mask], when given, freezes every bin [b] with [mask.(b) = false]: the
    search never expands into masked-out bins, so realized paths stay
    inside the allowed region — the localization primitive of the
    incremental (ECO) legalizer.  [src] itself must be allowed. *)

val expansions : state -> int
(** Number of queue pops performed by the last search (profiling hook). *)
