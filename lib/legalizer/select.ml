module Grid = Tdf_grid.Grid
module Cell = Tdf_netlist.Cell
module Design = Tdf_netlist.Design

type pick = { p_cell : int; p_rho : float }

type selection = {
  picks : pick list;
  freed : float;
  inflow : float;
  sel_cost : float;
}

let cur_disp grid cell =
  match grid.Grid.cell_frags.(cell) with
  | [] -> 0
  | frags ->
    let c = Design.cell grid.Grid.design cell in
    let first_bin = grid.Grid.bins.(fst (List.hd frags)) in
    let die = first_bin.Grid.die in
    let w = Cell.width_on c die in
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (bid, _) ->
          let b = grid.Grid.bins.(bid) in
          (min lo b.Grid.x, max hi (b.Grid.x + b.Grid.width)))
        (max_int, min_int) frags
    in
    let xmax = max lo (hi - w) in
    let x = max lo (min xmax c.Cell.gp_x) in
    abs (x - c.Cell.gp_x) + abs (first_bin.Grid.y - c.Cell.gp_y)

let unit_cost ?cur cfg grid ~cell ~dst ~kind =
  let cur_d = match cur with Some f -> f cell | None -> cur_disp grid cell in
  let weight = (Design.cell grid.Grid.design cell).Cell.weight in
  let base = weight *. float_of_int (Grid.est_disp grid ~cell dst - cur_d) in
  let extra =
    match kind with
    | Grid.D2d ->
      let h_r =
        float_of_int
          (Tdf_netlist.Design.die grid.Grid.design dst.Grid.die)
            .Tdf_netlist.Die.row_height
      in
      (* Eq. 7 term, normalized from width units to distance units so it is
         commensurate with D_c: (sup − dem)/cap ∈ [−1, …] scaled by h_r. *)
      let congestion =
        if cfg.Config.d2d_penalty then
          (Grid.supply dst -. Grid.demand dst)
          /. float_of_int (max 1 (Grid.cap dst))
          *. h_r
        else 0.
      in
      (cfg.Config.d2d_base_cost *. h_r) +. congestion
    | Grid.Horizontal | Grid.Vertical -> 0.
  in
  let c = base +. extra in
  if cfg.Config.allow_negative_cost then c else Float.max 0. c

(* Callers batch "flow3d.select.calls" counting (one flush per search /
   realization) — a per-call [Telemetry.incr] here would emit millions of
   counter events into trace sinks on full-size runs. *)
let select ?cur ?util_probe cfg grid ~src ~dst ~kind ~need =
  if need <= 0. then Some { picks = []; freed = 0.; inflow = 0.; sel_cost = 0. }
  else begin
    let design = grid.Grid.design in
    let cand_array =
      src.Grid.frags
      |> List.map (fun f ->
             (f.Grid.cell, f.Grid.rho, unit_cost ?cur cfg grid ~cell:f.Grid.cell ~dst ~kind))
      |> Array.of_list
    in
    Array.sort (fun (_, _, a) (_, _, b) -> compare a b) cand_array;
    let candidates = Array.to_list cand_array in
    match kind with
    | Grid.Horizontal ->
      (* Fractional moves: stop exactly at [need]. *)
      let rec take cands acc freed cost =
        if freed >= need -. 1e-9 then Some (List.rev acc, need, cost)
        else
          match cands with
          | [] -> None
          | (cell, rho, uc) :: rest ->
            let w = float_of_int (Cell.width_on (Design.cell design cell) src.Grid.die) in
            let avail = rho *. w in
            let moved_w = Float.min avail (need -. freed) in
            let moved_rho = moved_w /. w in
            take rest
              ({ p_cell = cell; p_rho = moved_rho } :: acc)
              (freed +. moved_w)
              (cost +. (moved_rho *. uc))
      in
      (match take candidates [] 0. 0. with
      | None -> None
      | Some (picks, freed, cost) ->
        Some { picks; freed; inflow = freed; sel_cost = cost })
    | Grid.Vertical | Grid.D2d ->
      (* Whole-cell moves: the width freed in [src] is only the fragment
         living in [src]; the width arriving in [dst] is the full cell width
         on the destination die.  The last pick is swapped for a
         similar-cost better-fitting cell when possible: overshoot compounds
         along the path (flow(v) grows every whole-cell hop) and can
         strand the search in lightly-used regions. *)
      let freed_of (cell, rho, _) =
        rho *. float_of_int (Cell.width_on (Design.cell design cell) src.Grid.die)
      in
      let h_r =
        float_of_int
          (Design.die design src.Grid.die).Tdf_netlist.Die.row_height
      in
      let rec take cands acc freed cost =
        if freed >= need -. 1e-9 then Some (List.rev acc, freed, cost)
        else
          match cands with
          | [] -> None
          | ((_, _, uc) as cand) :: rest ->
            let remaining = need -. freed in
            (* better fit: among candidates within one-row-height extra
               cost, the narrowest one that alone covers the remainder *)
            let fit =
              List.fold_left
                (fun best ((_, _, uc') as c') ->
                  if uc' <= uc +. h_r && freed_of c' >= remaining -. 1e-9 then
                    match best with
                    | Some b when freed_of b <= freed_of c' -> best
                    | _ -> Some c'
                  else best)
                None cands
            in
            (match fit with
            | Some ((cell, _, uc') as c') when freed_of c' < freed_of cand || uc' <= uc ->
              Some
                ( List.rev ({ p_cell = cell; p_rho = 1.0 } :: acc),
                  freed +. freed_of c',
                  cost +. uc' )
            | Some _ | None ->
              let cell, _, _ = cand in
              take rest
                ({ p_cell = cell; p_rho = 1.0 } :: acc)
                (freed +. freed_of cand)
                (cost +. uc))
      in
      (match take candidates [] 0. 0. with
      | None -> None
      | Some (picks, freed, cost) ->
        let inflow =
          List.fold_left
            (fun acc p ->
              acc
              +. float_of_int
                   (Cell.width_on (Design.cell design p.p_cell) dst.Grid.die))
            0. picks
        in
        let util_ok =
          kind <> Grid.D2d
          ||
          let d = dst.Grid.die in
          let max_util = (Design.die design d).Tdf_netlist.Die.max_util in
          let ok =
            grid.Grid.die_cap.(d) <= 0.
            || (grid.Grid.die_used.(d) +. inflow) /. grid.Grid.die_cap.(d)
               <= max_util
          in
          (match util_probe with
          | Some f -> f ~die:d ~inflow ~ok
          | None -> ());
          ok
        in
        if util_ok then Some { picks; freed; inflow; sel_cost = cost } else None)
  end
