module Grid = Tdf_grid.Grid
module Heap = Tdf_util.Heap_int
module Heap_radix = Tdf_util.Heap_radix

type node = { pn_bin : int; pn_flow_in : float; pn_need_out : float }

type path = node list

type state = {
  cost : float array;
  flow : float array;
  parent : int array;
  visited : int array;  (* epoch stamp *)
  cd_cache : int array;  (* memoized cur_disp per cell *)
  cd_epoch : int array;
  heap : Heap.t;  (* hoisted search frontier, cleared per search *)
  rheap : Heap_radix.t;  (* the Config.Radix frontier alternative *)
  mutable epoch : int;
  mutable pops : int;
}

(* Path costs are floats (weighted displacements); the frontier orders
   them as exact micro-units so the heap stays monomorphic on ints. *)
let micro c = int_of_float (Float.round (c *. 1e6))

let create_state grid =
  let n = Grid.n_bins grid in
  let nc = Tdf_netlist.Design.n_cells grid.Grid.design in
  {
    cost = Array.make n 0.;
    flow = Array.make n 0.;
    parent = Array.make n (-1);
    visited = Array.make n 0;
    cd_cache = Array.make nc 0;
    cd_epoch = Array.make nc 0;
    heap = Heap.create ();
    rheap = Heap_radix.create ();
    epoch = 0;
    pops = 0;
  }

(* The grid does not mutate during a search, so D_c(u) is memoized per
   search epoch — it is evaluated for the same cell once per incident edge
   otherwise, which dominated the profile. *)
let cached_cur_disp grid st cell =
  if st.cd_epoch.(cell) = st.epoch then st.cd_cache.(cell)
  else begin
    let d = Select.cur_disp grid cell in
    st.cd_cache.(cell) <- d;
    st.cd_epoch.(cell) <- st.epoch;
    d
  end

let expansions st = st.pops

(* Read-set recorder for speculative (tiled) searches: which bins and dies
   the search consulted, and whether the mask pruned an expansion that a
   reference mask (the non-tile mask the authoritative pass runs under)
   would have allowed.  A blocked search may differ from the authoritative
   one, so its result is unusable as a speculation. *)
type probe = {
  mutable pr_bins : int list;  (** bins whose state the search read *)
  mutable pr_utils : (int * float * bool) list;
      (** utilization-cap evaluations: (die, inflow, outcome) for every
          [die_used] comparison a D2D selection performed *)
  mutable pr_blocked : bool;
  pr_ref : bool array option;
      (** the mask the authoritative search runs under; [None] = unmasked *)
}

let probe ?ref_mask () =
  { pr_bins = []; pr_utils = []; pr_blocked = false; pr_ref = ref_mask }

(* Pruning bound of Alg. 1 line 13.  The paper writes (1 + α)·cost(p_best);
   because iterative re-legalization makes costs near zero or negative, we
   use the equivalent additive form best + α·(|best| + h_r) so the slack
   never collapses to nothing. *)
let bound cfg grid src best =
  if cfg.Config.exhaustive || best = infinity then infinity
  else begin
    let h_r =
      (Tdf_netlist.Design.die grid.Grid.design src.Grid.die)
        .Tdf_netlist.Die.row_height
    in
    best +. (cfg.Config.alpha *. (Float.abs best +. float_of_int h_r))
  end

let search ?mask ?probe:pr cfg grid st ~src =
  Tdf_telemetry.span "flow3d.augment" @@ fun () ->
  st.epoch <- st.epoch + 1;
  st.pops <- 0;
  let epoch = st.epoch in
  let read_bin bid =
    match pr with Some p -> p.pr_bins <- bid :: p.pr_bins | None -> ()
  in
  let util_probe =
    match pr with
    | Some p ->
      Some
        (fun ~die ~inflow ~ok -> p.pr_utils <- (die, inflow, ok) :: p.pr_utils)
    | None -> None
  in
  (* A masked-out expansion the reference mask would have allowed means
     this search saw less of the grid than the authoritative one will. *)
  let note_pruned dst =
    match pr with
    | Some p ->
      if
        match p.pr_ref with
        | None -> true
        | Some ref_mask -> ref_mask.(dst)
      then p.pr_blocked <- true
    | None -> ()
  in
  read_bin src.Grid.id;
  (* One augmentation pushes at most cap(s): a single path can only relay
     what the bins along it can absorb or already hold, so large supplies
     are shed in successive chunks (Alg. 2 re-queues the bin while
     overflowed). *)
  let sup = Float.min (Grid.supply src) (float_of_int (Grid.cap src)) in
  if sup <= 0. then None
  else begin
    let sels = ref 0 in
    (* Frontier engine: the binary heap is the deterministic default; the
       radix frontier (Config.Radix) trades exact pop order among
       near-tied bins for O(1) pushes — out-of-order keys (negative path
       costs can regress) are clamped to the extracted min and counted. *)
    let use_radix = cfg.Config.frontier = Config.Radix in
    let q = st.heap and rq = st.rheap in
    let clamps = ref 0 in
    if use_radix then Heap_radix.clear rq else Heap.clear q;
    let frontier_add ~key vid =
      if use_radix then begin
        if Heap_radix.add_clamped rq ~key vid then incr clamps
      end
      else Heap.add q ~key vid
    in
    let frontier_empty () =
      if use_radix then Heap_radix.is_empty rq else Heap.is_empty q
    in
    let frontier_pop () =
      if use_radix then begin
        let v = Heap_radix.top_value rq in
        Heap_radix.remove_top rq;
        v
      end
      else begin
        let v = Heap.top_value q in
        Heap.remove_top q;
        v
      end
    in
    st.cost.(src.Grid.id) <- 0.;
    st.flow.(src.Grid.id) <- sup;
    st.parent.(src.Grid.id) <- -1;
    st.visited.(src.Grid.id) <- epoch;
    frontier_add ~key:0 src.Grid.id;
    let best_cost = ref infinity and best_leaf = ref (-1) in
    let rec loop () =
      if not (frontier_empty ()) then begin
        let uid = frontier_pop () in
        st.pops <- st.pops + 1;
        (* Each bin is pushed at most once per epoch (visited on push), so
           its exact float cost is the stored label. *)
        let cost_u = st.cost.(uid) in
        let u = grid.Grid.bins.(uid) in
        if cost_u <= bound cfg grid src !best_cost then begin
          let need = st.flow.(uid) -. Grid.demand u in
          if need > 1e-9 then
            Array.iter
              (fun (e : Grid.edge) ->
                let kind_ok =
                  match e.Grid.kind with
                  | Grid.D2d -> cfg.Config.d2d_edges
                  | Grid.Horizontal | Grid.Vertical -> true
                in
                let mask_ok =
                  match mask with None -> true | Some m -> m.(e.Grid.dst)
                in
                if kind_ok && not mask_ok then note_pruned e.Grid.dst;
                if kind_ok && mask_ok && st.visited.(e.Grid.dst) <> epoch
                then begin
                  let v = grid.Grid.bins.(e.Grid.dst) in
                  incr sels;
                  read_bin v.Grid.id;
                  match
                    Select.select ~cur:(cached_cur_disp grid st) ?util_probe cfg
                      grid ~src:u ~dst:v ~kind:e.Grid.kind ~need
                  with
                  | None -> ()
                  | Some sel ->
                    let vid = v.Grid.id in
                    st.visited.(vid) <- epoch;
                    st.flow.(vid) <- sel.Select.inflow;
                    st.cost.(vid) <- cost_u +. sel.Select.sel_cost;
                    st.parent.(vid) <- uid;
                    if st.cost.(vid) < bound cfg grid src !best_cost then begin
                      if sel.Select.inflow <= Grid.demand v +. 1e-9 then begin
                        (* candidate path (line 14) *)
                        if st.cost.(vid) < !best_cost then begin
                          best_cost := st.cost.(vid);
                          best_leaf := vid
                        end
                      end
                      else frontier_add ~key:(micro st.cost.(vid)) vid
                    end
                end)
              grid.Grid.edges.(uid)
        end;
        loop ()
      end
    in
    loop ();
    Tdf_telemetry.count "flow3d.augment.pops" st.pops;
    if !sels > 0 then Tdf_telemetry.count "flow3d.select.calls" !sels;
    if !clamps > 0 then Tdf_telemetry.count "flow3d.frontier_clamps" !clamps;
    if !best_leaf < 0 then None
    else begin
      (* Walk parents leaf → root, then reverse. *)
      let rec walk vid acc =
        let b = grid.Grid.bins.(vid) in
        let n =
          {
            pn_bin = vid;
            pn_flow_in = st.flow.(vid);
            pn_need_out = Float.max 0. (st.flow.(vid) -. Grid.demand b);
          }
        in
        if st.parent.(vid) < 0 then n :: acc else walk st.parent.(vid) (n :: acc)
      in
      Some (walk !best_leaf [])
    end
  end
