(** Selection of the fractional-cell set C(u, v) to move across one edge
    (Alg. 1 line 10 / §III-C).

    Shared by the path search (speculative) and the path realization
    (actual movement): both must pick the same cells given the same grid
    state.

    Across a {e horizontal} edge the cheapest fractions are moved and the
    last pick is split so the moved width is exactly the needed flow.
    Across {e vertical} / {e D2D} edges only complete cells move (all of a
    cell's fragments); cells are taken in increasing movement cost until the
    width freed in the source bin reaches the needed flow. *)

module Grid = Tdf_grid.Grid
(** Canonical grid substrate (no local shim module). *)

type pick = {
  p_cell : int;
  p_rho : float;  (** fraction moved; 1.0 for whole-cell moves *)
}

type selection = {
  picks : pick list;
  freed : float;  (** width leaving the source bin, source-die units *)
  inflow : float;  (** width entering the destination bin, dest-die units *)
  sel_cost : float;  (** total displacement cost of the movement (Eq. 5/7) *)
}

val cur_disp : Grid.t -> int -> int
(** Estimated displacement of a cell at its current fragment span: distance
    from its initial position to the nearest point of the span (the D_c(u)
    term of Eq. 5). *)

val unit_cost :
  ?cur:(int -> int) ->
  Config.t ->
  Grid.t ->
  cell:int ->
  dst:Grid.bin ->
  kind:Grid.edge_kind ->
  float
(** cost_{u,v,c} for moving one cell toward [dst]: [D_c(v) − D_c(u)], plus
    the Eq. 7 congestion term on D2D edges, clamped at 0 when the
    configuration forbids negative costs. *)

val select :
  ?cur:(int -> int) ->
  ?util_probe:(die:int -> inflow:float -> ok:bool -> unit) ->
  Config.t ->
  Grid.t ->
  src:Grid.bin ->
  dst:Grid.bin ->
  kind:Grid.edge_kind ->
  need:float ->
  selection option
(** [select cfg grid ~src ~dst ~kind ~need] picks C(src, dst) shedding at
    least [need] width from [src] ([freed >= need], with equality for
    horizontal edges).  [None] when the bin cannot shed [need] width or, on
    a D2D edge, when moving would exceed the destination die's utilization
    cap (§III-F).  [?cur] optionally overrides the D_c(u) lookup with a
    cached function — the search memoizes it per search epoch, since the
    grid does not mutate while searching.  [?util_probe] observes every
    evaluation of the utilization cap — the [die_used] comparison and its
    outcome — so the tiled legalizer can later re-evaluate the same
    comparison against drifted die totals (the only die state a selection
    reads). *)
