(* Tile-sharded speculation layer of the flow legalizer.

   The bin grid is cut into K fixed spatial tiles (a pure function of the
   grid geometry, never of the job count); each tile runs a masked flow
   pass on a private clone of the grid, recording a log of proposals (one
   per augmenting search) together with the versions of every bin and die
   the search consulted.  The authoritative pass then replays the ordinary
   sequential supply loop and, at each search site, consumes the owning
   tile's next proposal if and only if it provably equals what the live
   search would return: the popped bin and its exact supply match, the
   tile mask never pruned an expansion the live mask would allow, and no
   bin or die in the proposal's read set has been written since the clone
   was taken (version vectors, bumped segment-wide on every commit by both
   sides).  Any mismatch conservatively discards the tile's remaining log
   and falls back to a live search, so the committed result is equal to
   the untiled pass by construction — bit-identical at every [--tiles] and
   [--jobs] combination — while validated speculation skips the search
   cost that was paid in parallel. *)

module Grid = Tdf_grid.Grid
module Heap = Tdf_util.Heap_int

(* ------------------------------------------------------------------ *)
(* Process-wide tile count (CLI --tiles > TDFLOW_TILES > 1), mirroring  *)
(* the Tdf_par jobs knob.                                              *)
(* ------------------------------------------------------------------ *)

let clamp n = max 1 (min n 64)

let env_tiles () =
  match Sys.getenv_opt "TDFLOW_TILES" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some (clamp n)
    | _ -> None)
  | None -> None

let requested : int option ref = ref None

let set_tiles n = requested := Some (clamp n)

let tiles () =
  match !requested with
  | Some n -> n
  | None -> Option.value (env_tiles ()) ~default:1

(* ------------------------------------------------------------------ *)
(* Partition and halo masks                                            *)
(* ------------------------------------------------------------------ *)

let default_halo = 4

(* Near-square kx × ky factorization with ky ≤ kx, so K = 2 splits into
   columns and K = 4 / 9 into square grids. *)
let split k =
  let r = int_of_float (Float.sqrt (float_of_int k)) in
  let rec down d = if d <= 1 then 1 else if k mod d = 0 then d else down (d - 1) in
  let ky = down (max 1 r) in
  (k / ky, ky)

(* Bin id → tile id over the (x, y) bounding box of the allowed bins,
   spanning every die, so D2D edges stay inside one tile column.  Reads
   only static geometry: the same grid shape yields the same partition at
   any job count. *)
let partition ?within grid ~tiles =
  let k = clamp tiles in
  let n = Grid.n_bins grid in
  let part = Array.make n (-1) in
  let allowed bid = match within with None -> true | Some m -> m.(bid) in
  if k <= 1 then begin
    for i = 0 to n - 1 do
      if allowed i then part.(i) <- 0
    done;
    part
  end
  else begin
    let kx, ky = split k in
    let x0 = ref max_int and x1 = ref min_int in
    let y0 = ref max_int and y1 = ref min_int in
    Array.iter
      (fun (b : Grid.bin) ->
        if allowed b.Grid.id then begin
          if b.Grid.x < !x0 then x0 := b.Grid.x;
          if b.Grid.x + b.Grid.width > !x1 then x1 := b.Grid.x + b.Grid.width;
          if b.Grid.y < !y0 then y0 := b.Grid.y;
          if b.Grid.y > !y1 then y1 := b.Grid.y
        end)
      grid.Grid.bins;
    if !x0 > !x1 then part
    else begin
      let w = max 1 (!x1 - !x0) and h = max 1 (!y1 - !y0 + 1) in
      Array.iter
        (fun (b : Grid.bin) ->
          if allowed b.Grid.id then begin
            (* 2·center keeps the bucket computation integral *)
            let cx = (2 * (b.Grid.x - !x0)) + b.Grid.width in
            let tx = min (kx - 1) (cx * kx / (2 * w)) in
            let ty = min (ky - 1) ((b.Grid.y - !y0) * ky / h) in
            part.(b.Grid.id) <- (ty * kx) + tx
          end)
        grid.Grid.bins;
      part
    end
  end

type t = {
  t_k : int;  (** tile count after clamping *)
  t_part : int array;  (** bin id → owning tile, -1 outside [within] *)
  t_masks : bool array array;  (** tile → interior ∪ halo ring mask *)
}

let make ?within ?(halo = default_halo) grid ~tiles =
  let k = clamp tiles in
  let part = partition ?within grid ~tiles:k in
  let masks =
    Array.init k (fun t ->
        let seeds = ref [] in
        Array.iteri (fun bid p -> if p = t then seeds := bid :: !seeds) part;
        Grid.region ?within grid ~seeds:!seeds ~radius:halo)
  in
  { t_k = k; t_part = part; t_masks = masks }

(* ------------------------------------------------------------------ *)
(* Version ledger                                                      *)
(* ------------------------------------------------------------------ *)

(* A search that reads bin [b] depends on [b]'s own fragments plus, via
   [cur_disp], the fragment span of every cell fragmented in [b] — and a
   write that changes such a cell's span necessarily touches a bin the
   cell occupied.  So the exact write footprint of a commit is the path's
   bins plus every moved cell's pre-move span (the {!commit_trace}), and
   bumping exactly those bins makes "recorded read versions unchanged"
   prove the search would read identical state.  Both the clone pass and
   the authoritative pass bump the same trace for the same commit, so the
   ledgers advance 1:1 on reconciled proposals.  Die utilization needs no
   version: the only die state a search reads is the [die_used] float,
   whose cap comparisons are re-evaluated by value at consume time. *)
type ledger = { l_ver : int array }

let ledger grid = { l_ver = Array.make (Grid.n_bins grid) 0 }

let bump_bins led bids =
  List.iter (fun bid -> led.l_ver.(bid) <- led.l_ver.(bid) + 1)
    (List.sort_uniq compare bids)

(* The commit trace: the applied picks (the fingerprint compared between
   clone and authoritative realizations) plus the pre-move span of every
   moved cell (the write footprint beyond the path's own bins). *)
type commit_trace = {
  mutable tr_moves : (int * int * int64) list;  (** (edge, cell, rho bits) *)
  mutable tr_spans : int list;  (** pre-move bins of every moved cell *)
}

let trace () = { tr_moves = []; tr_spans = [] }

let trace_probe grid tr ~edge ~cell ~rho =
  tr.tr_moves <- (edge, cell, Int64.bits_of_float rho) :: tr.tr_moves;
  tr.tr_spans <- List.rev_append (Grid.cell_bins grid cell) tr.tr_spans

let trace_moves tr = Array.of_list (List.rev tr.tr_moves)

let bump_path led tr (path : Augment.path) =
  bump_bins led
    (List.rev_append tr.tr_spans (List.map (fun n -> n.Augment.pn_bin) path))

(* Relief moves are never speculated (always live), so a coarse
   segment-wide footprint only costs false conflicts, never soundness:
   the moved cell's pre-move span lies inside [src]'s segment. *)
let bump_move led grid ~(src : Grid.bin) ~(dst : Grid.bin) =
  let seg_bins sid = Array.to_list grid.Grid.segments.(sid).Grid.s_bins in
  bump_bins led (seg_bins src.Grid.seg @ seg_bins dst.Grid.seg)

(* ------------------------------------------------------------------ *)
(* Proposals and speculation                                           *)
(* ------------------------------------------------------------------ *)

let supply_micro b = int_of_float (Float.round (Grid.supply b *. 1e6))

type proposal = {
  p_bid : int;  (** supply bin the clone pass popped *)
  p_key : int;  (** its exact micro-supply at pop time *)
  p_path : Augment.path option;  (** the search result to substitute *)
  p_expansions : int;  (** queue pops the recorded search performed *)
  p_reads : (int * int) array;  (** (bin, expected version) read set *)
  p_utils : (int * float * bool) array;
      (** utilization-cap evaluations ((die, inflow, outcome)) the search
          performed — replayed against the live [die_used] at consume
          time, so die totals may drift freely as long as every cap
          comparison still resolves the same way *)
  p_moves : (int * int * int64) array;
      (** the clone realization's applied picks ((path edge, cell, rho
          bits)) — the commit fingerprint; [||] for dead-end proposals *)
}

let reads_of led (probe : Augment.probe) =
  let bins = List.sort_uniq compare probe.Augment.pr_bins in
  ( Array.of_list (List.map (fun b -> (b, led.l_ver.(b))) bins),
    Array.of_list (List.rev probe.Augment.pr_utils) )

type scratch = { sp_state : Augment.state; sp_scratch : Mover.scratch }

(* One tile's masked pass on a private clone: the exact supply loop of
   [Flow3d.local_pass] restricted to the tile's interior supply bins and
   halo mask, recording one proposal per search.  The pass stops at the
   first unusable point: a search the tile mask visibly constrained, or a
   dead-end (the live pass relieves there, reading global state a clone
   cannot mirror).  Speculation never ticks the real budget. *)
let speculate_tile ?within cfg tl grid t sc =
  let clone = Grid.clone grid in
  let led = ledger grid in
  let mask = tl.t_masks.(t) in
  let state = sc.sp_state and scratch = sc.sp_scratch in
  let q = Heap.create () in
  let retries = Hashtbl.create 16 in
  List.iter
    (fun (b : Grid.bin) ->
      if tl.t_part.(b.Grid.id) = t then
        Heap.add q ~key:(-supply_micro b) b.Grid.id)
    (Grid.overflowed_bins clone);
  let out = ref [] in
  let rec loop () =
    match Heap.pop q with
    | None -> ()
    | Some (key, bid) ->
      let b = clone.Grid.bins.(bid) in
      let msup = supply_micro b in
      if msup <= 1 then loop ()
      else if key <> -msup then begin
        Heap.add q ~key:(-msup) bid;
        loop ()
      end
      else begin
        let probe = Augment.probe ?ref_mask:within () in
        let res = Augment.search ~mask ~probe cfg clone state ~src:b in
        if probe.Augment.pr_blocked then
          (* The halo visibly constrained this search: its result is
             unusable, but nothing was written, so the rest of the tile
             can keep speculating — the bin is simply left to the
             authoritative pass (skipped, never requeued here). *)
          loop ()
        else begin
          let p_reads, p_utils = reads_of led probe in
          let record p_path p_moves =
            out :=
              {
                p_bid = bid;
                p_key = msup;
                p_path;
                p_expansions = Augment.expansions state;
                p_reads;
                p_utils;
                p_moves;
              }
              :: !out
          in
          match res with
          | None ->
            (* Dead end: the authoritative pass relieves here, a global
               read a clone cannot mirror.  The recorded [None] still
               substitutes the search itself; the clone skips the bin
               (no relief, no requeue) and keeps speculating. *)
            record None [||];
            loop ()
          | Some path ->
            let tr = trace () in
            ignore
              (Mover.realize ~pick_probe:(trace_probe clone tr) cfg clone
                 scratch path);
            record (Some path) (trace_moves tr);
            bump_path led tr path;
            let msup' = supply_micro b in
            if msup' > 1 then begin
              (* verbatim requeue_or_fail of the authoritative loop *)
              let r = try Hashtbl.find retries bid with Not_found -> 0 in
              if msup' < msup then begin
                Hashtbl.replace retries bid 0;
                Heap.add q ~key:(-msup') bid
              end
              else if r + 1 <= cfg.Config.max_retries then begin
                Hashtbl.replace retries bid (r + 1);
                Heap.add q ~key:(-msup') bid
              end
            end;
            loop ()
        end
      end
  in
  loop ();
  Array.of_list (List.rev !out)

let speculate ?within cfg tl grid =
  let logs = Array.make tl.t_k [||] in
  Tdf_par.run_local
    ~local:(fun () -> ref None)
    ~n:tl.t_k
    (fun cell t ->
      let sc =
        match !cell with
        | Some sc -> sc
        | None ->
          let sc =
            {
              sp_state = Augment.create_state grid;
              sp_scratch = Mover.create_scratch ();
            }
          in
          cell := Some sc;
          sc
      in
      Tdf_telemetry.span "flow3d.tile.pass" @@ fun () ->
      logs.(t) <- speculate_tile ?within cfg tl grid t sc);
  logs

(* ------------------------------------------------------------------ *)
(* Consumption by the authoritative pass                               *)
(* ------------------------------------------------------------------ *)

type consumer = {
  c_logs : proposal array array;
  c_pos : int array;  (** next unconsumed proposal; -1 = log discarded *)
  c_led : ledger;
  c_grid : Grid.t;  (** the authoritative grid ([die_used] by value) *)
  c_part : int array;
  mutable c_pending : (int * proposal) option;
      (** last consumed path proposal, awaiting its commit fingerprint *)
  mutable c_reconciled : int;  (** proposals validated and committed *)
  mutable c_conflicts : int;  (** proposals discarded on a mismatch *)
  mutable c_live : int;  (** search sites resolved live (oracle misses) *)
}

let consumer tl logs grid =
  {
    c_logs = logs;
    c_pos = Array.make tl.t_k 0;
    c_led = ledger grid;
    c_grid = grid;
    c_part = tl.t_part;
    c_pending = None;
    c_reconciled = 0;
    c_conflicts = 0;
    c_live = 0;
  }

let reconciled c = c.c_reconciled

let conflicts c = c.c_conflicts

let live_searches c = c.c_live

(* Re-evaluate a recorded utilization-cap comparison against the live die
   totals — the exact expression [Select.select] computes, so the live
   search resolves the comparison identically iff the outcomes match. *)
let util_still (c : consumer) (d, inflow, passed) =
  let grid = c.c_grid in
  let max_util =
    (Tdf_netlist.Design.die grid.Grid.design d).Tdf_netlist.Die.max_util
  in
  let now =
    grid.Grid.die_cap.(d) <= 0.
    || (grid.Grid.die_used.(d) +. inflow) /. grid.Grid.die_cap.(d) <= max_util
  in
  now = passed

let drop c t pos =
  c.c_conflicts <- c.c_conflicts + (Array.length c.c_logs.(t) - pos);
  c.c_pos.(t) <- -1

let consume c ~(src : Grid.bin) ~msup =
  c.c_pending <- None;
  let miss () =
    c.c_live <- c.c_live + 1;
    None
  in
  let t = c.c_part.(src.Grid.id) in
  if t < 0 then miss ()
  else begin
    let pos = c.c_pos.(t) in
    if pos < 0 || pos >= Array.length c.c_logs.(t) then miss ()
    else begin
      let p = c.c_logs.(t).(pos) in
      if p.p_bid <> src.Grid.id then
        (* The authoritative loop popped a different bin of this tile
           first (interleaving, or a bin the clone skipped as blocked) —
           not a divergence.  Keep the log; the head proposal stays
           consumable at its own bin's next fresh pop. *)
        miss ()
      else begin
        let ok =
          p.p_key = msup
          && Array.for_all (fun (b, v) -> c.c_led.l_ver.(b) = v) p.p_reads
          && Array.for_all (util_still c) p.p_utils
        in
        if ok then begin
          c.c_pos.(t) <- pos + 1;
          c.c_reconciled <- c.c_reconciled + 1;
          if p.p_path <> None then c.c_pending <- Some (t, p);
          Some (p.p_path, p.p_expansions)
        end
        else begin
          drop c t pos;
          miss ()
        end
      end
    end
  end

(* The commit fingerprint: a consumed proposal's clone realization must
   have applied exactly the picks the authoritative realization just did,
   or the clone's state has silently diverged (a drifted die total flipped
   a realize-time cap comparison) and its remaining log is unusable.  The
   commit itself is always correct — the authoritative pass realized the
   proven-equal path on the live grid. *)
let note_path c _grid path ~(tr : commit_trace) =
  (match c.c_pending with
  | Some (t, p) when (match p.p_path with Some pp -> pp == path | None -> false)
    ->
    if p.p_moves <> trace_moves tr then drop c t (max 0 c.c_pos.(t))
  | Some _ | None -> ());
  c.c_pending <- None;
  bump_path c.c_led tr path

let note_move c grid ~src ~dst =
  c.c_pending <- None;
  bump_move c.c_led grid ~src ~dst

(* ------------------------------------------------------------------ *)
(* Process-wide counters (surfaced by the serve daemon's stats reply)   *)
(* ------------------------------------------------------------------ *)

type counters = {
  passes : int;  (** tiled passes run *)
  reconciled : int;
  conflicts : int;
  live : int;
}

let zero = { passes = 0; reconciled = 0; conflicts = 0; live = 0 }

let totals = ref zero

let record c =
  let t = !totals in
  totals :=
    {
      passes = t.passes + 1;
      reconciled = t.reconciled + c.c_reconciled;
      conflicts = t.conflicts + c.c_conflicts;
      live = t.live + c.c_live;
    }

let counters () = !totals

let reset_counters () = totals := zero
