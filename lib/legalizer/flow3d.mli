(** The 3D-Flow legalizer (Algorithm 2).

    Pipeline: build the bin grid and 3D grid graph; assign cells to nearest
    bins; resolve overflowed bins in descending supply order by augmenting
    flow along the cheapest path (Alg. 1); legalize each row segment with
    Abacus PlaceRow; then run the cycle-canceling post-optimization on a
    finer grid.

    The Bonn baseline and the w/o-D2D ablation run through the same entry
    point with their {!Config} presets. *)

type stats = {
  augmentations : int;  (** augmenting paths realized *)
  expansions : int;  (** total priority-queue pops across searches *)
  d2d_cells : int;  (** cells whose final die differs from the nearest-die
                        assignment of the global placement (#Move, Table V) *)
  failed_supplies : int;  (** supply bins given up on *)
  reliefs : int;  (** direct-relocation fallbacks taken on search dead-ends *)
  residual_overflow : float;  (** Σ sup(v) left after the flow phase *)
  post_opt_rounds : int;  (** accepted post-optimization rounds *)
  complete : bool;
      (** [false] when a budget expired mid-run: the placement is the
          best effort reached before the deadline (remaining supply shows
          up in [residual_overflow]). *)
}

type result = {
  placement : Tdf_netlist.Placement.t;
  stats : stats;
}

type error =
  | No_segment of { cell : int; die : int }
      (** A cell fits in no row segment of any die; the grid cannot even
          host the initial assignment. *)
  | Injected of { site : string }
      (** A fault-injection site forced this run to fail. *)

val error_to_string : error -> string

val run :
  ?cfg:Config.t ->
  ?budget:Tdf_util.Budget.t ->
  ?start:Tdf_netlist.Placement.t ->
  ?tiles:int ->
  Tdf_netlist.Design.t ->
  (result, error) Stdlib.result
(** The resilient entry point: legalize from [start] (default: the
    design's global placement) under an optional budget.  When the budget
    exhausts mid-flow, the supply-resolution loop and post-optimization
    wind down and the best-effort placement is returned with
    [stats.complete = false] — the run never hangs.  Structural failures
    (an unplaceable cell) are returned as [Error] instead of raising.
    [tiles] (default: the process-wide {!Tile.tiles} knob) shards every
    flow pass into that many speculative tiles on the {!Tdf_par} pool;
    the placement is bit-identical at any tiles × jobs combination.
    Fault-injection sites: ["flow3d.flow_pass"] (forces an [Injected]
    error) and ["flow3d.timeout"] (exhausts the budget). *)

val run_tiled :
  ?cfg:Config.t ->
  ?budget:Tdf_util.Budget.t ->
  ?start:Tdf_netlist.Placement.t ->
  tiles:int ->
  Tdf_netlist.Design.t ->
  (result, error) Stdlib.result
(** {!run} with an explicit tile count.  [run_tiled ~tiles:1] executes
    the untiled code path; for any [tiles] the output is byte-identical
    to [run] — tiling is a wall-clock strategy, never a result change. *)

val legalize : ?cfg:Config.t -> Tdf_netlist.Design.t -> result
(** Legalize from the design's global placement (nearest-die initial
    assignment).  Raising wrapper over {!run} with no budget. *)

val legalize_from :
  ?cfg:Config.t -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> result
(** Legalize from an arbitrary starting placement — the incremental mode
    used by the post-optimization itself and by ECO-style flows
    ([examples/eco_incremental.exe]).  Displacement is still measured
    against the design's initial positions. *)

val flow_bin_width : Tdf_netlist.Design.t -> factor:float -> int
(** w_v = factor · w̄_c (§III-F), at least 1. *)

(** {2 Localized kernel (incremental / ECO re-legalization)}

    The two phases of one legalization pass, exposed with region masks so
    [Tdf_incremental.Eco] can re-run them over a dirty subset of the grid
    while everything outside stays frozen. *)

type pass_stats = {
  pass_augmentations : int;
  pass_expansions : int;
  pass_failed : int;  (** supply bins given up on (left overflowed) *)
  pass_reliefs : int;
  pass_complete : bool;  (** [false] when the budget expired mid-pass *)
}

type hooks = {
  h_search :
    src:Tdf_grid.Grid.bin ->
    msup:int ->
    (Augment.path option * int) option;
      (** substitute a recorded search result (and its expansion count)
          proven equal to the live one, or [None] to search live *)
  h_committed : Augment.path -> tr:Tile.commit_trace -> unit;
      (** a path was realized with this commit trace (applied picks and
          write footprint — the tiled pass's fingerprint) *)
  h_relieved : src:Tdf_grid.Grid.bin -> dst:Tdf_grid.Grid.bin -> unit;
      (** a relief move was taken *)
}
(** Speculation hooks of the tiled pass ({!Tile}): the commit loop stays
    the sequential one, hooks only short-circuit searches whose results
    are already proven and report every write. *)

val local_pass :
  ?mask:bool array ->
  ?hooks:hooks ->
  Config.t ->
  budget:Tdf_util.Budget.t ->
  Tdf_grid.Grid.t ->
  pass_stats
(** Resolve the grid's overflowed bins in descending supply order (Alg. 2
    lines 4–10) on an already-assigned grid.  With [mask] (indexed by bin
    id) only masked-in supply bins are queued and neither the augmenting
    search nor the relief fallback ever touches a masked-out bin.  Without
    [mask] this is exactly the full flow pass [run] performs. *)

val tiled_local_pass :
  ?mask:bool array ->
  ?tiles:int ->
  Config.t ->
  budget:Tdf_util.Budget.t ->
  Tdf_grid.Grid.t ->
  pass_stats
(** {!local_pass} sharded into [tiles] speculative tiles (default: the
    process-wide {!Tile.tiles} knob): per-tile masked passes run on grid
    clones over the {!Tdf_par} pool, the sequential commit loop then
    consumes their proposals under version validation ({!Tile}).  The
    resulting grid state and stats are byte-identical to
    [local_pass ?mask]; masked regions too small to shard (fewer than
    8 × tiles allowed bins) skip speculation. *)

val place_segments :
  ?only:bool array -> Tdf_grid.Grid.t -> Tdf_netlist.Placement.t -> unit
(** Abacus PlaceRow (§III-D) on the grid's segments, writing final
    positions into the placement.  With [only] (indexed by segment id)
    untouched segments keep whatever the placement already records —
    the frozen-region half of the ECO contract. *)
