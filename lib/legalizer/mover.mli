(** Realizing an augmenting path (§III-C): move the selected fractional
    cells between adjacent bins along the path, backtracking from the
    candidate leaf to the root supply bin. *)

module Grid = Tdf_grid.Grid
(** Canonical grid substrate (no local shim module). *)

type scratch
(** Reusable realization buffers; create one per flow pass and thread it
    through every {!realize} call to hoist the per-augmentation path-array
    allocation. *)

val create_scratch : unit -> scratch

val edge_kind : Grid.t -> src:Grid.bin -> dst:Grid.bin -> Grid.edge_kind
(** Kind of the (existing) edge between two adjacent bins on a path. *)

val realize :
  ?pick_probe:(edge:int -> cell:int -> rho:float -> unit) ->
  Config.t ->
  Grid.t ->
  scratch ->
  Augment.path ->
  int
(** [realize cfg grid scratch path] executes the movements.  Selections are
    recomputed on the live grid with the flow targets recorded during the
    search; if intervening moves (a straddling cell pulled out by a
    downstream whole-cell move) reduced availability, the step moves what
    remains.  Returns the number of cells moved across dies (the #Move
    statistic of Table V).  [?pick_probe] observes every applied pick in
    order — the commit fingerprint the tiled legalizer compares between
    its speculative and authoritative realizations. *)
