(** Tile-sharded speculation for the flow pass.

    The bin grid is partitioned into K fixed spatial tiles (a pure
    function of the grid geometry and K — never of the job count); each
    tile runs a masked flow pass on a private {!Tdf_grid.Grid.clone},
    producing a log of {e proposals}: one recorded search result per
    supply-bin pop, together with the exact versions of every bin and die
    the search consulted.  The authoritative pass ({!Flow3d.local_pass}
    with hooks) then replays the ordinary sequential loop, consuming a
    tile's next proposal only when it provably equals what the live
    search would return — popped bin and micro-supply match, the tile
    mask never pruned an expansion the live mask would allow, and no read
    version moved.  A mismatch discards the tile's remaining log (the
    conflict path), so the committed placement is equal to the untiled
    pass {e by construction}: bit-identical at every [--tiles] × [--jobs]
    combination. *)

module Grid = Tdf_grid.Grid

(** {2 Process-wide tile count}

    Mirrors the {!Tdf_par} jobs knob: CLI [--tiles] beats the
    [TDFLOW_TILES] environment variable beats the default of 1; values
    are clamped to [1, 64]; an unparsable or non-positive environment
    value is ignored. *)

val clamp : int -> int

val env_tiles : unit -> int option

val set_tiles : int -> unit

val tiles : unit -> int

(** {2 Partition} *)

val default_halo : int

val partition : ?within:bool array -> Grid.t -> tiles:int -> int array
(** [partition grid ~tiles] maps every bin id to its owning tile
    ([0 .. tiles-1]) by cutting the bounding box of the (allowed) bins
    into a near-square kx × ky grid of columns and rows spanning every
    die — D2D edges stay inside one tile.  Bins outside [within] get -1.
    Reads only static geometry: byte-identical at any job count. *)

type t = {
  t_k : int;
  t_part : int array;  (** bin id → owning tile, -1 outside [within] *)
  t_masks : bool array array;  (** tile → interior ∪ halo ring *)
}

val make : ?within:bool array -> ?halo:int -> Grid.t -> tiles:int -> t
(** Partition plus per-tile masks: a tile's mask is its interior widened
    by a [halo]-hop BFS ring ({!Grid.region}), confined to [within]. *)

(** {2 Proposals} *)

val supply_micro : Grid.bin -> int
(** sup(v) in exact micro-units — the heap key and staleness test shared
    with {!Flow3d.local_pass}. *)

type proposal = {
  p_bid : int;
  p_key : int;
  p_path : Augment.path option;
  p_expansions : int;
  p_reads : (int * int) array;  (** (bin id, expected segment version) *)
  p_utils : (int * float * bool) array;
      (** ((die, inflow, outcome)) utilization-cap evaluations, replayed
          against the live [die_used] at consume time — die totals may
          drift as long as every comparison still resolves the same way *)
  p_moves : (int * int * int64) array;
      (** ((path edge, cell, rho bits)) picks the clone realization
          applied — compared against the authoritative realization's
          picks ({!note_path}); a mismatch voids the rest of the log *)
}

val speculate :
  ?within:bool array -> Config.t -> t -> Grid.t -> proposal array array
(** Run every tile's masked clone pass on the {!Tdf_par} pool (per-domain
    search state via [run_local]) and return one proposal log per tile.
    Pure speculation: the input grid is never mutated and no budget is
    ticked.  Each log is a function of the grid snapshot and the tile
    mask only, hence deterministic at any pool size. *)

(** {2 Consumption by the authoritative pass} *)

type ledger
(** Per-bin version vector bumped over each commit's exact write
    footprint (path bins plus every moved cell's pre-move span); equality
    with a proposal's recorded read set proves the search would read
    identical state.  Die utilization is validated by re-evaluating the
    recorded cap comparisons instead ({!proposal.p_utils}). *)

type commit_trace
(** Applied picks plus pre-move spans of one {!Mover.realize} run: the
    commit fingerprint and write footprint, collected identically by the
    speculative and the authoritative realization. *)

val trace : unit -> commit_trace

val trace_probe :
  Grid.t -> commit_trace -> edge:int -> cell:int -> rho:float -> unit
(** Partially applied, this is the [?pick_probe] to pass to
    {!Mover.realize}. *)

type consumer

val consumer : t -> proposal array array -> Grid.t -> consumer

val consume :
  consumer -> src:Grid.bin -> msup:int -> (Augment.path option * int) option
(** Oracle for one search site of the authoritative pass: [Some (result,
    expansions)] substitutes the recorded search verbatim; [None] means
    run the live search (log exhausted, discarded, or validation failed —
    the failing tile's remaining log is dropped). *)

val note_path :
  consumer -> Grid.t -> Augment.path -> tr:commit_trace -> unit
(** The authoritative pass realized [path] with commit trace [tr]: bump
    the written versions, and — when the path came from a consumed
    proposal — compare the applied picks against the clone realization's
    fingerprint, discarding the tile's remaining log on divergence (a
    drifted die total flipped a realize-time cap comparison, so the clone
    state no longer tracks the live grid). *)

val note_move : consumer -> Grid.t -> src:Grid.bin -> dst:Grid.bin -> unit
(** The authoritative pass relieved a cell from [src] into [dst]. *)

val reconciled : consumer -> int
(** Proposals validated and committed. *)

val conflicts : consumer -> int
(** Proposals discarded on a validation mismatch. *)

val live_searches : consumer -> int
(** Search sites resolved by a live search (oracle misses). *)

(** {2 Process-wide counters}

    Cumulative across every tiled pass of the process; the serve daemon
    surfaces them in its [stats] reply and startup banner. *)

type counters = {
  passes : int;
  reconciled : int;
  conflicts : int;
  live : int;
}

val record : consumer -> unit

val counters : unit -> counters

val reset_counters : unit -> unit
