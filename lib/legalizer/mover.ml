module Grid = Tdf_grid.Grid

type scratch = {
  mutable s_nodes : Augment.node array;
  mutable s_len : int;
}

let dummy_node = { Augment.pn_bin = -1; pn_flow_in = 0.; pn_need_out = 0. }

let create_scratch () = { s_nodes = [||]; s_len = 0 }

(* Copy the path into the reusable node buffer (grown geometrically), so
   realization allocates nothing per augmentation. *)
let load_path scratch path =
  let n = List.length path in
  if Array.length scratch.s_nodes < n then
    scratch.s_nodes <- Array.make (max 16 (2 * n)) dummy_node;
  List.iteri (fun i nd -> scratch.s_nodes.(i) <- nd) path;
  scratch.s_len <- n

let edge_kind _grid ~src ~dst =
  if src.Grid.seg = dst.Grid.seg then Grid.Horizontal
  else if src.Grid.die = dst.Grid.die then Grid.Vertical
  else Grid.D2d

let apply_selection ?pick_probe ~edge grid ~src ~dst ~kind (sel : Select.selection)
    =
  if Tdf_telemetry.enabled () then
    Tdf_telemetry.count "flow3d.mover.picks" (List.length sel.Select.picks);
  let d2d_moves = ref 0 in
  List.iter
    (fun (p : Select.pick) ->
      (match pick_probe with
      | Some f -> f ~edge ~cell:p.Select.p_cell ~rho:p.Select.p_rho
      | None -> ());
      match kind with
      | Grid.Horizontal ->
        Grid.move_fraction grid ~cell:p.Select.p_cell ~src ~dst ~rho:p.Select.p_rho
      | Grid.Vertical -> Grid.move_whole grid ~cell:p.Select.p_cell ~dst
      | Grid.D2d ->
        incr d2d_moves;
        Grid.move_whole grid ~cell:p.Select.p_cell ~dst)
    sel.Select.picks;
  !d2d_moves

let realize ?pick_probe cfg grid scratch path =
  Tdf_telemetry.span "flow3d.mover" @@ fun () ->
  load_path scratch path;
  let nodes = scratch.s_nodes in
  let n = scratch.s_len in
  let d2d_moves = ref 0 in
  let sels = ref 0 in
  (* Backtrack: move into the leaf first, the root last, so every selection
     sees the bin contents the search saw (modulo straddling cells). *)
  for i = n - 1 downto 1 do
    let u = grid.Grid.bins.(nodes.(i - 1).Augment.pn_bin) in
    let v = grid.Grid.bins.(nodes.(i).Augment.pn_bin) in
    let kind = edge_kind grid ~src:u ~dst:v in
    let need = Float.min nodes.(i - 1).Augment.pn_need_out u.Grid.used in
    if need > 1e-9 then begin
      incr sels;
      match Select.select cfg grid ~src:u ~dst:v ~kind ~need with
      | Some sel ->
        d2d_moves :=
          !d2d_moves + apply_selection ?pick_probe ~edge:i grid ~src:u ~dst:v ~kind sel
      | None ->
        (* Availability shrank below [need]; shed whatever is left. *)
        incr sels;
        (match Select.select cfg grid ~src:u ~dst:v ~kind ~need:u.Grid.used with
        | Some sel ->
          d2d_moves :=
            !d2d_moves + apply_selection ?pick_probe ~edge:i grid ~src:u ~dst:v ~kind sel
        | None -> ())
    end
  done;
  Tdf_telemetry.count "flow3d.mover.d2d_moves" !d2d_moves;
  if !sels > 0 then Tdf_telemetry.count "flow3d.select.calls" !sels;
  !d2d_moves
