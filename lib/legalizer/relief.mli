(** Fallback for supply bins whose augmenting-path search dead-ends.

    In extreme hot spots the whole-cell flow granularity can leave a bin
    with no realizable path (every branch needs to relay more width than
    intermediate bins hold).  [relieve] then relocates one cell directly to
    the cheapest bin with enough free capacity — guaranteed progress that
    keeps the driver's overflow strictly decreasing, at locally greedy
    (Tetris-like) displacement cost.  Rare on realistic utilizations; the
    driver counts its uses in the run statistics. *)

module Grid = Tdf_grid.Grid
(** Canonical grid substrate (no local shim module). *)

val relieve :
  ?mask:bool array ->
  Config.t ->
  Grid.t ->
  src:Grid.bin ->
  (int * Grid.bin) option
(** Move the cheapest movable cell of [src] into the nearest bin whose
    demand covers the cell's width (respecting the D2D configuration and
    die utilization caps).  Returns the [(cell, destination)] taken so the
    tiled commit loop can invalidate speculations reading the touched
    region, or [None] when no cell of [src] fits anywhere.  [mask], when
    given, restricts destinations to bins [b] with [mask.(b) = true] (the
    incremental legalizer's frozen-region contract). *)
