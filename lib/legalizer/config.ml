type frontier = Binary | Radix

let frontier_name = function Binary -> "binary" | Radix -> "radix"

let frontier_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "binary" -> Some Binary
  | "radix" -> Some Radix
  | _ -> None

type t = {
  alpha : float;
  bin_width_factor : float;
  post_bin_width_factor : float;
  d2d_edges : bool;
  allow_negative_cost : bool;
  exhaustive : bool;
  d2d_penalty : bool;
  d2d_base_cost : float;
  post_opt : bool;
  post_opt_passes : int;
  max_retries : int;
  frontier : frontier;
}

let env_frontier =
  match Sys.getenv_opt "TDFLOW_FRONTIER" with
  | None | Some "" -> Binary
  | Some s -> (
    match frontier_of_string s with
    | Some f -> f
    | None ->
      invalid_arg
        (Printf.sprintf "TDFLOW_FRONTIER=%S: expected binary or radix" s))

let default =
  {
    alpha = 0.1;
    bin_width_factor = 10.;
    post_bin_width_factor = 5.;
    d2d_edges = true;
    allow_negative_cost = true;
    exhaustive = false;
    d2d_penalty = true;
    d2d_base_cost = 2.0;
    post_opt = true;
    post_opt_passes = 3;
    max_retries = 4;
    frontier = env_frontier;
  }

let no_d2d = { default with d2d_edges = false }

let bonn_emulation =
  {
    default with
    d2d_edges = false;
    allow_negative_cost = false;
    exhaustive = true;
    d2d_penalty = false;
    post_opt = false;
  }
