module Grid = Tdf_grid.Grid
module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell

let util_ok cfg grid (b : Grid.bin) w =
  let design = grid.Grid.design in
  ignore cfg;
  let max_util = (Design.die design b.Grid.die).Tdf_netlist.Die.max_util in
  grid.Grid.die_cap.(b.Grid.die) <= 0.
  || (grid.Grid.die_used.(b.Grid.die) +. w) /. grid.Grid.die_cap.(b.Grid.die)
     <= max_util

let relieve ?mask cfg grid ~src =
  Tdf_telemetry.span "flow3d.relief" @@ fun () ->
  (* Cheapest (cell, destination) pair over src's cells × bins with enough
     demand.  O(#cells(src) · #bins); only used on search dead-ends. *)
  let design = grid.Grid.design in
  let allowed bid = match mask with None -> true | Some m -> m.(bid) in
  let best = ref None in
  List.iter
    (fun (f : Grid.frag) ->
      let c = Design.cell design f.Grid.cell in
      Array.iter
        (fun (b : Grid.bin) ->
          if b.Grid.id <> src.Grid.id && allowed b.Grid.id then begin
            let w = float_of_int (Cell.width_on c b.Grid.die) in
            let die_ok =
              b.Grid.die = src.Grid.die
              || (cfg.Config.d2d_edges && util_ok cfg grid b w)
            in
            if die_ok && Grid.demand b >= w then begin
              let cost = Grid.est_disp grid ~cell:f.Grid.cell b in
              match !best with
              | Some (bcost, _, _) when bcost <= cost -> ()
              | _ -> best := Some (cost, f.Grid.cell, b)
            end
          end)
        grid.Grid.bins)
    src.Grid.frags;
  match !best with
  | Some (_, cell, b) ->
    Grid.move_whole grid ~cell ~dst:b;
    Tdf_telemetry.incr "flow3d.relief.moves";
    Some (cell, b)
  | None -> None
