module Grid = Tdf_grid.Grid
module Heap = Tdf_util.Heap_int
module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Placement = Tdf_netlist.Placement

type stats = {
  augmentations : int;
  expansions : int;
  d2d_cells : int;
  failed_supplies : int;
  reliefs : int;
  residual_overflow : float;
  post_opt_rounds : int;
  complete : bool;
}

type result = { placement : Placement.t; stats : stats }

type error =
  | No_segment of { cell : int; die : int }
  | Injected of { site : string }

let error_to_string = function
  | No_segment { cell; die } ->
    Printf.sprintf "flow3d: cell %d fits in no segment (requested die %d)" cell
      die
  | Injected { site } -> Printf.sprintf "flow3d: injected failure at %s" site

exception Place_failed of Grid.place_error

let flow_bin_width design ~factor =
  let n = Design.n_cells design in
  if n = 0 then 1
  else begin
    let nd = Design.n_dies design in
    let sum =
      Array.fold_left
        (fun acc c -> acc + Cell.width_on c (Cell.nearest_die c ~n_dies:nd))
        0 design.Design.cells
    in
    let avg = float_of_int sum /. float_of_int n in
    max 1 (int_of_float (Float.round (factor *. avg)))
  end

let eps = 1e-6

(* Supplies are queued as exact micro-units so the priority heap stays
   monomorphic on ints and staleness is plain integer (in)equality —
   no epsilon dance against a negated float key.  One micro-unit mirrors
   the historical [eps = 1e-6] resolution threshold.  Shared with the
   tiled speculation pass, whose key matching relies on the exact same
   quantization. *)
let supply_micro = Tile.supply_micro

type pass_stats = {
  pass_augmentations : int;
  pass_expansions : int;
  pass_failed : int;
  pass_reliefs : int;
  pass_complete : bool;
}

(* Speculation hooks of the tiled pass: [h_search] may substitute a
   recorded search result (with its expansion count) proven equal to what
   the live search would return; [h_committed]/[h_relieved] report every
   write so pending speculations reading the touched region are
   invalidated.  With no hooks the pass is the plain sequential loop. *)
type hooks = {
  h_search : src:Grid.bin -> msup:int -> (Augment.path option * int) option;
  h_committed : Augment.path -> tr:Tile.commit_trace -> unit;
  h_relieved : src:Grid.bin -> dst:Grid.bin -> unit;
}

(* Alg. 2 lines 4-10: resolve supply bins in descending supply order.
   With [mask] set, the pass is localized: only masked-in supply bins are
   queued, the path search never expands outside the mask, and relief
   destinations stay inside it — everything else is frozen.  This is the
   re-legalization kernel of the incremental (ECO) engine. *)
let local_pass ?mask ?hooks cfg ~budget grid =
  Tdf_telemetry.span "flow3d.flow_pass" @@ fun () ->
  let state = Augment.create_state grid in
  let scratch = Mover.create_scratch () in
  let q = Heap.create () in
  let retries = Hashtbl.create 64 in
  let in_mask bid = match mask with None -> true | Some m -> m.(bid) in
  List.iter
    (fun (b : Grid.bin) ->
      if in_mask b.Grid.id then Heap.add q ~key:(-supply_micro b) b.Grid.id)
    (Grid.overflowed_bins grid);
  let augmentations = ref 0 and expansions = ref 0 and failed = ref 0 in
  let reliefs = ref 0 in
  let complete = ref true in
  let relief_budget = 8 * Grid.n_bins grid in
  let do_search b msup =
    let live () =
      let r = Augment.search ?mask cfg grid state ~src:b in
      (r, Augment.expansions state)
    in
    match hooks with
    | None -> live ()
    | Some h -> (
      match h.h_search ~src:b ~msup with
      | Some (r, exp) -> (r, exp)
      | None -> live ())
  in
  let rec loop () =
    if Tdf_util.Failpoint.fire "flow3d.timeout" then
      Tdf_util.Budget.exhaust budget;
    if Tdf_util.Budget.exhausted budget then begin
      (* Over budget: leave the remaining supply unresolved; the residual
         overflow in the stats reports how much was left on the table. *)
      if not (Heap.is_empty q) then complete := false
    end
    else
      match Heap.pop q with
      | None -> ()
      | Some (key, bid) ->
      let b = grid.Grid.bins.(bid) in
      let msup = supply_micro b in
      if msup <= 1 then loop ()
      else if key <> -msup then begin
        (* stale priority: reinsert with the current supply *)
        Heap.add q ~key:(-msup) bid;
        loop ()
      end
      else begin
        let requeue_or_fail msup' =
          let r = try Hashtbl.find retries bid with Not_found -> 0 in
          if msup' < msup then begin
            (* progress: keep going *)
            Hashtbl.replace retries bid 0;
            Heap.add q ~key:(-msup') bid
          end
          else if r + 1 <= cfg.Config.max_retries then begin
            (* No progress; other augmentations may free space — retry. *)
            Hashtbl.replace retries bid (r + 1);
            Heap.add q ~key:(-msup') bid
          end
          else incr failed
        in
        (match do_search b msup with
        | None, exp -> (
          expansions := !expansions + exp;
          match
            if !reliefs < relief_budget then Relief.relieve ?mask cfg grid ~src:b
            else None
          with
          | Some (_cell, dst) ->
            (match hooks with
            | Some h -> h.h_relieved ~src:b ~dst
            | None -> ());
            incr reliefs;
            let msup' = supply_micro b in
            if msup' > 1 then Heap.add q ~key:(-msup') bid
          | None -> requeue_or_fail (supply_micro b))
        | Some path, exp ->
          incr augmentations;
          Tdf_util.Budget.tick budget 1;
          expansions := !expansions + exp;
          (match hooks with
          | None -> ignore (Mover.realize cfg grid scratch path)
          | Some h ->
            let tr = Tile.trace () in
            ignore
              (Mover.realize ~pick_probe:(Tile.trace_probe grid tr) cfg grid
                 scratch path);
            h.h_committed path ~tr);
          let msup' = supply_micro b in
          if msup' > 1 then requeue_or_fail msup');
        loop ()
      end
  in
  loop ();
  Tdf_telemetry.count "flow3d.augmentations" !augmentations;
  Tdf_telemetry.count "flow3d.failed_supplies" !failed;
  Tdf_telemetry.count "flow3d.reliefs" !reliefs;
  if not !complete then Tdf_telemetry.incr "flow3d.budget_stops";
  {
    pass_augmentations = !augmentations;
    pass_expansions = !expansions;
    pass_failed = !failed;
    pass_reliefs = !reliefs;
    pass_complete = !complete;
  }

(* Tile-sharded pass: speculate per tile on the Tdf_par pool, then commit
   through the sequential loop with the speculation oracle.  Equal to
   [local_pass ?mask] by construction (see Tile); regions too small to
   shard skip speculation entirely. *)
let tiled_local_pass ?mask ?tiles cfg ~budget grid =
  let k = Tile.clamp (match tiles with Some t -> t | None -> Tile.tiles ()) in
  let allowed_bins =
    match mask with
    | None -> Grid.n_bins grid
    | Some m -> Array.fold_left (fun a v -> if v then a + 1 else a) 0 m
  in
  if k <= 1 || allowed_bins < k * 8 then local_pass ?mask cfg ~budget grid
  else begin
    let tl, logs =
      Tdf_telemetry.span "flow3d.tile" @@ fun () ->
      let tl = Tile.make ?within:mask grid ~tiles:k in
      (tl, Tile.speculate ?within:mask cfg tl grid)
    in
    let cons = Tile.consumer tl logs grid in
    let hooks =
      {
        h_search = (fun ~src ~msup -> Tile.consume cons ~src ~msup);
        h_committed = (fun path ~tr -> Tile.note_path cons grid path ~tr);
        h_relieved = (fun ~src ~dst -> Tile.note_move cons grid ~src ~dst);
      }
    in
    let ps = local_pass ?mask ~hooks cfg ~budget grid in
    Tdf_telemetry.count "tile.reconciled" (Tile.reconciled cons);
    Tdf_telemetry.count "tile.conflicts" (Tile.conflicts cons);
    Tdf_telemetry.count "tile.live_searches" (Tile.live_searches cons);
    Tile.record cons;
    ps
  end

let flow_pass ?tiles cfg ~budget grid = tiled_local_pass ?tiles cfg ~budget grid

(* Reusable input-staging buffer for [finalize]: one per domain, grown
   monotonically, so a domain placing many segments stops re-allocating
   the (cell, x', width) array per segment. *)
type stage = { mutable stage_buf : (int * int * int) array }

let stage_inputs design (s : Grid.segment) cells st =
  let n = List.length cells in
  if Array.length st.stage_buf < n then
    st.stage_buf <- Array.make (max n (2 * Array.length st.stage_buf)) (0, 0, 0);
  let i = ref 0 in
  List.iter
    (fun c ->
      let cell = Design.cell design c in
      st.stage_buf.(!i) <- (c, cell.Cell.gp_x, Cell.width_on cell s.Grid.s_die);
      incr i)
    cells;
  Array.sub st.stage_buf 0 n

(* §III-D: Abacus PlaceRow on every segment; writes final positions.
   Segments are independent subproblems — each touches only the placement
   slots of its own cells — so they fan out over the domain pool; every
   segment's result depends only on its own cells, making the parallel
   placement bit-identical to the sequential one.  With [only] set, only
   the selected segments are re-placed; the untouched ones keep whatever
   [p] already records (the incremental engine's frozen segments). *)
let place_segments ?only grid (p : Placement.t) =
  Tdf_telemetry.span "flow3d.place_row" @@ fun () ->
  let design = grid.Grid.design in
  let segments = grid.Grid.segments in
  let selected sid = match only with None -> true | Some m -> m.(sid) in
  Tdf_par.run_local
    ~local:(fun () -> { stage_buf = [||] })
    ~n:(Array.length segments)
    (fun st si ->
      let s = segments.(si) in
      if not (selected s.Grid.sid) then ()
      else
      match Grid.cells_of_segment grid s.Grid.sid with
      | [] -> ()
      | cells ->
        let die = Design.die design s.Grid.s_die in
        let inputs = stage_inputs design s cells st in
        let weight c = (Design.cell design c).Cell.weight in
        let placed =
          Place_row.place_segment ~weight ~site:die.Die.site_width
            ~anchor:die.Die.outline.Tdf_geometry.Rect.x ~lo:s.Grid.s_lo
            ~hi:s.Grid.s_hi inputs
        in
        let y = Die.row_y die s.Grid.s_row in
        List.iter
          (fun (pl : Place_row.placed) ->
            p.Placement.x.(pl.Place_row.pl_cell) <- pl.Place_row.pl_x;
            p.Placement.y.(pl.Place_row.pl_cell) <- y;
            p.Placement.die.(pl.Place_row.pl_cell) <- s.Grid.s_die)
          placed)

let finalize grid p = place_segments grid p

(* Normalized displacement metrics (the paper's Tables are row-height
   normalized, so post-opt acceptance must be too: a raw improvement on a
   tall-row die can be a normalized regression). *)
let norm_disp design p c =
  let h_r = (Design.die design p.Placement.die.(c)).Die.row_height in
  float_of_int (Placement.displacement design p c) /. float_of_int h_r

let avg_disp design p =
  let n = Placement.n_cells p in
  if n = 0 then 0.
  else begin
    let sum = ref 0. in
    for c = 0 to n - 1 do
      sum := !sum +. norm_disp design p c
    done;
    !sum /. float_of_int n
  end

let max_disp design p =
  let n = Placement.n_cells p in
  let m = ref 0. in
  for c = 0 to n - 1 do
    let d = norm_disp design p c in
    if d > !m then m := d
  done;
  !m

(* Raises [Place_failed] on an unplaceable cell; [run] catches it.  When
   [reuse] carries the grid of a previous pass at the same bin width, the
   bins/segments/adjacency are kept and only the assignment is rebuilt
   ([Grid.reset_to]) instead of reconstructing the whole graph. *)
let one_pass ?tiles cfg ~budget design ~bin_factor ?reuse (start : Placement.t)
    (targets : (int * int * int) array option) =
  let fill grid =
    match targets with
    | None ->
      (match Grid.assign_initial grid start with
      | Ok () -> ()
      | Error e -> raise (Place_failed e))
    | Some tgts ->
      Array.iteri
        (fun cell (x, y, die) ->
          match Grid.place_cell grid ~cell ~die ~x ~y with
          | Ok () -> ()
          | Error e -> raise (Place_failed e))
        tgts
  in
  let grid =
    match reuse with
    | Some grid ->
      Tdf_telemetry.span "flow3d.grid_reset" @@ fun () ->
      (match targets with
      | Some tgts -> (
        match Grid.reset_to grid tgts with
        | Ok () -> ()
        | Error e -> raise (Place_failed e))
      | None ->
        Grid.reset grid;
        fill grid);
      grid
    | None ->
      Tdf_telemetry.span "flow3d.grid_build" @@ fun () ->
      let bw = flow_bin_width design ~factor:bin_factor in
      let grid = Grid.build design ~bin_width:bw in
      fill grid;
      grid
  in
  let ps = flow_pass ?tiles cfg ~budget grid in
  let p = Placement.copy start in
  finalize grid p;
  ( p,
    ps.pass_augmentations,
    ps.pass_expansions,
    ps.pass_failed,
    ps.pass_reliefs,
    Grid.total_overflow grid,
    ps.pass_complete,
    grid )

let count_d2d design (p : Placement.t) =
  let nd = Design.n_dies design in
  let n = Placement.n_cells p in
  let count = ref 0 in
  for c = 0 to n - 1 do
    let initial = Cell.nearest_die (Design.cell design c) ~n_dies:nd in
    if p.Placement.die.(c) <> initial then incr count
  done;
  !count

let run ?(cfg = Config.default) ?(budget = Tdf_util.Budget.unlimited) ?start
    ?tiles design =
  Tdf_telemetry.span "flow3d.legalize" @@ fun () ->
  if Tdf_util.Failpoint.fire "flow3d.flow_pass" then
    Error (Injected { site = "flow3d.flow_pass" })
  else begin
    let start =
      match start with Some p -> p | None -> Placement.initial design
    in
    try
      let p, aug, exp_, failed, reliefs, residual, complete, _ =
        one_pass ?tiles cfg ~budget design
          ~bin_factor:cfg.Config.bin_width_factor start None
      in
      let p = ref p in
      let aug = ref aug and exp_ = ref exp_ and failed = ref failed in
      let reliefs = ref reliefs in
      let residual = ref residual in
      let complete = ref complete in
      let rounds = ref 0 in
      if cfg.Config.post_opt then begin
        (* All post-opt passes share one bin width, so the first pass's
           grid instance is reset and reused by the following ones. *)
        let post_grid = ref None in
        let continue = ref true and pass = ref 0 in
        while
          !continue
          && !pass < cfg.Config.post_opt_passes
          && not (Tdf_util.Budget.exhausted budget)
        do
          incr pass;
          Tdf_telemetry.span "flow3d.post_opt" @@ fun () ->
          match Post_opt.select_victims design !p with
          | [] -> continue := false
          | victims ->
            let is_victim = Array.make (Placement.n_cells !p) false in
            List.iter (fun c -> is_victim.(c) <- true) victims;
            let targets =
              Array.init (Placement.n_cells !p) (fun c ->
                  if is_victim.(c) then begin
                    let x, y = Post_opt.midpoint_target design !p c in
                    (x, y, !p.Placement.die.(c))
                  end
                  else
                    ( (!p).Placement.x.(c),
                      (!p).Placement.y.(c),
                      (!p).Placement.die.(c) ))
            in
            let p', aug', exp', failed', reliefs', residual', complete', grid' =
              one_pass ?tiles cfg ~budget design
                ~bin_factor:cfg.Config.post_bin_width_factor ?reuse:!post_grid
                !p (Some targets)
            in
            post_grid := Some grid';
            aug := !aug + aug';
            exp_ := !exp_ + exp';
            reliefs := !reliefs + reliefs';
            complete := !complete && complete';
            let old_max = max_disp design !p in
            let new_max = max_disp design p' in
            let improved =
              residual' <= eps
              && (new_max < old_max -. 1e-9
                 || (Float.abs (new_max -. old_max) <= 1e-9
                    && avg_disp design p' <= avg_disp design !p))
            in
            if improved then begin
              p := p';
              failed := !failed + failed';
              residual := residual';
              incr rounds
            end
            else continue := false
        done
      end;
      Tdf_telemetry.count "flow3d.post_opt_rounds" !rounds;
      if Tdf_telemetry.enabled () then
        Tdf_telemetry.count "flow3d.d2d_cells" (count_d2d design !p);
      Ok
        {
          placement = !p;
          stats =
            {
              augmentations = !aug;
              expansions = !exp_;
              d2d_cells = count_d2d design !p;
              failed_supplies = !failed;
              reliefs = !reliefs;
              residual_overflow = !residual;
              post_opt_rounds = !rounds;
              complete = !complete;
            };
        }
    with Place_failed e ->
      Error (No_segment { cell = e.Grid.pe_cell; die = e.Grid.pe_die })
  end

let run_tiled ?cfg ?budget ?start ~tiles design =
  run ?cfg ?budget ?start ~tiles design

let legalize_from ?(cfg = Config.default) design start =
  match run ~cfg ~start design with
  | Ok r -> r
  | Error e -> invalid_arg (error_to_string e)

let legalize ?(cfg = Config.default) design =
  legalize_from ~cfg design (Placement.initial design)
