(** Tuning knobs of the 3D-Flow legalizer.

    The default values are the paper's (§III-B, §III-F).  The Bonn baseline
    and the w/o-D2D ablation are expressed as configurations of the same
    engine; see {!bonn_emulation} and {!no_d2d}. *)

type frontier =
  | Binary  (** {!Tdf_util.Heap_int} best-first frontier (the default). *)
  | Radix
      (** {!Tdf_util.Heap_radix} frontier with clamped pushes.  The Alg. 1
          search keys are micro-unit path costs that may be negative and
          are not strictly monotone across pops, so out-of-order pushes
          are lifted to the extracted minimum (counted as
          ["flow3d.frontier_clamps"]).  This reorders pops among near-tied
          bins: results stay legal and deterministic but are NOT
          byte-identical to the binary frontier, which is why the default
          stays [Binary] and the radix frontier is an opt-in
          ([TDFLOW_FRONTIER=radix]) for throughput experiments. *)

val frontier_name : frontier -> string

val frontier_of_string : string -> frontier option
(** Case-insensitive; [None] on unknown names. *)

type t = {
  alpha : float;
      (** branch-and-bound slack: branches costlier than
          [(1 + α)·cost(p_best)] are pruned (Alg. 1 line 13).  0.1 in the
          paper. *)
  bin_width_factor : float;
      (** bin width w_v as a multiple of the average cell width w̄_c during
          flow legalization; 10 in the paper. *)
  post_bin_width_factor : float;
      (** finer bin width multiple during post-optimization; 5 in the
          paper. *)
  d2d_edges : bool;  (** allow die-to-die movement (Table V ablation). *)
  allow_negative_cost : bool;
      (** keep negative movement costs (moves back toward initial
          positions).  BonnPlaceLegal clamps costs at 0. *)
  exhaustive : bool;
      (** explore the whole reachable graph per supply bin before picking
          the best path (vanilla Dijkstra SSP, as BonnPlaceLegal); the
          branch-and-bound pruning is disabled. *)
  d2d_penalty : bool;
      (** add the Eq. 7 congestion term [sup(v) − dem(v)] on D2D edges. *)
  d2d_base_cost : float;
      (** fixed cost of crossing a D2D edge, in multiples of the source
          die's row height.  Models the hybrid-bonding terminal
          reassignment; without it, gratuitous crossings are free (same
          planar position) and the congestion bonus of Eq. 7 makes the flow
          zig-zag between dies, inflating #Move far beyond the <1% of cells
          the paper reports in Table V. *)
  post_opt : bool;  (** run the §III-E cycle-canceling post-optimization. *)
  post_opt_passes : int;  (** number of post-optimization rounds. *)
  max_retries : int;
      (** attempts to resolve one supply bin before declaring it stuck. *)
  frontier : frontier;
      (** priority-queue engine of the Alg. 1 search frontier.  [default]
          honors [TDFLOW_FRONTIER] (unset: [Binary]). *)
}

val default : t
(** The paper's configuration: α = 0.1, w_v = 10·w̄_c (5·w̄_c in post-opt),
    D2D on, negative costs on, post-opt on. *)

val no_d2d : t
(** [default] without die-to-die edges — the "w/o. D2D" column of
    Table V. *)

val bonn_emulation : t
(** BonnPlaceLegal [10] emulation: 2D per-die graphs (no D2D), exhaustive
    Dijkstra search, non-negative costs, no post-optimization. *)
