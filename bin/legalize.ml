(* tdflow command-line interface.

     legalize gen      — generate a synthetic ICCAD-style case
     legalize run      — legalize a design file with a chosen method
     legalize check    — audit a placement for legality
     legalize compare  — run all methods on a design and print a table
     legalize tables   — regenerate the paper's tables/figures
     legalize viz      — render a die of a placement as SVG
     legalize eco      — incrementally re-legalize after an ECO delta
     legalize serve    — persistent legalization daemon on a Unix socket
     legalize client   — replay a request trace against a running daemon
     legalize version  — print the version string *)

open Cmdliner

let design_arg =
  let doc = "Design file (tdflow text format, see lib/io/text.ml)." in
  Arg.(required & opt (some file) None & info [ "d"; "design" ] ~docv:"FILE" ~doc)

(* ---- parallelism --------------------------------------------------- *)

(* The flag only *requests* a pool size; Tdf_par clamps it and falls back
   to TDFLOW_JOBS, then 1, when the flag is absent.  Results are
   bit-identical at every setting (see lib/par/pool.mli), so this is a
   pure wall-clock knob. *)
let jobs_term =
  let doc =
    "Number of worker domains for the parallel sections (experiments \
     grid, per-segment row placement, metrics reduction).  Defaults to \
     $(b,TDFLOW_JOBS) or 1.  Results are identical at every setting."
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  Term.(const (Option.iter Tdf_par.set_jobs) $ jobs)

(* Same contract as --jobs: a wall-clock knob with bit-identical results
   at every setting, defaulting to TDFLOW_TILES then 1.  Unlike --jobs
   (whose pool silently clamps), a non-positive tile count is a spelled
   request for zero work and is rejected up front. *)
let tiles_term =
  let doc =
    "Number of spatial tiles the flow passes are sharded into: each tile \
     speculates on a masked grid clone over the worker pool and the \
     sequential commit loop reuses every proposal it can prove \
     unchanged.  Defaults to $(b,TDFLOW_TILES) or 1 (untiled).  The \
     placement is byte-identical at every $(b,--tiles) and $(b,--jobs) \
     combination."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n > 0 -> Ok n
      | Some n ->
        Error (`Msg (Printf.sprintf "tile count must be positive, got %d" n))
      | None -> Error (`Msg (Printf.sprintf "expected an integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  let tiles =
    Arg.(value & opt (some pos_int) None & info [ "tiles" ] ~docv:"N" ~doc)
  in
  Term.(const (Option.iter Tdf_legalizer.Tile.set_tiles) $ tiles)

(* run/eco/serve take both knobs; the remaining commands never enter a
   flow pass, so they only carry --jobs. *)
let knobs_term = Term.(const (fun () () -> ()) $ jobs_term $ tiles_term)

(* ---- telemetry ----------------------------------------------------- *)

type telemetry_opts = {
  metrics : bool;
  metrics_json : string option;
  trace : string option;
}

let telemetry_term =
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print a per-phase telemetry summary after the run: span \
             count/total/mean/p95, counter totals (MCMF pops, \
             augmentations, ...).")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the telemetry summary as JSON to $(docv).")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event file to $(docv); open it in \
             Perfetto (ui.perfetto.dev) or chrome://tracing.")
  in
  let combine metrics metrics_json trace = { metrics; metrics_json; trace } in
  Term.(const combine $ metrics $ metrics_json $ trace)

(* Install the sinks the flags ask for, run, then flush the outputs (also
   on exceptions, so a failing run still leaves its trace behind). *)
let with_telemetry opts f =
  let agg =
    if opts.metrics || opts.metrics_json <> None then begin
      let a = Tdf_telemetry.Aggregate.create () in
      Tdf_telemetry.install (Tdf_telemetry.Aggregate.sink a);
      Some a
    end
    else None
  in
  let tr =
    match opts.trace with
    | Some _ ->
      let t = Tdf_telemetry.Trace.create () in
      Tdf_telemetry.install (Tdf_telemetry.Trace.sink t);
      Some t
    | None -> None
  in
  let write_failed = ref false in
  (* A bad output path must not surface as Fun.Finally_raised: report it
     like any other CLI error and fail after the run's results printed. *)
  let try_write what path write =
    try
      write ();
      Printf.printf "wrote %s %s\n" what path
    with Sys_error msg ->
      write_failed := true;
      Printf.eprintf "legalize: cannot write %s: %s\n" what msg
  in
  Fun.protect f ~finally:(fun () ->
      Tdf_telemetry.reset ();
      Option.iter
        (fun a ->
          if opts.metrics then begin
            print_newline ();
            print_string (Tdf_telemetry.Aggregate.render a)
          end;
          Option.iter
            (fun path ->
              try_write "metrics" path (fun () ->
                  let oc = open_out path in
                  output_string oc
                    (Tdf_telemetry.Json.to_string (Tdf_telemetry.Aggregate.to_json a));
                  output_char oc '\n';
                  close_out oc))
            opts.metrics_json)
        agg;
      Option.iter
        (fun t ->
          Option.iter
            (fun path -> try_write "trace" path (fun () -> Tdf_telemetry.Trace.save t path))
            opts.trace)
        tr);
  if !write_failed then exit 1

(* Parser errors carry "line N: ..."; rewrite them into the conventional
   file:line: message shape so editors and CI logs can jump to the spot. *)
let parse_diagnostic path msg =
  let default () = Printf.sprintf "%s: %s" path msg in
  if String.length msg > 5 && String.sub msg 0 5 = "line " then
    match String.index_opt msg ':' with
    | Some i -> (
      match int_of_string_opt (String.sub msg 5 (i - 5)) with
      | Some n ->
        Printf.sprintf "%s:%d:%s" path n
          (String.sub msg (i + 1) (String.length msg - i - 1))
      | None -> default ())
    | None -> default ()
  else default ()

(* Designs load from either the native text format or the contest dialect;
   the first keyword disambiguates. *)
let load_design path =
  try
  let is_contest =
    (* first non-empty, non-comment keyword decides the dialect *)
    let ic = open_in path in
    let rec first_keyword () =
      match input_line ic with
      | exception End_of_file -> ""
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then first_keyword ()
        else (match String.index_opt line ' ' with
             | Some i -> String.sub line 0 i
             | None -> line)
    in
    let kw = first_keyword () in
    close_in ic;
    List.mem kw [ "NumTechnologies"; "Tech"; "DieSize" ]
  in
  let result =
    if is_contest then
      match Tdf_io.Contest.load path with
      | Ok (d, _) -> Ok d
      | Error e -> Error e
    else Tdf_io.Text.load_design path
  in
  match result with
  | Ok d -> d
  | Error e ->
    Printf.eprintf "legalize: %s\n" (parse_diagnostic path e);
    exit 2
  with Sys_error msg ->
    Printf.eprintf "legalize: %s\n" msg;
    exit 2

let load_placement design path =
  match Tdf_io.Text.load_placement path design with
  | Ok p -> p
  | Error e ->
    Printf.eprintf "legalize: %s\n" (parse_diagnostic path e);
    exit 2

let suite_conv =
  let parse = function
    | "iccad2022" | "2022" -> Ok Tdf_benchgen.Spec.Iccad2022
    | "iccad2023" | "2023" -> Ok Tdf_benchgen.Spec.Iccad2023
    | s -> Error (`Msg (Printf.sprintf "unknown suite %S (iccad2022|iccad2023)" s))
  in
  let print fmt s = Format.pp_print_string fmt (Tdf_benchgen.Spec.suite_slug s) in
  Arg.conv (parse, print)

let method_conv =
  let parse = function
    | "tetris" -> Ok Tdf_experiments.Runner.Tetris
    | "abacus" -> Ok Tdf_experiments.Runner.Abacus
    | "bonn" -> Ok Tdf_experiments.Runner.Bonn
    | "ours" | "3dflow" | "flow3d" -> Ok Tdf_experiments.Runner.Ours
    | "no-d2d" -> Ok Tdf_experiments.Runner.Ours_no_d2d
    | s ->
      Error
        (`Msg (Printf.sprintf "unknown method %S (tetris|abacus|bonn|ours|no-d2d)" s))
  in
  let print fmt m =
    Format.pp_print_string fmt (Tdf_experiments.Runner.method_name m)
  in
  Arg.conv (parse, print)

let scale_arg =
  let doc = "Scale factor for generated case sizes (0 < s <= 1)." in
  Arg.(value & opt float 0.05 & info [ "s"; "scale" ] ~docv:"S" ~doc)

(* ---- gen ---------------------------------------------------------- *)

let gen_cmd =
  let suite =
    Arg.(
      value
      & opt suite_conv Tdf_benchgen.Spec.Iccad2023
      & info [ "suite" ] ~docv:"SUITE" ~doc:"Benchmark suite (iccad2022|iccad2023).")
  in
  let case =
    Arg.(
      value & opt string "case2"
      & info [ "case" ] ~docv:"CASE" ~doc:"Case name from TABLE II (e.g. case3h).")
  in
  let output =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file; - for stdout.")
  in
  let contest =
    Arg.(
      value & flag
      & info [ "contest" ]
          ~doc:"Emit the ICCAD-contest-style dialect instead of the native \
                format.")
  in
  let run suite case scale output contest =
    match Tdf_benchgen.Spec.find suite case with
    | exception Not_found ->
      Printf.eprintf "error: unknown case %s\n" case;
      exit 2
    | spec ->
      let design = Tdf_benchgen.Gen.generate ~scale spec in
      let to_string d =
        if contest then Tdf_io.Contest.to_string d
        else Tdf_io.Text.design_to_string d
      in
      if output = "-" then print_string (to_string design)
      else begin
        if contest then Tdf_io.Contest.save output design
        else Tdf_io.Text.save_design output design;
        Printf.printf "wrote %s (%d cells, %d macros, %d nets)\n" output
          (Tdf_netlist.Design.n_cells design)
          (Array.length design.Tdf_netlist.Design.macros)
          (Array.length design.Tdf_netlist.Design.nets)
      end
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic ICCAD-style benchmark case.")
    Term.(const run $ suite $ case $ scale_arg $ output $ contest)

(* ---- run ---------------------------------------------------------- *)

let run_cmd =
  let meth =
    Arg.(
      value
      & opt method_conv Tdf_experiments.Runner.Ours
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:"Legalizer: tetris, abacus, bonn, ours, no-d2d.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the placement here.")
  in
  let alpha =
    Arg.(
      value
      & opt (some float) None
      & info [ "alpha" ] ~docv:"A" ~doc:"Branch-and-bound slack (default 0.1).")
  in
  let refine =
    Arg.(
      value & flag
      & info [ "refine" ]
          ~doc:"Run the legality-preserving HPWL refinement afterwards.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Treat preflight warnings as fatal: refuse to legalize a \
                design with any diagnostic.")
  in
  let repair =
    Arg.(
      value & flag
      & info [ "repair" ]
          ~doc:"Auto-repair recoverable preflight issues (clamp positions, \
                drop degenerate nets and escaping macros) before \
                legalizing; each repair is reported.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget per legalization attempt.  An exhausted \
                budget yields a best-effort partial placement (and, unless \
                $(b,--no-fallback), triggers the retry/fallback chain).")
  in
  let no_fallback =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:"Disable the resilience chain (relaxed-config retry, then \
                Tetris degradation) for method `ours'; a failed run \
                reports its error instead.")
  in
  let run () design_path meth output alpha refine strict repair budget_ms
      no_fallback tele =
    with_telemetry tele @@ fun () ->
    let design = load_design design_path in
    let cfg =
      match alpha with
      | Some a ->
        { Tdf_legalizer.Config.default with Tdf_legalizer.Config.alpha = a }
      | None -> Tdf_legalizer.Config.default
    in
    let opts =
      { Tdf_robust.Pipeline.strict; repair; budget_ms;
        fallback = not no_fallback }
    in
    let finish design p dt extra =
      let s = Tdf_metrics.Displacement.summary design p in
      Printf.printf
        "%s: avg %.3f rows, max %.2f rows, hpwl %+.2f%%, %.2fs, legal %b%s\n"
        (Tdf_experiments.Runner.method_name meth)
        s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm
        (Tdf_metrics.Hpwl.increase_pct design p)
        dt
        (Tdf_metrics.Legality.is_legal design p)
        extra;
      if refine then begin
        let r = Tdf_refine.Refine.run design p in
        Printf.printf "refine: HPWL %.0f -> %.0f (%d moves), legal %b\n"
          r.Tdf_refine.Refine.hpwl_before r.Tdf_refine.Refine.hpwl_after
          (r.Tdf_refine.Refine.slides + r.Tdf_refine.Refine.swaps)
          (Tdf_metrics.Legality.is_legal design p)
      end;
      Option.iter (fun path -> Tdf_io.Text.save_placement path design p) output
    in
    match meth with
    | Tdf_experiments.Runner.Ours ->
      (* The paper's method runs through the resilient pipeline: preflight,
         budgets, retry, Tetris fallback. *)
      let result, dt =
        Tdf_util.Timer.time (fun () ->
            Tdf_robust.Pipeline.run ~opts ~cfg design)
      in
      (match result with
      | Error e ->
        Printf.eprintf "legalize: %s\n" (Tdf_robust.Error.to_string e);
        exit 1
      | Ok r ->
        List.iter
          (fun i ->
            Printf.eprintf "preflight: %s\n"
              (Tdf_robust.Validate.issue_to_string i))
          r.Tdf_robust.Pipeline.issues;
        List.iter
          (fun msg -> Printf.eprintf "repair: %s\n" msg)
          r.Tdf_robust.Pipeline.repairs;
        let extra =
          match r.Tdf_robust.Pipeline.path with
          | Tdf_robust.Pipeline.Primary -> ""
          | p ->
            Printf.sprintf ", via %s (%d attempts)"
              (Tdf_robust.Pipeline.path_name p)
              r.Tdf_robust.Pipeline.attempts
        in
        finish r.Tdf_robust.Pipeline.design r.Tdf_robust.Pipeline.placement dt
          extra)
    | m ->
      (* Baselines skip the fallback chain but honor the preflight flags. *)
      let design, repairs =
        if repair then Tdf_robust.Validate.repair design else (design, [])
      in
      List.iter (fun msg -> Printf.eprintf "repair: %s\n" msg) repairs;
      let issues = Tdf_robust.Validate.design design in
      let blocking =
        if strict then issues else Tdf_robust.Validate.fatal issues
      in
      (match blocking with
      | i :: _ ->
        Printf.eprintf "legalize: preflight: %s\n"
          (Tdf_robust.Validate.issue_to_string i);
        exit 1
      | [] -> ());
      let p, dt =
        Tdf_util.Timer.time (fun () ->
            Tdf_experiments.Runner.legalize_with m design)
      in
      finish design p dt ""
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Legalize a design with one method.")
    Term.(
      const run $ knobs_term $ design_arg $ meth $ output $ alpha $ refine
      $ strict $ repair $ budget_ms $ no_fallback $ telemetry_term)

(* ---- check -------------------------------------------------------- *)

let check_cmd =
  let placement =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "placement" ] ~docv:"FILE" ~doc:"Placement file to audit.")
  in
  let run design_path placement_path =
    let design = load_design design_path in
    let p = load_placement design placement_path in
    let rep = Tdf_metrics.Legality.check design p in
    if rep.Tdf_metrics.Legality.n_violations = 0 then print_endline "LEGAL"
    else begin
      Printf.printf "ILLEGAL: %d violations (overlap area %d)\n"
        rep.Tdf_metrics.Legality.n_violations rep.Tdf_metrics.Legality.overlap_area;
      List.iter print_endline rep.Tdf_metrics.Legality.messages;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Audit a placement for legality.")
    Term.(const run $ design_arg $ placement)

(* ---- compare ------------------------------------------------------ *)

let compare_cmd =
  let run () design_path tele =
    with_telemetry tele @@ fun () ->
    let design = load_design design_path in
    let r =
      Tdf_experiments.Runner.run_case ~case:design.Tdf_netlist.Design.name design
    in
    print_string
      (Tdf_experiments.Tables.comparison ~title:"Method comparison" [ r ])
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Run every legalizer on a design and tabulate.")
    Term.(const run $ jobs_term $ design_arg $ telemetry_term)

(* ---- tables ------------------------------------------------------- *)

let tables_cmd =
  let which =
    Arg.(
      value & opt string "all"
      & info [ "t"; "table" ] ~docv:"N" ~doc:"Which item: 2, 3, 4, 5, 7, scaling or all.")
  in
  let run () which scale tele =
    with_telemetry tele @@ fun () ->
    let t2 () = print_string (Tdf_experiments.Tables.table2 ~scale ()) in
    let suite s = Tdf_experiments.Runner.run_suite ~scale s in
    let t3 () =
      print_string
        (Tdf_experiments.Tables.comparison ~title:"TABLE III (ICCAD 2022)"
           (suite Tdf_benchgen.Spec.Iccad2022))
    in
    let t4 () =
      print_string
        (Tdf_experiments.Tables.comparison ~title:"TABLE IV (ICCAD 2023)"
           (suite Tdf_benchgen.Spec.Iccad2023))
    in
    let t5 () =
      let r =
        Tdf_experiments.Runner.run_suite
          ~methods:
            [ Tdf_experiments.Runner.Ours_no_d2d; Tdf_experiments.Runner.Ours ]
          ~scale Tdf_benchgen.Spec.Iccad2023
      in
      print_string (Tdf_experiments.Tables.ablation r)
    in
    let f7 () =
      print_string
        (Tdf_experiments.Figures.fig7 ~title:"FIG 7(a) ICCAD 2022"
           (suite Tdf_benchgen.Spec.Iccad2022));
      print_string
        (Tdf_experiments.Figures.fig7 ~title:"FIG 7(b) ICCAD 2023"
           (suite Tdf_benchgen.Spec.Iccad2023))
    in
    let scaling () =
      print_string
        (Tdf_experiments.Scaling.render
           (Tdf_experiments.Scaling.run Tdf_benchgen.Spec.Iccad2023 "case4"))
    in
    match which with
    | "2" -> t2 ()
    | "3" -> t3 ()
    | "4" -> t4 ()
    | "5" -> t5 ()
    | "7" -> f7 ()
    | "scaling" -> scaling ()
    | "all" ->
      t2 ();
      t3 ();
      t4 ();
      t5 ();
      f7 ()
    | s ->
      Printf.eprintf "error: unknown table %s\n" s;
      exit 2
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables and Fig. 7.")
    Term.(const run $ jobs_term $ which $ scale_arg $ telemetry_term)

(* ---- viz ---------------------------------------------------------- *)

let viz_cmd =
  let placement =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "placement" ] ~docv:"FILE" ~doc:"Placement to render.")
  in
  let die =
    Arg.(value & opt int 1 & info [ "die" ] ~docv:"D" ~doc:"Die index to render.")
  in
  let output =
    Arg.(
      value & opt string "placement.svg"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output SVG path.")
  in
  let run design_path placement_path die output =
    let design = load_design design_path in
    let p = load_placement design placement_path in
    Tdf_io.Svg.save_die output design p ~die
      ~title:(Printf.sprintf "%s die %d" design.Tdf_netlist.Design.name die)
      ();
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "viz" ~doc:"Render one die of a placement as SVG (Fig. 8 style).")
    Term.(const run $ design_arg $ placement $ die $ output)

(* ---- eco ---------------------------------------------------------- *)

let eco_cmd =
  let placement =
    Arg.(
      required
      & opt (some file) None
      & info [ "p"; "placement" ] ~docv:"FILE"
          ~doc:"Previous legal placement for the design.")
  in
  let delta =
    Arg.(
      required
      & opt (some file) None
      & info [ "delta" ] ~docv:"FILE"
          ~doc:"ECO delta file (move/resize/add/remove/macro ops; see \
                lib/io/delta.mli for the grammar).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the re-legalized placement here (cell ids are the \
                perturbed design's; see $(b,--out-design)).")
  in
  let out_design =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-design" ] ~docv:"FILE"
          ~doc:"Write the perturbed design here (needed to interpret the \
                output placement after add/remove ops renumber cells).")
  in
  let radius =
    Arg.(
      value & opt int 4
      & info [ "radius" ] ~docv:"R"
          ~doc:"Initial BFS radius of the dirty region, in bins.")
  in
  let max_widenings =
    Arg.(
      value & opt int 3
      & info [ "max-widenings" ] ~docv:"N"
          ~doc:"Radius escalations before falling back to a full rerun.")
  in
  let no_fallback =
    Arg.(
      value & flag
      & info [ "no-fallback" ]
          ~doc:"Fail instead of degrading to a full re-legalization when \
                the local solves are exhausted.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Wall-clock budget per local attempt (and for the fallback \
                pipeline's attempts).")
  in
  let run () design_path placement_path delta_path output out_design radius
      max_widenings no_fallback budget_ms tele =
    with_telemetry tele @@ fun () ->
    let design = load_design design_path in
    let prev = load_placement design placement_path in
    let delta =
      match Tdf_io.Delta.load delta_path with
      | Ok d -> d
      | Error e ->
        Printf.eprintf "legalize: %s\n" (parse_diagnostic delta_path e);
        exit 2
    in
    let cfg =
      {
        Tdf_incremental.Eco.default_cfg with
        Tdf_incremental.Eco.initial_radius = radius;
        max_widenings;
        fallback = not no_fallback;
        budget_ms;
      }
    in
    let result, dt =
      Tdf_util.Timer.time (fun () ->
          Tdf_incremental.Eco.run ~cfg design prev delta)
    in
    match result with
    | Error e ->
      Printf.eprintf "legalize: eco: %s\n"
        (Tdf_incremental.Eco.error_to_string e);
      exit 1
    | Ok r ->
      let s = r.Tdf_incremental.Eco.stats in
      Printf.printf
        "eco: %d ops, %s, dirty %d/%d bins (%d segments), %d widenings, %d \
         fallbacks, %.3fs, legal %b\n"
        (List.length delta)
        (Tdf_incremental.Eco.path_name s.Tdf_incremental.Eco.path)
        s.Tdf_incremental.Eco.dirty_bins s.Tdf_incremental.Eco.total_bins
        s.Tdf_incremental.Eco.dirty_segments s.Tdf_incremental.Eco.widenings
        s.Tdf_incremental.Eco.fallbacks dt
        (Tdf_metrics.Legality.is_legal r.Tdf_incremental.Eco.design
           r.Tdf_incremental.Eco.placement);
      Option.iter
        (fun path ->
          Tdf_io.Text.save_design path r.Tdf_incremental.Eco.design;
          Printf.printf "wrote %s\n" path)
        out_design;
      Option.iter
        (fun path ->
          Tdf_io.Text.save_placement path r.Tdf_incremental.Eco.design
            r.Tdf_incremental.Eco.placement;
          Printf.printf "wrote %s\n" path)
        output
  in
  Cmd.v
    (Cmd.info "eco"
       ~doc:
         "Incrementally re-legalize a previously legal placement after a \
          small ECO delta, touching only a dirty region of the grid.")
    Term.(
      const run $ knobs_term $ design_arg $ placement $ delta $ output
      $ out_design $ radius $ max_widenings $ no_fallback $ budget_ms
      $ telemetry_term)

(* ---- place -------------------------------------------------------- *)

let place_cmd =
  let iterations =
    Arg.(
      value & opt int 60
      & info [ "iterations" ] ~docv:"N" ~doc:"Global-placement iterations.")
  in
  let output =
    Arg.(
      value & opt string "placed.design"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the design with the fresh global placement here.")
  in
  let run design_path iterations output =
    let design = load_design design_path in
    let r = Tdf_placer.Gp3d.place ~iterations design in
    (* The trace is empty when iterations = 0; don't crash on it. *)
    (match r.Tdf_placer.Gp3d.hpwl_trace with
    | [] -> ()
    | (first :: _) as trace ->
      let last = List.nth trace (List.length trace - 1) in
      Printf.printf "gp3d: HPWL %.0f -> %.0f over %d iterations\n" first last
        iterations);
    Tdf_io.Text.save_design output (Tdf_placer.Gp3d.apply design r);
    Printf.printf "wrote %s\n" output
  in
  Cmd.v
    (Cmd.info "place"
       ~doc:
         "Compute a fresh true-3D global placement for a design's netlist \
          (ignores its current gp positions).")
    Term.(const run $ design_arg $ iterations $ output)

(* ---- serve --------------------------------------------------------- *)

let socket_arg =
  let doc = "Unix-domain socket path of the daemon." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let max_sessions =
    Arg.(
      value & opt int 8
      & info [ "max-sessions" ] ~docv:"N"
          ~doc:"Warm sessions kept resident; beyond this the least \
                recently used is evicted.")
  in
  let max_frame =
    Arg.(
      value
      & opt int (16 * 1024 * 1024)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Largest accepted request frame; oversized frames are \
                refused before allocation.")
  in
  let budget_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget-ms" ] ~docv:"MS"
          ~doc:"Default wall-clock budget applied to requests that carry \
                none of their own.")
  in
  let journal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"DIR"
          ~doc:"Enable durability: write-ahead journal and session \
                snapshots in $(docv); on restart the daemon recovers its \
                sessions from there.")
  in
  let fsync =
    Arg.(
      value & opt string "every:8"
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"Journal fsync policy: $(b,always) (no acknowledged \
                record lost), $(b,every:N) (bounded loss window, \
                amortized cost), or $(b,never).")
  in
  let snapshot_every =
    Arg.(
      value & opt int 64
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Journal records between automatic snapshot+compact \
                cycles.")
  in
  let max_pending =
    Arg.(
      value & opt int 64
      & info [ "max-pending" ] ~docv:"N"
          ~doc:"Bound on requests queued for execution across all \
                connections; beyond it requests are shed with a typed \
                overloaded reply.")
  in
  let max_conn_queue =
    Arg.(
      value & opt int 256
      & info [ "max-conn-queue" ] ~docv:"N"
          ~doc:"Per-connection bound on queued frames (shed markers \
                included); a client that streams past it gets a typed \
                queue-overflow error and its connection closed.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 0.
      & info [ "idle-timeout-s" ] ~docv:"SECONDS"
          ~doc:"Reap connections idle longer than $(docv) (0 disables).")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Hard cap applied to every request budget, explicit or \
                defaulted, so no request can hold the event loop past \
                the cap.")
  in
  let arm_failpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "arm-failpoint" ] ~docv:"SITE[:TIMES[:AFTER]]"
          ~doc:"Testing hook: arm a named failpoint (e.g. \
                $(b,journal.append:1:3) tears the 4th journal write and \
                kills the daemon — the chaos harness uses this).")
  in
  let parse_arm spec =
    let int_field what s =
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> failwith (Printf.sprintf "bad --arm-failpoint %s %S" what s)
    in
    match String.split_on_char ':' spec with
    | [ site ] -> Tdf_util.Failpoint.arm site
    | [ site; times ] ->
      Tdf_util.Failpoint.arm ~times:(int_field "times" times) site
    | [ site; times; after ] ->
      Tdf_util.Failpoint.arm
        ~times:(int_field "times" times)
        ~after:(int_field "after" after) site
    | _ -> failwith ("bad --arm-failpoint spec " ^ spec)
  in
  let run () socket max_sessions max_frame budget_ms journal_dir fsync
      snapshot_every max_pending max_conn_queue idle_timeout deadline_ms
      arm_failpoint tele =
    with_telemetry tele @@ fun () ->
    Option.iter parse_arm arm_failpoint;
    let journal =
      Option.map
        (fun dir ->
          match Tdf_io.Journal.fsync_policy_of_string fsync with
          | Error e -> failwith e
          | Ok policy ->
            { (Tdf_io.Journal.default_cfg ~dir) with Tdf_io.Journal.fsync = policy })
        journal_dir
    in
    let cfg =
      {
        (Tdf_server.Server.default_cfg ~socket_path:socket) with
        Tdf_server.Server.max_sessions;
        max_frame;
        default_budget_ms = budget_ms;
        journal;
        snapshot_every;
        max_pending;
        max_conn_queue;
        idle_timeout_s = idle_timeout;
        deadline_ms;
      }
    in
    let server = Tdf_server.Server.create cfg in
    (match Tdf_server.Server.recovery server with
    | Some r
      when r.Tdf_server.Server.recovered_sessions > 0
           || r.Tdf_server.Server.replayed_records > 0
           || r.Tdf_server.Server.truncated_bytes > 0
           || r.Tdf_server.Server.dropped_snapshots > 0 ->
      (* The torn-byte count is part of the printed contract: the chaos
         harness greps it to prove a mid-append kill was healed. *)
      Printf.printf
        "tdflow serve: recovered %d sessions (%d records replayed, %d torn \
         bytes truncated, %d snapshots dropped)\n\
         %!"
        r.Tdf_server.Server.recovered_sessions
        r.Tdf_server.Server.replayed_records
        r.Tdf_server.Server.truncated_bytes
        r.Tdf_server.Server.dropped_snapshots
    | _ -> ());
    let stop = ref false in
    let quit _ = stop := true in
    Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
    Printf.printf "tdflow serve: listening on %s (jobs %d, tiles %d)\n%!"
      socket (Tdf_par.jobs ()) (Tdf_legalizer.Tile.tiles ());
    while (not !stop) && Tdf_server.Server.step server do
      ()
    done;
    (* SIGTERM/SIGINT path: answer what is queued and write a final
       snapshot before tearing anything down. *)
    Tdf_server.Server.drain server;
    if journal <> None then
      Printf.printf "tdflow serve: drained; final snapshot written\n%!";
    let live = Tdf_server.Server.live_sessions server in
    Tdf_server.Server.close server;
    (* The session count is part of the printed contract: CI greps it to
       prove a replayed trace leaks no sessions. *)
    Printf.printf "tdflow serve: shut down (%d live sessions dropped)\n%!" live
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent legalization daemon: load designs into named \
          sessions over a Unix-domain socket and stream legalize/ECO \
          requests against the warm state (see lib/io/protocol.mli for \
          the wire grammar).  With $(b,--journal) the daemon survives \
          crashes: every mutating request is journaled before its reply \
          and replayed on restart.")
    Term.(
      const run $ knobs_term $ socket_arg $ max_sessions $ max_frame
      $ budget_ms $ journal_dir $ fsync $ snapshot_every $ max_pending
      $ max_conn_queue $ idle_timeout $ deadline_ms $ arm_failpoint
      $ telemetry_term)

(* ---- client -------------------------------------------------------- *)

let client_cmd =
  let trace =
    Arg.(
      required
      & opt (some file) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Request trace to replay: one JSON request per line \
                (lib/io/protocol.mli grammar); blank lines and # comments \
                are skipped.")
  in
  let out_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-json" ] ~docv:"FILE"
          ~doc:"Write the replay summary (latency percentiles, error \
                counts) as JSON to $(docv).")
  in
  let require_legal =
    Arg.(
      value & flag
      & info [ "require-legal" ]
          ~doc:"Exit non-zero when any legalize/eco reply reports an \
                illegal placement (for CI smoke checks).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "v"; "verbose" ] ~doc:"Print one line per request replayed.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry budget for transient failures: refused connects, \
                dropped connections (daemon restarting) and overloaded \
                replies (0 fails fast).")
  in
  let backoff_ms =
    Arg.(
      value & opt int 50
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base retry delay; doubles per attempt, capped at 64x.")
  in
  let dump_placements =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-placements" ] ~docv:"FILE"
          ~doc:
            "Concatenate every placement text carried by a reply \
             (legalize/eco with \"placement\":true and get-placement), in \
             reply order, into $(docv) — two replay runs are then \
             byte-comparable with $(b,cmp), the determinism check CI \
             runs across --jobs and --tiles settings.")
  in
  let run socket trace_path out_json require_legal verbose retries backoff_ms
      dump_placements =
    let reqs =
      match Tdf_server.Client.Trace.load trace_path with
      | Ok reqs -> reqs
      | Error e ->
        Printf.eprintf "legalize: %s\n" e;
        exit 2
    in
    let client = Tdf_server.Client.connect ~retries ~backoff_ms socket in
    let summary = Tdf_server.Client.Trace.replay client reqs in
    Tdf_server.Client.close client;
    let illegal = ref 0 in
    List.iter
      (fun (o : Tdf_server.Client.Trace.outcome) ->
        let kind = Tdf_io.Protocol.request_kind o.request in
        let status =
          match o.response with
          | Ok (Tdf_io.Protocol.Legalized { legal; path; _ }) ->
            if not legal then incr illegal;
            Printf.sprintf "legal=%b via %s" legal path
          | Ok (Tdf_io.Protocol.Eco_applied { legal; path; grid_reused; _ }) ->
            if not legal then incr illegal;
            Printf.sprintf "legal=%b via %s%s" legal path
              (if grid_reused then " (warm grid)" else "")
          | Ok _ -> "ok"
          | Error e -> Printf.sprintf "error %s: %s" e.Tdf_io.Protocol.code
                         e.Tdf_io.Protocol.detail
        in
        if verbose then
          Printf.printf "%-13s %8.2f ms  %s\n" kind (o.wall_s *. 1000.) status)
      summary.Tdf_server.Client.Trace.outcomes;
    Printf.printf
      "replayed %d requests in %.2fs: %d ok, %d errors, %d retries, p50 \
       %.2f ms, p99 %.2f ms\n"
      (List.length summary.Tdf_server.Client.Trace.outcomes)
      summary.Tdf_server.Client.Trace.total_s
      summary.Tdf_server.Client.Trace.ok
      summary.Tdf_server.Client.Trace.errors
      summary.Tdf_server.Client.Trace.retries
      summary.Tdf_server.Client.Trace.p50_ms
      summary.Tdf_server.Client.Trace.p99_ms;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Tdf_telemetry.Json.to_string
             (Tdf_server.Client.Trace.summary_json summary));
        output_char oc '\n';
        close_out oc;
        Printf.printf "wrote %s\n" path)
      out_json;
    Option.iter
      (fun path ->
        let oc = open_out path in
        List.iter
          (fun (o : Tdf_server.Client.Trace.outcome) ->
            match o.response with
            | Ok (Tdf_io.Protocol.Legalized { placement = Some p; _ })
            | Ok (Tdf_io.Protocol.Eco_applied { placement = Some p; _ })
            | Ok (Tdf_io.Protocol.Placement_text { placement = p; _ }) ->
              output_string oc p
            | _ -> ())
          summary.Tdf_server.Client.Trace.outcomes;
        close_out oc;
        Printf.printf "wrote %s\n" path)
      dump_placements;
    if summary.Tdf_server.Client.Trace.errors > 0 then exit 1;
    if require_legal && !illegal > 0 then begin
      Printf.eprintf "legalize: %d replies reported illegal placements\n"
        !illegal;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Replay a recorded request trace against a running $(b,serve) \
          daemon and summarize the latency distribution; \
          $(b,--dump-placements) concatenates every placement carried by \
          the replies into one byte-comparable file for determinism \
          checks.")
    Term.(
      const run $ socket_arg $ trace $ out_json $ require_legal $ verbose
      $ retries $ backoff_ms $ dump_placements)

(* ---- import / export ----------------------------------------------- *)

let import_cmd =
  let lef =
    Arg.(
      required
      & opt (some file) None
      & info [ "lef" ] ~docv:"FILE"
          ~doc:"LEF-lite library giving the placement site(s) and macro \
                footprints (lib/io/def_lef/lef.mli grammar).")
  in
  let defs =
    Arg.(
      non_empty & opt_all file []
      & info [ "def" ] ~docv:"FILE"
          ~doc:"DEF file; repeat once per die.  Files pair to dies by \
                their $(b,# tdflow.die <i> of <n>) tag when present, by \
                argument order otherwise.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the imported design (native text format) to $(docv).")
  in
  let place_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "place-out" ] ~docv:"FILE"
          ~doc:"Also write the DEF's placed positions as a placement file \
                (components without coordinates sit at their gp seed).")
  in
  let run lef_path def_paths output place_out =
    let lef =
      match Tdf_def_lef.Lef.load lef_path with
      | Ok l -> l
      | Error e ->
        Printf.eprintf "legalize: %s\n" (parse_diagnostic lef_path e);
        exit 2
    in
    let defs =
      List.map
        (fun p ->
          match Tdf_def_lef.Def.load p with
          | Ok d -> d
          | Error e ->
            Printf.eprintf "legalize: %s\n" (parse_diagnostic p e);
            exit 2)
        def_paths
    in
    match Tdf_def_lef.Def.to_design ~lef defs with
    | Error e ->
      Printf.eprintf "legalize: import: %s\n" e;
      exit 2
    | Ok (design, placement) ->
      List.iter
        (fun i ->
          Printf.eprintf "preflight: %s\n" (Tdf_robust.Validate.issue_to_string i))
        (Tdf_robust.Validate.design design);
      Tdf_io.Text.save_design output design;
      Printf.printf "imported %d dies, %d cells, %d macros, %d nets -> %s\n"
        (Tdf_netlist.Design.n_dies design)
        (Tdf_netlist.Design.n_cells design)
        (Array.length design.Tdf_netlist.Design.macros)
        (Array.length design.Tdf_netlist.Design.nets)
        output;
      Option.iter
        (fun path ->
          Tdf_io.Text.save_placement path design placement;
          Printf.printf "wrote %s\n" path)
        place_out
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Import an open design — one LEF-lite library plus one DEF per \
          die — into the native text format, validated like every other \
          reader (parse errors are typed $(b,file:line:) diagnostics, \
          exit 2).")
    Term.(const run $ lef $ defs $ output $ place_out)

let export_cmd =
  let placement =
    Arg.(
      value
      & opt (some file) None
      & info [ "p"; "placement" ] ~docv:"FILE"
          ~doc:"Placement to export; defaults to the design's rounded \
                global-placement seed.")
  in
  let output =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"BASE"
          ~doc:"Output base path: writes $(docv).lef plus one \
                $(docv).d<i>.def per die.")
  in
  let run design_path placement_path output =
    let design = load_design design_path in
    let placement = Option.map (load_placement design) placement_path in
    (* DEF components are name-keyed; refuse ambiguous exports instead of
       silently conflating cells (run --repair renames duplicates). *)
    (match
       List.filter
         (fun (i : Tdf_robust.Validate.issue) ->
           i.Tdf_robust.Validate.code = "duplicate-cell-name")
         (Tdf_robust.Validate.design design)
     with
    | i :: _ ->
      Printf.eprintf "legalize: export: %s\n"
        (Tdf_robust.Validate.issue_to_string i);
      exit 1
    | [] -> ());
    let lef, defs = Tdf_def_lef.Def.of_design ?placement design in
    let lef_path = output ^ ".lef" in
    Tdf_def_lef.Lef.save lef_path lef;
    let def_paths =
      List.mapi
        (fun i d ->
          let p = Printf.sprintf "%s.d%d.def" output i in
          Tdf_def_lef.Def.save p d;
          p)
        defs
    in
    Printf.printf "wrote %s (%d cells, %d macros, %d nets)\n"
      (String.concat " " (lef_path :: def_paths))
      (Tdf_netlist.Design.n_cells design)
      (Array.length design.Tdf_netlist.Design.macros)
      (Array.length design.Tdf_netlist.Design.nets)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Export a design (and optionally a placement) as canonical \
          DEF/LEF-lite: one LEF plus one DEF per die, deterministic down \
          to the byte — $(b,export) after a lossless $(b,import) \
          reproduces the files exactly.")
    Term.(const run $ design_arg $ placement $ output)

(* ---- version ------------------------------------------------------- *)

let version_cmd =
  Cmd.v
    (Cmd.info "version" ~doc:"Print the tdflow version string.")
    Term.(const (fun () -> print_endline Version_info.version) $ const ())

let () =
  let info =
    Cmd.info "legalize" ~version:Version_info.version
      ~doc:"3D-Flow: flow-based standard-cell legalization for 3D ICs."
  in
  (* catch:false so run-time failures surface as one-line diagnostics
     instead of cmdliner's uncaught-exception backtrace dump; argument
     errors (unknown flags, bad values) still print the usage line. *)
  let code =
    try
      Cmd.eval ~catch:false
        (Cmd.group info
           [ gen_cmd; run_cmd; check_cmd; compare_cmd; tables_cmd; viz_cmd;
             place_cmd; eco_cmd; import_cmd; export_cmd; serve_cmd;
             client_cmd; version_cmd ])
    with
    | Tdf_server.Server.Recovery_error e ->
      Printf.eprintf "legalize: recovery failed: %s\n"
        (Tdf_server.Server.recovery_error_to_string e);
      1
    | Unix.Unix_error (e, fn, arg) ->
      Printf.eprintf "legalize: %s: %s%s\n" fn (Unix.error_message e)
        (if arg = "" then "" else " (" ^ arg ^ ")");
      1
    | Sys_error msg | Failure msg ->
      Printf.eprintf "legalize: %s\n" msg;
      1
  in
  exit code
