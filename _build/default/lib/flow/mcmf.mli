(** Generic minimum-cost maximum-flow on directed graphs.

    Successive shortest paths with Johnson potentials (Dijkstra per
    augmentation); an initial Bellman–Ford pass makes negative edge costs
    admissible.  This is the textbook solver the paper's §III-A refers to:
    with uniform cell widths, legalization reduces exactly to this problem,
    and the library is used by tests and by [examples/uniform_optimal.exe]
    to cross-check 3D-Flow against provably optimal solutions. *)

type t

val create : int -> t
(** [create n] makes an empty graph on vertices [0 .. n-1]. *)

val n_vertices : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:int -> int
(** Adds a directed edge and its residual reverse edge; returns an edge
    handle for {!flow_on}.  Requires [cap >= 0]. *)

val min_cost_flow :
  t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * int
(** [min_cost_flow t ~source ~sink ()] pushes up to [max_flow] (default: as
    much as possible) units and returns [(flow, cost)].  Each augmentation
    uses a shortest path, so the result is a minimum-cost flow of that
    value.  Graphs with negative *cycles* are not supported (the paper's
    networks have none: negative edges only point back toward initial
    positions). *)

val flow_on : t -> int -> int
(** Flow currently routed through an edge handle. *)
