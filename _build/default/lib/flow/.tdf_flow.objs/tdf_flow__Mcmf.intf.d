lib/flow/mcmf.mli:
