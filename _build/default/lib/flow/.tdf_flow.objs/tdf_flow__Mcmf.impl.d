lib/flow/mcmf.ml: Array Tdf_util
