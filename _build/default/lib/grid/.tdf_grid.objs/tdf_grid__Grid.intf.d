lib/grid/grid.mli: Tdf_geometry Tdf_netlist
