lib/grid/grid.ml: Array Float Format Hashtbl List Tdf_geometry Tdf_netlist
