type t = { x : int; y : int; w : int; h : int }

let make ~x ~y ~w ~h =
  assert (w >= 0 && h >= 0);
  { x; y; w; h }

let x_span r = Interval.make r.x (r.x + r.w)

let y_span r = Interval.make r.y (r.y + r.h)

let area r = r.w * r.h

let overlaps a b =
  Interval.overlaps (x_span a) (x_span b) && Interval.overlaps (y_span a) (y_span b)

let intersection_area a b =
  Interval.overlap_length (x_span a) (x_span b)
  * Interval.overlap_length (y_span a) (y_span b)

let contains_rect outer inner =
  outer.x <= inner.x
  && outer.y <= inner.y
  && inner.x + inner.w <= outer.x + outer.w
  && inner.y + inner.h <= outer.y + outer.h

let contains_point r px py =
  Interval.contains (x_span r) px && Interval.contains (y_span r) py

let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

let pp fmt r = Format.fprintf fmt "(%d,%d)+%dx%d" r.x r.y r.w r.h
