lib/geometry/rect.ml: Format Interval
