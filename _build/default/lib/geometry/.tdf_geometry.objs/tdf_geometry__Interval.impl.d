lib/geometry/interval.ml: Format List
