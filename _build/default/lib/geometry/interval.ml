type t = { lo : int; hi : int }

let make lo hi =
  assert (lo <= hi);
  { lo; hi }

let length i = i.hi - i.lo

let is_empty i = i.hi <= i.lo

let contains i x = i.lo <= x && x < i.hi

let overlaps a b = a.lo < b.hi && b.lo < a.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo < hi then Some { lo; hi } else None

let overlap_length a b = max 0 (min a.hi b.hi - max a.lo b.lo)

let clamp i x = max i.lo (min i.hi x)

let subtract i holes =
  let holes =
    holes
    |> List.filter_map (fun h -> intersect i h)
    |> List.sort (fun a b -> compare a.lo b.lo)
  in
  (* Sweep left to right, emitting the gaps between merged holes. *)
  let rec sweep cursor holes acc =
    match holes with
    | [] ->
      let acc = if cursor < i.hi then { lo = cursor; hi = i.hi } :: acc else acc in
      List.rev acc
    | h :: rest ->
      let acc = if cursor < h.lo then { lo = cursor; hi = h.lo } :: acc else acc in
      sweep (max cursor h.hi) rest acc
  in
  sweep i.lo holes []

let pp fmt i = Format.fprintf fmt "[%d,%d)" i.lo i.hi
