(** Half-open integer intervals [\[lo, hi)]. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make lo hi]; requires [lo <= hi]. *)

val length : t -> int

val is_empty : t -> bool

val contains : t -> int -> bool
(** [contains i x] is true when [lo <= x < hi]. *)

val overlaps : t -> t -> bool
(** Strictly positive-length intersection. *)

val intersect : t -> t -> t option
(** Positive-length intersection, if any. *)

val overlap_length : t -> t -> int
(** Length of the intersection (0 when disjoint). *)

val clamp : t -> int -> int
(** [clamp i x] is the nearest point of [\[lo, hi\]] to [x] (note: inclusive
    upper bound, the natural clamp for a coordinate that must stay inside). *)

val subtract : t -> t list -> t list
(** [subtract i holes] is the list of maximal sub-intervals of [i] not covered
    by any interval in [holes], in increasing order.  Used to split placement
    rows into segments around macro blockages. *)

val pp : Format.formatter -> t -> unit
