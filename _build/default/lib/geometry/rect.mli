(** Axis-aligned integer rectangles (low-left corner + size). *)

type t = { x : int; y : int; w : int; h : int }

val make : x:int -> y:int -> w:int -> h:int -> t
(** Requires non-negative size. *)

val x_span : t -> Interval.t
val y_span : t -> Interval.t

val area : t -> int

val overlaps : t -> t -> bool
(** Strictly positive-area intersection. *)

val intersection_area : t -> t -> int

val contains_rect : t -> t -> bool
(** [contains_rect outer inner]. *)

val contains_point : t -> int -> int -> bool

val manhattan : int * int -> int * int -> int
(** Manhattan distance between two points. *)

val pp : Format.formatter -> t -> unit
