module Prng = Tdf_util.Prng
module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design

type result = {
  xs : float array;
  ys : float array;
  zs : float array;
  hpwl_trace : float list;
}

let hpwl design xs ys =
  Array.fold_left
    (fun acc (n : Net.t) ->
      let min_x = ref infinity and max_x = ref neg_infinity in
      let min_y = ref infinity and max_y = ref neg_infinity in
      Array.iter
        (fun pin ->
          if xs.(pin) < !min_x then min_x := xs.(pin);
          if xs.(pin) > !max_x then max_x := xs.(pin);
          if ys.(pin) < !min_y then min_y := ys.(pin);
          if ys.(pin) > !max_y then max_y := ys.(pin))
        n.Net.pins;
      acc +. (!max_x -. !min_x) +. (!max_y -. !min_y))
    0. design.Design.nets

(* Density field: a grid_dim × grid_dim histogram of cell area (average of
   the per-die footprints), plus macro area pre-filled. *)
let density_field design ~grid_dim xs ys =
  let o = (Design.die design 0).Die.outline in
  let fw = float_of_int o.Rect.w and fh = float_of_int o.Rect.h in
  let cell_w = fw /. float_of_int grid_dim in
  let cell_h = fh /. float_of_int grid_dim in
  let density = Array.make_matrix grid_dim grid_dim 0. in
  let bin_of x y =
    let i = int_of_float ((x -. float_of_int o.Rect.x) /. cell_w) in
    let j = int_of_float ((y -. float_of_int o.Rect.y) /. cell_h) in
    (max 0 (min (grid_dim - 1) i), max 0 (min (grid_dim - 1) j))
  in
  (* macros fill their bins on a per-die-average basis *)
  Array.iter
    (fun (m : Tdf_netlist.Blockage.t) ->
      let r = m.Tdf_netlist.Blockage.rect in
      let i0, j0 = bin_of (float_of_int r.Rect.x) (float_of_int r.Rect.y) in
      let i1, j1 =
        bin_of (float_of_int (r.Rect.x + r.Rect.w - 1)) (float_of_int (r.Rect.y + r.Rect.h - 1))
      in
      for i = i0 to i1 do
        for j = j0 to j1 do
          density.(i).(j) <- density.(i).(j) +. (0.5 *. cell_w *. cell_h)
        done
      done)
    design.Design.macros;
  let nd = Design.n_dies design in
  Array.iteri
    (fun c (cell : Cell.t) ->
      let area =
        (* mean footprint across dies *)
        let sum = ref 0. in
        for d = 0 to nd - 1 do
          sum :=
            !sum
            +. float_of_int (Cell.width_on cell d * (Design.die design d).Die.row_height)
        done;
        !sum /. float_of_int nd
      in
      let i, j = bin_of xs.(c) ys.(c) in
      density.(i).(j) <- density.(i).(j) +. area)
    design.Design.cells;
  (density, bin_of, cell_w, cell_h)

let place ?(iterations = 60) ?(grid_dim = 24) ?seed design =
  let n = Design.n_cells design in
  let o = (Design.die design 0).Die.outline in
  let fw = float_of_int o.Rect.w and fh = float_of_int o.Rect.h in
  let ox = float_of_int o.Rect.x and oy = float_of_int o.Rect.y in
  let rng =
    Prng.of_string (match seed with Some s -> s | None -> design.Design.name ^ "/gp3d")
  in
  (* init: loose Gaussian around the die center *)
  let xs = Array.init n (fun _ -> ox +. (fw /. 2.) +. Prng.gaussian rng ~mean:0. ~stddev:(fw /. 4.)) in
  let ys = Array.init n (fun _ -> oy +. (fh /. 2.) +. Prng.gaussian rng ~mean:0. ~stddev:(fh /. 4.)) in
  let zs = Array.init n (fun _ -> 0.5 +. Prng.gaussian rng ~mean:0. ~stddev:0.15) in
  let clamp v lo hi = Float.max lo (Float.min hi v) in
  Array.iteri (fun i v -> xs.(i) <- clamp v ox (ox +. fw -. 1.)) xs;
  Array.iteri (fun i v -> ys.(i) <- clamp v oy (oy +. fh -. 1.)) ys;
  Array.iteri (fun i v -> zs.(i) <- clamp v 0. 1.) zs;
  let fx = Array.make n 0. and fy = Array.make n 0. and fz = Array.make n 0. in
  let degree = Array.make n 0 in
  Array.iter
    (fun (net : Net.t) ->
      Array.iter (fun pin -> degree.(pin) <- degree.(pin) + 1) net.Net.pins)
    design.Design.nets;
  let trace = ref [ hpwl design xs ys ] in
  for it = 1 to iterations do
    Array.fill fx 0 n 0.;
    Array.fill fy 0 n 0.;
    Array.fill fz 0 n 0.;
    (* star-model wirelength attraction toward net centroids *)
    Array.iter
      (fun (net : Net.t) ->
        let k = Array.length net.Net.pins in
        if k >= 2 then begin
          let cx = ref 0. and cy = ref 0. and cz = ref 0. in
          Array.iter
            (fun pin ->
              cx := !cx +. xs.(pin);
              cy := !cy +. ys.(pin);
              cz := !cz +. zs.(pin))
            net.Net.pins;
          let kf = float_of_int k in
          let cx = !cx /. kf and cy = !cy /. kf and cz = !cz /. kf in
          let w = 1. /. float_of_int (k - 1) in
          Array.iter
            (fun pin ->
              fx.(pin) <- fx.(pin) +. (w *. (cx -. xs.(pin)));
              fy.(pin) <- fy.(pin) +. (w *. (cy -. ys.(pin)));
              fz.(pin) <- fz.(pin) +. (w *. (cz -. zs.(pin))))
            net.Net.pins
        end)
      design.Design.nets;
    (* density push, ramped up over the schedule *)
    let density, bin_of, cell_w, cell_h = density_field design ~grid_dim xs ys in
    let target =
      (* average density per bin *)
      let total = Array.fold_left (fun a row -> Array.fold_left ( +. ) a row) 0. density in
      total /. float_of_int (grid_dim * grid_dim)
    in
    let ramp = 0.2 +. (1.3 *. float_of_int it /. float_of_int iterations) in
    for c = 0 to n - 1 do
      let i, j = bin_of xs.(c) ys.(c) in
      let d_here = density.(i).(j) in
      if d_here > target *. 1.05 then begin
        (* push along the discrete density gradient *)
        let d_at i j =
          if i < 0 || i >= grid_dim || j < 0 || j >= grid_dim then infinity
          else density.(i).(j)
        in
        let gx = d_at (i + 1) j -. d_at (i - 1) j in
        let gy = d_at i (j + 1) -. d_at i (j - 1) in
        let gx = if Float.is_finite gx then gx else 0. in
        let gy = if Float.is_finite gy then gy else 0. in
        let overflow = (d_here -. target) /. Float.max 1. target in
        let push = ramp *. overflow in
        (* jitter breaks grid-aligned stalemates deterministically *)
        let jx = Prng.float rng 1.0 -. 0.5 and jy = Prng.float rng 1.0 -. 0.5 in
        fx.(c) <- fx.(c) -. (push *. ((gx /. Float.max 1. (Float.abs gx +. Float.abs gy) *. cell_w) +. jx));
        fy.(c) <- fy.(c) -. (push *. ((gy /. Float.max 1. (Float.abs gx +. Float.abs gy) *. cell_h) +. jy))
      end
    done;
    (* die balance: drift z toward the lighter half-space *)
    let load0 = ref 0. and load1 = ref 0. in
    for c = 0 to n - 1 do
      let w = float_of_int (Cell.width_on (Design.cell design c) 0) in
      if zs.(c) < 0.5 then load0 := !load0 +. w else load1 := !load1 +. w
    done;
    let drift =
      let total = !load0 +. !load1 in
      if total <= 0. then 0. else 0.08 *. ((!load1 -. !load0) /. total)
    in
    (* apply with damping *)
    let step = 0.6 in
    for c = 0 to n - 1 do
      let damp = step /. Float.max 1. (sqrt (float_of_int degree.(c))) in
      xs.(c) <- clamp (xs.(c) +. (damp *. fx.(c))) ox (ox +. fw -. 1.);
      ys.(c) <- clamp (ys.(c) +. (damp *. fy.(c))) oy (oy +. fh -. 1.);
      zs.(c) <- clamp (zs.(c) +. (damp *. fz.(c)) -. drift) 0. 1.
    done;
    trace := hpwl design xs ys :: !trace
  done;
  { xs; ys; zs; hpwl_trace = List.rev !trace }

let apply design r =
  let nd = Design.n_dies design in
  let o = (Design.die design 0).Die.outline in
  let cells =
    Array.mapi
      (fun c (cell : Cell.t) ->
        let z = Float.max 0. (Float.min 1. r.zs.(c)) in
        let die = if z >= 0.5 then min (nd - 1) 1 else 0 in
        let w = Cell.width_on cell die in
        let h = (Design.die design die).Die.row_height in
        let x =
          int_of_float (r.xs.(c) -. (float_of_int w /. 2.))
          |> max o.Rect.x
          |> min (o.Rect.x + o.Rect.w - w)
        in
        let y =
          int_of_float (r.ys.(c) -. (float_of_int h /. 2.))
          |> max o.Rect.y
          |> min (o.Rect.y + o.Rect.h - h)
        in
        Cell.make ~id:cell.Cell.id ~name:cell.Cell.name ~weight:cell.Cell.weight
          ~widths:cell.Cell.widths ~gp_x:x ~gp_y:y ~gp_z:z ())
      design.Design.cells
  in
  Design.make ~name:(design.Design.name ^ "+gp3d") ~dies:design.Design.dies ~cells
    ~macros:design.Design.macros ~nets:design.Design.nets ()
