lib/placer/gp3d.ml: Array Float List Tdf_geometry Tdf_netlist Tdf_util
