lib/placer/gp3d.mli: Tdf_netlist
