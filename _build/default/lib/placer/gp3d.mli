(** A simplified true-3D analytical global placer.

    The paper's legalizer consumes global placements from analytical
    true-3D placers ([18], [19]): continuous (x, y) positions plus a
    continuous die coordinate z, with die assignment left undetermined.
    This module provides that substrate so the repository covers the whole
    flow (netlist → global placement → legalization → refinement).

    The algorithm is a compact cousin of the force-directed family:

    - {e wirelength}: a quadratic star model per net — every pin is pulled
      toward its net's centroid in (x, y, z), solved by damped fixed-point
      iterations (Jacobi on the star system);
    - {e density}: a coarse bin grid per iteration pushes cells out of
      over-dense bins along the local density gradient, with the push
      strength ramped up over iterations (the usual ePlace-style schedule,
      radically simplified);
    - {e die balance}: z receives a drift that equalizes the utilization
      of the two half-spaces, then is clamped to [0, 1];
    - macros act as density walls (their bins are pre-filled).

    Deterministic (seeded from the design name). *)

type result = {
  xs : float array;  (** cell center x *)
  ys : float array;  (** cell center y *)
  zs : float array;  (** continuous die coordinate in [0, 1] *)
  hpwl_trace : float list;
      (** HPWL of the initial spread, then after each iteration *)
}

val place :
  ?iterations:int ->
  ?grid_dim:int ->
  ?seed:string ->
  Tdf_netlist.Design.t ->
  result
(** [place design] ignores the design's [gp_*] fields and computes a fresh
    global placement.  [iterations] defaults to 60, [grid_dim] (density
    bins per axis) to 24. *)

val apply : Tdf_netlist.Design.t -> result -> Tdf_netlist.Design.t
(** A copy of the design whose cells carry the computed global placement
    (centers converted to low-left corners, clamped to the outline) —
    ready for {!Tdf_legalizer.Flow3d.legalize}. *)
