lib/experiments/figures.ml: Buffer Filename Float List Printf Runner String Tdf_benchgen Tdf_io Tdf_netlist
