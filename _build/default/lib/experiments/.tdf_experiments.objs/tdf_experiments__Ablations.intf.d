lib/experiments/ablations.mli: Tdf_netlist
