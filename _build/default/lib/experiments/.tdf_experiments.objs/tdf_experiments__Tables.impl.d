lib/experiments/tables.ml: Array Buffer Float List Printf Runner Tdf_benchgen Tdf_util
