lib/experiments/scaling.mli: Tdf_benchgen
