lib/experiments/runner.ml: Array List Tdf_baselines Tdf_benchgen Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
