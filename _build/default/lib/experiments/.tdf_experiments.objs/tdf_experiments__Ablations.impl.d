lib/experiments/ablations.ml: Buffer List Printf Tdf_legalizer Tdf_metrics Tdf_util
