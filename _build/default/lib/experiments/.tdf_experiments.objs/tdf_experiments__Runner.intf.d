lib/experiments/runner.mli: Tdf_benchgen Tdf_netlist
