lib/experiments/scaling.ml: Buffer List Printf Tdf_baselines Tdf_benchgen Tdf_grid Tdf_legalizer Tdf_netlist Tdf_util
