module Config = Tdf_legalizer.Config
module Flow3d = Tdf_legalizer.Flow3d

type point = {
  label : string;
  avg_disp : float;
  max_disp : float;
  runtime_s : float;
  expansions : int;
  d2d_moves : int;
}

let measure ~label cfg design =
  let r, runtime_s = Tdf_util.Timer.time (fun () -> Flow3d.legalize ~cfg design) in
  let s = Tdf_metrics.Displacement.summary design r.Flow3d.placement in
  {
    label;
    avg_disp = s.Tdf_metrics.Displacement.avg_norm;
    max_disp = s.Tdf_metrics.Displacement.max_norm;
    runtime_s;
    expansions = r.Flow3d.stats.Flow3d.expansions;
    d2d_moves = r.Flow3d.stats.Flow3d.d2d_cells;
  }

let sweep_alpha ?(values = [ 0.0; 0.05; 0.1; 0.3 ]) design =
  let points =
    List.map
      (fun alpha ->
        measure
          ~label:(Printf.sprintf "alpha=%.2f" alpha)
          { Config.default with Config.alpha = alpha }
          design)
      values
  in
  points
  @ [
      measure ~label:"exhaustive"
        { Config.default with Config.exhaustive = true }
        design;
    ]

let sweep_bin_width ?(factors = [ 3.; 5.; 10.; 20.; 40. ]) design =
  List.map
    (fun f ->
      measure
        ~label:(Printf.sprintf "w_v=%.0fw" f)
        { Config.default with Config.bin_width_factor = f }
        design)
    factors

let sweep_d2d_cost ?(values = [ 0.; 0.5; 1.; 2.; 4.; 8. ]) design =
  List.map
    (fun c ->
      measure
        ~label:(Printf.sprintf "d2d_cost=%.1f" c)
        { Config.default with Config.d2d_base_cost = c }
        design)
    values
  @ [ measure ~label:"no_d2d" Config.no_d2d design ]

let sweep_post_opt ?(passes = [ 0; 1; 2; 3; 5 ]) design =
  List.map
    (fun n ->
      measure
        ~label:(Printf.sprintf "post_opt=%d" n)
        { Config.default with Config.post_opt = n > 0; Config.post_opt_passes = n }
        design)
    passes

let render ~title points =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "%s\n" title;
  out "%-14s %8s %8s %7s %10s %7s\n" "setting" "Avg.D" "Max.D" "RT(s)" "pq-pops"
    "#Move";
  List.iter
    (fun p ->
      out "%-14s %8.3f %8.2f %7.2f %10d %7d\n" p.label p.avg_disp p.max_disp
        p.runtime_s p.expansions p.d2d_moves)
    points;
  Buffer.contents buf
