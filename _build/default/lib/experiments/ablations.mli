(** Ablation studies on the design choices the paper discusses in the
    text: the branch-and-bound slack α (§III-B), the bin width w_v
    (§III-F), the D2D edge pricing, and the post-optimization.  Each
    renders a table over one benchmark case. *)

type point = {
  label : string;
  avg_disp : float;
  max_disp : float;
  runtime_s : float;
  expansions : int;
  d2d_moves : int;
}

val sweep_alpha :
  ?values:float list -> Tdf_netlist.Design.t -> point list
(** α ∈ {0, 0.05, 0.1, 0.3, ∞(exhaustive)} by default: quality vs search
    effort ("a small α = 0.1 can help our algorithm find the shortest
    augmenting path with great efficiency"). *)

val sweep_bin_width :
  ?factors:float list -> Tdf_netlist.Design.t -> point list
(** w_v/w̄_c ∈ {3, 5, 10, 20, 40} by default: "the choice of bin width
    involves a trade-off between result quality and efficiency". *)

val sweep_d2d_cost :
  ?values:float list -> Tdf_netlist.Design.t -> point list
(** D2D base cost in row heights; 0 reproduces raw Eq. 7 (many gratuitous
    crossings), large values converge to the w/o-D2D ablation. *)

val sweep_post_opt :
  ?passes:int list -> Tdf_netlist.Design.t -> point list
(** Post-optimization rounds: max-displacement reduction per round. *)

val render : title:string -> point list -> string
