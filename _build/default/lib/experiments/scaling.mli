(** Runtime-vs-size study.

    The paper's runtime claims (BonnPlaceLegal "unscalable for large
    designs", 3.34×/8.89× speedups) are asymptotic: whole-graph Dijkstra
    per augmentation vs bounded branch-and-bound search.  This study runs
    one case at increasing scales and reports, per method, the runtime and
    the search effort, making the growth rates visible at laptop sizes. *)

type point = {
  sc_scale : float;
  sc_cells : int;
  sc_bins : int;
  tetris_s : float;
  abacus_s : float;
  bonn_s : float;
  bonn_pops_per_aug : float;
      (** mean priority-queue pops per augmentation of the exhaustive
          search *)
  ours_s : float;
  ours_pops_per_aug : float;
      (** mean pops per augmentation of the α-bounded 3D search *)
}

val run :
  ?scales:float list ->
  Tdf_benchgen.Spec.suite ->
  string ->
  point list
(** Default scales: 0.02, 0.05, 0.1, 0.2. *)

val render : point list -> string
