let fig7 ~title results =
  let buf = Buffer.create 2048 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "%s\n" title;
  let methods =
    match results with
    | [] -> []
    | r :: _ -> List.map (fun (row : Runner.row) -> row.Runner.method_) r.Runner.rows
  in
  let max_pct =
    List.fold_left
      (fun acc (r : Runner.case_result) ->
        List.fold_left
          (fun acc (row : Runner.row) -> Float.max acc row.Runner.hpwl_incr_pct)
          acc r.Runner.rows)
      1. results
  in
  List.iter
    (fun (r : Runner.case_result) ->
      out "%s\n" r.Runner.case;
      List.iter
        (fun m ->
          let row =
            List.find (fun (row : Runner.row) -> row.Runner.method_ = m) r.Runner.rows
          in
          let bar =
            let n =
              int_of_float (Float.round (row.Runner.hpwl_incr_pct /. max_pct *. 40.))
            in
            String.make (max 0 n) '#'
          in
          out "  %-8s %6.2f%% %s\n" (Runner.method_name m) row.Runner.hpwl_incr_pct bar)
        methods)
    results;
  Buffer.contents buf

let fig7_csv results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "case,method,hpwl_increase_pct\n";
  List.iter
    (fun (r : Runner.case_result) ->
      List.iter
        (fun (row : Runner.row) ->
          Printf.ksprintf (Buffer.add_string buf) "%s,%s,%.4f\n" r.Runner.case
            (Runner.method_name row.Runner.method_)
            row.Runner.hpwl_incr_pct)
        r.Runner.rows)
    results;
  Buffer.contents buf

let fig8 ?(scale = 0.05) ?(dir = ".") () =
  let design =
    Tdf_benchgen.Gen.generate_by_name ~scale Tdf_benchgen.Spec.Iccad2023 "case3"
  in
  let p_no = Runner.legalize_with Runner.Ours_no_d2d design in
  let p_ours = Runner.legalize_with Runner.Ours design in
  let top = Tdf_netlist.Design.n_dies design - 1 in
  let path_no = Filename.concat dir "fig8_no_d2d.svg" in
  let path_ours = Filename.concat dir "fig8_ours.svg" in
  Tdf_io.Svg.save_die path_no design p_no ~die:top
    ~title:"(a) w/o D2D cell movement — top die, ICCAD 2023 case3" ();
  Tdf_io.Svg.save_die path_ours design p_ours ~die:top
    ~title:"(b) 3D-Flow — top die, ICCAD 2023 case3 (blue: from bottom die)" ();
  (path_no, path_ours)
