(** Renders the paper's tables from measured case results.

    The "Average" row reproduces the paper's normalization: for each
    method, the geometric mean over cases of (method metric ÷ Ours
    metric), so Ours reads 1.000. *)

val table2 : ?scale:float -> unit -> string
(** TABLE II: benchmark statistics (generation targets), with the actual
    generated counts at [scale]. *)

val comparison :
  title:string -> Runner.case_result list -> string
(** TABLE III / TABLE IV layout: per case and method, Avg. Disp.,
    Max. Disp., RT(s); final normalized-average row. *)

val ablation : Runner.case_result list -> string
(** TABLE V layout: w/o D2D vs Ours displacement plus #Move.  Expects each
    case's rows to contain [Ours_no_d2d] and [Ours]. *)

val normalized_row :
  Runner.case_result list -> (Runner.method_ * float * float * float) list
(** Per method: geomean ratios vs Ours of (avg, max, runtime). *)
