(** Renders the paper's figures from measured case results. *)

val fig7 : title:string -> Runner.case_result list -> string
(** Fig. 7: ΔHPWL (%) per case for every method — an aligned text series
    plus horizontal bars. *)

val fig7_csv : Runner.case_result list -> string
(** The same data as CSV (case, method, hpwl_incr_pct) for external
    plotting. *)

val fig8 :
  ?scale:float -> ?dir:string -> unit -> string * string
(** Fig. 8: displacement visualization of the top die of ICCAD 2023 case3,
    without D2D movement and with 3D-Flow.  Writes two SVGs into [dir]
    (default ".") and returns their paths. *)
