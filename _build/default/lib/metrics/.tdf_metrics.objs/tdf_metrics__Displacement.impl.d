lib/metrics/displacement.ml: Array Tdf_netlist
