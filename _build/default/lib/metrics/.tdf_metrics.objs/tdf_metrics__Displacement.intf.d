lib/metrics/displacement.mli: Tdf_netlist
