lib/metrics/hpwl.ml: Array Tdf_netlist
