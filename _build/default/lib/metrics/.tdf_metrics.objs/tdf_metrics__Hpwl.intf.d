lib/metrics/hpwl.mli: Tdf_netlist
