lib/metrics/legality.ml: Array Format Hashtbl List Tdf_geometry Tdf_grid Tdf_netlist
