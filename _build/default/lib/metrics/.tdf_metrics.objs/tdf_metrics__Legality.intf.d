lib/metrics/legality.mli: Tdf_netlist
