(** Half-perimeter wirelength.

    Pins sit at cell centers; all dies are projected onto one plane, the
    standard F2F metric when hybrid-bonding terminals are not modeled
    (DESIGN.md §4).  Fig. 7 reports the increase from the global placement
    to the legal placement. *)

val of_placement : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> float
(** Σ over nets of the pin bounding-box half-perimeter. *)

val of_global : Tdf_netlist.Design.t -> float
(** HPWL of the global placement itself (cells at initial positions on
    their nearest dies). *)

val increase_pct : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> float
(** ΔHPWL in percent: 100·(legal − global)/global; 0 when the design has
    no nets. *)
