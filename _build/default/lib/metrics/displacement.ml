module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Placement = Tdf_netlist.Placement

type summary = {
  avg_norm : float;
  max_norm : float;
  avg_raw : float;
  max_raw : int;
  avg_weighted : float;
}

let per_cell design p c =
  let raw = Placement.displacement design p c in
  let h_r = (Design.die design p.Placement.die.(c)).Die.row_height in
  float_of_int raw /. float_of_int h_r

let summary design p =
  let n = Placement.n_cells p in
  if n = 0 then
    { avg_norm = 0.; max_norm = 0.; avg_raw = 0.; max_raw = 0; avg_weighted = 0. }
  else begin
    let sum_norm = ref 0. and max_norm = ref 0. in
    let sum_raw = ref 0 and max_raw = ref 0 in
    let sum_weighted = ref 0. and sum_weight = ref 0. in
    for c = 0 to n - 1 do
      let raw = Placement.displacement design p c in
      let norm = per_cell design p c in
      let weight = (Design.cell design c).Tdf_netlist.Cell.weight in
      sum_norm := !sum_norm +. norm;
      if norm > !max_norm then max_norm := norm;
      sum_raw := !sum_raw + raw;
      if raw > !max_raw then max_raw := raw;
      sum_weighted := !sum_weighted +. (weight *. norm);
      sum_weight := !sum_weight +. weight
    done;
    {
      avg_norm = !sum_norm /. float_of_int n;
      max_norm = !max_norm;
      avg_raw = float_of_int !sum_raw /. float_of_int n;
      max_raw = !max_raw;
      avg_weighted = !sum_weighted /. !sum_weight;
    }
  end
