(** Displacement metrics of Tables III–V.

    Each cell's Manhattan displacement |x−x'|+|y−y'| is normalized by the
    row height of its final die ("normalized by the row height"; per-die
    normalization is the only well-defined choice under heterogeneous row
    heights — see DESIGN.md §4). *)

type summary = {
  avg_norm : float;  (** mean normalized displacement (Avg. Disp.) *)
  max_norm : float;  (** max normalized displacement (Max. Disp.) *)
  avg_raw : float;  (** mean raw Manhattan displacement, DBU *)
  max_raw : int;  (** max raw Manhattan displacement, DBU *)
  avg_weighted : float;
      (** criticality-weighted mean: Σ weight·disp_norm / Σ weight *)
}

val per_cell : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> int -> float
(** Normalized displacement of one cell. *)

val summary : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> summary
