type suite = Iccad2022 | Iccad2023

type t = {
  suite : suite;
  case : string;
  n_cells : int;
  n_macros : int;
  n_nets : int;
  hr_top : int;
  hr_bottom : int;
  utilization : float;
  cluster_bias : float;
}

let mk suite case n_cells n_macros n_nets hr_top hr_bottom utilization cluster_bias =
  { suite; case; n_cells; n_macros; n_nets; hr_top; hr_bottom; utilization; cluster_bias }

let iccad2022 =
  [
    mk Iccad2022 "case2" 2735 0 2644 176 252 0.70 0.55;
    mk Iccad2022 "case2h" 2735 0 2644 252 252 0.70 0.55;
    mk Iccad2022 "case3" 44764 0 44360 115 115 0.74 0.60;
    mk Iccad2022 "case3h" 44764 0 44360 92 115 0.74 0.60;
    mk Iccad2022 "case4" 220845 0 220071 92 115 0.78 0.65;
    mk Iccad2022 "case4h" 220845 0 220071 103 115 0.78 0.65;
  ]

let iccad2023 =
  [
    mk Iccad2023 "case2" 13901 6 19547 33 33 0.76 0.65;
    mk Iccad2023 "case2h1" 13901 6 19547 33 48 0.76 0.70;
    mk Iccad2023 "case2h2" 13901 6 19547 33 48 0.76 0.72;
    mk Iccad2023 "case3" 124231 34 164429 33 48 0.78 0.72;
    (* Rows below are truncated in the available scan of TABLE II; counts
       follow the contest's netlist reuse, heights the h-naming convention. *)
    mk Iccad2023 "case3h" 124231 34 164429 48 48 0.78 0.70;
    mk Iccad2023 "case4" 220843 64 220061 33 33 0.72 0.55;
    mk Iccad2023 "case4h" 220843 64 220061 33 48 0.74 0.65;
  ]

let find suite case =
  let pool = match suite with Iccad2022 -> iccad2022 | Iccad2023 -> iccad2023 in
  List.find (fun s -> s.case = case) pool

let suite_name = function Iccad2022 -> "ICCAD 2022" | Iccad2023 -> "ICCAD 2023"

let suite_slug = function Iccad2022 -> "iccad2022" | Iccad2023 -> "iccad2023"

let scaled t ~scale =
  if scale >= 1.0 then t
  else begin
    let n_cells = max 64 (int_of_float (float_of_int t.n_cells *. scale)) in
    let n_nets = max 32 (int_of_float (float_of_int t.n_nets *. scale)) in
    { t with n_cells; n_nets }
  end
