module Prng = Tdf_util.Prng
module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design

(* Bottom-die widths are drawn from [2, 8]; the top-die width rescales the
   footprint so cell area is roughly conserved across technologies. *)
let draw_widths rng spec =
  let wb = Prng.int_in rng 2 8 in
  let wt =
    max 1
      (int_of_float
         (Float.round
            (float_of_int (wb * spec.Spec.hr_bottom) /. float_of_int spec.Spec.hr_top)))
  in
  [| wb; wt |]

let die_heights spec = [| spec.Spec.hr_bottom; spec.Spec.hr_top |]

(* Side of the (square-ish) die outline: sized so each die sits at the
   target utilization with cells split roughly half/half, plus room for
   macros (≈15% of the die when present). *)
let outline_for spec widths =
  let heights = die_heights spec in
  let area_on d =
    Array.fold_left (fun acc w -> acc +. float_of_int (w.(d) * heights.(d))) 0. widths
  in
  let per_die_need =
    max (area_on 0) (area_on 1) *. 0.55 /. spec.Spec.utilization
  in
  let total = if spec.Spec.n_macros > 0 then per_die_need /. 0.85 else per_die_need in
  let side = sqrt total in
  let h_step = spec.Spec.hr_bottom in
  let h = max (4 * h_step) (int_of_float side / h_step * h_step) in
  let w = max 32 (int_of_float (total /. float_of_int h)) in
  Rect.make ~x:0 ~y:0 ~w ~h

let gen_macros rng spec (outline : Rect.t) heights =
  if spec.Spec.n_macros = 0 then [||]
  else begin
    let total_area = 0.15 *. float_of_int (Rect.area outline) in
    let per_macro = total_area /. float_of_int spec.Spec.n_macros in
    let macros = ref [] in
    let overlaps_existing die r =
      List.exists
        (fun (m : Blockage.t) -> m.Blockage.die = die && Rect.overlaps m.Blockage.rect r)
        !macros
    in
    for id = 0 to spec.Spec.n_macros - 1 do
      let die = id mod 2 in
      let h_r = heights.(die) in
      let rec attempt tries shrink =
        let aspect = 0.6 +. Prng.float rng 1.2 in
        let w = int_of_float (sqrt (per_macro *. shrink) *. aspect) in
        let h0 = int_of_float (per_macro *. shrink /. float_of_int (max 1 w)) in
        let h = max h_r (h0 / h_r * h_r) in
        let w = max 8 (min w (outline.Rect.w / 2)) in
        let h = min h (outline.Rect.h / 2 / h_r * h_r) in
        let x = Prng.int rng (max 1 (outline.Rect.w - w)) in
        let y0 = Prng.int rng (max 1 ((outline.Rect.h - h) / h_r)) * h_r in
        let r = Rect.make ~x ~y:y0 ~w ~h in
        if overlaps_existing die r then
          if tries > 0 then attempt (tries - 1) shrink
          else if shrink > 0.1 then attempt 50 (shrink /. 2.)
          else ()
        else macros := Blockage.make ~id ~die ~rect:r () :: !macros
      in
      attempt 50 1.0
    done;
    Array.of_list (List.rev !macros)
  end

let inside_macro macros die x y =
  Array.exists
    (fun (m : Blockage.t) ->
      m.Blockage.die = die && Rect.contains_point m.Blockage.rect x y)
    macros

(* Global placement: mixture of Gaussian hot-spot clusters (overflow
   sources) and a uniform background, with per-cluster die preference so
   that die-to-die moves pay off (the Fig. 1 motivation). *)
let gen_positions rng spec (outline : Rect.t) macros n =
  let k = max 3 (n / 1500) in
  let clusters =
    Array.init k (fun _ ->
        let cx = Prng.int rng outline.Rect.w in
        let cy = Prng.int rng outline.Rect.h in
        (* Mild die preference: true-3D global placements are already
           locally die-balanced, so cross-die moves pay off for a few cells
           only (Table V reports <1% of cells crossing). *)
        let zpref = if Prng.bool rng then 0.38 else 0.62 in
        let sigma = float_of_int outline.Rect.w *. (0.04 +. Prng.float rng 0.06) in
        (cx, cy, zpref, sigma))
  in
  let clamp v lim = max 0 (min (lim - 1) v) in
  Array.init n (fun _ ->
      let clustered = Prng.float rng 1.0 < spec.Spec.cluster_bias in
      let rec draw tries =
        let x, y, z =
          if clustered then begin
            let cx, cy, zpref, sigma = Prng.choose rng clusters in
            let x = int_of_float (Prng.gaussian rng ~mean:(float_of_int cx) ~stddev:sigma) in
            let y = int_of_float (Prng.gaussian rng ~mean:(float_of_int cy) ~stddev:sigma) in
            let z = Prng.gaussian rng ~mean:zpref ~stddev:0.3 in
            (x, y, z)
          end
          else
            ( Prng.int rng outline.Rect.w,
              Prng.int rng outline.Rect.h,
              Prng.float rng 1.0 )
        in
        let x = clamp x outline.Rect.w + outline.Rect.x in
        let y = clamp y outline.Rect.h + outline.Rect.y in
        let z = Float.max 0. (Float.min 1. z) in
        let die = if z >= 0.5 then 1 else 0 in
        if tries > 0 && inside_macro macros die x y then draw (tries - 1) else (x, y, z)
      in
      draw 4)

(* Flip the die coordinate of random cells until both dies fit below the
   utilization cap (with slack); guarantees the case is feasible. *)
let rebalance rng widths positions heights (outline : Rect.t) macros util =
  let n = Array.length positions in
  let cap = Array.make 2 0. in
  for d = 0 to 1 do
    let nrows = outline.Rect.h / heights.(d) in
    let blocked =
      Array.fold_left
        (fun acc (m : Blockage.t) ->
          if m.Blockage.die = d then acc + Rect.area m.Blockage.rect else acc)
        0 macros
    in
    cap.(d) <-
      (float_of_int (outline.Rect.w * nrows * heights.(d)) -. float_of_int blocked)
      /. float_of_int heights.(d)
  done;
  let load = Array.make 2 0. in
  let die_of z = if z >= 0.5 then 1 else 0 in
  Array.iteri
    (fun i (_, _, z) ->
      let d = die_of z in
      load.(d) <- load.(d) +. float_of_int widths.(i).(d))
    positions;
  let limit d = util *. 0.97 *. cap.(d) in
  (* A true-3D placer balances die areas; besides enforcing the caps we
     equalize utilization, otherwise every legalizer would pour the heavy
     die into the light one and the #Move statistic would be meaningless. *)
  let util_of d = load.(d) /. Float.max 1. cap.(d) in
  let flips = ref 0 in
  while
    (load.(0) > limit 0 || load.(1) > limit 1
    || Float.abs (util_of 0 -. util_of 1) > 0.02)
    && !flips < 40 * n
  do
    incr flips;
    let from_die = if util_of 0 -. (limit 0 /. cap.(0)) > util_of 1 -. (limit 1 /. cap.(1)) then 0 else 1 in
    let from_die =
      if load.(0) <= limit 0 && load.(1) <= limit 1 then
        if util_of 0 > util_of 1 then 0 else 1
      else from_die
    in
    let i = Prng.int rng n in
    let x, y, z = positions.(i) in
    if die_of z = from_die then begin
      let to_die = 1 - from_die in
      load.(from_die) <- load.(from_die) -. float_of_int widths.(i).(from_die);
      load.(to_die) <- load.(to_die) +. float_of_int widths.(i).(to_die);
      positions.(i) <- (x, y, if to_die = 1 then 0.75 else 0.25)
    end
  done

(* Locality-aware nets: pins are neighbours in a coarse spatial ordering. *)
let gen_nets rng spec positions n_cells =
  let order = Array.init n_cells (fun i -> i) in
  let key i =
    let x, y, _ = positions.(i) in
    ((y / 64) * 1_000_000) + x
  in
  Array.sort (fun a b -> compare (key a) (key b)) order;
  let draw_size () =
    let r = Prng.int rng 100 in
    if r < 45 then 2 else if r < 75 then 3 else if r < 90 then 4 else 5
  in
  Array.init spec.Spec.n_nets (fun id ->
      let size = draw_size () in
      let start = Prng.int rng n_cells in
      let pins =
        Array.init size (fun j ->
            if j = 0 then order.(start)
            else begin
              let off = Prng.int_in rng 1 40 in
              order.((start + (j * off)) mod n_cells)
            end)
      in
      let dedup = Array.of_list (List.sort_uniq compare (Array.to_list pins)) in
      let pins = if Array.length dedup >= 2 then dedup else [| order.(start); order.((start + 1) mod n_cells) |] in
      Net.make ~id ~pins ())

let generate ?(scale = 1.0) spec0 =
  let spec = Spec.scaled spec0 ~scale in
  let rng = Prng.of_string (Spec.suite_name spec.Spec.suite ^ "/" ^ spec.Spec.case) in
  let n = spec.Spec.n_cells in
  let widths = Array.init n (fun _ -> draw_widths rng spec) in
  let heights = die_heights spec in
  let outline = outline_for spec widths in
  let macros = gen_macros rng spec outline heights in
  let positions = gen_positions rng spec outline macros n in
  rebalance rng widths positions heights outline macros spec.Spec.utilization;
  let dies =
    Array.init 2 (fun d ->
        Die.make ~index:d ~outline ~row_height:heights.(d) ~site_width:1
          ~max_util:0.99 ())
  in
  (* ~4%% of cells are timing-critical (legalization runs after timing
     optimization, §I); they carry movement weight 4. *)
  let cells =
    Array.init n (fun id ->
        let x, y, z = positions.(id) in
        let weight = if Prng.int rng 100 < 4 then 4.0 else 1.0 in
        Cell.make ~id ~weight ~widths:widths.(id) ~gp_x:x ~gp_y:y ~gp_z:z ())
  in
  let nets = gen_nets rng spec positions n in
  Design.make
    ~name:(Spec.suite_slug spec.Spec.suite ^ ":" ^ spec.Spec.case)
    ~dies ~cells ~macros ~nets ()

let generate_by_name ?scale suite case = generate ?scale (Spec.find suite case)
