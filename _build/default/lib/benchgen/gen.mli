(** Deterministic synthetic generator of ICCAD-2022/2023-style 3D-IC cases.

    Produces, from a {!Spec.t}, a two-die F2F design whose statistics match
    TABLE II (cell/macro/net counts, heterogeneous row heights) plus a
    true-3D-placer-style global placement: continuous positions with
    Gaussian hot-spot clusters (creating overflowed bins), a continuous die
    coordinate, macro blockages on the 2023 cases, and locality-aware nets
    for HPWL.  All randomness is seeded from the case name, so every case
    is bit-reproducible.

    Feasibility is guaranteed: per-die demand is rebalanced below the
    utilization target before the design is emitted. *)

val generate : ?scale:float -> Spec.t -> Tdf_netlist.Design.t
(** [scale] (default 1.0) shrinks cell/net counts for fast runs. *)

val generate_by_name :
  ?scale:float -> Spec.suite -> string -> Tdf_netlist.Design.t
(** Convenience wrapper over {!Spec.find}. *)
