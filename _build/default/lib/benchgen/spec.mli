(** Published statistics of the ICCAD 2022 [25] and ICCAD 2023 [26] contest
    benchmarks (TABLE II), used as generation targets.

    The paper's TABLE II lists, per case, #Cells, #Macros, #Nets and the
    top/bottom row heights h_r^+/h_r^-.  The provided scan truncates the
    last three ICCAD-2023 rows; their cell/net counts are taken from the
    visible 2023 case3 row and the 2022 case4 row (the contests reuse the
    same netlists), and their row heights follow the homogeneous /
    heterogeneous naming convention — recorded in EXPERIMENTS.md. *)

type suite = Iccad2022 | Iccad2023

type t = {
  suite : suite;
  case : string;
  n_cells : int;
  n_macros : int;
  n_nets : int;
  hr_top : int;  (** h_r^+ *)
  hr_bottom : int;  (** h_r^- *)
  utilization : float;  (** target per-die placement utilization *)
  cluster_bias : float;  (** strength of GP hot spots in [0, 1] *)
}

val iccad2022 : t list
val iccad2023 : t list

val find : suite -> string -> t
(** Raises [Not_found] for an unknown case name. *)

val suite_name : suite -> string

val suite_slug : suite -> string
(** Whitespace-free identifier ("iccad2022"), used in design names so they
    survive the text format. *)

val scaled : t -> scale:float -> t
(** Scale cell/net counts (macros kept), at least 64 cells. *)
