lib/benchgen/gen.mli: Spec Tdf_netlist
