lib/benchgen/gen.ml: Array Float List Spec Tdf_geometry Tdf_netlist Tdf_util
