lib/benchgen/spec.ml: List
