lib/benchgen/spec.mli:
