(** A complete 3D-IC design: die stack, movable cells, macro blockages, nets.

    The design is immutable; candidate and final placements live in
    {!Placement.t} so that several legalizers can run on the same design. *)

type t = {
  name : string;
  dies : Die.t array;
  cells : Cell.t array;
  macros : Blockage.t array;
  nets : Net.t array;
}

val make :
  name:string ->
  dies:Die.t array ->
  cells:Cell.t array ->
  ?macros:Blockage.t array ->
  ?nets:Net.t array ->
  unit ->
  t
(** Builds a design.  [macros] and [nets] default to empty. *)

val n_dies : t -> int
val n_cells : t -> int

val die : t -> int -> Die.t
val cell : t -> int -> Cell.t

val avg_cell_width : t -> int -> float
(** [avg_cell_width t die] is the mean cell width w̄_c measured with each
    cell's width on [die]; used to choose the bin width (§III-F). *)

val total_cell_area : t -> float
(** Sum over cells of width × row height on the cell's nearest die. *)

val validate : t -> (unit, string list) result
(** Structural checks: cell ids dense and ordered, width arrays matching the
    die count, macros inside their die outline and mutually non-overlapping,
    net pins referencing existing cells. *)
