(** A net connecting a set of cells; pins are taken at cell centers for HPWL. *)

type t = {
  id : int;
  name : string;
  pins : int array;  (** cell ids *)
}

val make : id:int -> ?name:string -> pins:int array -> unit -> t
(** Requires at least one pin. *)
