(** A (candidate) placement: current low-left position and die per cell.

    Mutable arrays indexed by cell id.  [initial] snapshots the global
    placement with each cell on its nearest die; legalizers transform a copy
    into a legal placement. *)

type t = {
  x : int array;
  y : int array;
  die : int array;
}

val initial : Design.t -> t
(** Positions from the global placement, dies from rounding [gp_z]
    (the greedy nearest-die assignment of §II-B). *)

val copy : t -> t

val n_cells : t -> int

val displacement : Design.t -> t -> int -> int
(** [displacement design p c] is the Manhattan displacement
    [|x_c - x'_c| + |y_c - y'_c|] of cell [c] (Eq. 4); die changes are not
    charged, matching the paper. *)

val cell_rect : Design.t -> t -> int -> Tdf_geometry.Rect.t
(** Footprint of cell [c] at its current position: its width on the current
    die × the die's row height. *)
