module Rect = Tdf_geometry.Rect

type t = {
  name : string;
  dies : Die.t array;
  cells : Cell.t array;
  macros : Blockage.t array;
  nets : Net.t array;
}

let make ~name ~dies ~cells ?(macros = [||]) ?(nets = [||]) () =
  assert (Array.length dies > 0);
  { name; dies; cells; macros; nets }

let n_dies t = Array.length t.dies

let n_cells t = Array.length t.cells

let die t i = t.dies.(i)

let cell t i = t.cells.(i)

let avg_cell_width t d =
  let n = Array.length t.cells in
  if n = 0 then 0.
  else begin
    let sum = Array.fold_left (fun acc c -> acc + Cell.width_on c d) 0 t.cells in
    float_of_int sum /. float_of_int n
  end

let total_cell_area t =
  let nd = n_dies t in
  Array.fold_left
    (fun acc c ->
      let d = Cell.nearest_die c ~n_dies:nd in
      acc
      +. float_of_int (Cell.width_on c d * t.dies.(d).Die.row_height))
    0. t.cells

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let nd = n_dies t in
  Array.iteri
    (fun i c ->
      if c.Cell.id <> i then err "cell %d has id %d (ids must be dense)" i c.Cell.id;
      if Array.length c.Cell.widths <> nd then
        err "cell %s has %d widths for %d dies" c.Cell.name (Array.length c.Cell.widths) nd)
    t.cells;
  Array.iteri
    (fun i d ->
      if d.Die.index <> i then err "die %d has index %d" i d.Die.index;
      if Die.num_rows d = 0 then err "die %d has no complete row" i)
    t.dies;
  Array.iter
    (fun m ->
      if m.Blockage.die < 0 || m.Blockage.die >= nd then
        err "macro %s on invalid die %d" m.Blockage.name m.Blockage.die
      else begin
        let outline = t.dies.(m.Blockage.die).Die.outline in
        if not (Rect.contains_rect outline m.Blockage.rect) then
          err "macro %s escapes die %d outline" m.Blockage.name m.Blockage.die
      end)
    t.macros;
  Array.iter
    (fun m1 ->
      Array.iter
        (fun m2 ->
          if
            m1.Blockage.id < m2.Blockage.id
            && m1.Blockage.die = m2.Blockage.die
            && Rect.overlaps m1.Blockage.rect m2.Blockage.rect
          then err "macros %s and %s overlap" m1.Blockage.name m2.Blockage.name)
        t.macros)
    t.macros;
  Array.iter
    (fun n ->
      Array.iter
        (fun p ->
          if p < 0 || p >= n_cells t then err "net %s references missing cell %d" n.Net.name p)
        n.Net.pins)
    t.nets;
  if !errors = [] then Ok () else Error (List.rev !errors)
