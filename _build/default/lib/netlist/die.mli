(** A die of an F2F-bonded (or generally stacked) 3D IC.

    Dies are indexed [0 .. n-1] with 0 the bottom die.  Each die has its own
    placement-row height and site width, which is how heterogeneous
    technology integration (ICCAD 2022/2023 "h" cases) is modeled. *)

type t = {
  index : int;  (** position in the stack, 0 = bottom *)
  outline : Tdf_geometry.Rect.t;  (** placeable area *)
  row_height : int;  (** h_r of this die *)
  site_width : int;  (** legal x positions are multiples of this from row start *)
  max_util : float;  (** utilization cap for D2D moves (§III-F), in (0, 1] *)
}

val make :
  index:int ->
  outline:Tdf_geometry.Rect.t ->
  row_height:int ->
  ?site_width:int ->
  ?max_util:float ->
  unit ->
  t
(** [site_width] defaults to 1, [max_util] to 1.0.  Requires a positive row
    height dividing decisions elsewhere; the outline height is truncated to a
    whole number of rows by {!num_rows}. *)

val num_rows : t -> int
(** Number of complete placement rows fitting in the outline. *)

val row_y : t -> int -> int
(** [row_y d r] is the y coordinate of row [r]'s bottom edge. *)

val row_of_y : t -> int -> int
(** [row_of_y d y] is the index of the row whose span contains [y], clamped
    to valid rows. *)

val nearest_row : t -> int -> int
(** Row index whose bottom edge is nearest to a (possibly unaligned) y. *)
