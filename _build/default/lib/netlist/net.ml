type t = { id : int; name : string; pins : int array }

let make ~id ?name ~pins () =
  assert (Array.length pins > 0);
  let name = match name with Some n -> n | None -> "n" ^ string_of_int id in
  { id; name; pins }
