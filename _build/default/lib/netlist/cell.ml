type t = {
  id : int;
  name : string;
  widths : int array;
  gp_x : int;
  gp_y : int;
  gp_z : float;
  weight : float;
}

let make ~id ?name ?(weight = 1.0) ~widths ~gp_x ~gp_y ~gp_z () =
  assert (Array.length widths > 0);
  assert (Array.for_all (fun w -> w > 0) widths);
  assert (weight > 0.);
  let name = match name with Some n -> n | None -> "c" ^ string_of_int id in
  { id; name; widths; gp_x; gp_y; gp_z; weight }

let width_on c die = c.widths.(die)

let nearest_die c ~n_dies =
  let d = int_of_float (Float.round c.gp_z) in
  max 0 (min (n_dies - 1) d)
