(** A macro, treated as a fixed blockage on one die (§II-B: "macros have
    been placed on their corresponding dies without any overlap"). *)

type t = {
  id : int;
  name : string;
  die : int;
  rect : Tdf_geometry.Rect.t;
}

val make : id:int -> ?name:string -> die:int -> rect:Tdf_geometry.Rect.t -> unit -> t
