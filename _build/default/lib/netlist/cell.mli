(** A movable standard cell.

    A cell has one width per die ([w_c^+] / [w_c^-] in the paper, generalized
    to any stack depth); its height always equals the row height of the die
    it currently sits on.  The global-placement position is the "initial"
    position [(x'_c, y'_c)] that displacement is measured against, plus a
    continuous die coordinate [gp_z] as produced by a true-3D placer. *)

type t = {
  id : int;  (** dense index into [Design.cells] *)
  name : string;
  widths : int array;  (** width on each die, length = number of dies *)
  gp_x : int;  (** initial low-left x *)
  gp_y : int;  (** initial low-left y *)
  gp_z : float;  (** continuous die coordinate in [0, n_dies - 1] *)
  weight : float;
      (** movement-cost weight (timing criticality); 1.0 for ordinary
          cells.  Weighted cells are more expensive to displace for the
          flow search, PlaceRow and the baselines alike. *)
}

val make :
  id:int ->
  ?name:string ->
  ?weight:float ->
  widths:int array ->
  gp_x:int ->
  gp_y:int ->
  gp_z:float ->
  unit ->
  t
(** [name] defaults to ["c<id>"], [weight] to 1.0 (must be positive).  All
    widths must be positive. *)

val width_on : t -> int -> int
(** [width_on c die] is the cell's width on die [die]. *)

val nearest_die : t -> n_dies:int -> int
(** Round [gp_z] to the nearest valid die index. *)
