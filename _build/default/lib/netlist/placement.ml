module Rect = Tdf_geometry.Rect

type t = {
  x : int array;
  y : int array;
  die : int array;
}

let initial design =
  let n = Design.n_cells design in
  let nd = Design.n_dies design in
  let x = Array.make n 0 and y = Array.make n 0 and die = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = Design.cell design i in
    x.(i) <- c.Cell.gp_x;
    y.(i) <- c.Cell.gp_y;
    die.(i) <- Cell.nearest_die c ~n_dies:nd
  done;
  { x; y; die }

let copy t = { x = Array.copy t.x; y = Array.copy t.y; die = Array.copy t.die }

let n_cells t = Array.length t.x

let displacement design p c =
  let cl = Design.cell design c in
  abs (p.x.(c) - cl.Cell.gp_x) + abs (p.y.(c) - cl.Cell.gp_y)

let cell_rect design p c =
  let cl = Design.cell design c in
  let d = p.die.(c) in
  let w = Cell.width_on cl d in
  let h = (Design.die design d).Die.row_height in
  Rect.make ~x:p.x.(c) ~y:p.y.(c) ~w ~h
