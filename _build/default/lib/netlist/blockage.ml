type t = {
  id : int;
  name : string;
  die : int;
  rect : Tdf_geometry.Rect.t;
}

let make ~id ?name ~die ~rect () =
  let name = match name with Some n -> n | None -> "m" ^ string_of_int id in
  { id; name; die; rect }
