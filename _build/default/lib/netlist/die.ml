module Rect = Tdf_geometry.Rect

type t = {
  index : int;
  outline : Rect.t;
  row_height : int;
  site_width : int;
  max_util : float;
}

let make ~index ~outline ~row_height ?(site_width = 1) ?(max_util = 1.0) () =
  assert (row_height > 0 && site_width > 0);
  assert (max_util > 0.0 && max_util <= 1.0);
  { index; outline; row_height; site_width; max_util }

let num_rows d = d.outline.Rect.h / d.row_height

let row_y d r = d.outline.Rect.y + (r * d.row_height)

let clamp_row d r = max 0 (min (num_rows d - 1) r)

let row_of_y d y =
  let r = (y - d.outline.Rect.y) / d.row_height in
  clamp_row d r

let nearest_row d y =
  let rel = y - d.outline.Rect.y in
  let r = int_of_float (Float.round (float_of_int rel /. float_of_int d.row_height)) in
  clamp_row d r
