lib/netlist/cell.mli:
