lib/netlist/design.mli: Blockage Cell Die Net
