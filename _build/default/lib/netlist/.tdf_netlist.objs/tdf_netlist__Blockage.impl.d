lib/netlist/blockage.ml: Tdf_geometry
