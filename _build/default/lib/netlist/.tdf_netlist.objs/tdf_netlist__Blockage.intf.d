lib/netlist/blockage.mli: Tdf_geometry
