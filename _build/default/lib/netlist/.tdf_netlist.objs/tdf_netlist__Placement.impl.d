lib/netlist/placement.ml: Array Cell Design Die Tdf_geometry
