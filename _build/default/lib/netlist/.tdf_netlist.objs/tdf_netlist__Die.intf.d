lib/netlist/die.mli: Tdf_geometry
