lib/netlist/net.mli:
