lib/netlist/cell.ml: Array Float
