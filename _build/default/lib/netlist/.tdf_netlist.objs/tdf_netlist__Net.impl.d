lib/netlist/net.ml: Array
