lib/netlist/die.ml: Float Tdf_geometry
