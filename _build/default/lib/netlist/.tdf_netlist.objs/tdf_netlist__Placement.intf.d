lib/netlist/placement.mli: Design Tdf_geometry
