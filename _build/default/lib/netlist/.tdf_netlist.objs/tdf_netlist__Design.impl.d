lib/netlist/design.ml: Array Blockage Cell Die Format List Net Tdf_geometry
