lib/bonding/terminal.mli: Tdf_netlist
