lib/bonding/terminal.ml: Array Format Hashtbl List Printf Tdf_flow Tdf_geometry Tdf_netlist
