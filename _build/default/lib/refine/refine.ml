module Interval = Tdf_geometry.Interval
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

type report = {
  hpwl_before : float;
  hpwl_after : float;
  slides : int;
  swaps : int;
  iterations : int;
}

let pin_center design (p : Placement.t) c =
  let cell = Design.cell design c in
  let d = p.Placement.die.(c) in
  let w = Cell.width_on cell d in
  let h = (Design.die design d).Die.row_height in
  ( float_of_int p.Placement.x.(c) +. (float_of_int w /. 2.),
    float_of_int p.Placement.y.(c) +. (float_of_int h /. 2.) )

let net_hpwl design p (n : Net.t) =
  let min_x = ref infinity and max_x = ref neg_infinity in
  let min_y = ref infinity and max_y = ref neg_infinity in
  Array.iter
    (fun pin ->
      let x, y = pin_center design p pin in
      if x < !min_x then min_x := x;
      if x > !max_x then max_x := x;
      if y < !min_y then min_y := y;
      if y > !max_y then max_y := y)
    n.Net.pins;
  !max_x -. !min_x +. (!max_y -. !min_y)

let total_hpwl design p =
  Array.fold_left (fun acc n -> acc +. net_hpwl design p n) 0. design.Design.nets

(* Per-cell net incidence. *)
let build_incidence design =
  let nets_of = Array.make (Design.n_cells design) [] in
  Array.iter
    (fun (n : Net.t) ->
      Array.iter (fun pin -> nets_of.(pin) <- n.Net.id :: nets_of.(pin)) n.Net.pins)
    design.Design.nets;
  nets_of

let affected_hpwl design p nets_of cells =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      List.iter (fun n -> Hashtbl.replace seen n ()) nets_of.(c))
    cells;
  Hashtbl.fold
    (fun n () acc -> acc +. net_hpwl design p design.Design.nets.(n))
    seen 0.

(* Median of the other pins of a cell's nets: the L1-optimal position. *)
let desired_center design p nets_of c =
  let xs = ref [] and ys = ref [] in
  List.iter
    (fun n ->
      Array.iter
        (fun pin ->
          if pin <> c then begin
            let x, y = pin_center design p pin in
            xs := x :: !xs;
            ys := y :: !ys
          end)
        design.Design.nets.(n).Net.pins)
    nets_of.(c);
  match !xs with
  | [] -> None
  | _ ->
    let median l =
      let a = Array.of_list l in
      Array.sort compare a;
      a.(Array.length a / 2)
    in
    Some (median !xs, median !ys)

(* Rows: per (die, row) the cells sorted by x. *)
let build_rows design p =
  let rows = Hashtbl.create 256 in
  for c = 0 to Design.n_cells design - 1 do
    let d = p.Placement.die.(c) in
    let die = Design.die design d in
    let row = Die.row_of_y die p.Placement.y.(c) in
    let key = (d, row) in
    let prev = try Hashtbl.find rows key with Not_found -> [] in
    Hashtbl.replace rows key (c :: prev)
  done;
  Hashtbl.fold
    (fun key cells acc ->
      let arr = Array.of_list cells in
      Array.sort (fun a b -> compare p.Placement.x.(a) p.Placement.x.(b)) arr;
      (key, arr) :: acc)
    rows []

let segments cache design die row =
  match Hashtbl.find_opt cache (die, row) with
  | Some s -> s
  | None ->
    let s = Tdf_grid.Grid.segments_of_row design die row in
    Hashtbl.replace cache (die, row) s;
    s

let align_down ~site ~anchor x =
  if site <= 1 then x
  else begin
    let d = x - anchor in
    anchor + if d >= 0 then d / site * site else -((-d + site - 1) / site * site)
  end

(* One slide pass: move each cell within its free gap toward its desired
   position; accept only strict HPWL improvement. *)
let slide_pass seg_cache design p nets_of rows =
  let accepted = ref 0 in
  List.iter
    (fun ((d, row), cells) ->
      let die = Design.die design d in
      let n = Array.length cells in
      for i = 0 to n - 1 do
        let c = cells.(i) in
        match desired_center design p nets_of c with
        | None -> ()
        | Some (dx, _) ->
          let w = Cell.width_on (Design.cell design c) d in
          let x0 = p.Placement.x.(c) in
          (* gap bounds from row neighbours and the containing segment *)
          let prev_end =
            if i = 0 then min_int
            else p.Placement.x.(cells.(i - 1)) + Cell.width_on (Design.cell design cells.(i - 1)) d
          in
          let next_start =
            if i = n - 1 then max_int else p.Placement.x.(cells.(i + 1))
          in
          let seg =
            List.find_opt
              (fun (s : Interval.t) -> s.Interval.lo <= x0 && x0 + w <= s.Interval.hi)
              (segments seg_cache design d row)
          in
          (match seg with
          | None -> ()
          | Some s ->
            let lo = max prev_end s.Interval.lo in
            let hi = min next_start s.Interval.hi in
            if hi - lo >= w then begin
              let target = int_of_float (dx -. (float_of_int w /. 2.)) in
              let x1 = max lo (min (hi - w) target) in
              let x1 =
                align_down ~site:die.Die.site_width
                  ~anchor:die.Die.outline.Tdf_geometry.Rect.x x1
              in
              let x1 = if x1 < lo then x1 + die.Die.site_width else x1 in
              if x1 <> x0 && x1 >= lo && x1 + w <= hi then begin
                let before = affected_hpwl design p nets_of [ c ] in
                p.Placement.x.(c) <- x1;
                let after = affected_hpwl design p nets_of [ c ] in
                if after < before -. 1e-9 then incr accepted
                else p.Placement.x.(c) <- x0
              end
            end)
      done)
    rows;
  !accepted

(* Adjacent reordering: two row neighbours may exchange their order inside
   their combined span whatever their widths — the span and its outside
   gaps are untouched, so legality is preserved. *)
let reorder_pass seg_cache design p nets_of rows =
  let accepted = ref 0 in
  List.iter
    (fun ((d, row), cells) ->
      let die = Design.die design d in
      let n = Array.length cells in
      for i = 0 to n - 2 do
        let c = cells.(i) and cd = cells.(i + 1) in
        let wc = Cell.width_on (Design.cell design c) d in
        let wd = Cell.width_on (Design.cell design cd) d in
        let span_lo = p.Placement.x.(c) in
        let span_hi = p.Placement.x.(cd) + wd in
        (* both cells must stay inside one segment: row neighbours can sit
           on opposite sides of a macro *)
        let same_segment =
          List.exists
            (fun (s : Interval.t) ->
              s.Interval.lo <= span_lo && span_hi <= s.Interval.hi)
            (segments seg_cache design d row)
        in
        let new_xc =
          align_down ~site:die.Die.site_width
            ~anchor:die.Die.outline.Tdf_geometry.Rect.x (span_hi - wc)
        in
        if same_segment && new_xc >= span_lo + wd then begin
          let old_xc = p.Placement.x.(c) and old_xd = p.Placement.x.(cd) in
          let before = affected_hpwl design p nets_of [ c; cd ] in
          p.Placement.x.(cd) <- span_lo;
          p.Placement.x.(c) <- new_xc;
          let after = affected_hpwl design p nets_of [ c; cd ] in
          if after < before -. 1e-9 then begin
            incr accepted;
            cells.(i) <- cd;
            cells.(i + 1) <- c
          end
          else begin
            p.Placement.x.(c) <- old_xc;
            p.Placement.x.(cd) <- old_xd
          end
        end
      done)
    rows;
  !accepted

(* One swap pass: exchange interchangeable cells when it reduces HPWL. *)
let swap_pass design p nets_of rows ~swap_window =
  let accepted = ref 0 in
  let row_index = Hashtbl.create 64 in
  List.iter (fun (key, cells) -> Hashtbl.replace row_index key cells) rows;
  let try_swap c d =
    if c <> d then begin
      let cc = Design.cell design c and cd = Design.cell design d in
      let die_c = p.Placement.die.(c) and die_d = p.Placement.die.(d) in
      (* interchangeable footprints only *)
      if
        Cell.width_on cc die_d = Cell.width_on cd die_d
        && Cell.width_on cd die_c = Cell.width_on cc die_c
      then begin
        let before = affected_hpwl design p nets_of [ c; d ] in
        let swap () =
          let tx = p.Placement.x.(c) and ty = p.Placement.y.(c) in
          let tdie = p.Placement.die.(c) in
          p.Placement.x.(c) <- p.Placement.x.(d);
          p.Placement.y.(c) <- p.Placement.y.(d);
          p.Placement.die.(c) <- p.Placement.die.(d);
          p.Placement.x.(d) <- tx;
          p.Placement.y.(d) <- ty;
          p.Placement.die.(d) <- tdie
        in
        swap ();
        let after = affected_hpwl design p nets_of [ c; d ] in
        if after < before -. 1e-9 then begin
          incr accepted;
          true
        end
        else begin
          swap ();
          false
        end
      end
      else false
    end
    else false
  in
  for c = 0 to Design.n_cells design - 1 do
    match desired_center design p nets_of c with
    | None -> ()
    | Some (dx, dy) ->
      (* candidates: cells near the desired point on either die *)
      let nd = Design.n_dies design in
      let found = ref false in
      for d = 0 to nd - 1 do
        if not !found then begin
          let die = Design.die design d in
          let row = Die.nearest_row die (int_of_float dy) in
          match Hashtbl.find_opt row_index (d, row) with
          | None -> ()
          | Some cells ->
            (* binary search the first cell right of dx, scan a window *)
            let n = Array.length cells in
            let rec bisect lo hi =
              if lo >= hi then lo
              else begin
                let mid = (lo + hi) / 2 in
                if float_of_int p.Placement.x.(cells.(mid)) < dx then
                  bisect (mid + 1) hi
                else bisect lo mid
              end
            in
            let center = bisect 0 n in
            let lo = max 0 (center - (swap_window / 2)) in
            let hi = min (n - 1) (center + (swap_window / 2)) in
            let j = ref lo in
            while (not !found) && !j <= hi do
              (* keep the row arrays consistent: swapping equal-width cells
                 exchanges their slots, so swap the ids in the arrays too *)
              let cand = cells.(!j) in
              if try_swap c cand then begin
                found := true;
                (* fix both row arrays: replace c by cand and vice versa *)
                let fix arr a b =
                  Array.iteri (fun k v -> if v = a then arr.(k) <- b) arr
                in
                (match
                   Hashtbl.fold
                     (fun key cells acc ->
                       if Array.exists (( = ) c) cells && key <> (d, row) then
                         Some (key, cells)
                       else acc)
                     row_index None
                 with
                | Some (_, home_cells) ->
                  fix home_cells c cand;
                  fix cells cand c
                | None ->
                  (* same row swap: exchange in place *)
                  let pos_c = ref (-1) and pos_d = ref (-1) in
                  Array.iteri
                    (fun k v ->
                      if v = c then pos_c := k;
                      if v = cand then pos_d := k)
                    cells;
                  if !pos_c >= 0 && !pos_d >= 0 then begin
                    cells.(!pos_c) <- cand;
                    cells.(!pos_d) <- c
                  end)
              end;
              incr j
            done
        end
      done
  done;
  !accepted

let run ?(iterations = 3) ?(swap_window = 8) design p =
  let nets_of = build_incidence design in
  let seg_cache = Hashtbl.create 64 in
  let hpwl_before = total_hpwl design p in
  let slides = ref 0 and swaps = ref 0 and iters = ref 0 in
  let continue = ref true in
  while !continue && !iters < iterations do
    incr iters;
    let rows = build_rows design p in
    let s1 = slide_pass seg_cache design p nets_of rows in
    (* rebuild rows: slides changed x order bounds are intact, but swap
       bookkeeping is simpler on fresh arrays *)
    let rows = build_rows design p in
    let s2 = reorder_pass seg_cache design p nets_of rows in
    let s3 = swap_pass design p nets_of rows ~swap_window in
    slides := !slides + s1;
    swaps := !swaps + s2 + s3;
    if s1 + s2 + s3 = 0 then continue := false
  done;
  {
    hpwl_before;
    hpwl_after = total_hpwl design p;
    slides = !slides;
    swaps = !swaps;
    iterations = !iters;
  }
