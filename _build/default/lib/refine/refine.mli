(** Legality-preserving detailed-placement refinement.

    After legalization the placement is legal but nets may be stretched
    (Fig. 7 measures exactly this).  This pass recovers wirelength with
    two strictly legal move types, accepted only when they reduce HPWL:

    - {e slide}: move a cell within the free gap between its row
      neighbours toward the median of its nets;
    - {e reorder}: exchange two row neighbours inside their combined span
      (legal for any widths);
    - {e swap}: exchange two distant cells whose footprints are
      interchangeable at each other's positions (equal widths on the
      respective dies).

    Deterministic; every accepted move strictly decreases total HPWL, so
    the pass terminates. *)

type report = {
  hpwl_before : float;
  hpwl_after : float;
  slides : int;  (** accepted slide moves *)
  swaps : int;  (** accepted reorder + swap moves *)
  iterations : int;  (** passes actually run (stops early when converged) *)
}

val run :
  ?iterations:int ->
  ?swap_window:int ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  report
(** [run design p] refines [p] in place.  [iterations] (default 3) bounds
    the number of full passes; [swap_window] (default 8) bounds the swap
    candidates examined per cell.  The placement must be legal on entry and
    is legal on exit. *)
