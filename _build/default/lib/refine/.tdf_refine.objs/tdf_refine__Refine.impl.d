lib/refine/refine.ml: Array Hashtbl List Tdf_geometry Tdf_grid Tdf_netlist
