lib/refine/refine.mli: Tdf_netlist
