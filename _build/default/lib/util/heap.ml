type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable size : int }

let create () = { data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h e =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nd = Array.make ncap e in
    Array.blit h.data 0 nd 0 h.size;
    h.data <- nd
  end

let rec sift_up d i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if d.(p).key > d.(i).key then begin
      let tmp = d.(p) in
      d.(p) <- d.(i);
      d.(i) <- tmp;
      sift_up d p
    end
  end

let rec sift_down d size i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < size && d.(l).key < d.(i).key then l else i in
  let m = if r < size && d.(r).key < d.(m).key then r else m in
  if m <> i then begin
    let tmp = d.(m) in
    d.(m) <- d.(i);
    d.(i) <- tmp;
    sift_down d size m
  end

let add h ~key value =
  let e = { key; value } in
  grow h e;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h.data (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    if h.size > 0 then sift_down h.data h.size 0;
    Some (top.key, top.value)
  end

let pop_exn h =
  match pop h with
  | Some kv -> kv
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let peek h = if h.size = 0 then None else Some (h.data.(0).key, h.data.(0).value)

let clear h = h.size <- 0
