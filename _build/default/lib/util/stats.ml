type summary = {
  count : int;
  mean : float;
  max : float;
  min : float;
  stddev : float;
  total : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { count = 0; mean = 0.; max = 0.; min = 0.; stddev = 0.; total = 0. }
  else begin
    let total = Array.fold_left ( +. ) 0. xs in
    let mean = total /. float_of_int n in
    let mx = Array.fold_left Float.max neg_infinity xs in
    let mn = Array.fold_left Float.min infinity xs in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
      /. float_of_int n
    in
    { count = n; mean; max = mx; min = mn; stddev = sqrt var; total }
  end

let mean xs = (summarize xs).mean

let max_value xs = if Array.length xs = 0 then 0. else (summarize xs).max

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let geomean xs =
  let n = Array.length xs in
  if n = 0 || Array.exists (fun x -> x <= 0.) xs then 0.
  else exp (Array.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int n)
