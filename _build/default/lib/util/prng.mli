(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the project flows through this module so that every
    generated benchmark and every experiment is bit-reproducible.  The
    generator is the SplitMix64 mixer of Steele, Lea and Flood, which has a
    full 2^64 period and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val of_string : string -> t
(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to
    derive one independent stream per benchmark case name. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box–Muller. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
