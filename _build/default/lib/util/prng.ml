type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = Int64.of_int seed }

let fnv1a s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = { state = fnv1a s }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t x =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. u /. 9007199254740992.0 (* 2^53 *)

let gaussian t ~mean ~stddev =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
