(** Wall-clock timing for the RT columns of Tables III and IV. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with elapsed seconds. *)
