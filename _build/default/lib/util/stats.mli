(** Summary statistics over float samples. *)

type summary = {
  count : int;
  mean : float;
  max : float;
  min : float;
  stddev : float;
  total : float;
}

val summarize : float array -> summary
(** Summary of a sample array; the empty array yields all-zero fields. *)

val mean : float array -> float

val max_value : float array -> float
(** 0 on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    0 on the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive samples; 0 if any sample is non-positive or
    the array is empty.  Used for paper-style normalized averages. *)
