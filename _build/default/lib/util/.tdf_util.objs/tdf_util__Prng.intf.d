lib/util/prng.mli:
