lib/util/heap.mli:
