lib/util/stats.mli:
