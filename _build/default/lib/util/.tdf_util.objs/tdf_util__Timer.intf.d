lib/util/timer.mli:
