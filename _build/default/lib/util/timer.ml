let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)
