(** SVG rendering of one die of a placement — the Fig. 8 visualization.

    Macros are drawn gray, cells as outlined boxes, and a line connects
    each cell to its initial (global-placement) position; cells that
    arrived from another die are highlighted (the paper's blue cells). *)

val render_die :
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  die:int ->
  ?title:string ->
  unit ->
  string
(** SVG document as a string. *)

val save_die :
  string ->
  Tdf_netlist.Design.t ->
  Tdf_netlist.Placement.t ->
  die:int ->
  ?title:string ->
  unit ->
  unit
(** Write the SVG to a file. *)
