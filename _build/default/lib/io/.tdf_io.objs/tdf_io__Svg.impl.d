lib/io/svg.ml: Array Buffer Printf Tdf_geometry Tdf_netlist
