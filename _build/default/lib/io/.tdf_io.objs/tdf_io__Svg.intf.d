lib/io/svg.mli: Tdf_netlist
