lib/io/contest.mli: Format Tdf_netlist
