lib/io/contest.ml: Array Float Format Hashtbl List Printf String Tdf_geometry Tdf_netlist
