lib/io/text.ml: Array Format List String Tdf_geometry Tdf_netlist
