lib/io/text.mli: Format Tdf_netlist
