module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

let render_die design p ~die ?(title = "") () =
  let d = Design.die design die in
  let o = d.Die.outline in
  let margin = 12. in
  let view = 960. in
  let scale = view /. float_of_int (max o.Rect.w o.Rect.h) in
  let px x = margin +. (float_of_int (x - o.Rect.x) *. scale) in
  (* SVG y grows downward; flip so row 0 is at the bottom as in the paper. *)
  let py y = margin +. ((float_of_int o.Rect.h -. float_of_int (y - o.Rect.y)) *. scale) in
  let buf = Buffer.create 65536 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let width = (2. *. margin) +. (float_of_int o.Rect.w *. scale) in
  let height = (2. *. margin) +. (float_of_int o.Rect.h *. scale) +. 20. in
  out "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"
    width height width height;
  out "<rect x=\"%f\" y=\"%f\" width=\"%f\" height=\"%f\" fill=\"white\" stroke=\"black\" stroke-width=\"1\"/>\n"
    (px o.Rect.x) (py (o.Rect.y + o.Rect.h))
    (float_of_int o.Rect.w *. scale)
    (float_of_int o.Rect.h *. scale);
  if title <> "" then
    out "<text x=\"%f\" y=\"%f\" font-size=\"14\" font-family=\"sans-serif\">%s</text>\n"
      margin (height -. 6.) title;
  Array.iter
    (fun (m : Blockage.t) ->
      if m.Blockage.die = die then begin
        let r = m.Blockage.rect in
        out "<rect x=\"%f\" y=\"%f\" width=\"%f\" height=\"%f\" fill=\"#bbbbbb\" stroke=\"#888888\"/>\n"
          (px r.Rect.x)
          (py (r.Rect.y + r.Rect.h))
          (float_of_int r.Rect.w *. scale)
          (float_of_int r.Rect.h *. scale)
      end)
    design.Design.macros;
  let nd = Design.n_dies design in
  for c = 0 to Placement.n_cells p - 1 do
    if p.Placement.die.(c) = die then begin
      let cell = Design.cell design c in
      let w = Cell.width_on cell die in
      let h = d.Die.row_height in
      let from_other = Cell.nearest_die cell ~n_dies:nd <> die in
      let fill = if from_other then "#3b6fd4" else "#e8a0a0" in
      (* displacement line first, so cells draw on top *)
      out "<line x1=\"%f\" y1=\"%f\" x2=\"%f\" y2=\"%f\" stroke=\"black\" stroke-width=\"0.6\" opacity=\"0.7\"/>\n"
        (px (cell.Cell.gp_x + (w / 2)))
        (py (cell.Cell.gp_y + (h / 2)))
        (px (p.Placement.x.(c) + (w / 2)))
        (py (p.Placement.y.(c) + (h / 2)));
      out "<rect x=\"%f\" y=\"%f\" width=\"%f\" height=\"%f\" fill=\"%s\" stroke=\"#333333\" stroke-width=\"0.3\" opacity=\"0.9\"/>\n"
        (px p.Placement.x.(c))
        (py (p.Placement.y.(c) + h))
        (float_of_int w *. scale)
        (float_of_int h *. scale)
        fill
    end
  done;
  out "</svg>\n";
  Buffer.contents buf

let save_die path design p ~die ?title () =
  let oc = open_out path in
  output_string oc (render_die design p ~die ?title ());
  close_out oc
