lib/baselines/bonn.mli: Tdf_legalizer Tdf_netlist
