lib/baselines/rowspace.ml: Array List Tdf_geometry Tdf_grid Tdf_netlist
