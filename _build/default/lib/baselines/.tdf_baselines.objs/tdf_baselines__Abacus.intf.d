lib/baselines/abacus.mli: Tdf_netlist
