lib/baselines/tetris.ml: Array List Rowspace Tdf_geometry Tdf_netlist
