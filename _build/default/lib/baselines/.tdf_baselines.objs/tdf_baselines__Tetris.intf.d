lib/baselines/tetris.mli: Tdf_netlist
