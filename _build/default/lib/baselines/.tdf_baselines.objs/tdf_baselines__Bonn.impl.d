lib/baselines/bonn.ml: Tdf_legalizer
