lib/baselines/rowspace.mli: Tdf_netlist
