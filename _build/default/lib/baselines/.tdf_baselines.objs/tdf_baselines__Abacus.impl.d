lib/baselines/abacus.ml: Array List Rowspace Tdf_geometry Tdf_legalizer Tdf_netlist
