(** The Tetris legalizer [2]: cells sorted by x are placed greedily at the
    nearest free location, tracked with a left-to-right frontier per row
    segment.  Die assignment is fixed to the nearest die (the 2D-legalizer
    protocol of the paper's comparisons); a die is abandoned for the next
    one only when no segment can take the cell at all. *)

val legalize : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t
(** Legal placement; row-aligned, site-aligned, overlap-free whenever the
    frontiers leave enough room (always on the shipped benchmarks). *)
