(** The Abacus legalizer [4]: cells sorted by x are inserted one at a time;
    for each cell every nearby row segment is tried with a trial PlaceRow
    (quadratic-movement cluster placement, shared with the 3D-Flow §III-D
    step) and the cheapest row is committed.  Already-placed cells may
    shift within their row, but never leave it — the behaviour the paper
    contrasts with 3D-Flow. *)

val legalize : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t
