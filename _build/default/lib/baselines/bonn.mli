(** BonnPlaceLegal [10] emulation: the same flow engine as 3D-Flow, run per
    die in 2D with exhaustive Dijkstra path search and non-negative edge
    costs (see {!Tdf_legalizer.Config.bonn_emulation} and DESIGN.md §1 for
    the substitution argument). *)

val legalize : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t

val legalize_with_stats :
  Tdf_netlist.Design.t -> Tdf_netlist.Placement.t * Tdf_legalizer.Flow3d.stats
