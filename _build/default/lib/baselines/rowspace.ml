module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Interval = Tdf_geometry.Interval

type seg = { die : int; row : int; y : int; lo : int; hi : int }

type t = {
  design : Design.t;
  segs : seg array;
  by_die_row : int array array array;
}

let build design =
  let nd = Design.n_dies design in
  let segs = ref [] and count = ref 0 in
  let by_die_row =
    Array.init nd (fun d ->
        let die = Design.die design d in
        Array.init (Die.num_rows die) (fun r ->
            let y = Die.row_y die r in
            let ids =
              Tdf_grid.Grid.segments_of_row design d r
              |> List.filter_map (fun (iv : Interval.t) ->
                     if Interval.length iv <= 0 then None
                     else begin
                       let id = !count in
                       incr count;
                       segs :=
                         { die = d; row = r; y; lo = iv.Interval.lo; hi = iv.Interval.hi }
                         :: !segs;
                       Some id
                     end)
            in
            Array.of_list ids))
  in
  { design; segs = Array.of_list (List.rev !segs); by_die_row }

let iter_rows_outward t ~die ~y ~stop f =
  let d = Design.die t.design die in
  let nrows = Array.length t.by_die_row.(die) in
  if nrows > 0 then begin
    let r0 = Die.nearest_row d y in
    let row_dist r = abs (Die.row_y d r - y) in
    let rec expand k =
      let lo = r0 - k and hi = r0 + k in
      let lo_ok = lo >= 0 and hi_ok = hi < nrows && k > 0 in
      if lo_ok || hi_ok then begin
        let min_d =
          min
            (if lo_ok then row_dist lo else max_int)
            (if hi_ok then row_dist hi else max_int)
        in
        if not (stop min_d) then begin
          if lo_ok then Array.iter f t.by_die_row.(die).(lo);
          if hi_ok then Array.iter f t.by_die_row.(die).(hi);
          expand (k + 1)
        end
      end
    in
    expand 0
  end
