(** Row-segment geometry shared by the greedy baselines: per die, each
    placement row split into segments around macro blockages. *)

type seg = {
  die : int;
  row : int;
  y : int;  (** row bottom edge *)
  lo : int;
  hi : int;  (** x extent, half open *)
}

type t = {
  design : Tdf_netlist.Design.t;
  segs : seg array;
  by_die_row : int array array array;  (** die → row → seg indices (x order) *)
}

val build : Tdf_netlist.Design.t -> t

val iter_rows_outward :
  t -> die:int -> y:int -> stop:(int -> bool) -> (int -> unit) -> unit
(** [iter_rows_outward t ~die ~y ~stop f] calls [f seg_index] for segments
    of rows in increasing distance from [y]; stops expanding once
    [stop row_y_distance] is true for both directions (cost-bound
    pruning). *)
