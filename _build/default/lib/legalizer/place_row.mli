(** Abacus PlaceRow (§III-D, Spindler et al. [4]): given the cells assigned
    to one row segment, find overlap-free x positions minimizing the
    width-weighted quadratic movement from desired positions, in linear
    time via cluster merging.

    Also used standalone by the Abacus baseline legalizer. *)

type placed = { pl_cell : int; pl_x : int }

val place_segment :
  ?weight:(int -> float) ->
  site:int ->
  anchor:int ->
  lo:int ->
  hi:int ->
  (int * int * int) array ->
  placed list
(** [place_segment ~site ~anchor ~lo ~hi cells] places [cells] — triples
    [(cell id, desired x, width)] — inside [\[lo, hi)].  Cluster weights are
    [width × weight id] ([weight] defaults to 1; timing-critical cells move
    less).  Legal x positions
    are congruent to [anchor] modulo [site].  Cells are ordered by desired
    x (ties by id) and never reordered, as in Abacus.  If the total width
    exceeds the segment, the excess overlaps at the boundary (the caller's
    flow legalization prevents this).

    Returns one entry per input cell. *)

val cost :
  (int * int * int) array -> placed list -> float
(** Width-weighted quadratic movement Σ w·(x − x')² of a result; used by
    the Abacus baseline to score trial row insertions. *)
