(** The 3D-Flow legalizer (Algorithm 2).

    Pipeline: build the bin grid and 3D grid graph; assign cells to nearest
    bins; resolve overflowed bins in descending supply order by augmenting
    flow along the cheapest path (Alg. 1); legalize each row segment with
    Abacus PlaceRow; then run the cycle-canceling post-optimization on a
    finer grid.

    The Bonn baseline and the w/o-D2D ablation run through the same entry
    point with their {!Config} presets. *)

type stats = {
  augmentations : int;  (** augmenting paths realized *)
  expansions : int;  (** total priority-queue pops across searches *)
  d2d_cells : int;  (** cells whose final die differs from the nearest-die
                        assignment of the global placement (#Move, Table V) *)
  failed_supplies : int;  (** supply bins given up on *)
  reliefs : int;  (** direct-relocation fallbacks taken on search dead-ends *)
  residual_overflow : float;  (** Σ sup(v) left after the flow phase *)
  post_opt_rounds : int;  (** accepted post-optimization rounds *)
}

type result = {
  placement : Tdf_netlist.Placement.t;
  stats : stats;
}

val legalize : ?cfg:Config.t -> Tdf_netlist.Design.t -> result
(** Legalize from the design's global placement (nearest-die initial
    assignment). *)

val legalize_from :
  ?cfg:Config.t -> Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> result
(** Legalize from an arbitrary starting placement — the incremental mode
    used by the post-optimization itself and by ECO-style flows
    ([examples/eco_incremental.exe]).  Displacement is still measured
    against the design's initial positions. *)

val flow_bin_width : Tdf_netlist.Design.t -> factor:float -> int
(** w_v = factor · w̄_c (§III-F), at least 1. *)
