module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die
module Placement = Tdf_netlist.Placement

let max_displacement design p =
  let n = Placement.n_cells p in
  let m = ref 0 in
  for c = 0 to n - 1 do
    m := max !m (Placement.displacement design p c)
  done;
  !m

let select_victims design p =
  let d_max = max_displacement design p in
  let n = Placement.n_cells p in
  let victims = ref [] in
  for c = n - 1 downto 0 do
    let h_r = (Design.die design p.Placement.die.(c)).Die.row_height in
    let threshold = max (5 * h_r) (d_max / 2) in
    if Placement.displacement design p c > threshold then victims := c :: !victims
  done;
  !victims

let midpoint_target design p c =
  let cell = Design.cell design c in
  ( (p.Placement.x.(c) + cell.Tdf_netlist.Cell.gp_x) / 2,
    (p.Placement.y.(c) + cell.Tdf_netlist.Cell.gp_y) / 2 )
