type placed = { pl_cell : int; pl_x : int }

type cluster = {
  mutable e : float;  (* total weight *)
  mutable q : float;  (* Σ e_i (x'_i − offset_i) *)
  mutable w : int;  (* total width *)
  mutable members : (int * int * int) list;  (* reversed *)
}

let align ~site ~anchor ~lo ~hi x =
  (* Snap x to the site grid (positions ≡ anchor mod site) within [lo, hi]. *)
  if site <= 1 then max lo (min hi x)
  else begin
    let snap v =
      let d = v - anchor in
      let d = if d >= 0 then d / site * site else -((-d + site - 1) / site * site) in
      anchor + d
    in
    let lo' = if snap lo < lo then snap lo + site else snap lo in
    let hi' = snap hi in
    if hi' < lo' then max lo (min hi x)
    else begin
      let x = max lo' (min hi' x) in
      let down = max lo' (snap x) in
      let up = if down + site <= hi' then down + site else down in
      if x - down <= up - x then down else up
    end
  end

let optimal_x cluster ~site ~anchor ~lo ~hi =
  let raw = int_of_float (Float.round (cluster.q /. cluster.e)) in
  align ~site ~anchor ~lo ~hi:(max lo (hi - cluster.w)) raw

let place_segment ?(weight = fun _ -> 1.0) ~site ~anchor ~lo ~hi cells =
  let sorted = Array.copy cells in
  Array.sort
    (fun (id1, x1, _) (id2, x2, _) ->
      if x1 <> x2 then compare x1 x2 else compare id1 id2)
    sorted;
  (* Stack of placed clusters (leftmost at the bottom); each entry carries
     its current position.  A new cell starts its own cluster, then clusters
     are merged while overlapping their predecessor (Abacus "Collapse"). *)
  let stack = ref [] in
  let rec merge_down () =
    match !stack with
    | (c2, x2) :: (c1, x1) :: rest when x1 + c1.w > x2 ->
      (* merge c2 into c1: offsets of c2's members shift by c1.w *)
      c1.q <- c1.q +. c2.q -. (c2.e *. float_of_int c1.w);
      c1.e <- c1.e +. c2.e;
      c1.w <- c1.w + c2.w;
      c1.members <- c2.members @ c1.members;
      let x1' = optimal_x c1 ~site ~anchor ~lo ~hi in
      stack := (c1, x1') :: rest;
      merge_down ()
    | _ -> ()
  in
  Array.iter
    (fun ((id, x', w) as cell) ->
      let e_c = float_of_int (max 1 w) *. weight id in
      let c = { e = e_c; q = e_c *. float_of_int x'; w; members = [ cell ] } in
      let x = optimal_x c ~site ~anchor ~lo ~hi in
      stack := (c, x) :: !stack;
      merge_down ())
    sorted;
  (* Emit member positions; a final left-to-right sweep repairs ±1 overlaps
     that site snapping may introduce. *)
  let clusters = List.rev !stack in
  let result = ref [] in
  let cursor = ref min_int in
  List.iter
    (fun (c, x) ->
      let x = if x < !cursor then !cursor else x in
      let pos = ref x in
      List.iter
        (fun (cell, _, w) ->
          result := { pl_cell = cell; pl_x = !pos } :: !result;
          pos := !pos + w)
        (List.rev c.members);
      cursor := !pos)
    clusters;
  List.rev !result

let cost cells placed =
  let desired = Hashtbl.create (max 1 (Array.length cells)) in
  Array.iter (fun (id, x', w) -> Hashtbl.replace desired id (x', w)) cells;
  List.fold_left
    (fun acc p ->
      match Hashtbl.find_opt desired p.pl_cell with
      | Some (x', w) ->
        let d = float_of_int (p.pl_x - x') in
        acc +. (float_of_int (max 1 w) *. d *. d)
      | None -> acc)
    0. placed
