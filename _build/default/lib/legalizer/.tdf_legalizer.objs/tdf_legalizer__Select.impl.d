lib/legalizer/select.ml: Array Config Float Grid List Tdf_netlist
