lib/legalizer/flow3d.ml: Array Augment Config Float Grid Hashtbl List Mover Place_row Post_opt Relief Tdf_geometry Tdf_netlist Tdf_util
