lib/legalizer/post_opt.mli: Tdf_netlist
