lib/legalizer/mover.ml: Array Augment Float Grid List Select
