lib/legalizer/grid.ml: Tdf_grid
