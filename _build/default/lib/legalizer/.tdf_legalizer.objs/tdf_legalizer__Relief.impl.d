lib/legalizer/relief.ml: Array Config Grid List Tdf_netlist
