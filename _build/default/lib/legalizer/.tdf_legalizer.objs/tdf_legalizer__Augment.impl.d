lib/legalizer/augment.ml: Array Config Float Grid Select Tdf_netlist Tdf_util
