lib/legalizer/post_opt.ml: Array Tdf_netlist
