lib/legalizer/place_row.mli:
