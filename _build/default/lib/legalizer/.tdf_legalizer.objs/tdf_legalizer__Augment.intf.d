lib/legalizer/augment.mli: Config Grid
