lib/legalizer/mover.mli: Augment Config Grid
