lib/legalizer/flow3d.mli: Config Tdf_netlist
