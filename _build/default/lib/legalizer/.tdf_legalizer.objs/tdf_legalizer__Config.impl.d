lib/legalizer/config.ml:
