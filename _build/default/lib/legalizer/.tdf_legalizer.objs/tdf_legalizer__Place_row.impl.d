lib/legalizer/place_row.ml: Array Float Hashtbl List
