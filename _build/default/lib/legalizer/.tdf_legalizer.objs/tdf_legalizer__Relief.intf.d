lib/legalizer/relief.mli: Config Grid
