lib/legalizer/config.mli:
