lib/legalizer/select.mli: Config Grid
