(* Local alias so that the legalizer modules (and their interfaces) can
   refer to the grid substrate as [Grid]. *)
include Tdf_grid.Grid
