(** Cycle-canceling post-optimization (§III-E).

    Cells whose displacement exceeds [max(5·h_r, D_max/2)] are repositioned
    at the midpoint between their current and initial positions — creating,
    in flow terms, a negative cycle toward the initial placement — and the
    flow legalization is re-run incrementally on a finer grid.  The driver
    ({!Flow3d}) accepts the round only if the maximum displacement
    improves. *)

val max_displacement : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> int
(** Largest Manhattan displacement over all cells (D_max). *)

val select_victims : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> int list
(** Cells with [D_c > max(5·h_r(die_c), D_max/2)]. *)

val midpoint_target : Tdf_netlist.Design.t -> Tdf_netlist.Placement.t -> int -> int * int
(** [(x_c + x'_c)/2, (y_c + y'_c)/2] for a victim cell. *)
