module P = Tdf_legalizer.Place_row

let place ?(site = 1) ?(anchor = 0) ?(lo = 0) ?(hi = 100) cells =
  P.place_segment ~site ~anchor ~lo ~hi (Array.of_list cells)

let positions placed = List.map (fun p -> (p.P.pl_cell, p.P.pl_x)) placed

let check_no_overlap cells placed =
  let widths = Hashtbl.create 8 in
  List.iter (fun (id, _, w) -> Hashtbl.replace widths id w) cells;
  let sorted =
    List.sort (fun a b -> compare a.P.pl_x b.P.pl_x) placed
  in
  let rec go = function
    | a :: (b :: _ as rest) ->
      let wa = Hashtbl.find widths a.P.pl_cell in
      Alcotest.(check bool)
        (Printf.sprintf "no overlap between %d and %d" a.P.pl_cell b.P.pl_cell)
        true
        (a.P.pl_x + wa <= b.P.pl_x);
      go rest
    | [ _ ] | [] -> ()
  in
  go sorted

let test_single_cell_at_desired () =
  match place [ (0, 30, 5) ] with
  | [ p ] -> Alcotest.(check int) "at desired x" 30 p.P.pl_x
  | _ -> Alcotest.fail "one cell expected"

let test_single_cell_clamped () =
  (match place [ (0, -10, 5) ] with
  | [ p ] -> Alcotest.(check int) "clamped to lo" 0 p.P.pl_x
  | _ -> Alcotest.fail "one cell");
  match place [ (0, 200, 5) ] with
  | [ p ] -> Alcotest.(check int) "clamped to hi-w" 95 p.P.pl_x
  | _ -> Alcotest.fail "one cell"

let test_two_overlapping_cells_split () =
  let cells = [ (0, 50, 10); (1, 50, 10) ] in
  let placed = place cells in
  check_no_overlap cells placed;
  (* optimal quadratic split around 50: cluster at 45 *)
  match positions placed with
  | [ (0, x0); (1, x1) ] ->
    Alcotest.(check int) "first" 45 x0;
    Alcotest.(check int) "second" 55 x1
  | _ -> Alcotest.fail "bad result"

let test_order_preserved () =
  let cells = [ (0, 10, 8); (1, 12, 8); (2, 11, 8) ] in
  let placed = place cells in
  check_no_overlap cells placed;
  let x_of id = List.assoc id (positions placed) in
  Alcotest.(check bool) "0 before 2" true (x_of 0 < x_of 2);
  Alcotest.(check bool) "2 before 1" true (x_of 2 < x_of 1)

let test_full_segment_packs () =
  let cells = List.init 10 (fun i -> (i, 50, 10)) in
  let placed = place cells in
  check_no_overlap cells placed;
  let xs = List.map snd (positions placed) |> List.sort compare in
  Alcotest.(check (list int)) "packed 0..90"
    [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90 ]
    xs

let test_site_alignment () =
  (* widths must be multiples of the site for all members to stay aligned *)
  let cells = [ (0, 33, 8); (1, 34, 8) ] in
  let placed = place ~site:4 cells in
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "cell %d on site grid" p.P.pl_cell)
        0
        (p.P.pl_x mod 4))
    placed;
  check_no_overlap cells placed

let test_weighted_by_width () =
  (* A wide cell should move less than a narrow one fighting for the same
     spot: cluster optimum x minimizes w*(x-x')^2 sums. *)
  let cells = [ (0, 50, 30); (1, 50, 2) ] in
  let placed = place cells in
  let x_of id = List.assoc id (positions placed) in
  (* optimum: e0(x-50)^2 + e1(x+30-50)^2 -> x = (30*50 + 2*20)/32 = 48.1 *)
  Alcotest.(check int) "wide cell near desired" 48 (x_of 0);
  Alcotest.(check int) "narrow pushed right" 78 (x_of 1)

let test_cost_function () =
  let cells = [| (0, 10, 4) |] in
  let placed = [ { P.pl_cell = 0; P.pl_x = 13 } ] in
  Alcotest.(check (float 1e-9)) "w*(dx)^2" (4. *. 9.) (P.cost cells placed)

let prop_no_overlap_and_bounds =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 15)
        (map2 (fun x w -> (x, w)) (int_range (-20) 120) (int_range 1 8)))
  in
  QCheck.Test.make ~name:"place_segment: in bounds, no overlap, all placed"
    ~count:300 (QCheck.make gen)
    (fun cells ->
      let cells = List.mapi (fun i (x, w) -> (i, x, w)) cells in
      let total_w = List.fold_left (fun a (_, _, w) -> a + w) 0 cells in
      QCheck.assume (total_w <= 100);
      let placed = place cells in
      let widths = Hashtbl.create 8 in
      List.iter (fun (id, _, w) -> Hashtbl.replace widths id w) cells;
      List.length placed = List.length cells
      && List.for_all
           (fun p ->
             p.P.pl_x >= 0 && p.P.pl_x + Hashtbl.find widths p.P.pl_cell <= 100)
           placed
      &&
      let sorted = List.sort (fun a b -> compare a.P.pl_x b.P.pl_x) placed in
      let rec ok = function
        | a :: (b :: _ as rest) ->
          a.P.pl_x + Hashtbl.find widths a.P.pl_cell <= b.P.pl_x && ok rest
        | [ _ ] | [] -> true
      in
      ok sorted)

let prop_matches_brute_force_two_cells =
  let gen = QCheck.Gen.(quad (int_range 0 50) (int_range 0 50) (int_range 1 6) (int_range 1 6)) in
  QCheck.Test.make ~name:"place_segment optimal for two cells" ~count:200
    (QCheck.make gen)
    (fun (x0, x1, w0, w1) ->
      let cells = [ (0, x0, w0); (1, x1, w1) ] in
      let placed = place ~hi:60 cells in
      let cost = P.cost (Array.of_list cells) placed in
      (* brute force over order-preserving integer layouts (Abacus
         guarantees optimality only within the desired-x order) *)
      let keep_order a b = if x0 <= x1 then a + w0 <= b else b + w1 <= a in
      let best = ref infinity in
      for a = 0 to 60 - w0 do
        for b = 0 to 60 - w1 do
          if keep_order a b then begin
            let c =
              (float_of_int w0 *. ((float_of_int (a - x0)) ** 2.))
              +. (float_of_int w1 *. ((float_of_int (b - x1)) ** 2.))
            in
            if c < !best then best := c
          end
        done
      done;
      (* cluster placement is optimal among order-preserving layouts; allow
         equality-with-rounding slack of one site in each coordinate *)
      cost <= !best +. (2. *. float_of_int (w0 + w1)) +. 2.)

let suite =
  [
    Alcotest.test_case "single cell at desired" `Quick test_single_cell_at_desired;
    Alcotest.test_case "single cell clamped" `Quick test_single_cell_clamped;
    Alcotest.test_case "two overlapping split" `Quick test_two_overlapping_cells_split;
    Alcotest.test_case "order preserved" `Quick test_order_preserved;
    Alcotest.test_case "full segment packs" `Quick test_full_segment_packs;
    Alcotest.test_case "site alignment" `Quick test_site_alignment;
    Alcotest.test_case "width-weighted optimum" `Quick test_weighted_by_width;
    Alcotest.test_case "cost function" `Quick test_cost_function;
    QCheck_alcotest.to_alcotest prop_no_overlap_and_bounds;
    QCheck_alcotest.to_alcotest prop_matches_brute_force_two_cells;
  ]
