module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Net = Tdf_netlist.Net
module D = Tdf_metrics.Displacement
module H = Tdf_metrics.Hpwl
module Legality = Tdf_metrics.Legality

let design_with_nets () =
  let cells =
    [|
      Fixtures.cell ~id:0 ~w0:4 ~w1:4 ~x:0 ~y:0 ~z:0. ();
      Fixtures.cell ~id:1 ~w0:4 ~w1:4 ~x:20 ~y:10 ~z:0. ();
      Fixtures.cell ~id:2 ~w0:4 ~w1:4 ~x:40 ~y:20 ~z:0.9 ();
    |]
  in
  let nets = [| Net.make ~id:0 ~pins:[| 0; 1; 2 |] () |] in
  Design.make ~name:"nets" ~dies:(Fixtures.two_dies ()) ~cells ~nets ()

let test_displacement_summary () =
  let d = design_with_nets () in
  let p = Placement.initial d in
  p.Placement.x.(0) <- 5;
  (* dx=5 *)
  p.Placement.y.(1) <- 30;
  (* dy=20 *)
  let s = D.summary d p in
  (* normalized by row height 10: 0.5, 2.0, 0 *)
  Alcotest.(check (float 1e-9)) "avg" ((0.5 +. 2.0) /. 3.) s.D.avg_norm;
  Alcotest.(check (float 1e-9)) "max" 2.0 s.D.max_norm;
  Alcotest.(check int) "max raw" 20 s.D.max_raw;
  Alcotest.(check (float 1e-9)) "per-cell" 0.5 (D.per_cell d p 0)

let test_displacement_norm_per_die () =
  (* cell on die 1 with row height 20: same raw disp, half the norm *)
  let dies = Fixtures.two_dies ~row_height_top:20 () in
  let cells = [| Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0.9 () |] in
  let d = Design.make ~name:"h" ~dies ~cells () in
  let p = Placement.initial d in
  p.Placement.x.(0) <- 20;
  Alcotest.(check (float 1e-9)) "normalized by die-1 height" 1.0 (D.per_cell d p 0)

let test_hpwl_global () =
  let d = design_with_nets () in
  (* centers: (2,5), (22,15), (42,25) -> bbox 40 + 20 = 60 *)
  Alcotest.(check (float 1e-9)) "global hpwl" 60. (H.of_global d)

let test_hpwl_increase () =
  let d = design_with_nets () in
  let p = Placement.initial d in
  Alcotest.(check (float 1e-9)) "no move, no increase" 0. (H.increase_pct d p);
  p.Placement.x.(2) <- 60;
  (* bbox 60 + 20 = 80 -> +33.3% *)
  Alcotest.(check (float 1e-6)) "increase pct" (100. *. 20. /. 60.)
    (H.increase_pct d p)

let test_hpwl_no_nets () =
  let d = Fixtures.clustered () in
  let d = Design.make ~name:"nonets" ~dies:d.Design.dies ~cells:d.Design.cells () in
  Alcotest.(check (float 0.)) "0 when no nets" 0.
    (H.increase_pct d (Placement.initial d))

let legal_placement d =
  (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement

let test_legality_accepts_legal () =
  let d = Fixtures.with_macro () in
  let p = legal_placement d in
  Alcotest.(check int) "no violations" 0 (Legality.check d p).Legality.n_violations;
  Alcotest.(check bool) "is_legal" true (Legality.is_legal d p)

let test_legality_detects_overlap () =
  let d = Fixtures.clustered () in
  let p = legal_placement d in
  p.Placement.x.(1) <- p.Placement.x.(0);
  p.Placement.y.(1) <- p.Placement.y.(0);
  p.Placement.die.(1) <- p.Placement.die.(0);
  let rep = Legality.check d p in
  Alcotest.(check bool) "overlap found" true (rep.Legality.n_violations > 0);
  Alcotest.(check bool) "overlap area > 0" true (rep.Legality.overlap_area > 0)

let test_legality_detects_row_misalignment () =
  let d = Fixtures.clustered () in
  let p = legal_placement d in
  p.Placement.y.(0) <- p.Placement.y.(0) + 3;
  Alcotest.(check bool) "misalignment found" true
    ((Legality.check d p).Legality.n_violations > 0)

let test_legality_detects_outside () =
  let d = Fixtures.clustered () in
  let p = legal_placement d in
  p.Placement.x.(0) <- 99;
  (* width 6 escapes the 100-wide die *)
  Alcotest.(check bool) "outside found" true
    ((Legality.check d p).Legality.n_violations > 0)

let test_legality_detects_macro_overlap () =
  let d = Fixtures.with_macro () in
  let p = legal_placement d in
  (* macro on die 0 spans x 40-60, y 10-30 *)
  p.Placement.x.(0) <- 45;
  p.Placement.y.(0) <- 10;
  p.Placement.die.(0) <- 0;
  Alcotest.(check bool) "macro overlap found" true
    ((Legality.check d p).Legality.n_violations > 0)

let test_legality_detects_bad_die () =
  let d = Fixtures.clustered () in
  let p = legal_placement d in
  p.Placement.die.(0) <- 7;
  Alcotest.(check bool) "bad die found" true
    ((Legality.check d p).Legality.n_violations > 0)

let test_legality_site_misalignment () =
  let dies =
    [|
      Tdf_netlist.Die.make ~index:0
        ~outline:(Tdf_geometry.Rect.make ~x:0 ~y:0 ~w:100 ~h:40)
        ~row_height:10 ~site_width:4 ();
      Tdf_netlist.Die.make ~index:1
        ~outline:(Tdf_geometry.Rect.make ~x:0 ~y:0 ~w:100 ~h:40)
        ~row_height:10 ~site_width:4 ();
    |]
  in
  let cells = [| Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0. () |] in
  let d = Design.make ~name:"site" ~dies ~cells () in
  let p = Placement.initial d in
  p.Placement.x.(0) <- 6;
  (* not a multiple of 4 *)
  Alcotest.(check bool) "site misalignment found" true
    ((Legality.check d p).Legality.n_violations > 0);
  p.Placement.x.(0) <- 8;
  Alcotest.(check int) "aligned ok" 0 (Legality.check d p).Legality.n_violations

let suite =
  [
    Alcotest.test_case "displacement summary" `Quick test_displacement_summary;
    Alcotest.test_case "per-die normalization" `Quick test_displacement_norm_per_die;
    Alcotest.test_case "hpwl global" `Quick test_hpwl_global;
    Alcotest.test_case "hpwl increase" `Quick test_hpwl_increase;
    Alcotest.test_case "hpwl no nets" `Quick test_hpwl_no_nets;
    Alcotest.test_case "legality accepts legal" `Quick test_legality_accepts_legal;
    Alcotest.test_case "legality overlap" `Quick test_legality_detects_overlap;
    Alcotest.test_case "legality row misalignment" `Quick
      test_legality_detects_row_misalignment;
    Alcotest.test_case "legality outside" `Quick test_legality_detects_outside;
    Alcotest.test_case "legality macro overlap" `Quick
      test_legality_detects_macro_overlap;
    Alcotest.test_case "legality bad die" `Quick test_legality_detects_bad_die;
    Alcotest.test_case "legality site misalignment" `Quick
      test_legality_site_misalignment;
  ]
