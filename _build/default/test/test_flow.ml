module M = Tdf_flow.Mcmf

let test_single_edge () =
  let g = M.create 2 in
  let e = M.add_edge g ~src:0 ~dst:1 ~cap:5 ~cost:3 in
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 () in
  Alcotest.(check int) "flow" 5 flow;
  Alcotest.(check int) "cost" 15 cost;
  Alcotest.(check int) "edge flow" 5 (M.flow_on g e)

let test_two_paths_prefers_cheap () =
  (* 0->1->3 cost 2, 0->2->3 cost 10; caps 1 each; push 2 units *)
  let g = M.create 4 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:1 ~dst:3 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:5);
  ignore (M.add_edge g ~src:2 ~dst:3 ~cap:1 ~cost:5);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:3 () in
  Alcotest.(check int) "flow" 2 flow;
  Alcotest.(check int) "cost" 12 cost

let test_max_flow_limit () =
  let g = M.create 2 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:10 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:1 ~max_flow:4 () in
  Alcotest.(check int) "limited flow" 4 flow;
  Alcotest.(check int) "cost" 4 cost

let test_rerouting_via_residual () =
  (* Classic case where the second augmentation must push back on the
     first path's residual edge. *)
  let g = M.create 4 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  ignore (M.add_edge g ~src:0 ~dst:2 ~cap:1 ~cost:2);
  ignore (M.add_edge g ~src:1 ~dst:2 ~cap:1 ~cost:(-2));
  ignore (M.add_edge g ~src:1 ~dst:3 ~cap:1 ~cost:4);
  ignore (M.add_edge g ~src:2 ~dst:3 ~cap:2 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:3 () in
  Alcotest.(check int) "max flow 2" 2 flow;
  (* best: 0-1-2-3 (1-2+1=0) and 0-2-3 (2+1=3) => 3 *)
  Alcotest.(check int) "optimal cost" 3 cost

let test_negative_edge_costs () =
  let g = M.create 3 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:2 ~cost:(-5));
  ignore (M.add_edge g ~src:1 ~dst:2 ~cap:2 ~cost:3);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:2 () in
  Alcotest.(check int) "flow" 2 flow;
  Alcotest.(check int) "cost" (-4) cost

let test_disconnected () =
  let g = M.create 3 in
  ignore (M.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  let flow, cost = M.min_cost_flow g ~source:0 ~sink:2 () in
  Alcotest.(check int) "no flow" 0 flow;
  Alcotest.(check int) "no cost" 0 cost

(* Brute-force reference: enumerate all integral flows on tiny graphs by
   trying all combinations of per-edge flows and checking conservation. *)
let brute_force_min_cost n edges ~source ~sink =
  let ne = List.length edges in
  let best_for_flow = Hashtbl.create 16 in
  let edges = Array.of_list edges in
  let assignment = Array.make ne 0 in
  let rec enumerate i =
    if i = ne then begin
      let net = Array.make n 0 in
      let cost = ref 0 in
      Array.iteri
        (fun j f ->
          let src, dst, _, c = edges.(j) in
          net.(src) <- net.(src) - f;
          net.(dst) <- net.(dst) + f;
          cost := !cost + (f * c))
        assignment;
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> source && v <> sink && net.(v) <> 0 then ok := false
      done;
      if !ok && net.(sink) >= 0 then begin
        let f = net.(sink) in
        match Hashtbl.find_opt best_for_flow f with
        | Some c when c <= !cost -> ()
        | _ -> Hashtbl.replace best_for_flow f !cost
      end
    end
    else begin
      let _, _, cap, _ = edges.(i) in
      for f = 0 to cap do
        assignment.(i) <- f;
        enumerate (i + 1)
      done;
      assignment.(i) <- 0
    end
  in
  enumerate 0;
  let max_flow = Hashtbl.fold (fun f _ acc -> max f acc) best_for_flow 0 in
  (max_flow, Hashtbl.find best_for_flow max_flow)

let prop_matches_brute_force =
  let gen =
    QCheck.Gen.(
      let n = 4 in
      let edge =
        map3
          (fun s d (cap, cost) -> (s, d, cap, cost))
          (int_range 0 (n - 1))
          (int_range 0 (n - 1))
          (pair (int_range 1 2) (int_range 0 4))
      in
      list_size (int_range 1 5) edge)
  in
  QCheck.Test.make ~name:"mcmf matches brute force on tiny graphs" ~count:100
    (QCheck.make gen)
    (fun edges ->
      let edges = List.filter (fun (s, d, _, _) -> s <> d) edges in
      let n = 4 in
      let g = M.create n in
      List.iter
        (fun (src, dst, cap, cost) -> ignore (M.add_edge g ~src ~dst ~cap ~cost))
        edges;
      let flow, cost = M.min_cost_flow g ~source:0 ~sink:(n - 1) () in
      let bf_flow, bf_cost = brute_force_min_cost n edges ~source:0 ~sink:(n - 1) in
      flow = bf_flow && cost = bf_cost)

let suite =
  [
    Alcotest.test_case "single edge" `Quick test_single_edge;
    Alcotest.test_case "prefers cheap path" `Quick test_two_paths_prefers_cheap;
    Alcotest.test_case "max_flow limit" `Quick test_max_flow_limit;
    Alcotest.test_case "rerouting via residual" `Quick test_rerouting_via_residual;
    Alcotest.test_case "negative edge costs" `Quick test_negative_edge_costs;
    Alcotest.test_case "disconnected" `Quick test_disconnected;
    QCheck_alcotest.to_alcotest prop_matches_brute_force;
  ]
