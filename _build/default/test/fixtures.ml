(* Shared hand-built designs for the test suites. *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design

(* Two dies of 100x40, row height 10 on both (4 rows each), site width 1. *)
let two_dies ?(row_height_top = 10) ?(w = 100) ?(h = 40) () =
  [|
    Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w ~h) ~row_height:10 ();
    Die.make ~index:1
      ~outline:(Rect.make ~x:0 ~y:0 ~w ~h)
      ~row_height:row_height_top ();
  |]

let cell ~id ?(w0 = 4) ?(w1 = 4) ~x ~y ~z () =
  Cell.make ~id ~widths:[| w0; w1 |] ~gp_x:x ~gp_y:y ~gp_z:z ()

(* A small feasible design: 8 cells clustered at one point of die 0. *)
let clustered () =
  let cells =
    Array.init 8 (fun id -> cell ~id ~w0:6 ~w1:6 ~x:50 ~y:11 ~z:0.1 ())
  in
  let nets =
    [| Net.make ~id:0 ~pins:[| 0; 1; 2 |] (); Net.make ~id:1 ~pins:[| 3; 7 |] () |]
  in
  Design.make ~name:"clustered" ~dies:(two_dies ()) ~cells ~nets ()

(* A design whose die 0 has a macro splitting rows 1-2 into two segments. *)
let with_macro () =
  let cells =
    Array.init 10 (fun id ->
        cell ~id ~w0:5 ~w1:5 ~x:(10 + (8 * id)) ~y:15 ~z:(if id mod 2 = 0 then 0.2 else 0.8) ())
  in
  let macros =
    [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:40 ~y:10 ~w:20 ~h:20) () |]
  in
  Design.make ~name:"with_macro" ~dies:(two_dies ()) ~cells ~macros ()

(* Random feasible design for property tests. *)
let random ?(n = 60) ?(with_macros = false) seed =
  let rng = Tdf_util.Prng.create seed in
  let w = 120 and h = 50 in
  let dies =
    [|
      Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w ~h) ~row_height:10 ();
      Die.make ~index:1 ~outline:(Rect.make ~x:0 ~y:0 ~w ~h) ~row_height:10 ();
    |]
  in
  let macros =
    if with_macros then
      [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:30 ~y:10 ~w:25 ~h:20) () |]
    else [||]
  in
  let cells =
    Array.init n (fun id ->
        let wc = Tdf_util.Prng.int_in rng 2 6 in
        cell ~id ~w0:wc ~w1:wc
          ~x:(Tdf_util.Prng.int rng w)
          ~y:(Tdf_util.Prng.int rng h)
          ~z:(Tdf_util.Prng.float rng 1.0)
          ())
  in
  let nets =
    Array.init (n / 3) (fun id ->
        let a = Tdf_util.Prng.int rng n and b = Tdf_util.Prng.int rng n in
        Net.make ~id ~pins:[| a; (if b = a then (a + 1) mod n else b) |] ())
  in
  Design.make ~name:(Printf.sprintf "random%d" seed) ~dies ~cells ~macros ~nets ()
