module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Net = Tdf_netlist.Net
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

let die0 () =
  Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:5 ~w:100 ~h:43) ~row_height:10 ()

let test_die_rows () =
  let d = die0 () in
  Alcotest.(check int) "4 complete rows" 4 (Die.num_rows d);
  Alcotest.(check int) "row 0 y" 5 (Die.row_y d 0);
  Alcotest.(check int) "row 3 y" 35 (Die.row_y d 3)

let test_die_row_of_y () =
  let d = die0 () in
  Alcotest.(check int) "row of 5" 0 (Die.row_of_y d 5);
  Alcotest.(check int) "row of 14" 0 (Die.row_of_y d 14);
  Alcotest.(check int) "row of 15" 1 (Die.row_of_y d 15);
  Alcotest.(check int) "clamps below" 0 (Die.row_of_y d (-100));
  Alcotest.(check int) "clamps above" 3 (Die.row_of_y d 1000)

let test_die_nearest_row () =
  let d = die0 () in
  Alcotest.(check int) "9 rounds to row 0" 0 (Die.nearest_row d 9);
  Alcotest.(check int) "10 rounds to row 1 (y=15)" 1 (Die.nearest_row d 10);
  Alcotest.(check int) "clamps" 3 (Die.nearest_row d 500)

let test_cell_nearest_die () =
  let c = Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0.49 () in
  Alcotest.(check int) "0.49 -> die 0" 0 (Cell.nearest_die c ~n_dies:2);
  let c = Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0.51 () in
  Alcotest.(check int) "0.51 -> die 1" 1 (Cell.nearest_die c ~n_dies:2);
  let c = Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:3.7 () in
  Alcotest.(check int) "clamped to last die" 1 (Cell.nearest_die c ~n_dies:2)

let test_cell_width_on () =
  let c = Fixtures.cell ~id:0 ~w0:3 ~w1:7 ~x:0 ~y:0 ~z:0. () in
  Alcotest.(check int) "bottom width" 3 (Cell.width_on c 0);
  Alcotest.(check int) "top width" 7 (Cell.width_on c 1)

let test_design_validate_ok () =
  match Design.validate (Fixtures.clustered ()) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "unexpected errors: %s" (String.concat "; " es)

let test_design_validate_macro_escape () =
  let dies = Fixtures.two_dies () in
  let macros =
    [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:90 ~y:0 ~w:20 ~h:10) () |]
  in
  let d = Design.make ~name:"bad" ~dies ~cells:[||] ~macros () in
  match Design.validate d with
  | Error (e :: _) ->
    Alcotest.(check bool) "mentions escape" true
      (String.length e > 0 && String.exists (fun _ -> true) e)
  | _ -> Alcotest.fail "expected validation error"

let test_design_validate_macro_overlap () =
  let dies = Fixtures.two_dies () in
  let macros =
    [|
      Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:10 ~y:0 ~w:20 ~h:20) ();
      Blockage.make ~id:1 ~die:0 ~rect:(Rect.make ~x:20 ~y:10 ~w:20 ~h:20) ();
    |]
  in
  let d = Design.make ~name:"bad" ~dies ~cells:[||] ~macros () in
  Alcotest.(check bool) "overlap detected" true (Design.validate d <> Ok ())

let test_design_validate_bad_net () =
  let d =
    Design.make ~name:"bad" ~dies:(Fixtures.two_dies ())
      ~cells:[| Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0. () |]
      ~nets:[| Net.make ~id:0 ~pins:[| 0; 5 |] () |]
      ()
  in
  Alcotest.(check bool) "bad pin detected" true (Design.validate d <> Ok ())

let test_design_validate_width_count () =
  let c = Cell.make ~id:0 ~widths:[| 4 |] ~gp_x:0 ~gp_y:0 ~gp_z:0. () in
  let d = Design.make ~name:"bad" ~dies:(Fixtures.two_dies ()) ~cells:[| c |] () in
  Alcotest.(check bool) "width arity detected" true (Design.validate d <> Ok ())

let test_avg_cell_width () =
  let cells =
    [|
      Fixtures.cell ~id:0 ~w0:2 ~w1:8 ~x:0 ~y:0 ~z:0. ();
      Fixtures.cell ~id:1 ~w0:4 ~w1:8 ~x:0 ~y:0 ~z:0. ();
    |]
  in
  let d = Design.make ~name:"t" ~dies:(Fixtures.two_dies ()) ~cells () in
  Alcotest.(check (float 1e-9)) "avg on die0" 3. (Design.avg_cell_width d 0);
  Alcotest.(check (float 1e-9)) "avg on die1" 8. (Design.avg_cell_width d 1)

let test_placement_initial () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  Alcotest.(check int) "x from gp" 50 p.Placement.x.(0);
  Alcotest.(check int) "y from gp" 11 p.Placement.y.(0);
  Alcotest.(check int) "die from z" 0 p.Placement.die.(0)

let test_placement_displacement () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  Alcotest.(check int) "zero at start" 0 (Placement.displacement d p 0);
  p.Placement.x.(0) <- 53;
  p.Placement.y.(0) <- 20;
  Alcotest.(check int) "manhattan" (3 + 9) (Placement.displacement d p 0)

let test_placement_copy_independent () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  let q = Placement.copy p in
  q.Placement.x.(0) <- 99;
  Alcotest.(check int) "original unchanged" 50 p.Placement.x.(0)

let test_placement_cell_rect () =
  let d = Fixtures.clustered () in
  let p = Placement.initial d in
  p.Placement.die.(0) <- 1;
  let r = Placement.cell_rect d p 0 in
  Alcotest.(check int) "width on die 1" 6 r.Rect.w;
  Alcotest.(check int) "height = row height" 10 r.Rect.h

let suite =
  [
    Alcotest.test_case "die rows" `Quick test_die_rows;
    Alcotest.test_case "die row_of_y" `Quick test_die_row_of_y;
    Alcotest.test_case "die nearest_row" `Quick test_die_nearest_row;
    Alcotest.test_case "cell nearest_die" `Quick test_cell_nearest_die;
    Alcotest.test_case "cell width_on" `Quick test_cell_width_on;
    Alcotest.test_case "validate ok" `Quick test_design_validate_ok;
    Alcotest.test_case "validate macro escape" `Quick test_design_validate_macro_escape;
    Alcotest.test_case "validate macro overlap" `Quick test_design_validate_macro_overlap;
    Alcotest.test_case "validate bad net" `Quick test_design_validate_bad_net;
    Alcotest.test_case "validate width arity" `Quick test_design_validate_width_count;
    Alcotest.test_case "avg cell width" `Quick test_avg_cell_width;
    Alcotest.test_case "placement initial" `Quick test_placement_initial;
    Alcotest.test_case "placement displacement" `Quick test_placement_displacement;
    Alcotest.test_case "placement copy" `Quick test_placement_copy_independent;
    Alcotest.test_case "placement cell_rect" `Quick test_placement_cell_rect;
  ]
