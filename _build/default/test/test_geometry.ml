module I = Tdf_geometry.Interval
module R = Tdf_geometry.Rect

let test_interval_basics () =
  let i = I.make 2 7 in
  Alcotest.(check int) "length" 5 (I.length i);
  Alcotest.(check bool) "contains lo" true (I.contains i 2);
  Alcotest.(check bool) "excludes hi" false (I.contains i 7);
  Alcotest.(check bool) "not empty" false (I.is_empty i);
  Alcotest.(check bool) "empty" true (I.is_empty (I.make 3 3))

let test_interval_overlap () =
  Alcotest.(check bool) "overlap" true (I.overlaps (I.make 0 5) (I.make 4 9));
  Alcotest.(check bool) "touching no overlap" false (I.overlaps (I.make 0 5) (I.make 5 9));
  Alcotest.(check int) "overlap length" 1 (I.overlap_length (I.make 0 5) (I.make 4 9));
  Alcotest.(check int) "disjoint length" 0 (I.overlap_length (I.make 0 2) (I.make 5 9))

let test_interval_intersect () =
  (match I.intersect (I.make 0 5) (I.make 3 8) with
  | Some i ->
    Alcotest.(check int) "lo" 3 i.I.lo;
    Alcotest.(check int) "hi" 5 i.I.hi
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "none" true (I.intersect (I.make 0 2) (I.make 3 8) = None)

let test_interval_clamp () =
  let i = I.make 10 20 in
  Alcotest.(check int) "below" 10 (I.clamp i 5);
  Alcotest.(check int) "inside" 15 (I.clamp i 15);
  Alcotest.(check int) "above (inclusive hi)" 20 (I.clamp i 99)

let test_interval_subtract_middle () =
  let parts = I.subtract (I.make 0 100) [ I.make 40 60 ] in
  Alcotest.(check int) "two parts" 2 (List.length parts);
  match parts with
  | [ a; b ] ->
    Alcotest.(check int) "a.lo" 0 a.I.lo;
    Alcotest.(check int) "a.hi" 40 a.I.hi;
    Alcotest.(check int) "b.lo" 60 b.I.lo;
    Alcotest.(check int) "b.hi" 100 b.I.hi
  | _ -> Alcotest.fail "bad structure"

let test_interval_subtract_edges () =
  Alcotest.(check int) "hole at start" 1
    (List.length (I.subtract (I.make 0 10) [ I.make 0 4 ]));
  Alcotest.(check int) "hole covers all" 0
    (List.length (I.subtract (I.make 0 10) [ I.make 0 10 ]));
  Alcotest.(check int) "no holes" 1 (List.length (I.subtract (I.make 0 10) []))

let test_interval_subtract_overlapping_holes () =
  let parts = I.subtract (I.make 0 100) [ I.make 10 30; I.make 20 50; I.make 70 80 ] in
  match parts with
  | [ a; b; c ] ->
    Alcotest.(check (pair int int)) "a" (0, 10) (a.I.lo, a.I.hi);
    Alcotest.(check (pair int int)) "b" (50, 70) (b.I.lo, b.I.hi);
    Alcotest.(check (pair int int)) "c" (80, 100) (c.I.lo, c.I.hi)
  | _ -> Alcotest.fail "expected 3 parts"

let prop_subtract_disjoint_and_outside_holes =
  let gen =
    QCheck.Gen.(
      let iv =
        map2 (fun lo len -> I.make lo (lo + len)) (int_range 0 50) (int_range 1 30)
      in
      pair iv (list_size (int_range 0 5) iv))
  in
  QCheck.Test.make ~name:"subtract: parts disjoint, inside i, avoid holes" ~count:300
    (QCheck.make gen)
    (fun (i, holes) ->
      let parts = I.subtract i holes in
      let sorted = ref true and prev_hi = ref min_int in
      List.iter
        (fun p ->
          if p.I.lo < !prev_hi then sorted := false;
          prev_hi := p.I.hi)
        parts;
      !sorted
      && List.for_all (fun p -> p.I.lo >= i.I.lo && p.I.hi <= i.I.hi && not (I.is_empty p)) parts
      && List.for_all
           (fun p -> List.for_all (fun h -> not (I.overlaps p h)) holes)
           parts)

let prop_subtract_preserves_uncovered_points =
  let gen =
    QCheck.Gen.(
      let iv =
        map2 (fun lo len -> I.make lo (lo + len)) (int_range 0 40) (int_range 1 20)
      in
      pair iv (list_size (int_range 0 4) iv))
  in
  QCheck.Test.make ~name:"subtract: point coverage is exact" ~count:200
    (QCheck.make gen)
    (fun (i, holes) ->
      let parts = I.subtract i holes in
      let ok = ref true in
      for x = i.I.lo to i.I.hi - 1 do
        let in_hole = List.exists (fun h -> I.contains h x) holes in
        let in_part = List.exists (fun p -> I.contains p x) parts in
        if in_part = in_hole then ok := false
      done;
      !ok)

let test_rect_basics () =
  let r = R.make ~x:1 ~y:2 ~w:3 ~h:4 in
  Alcotest.(check int) "area" 12 (R.area r);
  Alcotest.(check bool) "contains point" true (R.contains_point r 1 2);
  Alcotest.(check bool) "excludes far corner" false (R.contains_point r 4 6)

let test_rect_overlap () =
  let a = R.make ~x:0 ~y:0 ~w:10 ~h:10 in
  let b = R.make ~x:5 ~y:5 ~w:10 ~h:10 in
  let c = R.make ~x:10 ~y:0 ~w:5 ~h:5 in
  Alcotest.(check bool) "overlap" true (R.overlaps a b);
  Alcotest.(check bool) "touching no overlap" false (R.overlaps a c);
  Alcotest.(check int) "intersection area" 25 (R.intersection_area a b);
  Alcotest.(check int) "disjoint area" 0 (R.intersection_area a c)

let test_rect_contains_rect () =
  let outer = R.make ~x:0 ~y:0 ~w:10 ~h:10 in
  Alcotest.(check bool) "inside" true
    (R.contains_rect outer (R.make ~x:2 ~y:2 ~w:3 ~h:3));
  Alcotest.(check bool) "exact" true (R.contains_rect outer outer);
  Alcotest.(check bool) "escaping" false
    (R.contains_rect outer (R.make ~x:8 ~y:8 ~w:3 ~h:3))

let test_manhattan () =
  Alcotest.(check int) "distance" 7 (R.manhattan (0, 0) (3, 4));
  Alcotest.(check int) "zero" 0 (R.manhattan (5, 5) (5, 5));
  Alcotest.(check int) "negative coords" 10 (R.manhattan (-2, -3) (3, 2))

let suite =
  [
    Alcotest.test_case "interval basics" `Quick test_interval_basics;
    Alcotest.test_case "interval overlap" `Quick test_interval_overlap;
    Alcotest.test_case "interval intersect" `Quick test_interval_intersect;
    Alcotest.test_case "interval clamp" `Quick test_interval_clamp;
    Alcotest.test_case "subtract middle hole" `Quick test_interval_subtract_middle;
    Alcotest.test_case "subtract edge holes" `Quick test_interval_subtract_edges;
    Alcotest.test_case "subtract overlapping holes" `Quick
      test_interval_subtract_overlapping_holes;
    QCheck_alcotest.to_alcotest prop_subtract_disjoint_and_outside_holes;
    QCheck_alcotest.to_alcotest prop_subtract_preserves_uncovered_points;
    Alcotest.test_case "rect basics" `Quick test_rect_basics;
    Alcotest.test_case "rect overlap" `Quick test_rect_overlap;
    Alcotest.test_case "rect contains rect" `Quick test_rect_contains_rect;
    Alcotest.test_case "manhattan" `Quick test_manhattan;
  ]
