module R = Tdf_refine.Refine
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Net = Tdf_netlist.Net
module Legality = Tdf_metrics.Legality
module Hpwl = Tdf_metrics.Hpwl

let legalized design =
  (Tdf_legalizer.Flow3d.legalize design).Tdf_legalizer.Flow3d.placement

let test_improves_or_keeps_hpwl () =
  let d = Fixtures.random ~n:80 11 in
  let p = legalized d in
  let r = R.run d p in
  Alcotest.(check bool) "hpwl not increased" true
    (r.R.hpwl_after <= r.R.hpwl_before +. 1e-6);
  Alcotest.(check (float 1e-6)) "report matches metric" r.R.hpwl_after
    (Hpwl.of_placement d p)

let test_preserves_legality () =
  let d = Fixtures.random ~n:80 ~with_macros:true 12 in
  let p = legalized d in
  let r = R.run d p in
  ignore r;
  Alcotest.(check int) "still legal" 0 (Legality.check d p).Legality.n_violations

let test_slide_moves_toward_net () =
  (* Two connected cells placed far apart in one empty row: the slide pass
     must pull them together. *)
  let cells =
    [|
      Fixtures.cell ~id:0 ~x:0 ~y:0 ~z:0. ();
      Fixtures.cell ~id:1 ~x:90 ~y:0 ~z:0. ();
    |]
  in
  let nets = [| Net.make ~id:0 ~pins:[| 0; 1 |] () |] in
  let d = Design.make ~name:"slide" ~dies:(Fixtures.two_dies ()) ~cells ~nets () in
  let p = Placement.initial d in
  (* already legal: two width-4 cells in row 0 *)
  Alcotest.(check bool) "legal start" true (Legality.is_legal d p);
  let r = R.run d p in
  Alcotest.(check bool) "hpwl reduced" true (r.R.hpwl_after < r.R.hpwl_before);
  Alcotest.(check bool) "cells pulled together" true
    (abs (p.Placement.x.(0) - p.Placement.x.(1)) < 90);
  Alcotest.(check bool) "still legal" true (Legality.is_legal d p)

let test_swap_when_beneficial () =
  (* Cells 0 and 1 have swapped "homes": 0 is connected to a pin on the
     right, 1 to a pin on the left.  Both involved rows are completely
     full, so a swap (0↔1 in row 0 or the equivalent 2↔3 in row 3) is the
     only legal improving move. *)
  let cells =
    [|
      Fixtures.cell ~id:0 ~w0:50 ~w1:50 ~x:0 ~y:0 ~z:0. ();
      Fixtures.cell ~id:1 ~w0:50 ~w1:50 ~x:50 ~y:0 ~z:0. ();
      Fixtures.cell ~id:2 ~w0:4 ~w1:4 ~x:96 ~y:30 ~z:0. ();
      Fixtures.cell ~id:3 ~w0:4 ~w1:4 ~x:0 ~y:30 ~z:0. ();
      Fixtures.cell ~id:4 ~w0:92 ~w1:92 ~x:4 ~y:30 ~z:0. ();
      (* fills row 3 between the two pins *)
    |]
  in
  let nets =
    [|
      Net.make ~id:0 ~pins:[| 0; 2 |] ();
      (* 0 wants right *)
      Net.make ~id:1 ~pins:[| 1; 3 |] ();
      (* 1 wants left *)
    |]
  in
  let d = Design.make ~name:"swap" ~dies:(Fixtures.two_dies ()) ~cells ~nets () in
  let p = Placement.initial d in
  Alcotest.(check bool) "legal start" true (Legality.is_legal d p);
  let r = R.run d p in
  Alcotest.(check bool) "swap accepted" true (r.R.swaps >= 1);
  Alcotest.(check bool) "wires uncrossed" true
    (r.R.hpwl_after < r.R.hpwl_before -. 50.);
  (* the crossing can be resolved by any of the equivalent moves (0<->1,
     3 around the filler, ...): require the wire crossing to be gone, i.e.
     net0's span no longer covers net1's pin ordering *)
  Alcotest.(check bool) "still legal" true (Legality.is_legal d p)

let test_converges () =
  let d = Fixtures.random ~n:60 13 in
  let p = legalized d in
  let r = R.run ~iterations:50 d p in
  Alcotest.(check bool) "stops before the bound" true (r.R.iterations < 50)

let test_no_nets_noop () =
  let base = Fixtures.clustered () in
  let d = Design.make ~name:"nonets" ~dies:base.Design.dies ~cells:base.Design.cells () in
  let p = legalized d in
  let before = Placement.copy p in
  let r = R.run d p in
  Alcotest.(check int) "no moves" 0 (r.R.slides + r.R.swaps);
  Alcotest.(check (array int)) "positions unchanged" before.Placement.x p.Placement.x

let prop_legal_and_monotone =
  QCheck.Test.make ~name:"refine keeps legality, never worsens HPWL" ~count:20
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Fixtures.random ~n:70 ~with_macros:(seed mod 2 = 0) seed in
      let p = legalized d in
      let before = Hpwl.of_placement d p in
      let _ = R.run d p in
      let after = Hpwl.of_placement d p in
      Legality.is_legal d p && after <= before +. 1e-6)

let suite =
  [
    Alcotest.test_case "improves or keeps hpwl" `Quick test_improves_or_keeps_hpwl;
    Alcotest.test_case "preserves legality" `Quick test_preserves_legality;
    Alcotest.test_case "slide toward net" `Quick test_slide_moves_toward_net;
    Alcotest.test_case "swap when beneficial" `Quick test_swap_when_beneficial;
    Alcotest.test_case "converges" `Quick test_converges;
    Alcotest.test_case "no nets noop" `Quick test_no_nets_noop;
    QCheck_alcotest.to_alcotest prop_legal_and_monotone;
  ]
