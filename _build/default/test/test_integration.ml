(* End-to-end: generated ICCAD-style cases through every legalizer, checked
   for legality and for the paper's quality ordering. *)

module Util = struct
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
    nn = 0 || go 0
end

module Runner = Tdf_experiments.Runner
module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Legality = Tdf_metrics.Legality
module Displacement = Tdf_metrics.Displacement

let methods_all =
  [ Runner.Tetris; Runner.Abacus; Runner.Bonn; Runner.Ours; Runner.Ours_no_d2d ]

let run_all suite case =
  let design = Gen.generate_by_name ~scale:0.04 suite case in
  let results =
    List.map (fun m -> (m, Runner.legalize_with m design)) methods_all
  in
  (design, results)

let check_all_legal (design, results) =
  List.iter
    (fun (m, p) ->
      let rep = Legality.check design p in
      if rep.Legality.n_violations <> 0 then
        Alcotest.failf "%s produced %d violations: %s" (Runner.method_name m)
          rep.Legality.n_violations
          (String.concat "; " rep.Legality.messages))
    results

let test_iccad2022_all_legal () =
  check_all_legal (run_all Spec.Iccad2022 "case3h")

let test_iccad2023_all_legal () =
  check_all_legal (run_all Spec.Iccad2023 "case2h2")

let test_ours_beats_tetris () =
  let design, results = run_all Spec.Iccad2023 "case3" in
  let avg m =
    (Displacement.summary design (List.assoc m results)).Displacement.avg_norm
  in
  Alcotest.(check bool) "ours < tetris avg" true (avg Runner.Ours < avg Runner.Tetris);
  Alcotest.(check bool) "ours <= abacus avg" true
    (avg Runner.Ours <= avg Runner.Abacus +. 0.05)

let test_ablation_direction () =
  let design, results = run_all Spec.Iccad2023 "case3" in
  let summary m = Displacement.summary design (List.assoc m results) in
  let ours = summary Runner.Ours and nod2d = summary Runner.Ours_no_d2d in
  Alcotest.(check bool) "D2D does not hurt avg" true
    (ours.Displacement.avg_norm <= nod2d.Displacement.avg_norm +. 0.05)

let test_runner_case_result () =
  let design = Gen.generate_by_name ~scale:0.04 Spec.Iccad2022 "case2" in
  let r = Runner.run_case ~case:"case2" design in
  Alcotest.(check int) "4 rows" 4 (List.length r.Runner.rows);
  List.iter
    (fun (row : Runner.row) ->
      Alcotest.(check bool)
        (Runner.method_name row.Runner.method_ ^ " legal")
        true row.Runner.legal;
      Alcotest.(check bool) "runtime nonneg" true (row.Runner.runtime_s >= 0.))
    r.Runner.rows

let test_tables_render () =
  let design = Gen.generate_by_name ~scale:0.04 Spec.Iccad2022 "case2" in
  let results = [ Runner.run_case ~case:"case2" design ] in
  let t = Tdf_experiments.Tables.comparison ~title:"T" results in
  Alcotest.(check bool) "has title" true (String.length t > 1 && t.[0] = 'T');
  Alcotest.(check bool) "has average row" true
    (String.split_on_char '\n' t |> List.exists (fun l -> String.length l >= 7 && String.sub l 0 7 = "Average"));
  let t2 = Tdf_experiments.Tables.table2 () in
  Alcotest.(check bool) "table2 lists case4h" true (Util.contains t2 "case4h")

let test_normalized_row_ours_is_one () =
  let design = Gen.generate_by_name ~scale:0.04 Spec.Iccad2023 "case2" in
  let results = [ Runner.run_case ~case:"case2" design ] in
  let norm = Tdf_experiments.Tables.normalized_row results in
  let _, a, m, _ = List.find (fun (m, _, _, _) -> m = Runner.Ours) norm in
  Alcotest.(check (float 1e-9)) "avg ratio 1" 1.0 a;
  Alcotest.(check (float 1e-9)) "max ratio 1" 1.0 m

let test_ablation_table () =
  let design = Gen.generate_by_name ~scale:0.04 Spec.Iccad2023 "case2" in
  let r =
    Runner.run_case ~methods:[ Runner.Ours_no_d2d; Runner.Ours ] ~case:"case2"
      design
  in
  let t = Tdf_experiments.Tables.ablation [ r ] in
  Alcotest.(check bool) "renders" true (String.length t > 0)

let test_fig7_renders () =
  let design = Gen.generate_by_name ~scale:0.04 Spec.Iccad2022 "case2" in
  let results = [ Runner.run_case ~case:"case2" design ] in
  let f = Tdf_experiments.Figures.fig7 ~title:"F" results in
  Alcotest.(check bool) "mentions Tetris" true (Util.contains f "Tetris");
  let csv = Tdf_experiments.Figures.fig7_csv results in
  Alcotest.(check bool) "csv header" true
    (String.length csv > 5 && String.sub csv 0 4 = "case")

let test_full_pipeline_via_io () =
  (* generate -> save -> load -> legalize -> save placement -> load -> check *)
  let d = Gen.generate_by_name ~scale:0.04 Spec.Iccad2023 "case2" in
  let dtext = Tdf_io.Text.design_to_string d in
  match Tdf_io.Text.read_design dtext with
  | Error e -> Alcotest.failf "design io: %s" e
  | Ok d' ->
    let p = Runner.legalize_with Runner.Ours d' in
    let ptext = Tdf_io.Text.placement_to_string d' p in
    (match Tdf_io.Text.read_placement d' ptext with
    | Error e -> Alcotest.failf "placement io: %s" e
    | Ok p' ->
      Alcotest.(check int) "legal after full loop" 0
        (Legality.check d' p').Legality.n_violations)

let suite =
  [
    Alcotest.test_case "iccad2022 all legal" `Slow test_iccad2022_all_legal;
    Alcotest.test_case "iccad2023 all legal" `Slow test_iccad2023_all_legal;
    Alcotest.test_case "ours beats tetris" `Slow test_ours_beats_tetris;
    Alcotest.test_case "ablation direction" `Slow test_ablation_direction;
    Alcotest.test_case "runner case result" `Quick test_runner_case_result;
    Alcotest.test_case "tables render" `Quick test_tables_render;
    Alcotest.test_case "normalized row" `Quick test_normalized_row_ours_is_one;
    Alcotest.test_case "ablation table" `Quick test_ablation_table;
    Alcotest.test_case "fig7 renders" `Quick test_fig7_renders;
    Alcotest.test_case "pipeline via io" `Slow test_full_pipeline_via_io;
  ]
