module T = Tdf_bonding.Terminal
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Net = Tdf_netlist.Net

let design_with_cut_nets () =
  let cells =
    [|
      Fixtures.cell ~id:0 ~x:10 ~y:0 ~z:0.1 ();
      Fixtures.cell ~id:1 ~x:80 ~y:20 ~z:0.9 ();
      Fixtures.cell ~id:2 ~x:20 ~y:10 ~z:0.1 ();
      Fixtures.cell ~id:3 ~x:30 ~y:10 ~z:0.2 ();
    |]
  in
  let nets =
    [|
      Net.make ~id:0 ~pins:[| 0; 1 |] ();  (* cut: dies 0 and 1 *)
      Net.make ~id:1 ~pins:[| 2; 3 |] ();  (* uncut: both die 0 *)
      Net.make ~id:2 ~pins:[| 1; 2 |] ();  (* cut *)
    |]
  in
  Design.make ~name:"bond" ~dies:(Fixtures.two_dies ()) ~cells ~nets ()

let test_grid_geometry () =
  let d = design_with_cut_nets () in
  let g = T.make_grid d ~size:4 ~spacing:6 in
  Alcotest.(check int) "pitch" 10 g.T.pitch;
  Alcotest.(check int) "nx" 10 g.T.nx;
  Alcotest.(check int) "ny" 4 g.T.ny;
  let x, y = T.slot_center g (0, 0) in
  Alcotest.(check (pair int int)) "slot (0,0) center" (2, 2) (x, y);
  let x, y = T.slot_center g (3, 2) in
  Alcotest.(check (pair int int)) "slot (3,2) center" (32, 22) (x, y)

let test_cut_nets () =
  let d = design_with_cut_nets () in
  let p = Placement.initial d in
  Alcotest.(check (list int)) "nets 0 and 2 are cut" [ 0; 2 ] (T.cut_nets d p)

let test_assign_valid () =
  let d = design_with_cut_nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:4 ~spacing:6 in
  let a = T.assign d p g in
  Alcotest.(check int) "one terminal per cut net" 2 (List.length a.T.terminals);
  (match T.check d g a with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "cost non-negative" true (a.T.total_cost >= 0)

let test_assign_prefers_inside_bbox () =
  let d = design_with_cut_nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:2 ~spacing:0 in
  (* dense grid: a slot inside each net's bbox exists -> zero cost *)
  let a = T.assign d p g in
  Alcotest.(check int) "zero added wirelength" 0 a.T.total_cost

let test_assign_distinct_under_contention () =
  (* Many cut nets sharing one centroid must spread over distinct slots. *)
  let cells =
    Array.init 20 (fun id ->
        Fixtures.cell ~id ~x:50 ~y:20 ~z:(if id mod 2 = 0 then 0.1 else 0.9) ())
  in
  let nets = Array.init 10 (fun id -> Net.make ~id ~pins:[| 2 * id; (2 * id) + 1 |] ()) in
  let d = Design.make ~name:"contended" ~dies:(Fixtures.two_dies ()) ~cells ~nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:10 ~spacing:10 in
  let a = T.assign ~candidates:3 d p g in
  Alcotest.(check int) "all nets assigned" 10 (List.length a.T.terminals);
  match T.check d g a with Ok () -> () | Error e -> Alcotest.fail e

let test_assign_too_many_nets () =
  let cells =
    Array.init 8 (fun id ->
        Fixtures.cell ~id ~x:50 ~y:20 ~z:(if id mod 2 = 0 then 0.1 else 0.9) ())
  in
  let nets = Array.init 4 (fun id -> Net.make ~id ~pins:[| 2 * id; (2 * id) + 1 |] ()) in
  let d = Design.make ~name:"tiny" ~dies:(Fixtures.two_dies ()) ~cells ~nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:90 ~spacing:60 in
  (* 1x1 grid but 4 cut nets *)
  Alcotest.(check bool) "grid too small" true (g.T.nx * g.T.ny < 4);
  match T.assign d p g with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_hpwl_with_terminals () =
  let d = design_with_cut_nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:2 ~spacing:0 in
  let a = T.assign d p g in
  let hp = T.hpwl_with_terminals d p g a in
  (* must be at least the plain projected HPWL: routing through a terminal
     can only add length *)
  let plain = Tdf_metrics.Hpwl.of_placement d p in
  Alcotest.(check bool) "terminal HPWL >= projected HPWL" true (hp >= plain -. 1e-6)

let test_assign_deterministic () =
  let d = design_with_cut_nets () in
  let p = Placement.initial d in
  let g = T.make_grid d ~size:4 ~spacing:6 in
  let a1 = T.assign d p g and a2 = T.assign d p g in
  Alcotest.(check bool) "same result" true (a1 = a2)

let prop_assign_on_generated =
  QCheck.Test.make ~name:"terminal assignment valid on generated cases" ~count:8
    QCheck.(int_bound 1_000)
    (fun seed ->
      let d = Fixtures.random ~n:50 seed in
      let p = (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement in
      let g = T.make_grid d ~size:3 ~spacing:1 in
      let a = T.assign d p g in
      T.check d g a = Ok ()
      && List.length a.T.terminals = List.length (T.cut_nets d p))

let suite =
  [
    Alcotest.test_case "grid geometry" `Quick test_grid_geometry;
    Alcotest.test_case "cut nets" `Quick test_cut_nets;
    Alcotest.test_case "assignment valid" `Quick test_assign_valid;
    Alcotest.test_case "zero-cost when slot inside bbox" `Quick
      test_assign_prefers_inside_bbox;
    Alcotest.test_case "distinct under contention" `Quick
      test_assign_distinct_under_contention;
    Alcotest.test_case "too many nets fails" `Quick test_assign_too_many_nets;
    Alcotest.test_case "hpwl with terminals" `Quick test_hpwl_with_terminals;
    Alcotest.test_case "deterministic" `Quick test_assign_deterministic;
    QCheck_alcotest.to_alcotest prop_assign_on_generated;
  ]
