module Gp3d = Tdf_placer.Gp3d
module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell

let skeleton ?(n = 120) seed = Fixtures.random ~n seed

let test_positions_in_outline () =
  let d = skeleton 21 in
  let r = Gp3d.place ~iterations:20 d in
  let o = (Design.die d 0).Tdf_netlist.Die.outline in
  Array.iteri
    (fun c x ->
      let inside =
        x >= float_of_int o.Tdf_geometry.Rect.x
        && x <= float_of_int (o.Tdf_geometry.Rect.x + o.Tdf_geometry.Rect.w)
        && r.Gp3d.ys.(c) >= float_of_int o.Tdf_geometry.Rect.y
        && r.Gp3d.ys.(c) <= float_of_int (o.Tdf_geometry.Rect.y + o.Tdf_geometry.Rect.h)
        && r.Gp3d.zs.(c) >= 0.
        && r.Gp3d.zs.(c) <= 1.
      in
      if not inside then Alcotest.failf "cell %d escaped the solution space" c)
    r.Gp3d.xs

let test_hpwl_improves () =
  let d = skeleton ~n:150 22 in
  let r = Gp3d.place ~iterations:40 d in
  let first = List.hd r.Gp3d.hpwl_trace in
  let last = List.nth r.Gp3d.hpwl_trace (List.length r.Gp3d.hpwl_trace - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "wirelength improves (%.0f -> %.0f)" first last)
    true (last < first)

let test_deterministic () =
  let d = skeleton 23 in
  let a = Gp3d.place ~iterations:10 d and b = Gp3d.place ~iterations:10 d in
  Alcotest.(check bool) "same placement" true
    (a.Gp3d.xs = b.Gp3d.xs && a.Gp3d.ys = b.Gp3d.ys && a.Gp3d.zs = b.Gp3d.zs)

let test_apply_valid_design () =
  let d = skeleton 24 in
  let r = Gp3d.place ~iterations:15 d in
  let d' = Gp3d.apply d r in
  (match Design.validate d' with
  | Ok () -> ()
  | Error es -> Alcotest.failf "invalid: %s" (String.concat ";" es));
  (* cells keep identity, widths and weights *)
  for c = 0 to Design.n_cells d - 1 do
    let a = Design.cell d c and b = Design.cell d' c in
    if a.Cell.widths <> b.Cell.widths || a.Cell.weight <> b.Cell.weight then
      Alcotest.failf "cell %d lost attributes" c
  done

let test_die_balance () =
  let d = skeleton ~n:200 25 in
  let r = Gp3d.place ~iterations:40 d in
  let low = ref 0 and high = ref 0 in
  Array.iter (fun z -> if z < 0.5 then incr low else incr high) r.Gp3d.zs;
  let ratio = float_of_int (min !low !high) /. float_of_int (max !low !high) in
  Alcotest.(check bool)
    (Printf.sprintf "die split balanced (%d/%d)" !low !high)
    true (ratio > 0.5)

let test_legalizable_end_to_end () =
  let d = skeleton ~n:150 26 in
  let d' = Gp3d.apply d (Gp3d.place ~iterations:30 d) in
  let p = (Tdf_legalizer.Flow3d.legalize d').Tdf_legalizer.Flow3d.placement in
  Alcotest.(check bool) "legal" true (Tdf_metrics.Legality.is_legal d' p)

let prop_end_to_end_legal =
  QCheck.Test.make ~name:"gp3d output always legalizes" ~count:8
    QCheck.(int_bound 10_000)
    (fun seed ->
      let d = Fixtures.random ~n:100 ~with_macros:(seed mod 2 = 0) seed in
      let d' = Gp3d.apply d (Gp3d.place ~iterations:25 d) in
      let p = (Tdf_legalizer.Flow3d.legalize d').Tdf_legalizer.Flow3d.placement in
      Tdf_metrics.Legality.is_legal d' p)

let suite =
  [
    Alcotest.test_case "positions in outline" `Quick test_positions_in_outline;
    Alcotest.test_case "hpwl improves" `Quick test_hpwl_improves;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "apply yields valid design" `Quick test_apply_valid_design;
    Alcotest.test_case "die balance" `Quick test_die_balance;
    Alcotest.test_case "legalizable end to end" `Quick test_legalizable_end_to_end;
    QCheck_alcotest.to_alcotest prop_end_to_end_legal;
  ]
