(* Experiments-layer units not already covered by the integration suite:
   the ablation sweeps and the scaling-study record keeping. *)

module A = Tdf_experiments.Ablations
module Runner = Tdf_experiments.Runner

let small_design () =
  Tdf_benchgen.Gen.generate_by_name ~scale:0.02 Tdf_benchgen.Spec.Iccad2023 "case2"

let check_points name points expected =
  Alcotest.(check int) (name ^ " point count") expected (List.length points);
  List.iter
    (fun (p : A.point) ->
      Alcotest.(check bool) (name ^ " label set") true (String.length p.A.label > 0);
      Alcotest.(check bool) (name ^ " avg > 0") true (p.A.avg_disp > 0.);
      Alcotest.(check bool) (name ^ " max >= avg") true (p.A.max_disp >= p.A.avg_disp);
      Alcotest.(check bool) (name ^ " rt >= 0") true (p.A.runtime_s >= 0.))
    points

let test_sweep_alpha () =
  let d = small_design () in
  let points = A.sweep_alpha ~values:[ 0.0; 0.1 ] d in
  (* values + the exhaustive point *)
  check_points "alpha" points 3;
  match List.rev points with
  | exhaustive :: _ ->
    Alcotest.(check string) "last is exhaustive" "exhaustive" exhaustive.A.label
  | [] -> Alcotest.fail "empty"

let test_sweep_bin_width () =
  let d = small_design () in
  check_points "bin width" (A.sweep_bin_width ~factors:[ 5.; 10. ] d) 2

let test_sweep_d2d_cost () =
  let d = small_design () in
  let points = A.sweep_d2d_cost ~values:[ 0.; 2. ] d in
  check_points "d2d cost" points 3;
  (* the no_d2d point moves no cells across dies *)
  let no_d2d = List.nth points 2 in
  Alcotest.(check string) "no_d2d label" "no_d2d" no_d2d.A.label;
  Alcotest.(check int) "no crossings" 0 no_d2d.A.d2d_moves

let test_sweep_post_opt () =
  let d = small_design () in
  let points = A.sweep_post_opt ~passes:[ 0; 2 ] d in
  check_points "post opt" points 2;
  let p0 = List.nth points 0 and p2 = List.nth points 1 in
  Alcotest.(check bool) "post-opt never hurts max disp" true
    (p2.A.max_disp <= p0.A.max_disp +. 1e-9)

let test_render () =
  let d = small_design () in
  let s = A.render ~title:"T" (A.sweep_bin_width ~factors:[ 10. ] d) in
  Alcotest.(check bool) "has title line" true (String.length s > 1 && s.[0] = 'T');
  Alcotest.(check bool) "has data" true
    (List.length (String.split_on_char '\n' s) >= 3)

let test_method_names_distinct () =
  let names =
    List.map Runner.method_name
      [ Runner.Tetris; Runner.Abacus; Runner.Bonn; Runner.Ours; Runner.Ours_no_d2d ]
  in
  Alcotest.(check int) "all distinct" 5 (List.length (List.sort_uniq compare names))

let suite =
  [
    Alcotest.test_case "sweep alpha" `Slow test_sweep_alpha;
    Alcotest.test_case "sweep bin width" `Slow test_sweep_bin_width;
    Alcotest.test_case "sweep d2d cost" `Slow test_sweep_d2d_cost;
    Alcotest.test_case "sweep post opt" `Slow test_sweep_post_opt;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "method names" `Quick test_method_names_distinct;
  ]
