module Text = Tdf_io.Text
module Svg = Tdf_io.Svg
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement

let test_design_roundtrip () =
  let d = Fixtures.with_macro () in
  let s = Text.design_to_string d in
  match Text.read_design s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok d' ->
    Alcotest.(check string) "roundtrip stable" s (Text.design_to_string d')

let test_generated_roundtrip () =
  let d =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.05 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let s = Text.design_to_string d in
  match Text.read_design s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok d' ->
    Alcotest.(check int) "cells" (Design.n_cells d) (Design.n_cells d');
    Alcotest.(check string) "identical" s (Text.design_to_string d')

let test_placement_roundtrip () =
  let d = Fixtures.clustered () in
  let p = (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement in
  let s = Text.placement_to_string d p in
  match Text.read_placement d s with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok p' ->
    Alcotest.(check (array int)) "x" p.Placement.x p'.Placement.x;
    Alcotest.(check (array int)) "y" p.Placement.y p'.Placement.y;
    Alcotest.(check (array int)) "die" p.Placement.die p'.Placement.die

let test_parse_errors () =
  (match Text.read_design "die zero one" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on garbage");
  (match Text.read_design "frobnicate 1 2 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on unknown record");
  match Text.read_placement (Fixtures.clustered ()) "place 999 0 0 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on bad cell id"

let test_comments_and_blank_lines () =
  let d = Fixtures.clustered () in
  let s = "# a comment\n\n" ^ Text.design_to_string d ^ "\n# trailing\n" in
  match Text.read_design s with
  | Ok d' -> Alcotest.(check int) "cells" (Design.n_cells d) (Design.n_cells d')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_file_io () =
  let d = Fixtures.with_macro () in
  let path = Filename.temp_file "tdflow" ".design" in
  Text.save_design path d;
  (match Text.load_design path with
  | Ok d' ->
    Alcotest.(check string) "file roundtrip" (Text.design_to_string d)
      (Text.design_to_string d')
  | Error e -> Alcotest.failf "load failed: %s" e);
  Sys.remove path

let test_svg_renders () =
  let d = Fixtures.with_macro () in
  let p = (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement in
  let svg = Svg.render_die d p ~die:0 ~title:"test" () in
  Alcotest.(check bool) "is svg" true
    (String.length svg > 64
    && String.sub svg 0 4 = "<svg"
    && String.length svg - 7 >= 0);
  (* macro rectangle must be drawn *)
  Alcotest.(check bool) "macro drawn" true
    (String.length svg > 0
    &&
    let re = "#bbbbbb" in
    let found = ref false in
    for i = 0 to String.length svg - String.length re do
      if String.sub svg i (String.length re) = re then found := true
    done;
    !found)

let test_svg_counts_cells () =
  let d = Fixtures.clustered () in
  let p = (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement in
  let die0 = ref 0 in
  for c = 0 to Placement.n_cells p - 1 do
    if p.Placement.die.(c) = 0 then incr die0
  done;
  let svg = Svg.render_die d p ~die:0 () in
  let count_sub sub =
    let n = ref 0 in
    for i = 0 to String.length svg - String.length sub do
      if String.sub svg i (String.length sub) = sub then incr n
    done;
    !n
  in
  (* one displacement line per cell on the die *)
  Alcotest.(check int) "one line per cell" !die0 (count_sub "<line ")

let suite =
  [
    Alcotest.test_case "design roundtrip" `Quick test_design_roundtrip;
    Alcotest.test_case "generated roundtrip" `Quick test_generated_roundtrip;
    Alcotest.test_case "placement roundtrip" `Quick test_placement_roundtrip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "svg renders" `Quick test_svg_renders;
    Alcotest.test_case "svg cell lines" `Quick test_svg_counts_cells;
  ]
