module B = Tdf_baselines
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Legality = Tdf_metrics.Legality
module Displacement = Tdf_metrics.Displacement

let test_rowspace_structure () =
  let d = Fixtures.with_macro () in
  let space = B.Rowspace.build d in
  (* die0: rows 0,3 unsplit; rows 1,2 split -> 4 + 2*2... total segments:
     die0 = 1+2+2+1 = 6, die1 = 4 *)
  Alcotest.(check int) "segment count" 10 (Array.length space.B.Rowspace.segs)

let test_rowspace_iter_outward () =
  let d = Fixtures.clustered () in
  let space = B.Rowspace.build d in
  let visited = ref [] in
  B.Rowspace.iter_rows_outward space ~die:0 ~y:11 ~stop:(fun _ -> false) (fun si ->
      visited := space.B.Rowspace.segs.(si).B.Rowspace.row :: !visited);
  Alcotest.(check int) "visits all 4 rows" 4 (List.length !visited);
  (* first visited row must be the nearest (row 1, y=10) *)
  Alcotest.(check int) "nearest first" 1 (List.nth (List.rev !visited) 0)

let test_rowspace_stop_prunes () =
  let d = Fixtures.clustered () in
  let space = B.Rowspace.build d in
  let count = ref 0 in
  B.Rowspace.iter_rows_outward space ~die:0 ~y:11 ~stop:(fun dist -> dist > 5)
    (fun _ -> incr count);
  Alcotest.(check int) "only the nearest row" 1 !count

let check_legal name d p =
  let rep = Legality.check d p in
  if rep.Legality.n_violations <> 0 then
    Alcotest.failf "%s illegal: %s" name
      (String.concat "; " rep.Legality.messages)

let test_tetris_legal () =
  let d = Fixtures.clustered () in
  check_legal "tetris" d (B.Tetris.legalize d)

let test_tetris_macro_legal () =
  let d = Fixtures.with_macro () in
  check_legal "tetris" d (B.Tetris.legalize d)

let test_abacus_legal () =
  let d = Fixtures.clustered () in
  check_legal "abacus" d (B.Abacus.legalize d)

let test_abacus_macro_legal () =
  let d = Fixtures.with_macro () in
  check_legal "abacus" d (B.Abacus.legalize d)

let test_bonn_legal () =
  let d = Fixtures.with_macro () in
  check_legal "bonn" d (B.Bonn.legalize d)

let test_baselines_keep_die_assignment () =
  (* 2D legalizers never move a cell across dies unless its die is full. *)
  let d = Fixtures.random 3 in
  let nd = Design.n_dies d in
  List.iter
    (fun (name, legalize) ->
      let p = legalize d in
      for c = 0 to Design.n_cells d - 1 do
        let init = Tdf_netlist.Cell.nearest_die (Design.cell d c) ~n_dies:nd in
        if p.Placement.die.(c) <> init then
          Alcotest.failf "%s moved cell %d across dies on an uncongested design"
            name c
      done)
    [ ("tetris", B.Tetris.legalize); ("abacus", B.Abacus.legalize) ]

let test_deterministic () =
  let d = Fixtures.random 5 in
  let p1 = B.Tetris.legalize d and p2 = B.Tetris.legalize d in
  Alcotest.(check (array int)) "tetris deterministic" p1.Placement.x p2.Placement.x;
  let a1 = B.Abacus.legalize d and a2 = B.Abacus.legalize d in
  Alcotest.(check (array int)) "abacus deterministic" a1.Placement.x a2.Placement.x

let prop_baselines_legal =
  QCheck.Test.make ~name:"baselines legalize random designs" ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let d = Fixtures.random ~with_macros:(seed mod 2 = 0) seed in
      (Legality.check d (B.Tetris.legalize d)).Legality.n_violations = 0
      && (Legality.check d (B.Abacus.legalize d)).Legality.n_violations = 0)

let prop_abacus_not_worse_than_tetris =
  QCheck.Test.make ~name:"abacus avg displacement <= tetris (usually)" ~count:15
    QCheck.(int_bound 1_000)
    (fun seed ->
      let d = Fixtures.random ~n:80 seed in
      let t = (Displacement.summary d (B.Tetris.legalize d)).Displacement.avg_norm in
      let a = (Displacement.summary d (B.Abacus.legalize d)).Displacement.avg_norm in
      (* allow small wiggle; Abacus dominates Tetris on these utilizations *)
      a <= t +. 0.35)

let suite =
  [
    Alcotest.test_case "rowspace structure" `Quick test_rowspace_structure;
    Alcotest.test_case "rowspace outward iteration" `Quick test_rowspace_iter_outward;
    Alcotest.test_case "rowspace stop prunes" `Quick test_rowspace_stop_prunes;
    Alcotest.test_case "tetris legal" `Quick test_tetris_legal;
    Alcotest.test_case "tetris legal w/ macro" `Quick test_tetris_macro_legal;
    Alcotest.test_case "abacus legal" `Quick test_abacus_legal;
    Alcotest.test_case "abacus legal w/ macro" `Quick test_abacus_macro_legal;
    Alcotest.test_case "bonn legal" `Quick test_bonn_legal;
    Alcotest.test_case "baselines keep dies" `Quick test_baselines_keep_die_assignment;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    QCheck_alcotest.to_alcotest prop_baselines_legal;
    QCheck_alcotest.to_alcotest prop_abacus_not_worse_than_tetris;
  ]
