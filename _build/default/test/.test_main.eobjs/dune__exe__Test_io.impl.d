test/test_io.ml: Alcotest Array Filename Fixtures String Sys Tdf_benchgen Tdf_io Tdf_legalizer Tdf_netlist
