test/test_grid.ml: Alcotest Array Fixtures List QCheck QCheck_alcotest Tdf_grid Tdf_netlist Tdf_util
