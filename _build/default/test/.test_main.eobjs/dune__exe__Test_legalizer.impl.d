test/test_legalizer.ml: Alcotest Array Fixtures List Option Printf QCheck QCheck_alcotest Tdf_grid Tdf_legalizer Tdf_metrics Tdf_netlist
