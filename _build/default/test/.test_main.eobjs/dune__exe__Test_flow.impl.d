test/test_flow.ml: Alcotest Array Hashtbl List QCheck QCheck_alcotest Tdf_flow
