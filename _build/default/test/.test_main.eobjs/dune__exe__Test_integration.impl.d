test/test_integration.ml: Alcotest List String Tdf_benchgen Tdf_experiments Tdf_io Tdf_metrics
