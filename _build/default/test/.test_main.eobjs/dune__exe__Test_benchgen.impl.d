test/test_benchgen.ml: Alcotest Array Float List String Tdf_benchgen Tdf_geometry Tdf_grid Tdf_io Tdf_legalizer Tdf_netlist
