test/test_refine.ml: Alcotest Array Fixtures QCheck QCheck_alcotest Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_refine
