test/test_contest.ml: Alcotest Array String Tdf_benchgen Tdf_geometry Tdf_io Tdf_legalizer Tdf_metrics Tdf_netlist
