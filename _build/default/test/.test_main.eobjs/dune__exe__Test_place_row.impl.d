test/test_place_row.ml: Alcotest Array Hashtbl List Printf QCheck QCheck_alcotest Tdf_legalizer
