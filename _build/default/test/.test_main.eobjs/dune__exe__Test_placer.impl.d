test/test_placer.ml: Alcotest Array Fixtures List Printf QCheck QCheck_alcotest String Tdf_geometry Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_placer
