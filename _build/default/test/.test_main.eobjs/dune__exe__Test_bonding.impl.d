test/test_bonding.ml: Alcotest Array Fixtures List QCheck QCheck_alcotest Tdf_bonding Tdf_legalizer Tdf_metrics Tdf_netlist
