test/test_geometry.ml: Alcotest List QCheck QCheck_alcotest Tdf_geometry
