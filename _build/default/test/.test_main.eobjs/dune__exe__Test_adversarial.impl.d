test/test_adversarial.ml: Alcotest Array Fixtures List String Tdf_baselines Tdf_experiments Tdf_geometry Tdf_grid Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_refine
