test/test_baselines.ml: Alcotest Array Fixtures List QCheck QCheck_alcotest String Tdf_baselines Tdf_metrics Tdf_netlist
