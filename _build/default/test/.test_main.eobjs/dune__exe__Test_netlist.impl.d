test/test_netlist.ml: Alcotest Array Fixtures String Tdf_geometry Tdf_netlist
