test/test_experiments.ml: Alcotest List String Tdf_benchgen Tdf_experiments
