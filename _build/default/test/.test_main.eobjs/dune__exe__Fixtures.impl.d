test/fixtures.ml: Array Printf Tdf_geometry Tdf_netlist Tdf_util
