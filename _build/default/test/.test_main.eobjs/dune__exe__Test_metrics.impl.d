test/test_metrics.ml: Alcotest Array Fixtures Tdf_geometry Tdf_legalizer Tdf_metrics Tdf_netlist
