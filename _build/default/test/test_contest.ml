module C = Tdf_io.Contest
module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell

let sample =
  {|# ICCAD-2022-style case
NumTechnologies 2
Tech TechA 2
LibCell AND2 6 10
LibCell INV 3 10
Tech TechB 2
LibCell AND2 8 12
LibCell INV 4 12
DieSize 0 0 120 60
TopDieMaxUtil 80
BottomDieMaxUtil 75
BottomDieRows 0 0 120 10 6
TopDieRows 0 0 120 12 5
BottomDieTech TechA
TopDieTech TechB
TerminalSize 4 4
TerminalSpacing 2
NumInstances 3
Inst u1 AND2
Inst u2 INV
Inst u3 INV
NumNets 2
Net n1 2
Pin u1/A
Pin u2/Z
Net n2 3
Pin u1/B
Pin u2/A
Pin u3/Z
Place u1 10 5 0.2
Place u2 50 20 0.8
FixedInst blk1 AND2 Bottom 60 10
|}

let parse_ok text =
  match C.read text with
  | Ok r -> r
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_structure () =
  let d, term = parse_ok sample in
  Alcotest.(check int) "2 dies" 2 (Design.n_dies d);
  Alcotest.(check int) "3 cells" 3 (Design.n_cells d);
  Alcotest.(check int) "1 macro" 1 (Array.length d.Design.macros);
  Alcotest.(check int) "2 nets" 2 (Array.length d.Design.nets);
  (match term with
  | Some t ->
    Alcotest.(check int) "terminal size" 4 t.C.t_size;
    Alcotest.(check int) "terminal spacing" 2 t.C.t_spacing
  | None -> Alcotest.fail "expected terminal spec");
  let bottom = Design.die d 0 and top = Design.die d 1 in
  Alcotest.(check int) "bottom row height" 10 bottom.Tdf_netlist.Die.row_height;
  Alcotest.(check int) "top row height" 12 top.Tdf_netlist.Die.row_height;
  Alcotest.(check (float 1e-9)) "bottom util" 0.75 bottom.Tdf_netlist.Die.max_util

let test_parse_widths_per_tech () =
  let d, _ = parse_ok sample in
  let u1 = Design.cell d 0 in
  Alcotest.(check string) "name" "u1" u1.Cell.name;
  Alcotest.(check int) "bottom width (TechA AND2)" 6 (Cell.width_on u1 0);
  Alcotest.(check int) "top width (TechB AND2)" 8 (Cell.width_on u1 1)

let test_parse_places () =
  let d, _ = parse_ok sample in
  let u1 = Design.cell d 0 and u3 = Design.cell d 2 in
  Alcotest.(check int) "u1 x" 10 u1.Cell.gp_x;
  Alcotest.(check (float 1e-9)) "u1 z" 0.2 u1.Cell.gp_z;
  (* u3 has no Place: defaults to the die center *)
  Alcotest.(check int) "u3 defaults to center x" 60 u3.Cell.gp_x;
  Alcotest.(check (float 1e-9)) "u3 z" 0.5 u3.Cell.gp_z

let test_parse_macro () =
  let d, _ = parse_ok sample in
  let m = d.Design.macros.(0) in
  Alcotest.(check int) "die bottom" 0 m.Tdf_netlist.Blockage.die;
  let r = m.Tdf_netlist.Blockage.rect in
  Alcotest.(check (pair int int)) "position" (60, 10) (r.Tdf_geometry.Rect.x, r.Tdf_geometry.Rect.y);
  Alcotest.(check (pair int int)) "size from TechA" (6, 10) (r.Tdf_geometry.Rect.w, r.Tdf_geometry.Rect.h)

let test_parse_nets () =
  let d, _ = parse_ok sample in
  Alcotest.(check (array int)) "n2 pins" [| 0; 1; 2 |] d.Design.nets.(1).Tdf_netlist.Net.pins

let sample_missing_die = "NumTechnologies 1\nTech T 1\nLibCell A 2 10\n"

let test_errors () =
  let expect_err text =
    match C.read text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %s" text
  in
  expect_err "LibCell X 1 1";  (* outside Tech *)
  expect_err "Frobnicate 1 2";
  expect_err sample_missing_die

let test_pin_count_mismatch () =
  let bad =
    String.concat "\n"
      [
        "NumTechnologies 1"; "Tech T 1"; "LibCell A 2 10";
        "DieSize 0 0 50 40"; "BottomDieRows 0 0 50 10 4"; "TopDieRows 0 0 50 10 4";
        "BottomDieTech T"; "TopDieTech T";
        "NumInstances 1"; "Inst u1 A";
        "NumNets 1"; "Net n1 2"; "Pin u1/A";
      ]
  in
  match C.read bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected pin-count error"

let test_legalize_parsed_design () =
  let d, _ = parse_ok sample in
  let p = (Tdf_legalizer.Flow3d.legalize d).Tdf_legalizer.Flow3d.placement in
  Alcotest.(check bool) "parsed design legalizes" true
    (Tdf_metrics.Legality.is_legal d p)

let test_roundtrip_generated () =
  let d =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.05 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let text = C.to_string ~terminal:{ C.t_size = 4; C.t_spacing = 2 } d in
  match C.read text with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok (d', term) ->
    Alcotest.(check int) "cells" (Design.n_cells d) (Design.n_cells d');
    Alcotest.(check int) "macros" (Array.length d.Design.macros)
      (Array.length d'.Design.macros);
    Alcotest.(check int) "nets" (Array.length d.Design.nets)
      (Array.length d'.Design.nets);
    Alcotest.(check bool) "terminal kept" true (term <> None);
    (* per-cell data survives *)
    for c = 0 to Design.n_cells d - 1 do
      let a = Design.cell d c and b = Design.cell d' c in
      if a.Cell.widths <> b.Cell.widths || a.Cell.gp_x <> b.Cell.gp_x
         || a.Cell.gp_y <> b.Cell.gp_y
      then Alcotest.failf "cell %d changed in roundtrip" c
    done;
    (* same legalization result *)
    let p = (Tdf_legalizer.Flow3d.legalize d').Tdf_legalizer.Flow3d.placement in
    Alcotest.(check bool) "roundtripped design legalizes" true
      (Tdf_metrics.Legality.is_legal d' p)

let test_write_rejects_other_stacks () =
  let dies =
    [|
      Tdf_netlist.Die.make ~index:0
        ~outline:(Tdf_geometry.Rect.make ~x:0 ~y:0 ~w:10 ~h:10)
        ~row_height:10 ();
    |]
  in
  let d = Design.make ~name:"one" ~dies ~cells:[||] () in
  match C.to_string d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for non-2-die design"

let suite =
  [
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "widths per tech" `Quick test_parse_widths_per_tech;
    Alcotest.test_case "places" `Quick test_parse_places;
    Alcotest.test_case "macro" `Quick test_parse_macro;
    Alcotest.test_case "nets" `Quick test_parse_nets;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "pin count mismatch" `Quick test_pin_count_mismatch;
    Alcotest.test_case "legalize parsed design" `Quick test_legalize_parsed_design;
    Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
    Alcotest.test_case "write rejects non-2-die" `Quick test_write_rejects_other_stacks;
  ]
