(* More than two dies: the paper notes the algorithm "is sufficiently
   general to apply to other types of 3D ICs with more than two dies"
   (§II-A).  A four-die monolithic-style stack: D2D edges connect adjacent
   tiers only, and the flow moves cells through intermediate tiers.

     dune exec examples/four_dies.exe *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Design = Tdf_netlist.Design
module Flow3d = Tdf_legalizer.Flow3d

let () =
  let n_dies = 4 in
  let dies =
    Array.init n_dies (fun index ->
        Die.make ~index ~outline:(Rect.make ~x:0 ~y:0 ~w:160 ~h:60) ~row_height:10 ())
  in
  (* Global placement: a pile-up on tier 0 (z ~ 0) that must spill upward. *)
  let rng = Tdf_util.Prng.of_string "four_dies" in
  let cells =
    Array.init 260 (fun id ->
        let widths = Array.make n_dies (4 + Tdf_util.Prng.int rng 3) in
        Cell.make ~id ~widths
          ~gp_x:(60 + Tdf_util.Prng.int rng 40)
          ~gp_y:(20 + Tdf_util.Prng.int rng 20)
          ~gp_z:(Tdf_util.Prng.float rng 0.8)
          ())
  in
  let design = Design.make ~name:"four_dies" ~dies ~cells () in
  Printf.printf "four_dies: %d cells on a %d-die stack, pile-up on tier 0\n"
    (Design.n_cells design) n_dies;

  let result = Flow3d.legalize design in
  let p = result.Flow3d.placement in
  let s = Tdf_metrics.Displacement.summary design p in
  Printf.printf "  legal: %b  avg %.3f rows  max %.2f rows  cross-tier moves: %d\n"
    (Tdf_metrics.Legality.is_legal design p)
    s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm
    result.Flow3d.stats.Flow3d.d2d_cells;

  let per_die = Array.make n_dies 0 in
  for c = 0 to Design.n_cells design - 1 do
    per_die.(p.Tdf_netlist.Placement.die.(c)) <- per_die.(p.Tdf_netlist.Placement.die.(c)) + 1
  done;
  Printf.printf "  cells per tier after legalization:";
  Array.iteri (fun d k -> Printf.printf "  tier%d=%d" d k) per_die;
  print_newline ();

  (* The grid graph really is a stack: tier 0 and tier 2 share no edge. *)
  let g = Tdf_grid.Grid.build design ~bin_width:40 in
  let nonadjacent =
    Array.exists
      (fun (b : Tdf_grid.Grid.bin) ->
        Array.exists
          (fun (e : Tdf_grid.Grid.edge) ->
            e.Tdf_grid.Grid.kind = Tdf_grid.Grid.D2d
            && abs (Tdf_grid.Grid.(g.bins.(e.dst).die) - b.Tdf_grid.Grid.die) <> 1)
          g.Tdf_grid.Grid.edges.(b.Tdf_grid.Grid.id))
      g.Tdf_grid.Grid.bins
  in
  Printf.printf "  D2D edges between non-adjacent tiers: %b (expected false)\n"
    nonadjacent
