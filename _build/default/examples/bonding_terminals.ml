(* Hybrid-bonding terminal assignment (the F2F interface of §II-A): after
   legalization, every net spanning both dies is routed through one
   terminal on the bonding layer.  Terminals live on a size+spacing grid
   and are assigned by a min-cost-flow matching (lib/bonding, on top of
   lib/flow), minimizing the added wirelength.

     dune exec examples/bonding_terminals.exe *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module T = Tdf_bonding.Terminal
module Flow3d = Tdf_legalizer.Flow3d

let () =
  let design = Gen.generate_by_name ~scale:0.08 Spec.Iccad2023 "case2" in
  let p = (Flow3d.legalize design).Flow3d.placement in
  Printf.printf "bonding_terminals: %s, %d cells, %d nets, placement legal=%b\n"
    design.Tdf_netlist.Design.name
    (Tdf_netlist.Design.n_cells design)
    (Array.length design.Tdf_netlist.Design.nets)
    (Tdf_metrics.Legality.is_legal design p);

  let cut = T.cut_nets design p in
  Printf.printf "  cut nets (pins on both dies): %d\n" (List.length cut);

  List.iter
    (fun (size, spacing) ->
      let g = T.make_grid design ~size ~spacing in
      if g.T.nx * g.T.ny < List.length cut then
        Printf.printf
          "  terminal %2dx%-2d spacing %2d: %4dx%-4d slots — too few for %d \
           cut nets, skipped\n"
          size size spacing g.T.nx g.T.ny (List.length cut)
      else begin
        let a, dt = Tdf_util.Timer.time (fun () -> T.assign design p g) in
        let ok = match T.check design g a with Ok () -> true | Error _ -> false in
        let hp = T.hpwl_with_terminals design p g a in
        Printf.printf
          "  terminal %2dx%-2d spacing %2d: %4dx%-4d slots, added WL %6d, 3D \
           HPWL %.0f, valid %b (%.3fs)\n"
          size size spacing g.T.nx g.T.ny a.T.total_cost hp ok dt
      end)
    [ (2, 2); (4, 4); (6, 2); (8, 8) ];
  print_endline
    "(coarser terminal grids force terminals farther from their nets:\n\
    \ added wirelength grows with the pitch, as in the ICCAD contests)"
