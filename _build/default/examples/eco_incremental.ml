(* Incremental legalization after an ECO: gate sizing grows some cells'
   context (modelled as repositioning a group), and the flow-based
   legalizer repairs the placement with minimal perturbation — "our
   flow-based legalizer enables incremental legalization inherently"
   (§III-E), the property the cycle-canceling post-optimization builds on.

     dune exec examples/eco_incremental.exe *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d

let () =
  let design = Gen.generate_by_name ~scale:0.08 Spec.Iccad2023 "case2" in
  let n = Design.n_cells design in
  Printf.printf "eco_incremental: %s (%d cells)\n" design.Design.name n;

  (* Initial signoff legalization. *)
  let base = (Flow3d.legalize design).Flow3d.placement in
  Printf.printf "  base placement legal: %b\n"
    (Tdf_metrics.Legality.is_legal design base);

  (* ECO: a timing fix clusters 3%% of the cells near one hot net. *)
  let rng = Tdf_util.Prng.of_string "eco" in
  let perturbed = Placement.copy base in
  let outline = (Design.die design 0).Tdf_netlist.Die.outline in
  let hx = outline.Tdf_geometry.Rect.w / 2
  and hy = outline.Tdf_geometry.Rect.h / 2 in
  let moved = ref [] in
  for _ = 1 to max 1 (n / 33) do
    let c = Tdf_util.Prng.int rng n in
    perturbed.Placement.x.(c) <- hx + Tdf_util.Prng.int rng 20;
    perturbed.Placement.y.(c) <- hy + Tdf_util.Prng.int rng 20;
    moved := c :: !moved
  done;
  Printf.printf "  ECO moved %d cells into a %dx%d window (now overlapping)\n"
    (List.length !moved) 20 20;

  (* Re-legalize from the perturbed placement. *)
  let r = Flow3d.legalize_from design perturbed in
  let repaired = r.Flow3d.placement in
  Printf.printf "  repaired legal: %b (augmentations %d)\n"
    (Tdf_metrics.Legality.is_legal design repaired)
    r.Flow3d.stats.Flow3d.augmentations;

  (* Perturbation metric: how many untouched cells changed position? *)
  let touched = Array.make n false in
  List.iter (fun c -> touched.(c) <- true) !moved;
  let disturbed = ref 0 and total_shift = ref 0 in
  for c = 0 to n - 1 do
    if not touched.(c) then begin
      let dx = abs (repaired.Placement.x.(c) - base.Placement.x.(c)) in
      let dy = abs (repaired.Placement.y.(c) - base.Placement.y.(c)) in
      if dx + dy > 0 then begin
        incr disturbed;
        total_shift := !total_shift + dx + dy
      end
    end
  done;
  Printf.printf
    "  untouched cells disturbed: %d of %d (%.1f%%), avg shift %.2f units\n"
    !disturbed
    (n - List.length !moved)
    (100. *. float_of_int !disturbed /. float_of_int (n - List.length !moved))
    (if !disturbed = 0 then 0.
     else float_of_int !total_shift /. float_of_int !disturbed)
