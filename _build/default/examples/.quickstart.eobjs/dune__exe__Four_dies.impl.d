examples/four_dies.ml: Array Printf Tdf_geometry Tdf_grid Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
