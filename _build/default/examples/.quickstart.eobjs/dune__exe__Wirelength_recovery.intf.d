examples/wirelength_recovery.mli:
