examples/bonding_terminals.mli:
