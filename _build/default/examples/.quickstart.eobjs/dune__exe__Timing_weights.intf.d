examples/timing_weights.mli:
