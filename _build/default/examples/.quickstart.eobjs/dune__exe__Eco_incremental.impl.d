examples/eco_incremental.ml: Array List Printf Tdf_benchgen Tdf_geometry Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
