examples/quickstart.mli:
