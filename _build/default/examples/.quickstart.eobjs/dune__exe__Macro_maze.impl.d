examples/macro_maze.ml: Array Printf Tdf_geometry Tdf_io Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
