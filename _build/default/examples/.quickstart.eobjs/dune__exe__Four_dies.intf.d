examples/four_dies.mli:
