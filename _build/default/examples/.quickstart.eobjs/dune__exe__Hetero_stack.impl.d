examples/hetero_stack.ml: Array List Printf Tdf_benchgen Tdf_grid Tdf_legalizer Tdf_metrics Tdf_netlist
