examples/eco_incremental.mli:
