examples/bonding_terminals.ml: Array List Printf Tdf_benchgen Tdf_bonding Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
