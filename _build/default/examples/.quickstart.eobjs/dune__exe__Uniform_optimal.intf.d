examples/uniform_optimal.mli:
