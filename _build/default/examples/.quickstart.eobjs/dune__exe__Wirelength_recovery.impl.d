examples/wirelength_recovery.ml: Array List Printf Tdf_benchgen Tdf_experiments Tdf_metrics Tdf_netlist Tdf_refine
