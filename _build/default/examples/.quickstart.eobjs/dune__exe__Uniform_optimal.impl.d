examples/uniform_optimal.ml: Array Printf Tdf_flow Tdf_geometry Tdf_grid Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
