examples/hetero_stack.mli:
