examples/timing_weights.ml: Array List Printf Tdf_geometry Tdf_legalizer Tdf_metrics Tdf_netlist Tdf_util
