examples/macro_maze.mli:
