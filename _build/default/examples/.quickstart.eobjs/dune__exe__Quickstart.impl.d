examples/quickstart.ml: Array Printf Tdf_geometry Tdf_legalizer Tdf_metrics Tdf_netlist
