(* Quickstart: build a tiny two-die design by hand, legalize it with
   3D-Flow, and inspect the result.

     dune exec examples/quickstart.exe *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Design = Tdf_netlist.Design
module Flow3d = Tdf_legalizer.Flow3d

let () =
  (* Two 200x80 dies, row height 10 (F2F stack, homogeneous technology). *)
  let die index =
    Die.make ~index ~outline:(Rect.make ~x:0 ~y:0 ~w:200 ~h:80) ~row_height:10 ()
  in
  (* Twenty width-8 cells dropped by a "global placer" at almost the same
     spot — heavily overlapping, with a fuzzy die preference z. *)
  let cells =
    Array.init 20 (fun id ->
        Cell.make ~id ~widths:[| 8; 8 |]
          ~gp_x:(96 + (id mod 3))
          ~gp_y:(38 + (id mod 5))
          ~gp_z:(0.3 +. (0.02 *. float_of_int id))
          ())
  in
  let design = Design.make ~name:"quickstart" ~dies:[| die 0; die 1 |] ~cells () in

  (* Legalize: resolves bin overflow with min-cost augmenting paths on the
     3D grid graph, then places each row with Abacus PlaceRow. *)
  let result = Flow3d.legalize design in
  let p = result.Flow3d.placement in

  let summary = Tdf_metrics.Displacement.summary design p in
  let report = Tdf_metrics.Legality.check design p in
  Printf.printf "quickstart: %d cells legalized\n" (Design.n_cells design);
  Printf.printf "  legal:            %b (%d violations)\n"
    (report.Tdf_metrics.Legality.n_violations = 0)
    report.Tdf_metrics.Legality.n_violations;
  Printf.printf "  avg displacement: %.3f rows\n"
    summary.Tdf_metrics.Displacement.avg_norm;
  Printf.printf "  max displacement: %.2f rows\n"
    summary.Tdf_metrics.Displacement.max_norm;
  Printf.printf "  cells moved to the other die: %d\n"
    result.Flow3d.stats.Flow3d.d2d_cells;
  print_newline ();
  Printf.printf "cell  die  x    y   (initial x y z)\n";
  for c = 0 to Design.n_cells design - 1 do
    let cell = Design.cell design c in
    Printf.printf "%4d  %3d  %3d  %3d  (%d %d %.2f)\n" c
      p.Tdf_netlist.Placement.die.(c)
      p.Tdf_netlist.Placement.x.(c)
      p.Tdf_netlist.Placement.y.(c)
      cell.Cell.gp_x cell.Cell.gp_y cell.Cell.gp_z
  done
