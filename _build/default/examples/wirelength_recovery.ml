(* Post-legalization wirelength recovery: the legalizer minimizes
   displacement; a refinement pass (slides, adjacent reorders,
   interchangeable swaps — all strictly legal) then claws back HPWL, the
   quantity Fig. 7 reports.

     dune exec examples/wirelength_recovery.exe *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Runner = Tdf_experiments.Runner
module R = Tdf_refine.Refine

let () =
  let design = Gen.generate_by_name ~scale:0.1 Spec.Iccad2023 "case2" in
  Printf.printf "wirelength_recovery: %s (%d cells, %d nets)\n"
    design.Tdf_netlist.Design.name
    (Tdf_netlist.Design.n_cells design)
    (Array.length design.Tdf_netlist.Design.nets);
  let gp_hpwl = Tdf_metrics.Hpwl.of_global design in
  Printf.printf "  global-placement HPWL: %.0f\n" gp_hpwl;
  Printf.printf "%-9s %12s %12s %10s %10s %7s %6s\n" "method" "HPWL(legal)"
    "HPWL(ref.)" "avg.disp" "disp(ref.)" "moves" "legal";
  List.iter
    (fun m ->
      let p = Runner.legalize_with m design in
      let before = Tdf_metrics.Hpwl.of_placement design p in
      let disp0 = (Tdf_metrics.Displacement.summary design p).Tdf_metrics.Displacement.avg_norm in
      let r = R.run design p in
      let after = r.R.hpwl_after in
      let disp1 = (Tdf_metrics.Displacement.summary design p).Tdf_metrics.Displacement.avg_norm in
      Printf.printf "%-9s %12.0f %12.0f %10.3f %10.3f %7d %6b\n"
        (Runner.method_name m) before after disp0 disp1
        (r.R.slides + r.R.swaps)
        (Tdf_metrics.Legality.is_legal design p))
    [ Runner.Tetris; Runner.Abacus; Runner.Bonn; Runner.Ours ];
  Printf.printf
    "(every placement stays strictly legal; HPWL can even drop below the\n\
    \ global placement's %.0f because the synthetic GP is not\n\
    \ wirelength-optimized.  Refinement trades displacement for HPWL.)\n"
    gp_hpwl
