(* Timing-criticality weights: legalization runs right after timing
   optimization (§I), so displacing a critical cell can destroy the fix.
   Cell movement weights make critical cells expensive to move for the
   flow search, PlaceRow and the baselines; this example measures how much
   less the critical subset moves when its weight is raised.

     dune exec examples/timing_weights.exe *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d

let build ~critical_weight =
  let dies =
    Array.init 2 (fun index ->
        Die.make ~index ~outline:(Rect.make ~x:0 ~y:0 ~w:220 ~h:80) ~row_height:10 ())
  in
  let rng = Tdf_util.Prng.of_string "timing_weights" in
  let cells =
    Array.init 320 (fun id ->
        let critical = id mod 10 = 0 in
        Cell.make ~id
          ~weight:(if critical then critical_weight else 1.0)
          ~widths:[| 5; 5 |]
          ~gp_x:(80 + Tdf_util.Prng.int rng 60)
          ~gp_y:(25 + Tdf_util.Prng.int rng 30)
          ~gp_z:(Tdf_util.Prng.float rng 1.0)
          ())
  in
  Design.make ~name:"timing" ~dies ~cells ()

let critical_avg design p =
  let sum = ref 0. and count = ref 0 in
  for c = 0 to Design.n_cells design - 1 do
    if c mod 10 = 0 then begin
      sum := !sum +. Tdf_metrics.Displacement.per_cell design p c;
      incr count
    end
  done;
  !sum /. float_of_int !count

let () =
  Printf.printf "timing_weights: 320 cells, every 10th timing-critical\n";
  Printf.printf "%-10s %12s %12s %10s %7s\n" "weight" "crit.avg" "other.avg"
    "wavg" "legal";
  List.iter
    (fun w ->
      let design = build ~critical_weight:w in
      let p = (Flow3d.legalize design).Flow3d.placement in
      let s = Tdf_metrics.Displacement.summary design p in
      let crit = critical_avg design p in
      let n = Design.n_cells design in
      let others =
        ((s.Tdf_metrics.Displacement.avg_norm *. float_of_int n)
        -. (crit *. float_of_int (n / 10)))
        /. float_of_int (n - (n / 10))
      in
      Printf.printf "%-10.1f %12.3f %12.3f %10.3f %7b\n" w crit others
        s.Tdf_metrics.Displacement.avg_weighted
        (Tdf_metrics.Legality.is_legal design p))
    [ 1.0; 2.0; 4.0; 8.0; 16.0 ];
  print_endline
    "(critical-subset displacement should fall as its weight rises, paid for\n\
    \ by ordinary cells; the placement stays legal throughout)"
