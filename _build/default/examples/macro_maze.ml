(* Macro-heavy floorplan (ICCAD 2023 style): macros split placement rows
   into segments; the flow must route overflow around the blockages and
   the post-optimization pulls back the cells stranded at macro borders.

     dune exec examples/macro_maze.exe *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Design = Tdf_netlist.Design
module Config = Tdf_legalizer.Config
module Flow3d = Tdf_legalizer.Flow3d

let () =
  (* A 300x120 stack with a wall of macros through the middle of die 0 and
     a plug in the center of die 1. *)
  let die index =
    Die.make ~index ~outline:(Rect.make ~x:0 ~y:0 ~w:300 ~h:120) ~row_height:12 ()
  in
  let macros =
    [|
      Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:60 ~y:36 ~w:80 ~h:48) ();
      Blockage.make ~id:1 ~die:0 ~rect:(Rect.make ~x:170 ~y:36 ~w:80 ~h:48) ();
      Blockage.make ~id:2 ~die:1 ~rect:(Rect.make ~x:110 ~y:48 ~w:80 ~h:24) ();
    |]
  in
  (* A global placer dropped a dense blob right on top of the die-0 wall. *)
  let rng = Tdf_util.Prng.of_string "macro_maze" in
  let cells =
    Array.init 220 (fun id ->
        Cell.make ~id ~widths:[| 5; 5 |]
          ~gp_x:(120 + Tdf_util.Prng.int rng 70)
          ~gp_y:(40 + Tdf_util.Prng.int rng 40)
          ~gp_z:(Tdf_util.Prng.float rng 1.0)
          ())
  in
  let design = Design.make ~name:"macro_maze" ~dies:[| die 0; die 1 |] ~cells ~macros () in

  let show name result =
    let p = result.Flow3d.placement in
    let s = Tdf_metrics.Displacement.summary design p in
    Printf.printf "  %-22s legal=%b avg=%.3f max=%.2f d2d=%d\n" name
      (Tdf_metrics.Legality.is_legal design p)
      s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm
      result.Flow3d.stats.Flow3d.d2d_cells
  in
  Printf.printf "macro_maze: %d cells, %d macros, blob on the die-0 wall\n"
    (Array.length cells) (Array.length macros);
  show "3D-Flow" (Flow3d.legalize design);
  show "3D-Flow w/o post-opt"
    (Flow3d.legalize ~cfg:{ Config.default with Config.post_opt = false } design);
  show "w/o D2D" (Flow3d.legalize ~cfg:Config.no_d2d design);

  (* Visualize both dies. *)
  let p = (Flow3d.legalize design).Flow3d.placement in
  Tdf_io.Svg.save_die "macro_maze_die0.svg" design p ~die:0
    ~title:"macro_maze, bottom die" ();
  Tdf_io.Svg.save_die "macro_maze_die1.svg" design p ~die:1
    ~title:"macro_maze, top die (blue: from bottom)" ();
  print_endline "  wrote macro_maze_die0.svg / macro_maze_die1.svg"
