(* Uniform cell widths: §III-A notes that legalization then reduces to a
   polynomial minimum-cost flow problem.  This example builds the exact
   transportation problem (cells × bin slots) with the generic MCMF
   substrate, solves it optimally, and compares 3D-Flow's displacement
   against that lower bound.

     dune exec examples/uniform_optimal.exe *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module G = Tdf_grid.Grid
module Mcmf = Tdf_flow.Mcmf
module Flow3d = Tdf_legalizer.Flow3d

let cell_width = 5

let build_design () =
  let dies =
    Array.init 2 (fun index ->
        Die.make ~index ~outline:(Rect.make ~x:0 ~y:0 ~w:150 ~h:60) ~row_height:10 ())
  in
  let rng = Tdf_util.Prng.of_string "uniform_optimal" in
  let cells =
    Array.init 150 (fun id ->
        Cell.make ~id ~widths:[| cell_width; cell_width |]
          ~gp_x:(50 + Tdf_util.Prng.int rng 50)
          ~gp_y:(20 + Tdf_util.Prng.int rng 20)
          ~gp_z:(Tdf_util.Prng.float rng 1.0)
          ())
  in
  Design.make ~name:"uniform" ~dies ~cells ()

(* Exact lower bound: assign every cell to a bin slot at minimum total
   estimated displacement (bin-granular cost, Eq. 4). *)
let optimal_assignment_cost design =
  let grid = G.build design ~bin_width:(Flow3d.flow_bin_width design ~factor:10.) in
  let n_cells = Design.n_cells design in
  let n_bins = G.n_bins grid in
  (* vertices: 0 = source, 1..n_cells = cells, then bins, then sink *)
  let cell_v c = 1 + c in
  let bin_v b = 1 + n_cells + b in
  let sink = 1 + n_cells + n_bins in
  let g = Mcmf.create (sink + 1) in
  for c = 0 to n_cells - 1 do
    ignore (Mcmf.add_edge g ~src:0 ~dst:(cell_v c) ~cap:1 ~cost:0);
    Array.iter
      (fun (b : G.bin) ->
        ignore
          (Mcmf.add_edge g ~src:(cell_v c) ~dst:(bin_v b.G.id) ~cap:1
             ~cost:(G.est_disp grid ~cell:c b)))
      grid.G.bins
  done;
  Array.iter
    (fun (b : G.bin) ->
      let slots = G.cap b / cell_width in
      if slots > 0 then
        ignore (Mcmf.add_edge g ~src:(bin_v b.G.id) ~dst:sink ~cap:slots ~cost:0))
    grid.G.bins;
  let flow, cost = Mcmf.min_cost_flow g ~source:0 ~sink () in
  assert (flow = n_cells);
  cost

let () =
  let design = build_design () in
  Printf.printf "uniform_optimal: %d cells of width %d on two dies\n"
    (Design.n_cells design) cell_width;

  let lower_bound = optimal_assignment_cost design in
  let result = Flow3d.legalize design in
  let p = result.Flow3d.placement in
  let total_disp = ref 0 in
  for c = 0 to Design.n_cells design - 1 do
    total_disp := !total_disp + Placement.displacement design p c
  done;
  Printf.printf "  optimal bin-assignment cost (MCMF): %d units\n" lower_bound;
  Printf.printf "  3D-Flow realized displacement:      %d units\n" !total_disp;
  Printf.printf "  ratio vs exact lower bound:         %.3fx\n"
    (float_of_int !total_disp /. float_of_int (max 1 lower_bound));
  Printf.printf "  legal: %b\n" (Tdf_metrics.Legality.is_legal design p)
