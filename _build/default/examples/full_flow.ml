(* The complete physical-design flow the paper sits in:

     netlist  ->  true-3D global placement (lib/placer, as [18]/[19])
              ->  3D-Flow legalization (lib/legalizer, the paper)
              ->  detailed refinement (lib/refine)
              ->  hybrid-bonding terminal assignment (lib/bonding)

     dune exec examples/full_flow.exe *)

module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Gp3d = Tdf_placer.Gp3d
module Flow3d = Tdf_legalizer.Flow3d
module R = Tdf_refine.Refine
module T = Tdf_bonding.Terminal

let () =
  (* 1. netlist: reuse the case generator's structure, discarding its
     synthetic placement — the placer computes its own. *)
  let skeleton = Gen.generate_by_name ~scale:0.08 Spec.Iccad2023 "case2" in
  Printf.printf "full_flow: %d cells, %d nets, %d macros\n"
    (Tdf_netlist.Design.n_cells skeleton)
    (Array.length skeleton.Tdf_netlist.Design.nets)
    (Array.length skeleton.Tdf_netlist.Design.macros);

  (* 2. global placement *)
  let gp = Gp3d.place ~iterations:50 skeleton in
  let first = List.nth gp.Gp3d.hpwl_trace 0 in
  let last = List.nth gp.Gp3d.hpwl_trace (List.length gp.Gp3d.hpwl_trace - 1) in
  Printf.printf "  [gp3d]    HPWL %.0f -> %.0f over %d iterations\n" first last
    (List.length gp.Gp3d.hpwl_trace);
  let design = Gp3d.apply skeleton gp in

  (* 3. legalization *)
  let r = Flow3d.legalize design in
  let p = r.Flow3d.placement in
  let s = Tdf_metrics.Displacement.summary design p in
  Printf.printf "  [3D-Flow] legal=%b avg disp %.3f rows, max %.2f rows, %d D2D moves\n"
    (Tdf_metrics.Legality.is_legal design p)
    s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm
    r.Flow3d.stats.Flow3d.d2d_cells;

  (* 4. refinement *)
  let rr = R.run design p in
  Printf.printf "  [refine]  HPWL %.0f -> %.0f (%d moves), still legal=%b\n"
    rr.R.hpwl_before rr.R.hpwl_after
    (rr.R.slides + rr.R.swaps)
    (Tdf_metrics.Legality.is_legal design p);

  (* 5. bonding terminals for the cut nets *)
  let g = T.make_grid design ~size:4 ~spacing:2 in
  let cut = List.length (T.cut_nets design p) in
  if cut <= g.T.nx * g.T.ny then begin
    let a = T.assign design p g in
    Printf.printf "  [bonding] %d cut nets -> terminals, added WL %d, valid=%b\n" cut
      a.T.total_cost
      (T.check design g a = Ok ());
    Printf.printf "  [total]   3D HPWL incl. terminals: %.0f\n"
      (T.hpwl_with_terminals design p g a)
  end
  else Printf.printf "  [bonding] skipped: %d cut nets > %d slots\n" cut (g.T.nx * g.T.ny)
