(* The resilient pipeline: preflight validation, budgets, fault injection,
   and the retry/fallback chain (ISSUE: robustness tentpole). *)

module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell
module Net = Tdf_netlist.Net
module Validate = Tdf_robust.Validate
module Fault = Tdf_robust.Fault
module Pipeline = Tdf_robust.Pipeline
module Error = Tdf_robust.Error
module Legality = Tdf_metrics.Legality
module Budget = Tdf_util.Budget

let with_fixture f =
  Fault.reset ();
  Fun.protect f ~finally:Fault.reset

(* ---- preflight ----------------------------------------------------- *)

let test_validate_clean () =
  let d = Fixtures.clustered () in
  Alcotest.(check int) "no issues" 0 (List.length (Validate.design d))

let test_validate_nan_gp_z () =
  let d = Fixtures.clustered () in
  let cells = Array.copy d.Design.cells in
  cells.(3) <-
    Fixtures.cell ~id:3 ~x:50 ~y:11 ~z:Float.nan ();
  let bad = Design.make ~name:"nan" ~dies:d.Design.dies ~cells () in
  let issues = Validate.design bad in
  Alcotest.(check bool) "nan-gp-z reported" true
    (List.exists (fun i -> i.Validate.code = "nan-gp-z") issues);
  Alcotest.(check bool) "fatal" true (Validate.fatal issues <> [])

let test_validate_degenerate_net () =
  let d = Fixtures.clustered () in
  let nets = [| Net.make ~id:0 ~pins:[| 2 |] () |] in
  let bad =
    Design.make ~name:"degen" ~dies:d.Design.dies ~cells:d.Design.cells ~nets ()
  in
  let issues = Validate.design bad in
  Alcotest.(check bool) "degenerate-net reported" true
    (List.exists (fun i -> i.Validate.code = "degenerate-net") issues);
  Alcotest.(check int) "warning only" 0 (List.length (Validate.fatal issues))

let test_repair_idempotent () =
  let d = Fixtures.clustered () in
  let d', repairs = Validate.repair d in
  Alcotest.(check int) "clean design untouched" 0 (List.length repairs);
  Alcotest.(check bool) "same value" true (d == d')

let test_repair_fixes_corruption () =
  let d = Fixtures.random 42 in
  let bad, faults = Fault.corrupt ~seed:11 d in
  Alcotest.(check bool) "faults applied" true (faults <> []);
  let repaired, repairs = Validate.repair bad in
  Alcotest.(check bool) "repairs reported" true (repairs <> []);
  Alcotest.(check int) "repaired design is fatal-free" 0
    (List.length (Validate.fatal (Validate.design repaired)));
  (* net ids must stay dense after drops: Design.validate checks pins;
     check ids explicitly *)
  Array.iteri
    (fun i (n : Net.t) -> Alcotest.(check int) "net id dense" i n.Net.id)
    repaired.Design.nets

(* ---- pipeline: corrupt input rejected with a typed error ----------- *)

let test_pipeline_rejects_corrupt () =
  with_fixture @@ fun () ->
  (* a NaN gp_z is a fatal preflight issue: the pipeline must refuse it
     with a typed error, never an uncaught exception *)
  let d = Fixtures.clustered () in
  let cells = Array.copy d.Design.cells in
  cells.(0) <- Fixtures.cell ~id:0 ~x:50 ~y:11 ~z:Float.nan ();
  let bad = Design.make ~name:"bad" ~dies:d.Design.dies ~cells () in
  match Pipeline.run bad with
  | Ok _ -> Alcotest.fail "corrupt design accepted"
  | Error e ->
    Alcotest.(check string) "preflight phase" "preflight"
      (Error.phase_name e.Error.phase);
    Alcotest.(check string) "nan code" "nan-gp-z" e.Error.code

let test_pipeline_strict_rejects_warning () =
  with_fixture @@ fun () ->
  let d = Fixtures.clustered () in
  let nets = [| Net.make ~id:0 ~pins:[| 2 |] () |] in
  let warn =
    Design.make ~name:"warn" ~dies:d.Design.dies ~cells:d.Design.cells ~nets ()
  in
  (match Pipeline.run warn with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("warnings must not block by default: " ^ Error.to_string e));
  match
    Pipeline.run ~opts:{ Pipeline.default_options with strict = true } warn
  with
  | Ok _ -> Alcotest.fail "strict mode accepted a design with warnings"
  | Error e ->
    Alcotest.(check string) "strict preflight" "preflight"
      (Error.phase_name e.Error.phase)

let test_pipeline_repairs_corrupt () =
  with_fixture @@ fun () ->
  let d = Fixtures.random 8 in
  let bad, _ = Fault.corrupt ~seed:13 d in
  match
    Pipeline.run ~opts:{ Pipeline.default_options with repair = true } bad
  with
  | Error e -> Alcotest.fail ("repair mode failed: " ^ Error.to_string e)
  | Ok r ->
    Alcotest.(check bool) "legal after repair" true
      (Legality.is_legal r.Pipeline.design r.Pipeline.placement)

(* ---- pipeline: forced solver failure degrades to Tetris ------------- *)

let test_forced_failure_falls_back () =
  with_fixture @@ fun () ->
  let d = Fixtures.random 21 in
  (* two charges: the primary run AND the relaxed retry both fail *)
  Fault.force_failure ~times:2 "flow3d.flow_pass";
  match Pipeline.run d with
  | Error e -> Alcotest.fail ("expected fallback, got: " ^ Error.to_string e)
  | Ok r ->
    Alcotest.(check int) "both injected faults fired" 2
      (Fault.fired "flow3d.flow_pass");
    Alcotest.(check string) "tetris path" "tetris-fallback"
      (Pipeline.path_name r.Pipeline.path);
    Alcotest.(check int) "three attempts" 3 r.Pipeline.attempts;
    Alcotest.(check bool) "final placement legal" true
      (Legality.is_legal r.Pipeline.design r.Pipeline.placement)

let test_forced_failure_retry_succeeds () =
  with_fixture @@ fun () ->
  let d = Fixtures.random 22 in
  Fault.force_failure ~times:1 "flow3d.flow_pass";
  match Pipeline.run d with
  | Error e -> Alcotest.fail ("expected retry, got: " ^ Error.to_string e)
  | Ok r ->
    Alcotest.(check string) "relaxed path" "relaxed-retry"
      (Pipeline.path_name r.Pipeline.path);
    Alcotest.(check bool) "legal" true
      (Legality.is_legal r.Pipeline.design r.Pipeline.placement)

let test_no_fallback_reports_error () =
  with_fixture @@ fun () ->
  let d = Fixtures.random 23 in
  Fault.force_failure "flow3d.flow_pass";
  match
    Pipeline.run ~opts:{ Pipeline.default_options with fallback = false } d
  with
  | Ok _ -> Alcotest.fail "expected the injected failure to surface"
  | Error e ->
    Alcotest.(check string) "flow phase" "flow" (Error.phase_name e.Error.phase);
    Alcotest.(check string) "injected code" "injected" e.Error.code

(* ---- pipeline: exhausted budget yields a best-effort fallback ------- *)

(* 40 six-wide cells piled on one point: without the flow phase (budget 0
   kills it) they all land in one row segment and PlaceRow cannot resolve
   the overflow, so the primary and relaxed attempts are illegal and the
   pipeline must degrade to Tetris. *)
let dense_pileup () =
  let cells =
    Array.init 40 (fun id ->
        Fixtures.cell ~id ~w0:6 ~w1:6 ~x:50 ~y:11 ~z:0.1 ())
  in
  Design.make ~name:"dense_pileup" ~dies:(Fixtures.two_dies ()) ~cells ()

let test_budget_zero_best_effort () =
  with_fixture @@ fun () ->
  let agg = Tdf_telemetry.Aggregate.create () in
  Tdf_telemetry.with_sink (Tdf_telemetry.Aggregate.sink agg) @@ fun () ->
  let d = dense_pileup () in
  match
    Pipeline.run ~opts:{ Pipeline.default_options with budget_ms = Some 0 } d
  with
  | Error e -> Alcotest.fail ("budget run errored: " ^ Error.to_string e)
  | Ok r ->
    Alcotest.(check bool) "a placement came back" true
      (Tdf_netlist.Placement.n_cells r.Pipeline.placement = Design.n_cells d);
    Alcotest.(check bool) "fallback chain engaged" true
      (Tdf_telemetry.Aggregate.counter_total agg "robust.fallbacks" > 0);
    Alcotest.(check bool) "tetris result is legal" true
      (Legality.is_legal r.Pipeline.design r.Pipeline.placement)

let test_budget_unlimited_primary () =
  with_fixture @@ fun () ->
  let d = Fixtures.random 33 in
  match Pipeline.run d with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok r ->
    Alcotest.(check string) "primary path" "primary"
      (Pipeline.path_name r.Pipeline.path);
    Alcotest.(check int) "one attempt" 1 r.Pipeline.attempts;
    Alcotest.(check bool) "stats present" true (r.Pipeline.stats <> None)

(* ---- mcmf: typed negative-cycle error ------------------------------ *)

let test_mcmf_negative_cycle_typed () =
  let module Mcmf = Tdf_flow.Mcmf in
  (* 0 -> 1 -> 2 -> 1 with a negative cycle between 1 and 2 *)
  let g = Mcmf.create 4 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:0);
  ignore (Mcmf.add_edge g ~src:1 ~dst:2 ~cap:5 ~cost:(-4));
  ignore (Mcmf.add_edge g ~src:2 ~dst:1 ~cap:5 ~cost:1);
  ignore (Mcmf.add_edge g ~src:2 ~dst:3 ~cap:1 ~cost:0);
  match Mcmf.solve g ~source:0 ~sink:3 () with
  | Ok _ -> Alcotest.fail "negative cycle not detected"
  | Error (Mcmf.Negative_cycle arcs) ->
    Alcotest.(check bool) "offending arcs reported" true (arcs <> []);
    Alcotest.(check bool) "the -4 arc is in the set" true
      (List.exists (fun (a : Mcmf.arc) -> a.Mcmf.a_cost = -4) arcs)

let test_mcmf_injected_failure () =
  with_fixture @@ fun () ->
  let module Mcmf = Tdf_flow.Mcmf in
  let g = Mcmf.create 2 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:1 ~cost:1);
  Fault.force_failure "mcmf.solve";
  (match Mcmf.solve g ~source:0 ~sink:1 () with
  | Ok _ -> Alcotest.fail "injected mcmf failure did not fire"
  | Error (Mcmf.Negative_cycle arcs) ->
    Alcotest.(check int) "no arcs on injected failure" 0 (List.length arcs));
  (* disarmed now: the same solve succeeds *)
  match Mcmf.solve g ~source:0 ~sink:1 () with
  | Ok s ->
    Alcotest.(check int) "flow" 1 s.Mcmf.flow;
    Alcotest.(check bool) "complete" true s.Mcmf.complete
  | Error _ -> Alcotest.fail "solver still failing after disarm"

let test_mcmf_budget_partial () =
  with_fixture @@ fun () ->
  let module Mcmf = Tdf_flow.Mcmf in
  let g = Mcmf.create 2 in
  ignore (Mcmf.add_edge g ~src:0 ~dst:1 ~cap:3 ~cost:1);
  Fault.force_timeout "mcmf";
  match Mcmf.solve g ~source:0 ~sink:1 ~budget:(Budget.create ()) () with
  | Error _ -> Alcotest.fail "timeout must not be an error"
  | Ok s ->
    Alcotest.(check bool) "incomplete" false s.Mcmf.complete;
    Alcotest.(check bool) "partial flow" true (s.Mcmf.flow < 3)

(* ---- budgets and failpoints ---------------------------------------- *)

let test_budget_latches () =
  let b = Budget.create ~max_ops:2 () in
  Alcotest.(check bool) "fresh" false (Budget.exhausted b);
  Budget.tick b 5;
  Alcotest.(check bool) "over ops" true (Budget.exhausted b);
  Alcotest.(check bool) "latched" true (Budget.exhausted b);
  Alcotest.(check bool) "unlimited never exhausts" false
    (Budget.exhausted Budget.unlimited)

let test_failpoint_charges () =
  with_fixture @@ fun () ->
  Fault.force_failure ~times:2 "site.x";
  Alcotest.(check bool) "fires 1" true (Tdf_util.Failpoint.fire "site.x");
  Alcotest.(check bool) "fires 2" true (Tdf_util.Failpoint.fire "site.x");
  Alcotest.(check bool) "spent" false (Tdf_util.Failpoint.fire "site.x");
  Alcotest.(check int) "count" 2 (Fault.fired "site.x")

(* ---- io: raising entry points -------------------------------------- *)

let test_io_exn_entries () =
  let d = Fixtures.clustered () in
  let text = Tdf_io.Text.design_to_string d in
  let d' = Tdf_io.Text.read_design_exn text in
  Alcotest.(check int) "round trip" (Design.n_cells d) (Design.n_cells d');
  Alcotest.(check bool) "bad input raises Failure" true
    (match Tdf_io.Text.read_design_exn "die 0 oops" with
    | exception Failure _ -> true
    | _ -> false);
  Alcotest.(check bool) "contest bad input raises Failure" true
    (match Tdf_io.Contest.read_exn "NumTechnologies nope" with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  [
    Alcotest.test_case "validate clean design" `Quick test_validate_clean;
    Alcotest.test_case "validate NaN gp_z" `Quick test_validate_nan_gp_z;
    Alcotest.test_case "validate degenerate net" `Quick
      test_validate_degenerate_net;
    Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
    Alcotest.test_case "repair fixes corruption" `Quick
      test_repair_fixes_corruption;
    Alcotest.test_case "pipeline rejects corrupt input" `Quick
      test_pipeline_rejects_corrupt;
    Alcotest.test_case "strict mode rejects warnings" `Quick
      test_pipeline_strict_rejects_warning;
    Alcotest.test_case "pipeline repairs corrupt input" `Quick
      test_pipeline_repairs_corrupt;
    Alcotest.test_case "forced failure x2 -> tetris fallback" `Quick
      test_forced_failure_falls_back;
    Alcotest.test_case "forced failure x1 -> relaxed retry" `Quick
      test_forced_failure_retry_succeeds;
    Alcotest.test_case "no-fallback surfaces the error" `Quick
      test_no_fallback_reports_error;
    Alcotest.test_case "zero budget -> best-effort fallback" `Quick
      test_budget_zero_best_effort;
    Alcotest.test_case "unlimited budget -> primary path" `Quick
      test_budget_unlimited_primary;
    Alcotest.test_case "mcmf negative cycle typed" `Quick
      test_mcmf_negative_cycle_typed;
    Alcotest.test_case "mcmf injected failure" `Quick test_mcmf_injected_failure;
    Alcotest.test_case "mcmf budget partial solve" `Quick
      test_mcmf_budget_partial;
    Alcotest.test_case "budget latches" `Quick test_budget_latches;
    Alcotest.test_case "failpoint charges" `Quick test_failpoint_charges;
    Alcotest.test_case "io _exn entry points" `Quick test_io_exn_entries;
  ]
