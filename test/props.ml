(* In-repo property-based testing harness.

   A deliberately small QCheck-alike built on [Tdf_util.Prng] so property
   runs share the project's reproducibility story: every case derives from
   an integer seed, the default base seed is a stable hash of the property
   name, and a failure report prints the exact seed that regenerates the
   (shrunk) counterexample.  Replay a failing case with

     TDFLOW_PROP_SEED=<seed printed in the failure> dune runtest

   which makes case 0 of every property use that seed — including the one
   that failed.

   Differences from QCheck, on purpose:
   - generators draw from [Tdf_util.Prng.t] (SplitMix64), not [Random];
   - each case is seeded independently ([base + index]), so a failure is
     reproducible without replaying the preceding cases;
   - shrinking is greedy and budgeted: repeatedly take the first shrink
     candidate that still fails, give up after [shrink_budget] steps. *)

module Prng = Tdf_util.Prng

type 'a arb = {
  gen : Prng.t -> 'a;
  shrink : 'a -> 'a list;  (** candidate strictly-smaller values *)
  print : 'a -> string;
}

let make ?(shrink = fun _ -> []) ?(print = fun _ -> "<abstr>") gen =
  { gen; shrink; print }

(* ---- generators --------------------------------------------------- *)

let int_range lo hi =
  if lo > hi then invalid_arg "Props.int_range: lo > hi";
  let shrink x =
    if x <= lo then []
    else
      [ lo; lo + ((x - lo) / 2); x - 1 ]
      |> List.filter (fun c -> c >= lo && c < x)
      |> List.sort_uniq compare
  in
  make ~shrink ~print:string_of_int (fun rng -> Prng.int_in rng lo hi)

let bool =
  make ~print:string_of_bool
    ~shrink:(fun b -> if b then [ false ] else [])
    (fun rng -> Prng.bool rng)

let float_range lo hi =
  if lo > hi then invalid_arg "Props.float_range: lo > hi";
  make
    ~print:(Printf.sprintf "%.17g")
    (fun rng -> lo +. Prng.float rng (hi -. lo))

let pair a b =
  make
    ~shrink:(fun (x, y) ->
      List.map (fun x' -> (x', y)) (a.shrink x)
      @ List.map (fun y' -> (x, y')) (b.shrink y))
    ~print:(fun (x, y) -> Printf.sprintf "(%s, %s)" (a.print x) (b.print y))
    (fun rng ->
      let x = a.gen rng in
      let y = b.gen rng in
      (x, y))

let triple a b c =
  make
    ~shrink:(fun (x, y, z) ->
      List.map (fun x' -> (x', y, z)) (a.shrink x)
      @ List.map (fun y' -> (x, y', z)) (b.shrink y)
      @ List.map (fun z' -> (x, y, z')) (c.shrink z))
    ~print:(fun (x, y, z) ->
      Printf.sprintf "(%s, %s, %s)" (a.print x) (b.print y) (c.print z))
    (fun rng ->
      let x = a.gen rng in
      let y = b.gen rng in
      let z = c.gen rng in
      (x, y, z))

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let set_at i x' l = List.mapi (fun j x -> if j = i then x' else x) l

(* List shrinking tries, in order: first half, dropping single elements
   (first 16 positions), then shrinking elements in place (up to 4
   candidates per position) — bounded so one step stays cheap even for
   long lists of rich elements. *)
let list ?(min_len = 0) ?(max_len = 10) elt =
  if min_len > max_len then invalid_arg "Props.list: min_len > max_len";
  let shrink l =
    let n = List.length l in
    let structural =
      if n <= min_len then []
      else
        (if n / 2 >= min_len && n >= 2 then [ take (n / 2) l ] else [])
        @ List.init (min n 16) (fun i -> remove_at i l)
    in
    let elementwise =
      List.concat
        (List.mapi (fun i x -> List.map (fun x' -> set_at i x' l) (take 4 (elt.shrink x))) l)
    in
    structural @ elementwise
  in
  make ~shrink
    ~print:(fun l -> "[" ^ String.concat "; " (List.map elt.print l) ^ "]")
    (fun rng ->
      let n = Prng.int_in rng min_len max_len in
      List.init n (fun _ -> elt.gen rng))

let array ?min_len ?max_len elt =
  let l = list ?min_len ?max_len elt in
  make
    ~shrink:(fun a -> List.map Array.of_list (l.shrink (Array.to_list a)))
    ~print:(fun a -> l.print (Array.to_list a))
    (fun rng -> Array.of_list (l.gen rng))

(* [map] cannot pull shrink candidates back through [f]; pass [~shrink]
   (in the target domain) when shrinking matters for the property. *)
let map ?shrink ?print f a =
  make ?shrink
    ~print:(match print with Some p -> p | None -> fun _ -> "<map>")
    (fun rng -> f (a.gen rng))

(* ---- runner ------------------------------------------------------- *)

let shrink_budget = 1000

let base_seed name =
  match Sys.getenv_opt "TDFLOW_PROP_SEED" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> Hashtbl.hash name)
  | None -> Hashtbl.hash name

let check ?(count = 100) ?seed ~name arb prop =
  let base = match seed with Some s -> s | None -> base_seed name in
  for i = 0 to count - 1 do
    let case_seed = base + i in
    let rng = Prng.create case_seed in
    let x = arb.gen rng in
    let fails v = match prop v with b -> not b | exception _ -> true in
    if fails x then begin
      let steps = ref 0 in
      let cur = ref x in
      let shrinking = ref true in
      while !shrinking && !steps < shrink_budget do
        match List.find_opt fails (arb.shrink !cur) with
        | Some x' ->
          cur := x';
          incr steps
        | None -> shrinking := false
      done;
      let how =
        match prop !cur with
        | false -> "returned false"
        | true -> "flaky: passed on re-run"
        | exception e -> "raised " ^ Printexc.to_string e
      in
      Alcotest.fail
        (Printf.sprintf
           "property %S failed at case %d/%d (%s)\n\
            counterexample (%d shrink steps): %s\n\
            reproduce: TDFLOW_PROP_SEED=%d dune runtest"
           name i count how !steps (arb.print !cur) case_seed)
    end
  done

let test ?count ?seed name arb prop =
  Alcotest.test_case name `Quick (fun () -> check ?count ?seed ~name arb prop)
