(* The write-ahead journal and crash recovery: CRC-32 vectors, record
   append/reopen round-trips, torn-tail truncation and first-bad-record
   scanning, snapshot atomicity + compaction, lsn monotonicity across
   compaction — then the durability loop through the server itself
   (crash → recover → byte-identical state) and the typed digest-drift
   startup error.  Property cases fuzz the record decoder: random
   payloads, random truncation points and random bit flips must yield a
   clean prefix or a typed result, never an exception. *)

module Journal = Tdf_io.Journal
module Crc32 = Tdf_util.Crc32
module Protocol = Tdf_io.Protocol
module Text = Tdf_io.Text
module Server = Tdf_server.Server
module Flow3d = Tdf_legalizer.Flow3d
module Legality = Tdf_metrics.Legality

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Fresh scratch directory per call; recursively cleared first so a
   crashed previous run cannot leak state into this one. *)
let dir_counter = ref 0

let rec rm_rf p =
  if Sys.file_exists p then
    if Sys.is_directory p then begin
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p

let tmpdir name =
  incr dir_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tdfjrn-%d-%s-%d" (Unix.getpid ()) name !dir_counter)
  in
  rm_rf d;
  d

let open_exn cfg =
  match Journal.open_ cfg with
  | Ok v -> v
  | Error e -> Alcotest.failf "journal open failed: %s" e

let wal dir = Filename.concat dir "wal.log"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- CRC-32 ---------------------------------------------------------- *)

let test_crc_vectors () =
  (* The IEEE 802.3 check value, plus the empty-string identity. *)
  check_int "crc32(123456789)" 0xCBF43926 (Crc32.string "123456789");
  check_int "crc32(empty)" 0 (Crc32.string "");
  check_str "hex rendering" "cbf43926" (Crc32.to_hex (Crc32.string "123456789"));
  (* Streaming in arbitrary chunks must equal the one-shot value. *)
  let s = String.init 257 (fun i -> Char.chr (i * 7 mod 256)) in
  let whole = Crc32.string s in
  for cut = 0 to String.length s do
    let st = Crc32.update_string Crc32.empty ~off:0 ~len:cut s in
    let st = Crc32.update_string st ~off:cut ~len:(String.length s - cut) s in
    if Crc32.value st <> whole then
      Alcotest.failf "chunked crc differs at cut %d" cut
  done;
  (* Reading a value does not finalize the state. *)
  let st = Crc32.update_string Crc32.empty "1234" in
  ignore (Crc32.value st);
  check_int "value is non-consuming" whole
    (Crc32.value (Crc32.update_string (Crc32.update_string Crc32.empty "") s))

(* ---- append / reopen ------------------------------------------------- *)

let payloads3 = [ "a"; "bb"; "ccc\nwith newline" ]

let append_all t = List.map (fun p -> Journal.append t p) payloads3

let test_append_reopen () =
  let cfg = Journal.default_cfg ~dir:(tmpdir "roundtrip") in
  let t, r0 = open_exn cfg in
  check "fresh journal is empty" true
    (r0.Journal.records = [] && r0.Journal.snapshots = []
   && r0.Journal.truncated_bytes = 0);
  check "lsns count from 1" true (append_all t = [ 1; 2; 3 ]);
  check_int "last_lsn" 3 (Journal.last_lsn t);
  Journal.close t;
  Journal.close t (* idempotent *);
  let t, r = open_exn cfg in
  check "records survive reopen" true
    (r.Journal.records = List.mapi (fun i p -> (i + 1, p)) payloads3);
  check_int "no torn bytes" 0 r.Journal.truncated_bytes;
  check_int "lsn resumes" 4 (Journal.append t "dddd");
  Journal.close t

(* ---- torn tails and corruption --------------------------------------- *)

(* Chop [n] bytes off the end of the wal, as a crash mid-write would. *)
let chop dir n =
  let data = read_file (wal dir) in
  write_file (wal dir) (String.sub data 0 (String.length data - n))

let test_torn_tail_truncated () =
  let cfg = Journal.default_cfg ~dir:(tmpdir "torn") in
  let t, _ = open_exn cfg in
  ignore (append_all t);
  Journal.close t;
  chop cfg.Journal.dir 3;
  let t, r = open_exn cfg in
  check "prefix before the tear survives" true
    (List.map snd r.Journal.records = [ "a"; "bb" ]);
  (* The whole torn record goes, not just the chopped bytes: framing is
     8 bytes (len+crc) + 8 bytes lsn + payload. *)
  check_int "torn bytes reported" (16 + String.length "ccc\nwith newline" - 3)
    r.Journal.truncated_bytes;
  (* The tail is physically gone and appending resumes cleanly; the torn
     record's lsn is reclaimed — it was never durably assigned. *)
  check_int "append after truncation" 3 (Journal.append t "recovered");
  Journal.close t;
  let _, r = open_exn cfg in
  check "post-truncation wal is clean" true
    (List.map snd r.Journal.records = [ "a"; "bb"; "recovered" ])

let test_bitflip_stops_scan () =
  let cfg = Journal.default_cfg ~dir:(tmpdir "bitflip") in
  let t, _ = open_exn cfg in
  ignore (append_all t);
  Journal.close t;
  (* Records are 17 and 18 bytes; flip one payload bit of the middle
     record — its CRC fails, so the scan keeps record 1 and drops the
     rest of the log even though record 3 is intact. *)
  let data = Bytes.of_string (read_file (wal cfg.Journal.dir)) in
  Bytes.set data 27 (Char.chr (Char.code (Bytes.get data 27) lxor 0x10));
  write_file (wal cfg.Journal.dir) (Bytes.to_string data);
  let t, r = open_exn cfg in
  check "scan stops at first bad record" true
    (List.map snd r.Journal.records = [ "a" ]);
  check_int "everything after it is truncated" (Bytes.length data - 17)
    r.Journal.truncated_bytes;
  Journal.close t

(* ---- snapshots and compaction ---------------------------------------- *)

let test_snapshot_compact () =
  let cfg = Journal.default_cfg ~dir:(tmpdir "snap") in
  let t, _ = open_exn cfg in
  ignore (Journal.append t "one");
  ignore (Journal.append t "two");
  Journal.save_snapshot t ~session:"s/1" "BLOB-BYTES\n";
  check "snapshot listed" true (Journal.snapshot_sessions t = [ "s/1" ]);
  Journal.compact t;
  Journal.close t;
  let t, r = open_exn cfg in
  check "wal empty after compaction" true (r.Journal.records = []);
  (match r.Journal.snapshots with
  | [ { Journal.snap_session = "s/1"; snap_lsn = 2; blob = "BLOB-BYTES\n" } ] ->
    ()
  | _ -> Alcotest.fail "snapshot did not survive reopen intact");
  (* Lsns are pinned by the snapshot high-water mark: numbering continues
     across compaction, it never restarts. *)
  check_int "lsn continues after compact" 3 (Journal.append t "three");
  Journal.delete_snapshot t ~session:"s/1";
  check "snapshot deleted" true (Journal.snapshot_sessions t = []);
  Journal.close t

(* [max_record] caps wal appends, not snapshots: a session whose blob
   outgrows it must still snapshot, compact and recover — the old
   behavior silently dropped the snapshot on restart, losing the
   session with no error. *)
let test_oversized_snapshot_recovered () =
  let cfg =
    { (Journal.default_cfg ~dir:(tmpdir "snapbig")) with Journal.max_record = 64 }
  in
  let t, _ = open_exn cfg in
  let blob = String.init 1000 (fun i -> Char.chr (33 + (i mod 90))) in
  Journal.save_snapshot t ~session:"big" blob;
  Journal.compact t;
  Journal.close t;
  let t, r = open_exn cfg in
  check_int "no snapshot dropped" 0 r.Journal.dropped_snapshots;
  (match r.Journal.snapshots with
  | [ { Journal.snap_session = "big"; blob = b; _ } ] ->
    check_str "blob intact" blob b
  | _ -> Alcotest.fail "oversized snapshot lost on reopen");
  Journal.close t

let test_snapshot_corruption_dropped () =
  let cfg = Journal.default_cfg ~dir:(tmpdir "snapcorrupt") in
  let t, _ = open_exn cfg in
  Journal.save_snapshot t ~session:"x" "good";
  Journal.close t;
  (* Session "x" is hex 78; garbage in its file must be skipped, counted,
     and must not take the journal down.  A leftover .tmp from an
     interrupted snapshot write is deleted on open. *)
  write_file (Filename.concat cfg.Journal.dir "snap-78.snap") "garbage";
  let leftover = Filename.concat cfg.Journal.dir "snap-79.snap.tmp" in
  write_file leftover "partial";
  let t, r = open_exn cfg in
  check "corrupt snapshot dropped" true (r.Journal.snapshots = []);
  check_int "drop counted" 1 r.Journal.dropped_snapshots;
  check "tmp file cleaned" true (not (Sys.file_exists leftover));
  Journal.close t

(* ---- crash recovery through the server ------------------------------- *)

let sock_path name =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "tdfjrnsrv-%d-%s.sock" (Unix.getpid ()) name)

let journaled_cfg name dir =
  {
    (Server.default_cfg ~socket_path:(sock_path name)) with
    Server.journal = Some (Journal.default_cfg ~dir);
  }

let fixture seed =
  let d = Fixtures.random ~n:40 seed in
  let p = (Flow3d.legalize d).Flow3d.placement in
  check "fixture legal" true (Legality.is_legal d p);
  (d, p)

let load server ~session (d, p) =
  Server.handle server
    (Protocol.Load_design
       {
         session;
         design = Protocol.Text (Text.design_to_string d);
         placement = Some (Protocol.Text (Text.placement_to_string d p));
         tiles = None;
       })

let eco server ~session delta =
  Server.handle server
    (Protocol.Eco
       {
         session;
         delta = Protocol.Text delta;
         radius = None;
         max_widenings = None;
         budget_ms = None;
         jobs = None;
         tiles = None;
         want_placement = false;
       })

let placement_text server ~session =
  match Server.handle server (Protocol.Get_placement { session }) with
  | Ok (Protocol.Placement_text { placement; _ }) -> placement
  | Ok _ -> Alcotest.fail "wrong get-placement reply"
  | Error e -> Alcotest.failf "%s: %s" e.Protocol.code e.Protocol.detail

let expect_ok name = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s: %s" name e.Protocol.code e.Protocol.detail

(* SIGKILL-shaped stop (Server.crash skips the final snapshot), restart
   on the same journal directory, and the recovered session must serve
   the exact placement bytes the dead daemon last acknowledged. *)
let test_crash_recovery_byte_identical () =
  let dir = tmpdir "recover" in
  let server = Server.create (journaled_cfg "rec1" dir) in
  let fx = fixture 67 in
  expect_ok "load" (load server ~session:"s" fx);
  expect_ok "eco1" (eco server ~session:"s" "move 3 10 10 0\n");
  expect_ok "eco2" (eco server ~session:"s" "move 7 60 20 1\n");
  let before = placement_text server ~session:"s" in
  Server.crash server;
  let server = Server.create (journaled_cfg "rec2" dir) in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      (match Server.recovery server with
      | Some r ->
        check_int "one session recovered" 1 r.Server.recovered_sessions;
        check_int "three records replayed" 3 r.Server.replayed_records
      | None -> Alcotest.fail "journaled server reported no recovery");
      check_int "session live after recovery" 1 (Server.live_sessions server);
      check_str "placement bytes identical" before
        (placement_text server ~session:"s");
      (* And the recovered session keeps serving ECOs. *)
      expect_ok "eco after recovery" (eco server ~session:"s" "move 5 30 25 0\n"))

(* A snapshot plus journal suffix recover together: records at or below
   the snapshot lsn are already inside the blob and must be skipped, the
   rest replays on top. *)
let test_snapshot_plus_suffix_recovery () =
  let dir = tmpdir "snapsuffix" in
  let cfg =
    { (journaled_cfg "snap1" dir) with Server.snapshot_every = 2 }
  in
  let server = Server.create cfg in
  let fx = fixture 71 in
  expect_ok "load" (load server ~session:"s" fx);
  expect_ok "eco1" (eco server ~session:"s" "move 3 10 10 0\n");
  (* snapshot+compact happened at record 2; this lands in the suffix. *)
  expect_ok "eco2" (eco server ~session:"s" "move 7 60 20 1\n");
  let before = placement_text server ~session:"s" in
  Server.crash server;
  let server = Server.create (journaled_cfg "snap2" dir) in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      (match Server.recovery server with
      | Some r ->
        check_int "restored from snapshot" 1 r.Server.recovered_sessions;
        check "suffix replayed, prefix skipped" true
          (r.Server.replayed_records <= 1)
      | None -> Alcotest.fail "no recovery stats");
      check_str "snapshot+suffix = pre-crash bytes" before
        (placement_text server ~session:"s"))

(* A budget-capped mutation snapshots immediately after its journal
   append, so recovery restores it from the snapshot and never
   command-replays it — the one op whose replay is timing-dependent
   (wall-clock clipping) must not be able to brick a restart. *)
let test_budget_capped_mutation_never_replays () =
  let dir = tmpdir "budgetsnap" in
  let server = Server.create (journaled_cfg "bud1" dir) in
  expect_ok "load" (load server ~session:"s" (fixture 83));
  let eco_budgeted =
    Server.handle server
      (Protocol.Eco
         {
           session = "s";
           delta = Protocol.Text "move 6 25 15 0\n";
           radius = None;
           max_widenings = None;
           budget_ms = Some 600_000;
           jobs = None;
           tiles = None;
           want_placement = false;
         })
  in
  expect_ok "budgeted eco" eco_budgeted;
  let before = placement_text server ~session:"s" in
  Server.crash server;
  let server = Server.create (journaled_cfg "bud2" dir) in
  Fun.protect
    ~finally:(fun () -> Server.close server)
    (fun () ->
      (match Server.recovery server with
      | Some r ->
        check_int "session recovered" 1 r.Server.recovered_sessions;
        (* The snapshot covers both the load and the budgeted eco:
           nothing is command-replayed. *)
        check_int "no command replay needed" 0 r.Server.replayed_records
      | None -> Alcotest.fail "no recovery stats");
      check_str "budgeted state recovered byte-identically" before
        (placement_text server ~session:"s"))

(* Tamper with a journaled digest: replay then disagrees with the record
   and startup must fail with the typed drift error, not serve bad
   state. *)
let test_digest_drift_detected () =
  let dir = tmpdir "drift" in
  let server = Server.create (journaled_cfg "drift1" dir) in
  expect_ok "load" (load server ~session:"s" (fixture 73));
  expect_ok "eco" (eco server ~session:"s" "move 3 10 10 0\n");
  Server.crash server;
  (* Rewrite every journaled digest to a value replay cannot produce.
     Appending through a fresh journal keeps framing and CRCs valid —
     the corruption is semantic, exactly what the checksum cannot catch
     and the digest check exists for. *)
  let t1, r = open_exn (Journal.default_cfg ~dir) in
  Journal.close t1;
  let tampered = tmpdir "drift-tampered" in
  let t2, _ = open_exn (Journal.default_cfg ~dir:tampered) in
  let find_sub hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i =
      if i + n > h then None
      else if String.sub hay i n = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (_, payload) ->
      let needle = "\"digest\":\"" in
      let payload =
        match find_sub payload needle with
        | Some i ->
          let j = i + String.length needle in
          String.sub payload 0 j ^ "ffffffff"
          ^ String.sub payload (j + 8) (String.length payload - j - 8)
        | None -> payload
      in
      ignore (Journal.append t2 payload))
    r.Journal.records;
  Journal.close t2;
  match Server.create (journaled_cfg "drift2" tampered) with
  | server ->
    Server.close server;
    Alcotest.fail "server started on drifted journal"
  | exception Server.Recovery_error (Server.Digest_drift { got; _ }) ->
    check "drift reports the replayed digest" true (got <> "ffffffff")
  | exception Server.Recovery_error e ->
    Alcotest.failf "wrong recovery error: %s" (Server.recovery_error_to_string e)

(* ---- property fuzzing ------------------------------------------------ *)

let payload_arb =
  Props.map
    ~print:(fun s -> Printf.sprintf "%S" s)
    (fun l ->
      let a = Array.of_list l in
      String.init (Array.length a) (fun i -> Char.chr a.(i)))
    (Props.list ~max_len:40 (Props.int_range 0 255))

let payloads_arb = Props.list ~min_len:1 ~max_len:8 payload_arb

let with_wal name payloads f =
  let cfg = Journal.default_cfg ~dir:(tmpdir name) in
  let t, _ = open_exn cfg in
  List.iter (fun p -> ignore (Journal.append t p)) payloads;
  Journal.close t;
  Fun.protect ~finally:(fun () -> rm_rf cfg.Journal.dir) (fun () -> f cfg)

(* Records written are records read, byte for byte and in order. *)
let prop_append_reopen_identity payloads =
  with_wal "prop-rt" payloads (fun cfg ->
      let t, r = open_exn cfg in
      Journal.close t;
      List.map snd r.Journal.records = payloads
      && List.map fst r.Journal.records
         = List.init (List.length payloads) (fun i -> i + 1))

(* Truncating the wal anywhere yields a clean record prefix — and never
   an exception. *)
let prop_truncation_yields_prefix (payloads, frac) =
  with_wal "prop-trunc" payloads (fun cfg ->
      let size = String.length (read_file (wal cfg.Journal.dir)) in
      let keep = int_of_float (frac *. float_of_int size) in
      chop cfg.Journal.dir (size - keep);
      let t, r = open_exn cfg in
      Journal.close t;
      let survived = List.map snd r.Journal.records in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix survived payloads && r.Journal.truncated_bytes >= 0)

(* Flipping any single bit anywhere in the wal still yields a clean
   prefix of the original records (CRC-32 catches every single-bit
   error), never an exception. *)
let prop_bitflip_yields_prefix (payloads, pos_frac, bit) =
  with_wal "prop-flip" payloads (fun cfg ->
      let data = Bytes.of_string (read_file (wal cfg.Journal.dir)) in
      let n = Bytes.length data in
      let pos = min (n - 1) (int_of_float (pos_frac *. float_of_int n)) in
      Bytes.set data pos
        (Char.chr (Char.code (Bytes.get data pos) lxor (1 lsl bit)));
      write_file (wal cfg.Journal.dir) (Bytes.to_string data);
      let t, r = open_exn cfg in
      Journal.close t;
      let survived = List.map snd r.Journal.records in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _ :: _, [] -> false
      in
      is_prefix survived payloads
      && List.length survived < List.length payloads)

let suite =
  [
    Alcotest.test_case "crc32 vectors and streaming equivalence" `Quick
      test_crc_vectors;
    Alcotest.test_case "append / reopen round-trip, lsn continuity" `Quick
      test_append_reopen;
    Alcotest.test_case "torn tail is truncated and reported" `Quick
      test_torn_tail_truncated;
    Alcotest.test_case "bit flip stops the scan at the bad record" `Quick
      test_bitflip_stops_scan;
    Alcotest.test_case "snapshot + compact survive reopen, lsns pinned" `Quick
      test_snapshot_compact;
    Alcotest.test_case "corrupt snapshot dropped, tmp files cleaned" `Quick
      test_snapshot_corruption_dropped;
    Alcotest.test_case "oversized snapshot recovers (max_record is a wal cap)"
      `Quick test_oversized_snapshot_recovered;
    Alcotest.test_case "budget-capped mutation snapshots, never replays"
      `Quick test_budget_capped_mutation_never_replays;
    Alcotest.test_case "crash recovery restores byte-identical state" `Quick
      test_crash_recovery_byte_identical;
    Alcotest.test_case "snapshot + journal suffix recover together" `Quick
      test_snapshot_plus_suffix_recovery;
    Alcotest.test_case "journaled digest drift is a typed startup error"
      `Quick test_digest_drift_detected;
    Props.test ~count:30 "journal: append/reopen identity" payloads_arb
      prop_append_reopen_identity;
    Props.test ~count:30 "journal: any truncation yields a clean prefix"
      (Props.pair payloads_arb (Props.float_range 0. 1.))
      prop_truncation_yields_prefix;
    Props.test ~count:30 "journal: any bit flip yields a clean prefix"
      (Props.triple payloads_arb
         (Props.float_range 0. 0.999)
         (Props.int_range 0 7))
      prop_bitflip_yields_prefix;
  ]
