module Spec = Tdf_benchgen.Spec
module Gen = Tdf_benchgen.Gen
module Design = Tdf_netlist.Design
module Die = Tdf_netlist.Die

let test_spec_tables () =
  Alcotest.(check int) "6 cases in 2022" 6 (List.length Spec.iccad2022);
  Alcotest.(check int) "7 cases in 2023" 7 (List.length Spec.iccad2023);
  let s = Spec.find Spec.Iccad2022 "case3h" in
  Alcotest.(check int) "cells" 44764 s.Spec.n_cells;
  Alcotest.(check int) "hr top" 92 s.Spec.hr_top;
  Alcotest.(check int) "hr bottom" 115 s.Spec.hr_bottom;
  Alcotest.check_raises "unknown case" Not_found (fun () ->
      ignore (Spec.find Spec.Iccad2022 "nope"))

let test_spec_scaled () =
  let s = Spec.find Spec.Iccad2023 "case3" in
  let sc = Spec.scaled s ~scale:0.01 in
  Alcotest.(check int) "cells scaled" 1242 sc.Spec.n_cells;
  Alcotest.(check int) "macros kept" s.Spec.n_macros sc.Spec.n_macros;
  let same = Spec.scaled s ~scale:1.0 in
  Alcotest.(check int) "scale 1 unchanged" s.Spec.n_cells same.Spec.n_cells;
  let floor = Spec.scaled s ~scale:0.000001 in
  Alcotest.(check int) "floor at 64" 64 floor.Spec.n_cells

let test_generated_matches_spec () =
  let spec = Spec.find Spec.Iccad2023 "case2" in
  let d = Gen.generate ~scale:0.1 spec in
  let scaled = Spec.scaled spec ~scale:0.1 in
  Alcotest.(check int) "cell count" scaled.Spec.n_cells (Design.n_cells d);
  Alcotest.(check int) "net count" scaled.Spec.n_nets (Array.length d.Design.nets);
  Alcotest.(check int) "macro count" spec.Spec.n_macros (Array.length d.Design.macros);
  Alcotest.(check int) "two dies" 2 (Design.n_dies d);
  Alcotest.(check int) "bottom row height" spec.Spec.hr_bottom
    (Design.die d 0).Die.row_height;
  Alcotest.(check int) "top row height" spec.Spec.hr_top
    (Design.die d 1).Die.row_height

let test_generated_valid () =
  List.iter
    (fun (suite, case) ->
      let d = Gen.generate_by_name ~scale:0.05 suite case in
      match Design.validate d with
      | Ok () -> ()
      | Error es ->
        Alcotest.failf "%s invalid: %s" case (String.concat "; " es))
    [
      (Spec.Iccad2022, "case2");
      (Spec.Iccad2022, "case3h");
      (Spec.Iccad2023, "case2");
      (Spec.Iccad2023, "case4h");
    ]

let test_deterministic () =
  let a = Gen.generate_by_name ~scale:0.05 Spec.Iccad2023 "case3" in
  let b = Gen.generate_by_name ~scale:0.05 Spec.Iccad2023 "case3" in
  Alcotest.(check string) "same design text"
    (Tdf_io.Text.design_to_string a)
    (Tdf_io.Text.design_to_string b)

let test_cases_differ () =
  let a = Gen.generate_by_name ~scale:0.05 Spec.Iccad2022 "case3" in
  let b = Gen.generate_by_name ~scale:0.05 Spec.Iccad2022 "case3h" in
  Alcotest.(check bool) "different designs" true
    (Tdf_io.Text.design_to_string a <> Tdf_io.Text.design_to_string b)

let per_die_load d =
  let nd = Design.n_dies d in
  let load = Array.make nd 0. in
  Array.iter
    (fun c ->
      let die = Tdf_netlist.Cell.nearest_die c ~n_dies:nd in
      load.(die) <- load.(die) +. float_of_int (Tdf_netlist.Cell.width_on c die))
    d.Design.cells;
  load

let capacity d die_idx =
  let die = Design.die d die_idx in
  let rows = Die.num_rows die in
  let blocked =
    Array.fold_left
      (fun acc m ->
        if m.Tdf_netlist.Blockage.die = die_idx then
          acc + Tdf_geometry.Rect.area m.Tdf_netlist.Blockage.rect
        else acc)
      0 d.Design.macros
  in
  (float_of_int (die.Die.outline.Tdf_geometry.Rect.w * rows * die.Die.row_height)
  -. float_of_int blocked)
  /. float_of_int die.Die.row_height

let test_feasible_utilization () =
  List.iter
    (fun (suite, case) ->
      let d = Gen.generate_by_name ~scale:0.08 suite case in
      let load = per_die_load d in
      for die = 0 to Design.n_dies d - 1 do
        let u = load.(die) /. capacity d die in
        if u >= 1.0 then
          Alcotest.failf "%s die %d over-utilized: %.3f" case die u
      done)
    [ (Spec.Iccad2022, "case4"); (Spec.Iccad2023, "case3"); (Spec.Iccad2023, "case4h") ]

let test_balanced_dies () =
  let d = Gen.generate_by_name ~scale:0.08 Spec.Iccad2023 "case3" in
  let load = per_die_load d in
  let u0 = load.(0) /. capacity d 0 and u1 = load.(1) /. capacity d 1 in
  Alcotest.(check bool) "utilizations within 10%" true (Float.abs (u0 -. u1) < 0.1)

let test_creates_overflow () =
  (* The point of the generator: the global placement must overflow bins. *)
  let d = Gen.generate_by_name ~scale:0.05 Spec.Iccad2022 "case3" in
  let bw = Tdf_legalizer.Flow3d.flow_bin_width d ~factor:10. in
  let g = Tdf_grid.Grid.build d ~bin_width:bw in
  Tdf_grid.Grid.assign_initial_exn g (Tdf_netlist.Placement.initial d);
  Alcotest.(check bool) "overflow exists" true (Tdf_grid.Grid.total_overflow g > 0.)

let test_hetero_widths () =
  let d = Gen.generate_by_name ~scale:0.05 Spec.Iccad2022 "case3h" in
  (* hr+ 92, hr- 115: top cells wider than bottom on average *)
  let sum0 = ref 0 and sum1 = ref 0 in
  Array.iter
    (fun c ->
      sum0 := !sum0 + c.Tdf_netlist.Cell.widths.(0);
      sum1 := !sum1 + c.Tdf_netlist.Cell.widths.(1))
    d.Design.cells;
  Alcotest.(check bool) "top wider (area conservation)" true (!sum1 > !sum0)

let suite =
  [
    Alcotest.test_case "spec tables" `Quick test_spec_tables;
    Alcotest.test_case "spec scaled" `Quick test_spec_scaled;
    Alcotest.test_case "generated matches spec" `Quick test_generated_matches_spec;
    Alcotest.test_case "generated valid" `Quick test_generated_valid;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "cases differ" `Quick test_cases_differ;
    Alcotest.test_case "feasible utilization" `Slow test_feasible_utilization;
    Alcotest.test_case "balanced dies" `Quick test_balanced_dies;
    Alcotest.test_case "creates overflow" `Quick test_creates_overflow;
    Alcotest.test_case "hetero widths" `Quick test_hetero_widths;
  ]
