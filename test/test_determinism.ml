(* Determinism regression suite: every parallel section must be invisible
   in the results.  Legalizing a design, regenerating the experiments
   grid, or totalling telemetry counters with 1, 2 or 8 worker domains
   yields byte-identical output — the property the --jobs flag documents
   and the pool's merge-in-submission-order design exists to guarantee. *)

module Runner = Tdf_experiments.Runner
module Spec = Tdf_benchgen.Spec

let job_counts = [ 1; 2; 8 ]

(* Run [f] under each job count and return one result per count, with the
   default pool restored afterwards. *)
let across_jobs f =
  let before = Tdf_par.jobs () in
  Fun.protect
    ~finally:(fun () -> Tdf_par.set_jobs before)
    (fun () ->
      List.map
        (fun jobs ->
          Tdf_par.set_jobs jobs;
          f ())
        job_counts)

let check_all_equal what = function
  | [] | [ _ ] -> ()
  | first :: rest ->
    List.iteri
      (fun i r ->
        Alcotest.(check string)
          (Printf.sprintf "%s: jobs=%d matches jobs=%d" what
             (List.nth job_counts (i + 1))
             (List.hd job_counts))
          first r)
      rest

(* Five benchgen cases across both suites, small scale so the whole matrix
   stays fast.  Serialized placements (full x/y/die of every cell) are the
   strongest observable output of a run. *)
let determinism_cases =
  [
    (Spec.Iccad2022, "case2");
    (Spec.Iccad2022, "case4");
    (Spec.Iccad2023, "case2");
    (Spec.Iccad2023, "case3");
    (Spec.Iccad2023, "case3h");
  ]

let test_flow3d_placements_invariant () =
  List.iter
    (fun (suite, case) ->
      let design =
        Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find suite case)
      in
      let runs =
        across_jobs (fun () ->
            let r = Tdf_legalizer.Flow3d.legalize design in
            Tdf_io.Text.placement_to_string design
              r.Tdf_legalizer.Flow3d.placement)
      in
      check_all_equal (Spec.suite_slug suite ^ "/" ^ case) runs)
    determinism_cases

(* The tile-sharded entry point on the same five cases: for every tile
   count, at every job count, the placement must equal the untiled run
   byte for byte — tiling is a wall-clock strategy, never a result
   change. *)
let test_flow3d_tiled_placements_invariant () =
  List.iter
    (fun (suite, case) ->
      let design =
        Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find suite case)
      in
      let reference =
        let r = Tdf_legalizer.Flow3d.legalize design in
        Tdf_io.Text.placement_to_string design r.Tdf_legalizer.Flow3d.placement
      in
      List.iter
        (fun tiles ->
          let runs =
            across_jobs (fun () ->
                match Tdf_legalizer.Flow3d.run_tiled ~tiles design with
                | Ok r ->
                  Tdf_io.Text.placement_to_string design
                    r.Tdf_legalizer.Flow3d.placement
                | Error e ->
                  Alcotest.fail (Tdf_legalizer.Flow3d.error_to_string e))
          in
          List.iteri
            (fun i run ->
              Alcotest.(check string)
                (Printf.sprintf "%s/%s: tiles=%d jobs=%d matches untiled"
                   (Spec.suite_slug suite) case tiles (List.nth job_counts i))
                reference run)
            runs)
        [ 2; 4; 9 ])
    determinism_cases

let test_baseline_placements_invariant () =
  (* Abacus' final PlaceRow loop is the other parallel placement path. *)
  let design =
    Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find Spec.Iccad2023 "case2")
  in
  let runs =
    across_jobs (fun () ->
        Tdf_io.Text.placement_to_string design
          (Tdf_baselines.Abacus.legalize design))
  in
  check_all_equal "abacus placement" runs

(* The comparison table contains a wall-clock column; zero it before
   rendering so the text compares the deterministic content only. *)
let zero_runtimes results =
  List.map
    (fun (r : Runner.case_result) ->
      {
        r with
        Runner.rows =
          List.map (fun row -> { row with Runner.runtime_s = 0. }) r.Runner.rows;
      })
    results

let test_experiments_grid_invariant () =
  let runs =
    across_jobs (fun () ->
        Tdf_experiments.Tables.comparison ~title:"determinism-check"
          (zero_runtimes (Runner.run_suite ~scale:0.02 Spec.Iccad2023)))
  in
  check_all_equal "experiments grid" runs

let test_metrics_invariant () =
  (* HPWL and displacement reduce through fixed-size chunks: the float
     totals must be bitwise equal at every job count. *)
  let design =
    Tdf_benchgen.Gen.generate ~scale:0.05 (Spec.find Spec.Iccad2023 "case2")
  in
  let r = Tdf_legalizer.Flow3d.legalize design in
  let p = r.Tdf_legalizer.Flow3d.placement in
  let runs =
    across_jobs (fun () ->
        let s = Tdf_metrics.Displacement.summary design p in
        Printf.sprintf "%h %h %h %h %h"
          (Tdf_metrics.Hpwl.increase_pct design p)
          s.Tdf_metrics.Displacement.avg_norm s.Tdf_metrics.Displacement.max_norm
          s.Tdf_metrics.Displacement.avg_raw s.Tdf_metrics.Displacement.avg_weighted)
  in
  check_all_equal "metric reductions (bitwise)" runs

let test_telemetry_totals_invariant () =
  (* Counter totals from a fully instrumented legalization (MCMF pops,
     augmentations, grid resets, ...) must not depend on the job count:
     captured task events are replayed exactly once each. *)
  let design =
    Tdf_benchgen.Gen.generate ~scale:0.02 (Spec.find Spec.Iccad2023 "case2")
  in
  let runs =
    across_jobs (fun () ->
        let agg = Tdf_telemetry.Aggregate.create () in
        Tdf_telemetry.with_sink (Tdf_telemetry.Aggregate.sink agg) (fun () ->
            ignore (Tdf_legalizer.Flow3d.legalize design));
        Tdf_telemetry.Aggregate.counter_names agg
        |> List.map (fun name ->
               Printf.sprintf "%s=%d" name
                 (Tdf_telemetry.Aggregate.counter_total agg name))
        |> String.concat "\n")
  in
  check_all_equal "telemetry counter totals" runs;
  Alcotest.(check bool)
    "instrumentation saw counters" true
    (String.length (List.hd runs) > 0)

let suite =
  [
    Alcotest.test_case "flow3d placements invariant (5 cases)" `Quick
      test_flow3d_placements_invariant;
    Alcotest.test_case "flow3d tiled placements invariant (5 cases)" `Quick
      test_flow3d_tiled_placements_invariant;
    Alcotest.test_case "abacus placement invariant" `Quick
      test_baseline_placements_invariant;
    Alcotest.test_case "experiments grid invariant" `Quick
      test_experiments_grid_invariant;
    Alcotest.test_case "metric reductions bitwise invariant" `Quick
      test_metrics_invariant;
    Alcotest.test_case "telemetry totals invariant" `Quick
      test_telemetry_totals_invariant;
  ]
