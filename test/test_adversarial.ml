(* Robustness under adversarial inputs: degenerate sizes, extreme
   utilization, hostile floorplans.  Every legalizer must either produce a
   legal placement or degrade gracefully (report residual overflow), never
   crash or loop. *)

module Rect = Tdf_geometry.Rect
module Die = Tdf_netlist.Die
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d
module Legality = Tdf_metrics.Legality

let two_dies ?(w = 100) ?(h = 40) () = Fixtures.two_dies ~w ~h ()

let check_legal name d =
  let r = Flow3d.legalize d in
  let rep = Legality.check d r.Flow3d.placement in
  if rep.Legality.n_violations <> 0 then
    Alcotest.failf "%s: %s" name
      (String.concat "; " rep.Legality.messages)

let test_empty_design () =
  let d = Design.make ~name:"empty" ~dies:(two_dies ()) ~cells:[||] () in
  let r = Flow3d.legalize d in
  Alcotest.(check bool) "legal trivially" true
    (Legality.is_legal d r.Flow3d.placement);
  (* baselines too *)
  Alcotest.(check bool) "tetris" true
    (Legality.is_legal d (Tdf_baselines.Tetris.legalize d));
  Alcotest.(check bool) "abacus" true
    (Legality.is_legal d (Tdf_baselines.Abacus.legalize d))

let test_single_cell () =
  let cells = [| Fixtures.cell ~id:0 ~x:(-50) ~y:999 ~z:0.5 () |] in
  let d = Design.make ~name:"one" ~dies:(two_dies ()) ~cells () in
  check_legal "single out-of-bounds cell" d

let test_single_row_die () =
  let dies =
    [|
      Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w:200 ~h:10) ~row_height:10 ();
      Die.make ~index:1 ~outline:(Rect.make ~x:0 ~y:0 ~w:200 ~h:10) ~row_height:10 ();
    |]
  in
  let cells =
    Array.init 30 (fun id -> Fixtures.cell ~id ~w0:5 ~w1:5 ~x:100 ~y:5 ~z:0.3 ())
  in
  let d = Design.make ~name:"one_row" ~dies ~cells () in
  check_legal "single-row dies" d

let test_full_utilization_row () =
  (* exactly full: 20 cells of width 5 in a 100-wide single-row die pair *)
  let dies =
    [|
      Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w:100 ~h:10) ~row_height:10 ();
      Die.make ~index:1 ~outline:(Rect.make ~x:0 ~y:0 ~w:100 ~h:10) ~row_height:10 ();
    |]
  in
  let cells =
    Array.init 40 (fun id ->
        Fixtures.cell ~id ~w0:5 ~w1:5 ~x:50 ~y:0 ~z:(if id < 20 then 0.2 else 0.8) ())
  in
  let d = Design.make ~name:"full" ~dies ~cells () in
  check_legal "100% utilization" d

let test_wide_cell_narrow_segments () =
  (* a macro splits the row into segments; one cell is wider than the left
     segment and must end up in the right one *)
  let dies = two_dies () in
  let macros =
    [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:20 ~y:0 ~w:10 ~h:40) () |]
  in
  let cells = [| Fixtures.cell ~id:0 ~w0:40 ~w1:40 ~x:0 ~y:0 ~z:0.0 () |] in
  let d = Design.make ~name:"wide" ~dies ~cells ~macros () in
  check_legal "cell wider than a segment" d

let test_macro_almost_everywhere () =
  (* macros cover most of die 0; cells must squeeze into the rest or cross *)
  let dies = two_dies () in
  let macros =
    [|
      Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:0 ~y:0 ~w:100 ~h:30) ();
      Blockage.make ~id:1 ~die:0 ~rect:(Rect.make ~x:0 ~y:30 ~w:60 ~h:10) ();
    |]
  in
  let cells =
    Array.init 20 (fun id -> Fixtures.cell ~id ~w0:4 ~w1:4 ~x:10 ~y:10 ~z:0.1 ())
  in
  let d = Design.make ~name:"walled" ~dies ~cells ~macros () in
  check_legal "macro-dominated die" d

let test_everything_in_one_corner () =
  let cells =
    Array.init 60 (fun id -> Fixtures.cell ~id ~w0:6 ~w1:6 ~x:0 ~y:0 ~z:0.0 ())
  in
  let d = Design.make ~name:"corner" ~dies:(two_dies ()) ~cells () in
  check_legal "corner pile-up" d

let test_infeasible_reports_residual () =
  (* more cell area than both dies can hold: must terminate and report *)
  let dies =
    [|
      Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w:50 ~h:10) ~row_height:10 ();
      Die.make ~index:1 ~outline:(Rect.make ~x:0 ~y:0 ~w:50 ~h:10) ~row_height:10 ();
    |]
  in
  let cells =
    Array.init 40 (fun id -> Fixtures.cell ~id ~w0:5 ~w1:5 ~x:25 ~y:0 ~z:0.5 ())
  in
  let d = Design.make ~name:"overfull" ~dies ~cells () in
  let r = Flow3d.legalize d in
  (* 200 width into 100 capacity: residual overflow must be reported *)
  Alcotest.(check bool) "terminates with residual" true
    (r.Flow3d.stats.Flow3d.residual_overflow > 0.);
  Alcotest.(check bool) "illegal as expected" false
    (Legality.is_legal d r.Flow3d.placement)

let test_huge_net () =
  (* one net touching every cell: HPWL and refinement must cope *)
  let cells =
    Array.init 50 (fun id -> Fixtures.cell ~id ~x:(id * 2) ~y:(id mod 40) ~z:0.4 ())
  in
  let nets =
    [| Tdf_netlist.Net.make ~id:0 ~pins:(Array.init 50 (fun i -> i)) () |]
  in
  let d = Design.make ~name:"bignet" ~dies:(two_dies ()) ~cells ~nets () in
  let r = Flow3d.legalize d in
  let p = r.Flow3d.placement in
  Alcotest.(check bool) "legal" true (Legality.is_legal d p);
  let _ = Tdf_refine.Refine.run d p in
  Alcotest.(check bool) "legal after refine" true (Legality.is_legal d p)

let test_degenerate_bin_width () =
  (* bin width 1: thousands of bins, fractional churn *)
  let d = Fixtures.clustered () in
  let g = Tdf_grid.Grid.build d ~bin_width:1 in
  Tdf_grid.Grid.assign_initial_exn g (Placement.initial d);
  match Tdf_grid.Grid.check_invariants g with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_extreme_hetero_heights () =
  (* 10x row-height ratio across dies *)
  let dies =
    [|
      Die.make ~index:0 ~outline:(Rect.make ~x:0 ~y:0 ~w:200 ~h:100) ~row_height:5 ();
      Die.make ~index:1 ~outline:(Rect.make ~x:0 ~y:0 ~w:200 ~h:100) ~row_height:50 ();
    |]
  in
  let cells =
    Array.init 40 (fun id ->
        Cell.make ~id ~widths:[| 4; 40 |] ~gp_x:100 ~gp_y:50
          ~gp_z:(float_of_int (id mod 2)) ())
  in
  let d = Design.make ~name:"hetero10x" ~dies ~cells () in
  check_legal "10x hetero row heights" d

let test_zero_weight_rejected () =
  match Cell.make ~id:0 ~weight:0.0 ~widths:[| 4 |] ~gp_x:0 ~gp_y:0 ~gp_z:0. () with
  | exception Assert_failure _ -> ()
  | _ -> Alcotest.fail "weight 0 must be rejected"

let test_all_methods_on_hostile_case () =
  let dies = two_dies ~w:80 ~h:30 () in
  let macros =
    [| Blockage.make ~id:0 ~die:1 ~rect:(Rect.make ~x:20 ~y:10 ~w:40 ~h:10) () |]
  in
  let cells =
    Array.init 50 (fun id -> Fixtures.cell ~id ~w0:3 ~w1:3 ~x:40 ~y:15 ~z:0.6 ())
  in
  let d = Design.make ~name:"hostile" ~dies ~cells ~macros () in
  List.iter
    (fun m ->
      let p = Tdf_experiments.Runner.legalize_with m d in
      let rep = Legality.check d p in
      if rep.Legality.n_violations <> 0 then
        Alcotest.failf "%s failed: %s"
          (Tdf_experiments.Runner.method_name m)
          (String.concat "; " rep.Legality.messages))
    [
      Tdf_experiments.Runner.Tetris;
      Tdf_experiments.Runner.Abacus;
      Tdf_experiments.Runner.Bonn;
      Tdf_experiments.Runner.Ours;
      Tdf_experiments.Runner.Ours_no_d2d;
    ]

(* A macro covering a row's full width leaves zero-width segments; the
   validator must flag the die, and legalization must still succeed by
   using the other rows / the other die. *)
let test_zero_width_segments () =
  let dies = two_dies () in
  let macros =
    (* full-width macro over rows 0-1 of die 0 *)
    [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:0 ~y:0 ~w:100 ~h:20) () |]
  in
  let cells =
    Array.init 12 (fun id -> Fixtures.cell ~id ~w0:5 ~w1:5 ~x:50 ~y:5 ~z:0.1 ())
  in
  let d = Design.make ~name:"zero_width_rows" ~dies ~cells ~macros () in
  check_legal "zero-width segments" d;
  (* a die whose every row is covered: validator reports zero capacity *)
  let macros_all =
    [| Blockage.make ~id:0 ~die:0 ~rect:(Rect.make ~x:0 ~y:0 ~w:100 ~h:40) () |]
  in
  let d_all =
    Design.make ~name:"zero_cap_die" ~dies ~cells ~macros:macros_all ()
  in
  let issues = Tdf_robust.Validate.design d_all in
  Alcotest.(check bool) "zero-capacity-die flagged" true
    (List.exists
       (fun (i : Tdf_robust.Validate.issue) ->
         i.Tdf_robust.Validate.code = "zero-capacity-die")
       issues)

(* A cell wider than every segment on BOTH dies is structurally
   unplaceable: preflight must catch it, and the typed Flow3d entry must
   return an error rather than raise. *)
let test_unplaceable_cell_both_dies () =
  let dies = two_dies ~w:100 () in
  let cells =
    [|
      Fixtures.cell ~id:0 ~w0:4 ~w1:4 ~x:10 ~y:5 ~z:0.2 ();
      Fixtures.cell ~id:1 ~w0:150 ~w1:150 ~x:20 ~y:15 ~z:0.4 ();
    |]
  in
  let d = Design.make ~name:"too_wide" ~dies ~cells () in
  let issues = Tdf_robust.Validate.design d in
  Alcotest.(check bool) "unplaceable-cell is fatal" true
    (List.exists
       (fun (i : Tdf_robust.Validate.issue) ->
         i.Tdf_robust.Validate.severity = Tdf_robust.Validate.Fatal
         && i.Tdf_robust.Validate.code = "unplaceable-cell")
       issues);
  (* the raw engine degrades gracefully: the oversized cell is crammed
     into the widest segment, so the run completes but the result is
     illegal — no crash either way *)
  (match Flow3d.run d with
  | Error e -> Alcotest.failf "unexpected error: %s" (Flow3d.error_to_string e)
  | Ok r ->
    Alcotest.(check bool) "oversized cell cannot be legal" false
      (Legality.is_legal d r.Flow3d.placement));
  (* the pipeline catches it earlier, as a typed preflight rejection *)
  match Tdf_robust.Pipeline.run d with
  | Error e ->
    Alcotest.(check string) "preflight" "preflight"
      (Tdf_robust.Error.phase_name e.Tdf_robust.Error.phase)
  | Ok _ -> Alcotest.fail "pipeline accepted an unplaceable cell"

(* NaN global-placement coordinates must be caught by preflight — and the
   repair mode must recover the design into something legalizable. *)
let test_nan_gp_coordinates () =
  let dies = two_dies () in
  let cells =
    Array.init 6 (fun id ->
        Fixtures.cell ~id ~x:30 ~y:12
          ~z:(if id = 2 then Float.nan else 0.3)
          ())
  in
  let d = Design.make ~name:"nan_gp" ~dies ~cells () in
  (match Tdf_robust.Pipeline.run d with
  | Error e ->
    Alcotest.(check string) "nan code" "nan-gp-z" e.Tdf_robust.Error.code
  | Ok _ -> Alcotest.fail "NaN gp_z accepted");
  match
    Tdf_robust.Pipeline.run
      ~opts:{ Tdf_robust.Pipeline.default_options with repair = true }
      d
  with
  | Error e ->
    Alcotest.failf "repair failed: %s" (Tdf_robust.Error.to_string e)
  | Ok r ->
    Alcotest.(check bool) "legal after repair" true
      (Legality.is_legal r.Tdf_robust.Pipeline.design
         r.Tdf_robust.Pipeline.placement)

let suite =
  [
    Alcotest.test_case "empty design" `Quick test_empty_design;
    Alcotest.test_case "single out-of-bounds cell" `Quick test_single_cell;
    Alcotest.test_case "single-row dies" `Quick test_single_row_die;
    Alcotest.test_case "100% utilization" `Quick test_full_utilization_row;
    Alcotest.test_case "cell wider than segment" `Quick test_wide_cell_narrow_segments;
    Alcotest.test_case "macro-dominated die" `Quick test_macro_almost_everywhere;
    Alcotest.test_case "corner pile-up" `Quick test_everything_in_one_corner;
    Alcotest.test_case "infeasible reports residual" `Quick
      test_infeasible_reports_residual;
    Alcotest.test_case "huge net" `Quick test_huge_net;
    Alcotest.test_case "bin width 1" `Quick test_degenerate_bin_width;
    Alcotest.test_case "10x hetero heights" `Quick test_extreme_hetero_heights;
    Alcotest.test_case "zero weight rejected" `Quick test_zero_weight_rejected;
    Alcotest.test_case "all methods on hostile case" `Quick
      test_all_methods_on_hostile_case;
    Alcotest.test_case "zero-width segments" `Quick test_zero_width_segments;
    Alcotest.test_case "cell wider than both dies" `Quick
      test_unplaceable_cell_both_dies;
    Alcotest.test_case "NaN gp coordinates" `Quick test_nan_gp_coordinates;
  ]
