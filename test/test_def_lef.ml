(* DEF/LEF-lite interchange: parsers, converters, the byte-stable
   export∘import∘export invariant, the import→run→eco→export pipeline on
   the checked-in open-design example, and tokenizer fuzzing (truncation,
   comment injection, whitespace mangling — typed errors, never escaped
   exceptions). *)

module Lef = Tdf_def_lef.Lef
module Def = Tdf_def_lef.Def
module Design = Tdf_netlist.Design
module Placement = Tdf_netlist.Placement
module Cell = Tdf_netlist.Cell
module Blockage = Tdf_netlist.Blockage
module Validate = Tdf_robust.Validate
module Prng = Tdf_util.Prng

(* The tests run from _build/default/test; the example files are dune
   deps of the test stanza. *)
let example dir = Printf.sprintf "../examples/open_design/%s" dir

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let import_example () =
  let lef =
    match Lef.load (example "small.lef") with
    | Ok l -> l
    | Error e -> Alcotest.failf "example LEF: %s" e
  in
  let defs =
    List.map
      (fun f ->
        match Def.load (example f) with
        | Ok d -> d
        | Error e -> Alcotest.failf "example %s: %s" f e)
      [ "small.d0.def"; "small.d1.def" ]
  in
  match Def.to_design ~lef defs with
  | Ok (d, p) -> (d, p)
  | Error e -> Alcotest.failf "example import: %s" e

(* ---- LEF ----------------------------------------------------------- *)

let test_lef_example () =
  let l = Lef.load_exn (example "small.lef") in
  Alcotest.(check int) "sites" 1 (List.length l.Lef.sites);
  Alcotest.(check int) "macros" 4 (List.length l.Lef.macros);
  let s = List.hd l.Lef.sites in
  Alcotest.(check string) "site name" "unit" s.Lef.s_name;
  Alcotest.(check int) "site h" 8 s.Lef.s_h;
  (match Lef.find_macro l "BUF_X2" with
  | Some m ->
    Alcotest.(check (option (array int))) "per-die widths" (Some [| 5; 4 |])
      m.Lef.m_widths
  | None -> Alcotest.fail "BUF_X2 missing");
  (match Lef.find_macro l "RAM16" with
  | Some m -> Alcotest.(check string) "block class" "BLOCK" m.Lef.m_class
  | None -> Alcotest.fail "RAM16 missing");
  (* canonical writer is a fixpoint: write(read(write(read x))) stable *)
  let once = Lef.to_string l in
  Alcotest.(check string) "writer fixpoint" once
    (Lef.to_string (Lef.read_exn once))

let test_lef_errors_typed () =
  let cases =
    [
      "MACRO m\nCLASS CORE ;\nEND m\nEND LIBRARY";  (* missing SIZE *)
      "SITE s\nSIZE 0 BY 8 ;\nEND s\nEND LIBRARY";  (* zero size *)
      "FROBNICATE 1 ;\nEND LIBRARY";  (* unknown statement *)
      "MACRO m\nSIZE 2 BY 8 ;\nEND x\nEND LIBRARY";  (* wrong END *)
      "# tdflow.widths ghost 1 2\nEND LIBRARY";  (* unknown macro *)
      "# tdflow.bogus 1\nEND LIBRARY";  (* unknown extension *)
      "END LIBRARY\nMACRO late";  (* trailing tokens *)
      "MACRO m\nSIZE 2 BY";  (* truncated *)
    ]
  in
  List.iter
    (fun text ->
      match Lef.read text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" text)
    cases

(* ---- DEF ----------------------------------------------------------- *)

let test_def_example_fields () =
  let d = Def.load_exn (example "small.d0.def") in
  Alcotest.(check string) "design" "smoke" d.Def.design;
  Alcotest.(check int) "units" 1000 d.Def.units;
  Alcotest.(check (option int)) "die tag" (Some 0) d.Def.die;
  Alcotest.(check (option int)) "n_dies tag" (Some 2) d.Def.n_dies;
  Alcotest.(check int) "rows" 5 (List.length d.Def.rows);
  Alcotest.(check int) "components" 6 (List.length d.Def.components);
  Alcotest.(check int) "pins" 2 (List.length d.Def.pins);
  Alcotest.(check int) "nets" 3 (List.length d.Def.nets);
  Alcotest.(check int) "blockages" 1 (List.length d.Def.blockages);
  (match d.Def.max_util with
  | Some u -> Alcotest.(check (float 1e-9)) "max_util" 0.9 u
  | None -> Alcotest.fail "max_util tag missing");
  (match List.assoc_opt "u2" d.Def.gp with
  | Some (x, _, _, w) ->
    Alcotest.(check int) "gp x" 11 x;
    Alcotest.(check (float 1e-9)) "gp weight" 2.0 w
  | None -> Alcotest.fail "gp u2 missing");
  let ram = List.find (fun c -> c.Def.c_name = "ram0") d.Def.components in
  Alcotest.(check bool) "ram fixed" true (ram.Def.c_status = Def.Fixed)

let test_def_errors_typed () =
  let cases =
    [
      "DESIGN d ;\nEND DESIGN";  (* missing DIEAREA *)
      "DIEAREA ( 0 0 ) ( 10 10 ) ;\nEND DESIGN";  (* missing DESIGN *)
      "DESIGN d ;\nDIEAREA ( 10 10 ) ( 0 0 ) ;\nEND DESIGN";  (* inverted *)
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nCOMPONENTS 2 ;\n\
       - a m ;\nEND COMPONENTS\nEND DESIGN";  (* count mismatch *)
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\n\
       ROW r s 0 0 N DO 4 BY 2 ;\nEND DESIGN";  (* BY 2 rows *)
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\nEND DESIGN\nleftover";
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\n# tdflow.die 0\nEND DESIGN";
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 9 9 ) ;\n# tdflow.nope 1\nEND DESIGN";
      "DESIGN d ;\nCOMPONENTS 1 ;\n- a";  (* truncated *)
      "TRACKS X 0 DO 5 STEP 2 LAYER m1 ;\nEND DESIGN";  (* out of subset *)
    ]
  in
  List.iter
    (fun text ->
      match Def.read text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected a parse error for %S" text)
    cases

(* ---- converters ---------------------------------------------------- *)

let test_example_to_design () =
  let d, p = import_example () in
  Alcotest.(check int) "dies" 2 (Design.n_dies d);
  (* 10 components, 1 FIXED -> 9 cells; ram0 + the PLACEMENT rect -> 2
     blockages; 4 nets (the external-only pins drop no whole net here) *)
  Alcotest.(check int) "cells" 9 (Design.n_cells d);
  Alcotest.(check int) "macros" 2 (Array.length d.Design.macros);
  Alcotest.(check int) "nets" 4 (Array.length d.Design.nets);
  (* heterogeneous widths came from tdflow.widths *)
  let u3 =
    Array.to_list d.Design.cells |> List.find (fun c -> c.Cell.name = "u3")
  in
  Alcotest.(check (array int)) "u3 widths" [| 5; 4 |] u3.Cell.widths;
  (* cross-die net n_clk: u1/u2 on die 0, v1 on die 1 (external pin
     dropped) *)
  let n_clk =
    Array.to_list d.Design.nets |> List.find (fun n -> n.Tdf_netlist.Net.name = "n_clk")
  in
  Alcotest.(check int) "n_clk arity" 3 (Array.length n_clk.Tdf_netlist.Net.pins);
  (* the unplaced, gp-less u5 seeds at its die center *)
  let u5 =
    Array.to_list d.Design.cells |> List.find (fun c -> c.Cell.name = "u5")
  in
  Alcotest.(check int) "u5 center x" 30 p.Placement.x.(u5.Cell.id);
  Alcotest.(check int) "u5 die" 0 p.Placement.die.(u5.Cell.id);
  Alcotest.(check (float 1e-9)) "die1 max_util" 0.85
    (Design.die d 1).Tdf_netlist.Die.max_util;
  (* weight came through the gp comment *)
  let v4 =
    Array.to_list d.Design.cells |> List.find (fun c -> c.Cell.name = "v4")
  in
  Alcotest.(check (float 1e-9)) "v4 weight" 0.5 v4.Cell.weight

let test_to_design_errors () =
  let lef =
    Lef.read_exn
      "SITE s\nSIZE 1 BY 8 ;\nEND s\nMACRO m\nSIZE 3 BY 8 ;\nEND m\nEND LIBRARY"
  in
  let base rows comps =
    Printf.sprintf
      "DESIGN d ;\nDIEAREA ( 0 0 ) ( 20 16 ) ;\n%s\nCOMPONENTS %d ;\n%sEND \
       COMPONENTS\nEND DESIGN"
      rows (List.length comps)
      (String.concat "" (List.map (fun c -> "- " ^ c ^ " ;\n") comps))
  in
  let row = "ROW r s 0 0 N DO 20 BY 1 ;" in
  let expect_error what defs =
    match Def.to_design ~lef defs with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected %s to fail" what
  in
  expect_error "empty import" [];
  expect_error "unknown site"
    [ Def.read_exn (base "ROW r ghost 0 0 N DO 20 BY 1 ;" []) ];
  expect_error "no rows" [ Def.read_exn (base "" []) ];
  expect_error "unknown macro"
    [ Def.read_exn (base row [ "a ghost + PLACED ( 0 0 ) N" ]) ];
  expect_error "duplicate component"
    [
      Def.read_exn
        (base row [ "a m + PLACED ( 0 0 ) N"; "a m + PLACED ( 4 0 ) N" ]);
    ];
  expect_error "gp names unknown component"
    [
      Def.read_exn
        (base row [ "a m + PLACED ( 0 0 ) N" ] ^ "\n# tdflow.gp ghost 1 1 0.0");
    ];
  (* mixed tagging: one file tagged, one not *)
  let tagged =
    Def.read_exn ("# tdflow.die 0 of 2\n" ^ base row [])
  in
  expect_error "mixed die tags" [ tagged; Def.read_exn (base row []) ];
  (* same die claimed twice *)
  let tagged1 = Def.read_exn ("# tdflow.die 0 of 2\n" ^ base row []) in
  expect_error "die claimed twice" [ tagged; tagged1 ];
  (* macro height vs row height *)
  let lef_tall =
    Lef.read_exn
      "SITE s\nSIZE 1 BY 8 ;\nEND s\nMACRO m\nSIZE 3 BY 16 ;\nEND m\nEND \
       LIBRARY"
  in
  (match
     Def.to_design ~lef:lef_tall
       [ Def.read_exn (base row [ "a m + PLACED ( 0 0 ) N" ]) ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected row-height mismatch to fail")

let canonical_strings design placement =
  let lef, defs = Def.of_design ?placement design in
  (Lef.to_string lef, List.map Def.to_string defs)

let reimport (ltxt, dtxts) =
  let lef = Lef.read_exn ltxt in
  let defs = List.map Def.read_exn dtxts in
  match Def.to_design ~lef defs with
  | Ok (d, p) -> (d, p)
  | Error e -> Alcotest.failf "reimport failed: %s" e

let test_export_import_export_bytes () =
  let check_design name design placement =
    let ltxt, dtxts = canonical_strings design placement in
    let d, p = reimport (ltxt, dtxts) in
    let ltxt2, dtxts2 = canonical_strings d (Some p) in
    Alcotest.(check string) (name ^ " lef bytes") ltxt ltxt2;
    List.iteri
      (fun i (a, b) ->
        Alcotest.(check string) (Printf.sprintf "%s def %d bytes" name i) a b)
      (List.combine dtxts dtxts2)
  in
  check_design "fixture" (Fixtures.with_macro ()) None;
  let gen =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.02 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  check_design "generated" gen None;
  (* and through a real legalized placement *)
  let r = Tdf_legalizer.Flow3d.legalize gen in
  check_design "legalized" gen (Some r.Tdf_legalizer.Flow3d.placement)

let test_import_preserves_semantics () =
  (* Import re-numbers cell ids die-major, so compare name-keyed
     semantics: every cell's widths/gp/weight, every macro, every net's
     member names.  Floats first take one %.6f-quantizing trip through
     the native text format so both sides render identically. *)
  let d0 =
    Tdf_io.Text.read_design_exn
      (Tdf_io.Text.design_to_string (Fixtures.random ~with_macros:true 11))
  in
  let d1, _ = reimport (canonical_strings d0 None) in
  let cell_sig (d : Design.t) =
    Array.to_list d.Design.cells
    |> List.map (fun (c : Cell.t) ->
           ( c.Cell.name,
             Array.to_list c.Cell.widths,
             c.Cell.gp_x,
             c.Cell.gp_y,
             c.Cell.gp_z,
             c.Cell.weight ))
    |> List.sort compare
  in
  let macro_sig (d : Design.t) =
    Array.to_list d.Design.macros
    |> List.map (fun (m : Blockage.t) -> (m.Blockage.name, m.Blockage.die, m.Blockage.rect))
    |> List.sort compare
  in
  let net_sig (d : Design.t) =
    Array.to_list d.Design.nets
    |> List.map (fun (n : Tdf_netlist.Net.t) ->
           ( n.Tdf_netlist.Net.name,
             Array.to_list n.Tdf_netlist.Net.pins
             |> List.map (fun p -> (Design.cell d p).Cell.name)
             |> List.sort compare ))
    |> List.sort compare
  in
  Alcotest.(check bool) "cells survive the DEF trip" true
    (cell_sig d0 = cell_sig d1);
  Alcotest.(check bool) "macros survive the DEF trip" true
    (macro_sig d0 = macro_sig d1);
  Alcotest.(check bool) "nets survive the DEF trip" true
    (net_sig d0 = net_sig d1)

(* ---- duplicate cell names ------------------------------------------ *)

let test_duplicate_cell_names () =
  let mk name id = Tdf_netlist.Cell.make ~id ~name ~widths:[| 3; 3 |] ~gp_x:5 ~gp_y:5 ~gp_z:0. () in
  let d =
    Design.make ~name:"dup" ~dies:(Fixtures.two_dies ())
      ~cells:[| mk "a" 0; mk "a" 1; mk "b" 2 |]
      ()
  in
  let dups =
    List.filter (fun i -> i.Validate.code = "duplicate-cell-name") (Validate.design d)
  in
  Alcotest.(check int) "one duplicate flagged" 1 (List.length dups);
  List.iter
    (fun i -> Alcotest.(check bool) "warning severity" true (i.Validate.severity = Validate.Warning))
    dups;
  (match Def.of_design d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_design must refuse duplicate names");
  let repaired, notes = Validate.repair d in
  Alcotest.(check bool) "repair renamed something" true
    (List.exists (fun n -> String.length n > 0) notes);
  Alcotest.(check int) "no duplicates after repair" 0
    (List.length
       (List.filter
          (fun i -> i.Validate.code = "duplicate-cell-name")
          (Validate.design repaired)));
  (* repaired design exports fine and round-trips *)
  let ltxt, dtxts = canonical_strings repaired None in
  let d2, p2 = reimport (ltxt, dtxts) in
  let ltxt2, dtxts2 = canonical_strings d2 (Some p2) in
  Alcotest.(check string) "lef bytes" ltxt ltxt2;
  List.iteri
    (fun i (a, b) -> Alcotest.(check string) (Printf.sprintf "def %d" i) a b)
    (List.combine dtxts dtxts2)

(* ---- end-to-end: import -> run -> eco -> export -> re-import ------- *)

let test_open_design_pipeline () =
  let design, _seed = import_example () in
  let report =
    match Tdf_robust.Pipeline.run design with
    | Ok r -> r
    | Error e -> Alcotest.failf "pipeline: %s" (Tdf_robust.Error.to_string e)
  in
  Alcotest.(check bool) "legal" true report.Tdf_robust.Pipeline.legal;
  Alcotest.(check bool) "zero fallbacks (primary path)" true
    (report.Tdf_robust.Pipeline.path = Tdf_robust.Pipeline.Primary);
  let delta =
    Tdf_io.Delta.read_exn "move 0 40 8 0\nadd w1 20 8 1 4 4\n"
  in
  let eco =
    match
      Tdf_incremental.Eco.run design report.Tdf_robust.Pipeline.placement delta
    with
    | Ok r -> r
    | Error e ->
      Alcotest.failf "eco: %s" (Tdf_incremental.Eco.error_to_string e)
  in
  Alcotest.(check int) "eco zero fallbacks" 0
    eco.Tdf_incremental.Eco.stats.Tdf_incremental.Eco.fallbacks;
  let final = eco.Tdf_incremental.Eco.design in
  let final_p = eco.Tdf_incremental.Eco.placement in
  Alcotest.(check bool) "eco legal" true
    (Tdf_metrics.Legality.is_legal final final_p);
  Alcotest.(check int) "no fatal preflight issues" 0
    (List.length (Validate.fatal (Validate.design final)));
  (* export the final state, re-import, re-export: byte-stable and still
     legal *)
  let ltxt, dtxts = canonical_strings final (Some final_p) in
  let d2, p2 = reimport (ltxt, dtxts) in
  Alcotest.(check bool) "reimported placement legal" true
    (Tdf_metrics.Legality.is_legal d2 p2);
  let ltxt2, dtxts2 = canonical_strings d2 (Some p2) in
  Alcotest.(check string) "lef byte-stable" ltxt ltxt2;
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "def %d byte-stable" i) a b)
    (List.combine dtxts dtxts2)

(* ---- fuzz ---------------------------------------------------------- *)

(* Corpus: the two example DEFs, the example LEF, and a canonical export
   of a random fixture — parsed by the matching reader. *)
let corpus =
  lazy
    (let d = Fixtures.random 7 in
     let lef, defs = Def.of_design d in
     [
       (`Lef, read_file (example "small.lef"));
       (`Def, read_file (example "small.d0.def"));
       (`Def, read_file (example "small.d1.def"));
       (`Lef, Lef.to_string lef);
       (`Def, Def.to_string (List.hd defs));
     ])

let parse_never_raises (kind, text) =
  match kind with
  | `Lef -> ( match Lef.read text with Ok _ | Error _ -> true)
  | `Def -> ( match Def.read text with Ok _ | Error _ -> true)

let pick rng l = List.nth l (Prng.int_in rng 0 (List.length l - 1))

let fuzz_truncation =
  Props.test "fuzz: truncation never escapes as an exception" ~count:300
    (Props.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let kind, text = pick rng (Lazy.force corpus) in
      let cut = Prng.int_in rng 0 (String.length text) in
      parse_never_raises (kind, String.sub text 0 cut))

let fuzz_comment_injection =
  Props.test "fuzz: comment injection leaves the parse identical" ~count:200
    (Props.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let kind, text = pick rng (Lazy.force corpus) in
      let noise =
        [
          "# a comment with ( tokens ; and ) keywords MACRO END";
          "   # indented comment DESIGN 4 BY 2";
          "#tdflowish but not an extension: tdflow_x 1";
          "";
        ]
      in
      let lines = String.split_on_char '\n' text in
      let injected =
        List.concat_map
          (fun l ->
            if Prng.int_in rng 0 3 = 0 then [ pick rng noise; l ] else [ l ])
          lines
        |> String.concat "\n"
      in
      match kind with
      | `Lef -> Lef.read injected = Lef.read text
      | `Def -> Def.read injected = Def.read text)

let fuzz_whitespace =
  Props.test "fuzz: whitespace mangling leaves the parse identical"
    ~count:200
    (Props.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let kind, text = pick rng (Lazy.force corpus) in
      let b = Buffer.create (String.length text * 2) in
      String.iter
        (fun c ->
          match c with
          | ' ' ->
            (match Prng.int_in rng 0 3 with
            | 0 -> Buffer.add_string b "  "
            | 1 -> Buffer.add_string b " \t "
            | 2 -> Buffer.add_string b "\t"
            | _ -> Buffer.add_char b ' ')
          | c -> Buffer.add_char b c)
        text;
      let mangled = Buffer.contents b in
      match kind with
      | `Lef -> Lef.read mangled = Lef.read text
      | `Def -> Def.read mangled = Def.read text)

let fuzz_line_noise =
  Props.test "fuzz: random line edits yield Ok or a typed error" ~count:300
    (Props.int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let kind, text = pick rng (Lazy.force corpus) in
      let lines = Array.of_list (String.split_on_char '\n' text) in
      let n = Array.length lines in
      (* drop, duplicate or garble a few random lines *)
      for _ = 1 to Prng.int_in rng 1 4 do
        let i = Prng.int_in rng 0 (n - 1) in
        lines.(i) <-
          (match Prng.int_in rng 0 2 with
          | 0 -> ""
          | 1 -> lines.(i) ^ " " ^ lines.(i)
          | _ -> "ZZZ " ^ lines.(i))
      done;
      parse_never_raises
        (kind, String.concat "\n" (Array.to_list lines)))

let suite =
  [
    Alcotest.test_case "lef: example library" `Quick test_lef_example;
    Alcotest.test_case "lef: typed parse errors" `Quick test_lef_errors_typed;
    Alcotest.test_case "def: example fields" `Quick test_def_example_fields;
    Alcotest.test_case "def: typed parse errors" `Quick test_def_errors_typed;
    Alcotest.test_case "to_design: example pair" `Quick test_example_to_design;
    Alcotest.test_case "to_design: typed converter errors" `Quick
      test_to_design_errors;
    Alcotest.test_case "export∘import∘export is byte-identical" `Quick
      test_export_import_export_bytes;
    Alcotest.test_case "import preserves design semantics" `Quick
      test_import_preserves_semantics;
    Alcotest.test_case "duplicate cell names: check, repair, export" `Quick
      test_duplicate_cell_names;
    Alcotest.test_case "open design: import→run→eco→export→re-import" `Quick
      test_open_design_pipeline;
    fuzz_truncation;
    fuzz_comment_injection;
    fuzz_whitespace;
    fuzz_line_noise;
  ]
