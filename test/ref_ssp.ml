(* Reference solver for the differential tests: a verbatim copy of the
   seed successive-shortest-paths implementation (growable boxed-record
   adjacency, float-keyed polymorphic heap), kept only under test/ so the
   CSR solver in [Tdf_flow.Mcmf] can be checked for exact (flow, cost)
   equality against the pre-refactor engine.  Telemetry, budgets and
   failpoints are stripped; the algorithm is untouched. *)

type edge = { dst : int; mutable cap : int; cost : int; rev : int }

type t = {
  n : int;
  adj : edge array ref array;  (* adjacency as growable arrays *)
  mutable sizes : int array;
}

let create n =
  { n; adj = Array.init n (fun _ -> ref [||]); sizes = Array.make n 0 }

let push_edge t v e =
  let arr = t.adj.(v) in
  let sz = t.sizes.(v) in
  if sz = Array.length !arr then begin
    let narr = Array.make (max 4 (2 * sz)) e in
    Array.blit !arr 0 narr 0 sz;
    arr := narr
  end;
  !arr.(sz) <- e;
  t.sizes.(v) <- sz + 1

let add_edge t ~src ~dst ~cap ~cost =
  assert (cap >= 0);
  let fwd_idx = t.sizes.(src) in
  let rev_idx = t.sizes.(dst) + if src = dst then 1 else 0 in
  push_edge t src { dst; cap; cost; rev = rev_idx };
  push_edge t dst { dst = src; cap = 0; cost = -cost; rev = fwd_idx };
  (src * 0x40000000) + fwd_idx

let edge_at t v i = !(t.adj.(v)).(i)

let bellman_ford t source dist =
  Array.fill dist 0 t.n max_int;
  dist.(source) <- 0;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= t.n do
    changed := false;
    incr iters;
    for v = 0 to t.n - 1 do
      if dist.(v) < max_int then
        for i = 0 to t.sizes.(v) - 1 do
          let e = edge_at t v i in
          if e.cap > 0 && dist.(v) + e.cost < dist.(e.dst) then begin
            dist.(e.dst) <- dist.(v) + e.cost;
            changed := true
          end
        done
    done
  done;
  if !iters > t.n then Error () else Ok ()

exception Negative_cycle

(* The seed [solve] minus telemetry/budget/failpoints: returns the exact
   (flow, cost) of the successive-shortest-path optimum, raising
   [Negative_cycle] where the seed returned [Error _]. *)
let min_cost_flow t ~source ~sink ?(max_flow = max_int) () =
  let potential = Array.make t.n 0 in
  let has_negative =
    Array.exists
      (fun (arr : edge array ref) ->
        Array.exists (fun e -> e.cap > 0 && e.cost < 0) !arr)
      t.adj
  in
  if has_negative then begin
    let dist = Array.make t.n max_int in
    match bellman_ford t source dist with
    | Error () -> raise Negative_cycle
    | Ok () ->
      for v = 0 to t.n - 1 do
        potential.(v) <- (if dist.(v) = max_int then 0 else dist.(v))
      done
  end;
  let dist = Array.make t.n max_int in
  let prev_v = Array.make t.n (-1) in
  let prev_e = Array.make t.n (-1) in
  let total_flow = ref 0 and total_cost = ref 0 in
  let continue = ref true in
  while !continue && !total_flow < max_flow do
    Array.fill dist 0 t.n max_int;
    dist.(source) <- 0;
    let heap = Tdf_util.Heap.create () in
    Tdf_util.Heap.add heap ~key:0. source;
    let rec run () =
      match Tdf_util.Heap.pop heap with
      | None -> ()
      | Some (d, v) ->
        let d = int_of_float d in
        if d <= dist.(v) then begin
          for i = 0 to t.sizes.(v) - 1 do
            let e = edge_at t v i in
            if e.cap > 0 then begin
              let nd = dist.(v) + e.cost + potential.(v) - potential.(e.dst) in
              if nd < dist.(e.dst) then begin
                dist.(e.dst) <- nd;
                prev_v.(e.dst) <- v;
                prev_e.(e.dst) <- i;
                Tdf_util.Heap.add heap ~key:(float_of_int nd) e.dst
              end
            end
          done
        end;
        run ()
    in
    run ();
    if dist.(sink) = max_int then continue := false
    else begin
      for v = 0 to t.n - 1 do
        if dist.(v) < max_int then potential.(v) <- potential.(v) + dist.(v)
      done;
      let rec bottleneck v acc =
        if v = source then acc
        else begin
          let e = edge_at t prev_v.(v) prev_e.(v) in
          bottleneck prev_v.(v) (min acc e.cap)
        end
      in
      let push = min (bottleneck sink max_int) (max_flow - !total_flow) in
      let rec apply v =
        if v <> source then begin
          let e = edge_at t prev_v.(v) prev_e.(v) in
          e.cap <- e.cap - push;
          let r = edge_at t v e.rev in
          r.cap <- r.cap + push;
          total_cost := !total_cost + (push * e.cost);
          apply prev_v.(v)
        end
      in
      apply sink;
      total_flow := !total_flow + push
    end
  done;
  (!total_flow, !total_cost)
