(* Benchmark regression gate: shape detection, exact/bound/time judgments,
   the injected-slowdown hook, and failure modes on malformed input. *)

module Json = Tdf_telemetry.Json
module Gate = Tdf_gate.Gate

let solver_file ?(variants_agree = true) cases =
  Json.Obj
    [
      ("generated_by", Json.String "test");
      ( "cases",
        Json.List
          (List.map
             (fun (name, flow, cost, solve_s, reuse_s) ->
               Json.Obj
                 [
                   ("name", Json.String name);
                   ("flow", Json.Int flow);
                   ("cost", Json.Int cost);
                   ("solve_s", Json.Float solve_s);
                   ("repeat_reuse_s", Json.Float reuse_s);
                   ("variants_agree", Json.Bool variants_agree);
                   ("ssp_solve_s", Json.Float solve_s);
                   ("radix_solve_s", Json.Float solve_s);
                   ("blocking_solve_s", Json.Float solve_s);
                 ])
             cases) );
    ]

let eco_file runs =
  Json.Obj
    [
      ("generated_by", Json.String "test");
      ( "runs",
        Json.List
          (List.map
             (fun (cells, eco_s, fallbacks, legal) ->
               Json.Obj
                 [
                   ("delta_cells", Json.Int cells);
                   ("eco_s", Json.Float eco_s);
                   ("fallbacks", Json.Int fallbacks);
                   ("legal", Json.Bool legal);
                 ])
             runs) );
    ]

let run ?max_regression ?inject_slowdown ~baseline ~current () =
  match Gate.compare_json ?max_regression ?inject_slowdown ~baseline ~current () with
  | Ok v -> v
  | Error e -> Alcotest.failf "gate errored: %s" e

let check_pass name v = Alcotest.(check bool) name true v.Gate.passed
let check_fail name v = Alcotest.(check bool) name false v.Gate.passed

let base_solver = solver_file [ ("small", 89, 140, 0.01, 0.1) ]

let test_identical_passes () =
  check_pass "identical solver"
    (run ~baseline:base_solver ~current:base_solver ());
  let e = eco_file [ (6, 0.002, 0, true) ] in
  check_pass "identical eco" (run ~baseline:e ~current:e ())

let test_time_regression_fails () =
  let cur = solver_file [ ("small", 89, 140, 0.02, 0.1) ] in
  check_fail "2x solve_s at default 1.25"
    (run ~baseline:base_solver ~current:cur ());
  check_pass "2x solve_s within 4.0 slack"
    (run ~max_regression:4.0 ~baseline:base_solver ~current:cur ())

let test_drift_fails_despite_slack () =
  let cur = solver_file [ ("small", 90, 140, 0.01, 0.1) ] in
  check_fail "flow drift" (run ~max_regression:100. ~baseline:base_solver ~current:cur ());
  let cur = solver_file [ ("small", 89, 139, 0.01, 0.1) ] in
  check_fail "cost drift" (run ~max_regression:100. ~baseline:base_solver ~current:cur ());
  let cur = solver_file ~variants_agree:false [ ("small", 89, 140, 0.01, 0.1) ] in
  check_fail "variant disagreement"
    (run ~max_regression:100. ~baseline:base_solver ~current:cur ())

let test_inject_slowdown_fails () =
  check_fail "identical file fails under 10x injection"
    (run ~inject_slowdown:10. ~baseline:base_solver ~current:base_solver ());
  check_pass "injection respects slack"
    (run ~max_regression:20. ~inject_slowdown:10. ~baseline:base_solver
       ~current:base_solver ())

let test_eco_quality_gates () =
  let base = eco_file [ (6, 0.002, 0, true) ] in
  check_fail "illegal result"
    (run ~baseline:base ~current:(eco_file [ (6, 0.002, 0, false) ]) ());
  check_fail "new fallback"
    (run ~baseline:base ~current:(eco_file [ (6, 0.002, 1, true) ]) ());
  (* fewer fallbacks than baseline is an improvement, not a failure *)
  check_pass "fallback decrease"
    (run ~baseline:(eco_file [ (6, 0.002, 1, true) ])
       ~current:(eco_file [ (6, 0.002, 0, true) ])
       ())

let test_case_matching () =
  (* matching is by name, not position; extras are skipped not fatal *)
  let base = solver_file [ ("small", 89, 140, 0.01, 0.1); ("gone", 1, 1, 0.01, 0.01) ] in
  let cur = solver_file [ ("new", 5, 5, 0.01, 0.01); ("small", 89, 140, 0.01, 0.1) ] in
  let v = run ~baseline:base ~current:cur () in
  check_pass "overlap passes" v;
  Alcotest.(check int) "both extras reported" 2 (List.length v.Gate.skipped);
  (* ... but zero overlap would make the gate vacuous: error out *)
  match
    Gate.compare_json ~baseline:base
      ~current:(solver_file [ ("other", 1, 1, 0.01, 0.01) ])
      ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "vacuous gate accepted"

let test_shape_errors () =
  (match
     Gate.compare_json ~baseline:base_solver
       ~current:(eco_file [ (6, 0.002, 0, true) ])
       ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed kinds accepted");
  match
    Gate.compare_json ~baseline:(Json.Obj []) ~current:(Json.Obj []) ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "shapeless file accepted"

let test_render () =
  let v = run ~baseline:base_solver ~current:base_solver () in
  let s = Gate.render v in
  Alcotest.(check bool) "mentions verdict" true
    (String.length s > 0
    &&
    let has sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      go 0
    in
    has "GATE PASS" && has "solver/small/flow")

let suite =
  [
    Alcotest.test_case "identical files pass" `Quick test_identical_passes;
    Alcotest.test_case "time regression fails" `Quick test_time_regression_fails;
    Alcotest.test_case "flow/cost drift fails despite slack" `Quick
      test_drift_fails_despite_slack;
    Alcotest.test_case "injected slowdown fails" `Quick test_inject_slowdown_fails;
    Alcotest.test_case "eco quality gates" `Quick test_eco_quality_gates;
    Alcotest.test_case "case matching and vacuity" `Quick test_case_matching;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "shape errors" `Quick test_shape_errors;
  ]
