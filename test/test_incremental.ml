(* Incremental (ECO) engine: delta parsing, perturbation semantics, and
   differential properties of the localized re-legalization — legal
   results, frozen regions, bounded disturbance, job-count determinism. *)

module Design = Tdf_netlist.Design
module Cell = Tdf_netlist.Cell
module Placement = Tdf_netlist.Placement
module Flow3d = Tdf_legalizer.Flow3d
module Legality = Tdf_metrics.Legality
module Delta = Tdf_io.Delta
module Perturb = Tdf_incremental.Perturb
module Eco = Tdf_incremental.Eco
module Prng = Tdf_util.Prng

let check = Alcotest.(check bool)

(* ---- delta text format -------------------------------------------- *)

let test_delta_roundtrip () =
  let ops =
    [
      Delta.Move { cell = 3; x = 10; y = 20; die = 1 };
      Delta.Resize { cell = 4; widths = [| 5; 7 |] };
      Delta.Add { name = "u9"; x = 1; y = 2; die = 0; widths = [| 4; 4 |] };
      Delta.Remove { cell = 0 };
      Delta.Add_macro { name = "m1"; die = 1; x = 8; y = 10; w = 12; h = 10 };
    ]
  in
  match Delta.read (Delta.to_string ops) with
  | Ok ops' -> check "round-trips" true (ops = ops')
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_delta_comments_and_blanks () =
  let text = "# eco\n\n  move 1 2 3 0   # trailing\n\tremove 7\n" in
  match Delta.read text with
  | Ok [ Delta.Move { cell = 1; x = 2; y = 3; die = 0 }; Delta.Remove { cell = 7 } ]
    ->
    ()
  | Ok _ -> Alcotest.fail "wrong ops"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_delta_diagnostics () =
  (match Delta.read "move 1 2 3\n" with
  | Error e -> check "line 1 op arity" true (String.length e > 6 && String.sub e 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "accepted bad arity");
  (match Delta.read "move 1 2 3 0\nfrobnicate 1\n" with
  | Error e -> check "line 2 keyword" true (String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "accepted bad keyword");
  match Delta.read "resize 1 0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-positive width"

(* ---- perturbation layer -------------------------------------------- *)

let legal_fixture seed =
  let d = Fixtures.random ~n:40 seed in
  let prev = (Flow3d.legalize d).Flow3d.placement in
  Alcotest.(check bool) "fixture signoff legal" true (Legality.is_legal d prev);
  (d, prev)

let test_perturb_move_resize () =
  let d, prev = legal_fixture 11 in
  let delta =
    [
      Delta.Move { cell = 5; x = 60; y = 21; die = 1 };
      Delta.Resize { cell = 9; widths = [| 7; 7 |] };
    ]
  in
  match Perturb.apply d prev delta with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check "no renumbering" true
      (Array.for_all2 ( = ) p.Perturb.old_of_new
         (Array.init (Design.n_cells d) Fun.id));
    check "seeds are the two perturbed cells" true
      (List.sort compare p.Perturb.seeds = [ 5; 9 ]);
    check "not structural" true (not p.Perturb.structural);
    check "moved cell at target" true
      (p.Perturb.base.Placement.x.(5) = 60
      && p.Perturb.base.Placement.y.(5) = 21
      && p.Perturb.base.Placement.die.(5) = 1);
    check "moved cell gp anchor updated" true
      ((Design.cell p.Perturb.design 5).Cell.gp_x = 60);
    check "resized cell widths updated" true
      ((Design.cell p.Perturb.design 9).Cell.widths = [| 7; 7 |]);
    check "unperturbed cell keeps prev coords" true
      (p.Perturb.base.Placement.x.(0) = prev.Placement.x.(0)
      && p.Perturb.base.Placement.y.(0) = prev.Placement.y.(0))

let test_perturb_remove_renumbers () =
  let d, prev = legal_fixture 12 in
  let n = Design.n_cells d in
  match Perturb.apply d prev [ Delta.Remove { cell = 3 } ] with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check "one fewer cell" true (Design.n_cells p.Perturb.design = n - 1);
    check "removed cell unmapped" true (p.Perturb.new_of_old.(3) = -1);
    check "later ids shift down" true
      (p.Perturb.new_of_old.(4) = 3 && p.Perturb.old_of_new.(3) = 4);
    check "earlier ids stable" true (p.Perturb.new_of_old.(2) = 2);
    check "no pin references the removed cell" true
      (Array.for_all
         (fun (net : Tdf_netlist.Net.t) ->
           Array.for_all
             (fun pin -> pin >= 0 && pin < n - 1)
             net.Tdf_netlist.Net.pins)
         p.Perturb.design.Design.nets);
    check "survivors keep prev coords" true
      (p.Perturb.base.Placement.x.(3) = prev.Placement.x.(4))

let test_perturb_add () =
  let d, prev = legal_fixture 13 in
  let n = Design.n_cells d in
  let delta =
    [ Delta.Add { name = "eco0"; x = 30; y = 11; die = 0; widths = [| 4; 4 |] } ]
  in
  match Perturb.apply d prev delta with
  | Error e -> Alcotest.fail e
  | Ok p ->
    check "one more cell" true (Design.n_cells p.Perturb.design = n + 1);
    check "added cell has no old id" true (p.Perturb.old_of_new.(n) = -1);
    check "added cell is a seed" true (List.mem n p.Perturb.seeds);
    check "added cell at target" true
      (p.Perturb.base.Placement.x.(n) = 30 && p.Perturb.base.Placement.die.(n) = 0)

let test_perturb_rejects () =
  let d, prev = legal_fixture 14 in
  let bad delta = match Perturb.apply d prev delta with Error _ -> true | Ok _ -> false in
  check "out-of-range cell" true
    (bad [ Delta.Move { cell = 999; x = 0; y = 0; die = 0 } ]);
  check "out-of-range die" true
    (bad [ Delta.Move { cell = 1; x = 0; y = 0; die = 5 } ]);
  check "two ops on one cell" true
    (bad
       [
         Delta.Move { cell = 1; x = 0; y = 0; die = 0 };
         Delta.Remove { cell = 1 };
       ]);
  check "widths arity" true (bad [ Delta.Resize { cell = 1; widths = [| 4 |] } ])

(* ---- eco engine ----------------------------------------------------- *)

let test_eco_moves_legal () =
  let d, prev = legal_fixture 21 in
  let delta =
    [
      Delta.Move { cell = 2; x = 55; y = 25; die = 0 };
      Delta.Move { cell = 17; x = 60; y = 25; die = 0 };
      Delta.Move { cell = 30; x = 58; y = 25; die = 1 };
    ]
  in
  match Eco.run d prev delta with
  | Error e -> Alcotest.fail (Eco.error_to_string e)
  | Ok r ->
    check "legal" true (Legality.is_legal r.Eco.design r.Eco.placement);
    check "dirty region is a subset" true
      (r.Eco.stats.Eco.dirty_bins <= r.Eco.stats.Eco.total_bins)

let test_eco_structural_delta_legal () =
  let d, prev = legal_fixture 22 in
  let delta =
    [
      Delta.Remove { cell = 6 };
      Delta.Add { name = "eco0"; x = 20; y = 15; die = 1; widths = [| 5; 5 |] };
      Delta.Add_macro { name = "mb"; die = 0; x = 70; y = 20; w = 20; h = 10 };
    ]
  in
  match Eco.run d prev delta with
  | Error e -> Alcotest.fail (Eco.error_to_string e)
  | Ok r ->
    check "legal after remove/add/macro" true
      (Legality.is_legal r.Eco.design r.Eco.placement)

let test_eco_invalid_delta () =
  let d, prev = legal_fixture 23 in
  match Eco.run d prev [ Delta.Remove { cell = -1 } ] with
  | Error (Eco.Invalid_delta _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Eco.error_to_string e)
  | Ok _ -> Alcotest.fail "accepted invalid delta"

(* A big enough grid that the dirty region genuinely excludes most of it:
   cells outside must keep their previous coordinates byte-for-byte. *)
let test_eco_freezes_outside_region () =
  let d =
    Tdf_benchgen.Gen.generate_by_name ~scale:0.05 Tdf_benchgen.Spec.Iccad2023
      "case2"
  in
  let prev = (Flow3d.legalize d).Flow3d.placement in
  let n = Design.n_cells d in
  let delta =
    [
      Delta.Move { cell = 10; x = 500; y = 300; die = 0 };
      Delta.Move { cell = 42; x = 510; y = 305; die = 0 };
    ]
  in
  match Eco.run d prev delta with
  | Error e -> Alcotest.fail (Eco.error_to_string e)
  | Ok r ->
    check "legal" true (Legality.is_legal r.Eco.design r.Eco.placement);
    check "solved locally" true
      (match r.Eco.stats.Eco.path with Eco.Local _ -> true | Eco.Full _ -> false);
    let unmoved = ref 0 in
    for c = 0 to n - 1 do
      if
        c <> 10 && c <> 42
        && r.Eco.placement.Placement.x.(c) = prev.Placement.x.(c)
        && r.Eco.placement.Placement.y.(c) = prev.Placement.y.(c)
        && r.Eco.placement.Placement.die.(c) = prev.Placement.die.(c)
      then incr unmoved
    done;
    let frac = float_of_int !unmoved /. float_of_int n in
    if frac < 0.5 then
      Alcotest.failf "only %.0f%% of cells kept their position (dirty %d/%d bins)"
        (100. *. frac) r.Eco.stats.Eco.dirty_bins r.Eco.stats.Eco.total_bins

(* ---- differential properties ---------------------------------------- *)

(* Random mixed delta over distinct cells; ids refer to the original
   design, targets stay inside the fixtures' 120x50 outline. *)
let random_delta rng d =
  let n = Design.n_cells d in
  let k = 1 + Prng.int rng 4 in
  let used = Array.make n false in
  let ops = ref [] in
  for i = 0 to k - 1 do
    let c = Prng.int rng n in
    if not used.(c) then begin
      used.(c) <- true;
      let op =
        match Prng.int rng 4 with
        | 0 ->
          Delta.Move
            { cell = c; x = Prng.int rng 116; y = Prng.int rng 50;
              die = Prng.int rng 2 }
        | 1 ->
          Delta.Resize
            { cell = c;
              widths = [| 3 + Prng.int rng 5; 3 + Prng.int rng 5 |] }
        | 2 -> Delta.Remove { cell = c }
        | _ ->
          Delta.Add
            { name = Printf.sprintf "eco%d" i; x = Prng.int rng 116;
              y = Prng.int rng 50; die = Prng.int rng 2;
              widths = [| 3 + Prng.int rng 4; 3 + Prng.int rng 4 |] }
      in
      ops := op :: !ops
    end
  done;
  List.rev !ops

let eco_exn d prev delta =
  match Eco.run d prev delta with
  | Ok r -> r
  | Error e -> failwith (Eco.error_to_string e)

let prop_eco_legal =
  Props.test "random delta on legal placement stays legal" ~count:25
    (Props.int_range 0 1_000_000) (fun seed ->
      let d = Fixtures.random ~n:40 seed in
      let prev = (Flow3d.legalize d).Flow3d.placement in
      let rng = Prng.create (seed + 7) in
      let delta = random_delta rng d in
      let r = eco_exn d prev delta in
      Legality.is_legal r.Eco.design r.Eco.placement)

(* The incremental result may differ from a from-scratch run, but not by
   much: both displacement summaries are measured against the perturbed
   design's anchors, and the frozen prev positions were themselves a
   legalization of (almost) those anchors.  Seeds are fixed, so this is a
   deterministic regression bound, not a flaky statistical one. *)
let prop_eco_displacement_bounded =
  Props.test "eco displacement within 3x+1row of from-scratch" ~count:15
    (Props.int_range 0 1_000_000) (fun seed ->
      let d = Fixtures.random ~n:40 seed in
      let prev = (Flow3d.legalize d).Flow3d.placement in
      let rng = Prng.create (seed + 13) in
      let delta = random_delta rng d in
      let r = eco_exn d prev delta in
      let scratch = Flow3d.legalize r.Eco.design in
      let avg p =
        (Tdf_metrics.Displacement.summary r.Eco.design p)
          .Tdf_metrics.Displacement.avg_norm
      in
      avg r.Eco.placement <= (3. *. avg scratch.Flow3d.placement) +. 1.)

let prop_eco_deterministic_across_jobs =
  Props.test "identical placements at jobs 1/2/8" ~count:8
    (Props.int_range 0 1_000_000) (fun seed ->
      let d = Fixtures.random ~n:40 seed in
      let prev = (Flow3d.legalize d).Flow3d.placement in
      let rng = Prng.create (seed + 23) in
      let delta = random_delta rng d in
      let run_at jobs =
        Tdf_par.set_jobs jobs;
        Fun.protect
          ~finally:(fun () -> Tdf_par.set_jobs 1)
          (fun () -> (eco_exn d prev delta).Eco.placement)
      in
      let p1 = run_at 1 and p2 = run_at 2 and p8 = run_at 8 in
      let eq a b =
        a.Placement.x = b.Placement.x
        && a.Placement.y = b.Placement.y
        && a.Placement.die = b.Placement.die
      in
      eq p1 p2 && eq p1 p8)

(* Tile-sharded masked passes inside the ECO pipeline must also be
   invisible: [cfg.tiles] is a wall-clock knob, never a result change. *)
let prop_eco_deterministic_across_tiles =
  Props.test "identical placements at tiles 1/2/4 x jobs 1/4" ~count:8
    (Props.int_range 0 1_000_000) (fun seed ->
      let d = Fixtures.random ~n:40 seed in
      let prev = (Flow3d.legalize d).Flow3d.placement in
      let rng = Prng.create (seed + 29) in
      let delta = random_delta rng d in
      let run_at ~tiles ~jobs =
        Tdf_par.set_jobs jobs;
        Fun.protect
          ~finally:(fun () -> Tdf_par.set_jobs 1)
          (fun () ->
            let cfg = { Eco.default_cfg with Eco.tiles = Some tiles } in
            match Eco.run ~cfg d prev delta with
            | Ok r -> r.Eco.placement
            | Error e -> failwith (Eco.error_to_string e))
      in
      let reference = run_at ~tiles:1 ~jobs:1 in
      let eq a b =
        a.Placement.x = b.Placement.x
        && a.Placement.y = b.Placement.y
        && a.Placement.die = b.Placement.die
      in
      List.for_all
        (fun tiles ->
          List.for_all
            (fun jobs -> eq reference (run_at ~tiles ~jobs))
            [ 1; 4 ])
        [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "delta round-trip" `Quick test_delta_roundtrip;
    Alcotest.test_case "delta comments and blanks" `Quick
      test_delta_comments_and_blanks;
    Alcotest.test_case "delta diagnostics" `Quick test_delta_diagnostics;
    Alcotest.test_case "perturb move+resize" `Quick test_perturb_move_resize;
    Alcotest.test_case "perturb remove renumbers" `Quick
      test_perturb_remove_renumbers;
    Alcotest.test_case "perturb add" `Quick test_perturb_add;
    Alcotest.test_case "perturb rejects bad deltas" `Quick test_perturb_rejects;
    Alcotest.test_case "eco moves stay legal" `Quick test_eco_moves_legal;
    Alcotest.test_case "eco structural delta stays legal" `Quick
      test_eco_structural_delta_legal;
    Alcotest.test_case "eco rejects invalid delta" `Quick test_eco_invalid_delta;
    Alcotest.test_case "eco freezes outside the dirty region" `Slow
      test_eco_freezes_outside_region;
    prop_eco_legal;
    prop_eco_displacement_bounded;
    prop_eco_deterministic_across_jobs;
    prop_eco_deterministic_across_tiles;
  ]
