(* Tests for the deterministic domain pool (lib/par).

   The pool's contract is that scheduling is invisible: results land in
   submission-index order, every index runs exactly once, exceptions
   propagate to the submitter, and nested submissions degrade to inline
   execution instead of deadlocking.  Everything here runs on real spawned
   domains (pool sizes > 1), so these tests double as a race detector
   under `dune runtest` on multicore hosts. *)

module Pool = Tdf_par.Pool

let with_pool n f =
  let p = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let test_create_clamps () =
  with_pool 0 (fun p -> Alcotest.(check int) "clamped up" 1 (Pool.size p));
  with_pool 3 (fun p -> Alcotest.(check int) "as asked" 3 (Pool.size p))

let test_map_order () =
  with_pool 4 (fun p ->
      let a = Pool.map_array p (fun i -> i * i) (Array.init 100 (fun i -> i)) in
      Alcotest.(check (array int))
        "squares in order"
        (Array.init 100 (fun i -> i * i))
        a)

let test_exactly_once_coverage () =
  with_pool 4 (fun p ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Each task writes only its own slot, so no synchronization is
         needed and any duplicate/missed index shows up in the counts. *)
      Pool.run p ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        "every index exactly once" true
        (Array.for_all (fun c -> c = 1) hits))

let test_parallel_for_chunked () =
  with_pool 3 (fun p ->
      let n = 997 in
      let hits = Array.make n 0 in
      Pool.parallel_for p ~chunk:10 ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool)
        "chunked cover exactly once" true
        (Array.for_all (fun c -> c = 1) hits))

exception Boom of int

let test_exception_propagates () =
  with_pool 4 (fun p ->
      (match Pool.run p ~n:64 (fun i -> if i = 37 then raise (Boom i)) with
      | () -> Alcotest.fail "expected Boom"
      | exception Boom 37 -> ()
      | exception e ->
        Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
      (* the same pool must survive its failed job *)
      let a = Pool.map_array p string_of_int (Array.init 5 (fun i -> i)) in
      Alcotest.(check (array string))
        "pool usable after failure"
        [| "0"; "1"; "2"; "3"; "4" |]
        a)

let test_nested_runs_inline () =
  with_pool 2 (fun p ->
      let inner_ran = Atomic.make 0 in
      Pool.run p ~n:4 (fun _ ->
          Alcotest.(check bool) "inside task" true (Pool.in_task ());
          (* a nested submission must not wait on the busy workers *)
          Pool.run p ~n:3 (fun _ -> Atomic.incr inner_ran));
      Alcotest.(check int) "nested bodies all ran" 12 (Atomic.get inner_ran));
  Alcotest.(check bool) "outside task" false (Pool.in_task ())

let test_reduce_chunked_invariant_across_sizes () =
  (* The float reduction must be bitwise identical for every pool size:
     the chunk partition depends only on (n, chunk), never on domains. *)
  let n = 10_000 in
  let xs = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let reduce p =
    Pool.reduce_chunked p ~chunk:64 ~n
      ~map:(fun lo hi ->
        let acc = ref 0. in
        for i = lo to hi - 1 do
          acc := !acc +. xs.(i)
        done;
        !acc)
      ~merge:( +. ) ~init:0.
  in
  let r1 = with_pool 1 reduce in
  let r2 = with_pool 2 reduce in
  let r3 = with_pool 3 reduce in
  Alcotest.(check bool) "1 = 2 domains (bitwise)" true (Int64.equal (Int64.bits_of_float r1) (Int64.bits_of_float r2));
  Alcotest.(check bool) "1 = 3 domains (bitwise)" true (Int64.equal (Int64.bits_of_float r1) (Int64.bits_of_float r3))

let test_run_local_scratch () =
  with_pool 4 (fun p ->
      let created = Atomic.make 0 in
      let n = 200 in
      let seen = Array.make n (-1) in
      Pool.run_local p
        ~local:(fun () ->
          Atomic.incr created;
          Buffer.create 16)
        ~n
        (fun buf i ->
          (* the scratch must be private to the executing domain: no other
             task is mutating [buf] concurrently, so this round-trips *)
          Buffer.clear buf;
          Buffer.add_string buf (string_of_int i);
          seen.(i) <- int_of_string (Buffer.contents buf));
      Alcotest.(check bool)
        "tasks saw their own index" true
        (Array.for_all2 ( = ) seen (Array.init n (fun i -> i)));
      let c = Atomic.get created in
      Alcotest.(check bool)
        "scratch count bounded by slots" true
        (c >= 1 && c <= Pool.size p + 1))

let test_shutdown_idempotent_and_inline () =
  let p = Pool.create 3 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* post-shutdown submissions degrade to inline execution *)
  let a = Pool.map_array p (fun i -> i + 1) (Array.init 4 (fun i -> i)) in
  Alcotest.(check (array int)) "inline after shutdown" [| 1; 2; 3; 4 |] a

let test_set_jobs_roundtrip () =
  let before = Tdf_par.jobs () in
  Tdf_par.set_jobs 2;
  Alcotest.(check int) "jobs follows set_jobs" 2 (Tdf_par.jobs ());
  let a = Tdf_par.map_array string_of_int (Array.init 6 (fun i -> i)) in
  Alcotest.(check (array string))
    "default pool works"
    [| "0"; "1"; "2"; "3"; "4"; "5" |]
    a;
  Tdf_par.set_jobs before;
  Alcotest.(check int) "restored" before (Tdf_par.jobs ())

let test_telemetry_capture_deterministic () =
  (* Counters emitted from pool tasks are replayed in submission order on
     the submitting domain: the aggregate totals match the sequential run
     and the sink never needs locking. *)
  let totals jobs =
    with_pool jobs (fun p ->
        let agg = Tdf_telemetry.Aggregate.create () in
        Tdf_telemetry.with_sink (Tdf_telemetry.Aggregate.sink agg) (fun () ->
            Pool.run p ~n:500 (fun i ->
                Tdf_telemetry.incr "par.test.tasks";
                Tdf_telemetry.count "par.test.weight" (i mod 7)));
        ( Tdf_telemetry.Aggregate.counter_total agg "par.test.tasks",
          Tdf_telemetry.Aggregate.counter_total agg "par.test.weight" ))
  in
  let t1 = totals 1 and t4 = totals 4 in
  Alcotest.(check (pair int int)) "counter totals invariant" t1 t4;
  Alcotest.(check int) "exact task count" 500 (fst t4)

let suite =
  [
    Alcotest.test_case "create clamps size" `Quick test_create_clamps;
    Alcotest.test_case "map_array preserves order" `Quick test_map_order;
    Alcotest.test_case "run covers exactly once" `Quick test_exactly_once_coverage;
    Alcotest.test_case "parallel_for chunked coverage" `Quick test_parallel_for_chunked;
    Alcotest.test_case "exception propagates, pool survives" `Quick
      test_exception_propagates;
    Alcotest.test_case "nested submission runs inline" `Quick test_nested_runs_inline;
    Alcotest.test_case "reduce_chunked bitwise invariant" `Quick
      test_reduce_chunked_invariant_across_sizes;
    Alcotest.test_case "run_local domain scratch" `Quick test_run_local_scratch;
    Alcotest.test_case "shutdown idempotent, then inline" `Quick
      test_shutdown_idempotent_and_inline;
    Alcotest.test_case "set_jobs roundtrip" `Quick test_set_jobs_roundtrip;
    Alcotest.test_case "telemetry capture deterministic" `Quick
      test_telemetry_capture_deterministic;
  ]
